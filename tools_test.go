package sam_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITools builds and drives the actual command binaries end to end:
// workloadgen produces artifacts, saminspect reads them, samgen trains,
// saves, reloads and writes CSVs. Guarded by -short because it compiles
// three binaries.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"workloadgen", "samgen", "saminspect"} {
		cmd := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	out := run("workloadgen", "-dataset", "census", "-rows", "1200", "-queries", "120",
		"-out", "wl.json", "-schema", "schema.json")
	if !strings.Contains(out, "labeled 120 queries") {
		t.Fatalf("workloadgen output: %s", out)
	}

	out = run("saminspect", "-workload", "wl.json", "-schema", "schema.json")
	for _, want := range []string{"== schema ==", "== workload ==", "queries: 120"} {
		if !strings.Contains(out, want) {
			t.Fatalf("saminspect output missing %q:\n%s", want, out)
		}
	}

	out = run("samgen", "-workload", "wl.json", "-schema", "schema.json",
		"-outdir", "gen", "-epochs", "3", "-hidden", "16", "-samples", "1200",
		"-save", "model.json")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("samgen output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen", "census.csv")); err != nil {
		t.Fatalf("generated CSV missing: %v", err)
	}

	// Generation from the saved model, no retraining.
	out = run("samgen", "-load", "model.json", "-schema", "schema.json",
		"-outdir", "gen2", "-samples", "1200")
	if !strings.Contains(out, "loaded model") {
		t.Fatalf("samgen -load output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen2", "census.csv")); err != nil {
		t.Fatalf("regenerated CSV missing: %v", err)
	}

	out = run("saminspect", "-model", "model.json", "-marginals", "200")
	if !strings.Contains(out, "== model ==") || !strings.Contains(out, "arch: made") {
		t.Fatalf("saminspect model output:\n%s", out)
	}
}
