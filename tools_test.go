package sam_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sam/internal/obs"
)

// TestCLITools builds and drives the actual command binaries end to end:
// workloadgen produces artifacts, saminspect reads them, samgen trains,
// saves, reloads and writes CSVs. Guarded by -short because it compiles
// three binaries.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"workloadgen", "samgen", "saminspect"} {
		cmd := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	out := run("workloadgen", "-dataset", "census", "-rows", "1200", "-queries", "120",
		"-out", "wl.json", "-schema", "schema.json")
	if !strings.Contains(out, "labeled 120 queries") {
		t.Fatalf("workloadgen output: %s", out)
	}

	out = run("saminspect", "-workload", "wl.json", "-schema", "schema.json")
	for _, want := range []string{"== schema ==", "== workload ==", "queries: 120"} {
		if !strings.Contains(out, want) {
			t.Fatalf("saminspect output missing %q:\n%s", want, out)
		}
	}

	out = run("samgen", "-workload", "wl.json", "-schema", "schema.json",
		"-outdir", "gen", "-epochs", "3", "-hidden", "16", "-samples", "1200",
		"-save", "model.json")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("samgen output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen", "census.csv")); err != nil {
		t.Fatalf("generated CSV missing: %v", err)
	}

	// Generation from the saved model, no retraining.
	out = run("samgen", "-load", "model.json", "-schema", "schema.json",
		"-outdir", "gen2", "-samples", "1200")
	if !strings.Contains(out, "loaded model") {
		t.Fatalf("samgen -load output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen2", "census.csv")); err != nil {
		t.Fatalf("regenerated CSV missing: %v", err)
	}

	out = run("saminspect", "-model", "model.json", "-marginals", "200")
	if !strings.Contains(out, "== model ==") || !strings.Contains(out, "arch: made") {
		t.Fatalf("saminspect model output:\n%s", out)
	}
}

// TestSambenchTraceSmoke is the CI telemetry gate: it runs the smallest
// real experiment with -trace and fails unless the produced JSONL parses
// as a well-formed span tree covering every pipeline phase — train,
// sample, weight, merge, and eval — with positive wall time. A refactor
// that silently drops a phase span (or breaks the JSONL writer) fails
// here, not in production debugging.
func TestSambenchTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sambench")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/sambench").CombinedOutput(); err != nil {
		t.Fatalf("build sambench: %v\n%s", err, out)
	}
	tracePath := filepath.Join(dir, "trace.jsonl")
	cmd := exec.Command(bin, "-scale", "smoke", "-exp", "tab1", "-trace", tracePath, "-progress")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sambench smoke: %v\n%s", err, out)
	}
	for _, want := range []string{"== tab1:", "== phase trace ==", "train: epoch"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("sambench output missing %q:\n%s", want, out)
		}
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f) // rejects empty, malformed, orphaned traces
	if err != nil {
		t.Fatalf("trace JSONL invalid: %v", err)
	}
	wall := map[string]int64{}
	for _, rec := range recs {
		wall[rec.Name] += rec.WallUS
	}
	for _, phase := range []string{"train", "sample", "weight", "merge", "eval"} {
		if _, ok := wall[phase]; !ok {
			t.Fatalf("trace missing %q phase span (have %v)", phase, wall)
		}
		if wall[phase] <= 0 {
			t.Fatalf("phase %q has no recorded wall time", phase)
		}
	}
	root := recs[0]
	if root.Attrs["seed"] == nil || root.Attrs["go_version"] == nil {
		t.Fatalf("trace root missing run metadata attrs: %v", root.Attrs)
	}

	// samtrace must analyze the same trace: the tree view carries the
	// pipeline phases, and diffing the trace against itself yields zero
	// wall deltas — the CI smoke for the trace-analysis CLI.
	samtrace := filepath.Join(dir, "samtrace")
	if out, err := exec.Command("go", "build", "-o", samtrace, "./cmd/samtrace").CombinedOutput(); err != nil {
		t.Fatalf("build samtrace: %v\n%s", err, out)
	}
	out, err = exec.Command(samtrace, "-top", "5", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("samtrace: %v\n%s", err, out)
	}
	for _, want := range []string{"span paths", "train", "sample", "top 5 by self time"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("samtrace output missing %q:\n%s", want, out)
		}
	}
	out, err = exec.Command(samtrace, "diff", tracePath, tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("samtrace diff: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Δwall") || !strings.Contains(string(out), "+0s") {
		t.Fatalf("samtrace self-diff should report zero deltas:\n%s", out)
	}
}

// TestSamreportSmoke is the run-report gate: it runs the smoke experiment
// with every artifact flag enabled — trace, run log, metrics dump — then
// fuses them with samreport and fails unless the artifacts join on one
// run ID and the report carries the expected sections. A change that
// breaks run-ID stamping on any surface fails here.
func TestSamreportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	sambench := filepath.Join(dir, "sambench")
	samreport := filepath.Join(dir, "samreport")
	for bin, pkg := range map[string]string{sambench: "./cmd/sambench", samreport: "./cmd/samreport"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	tracePath := filepath.Join(dir, "trace.jsonl")
	runlogPath := filepath.Join(dir, "run.log")
	metricsPath := filepath.Join(dir, "metrics.prom")
	cmd := exec.Command(sambench, "-scale", "smoke", "-exp", "tab1",
		"-trace", tracePath, "-runlog", runlogPath, "-metrics-out", metricsPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sambench smoke: %v\n%s", err, out)
	}

	// Every artifact must exist and claim the same run as the run log.
	f, err := os.Open(runlogPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := obs.ReadRunLog(f)
	f.Close()
	if err != nil {
		t.Fatalf("run log invalid: %v", err)
	}
	runID := entries[0].RunID
	if runID == "" {
		t.Fatal("run log carries no run ID")
	}

	rep, err := exec.Command(samreport, "-trace", tracePath, "-runlog", runlogPath,
		"-metrics", metricsPath, "-top", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("samreport: %v\n%s", err, rep)
	}
	for _, want := range []string{
		"# SAM run report",
		"Run ID: `" + runID + "`",
		"## Phase trace",
		"## Q-Error",
		"## Metrics",
	} {
		if !strings.Contains(string(rep), want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}

	// The HTML renderer must produce a self-contained document to a file.
	htmlPath := filepath.Join(dir, "report.html")
	if out, err := exec.Command(samreport, "-trace", tracePath, "-runlog", runlogPath,
		"-format", "html", "-o", htmlPath).CombinedOutput(); err != nil {
		t.Fatalf("samreport -format html: %v\n%s", err, out)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<!DOCTYPE html>") || !strings.Contains(string(html), runID) {
		t.Fatalf("html report malformed:\n%.400s", html)
	}

	// Mixing artifacts from different runs must fail the join.
	second := filepath.Join(dir, "trace2.jsonl")
	if out, err := exec.Command(sambench, "-scale", "smoke", "-exp", "tab1",
		"-trace", second).CombinedOutput(); err != nil {
		t.Fatalf("second sambench run: %v\n%s", err, out)
	}
	if out, err := exec.Command(samreport, "-trace", second, "-runlog", runlogPath).CombinedOutput(); err == nil {
		t.Fatalf("samreport accepted artifacts from different runs:\n%s", out)
	} else if !strings.Contains(string(out), "disagree on the run ID") {
		t.Fatalf("mismatch error not surfaced:\n%s", out)
	}
}

// TestSambenchPrometheusEndpoint is the exposition-format gate: it runs
// the smoke experiment with a live -debug-addr, scrapes /metrics mid-run
// the way a Prometheus server would, and fails unless the payload passes
// the strict format validator and carries the expected labeled families.
func TestSambenchPrometheusEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sambench")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/sambench").CombinedOutput(); err != nil {
		t.Fatalf("build sambench: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-scale", "smoke", "-exp", "tab1", "-debug-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	defer func() {
		cmd.Process.Kill()
		<-done
	}()

	// The bound address is announced on stderr before the run starts.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			addr = strings.Fields(line[i:])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("debug address never announced (scan err %v)", sc.Err())
	}
	go func() { // keep the pipe drained so the run cannot block on stderr
		for sc.Scan() {
		}
	}()

	// Scrape until the training families appear (the run needs a moment to
	// emit its first events), validating the format on every fetch.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(addr + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
			t.Fatalf("/metrics content type = %q", got)
		}
		fams, err := obs.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("live /metrics failed format validation: %v", err)
		}
		byName := map[string]obs.PromFamily{}
		for _, f := range fams {
			byName[f.Name] = f
		}
		if f, ok := byName["train_steps_total"]; ok && f.Type == "counter" && len(f.Samples) == 1 {
			if h, ok := byName["train_step_seconds"]; !ok || h.Type != "histogram" {
				t.Fatalf("train_step_seconds missing or not a histogram: %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("train_steps_total never appeared; families: %d", len(fams))
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The JSON snapshot and event ring ride on the same server.
	for _, path := range []string{"/metrics.json", "/debug/events"} {
		resp, err := http.Get(addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !json.Valid(body) {
			t.Fatalf("GET %s: status %d, valid JSON %v", path, resp.StatusCode, json.Valid(body))
		}
	}
}
