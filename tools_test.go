package sam_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sam/internal/obs"
)

// TestCLITools builds and drives the actual command binaries end to end:
// workloadgen produces artifacts, saminspect reads them, samgen trains,
// saves, reloads and writes CSVs. Guarded by -short because it compiles
// three binaries.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"workloadgen", "samgen", "saminspect"} {
		cmd := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	out := run("workloadgen", "-dataset", "census", "-rows", "1200", "-queries", "120",
		"-out", "wl.json", "-schema", "schema.json")
	if !strings.Contains(out, "labeled 120 queries") {
		t.Fatalf("workloadgen output: %s", out)
	}

	out = run("saminspect", "-workload", "wl.json", "-schema", "schema.json")
	for _, want := range []string{"== schema ==", "== workload ==", "queries: 120"} {
		if !strings.Contains(out, want) {
			t.Fatalf("saminspect output missing %q:\n%s", want, out)
		}
	}

	out = run("samgen", "-workload", "wl.json", "-schema", "schema.json",
		"-outdir", "gen", "-epochs", "3", "-hidden", "16", "-samples", "1200",
		"-save", "model.json")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("samgen output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen", "census.csv")); err != nil {
		t.Fatalf("generated CSV missing: %v", err)
	}

	// Generation from the saved model, no retraining.
	out = run("samgen", "-load", "model.json", "-schema", "schema.json",
		"-outdir", "gen2", "-samples", "1200")
	if !strings.Contains(out, "loaded model") {
		t.Fatalf("samgen -load output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen2", "census.csv")); err != nil {
		t.Fatalf("regenerated CSV missing: %v", err)
	}

	out = run("saminspect", "-model", "model.json", "-marginals", "200")
	if !strings.Contains(out, "== model ==") || !strings.Contains(out, "arch: made") {
		t.Fatalf("saminspect model output:\n%s", out)
	}
}

// TestSambenchTraceSmoke is the CI telemetry gate: it runs the smallest
// real experiment with -trace and fails unless the produced JSONL parses
// as a well-formed span tree covering every pipeline phase — train,
// sample, weight, merge, and eval — with positive wall time. A refactor
// that silently drops a phase span (or breaks the JSONL writer) fails
// here, not in production debugging.
func TestSambenchTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sambench")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/sambench").CombinedOutput(); err != nil {
		t.Fatalf("build sambench: %v\n%s", err, out)
	}
	tracePath := filepath.Join(dir, "trace.jsonl")
	cmd := exec.Command(bin, "-scale", "smoke", "-exp", "tab1", "-trace", tracePath, "-progress")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sambench smoke: %v\n%s", err, out)
	}
	for _, want := range []string{"== tab1:", "== phase trace ==", "train: epoch"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("sambench output missing %q:\n%s", want, out)
		}
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f) // rejects empty, malformed, orphaned traces
	if err != nil {
		t.Fatalf("trace JSONL invalid: %v", err)
	}
	wall := map[string]int64{}
	for _, rec := range recs {
		wall[rec.Name] += rec.WallUS
	}
	for _, phase := range []string{"train", "sample", "weight", "merge", "eval"} {
		if _, ok := wall[phase]; !ok {
			t.Fatalf("trace missing %q phase span (have %v)", phase, wall)
		}
		if wall[phase] <= 0 {
			t.Fatalf("phase %q has no recorded wall time", phase)
		}
	}
	root := recs[0]
	if root.Attrs["seed"] == nil || root.Attrs["go_version"] == nil {
		t.Fatalf("trace root missing run metadata attrs: %v", root.Attrs)
	}
}
