package nn

import (
	"math/rand"
	"testing"

	"sam/internal/tensor"
)

// TestTrainingStepAllocs pins the pooling contract at the nn level: a full
// MADE forward + backward + Adam step on a warm tape performs no heap
// allocation (beyond Adam's first-step state, built during warmup). Kernels
// run serially because the parallel path allocates goroutine bookkeeping.
func TestTrainingStepAllocs(t *testing.T) {
	old := tensor.MatMulWorkers()
	tensor.SetMatMulWorkers(1)
	defer tensor.SetMatMulWorkers(old)

	rng := rand.New(rand.NewSource(5))
	colSizes := []int{8, 6, 4, 10}
	m := NewMADE(rng, colSizes, 32, 2)
	x := tensor.New(16, m.InDim())
	x.Randn(rng, 0.5)
	opt := NewAdam(1e-3)
	params := m.Params()
	pairs := make([]GradPair, len(params))

	g := tensor.NewGraph()
	step := func() {
		g.Reset()
		out := m.Forward(g, g.Const(x))
		loss := g.Mean(g.Square(out))
		g.Backward(loss)
		for i, p := range params {
			pairs[i] = GradPair{Param: p, Grad: g.ParamGrad(p)}
		}
		opt.Step(pairs)
	}
	step() // warm pool + Adam state
	step() // steady-state slice capacities
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Fatalf("warm training step allocates %v times, want 0", n)
	}
}

// TestMaskedLinearForwardCacheConsistency checks that optimizer updates are
// reflected by both forward paths through the masked-weight cache.
func TestMaskedLinearForwardCacheConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	colSizes := []int{4, 3, 5}
	m := NewMADE(rng, colSizes, 8, 1)
	x := tensor.New(1, m.InDim())
	x.Randn(rng, 1)

	forward := func() []float64 {
		g := tensor.NewGraph()
		out := m.Forward(g, g.Const(x))
		return append([]float64(nil), out.Val.Data...)
	}
	buf := m.NewInference()

	for round := 0; round < 3; round++ {
		auto := forward()
		copy(buf.X(), x.Data)
		infer := buf.Forward()
		for i := range auto {
			if diff := auto[i] - infer[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("round %d: autodiff/inference mismatch at %d: %v vs %v",
					round, i, auto[i], infer[i])
			}
		}
		// Simulate a training update between rounds.
		g := tensor.NewGraph()
		out := m.Forward(g, g.Const(x))
		loss := g.Mean(g.Square(out))
		g.Backward(loss)
		opt := NewAdam(1e-2)
		params := m.Params()
		pairs := make([]GradPair, 0, len(params))
		for _, p := range params {
			pairs = append(pairs, GradPair{Param: p, Grad: g.ParamGrad(p)})
		}
		opt.Step(pairs)
	}
}
