package nn

import (
	"math/rand"
	"testing"

	"sam/internal/tensor"
)

// BenchmarkMADEForwardAutodiff measures a training-style batched
// forward+backward pass (the inner loop of DPS training) on a persistent
// pooled tape, as ar.Train runs it.
func BenchmarkMADEForwardAutodiff(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	colSizes := []int{64, 32, 16, 128, 8, 4, 50}
	m := NewMADE(rng, colSizes, 64, 2)
	x := tensor.New(32, m.InDim())
	x.Randn(rng, 0.5)
	g := tensor.NewGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		out := m.Forward(g, g.Const(x))
		loss := g.Mean(g.Square(out))
		g.Backward(loss)
	}
}

// BenchmarkMADEForwardInfer measures the allocation-free sampling path
// (the inner loop of database generation).
func BenchmarkMADEForwardInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	colSizes := []int{64, 32, 16, 128, 8, 4, 50}
	m := NewMADE(rng, colSizes, 64, 2)
	buf := m.NewInference()
	for i := range buf.X() {
		if rng.Float64() < 0.05 {
			buf.X()[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Forward()
	}
}

// BenchmarkAdamStep measures one optimizer step over a realistic parameter
// set.
func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewMADE(rng, []int{64, 32, 16, 128}, 64, 2)
	opt := NewAdam(1e-3)
	var pairs []GradPair
	for _, p := range m.Params() {
		g := tensor.New(p.Rows, p.Cols)
		g.Randn(rng, 0.01)
		pairs = append(pairs, GradPair{Param: p, Grad: g})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(pairs)
	}
}
