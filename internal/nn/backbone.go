package nn

import "sam/internal/tensor"

// Backbone is an autoregressive network over grouped categorical columns:
// column i occupies a contiguous block of one-hot input units and the same
// block of output logits, and the logits of column i depend only on the
// inputs of columns < i. MADE and Transformer both implement it; the SAM
// model is architecture-agnostic (§4.1: "SAM can be instantiated by any
// learning-based AR architecture").
type Backbone interface {
	// InDim is the total one-hot width (Σ column domain sizes).
	InDim() int
	// NumCols is the number of modeled columns.
	NumCols() int
	// ColSizes returns the per-column domain sizes (not to be mutated).
	ColSizes() []int
	// Offsets returns each column block's start offset (not to be mutated).
	Offsets() []int
	// Forward runs a batched autodiff pass: batch×InDim in, batch×InDim
	// logits out.
	Forward(g *tensor.Graph, x *tensor.Node) *tensor.Node
	// ColLogits slices column i's logits out of a full output row.
	ColLogits(out []float64, i int) []float64
	// NewInference allocates per-goroutine scratch for the fast
	// no-autodiff path.
	NewInference() Inference
	// NewBatchInference allocates scratch for a b-lane batched forward
	// pass (batched ancestral sampling).
	NewBatchInference(b int) BatchInference
	// Params returns all trainable tensors.
	Params() []*tensor.Tensor
	// OutputBias returns the output layer's bias (1×InDim), used to
	// install priors on specific column blocks.
	OutputBias() *tensor.Tensor
}

// Inference is the allocation-free single-row forward pass used by the
// embarrassingly parallel sampling phase. Not safe for concurrent use;
// create one per goroutine.
type Inference interface {
	// X returns the reusable input row (length InDim); callers zero and
	// fill it between calls.
	X() []float64
	// Forward computes the full logits row for the current X. The result
	// is owned by the Inference and valid until the next call.
	Forward() []float64
}

// BatchInference is the allocation-free B-row forward pass behind batched
// ancestral sampling: B tuples advance one column per step, so each layer
// becomes one (B×H) GEMM instead of B GEMVs and the tiled kernels amortize
// every weight load over the whole batch. Not safe for concurrent use;
// create one per goroutine. Lanes beyond the caller's live count carry
// stale inputs and produce garbage (finite) outputs — callers simply
// ignore those rows.
//
// Implementations may cache activations across Forward/ForwardCol calls
// (the prefix activation cache): after mutating X, callers must call
// InvalidateFrom with the smallest flat column index they touched before
// the next forward pass, or cached state from the previous input may be
// served. Weight updates are tracked independently via tensor versions and
// need no notification beyond the usual MarkDirty.
type BatchInference interface {
	// Batch returns the lane count B fixed at construction.
	Batch() int
	// X returns the reusable B×InDim input matrix; callers zero and fill
	// the rows of live lanes between passes.
	X() *tensor.Tensor
	// InvalidateFrom records that input columns with flat index lo or
	// beyond may have changed in X since the last forward pass, dropping
	// any cached activations that depend on them. Inputs below lo must be
	// unchanged in every lane. lo ≥ InDim is a no-op.
	InvalidateFrom(lo int)
	// SetInput sets X[lane][flat] = 1, equivalent to storing through X()
	// directly but visible to the implementation: ancestral sampling sets
	// exactly one one-hot per column step, and the notification lets sparse
	// input bookkeeping track it without ever rescanning X. Callers must
	// have called InvalidateFrom(lo) with lo ≤ flat since the last forward
	// pass, and within a lane the flat indices passed between two
	// invalidations must not decrease.
	SetInput(lane, flat int)
	// Forward computes the full B×InDim logits for the current X. The
	// result is owned by the buffer and valid until the next call.
	Forward() *tensor.Tensor
	// ForwardCol computes only column i's logit block — a B×ColSizes[i]
	// matrix — which is all ancestral sampling needs at step i. The result
	// is owned by the buffer and valid until the next call.
	ForwardCol(i int) *tensor.Tensor
}

// NumParams returns the total scalar parameter count of a backbone.
func NumParams(b Backbone) int {
	var n int
	for _, p := range b.Params() {
		n += len(p.Data)
	}
	return n
}
