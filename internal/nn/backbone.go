package nn

import "sam/internal/tensor"

// Backbone is an autoregressive network over grouped categorical columns:
// column i occupies a contiguous block of one-hot input units and the same
// block of output logits, and the logits of column i depend only on the
// inputs of columns < i. MADE and Transformer both implement it; the SAM
// model is architecture-agnostic (§4.1: "SAM can be instantiated by any
// learning-based AR architecture").
type Backbone interface {
	// InDim is the total one-hot width (Σ column domain sizes).
	InDim() int
	// NumCols is the number of modeled columns.
	NumCols() int
	// ColSizes returns the per-column domain sizes (not to be mutated).
	ColSizes() []int
	// Offsets returns each column block's start offset (not to be mutated).
	Offsets() []int
	// Forward runs a batched autodiff pass: batch×InDim in, batch×InDim
	// logits out.
	Forward(g *tensor.Graph, x *tensor.Node) *tensor.Node
	// ColLogits slices column i's logits out of a full output row.
	ColLogits(out []float64, i int) []float64
	// NewInference allocates per-goroutine scratch for the fast
	// no-autodiff path.
	NewInference() Inference
	// Params returns all trainable tensors.
	Params() []*tensor.Tensor
	// OutputBias returns the output layer's bias (1×InDim), used to
	// install priors on specific column blocks.
	OutputBias() *tensor.Tensor
}

// Inference is the allocation-free single-row forward pass used by the
// embarrassingly parallel sampling phase. Not safe for concurrent use;
// create one per goroutine.
type Inference interface {
	// X returns the reusable input row (length InDim); callers zero and
	// fill it between calls.
	X() []float64
	// Forward computes the full logits row for the current X. The result
	// is owned by the Inference and valid until the next call.
	Forward() []float64
}

// NumParams returns the total scalar parameter count of a backbone.
func NumParams(b Backbone) int {
	var n int
	for _, p := range b.Params() {
		n += len(p.Data)
	}
	return n
}
