package nn

import (
	"math"
	"math/rand"
	"testing"

	"sam/internal/tensor"
)

func TestTransformerAutoregressiveProperty(t *testing.T) {
	// Perturbing the one-hot block of column j must not change the logits
	// of any column i ≤ j (causal masking + shifted tokens).
	rng := rand.New(rand.NewSource(1))
	colSizes := []int{3, 4, 2, 5}
	tr := NewTransformer(rng, colSizes, 16, 2, 32, 2)
	buf := tr.NewInference()

	base := make([]float64, tr.InDim())
	for i, off := range tr.Offsets() {
		base[off+rng.Intn(colSizes[i])] = 1
	}
	copy(buf.X(), base)
	out0 := append([]float64(nil), buf.Forward()...)

	for j := 0; j < len(colSizes); j++ {
		perturbed := append([]float64(nil), base...)
		for k := 0; k < colSizes[j]; k++ {
			perturbed[tr.Offsets()[j]+k] = rng.Float64()*2 - 1
		}
		copy(buf.X(), perturbed)
		out1 := buf.Forward()
		for i := 0; i <= j; i++ {
			a := tr.ColLogits(out0, i)
			b := tr.ColLogits(out1, i)
			for k := range a {
				if math.Abs(a[k]-b[k]) > 1e-9 {
					t.Fatalf("column %d logits depend on column %d input", i, j)
				}
			}
		}
	}
}

func TestTransformerInferMatchesAutodiff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	colSizes := []int{2, 3, 4}
	tr := NewTransformer(rng, colSizes, 8, 2, 16, 2)
	x := tensor.New(1, tr.InDim())
	for i, off := range tr.Offsets() {
		x.Set(0, off+rng.Intn(colSizes[i]), 1)
	}
	g := tensor.NewGraph()
	outG := tr.Forward(g, g.Const(x))
	buf := tr.NewInference()
	copy(buf.X(), x.Data)
	outI := buf.Forward()
	for i := range outI {
		if math.Abs(outI[i]-outG.Val.Data[i]) > 1e-9 {
			t.Fatalf("infer/autodiff mismatch at %d: %v vs %v", i, outI[i], outG.Val.Data[i])
		}
	}
}

func TestTransformerBatchedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	colSizes := []int{3, 3}
	tr := NewTransformer(rng, colSizes, 8, 1, 16, 1)
	x := tensor.New(4, tr.InDim())
	for b := 0; b < 4; b++ {
		for i, off := range tr.Offsets() {
			x.Set(b, off+(b+i)%colSizes[i], 1)
		}
	}
	g := tensor.NewGraph()
	out := tr.Forward(g, g.Const(x))
	if out.Val.Rows != 4 || out.Val.Cols != tr.InDim() {
		t.Fatalf("batched output shape %v", out.Val)
	}
	// Each batch row must equal its standalone forward.
	for b := 0; b < 4; b++ {
		g2 := tensor.NewGraph()
		single := tr.Forward(g2, g2.Const(tensor.FromSlice(1, tr.InDim(), x.Row(b))))
		for j := range single.Val.Data {
			if math.Abs(single.Val.Data[j]-out.Val.At(b, j)) > 1e-12 {
				t.Fatalf("batch row %d differs from standalone forward", b)
			}
		}
	}
}

func TestTransformerGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewTransformer(rng, []int{3, 4}, 8, 2, 16, 1)
	x := tensor.New(2, tr.InDim())
	for b := 0; b < 2; b++ {
		for i, off := range tr.Offsets() {
			x.Set(b, off+rng.Intn(tr.ColSizes()[i]), 1)
		}
	}
	g := tensor.NewGraph()
	out := tr.Forward(g, g.Const(x))
	loss := g.Mean(g.Square(out))
	g.Backward(loss)
	nonzero := 0
	for _, p := range tr.Params() {
		grad := g.ParamGrad(p)
		if grad == nil {
			t.Fatalf("parameter %v untouched by graph", p)
		}
		for _, gv := range grad.Data {
			if math.IsNaN(gv) || math.IsInf(gv, 0) {
				t.Fatal("non-finite gradient")
			}
			if gv != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("no gradients flowed")
	}
}

func TestTransformerTrainsSimpleDistribution(t *testing.T) {
	// Same learnability check as MADE: x2 deterministically equals x1.
	rng := rand.New(rand.NewSource(5))
	colSizes := []int{2, 2}
	tr := NewTransformer(rng, colSizes, 12, 2, 24, 1)
	opt := NewAdam(0.02)

	samples := [][2]int{{0, 0}, {1, 1}, {0, 0}, {1, 1}}
	for epoch := 0; epoch < 250; epoch++ {
		g := tensor.NewGraph()
		x := tensor.New(len(samples), tr.InDim())
		for r, s := range samples {
			x.Set(r, tr.Offsets()[0]+s[0], 1)
			x.Set(r, tr.Offsets()[1]+s[1], 1)
		}
		out := tr.Forward(g, g.Const(x))
		col2 := g.SliceCols(out, tr.Offsets()[1], colSizes[1])
		mask2 := tensor.New(len(samples), colSizes[1])
		for r, s := range samples {
			mask2.Set(r, s[1], 1)
		}
		p := g.RangeProb(col2, mask2)
		loss := g.Scale(g.Mean(g.Log(p)), -1)
		g.Backward(loss)
		var pairs []GradPair
		for _, param := range tr.Params() {
			pairs = append(pairs, GradPair{Param: param, Grad: g.ParamGrad(param)})
		}
		opt.Step(pairs)
	}

	buf := tr.NewInference()
	for v := 0; v < 2; v++ {
		for i := range buf.X() {
			buf.X()[i] = 0
		}
		buf.X()[tr.Offsets()[0]+v] = 1
		out := buf.Forward()
		logits := tr.ColLogits(out, 1)
		probs := make([]float64, 2)
		tensor.SoftmaxRowInto(probs, logits)
		if probs[v] < 0.85 {
			t.Fatalf("P(x2=%d|x1=%d) = %v, want > 0.85", v, v, probs[v])
		}
	}
}

func TestTransformerPanicsOnBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, fn := range []func(){
		func() { NewTransformer(rng, nil, 8, 1, 8, 1) },
		func() { NewTransformer(rng, []int{2}, 0, 1, 8, 1) },
		func() { NewTransformer(rng, []int{2}, 8, 3, 8, 1) }, // d % heads != 0
		func() { NewTransformer(rng, []int{2, 0}, 8, 1, 8, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGradCheckTensorOpsForTransformer(t *testing.T) {
	// Finite-difference checks for the transformer-specific ops.
	rng := rand.New(rand.NewSource(7))
	check := func(name string, param *tensor.Tensor, f func(g *tensor.Graph, p *tensor.Node) *tensor.Node) {
		g := tensor.NewGraph()
		p := g.Param(param)
		loss := f(g, p)
		g.Backward(loss)
		analytic := append([]float64(nil), g.ParamGrad(param).Data...)
		const h = 1e-6
		for i := range param.Data {
			orig := param.Data[i]
			param.Data[i] = orig + h
			g2 := tensor.NewGraph()
			lp := f(g2, g2.Param(param)).Val.Data[0]
			param.Data[i] = orig - h
			g3 := tensor.NewGraph()
			lm := f(g3, g3.Param(param)).Val.Data[0]
			param.Data[i] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s grad[%d]: numeric %v analytic %v", name, i, numeric, analytic[i])
			}
		}
	}

	a := tensor.New(3, 4)
	a.Randn(rng, 1)
	check("SoftmaxRows", a, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.SoftmaxRows(p)))
	})

	b := tensor.New(3, 4)
	b.Randn(rng, 1)
	other := tensor.New(2, 4)
	other.Randn(rng, 1)
	check("MatMulTB", b, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.MatMulTB(p, g.Const(other))))
	})
	check("MatMulTB-right", b, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.MatMulTB(g.Const(other), p)))
	})

	c := tensor.New(2, 6)
	c.Randn(rng, 1)
	gain := tensor.New(1, 6)
	gain.Randn(rng, 0.5)
	bias := tensor.New(1, 6)
	bias.Randn(rng, 0.5)
	check("LayerNorm-x", c, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.LayerNorm(p, g.Const(gain), g.Const(bias), 1e-5)))
	})
	check("LayerNorm-gain", gain, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.LayerNorm(g.Const(c), p, g.Const(bias), 1e-5)))
	})
	check("LayerNorm-bias", bias, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.LayerNorm(g.Const(c), g.Const(gain), p, 1e-5)))
	})

	d := tensor.New(2, 3)
	d.Randn(rng, 1)
	e := tensor.New(3, 3)
	e.Randn(rng, 1)
	check("ConcatRows+SliceRows", d, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		cat := g.ConcatRows(p, g.Const(e))
		return g.Mean(g.Square(g.SliceRows(cat, 1, 3)))
	})
	mask := tensor.New(2, 3)
	mask.Set(0, 1, -5)
	check("AddConst", d, func(g *tensor.Graph, p *tensor.Node) *tensor.Node {
		return g.Mean(g.Square(g.AddConst(p, mask)))
	})
}
