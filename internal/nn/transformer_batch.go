package nn

import (
	"math"

	"sam/internal/tensor"
)

// transformerBatch is the Transformer's BatchInference. It is built around
// the prefix activation cache (the classic KV cache): ancestral sampling
// extends each lane's token sequence by one position per column step, so a
// step appends position i — one B-row q/k/v projection, one attention row
// over the cached keys/values, one feed-forward — instead of re-running
// the transformer over the whole prefix. K/V buffers are per layer and
// position-major (row p*B+l holds position p of lane l), so the
// projections of the appended position are single B×dModel GEMMs into
// precomputed views. Attention and layer norms stay scalar per
// (lane, position); they are O(d) per row versus the projections' O(d²).
type transformerBatch struct {
	t     *Transformer
	batch int

	x   *tensor.Tensor // B × inDim
	out *tensor.Tensor // B × inDim (Forward result)

	// Per-layer K/V caches: kCache[l] row p*B+lane holds position p's key
	// at layer l; kViews[l][p]/vViews[l][p] expose position p's B rows so
	// the projections write straight into the cache.
	kCache, vCache []*tensor.Tensor
	kViews, vViews [][]*tensor.Tensor

	// normed holds the final layer-normed hidden state of every cached
	// position (n·B × dModel); writeBlock projects output logits from it.
	normed *tensor.Tensor

	// Scratch for the position currently being appended, all B rows wide:
	// h is the residual stream, ln the pre-norm/projection temporary.
	h, ln, q, ctx *tensor.Tensor // B × dModel
	ff            *tensor.Tensor // B × ff

	scores   []float64
	colViews []*tensor.Tensor // B × colSizes[i] views over a shared buffer

	// Cache state: positions [0, validPos) have correct K/V at every layer
	// and correct final normed states for the current X. InvalidateFrom
	// shrinks it when inputs change; any weight MarkDirty drops it whole.
	validPos   int
	params     []*tensor.Tensor
	paramStamp uint64
}

// NewBatchInference allocates batched scratch sized for t and b lanes; the
// K/V prefix cache is the only per-lane state that grows with the column
// count (2·layers·n·dModel floats per lane, plus n·dModel for the final
// hidden states). All allocation happens here — appended positions reuse
// these buffers, so the steady-state forward path performs none.
func (t *Transformer) NewBatchInference(b int) BatchInference {
	if b < 1 {
		panic("nn: batch inference needs at least one lane")
	}
	n := len(t.colSizes)
	bi := &transformerBatch{
		t:      t,
		batch:  b,
		x:      tensor.New(b, t.inDim),
		out:    tensor.New(b, t.inDim),
		normed: tensor.New(n*b, t.dModel),
		h:      tensor.New(b, t.dModel),
		ln:     tensor.New(b, t.dModel),
		q:      tensor.New(b, t.dModel),
		ctx:    tensor.New(b, t.dModel),
		ff:     tensor.New(b, t.ff),
		scores: make([]float64, n),
		params: t.Params(),
	}
	bi.paramStamp = ^uint64(0) // force a version sync on first use
	for range t.layers {
		k := tensor.New(n*b, t.dModel)
		v := tensor.New(n*b, t.dModel)
		bi.kCache = append(bi.kCache, k)
		bi.vCache = append(bi.vCache, v)
		view := func(full *tensor.Tensor) []*tensor.Tensor {
			vs := make([]*tensor.Tensor, n)
			for p := 0; p < n; p++ {
				vs[p] = tensor.FromSlice(b, t.dModel, full.Data[p*b*t.dModel:(p+1)*b*t.dModel])
			}
			return vs
		}
		bi.kViews = append(bi.kViews, view(k))
		bi.vViews = append(bi.vViews, view(v))
	}
	maxSize := 0
	for _, s := range t.colSizes {
		if s > maxSize {
			maxSize = s
		}
	}
	colBuf := make([]float64, b*maxSize)
	for _, s := range t.colSizes {
		bi.colViews = append(bi.colViews, tensor.FromSlice(b, s, colBuf[:b*s]))
	}
	return bi
}

// Batch returns the lane count.
func (b *transformerBatch) Batch() int { return b.batch }

// X returns the reusable B×InDim input matrix.
func (b *transformerBatch) X() *tensor.Tensor { return b.x }

// SetInput sets x[lane][flat] = 1. The transformer keeps no input-side
// sparse bookkeeping (appendPos already visits only the changed column's
// one-hot block), so the notification is just the direct store.
func (b *transformerBatch) SetInput(lane, flat int) {
	b.x.Data[lane*b.t.inDim+flat] = 1
}

// syncVersion drops the K/V cache when any trainable tensor has been
// mutated (summed tensor versions strictly increase on MarkDirty).
func (b *transformerBatch) syncVersion() {
	var stamp uint64
	for _, p := range b.params {
		stamp += p.Version()
	}
	if stamp != b.paramStamp {
		b.validPos = 0
		b.paramStamp = stamp
	}
}

// InvalidateFrom shrinks the cached-position prefix: a change in input
// column c only alters the token at position c+1 (tokens are shifted
// right behind SOS), so positions 0..c keep their cached K/V. Changes in
// the last column never feed a token and invalidate nothing.
func (b *transformerBatch) InvalidateFrom(lo int) {
	t := b.t
	if lo >= t.inDim {
		return
	}
	c := 0
	for i, off := range t.offsets {
		if off <= lo {
			c = i
		} else {
			break
		}
	}
	if c+1 < b.validPos {
		b.validPos = c + 1
	}
}

// forwardTo extends the cached prefix through position p, appending one
// position at a time; positions below validPos are served from the cache.
func (b *transformerBatch) forwardTo(p int) {
	b.syncVersion()
	for pos := b.validPos; pos <= p; pos++ {
		b.appendPos(pos)
	}
	if b.validPos <= p {
		b.validPos = p + 1
	}
}

// appendPos runs the transformer for position pos of every lane on top of
// the cached prefix: it embeds the token, projects q and the new k/v rows,
// attends over cached keys/values 0..pos, applies the feed-forward block,
// and stores the final layer-normed state. It mirrors the single-row
// inference path exactly (pre-norm blocks, causal attention, shifted
// tokens) — causality is what makes the append independent of positions
// after pos.
func (b *transformerBatch) appendPos(pos int) {
	t := b.t
	B := b.batch

	// Token: SOS or the shifted column embedding, plus the position row.
	posRow := t.pos.Row(pos)
	for l := 0; l < B; l++ {
		row := b.h.Row(l)
		if pos == 0 {
			copy(row, t.sos.Data)
		} else {
			for j := range row {
				row[j] = 0
			}
			off, size := t.offsets[pos-1], t.colSizes[pos-1]
			xrow := b.x.Row(l)
			for c := 0; c < size; c++ {
				xv := xrow[off+c]
				if xv == 0 {
					continue
				}
				emb := t.wEmb.Row(off + c)
				for j, ev := range emb {
					row[j] += xv * ev
				}
			}
		}
		for j, pv := range posRow {
			row[j] += pv
		}
	}

	scale := 1 / math.Sqrt(float64(t.dk))
	for li, layer := range t.layers {
		// Pre-norm attention block: project this position, cache its k/v.
		for r := 0; r < B; r++ {
			layerNormRow(b.ln.Row(r), b.h.Row(r), layer.ln1Gain.Data, layer.ln1Bias.Data, 1e-5)
		}
		tensor.MatMulInto(b.q, b.ln, layer.wq)
		tensor.MatMulInto(b.kViews[li][pos], b.ln, layer.wk)
		tensor.MatMulInto(b.vViews[li][pos], b.ln, layer.wv)
		for i := range b.ctx.Data {
			b.ctx.Data[i] = 0
		}
		k, v := b.kCache[li], b.vCache[li]
		for hd := 0; hd < t.heads; hd++ {
			lo := hd * t.dk
			hi := lo + t.dk
			for l := 0; l < B; l++ {
				qi := b.q.Row(l)
				scores := b.scores[:pos+1]
				maxv := math.Inf(-1)
				for j := 0; j <= pos; j++ {
					kj := k.Row(j*B + l)
					var s float64
					for c := lo; c < hi; c++ {
						s += qi[c] * kj[c]
					}
					scores[j] = s * scale
					if scores[j] > maxv {
						maxv = scores[j]
					}
				}
				var sum float64
				for j := range scores {
					scores[j] = math.Exp(scores[j] - maxv)
					sum += scores[j]
				}
				inv := 1 / sum
				ctxRow := b.ctx.Row(l)
				for j := 0; j <= pos; j++ {
					pj := scores[j] * inv
					vj := v.Row(j*B + l)
					for c := lo; c < hi; c++ {
						ctxRow[c] += pj * vj[c]
					}
				}
			}
		}
		tensor.MatMulInto(b.ln, b.ctx, layer.wo)
		addRows(b.h, b.ln)

		// Pre-norm feed-forward block.
		for r := 0; r < B; r++ {
			layerNormRow(b.ln.Row(r), b.h.Row(r), layer.ln2Gain.Data, layer.ln2Bias.Data, 1e-5)
		}
		tensor.MatMulInto(b.ff, b.ln, layer.w1)
		addRowBiasReLU(b.ff, layer.b1.Data)
		tensor.MatMulInto(b.ln, b.ff, layer.w2)
		addRowBias(b.ln, layer.b2.Data)
		addRows(b.h, b.ln)
	}

	for l := 0; l < B; l++ {
		layerNormRow(b.normed.Row(pos*B+l), b.h.Row(l), t.lnFGain.Data, t.lnFBias.Data, 1e-5)
	}
}

// writeBlock projects position i's hidden state of every lane onto column
// i's output block; put(l) supplies the destination slice for lane l.
func (b *transformerBatch) writeBlock(i int, put func(l int) []float64) {
	t := b.t
	off, size := t.offsets[i], t.colSizes[i]
	for l := 0; l < b.batch; l++ {
		h := b.normed.Row(i*b.batch + l)
		dst := put(l)
		copy(dst, t.bOut.Data[off:off+size])
		for kk, hv := range h {
			if hv == 0 {
				continue
			}
			wrow := t.wOut.Data[kk*t.inDim+off : kk*t.inDim+off+size]
			for j, wv := range wrow {
				dst[j] += hv * wv
			}
		}
	}
}

// Forward computes the full B×InDim logits for the current X.
func (b *transformerBatch) Forward() *tensor.Tensor {
	n := len(b.t.colSizes)
	b.forwardTo(n - 1)
	for i := 0; i < n; i++ {
		off, size := b.t.offsets[i], b.t.colSizes[i]
		b.writeBlock(i, func(l int) []float64 {
			return b.out.Row(l)[off : off+size]
		})
	}
	return b.out
}

// ForwardCol computes only column i's B×colSizes[i] logit block. With a
// warm prefix cache this appends at most one position — the column-step
// cost drops from O(i) re-projected positions to O(1) plus the O(i)
// attention dot products.
func (b *transformerBatch) ForwardCol(i int) *tensor.Tensor {
	b.forwardTo(i)
	out := b.colViews[i]
	b.writeBlock(i, out.Row)
	return out
}

// addRows adds o to t elementwise (same shape).
func addRows(t, o *tensor.Tensor) {
	td := t.Data
	for i, v := range o.Data[:len(td)] {
		td[i] += v
	}
}
