package nn

import (
	"math"

	"sam/internal/tensor"
)

// transformerBatch is the Transformer's BatchInference. Buffers are
// position-major — row p*B+l holds position p of lane l — so the q/k/v,
// output and feed-forward projections of a whole prefix become single
// GEMMs over (positions×B) rows via precomputed prefix views. Attention
// and layer norms stay scalar per (lane, position); they are O(d) per row
// versus the projections' O(d²), so the GEMMs dominate.
type transformerBatch struct {
	t     *Transformer
	batch int

	x   *tensor.Tensor // B × inDim
	out *tensor.Tensor // B × inDim (Forward result)

	seq, normed, q, k, v, ctx *tensor.Tensor // (n·B) × dModel
	ff                        *tensor.Tensor // (n·B) × ff

	// Prefix views: index p exposes the first (p+1)·B rows of the matching
	// buffer, so a step-p forward runs its GEMMs over exactly the live
	// prefix without reallocating headers.
	seqV, normedV, qV, kV, vV, ctxV, ffV []*tensor.Tensor

	scores   []float64
	colViews []*tensor.Tensor // B × colSizes[i] views over a shared buffer
}

// NewBatchInference allocates batched scratch sized for t and b lanes.
func (t *Transformer) NewBatchInference(b int) BatchInference {
	if b < 1 {
		panic("nn: batch inference needs at least one lane")
	}
	n := len(t.colSizes)
	bi := &transformerBatch{
		t:      t,
		batch:  b,
		x:      tensor.New(b, t.inDim),
		out:    tensor.New(b, t.inDim),
		seq:    tensor.New(n*b, t.dModel),
		normed: tensor.New(n*b, t.dModel),
		q:      tensor.New(n*b, t.dModel),
		k:      tensor.New(n*b, t.dModel),
		v:      tensor.New(n*b, t.dModel),
		ctx:    tensor.New(n*b, t.dModel),
		ff:     tensor.New(n*b, t.ff),
		scores: make([]float64, n),
	}
	view := func(full *tensor.Tensor, cols int) []*tensor.Tensor {
		vs := make([]*tensor.Tensor, n)
		for p := 0; p < n; p++ {
			rows := (p + 1) * b
			vs[p] = tensor.FromSlice(rows, cols, full.Data[:rows*cols])
		}
		return vs
	}
	bi.seqV = view(bi.seq, t.dModel)
	bi.normedV = view(bi.normed, t.dModel)
	bi.qV = view(bi.q, t.dModel)
	bi.kV = view(bi.k, t.dModel)
	bi.vV = view(bi.v, t.dModel)
	bi.ctxV = view(bi.ctx, t.dModel)
	bi.ffV = view(bi.ff, t.ff)
	maxSize := 0
	for _, s := range t.colSizes {
		if s > maxSize {
			maxSize = s
		}
	}
	colBuf := make([]float64, b*maxSize)
	for _, s := range t.colSizes {
		bi.colViews = append(bi.colViews, tensor.FromSlice(b, s, colBuf[:b*s]))
	}
	return bi
}

// Batch returns the lane count.
func (b *transformerBatch) Batch() int { return b.batch }

// X returns the reusable B×InDim input matrix.
func (b *transformerBatch) X() *tensor.Tensor { return b.x }

// forwardPrefix runs the transformer over token positions 0..p for every
// lane, leaving the final layer-normed hidden states in b.normed. It
// mirrors the single-row inference path exactly (pre-norm blocks, causal
// attention, shifted tokens).
func (b *transformerBatch) forwardPrefix(p int) {
	t := b.t
	B := b.batch

	// Tokens: SOS then shifted column embeddings, plus positions.
	for pos := 0; pos <= p; pos++ {
		posRow := t.pos.Row(pos)
		for l := 0; l < B; l++ {
			row := b.seq.Row(pos*B + l)
			if pos == 0 {
				copy(row, t.sos.Data)
			} else {
				for j := range row {
					row[j] = 0
				}
				off, size := t.offsets[pos-1], t.colSizes[pos-1]
				xrow := b.x.Row(l)
				for c := 0; c < size; c++ {
					xv := xrow[off+c]
					if xv == 0 {
						continue
					}
					emb := t.wEmb.Row(off + c)
					for j, ev := range emb {
						row[j] += xv * ev
					}
				}
			}
			for j, pv := range posRow {
				row[j] += pv
			}
		}
	}

	rows := (p + 1) * B
	scale := 1 / math.Sqrt(float64(t.dk))
	for _, layer := range t.layers {
		// Pre-norm attention block.
		for r := 0; r < rows; r++ {
			layerNormRow(b.normed.Row(r), b.seq.Row(r), layer.ln1Gain.Data, layer.ln1Bias.Data, 1e-5)
		}
		tensor.MatMulInto(b.qV[p], b.normedV[p], layer.wq)
		tensor.MatMulInto(b.kV[p], b.normedV[p], layer.wk)
		tensor.MatMulInto(b.vV[p], b.normedV[p], layer.wv)
		zero := b.ctx.Data[:rows*t.dModel]
		for i := range zero {
			zero[i] = 0
		}
		for hd := 0; hd < t.heads; hd++ {
			lo := hd * t.dk
			hi := lo + t.dk
			for l := 0; l < B; l++ {
				for i := 0; i <= p; i++ {
					qi := b.q.Row(i*B + l)
					scores := b.scores[:i+1]
					maxv := math.Inf(-1)
					for j := 0; j <= i; j++ {
						kj := b.k.Row(j*B + l)
						var s float64
						for c := lo; c < hi; c++ {
							s += qi[c] * kj[c]
						}
						scores[j] = s * scale
						if scores[j] > maxv {
							maxv = scores[j]
						}
					}
					var sum float64
					for j := range scores {
						scores[j] = math.Exp(scores[j] - maxv)
						sum += scores[j]
					}
					inv := 1 / sum
					ctxRow := b.ctx.Row(i*B + l)
					for j := 0; j <= i; j++ {
						pj := scores[j] * inv
						vj := b.v.Row(j*B + l)
						for c := lo; c < hi; c++ {
							ctxRow[c] += pj * vj[c]
						}
					}
				}
			}
		}
		tensor.MatMulInto(b.normedV[p], b.ctxV[p], layer.wo)
		addRows(b.seqV[p], b.normedV[p])

		// Pre-norm feed-forward block.
		for r := 0; r < rows; r++ {
			layerNormRow(b.normed.Row(r), b.seq.Row(r), layer.ln2Gain.Data, layer.ln2Bias.Data, 1e-5)
		}
		tensor.MatMulInto(b.ffV[p], b.normedV[p], layer.w1)
		addRowBiasReLU(b.ffV[p], layer.b1.Data)
		tensor.MatMulInto(b.normedV[p], b.ffV[p], layer.w2)
		addRowBias(b.normedV[p], layer.b2.Data)
		addRows(b.seqV[p], b.normedV[p])
	}

	for r := 0; r < rows; r++ {
		layerNormRow(b.normed.Row(r), b.seq.Row(r), t.lnFGain.Data, t.lnFBias.Data, 1e-5)
	}
}

// writeBlock projects position i's hidden state of every lane onto column
// i's output block; put(l) supplies the destination slice for lane l.
func (b *transformerBatch) writeBlock(i int, put func(l int) []float64) {
	t := b.t
	off, size := t.offsets[i], t.colSizes[i]
	for l := 0; l < b.batch; l++ {
		h := b.normed.Row(i*b.batch + l)
		dst := put(l)
		copy(dst, t.bOut.Data[off:off+size])
		for kk, hv := range h {
			if hv == 0 {
				continue
			}
			wrow := t.wOut.Data[kk*t.inDim+off : kk*t.inDim+off+size]
			for j, wv := range wrow {
				dst[j] += hv * wv
			}
		}
	}
}

// Forward computes the full B×InDim logits for the current X.
func (b *transformerBatch) Forward() *tensor.Tensor {
	n := len(b.t.colSizes)
	b.forwardPrefix(n - 1)
	for i := 0; i < n; i++ {
		off, size := b.t.offsets[i], b.t.colSizes[i]
		b.writeBlock(i, func(l int) []float64 {
			return b.out.Row(l)[off : off+size]
		})
	}
	return b.out
}

// ForwardCol computes only column i's B×colSizes[i] logit block, running
// the transformer over just the prefix positions 0..i that feed it.
func (b *transformerBatch) ForwardCol(i int) *tensor.Tensor {
	b.forwardPrefix(i)
	out := b.colViews[i]
	b.writeBlock(i, out.Row)
	return out
}

// addRows adds o to t elementwise (same shape, shared-prefix views).
func addRows(t, o *tensor.Tensor) {
	td := t.Data
	for i, v := range o.Data[:len(td)] {
		td[i] += v
	}
}
