package nn

import "sam/internal/tensor"

// madeBatch is MADE's BatchInference: per-layer B×width activation
// matrices driven by the span-aware masked GEMM kernels, so one forward
// pass of B lanes costs one masked matmul per layer instead of B.
type madeBatch struct {
	m    *MADE
	x    *tensor.Tensor   // B × inDim
	acts []*tensor.Tensor // per layer, B × layer width
	// colViews[i] is a B×colSizes[i] view over a shared buffer sized for
	// the widest column; ForwardCol writes into it so no per-call tensor
	// headers are allocated.
	colViews []*tensor.Tensor
	// suffix[i] records that layer i's mask spans are suffix-monotone
	// (always true for NewMADE's sorted-degree masks), enabling the
	// span-hoisted suffix kernels.
	suffix []bool
	// heads[i][l] is the prefix of hidden layer l's units that column i's
	// logit block can depend on (nil when any layer is not suffix-monotone).
	// Sorted degrees make every dependency set a unit prefix, so ForwardCol
	// evaluates each hidden layer only up to that width.
	heads [][]int
	// wts[l] caches layer l's masked weight product transposed (refreshed
	// lazily against W.Version()), feeding the prefix-dot kernels; entry 0
	// is nil because the sparse one-hot input favors the axpy form there,
	// and the output layer keeps none because its block projection runs the
	// zero-compacted axpy over the masked product in its native layout.
	wts    []*tensor.Tensor
	wtSeen []uint64
	// prefixes[l][j] is the input prefix feeding unit j of layer l — the
	// transpose of the suffix spans. Output-layer blocks share one uniform
	// prefix (heads[i]'s last entry), so no table is kept for it.
	prefixes [][]int

	// Prefix activation cache (nil valid = caching disabled, non-suffix
	// masks). valid[l] is the width of acts[l] whose values are correct for
	// the current X: ancestral sampling changes one input column per step,
	// and sorted degrees mean that column reaches only a suffix of each
	// hidden layer, so the valid prefix survives from step to step and a
	// column step recomputes just [valid[l], head) instead of [0, head).
	// InvalidateFrom shrinks the widths; forward passes grow them.
	valid []int
	// params and paramStamp version-track every trainable tensor: any
	// MarkDirty (an optimizer step) advances the summed version, dropping
	// the whole cache. Weight retransposition is still handled per layer by
	// wtSeen; the stamp additionally covers biases, which the un-cached
	// path read fresh every pass.
	params     []*tensor.Tensor
	paramStamp uint64

	// nzIdx[l] lists the (ascending) nonzero x indices of lane l within the
	// prefix [0, nzValid), maintained from the same InvalidateFrom signals
	// as the activation cache. Ancestral sampling sets one one-hot per
	// column, so the input layer's recompute walks these few indices
	// instead of scanning the whole sampled prefix for nonzeros every step.
	nzIdx   [][]int
	nzValid int
	// inPref[i] is the input prefix feeding hidden units [0, heads[i][0]) —
	// how far nzIdx must cover before ForwardCol(i)'s first layer.
	inPref []int
	// hNZ[l] lists the (ascending) nonzero indices of lane l's final hidden
	// activations within [0, hValid). The cache invariant makes the valid
	// prefix's values stable between invalidations, so the output-block
	// projection reuses these lists instead of rescanning half-zero ReLU
	// rows every column step; recomputed tails are rescanned once.
	hNZ    [][]int
	hValid int
}

// NewBatchInference allocates batched scratch sized for m and b lanes.
func (m *MADE) NewBatchInference(b int) BatchInference {
	if b < 1 {
		panic("nn: batch inference needs at least one lane")
	}
	bi := &madeBatch{m: m, x: tensor.New(b, m.inDim)}
	for _, l := range m.layers {
		bi.acts = append(bi.acts, tensor.New(b, l.W.Cols))
		bi.suffix = append(bi.suffix, tensor.SpansSuffixMonotone(l.cache.Spans(), l.W.Cols))
	}
	maxSize := 0
	for _, s := range m.colSizes {
		if s > maxSize {
			maxSize = s
		}
	}
	colBuf := make([]float64, b*maxSize)
	for _, s := range m.colSizes {
		bi.colViews = append(bi.colViews, tensor.FromSlice(b, s, colBuf[:b*s]))
	}
	allSuffix := true
	for _, ok := range bi.suffix {
		allSuffix = allSuffix && ok
	}
	if allSuffix {
		// Walk the dependency prefixes backwards from each output block:
		// the block needs the output-layer weight rows whose suffix starts
		// before the block's end, and each hidden layer needs the rows of
		// the layer above it that reach the prefix already required.
		last := len(m.layers) - 1
		for i, off := range m.offsets {
			h := countStartsBelow(m.layers[last].cache.Spans(), m.layers[last].W.Rows, off+m.colSizes[i])
			hs := make([]int, last)
			for l := last - 1; l >= 0; l-- {
				hs[l] = h
				if l > 0 {
					h = countStartsBelow(m.layers[l].cache.Spans(), m.layers[l].W.Rows, h)
				}
			}
			bi.heads = append(bi.heads, hs)
		}
		bi.wts = make([]*tensor.Tensor, len(m.layers))
		bi.wtSeen = make([]uint64, len(m.layers))
		bi.prefixes = make([][]int, len(m.layers))
		for l := 1; l < last; l++ {
			w := m.layers[l].W
			bi.wts[l] = tensor.New(w.Cols, w.Rows)
			pref := make([]int, w.Cols)
			for j := range pref {
				pref[j] = countStartsBelow(m.layers[l].cache.Spans(), w.Rows, j+1)
			}
			bi.prefixes[l] = pref
		}
		bi.valid = make([]int, last)
		bi.params = m.Params()
		bi.paramStamp = ^uint64(0) // force a version sync on first use
		bi.nzIdx = make([][]int, b)
		nzBuf := make([]int, b*len(m.colSizes))
		for l := range bi.nzIdx {
			// Sized for the sampling workload (one one-hot per column);
			// denser inputs grow a lane's list on first use.
			bi.nzIdx[l] = nzBuf[l*len(m.colSizes) : l*len(m.colSizes) : (l+1)*len(m.colSizes)]
		}
		bi.inPref = make([]int, len(m.offsets))
		for i := range bi.inPref {
			bi.inPref[i] = countStartsBelow(m.layers[0].cache.Spans(), m.inDim, bi.heads[i][0])
		}
		bi.hNZ = make([][]int, b)
		hw := m.layers[last].W.Rows
		hBuf := make([]int, b*hw)
		for l := range bi.hNZ {
			bi.hNZ[l] = hBuf[l*hw : l*hw : (l+1)*hw]
		}
	}
	return bi
}

// syncVersion drops the activation cache when any trainable tensor has
// been mutated (summed tensor versions strictly increase on MarkDirty).
func (b *madeBatch) syncVersion() {
	var stamp uint64
	for _, p := range b.params {
		stamp += p.Version()
	}
	if stamp != b.paramStamp {
		for l := range b.valid {
			b.valid[l] = 0
		}
		b.clampHNZ(0)
		b.paramStamp = stamp
	}
}

// InvalidateFrom shrinks the cached-activation widths to exclude every
// hidden unit reachable from input columns at flat index lo or beyond.
// Layer 0's stale boundary is the span start of input lo (suffix-monotone:
// later inputs start no earlier); each deeper layer's boundary is the span
// start of the shallower layer's first stale unit.
func (b *madeBatch) InvalidateFrom(lo int) {
	if b.valid == nil || lo >= b.m.inDim {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if lo < b.nzValid {
		// Entries at or past lo may have changed; drop them from every
		// lane's nonzero list (ascending, so they sit at the tail) and let
		// the next forward rescan that range.
		for l := range b.nzIdx {
			lst := b.nzIdx[l]
			for len(lst) > 0 && lst[len(lst)-1] >= lo {
				lst = lst[:len(lst)-1]
			}
			b.nzIdx[l] = lst
		}
		b.nzValid = lo
	}
	stale := b.m.layers[0].cache.Spans()[2*lo]
	if stale < b.valid[0] {
		b.valid[0] = stale
	}
	for l := 1; l < len(b.valid); l++ {
		prev := b.valid[l-1]
		if prev >= b.m.layers[l].W.Rows {
			break // nothing stale reaches this layer
		}
		stale = b.m.layers[l].cache.Spans()[2*prev]
		if stale >= b.valid[l] {
			break
		}
		b.valid[l] = stale
	}
	b.clampHNZ(b.valid[len(b.valid)-1])
}

// SetInput sets x[lane][flat] = 1 and records it in the lane's nonzero
// list directly: the bit and its bookkeeping update together, so the list
// invariant (every nonzero below nzValid is listed) holds without ever
// scanning the input row. The SetInput contract (flat at or past the last
// invalidation, nondecreasing per lane) keeps the lists ascending.
func (b *madeBatch) SetInput(lane, flat int) {
	b.x.Data[lane*b.m.inDim+flat] = 1
	if b.nzIdx == nil {
		return
	}
	b.nzIdx[lane] = append(b.nzIdx[lane], flat)
	if flat >= b.nzValid {
		b.nzValid = flat + 1
	}
}

// ensureNZ extends every lane's nonzero index list to cover x columns
// [0, kEnd). Each input entry is scanned at most once between
// invalidations, so a full sampling sweep scans the input row once total
// instead of once per column step.
func (b *madeBatch) ensureNZ(kEnd int) {
	if b.nzValid >= kEnd {
		return
	}
	cols := b.m.inDim
	for l := range b.nzIdx {
		row := b.x.Data[l*cols+b.nzValid : l*cols+kEnd]
		lst := b.nzIdx[l]
		for o, v := range row {
			if v != 0 {
				lst = append(lst, b.nzValid+o)
			}
		}
		b.nzIdx[l] = lst
	}
	b.nzValid = kEnd
}

// ensureHNZ extends every lane's final-hidden nonzero list to cover units
// [0, head); hiddenFor has already made that prefix valid, and the cache
// invariant keeps its values stable until the next invalidation clamp.
func (b *madeBatch) ensureHNZ(head int) {
	if b.hValid >= head {
		return
	}
	h := b.acts[len(b.m.layers)-2]
	for l := range b.hNZ {
		row := h.Data[l*h.Cols+b.hValid : l*h.Cols+head]
		lst := b.hNZ[l]
		for o, v := range row {
			if v != 0 {
				lst = append(lst, b.hValid+o)
			}
		}
		b.hNZ[l] = lst
	}
	b.hValid = head
}

// clampHNZ drops final-hidden nonzero entries at or past bound (ascending,
// so they sit at the tail); the next ensureHNZ rescans from there.
func (b *madeBatch) clampHNZ(bound int) {
	if b.hNZ == nil || bound >= b.hValid {
		return
	}
	for l := range b.hNZ {
		lst := b.hNZ[l]
		for len(lst) > 0 && lst[len(lst)-1] >= bound {
			lst = lst[:len(lst)-1]
		}
		b.hNZ[l] = lst
	}
	b.hValid = bound
}

// wtFor returns layer l's transposed masked product, retransposing when
// the weights have changed since the last call (same version protocol as
// MaskedWeight's cache).
func (b *madeBatch) wtFor(l int) *tensor.Tensor {
	lay := b.m.layers[l]
	if v := lay.W.Version() + 1; b.wtSeen[l] != v {
		src := lay.cache.Get()
		dst := b.wts[l]
		for i := 0; i < src.Rows; i++ {
			for j, val := range src.Row(i) {
				dst.Data[j*src.Rows+i] = val
			}
		}
		b.wtSeen[l] = v
	}
	return b.wts[l]
}

// countStartsBelow returns the size of the leading run of rows whose span
// start is below bound (starts are nondecreasing for suffix-monotone
// spans).
func countStartsBelow(spans []int, rows, bound int) int {
	n := 0
	for k := 0; k < rows; k++ {
		if spans[2*k] < bound {
			n = k + 1
		} else {
			break
		}
	}
	return n
}

// Batch returns the lane count.
func (b *madeBatch) Batch() int { return b.x.Rows }

// X returns the reusable B×InDim input matrix.
func (b *madeBatch) X() *tensor.Tensor { return b.x }

// hidden runs all layers but the last, returning the final hidden
// activations. Sorted-degree masks take the suffix kernel, which skips the
// masked-out half of every layer with all span bookkeeping hoisted out of
// the inner loops; other masks fall back to the dense tiled kernel (the
// cached product is zero where masked, so dense is always correct), which
// at these widths beats the per-row span-intersection machinery.
func (b *madeBatch) layerInto(i int, out, in *tensor.Tensor) {
	l := b.m.layers[i]
	if b.suffix[i] {
		tensor.MatMulMaskedSuffixInto(out, in, l.cache.Get(), l.cache.Spans())
	} else {
		tensor.MatMulInto(out, in, l.cache.Get())
	}
}

func (b *madeBatch) hidden() *tensor.Tensor {
	if b.valid != nil {
		b.syncVersion()
	}
	in := b.x
	for i := 0; i < len(b.m.layers)-1; i++ {
		out := b.acts[i]
		b.layerInto(i, out, in)
		addRowBiasReLU(out, b.m.layers[i].B.Data)
		if b.valid != nil {
			b.valid[i] = out.Cols
		}
		in = out
	}
	return in
}

// Forward computes the full B×InDim logits for the current X.
func (b *madeBatch) Forward() *tensor.Tensor {
	h := b.hidden()
	last := len(b.m.layers) - 1
	out := b.acts[last]
	b.layerInto(last, out, h)
	addRowBias(out, b.m.layers[last].B.Data)
	return out
}

// hiddenFor computes the hidden activations restricted to the unit
// prefixes column i's logits depend on; columns beyond a layer's prefix
// keep stale values that nothing downstream reads. The prefix activation
// cache narrows each layer further: units below valid[l] already hold the
// right values for the current X (this sweep only appended later input
// columns), so only the [valid[l], head) tail is recomputed — the MADE
// analog of transformer KV-caching.
func (b *madeBatch) hiddenFor(i int) *tensor.Tensor {
	if b.heads == nil {
		return b.hidden()
	}
	b.syncVersion()
	in := b.x
	for l := 0; l < len(b.m.layers)-1; l++ {
		lay := b.m.layers[l]
		out := b.acts[l]
		head := b.heads[i][l]
		if lo := b.valid[l]; lo < head {
			if l == 0 {
				// The input is nearly all zeros (one one-hot per sampled
				// column); the nonzero lists make the axpy form's cost
				// proportional to the few set inputs.
				b.ensureNZ(b.inPref[i])
				tensor.MatMulNZSuffixHeadRangeInto(out, in, b.nzIdx, lay.cache.Get(), lay.cache.Spans(), lo, head)
				addRowBiasReLURange(out, lay.B.Data, lo, head)
			} else if l == len(b.m.layers)-2 && b.hValid == lo {
				// Writing the final hidden layer: fuse the nonzero-list
				// maintenance into the kernel so the output-block projection
				// never rescans these rows (the invalidation clamps keep
				// hValid equal to the layer's valid width on this path).
				tensor.MatMulPrefixReLURangeNZInto(out, in, b.wtFor(l), b.prefixes[l], lay.B.Data, lo, head, b.hNZ)
				b.hValid = head
			} else {
				tensor.MatMulPrefixReLURangeInto(out, in, b.wtFor(l), b.prefixes[l], lay.B.Data, lo, head)
			}
			b.valid[l] = head
		}
		in = out
	}
	return in
}

// ForwardCol computes only column i's B×colSizes[i] logit block: the
// output layer is sliced to that block and the hidden layers to the unit
// prefix the block depends on, skipping the rest of the (widest) matmul in
// the net.
func (b *madeBatch) ForwardCol(i int) *tensor.Tensor {
	h := b.hiddenFor(i)
	last := len(b.m.layers) - 1
	l := b.m.layers[last]
	out := b.colViews[i]
	off := b.m.offsets[i]
	bias := l.B.Data[off : off+out.Cols]
	if b.heads != nil {
		// Every logit in a block shares one dependency prefix (the last
		// hidden head), and suffix-monotone output spans start on block
		// boundaries, so those weight rows cover the block fully: the block
		// is an indexed axpy over the masked product directly. Entries past
		// the block's prefix (possible after out-of-order ForwardCol calls)
		// hit masked-off weight rows and contribute zero.
		b.ensureHNZ(b.heads[i][last-1])
		tensor.MatMulNZBlockBiasInto(out, h, b.hNZ, l.cache.Get(), bias, off)
		return out
	}
	tensor.MatMulMaskedSliceInto(out, h, l.cache.Get(), l.cache.Spans(), off)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for j, bv := range bias {
			row[j] += bv
		}
	}
	return out
}

// addRowBias adds the 1×cols bias row to every row of t.
func addRowBias(t *tensor.Tensor, bias []float64) {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)[:len(bias)]
		for j, bv := range bias {
			row[j] += bv
		}
	}
}

// addRowBiasReLU adds the bias row to every row of t and applies ReLU.
func addRowBiasReLU(t *tensor.Tensor, bias []float64) {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)[:len(bias)]
		for j, bv := range bias {
			// Branchless: the sign of a pre-activation is close to a coin
			// flip, so a conditional here mispredicts constantly.
			row[j] = max(row[j]+bv, 0)
		}
	}
}

// addRowBiasReLURange is addRowBiasReLU restricted to columns [lo, head)
// of every row.
func addRowBiasReLURange(t *tensor.Tensor, bias []float64, lo, head int) {
	bias = bias[lo:head]
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)[lo:head]
		for j, bv := range bias {
			row[j] = max(row[j]+bv, 0)
		}
	}
}
