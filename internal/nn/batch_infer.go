package nn

import "sam/internal/tensor"

// madeBatch is MADE's BatchInference: per-layer B×width activation
// matrices driven by the span-aware masked GEMM kernels, so one forward
// pass of B lanes costs one masked matmul per layer instead of B.
type madeBatch struct {
	m    *MADE
	x    *tensor.Tensor   // B × inDim
	acts []*tensor.Tensor // per layer, B × layer width
	// colViews[i] is a B×colSizes[i] view over a shared buffer sized for
	// the widest column; ForwardCol writes into it so no per-call tensor
	// headers are allocated.
	colViews []*tensor.Tensor
	// suffix[i] records that layer i's mask spans are suffix-monotone
	// (always true for NewMADE's sorted-degree masks), enabling the
	// span-hoisted suffix kernels.
	suffix []bool
	// heads[i][l] is the prefix of hidden layer l's units that column i's
	// logit block can depend on (nil when any layer is not suffix-monotone).
	// Sorted degrees make every dependency set a unit prefix, so ForwardCol
	// evaluates each hidden layer only up to that width.
	heads [][]int
	// wts[l] caches layer l's masked weight product transposed (refreshed
	// lazily against W.Version()), feeding the prefix-dot kernels; entry 0
	// is nil because the sparse one-hot input favors the axpy form there.
	wts    []*tensor.Tensor
	wtSeen []uint64
	// prefixes[l][j] is the input prefix feeding unit j of layer l — the
	// transpose of the suffix spans. Output-layer blocks share one uniform
	// prefix (heads[i]'s last entry), so no table is kept for it.
	prefixes [][]int
	// outViews[i] is the block of output-layer wt rows for column i.
	outViews []*tensor.Tensor
}

// NewBatchInference allocates batched scratch sized for m and b lanes.
func (m *MADE) NewBatchInference(b int) BatchInference {
	if b < 1 {
		panic("nn: batch inference needs at least one lane")
	}
	bi := &madeBatch{m: m, x: tensor.New(b, m.inDim)}
	for _, l := range m.layers {
		bi.acts = append(bi.acts, tensor.New(b, l.W.Cols))
		bi.suffix = append(bi.suffix, tensor.SpansSuffixMonotone(l.cache.Spans(), l.W.Cols))
	}
	maxSize := 0
	for _, s := range m.colSizes {
		if s > maxSize {
			maxSize = s
		}
	}
	colBuf := make([]float64, b*maxSize)
	for _, s := range m.colSizes {
		bi.colViews = append(bi.colViews, tensor.FromSlice(b, s, colBuf[:b*s]))
	}
	allSuffix := true
	for _, ok := range bi.suffix {
		allSuffix = allSuffix && ok
	}
	if allSuffix {
		// Walk the dependency prefixes backwards from each output block:
		// the block needs the output-layer weight rows whose suffix starts
		// before the block's end, and each hidden layer needs the rows of
		// the layer above it that reach the prefix already required.
		last := len(m.layers) - 1
		for i, off := range m.offsets {
			h := countStartsBelow(m.layers[last].cache.Spans(), m.layers[last].W.Rows, off+m.colSizes[i])
			hs := make([]int, last)
			for l := last - 1; l >= 0; l-- {
				hs[l] = h
				if l > 0 {
					h = countStartsBelow(m.layers[l].cache.Spans(), m.layers[l].W.Rows, h)
				}
			}
			bi.heads = append(bi.heads, hs)
		}
		bi.wts = make([]*tensor.Tensor, len(m.layers))
		bi.wtSeen = make([]uint64, len(m.layers))
		bi.prefixes = make([][]int, len(m.layers))
		for l := 1; l < len(m.layers); l++ {
			w := m.layers[l].W
			bi.wts[l] = tensor.New(w.Cols, w.Rows)
			if l < last {
				pref := make([]int, w.Cols)
				for j := range pref {
					pref[j] = countStartsBelow(m.layers[l].cache.Spans(), w.Rows, j+1)
				}
				bi.prefixes[l] = pref
			}
		}
		hid := m.layers[last].W.Rows
		for i, off := range m.offsets {
			end := off + m.colSizes[i]
			bi.outViews = append(bi.outViews,
				tensor.FromSlice(m.colSizes[i], hid, bi.wts[last].Data[off*hid:end*hid]))
		}
	}
	return bi
}

// wtFor returns layer l's transposed masked product, retransposing when
// the weights have changed since the last call (same version protocol as
// MaskedWeight's cache).
func (b *madeBatch) wtFor(l int) *tensor.Tensor {
	lay := b.m.layers[l]
	if v := lay.W.Version() + 1; b.wtSeen[l] != v {
		src := lay.cache.Get()
		dst := b.wts[l]
		for i := 0; i < src.Rows; i++ {
			for j, val := range src.Row(i) {
				dst.Data[j*src.Rows+i] = val
			}
		}
		b.wtSeen[l] = v
	}
	return b.wts[l]
}

// countStartsBelow returns the size of the leading run of rows whose span
// start is below bound (starts are nondecreasing for suffix-monotone
// spans).
func countStartsBelow(spans []int, rows, bound int) int {
	n := 0
	for k := 0; k < rows; k++ {
		if spans[2*k] < bound {
			n = k + 1
		} else {
			break
		}
	}
	return n
}

// Batch returns the lane count.
func (b *madeBatch) Batch() int { return b.x.Rows }

// X returns the reusable B×InDim input matrix.
func (b *madeBatch) X() *tensor.Tensor { return b.x }

// hidden runs all layers but the last, returning the final hidden
// activations. Sorted-degree masks take the suffix kernel, which skips the
// masked-out half of every layer with all span bookkeeping hoisted out of
// the inner loops; other masks fall back to the dense tiled kernel (the
// cached product is zero where masked, so dense is always correct), which
// at these widths beats the per-row span-intersection machinery.
func (b *madeBatch) layerInto(i int, out, in *tensor.Tensor) {
	l := b.m.layers[i]
	if b.suffix[i] {
		tensor.MatMulMaskedSuffixInto(out, in, l.cache.Get(), l.cache.Spans())
	} else {
		tensor.MatMulInto(out, in, l.cache.Get())
	}
}

func (b *madeBatch) hidden() *tensor.Tensor {
	in := b.x
	for i := 0; i < len(b.m.layers)-1; i++ {
		out := b.acts[i]
		b.layerInto(i, out, in)
		addRowBiasReLU(out, b.m.layers[i].B.Data)
		in = out
	}
	return in
}

// Forward computes the full B×InDim logits for the current X.
func (b *madeBatch) Forward() *tensor.Tensor {
	h := b.hidden()
	last := len(b.m.layers) - 1
	out := b.acts[last]
	b.layerInto(last, out, h)
	addRowBias(out, b.m.layers[last].B.Data)
	return out
}

// hiddenFor computes the hidden activations restricted to the unit
// prefixes column i's logits depend on; columns beyond a layer's prefix
// keep stale values that nothing downstream reads.
func (b *madeBatch) hiddenFor(i int) *tensor.Tensor {
	if b.heads == nil {
		return b.hidden()
	}
	in := b.x
	for l := 0; l < len(b.m.layers)-1; l++ {
		lay := b.m.layers[l]
		out := b.acts[l]
		head := b.heads[i][l]
		if l == 0 {
			// The input is nearly all zeros (one one-hot per sampled
			// column), so the axpy form's sparse path wins here.
			tensor.MatMulMaskedSuffixHeadInto(out, in, lay.cache.Get(), lay.cache.Spans(), head)
			addRowBiasReLUHead(out, lay.B.Data, head)
		} else {
			tensor.MatMulPrefixReLUInto(out, in, b.wtFor(l), b.prefixes[l], lay.B.Data, head)
		}
		in = out
	}
	return in
}

// ForwardCol computes only column i's B×colSizes[i] logit block: the
// output layer is sliced to that block and the hidden layers to the unit
// prefix the block depends on, skipping the rest of the (widest) matmul in
// the net.
func (b *madeBatch) ForwardCol(i int) *tensor.Tensor {
	h := b.hiddenFor(i)
	last := len(b.m.layers) - 1
	l := b.m.layers[last]
	out := b.colViews[i]
	off := b.m.offsets[i]
	bias := l.B.Data[off : off+out.Cols]
	if b.heads != nil {
		// Every logit in a block shares one dependency prefix (the last
		// hidden head), so the block is a uniform prefix-dot with the bias
		// folded in.
		b.wtFor(last)
		tensor.MatMulPrefixBiasInto(out, h, b.outViews[i], bias, b.heads[i][last-1])
		return out
	}
	tensor.MatMulMaskedSliceInto(out, h, l.cache.Get(), l.cache.Spans(), off)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for j, bv := range bias {
			row[j] += bv
		}
	}
	return out
}

// addRowBias adds the 1×cols bias row to every row of t.
func addRowBias(t *tensor.Tensor, bias []float64) {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)[:len(bias)]
		for j, bv := range bias {
			row[j] += bv
		}
	}
}

// addRowBiasReLU adds the bias row to every row of t and applies ReLU.
func addRowBiasReLU(t *tensor.Tensor, bias []float64) {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)[:len(bias)]
		for j, bv := range bias {
			// Branchless: the sign of a pre-activation is close to a coin
			// flip, so a conditional here mispredicts constantly.
			row[j] = max(row[j]+bv, 0)
		}
	}
}

// addRowBiasReLUHead is addRowBiasReLU restricted to the first head
// columns of every row.
func addRowBiasReLUHead(t *tensor.Tensor, bias []float64, head int) {
	bias = bias[:head]
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)[:head]
		for j, bv := range bias {
			row[j] = max(row[j]+bv, 0)
		}
	}
}
