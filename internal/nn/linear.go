// Package nn provides the neural-network building blocks SAM trains:
// (masked) linear layers, the MADE masked autoencoder used as the
// autoregressive backbone, and the Adam optimizer. Everything runs on the
// internal/tensor autodiff engine; a separate allocation-free inference path
// supports the embarrassingly parallel sampling phase.
package nn

import (
	"fmt"
	"math/rand"

	"sam/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b with W of shape in×out.
type Linear struct {
	W *tensor.Tensor // in×out
	B *tensor.Tensor // 1×out
}

// NewLinear returns a Glorot-initialized layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{W: tensor.New(in, out), B: tensor.New(1, out)}
	l.W.XavierInit(rng, in, out)
	return l
}

// Forward applies the layer on the autodiff graph.
func (l *Linear) Forward(g *tensor.Graph, x *tensor.Node) *tensor.Node {
	return g.AddRow(g.MatMul(x, g.Param(l.W)), g.Param(l.B))
}

// Params returns the trainable tensors of the layer.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// MaskedLinear is a linear layer whose weight matrix is elementwise gated by
// a fixed binary mask — the mechanism MADE uses to enforce autoregressive
// structure.
type MaskedLinear struct {
	W    *tensor.Tensor // in×out
	B    *tensor.Tensor // 1×out
	Mask *tensor.Tensor // in×out, 0/1, fixed

	// cache holds W∘Mask, recomputed only when W is marked dirty by an
	// optimizer step, so neither the autodiff forward nor the sampling-time
	// forwardInto multiplies by the mask per call.
	cache *tensor.MaskedWeight
}

// NewMaskedLinear returns a Glorot-initialized masked layer. The mask is
// retained by reference and must not be mutated afterwards. Direct writes to
// W after construction must be followed by W.MarkDirty() so the masked-weight
// cache notices (nn.Adam does this automatically).
func NewMaskedLinear(rng *rand.Rand, in, out int, mask *tensor.Tensor) *MaskedLinear {
	if mask.Rows != in || mask.Cols != out {
		panic(fmt.Sprintf("nn: mask shape %v does not match layer %d×%d", mask, in, out))
	}
	l := &MaskedLinear{W: tensor.New(in, out), B: tensor.New(1, out), Mask: mask}
	l.W.XavierInit(rng, in, out)
	l.cache = tensor.NewMaskedWeight(l.W, mask)
	return l
}

// Forward applies the masked layer on the autodiff graph via the fused
// masked-matmul op, which reads the cached W∘Mask product.
func (l *MaskedLinear) Forward(g *tensor.Graph, x *tensor.Node) *tensor.Node {
	return g.AddRow(g.MaskedMatMul(x, g.Param(l.W), l.cache), g.Param(l.B))
}

// Params returns the trainable tensors of the layer.
func (l *MaskedLinear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// forwardInto computes one row without autodiff: out = x·(W∘Mask) + b, with
// the masked product read from the cache. x has length in, out has length
// out.
func (l *MaskedLinear) forwardInto(out, x []float64) {
	mw := l.cache.Get()
	in, cols := mw.Rows, mw.Cols
	copy(out, l.B.Data)
	for k := 0; k < in; k++ {
		xv := x[k]
		if xv == 0 {
			continue
		}
		s, e := l.cache.RowSpan(k)
		wrow := mw.Data[k*cols+s : k*cols+e]
		orow := out[s:e]
		for j, wv := range wrow {
			orow[j] += xv * wv
		}
	}
}
