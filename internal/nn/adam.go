package nn

import (
	"math"

	"sam/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with optional
// gradient clipping by global norm. State is keyed by parameter tensor, so
// one optimizer serves a whole model.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	ClipMax float64 // 0 disables clipping

	step int
	m    map[*tensor.Tensor][]float64
	v    map[*tensor.Tensor][]float64
}

// NewAdam returns an Adam optimizer with the usual defaults and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*tensor.Tensor][]float64),
		v:     make(map[*tensor.Tensor][]float64),
	}
}

// GradPair couples a parameter with its accumulated gradient for one step.
type GradPair struct {
	Param *tensor.Tensor
	Grad  *tensor.Tensor
}

// Step applies one Adam update over all pairs. Gradients are read, not
// cleared; callers own gradient lifecycle (fresh graphs produce fresh
// gradient buffers).
func (a *Adam) Step(pairs []GradPair) {
	a.step++
	if a.ClipMax > 0 {
		var norm2 float64
		for _, p := range pairs {
			for _, gv := range p.Grad.Data {
				norm2 += gv * gv
			}
		}
		if norm := math.Sqrt(norm2); norm > a.ClipMax {
			scale := a.ClipMax / norm
			for _, p := range pairs {
				p.Grad.ScaleInPlace(scale)
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range pairs {
		mBuf, ok := a.m[p.Param]
		if !ok {
			mBuf = make([]float64, len(p.Param.Data))
			a.m[p.Param] = mBuf
			a.v[p.Param] = make([]float64, len(p.Param.Data))
		}
		vBuf := a.v[p.Param]
		for i, gv := range p.Grad.Data {
			mBuf[i] = a.Beta1*mBuf[i] + (1-a.Beta1)*gv
			vBuf[i] = a.Beta2*vBuf[i] + (1-a.Beta2)*gv*gv
			mHat := mBuf[i] / bc1
			vHat := vBuf[i] / bc2
			p.Param.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		// Invalidate any masked-weight cache reading this parameter.
		p.Param.MarkDirty()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }
