package nn

import (
	"fmt"
	"math/rand"

	"sam/internal/tensor"
)

// MADE is a Masked Autoencoder for Distribution Estimation (Germain et al.,
// ICML'15) over grouped categorical inputs: column i of the modeled relation
// occupies a contiguous block of colSizes[i] one-hot input units and the
// same block of output logits. The masks guarantee that the logits for
// column i depend only on the one-hot inputs of columns < i, so the network
// parameterizes the autoregressive factorization
// P(x) = Π_i P(x_i | x_<i) used throughout the SAM paper.
type MADE struct {
	colSizes []int // domain size per column, in autoregressive order
	offsets  []int // start offset of each column block
	inDim    int   // Σ colSizes

	layers []*MaskedLinear // alternating affine layers; ReLU between
}

var _ Backbone = (*MADE)(nil)

// NewMADE constructs a MADE with numHidden hidden layers of width hidden.
// Hidden-unit degrees are assigned round-robin over 1..n−1 (or 1 when the
// model has a single column) which gives every conditional access to all of
// its predecessors.
func NewMADE(rng *rand.Rand, colSizes []int, hidden, numHidden int) *MADE {
	n := len(colSizes)
	if n == 0 {
		panic("nn: MADE needs at least one column")
	}
	if hidden <= 0 || numHidden <= 0 {
		panic("nn: MADE needs positive hidden sizes")
	}
	m := &MADE{colSizes: append([]int(nil), colSizes...)}
	m.offsets = make([]int, n)
	for i, s := range colSizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: column %d has nonpositive domain %d", i, s))
		}
		m.offsets[i] = m.inDim
		m.inDim += s
	}

	// Degrees: input unit of column i has degree i+1; output unit of column
	// i has degree i+1; hidden degrees cycle 1..max(1, n−1).
	inDeg := make([]int, m.inDim)
	for i, off := range m.offsets {
		for j := 0; j < colSizes[i]; j++ {
			inDeg[off+j] = i + 1
		}
	}
	maxHid := n - 1
	if maxHid < 1 {
		maxHid = 1
	}
	// Hidden degrees are assigned in sorted order (rather than round-robin)
	// so every mask row's nonzeros form one contiguous block: the degree
	// multiset — and hence the model class — is identical up to a
	// permutation of hidden units, but contiguity lets the masked-matmul
	// kernels skip the masked-out half of each row entirely.
	hidDeg := make([]int, hidden)
	for j := range hidDeg {
		hidDeg[j] = 1 + j*maxHid/hidden
	}

	prevDeg := inDeg
	prevDim := m.inDim
	for layer := 0; layer < numHidden; layer++ {
		mask := tensor.New(prevDim, hidden)
		for r := 0; r < prevDim; r++ {
			for c := 0; c < hidden; c++ {
				if hidDeg[c] >= prevDeg[r] {
					mask.Set(r, c, 1)
				}
			}
		}
		m.layers = append(m.layers, NewMaskedLinear(rng, prevDim, hidden, mask))
		prevDeg = hidDeg
		prevDim = hidden
	}

	// Output layer: strict inequality so column i never sees itself.
	outMask := tensor.New(prevDim, m.inDim)
	for r := 0; r < prevDim; r++ {
		for i, off := range m.offsets {
			if i+1 > prevDeg[r] {
				for j := 0; j < colSizes[i]; j++ {
					outMask.Set(r, off+j, 1)
				}
			}
		}
	}
	m.layers = append(m.layers, NewMaskedLinear(rng, prevDim, m.inDim, outMask))
	return m
}

// InDim returns the total one-hot input width.
func (m *MADE) InDim() int { return m.inDim }

// NumCols returns the number of modeled columns.
func (m *MADE) NumCols() int { return len(m.colSizes) }

// ColSizes returns the per-column domain sizes.
func (m *MADE) ColSizes() []int { return m.colSizes }

// Offsets returns each column block's start offset.
func (m *MADE) Offsets() []int { return m.offsets }

// OutputBias returns the bias of the output layer (1×InDim), exposed so
// callers can install informative priors on specific column blocks before
// training.
func (m *MADE) OutputBias() *tensor.Tensor { return m.layers[len(m.layers)-1].B }

// Forward runs the network on the autodiff graph; x is batch×InDim of
// (relaxed) one-hots, the result is batch×InDim of logits for every column
// block.
func (m *MADE) Forward(g *tensor.Graph, x *tensor.Node) *tensor.Node {
	h := x
	for i, l := range m.layers {
		h = l.Forward(g, h)
		if i != len(m.layers)-1 {
			h = g.ReLU(h)
		}
	}
	return h
}

// Params returns all trainable tensors.
func (m *MADE) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ColLogits slices the logits of column i out of a full output row.
func (m *MADE) ColLogits(out []float64, i int) []float64 {
	return out[m.offsets[i] : m.offsets[i]+m.colSizes[i]]
}

// madeInference holds per-goroutine scratch space for the inference-only
// forward pass, so sampling allocates nothing per tuple.
type madeInference struct {
	m    *MADE
	acts [][]float64
	x    []float64
}

// NewInference allocates scratch sized for m.
func (m *MADE) NewInference() Inference {
	b := &madeInference{m: m, x: make([]float64, m.inDim)}
	for _, l := range m.layers {
		b.acts = append(b.acts, make([]float64, l.W.Cols))
	}
	return b
}

// X returns the reusable input row of the buffer (length InDim). Callers
// zero and fill it between forward passes.
func (b *madeInference) X() []float64 { return b.x }

// Forward runs a single-row, allocation-free forward pass on X() and
// returns the full logits row (owned by the buffer, valid until the next
// call).
func (b *madeInference) Forward() []float64 {
	in := b.x
	for i, l := range b.m.layers {
		out := b.acts[i]
		l.forwardInto(out, in)
		if i != len(b.m.layers)-1 {
			for j, v := range out {
				if v < 0 {
					out[j] = 0
				}
			}
		}
		in = out
	}
	return in
}
