package nn

import "math"

// transformerInference is the allocation-free single-row forward pass of a
// Transformer. It mirrors Forward exactly (pre-norm blocks, causal
// attention, shifted tokens) on plain float64 buffers.
type transformerInference struct {
	t *Transformer
	x []float64 // inDim input row

	seq    [][]float64 // n × dModel working sequence
	normed [][]float64 // n × dModel layer-norm scratch
	q      [][]float64
	k      [][]float64
	v      [][]float64
	ctx    [][]float64
	ffBuf  []float64
	scores []float64 // one row of attention scores
	logits []float64 // inDim scratch for the output projection
	out    []float64 // inDim logits
}

// NewInference allocates scratch sized for t.
func (t *Transformer) NewInference() Inference {
	n := len(t.colSizes)
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, t.dModel)
		}
		return m
	}
	return &transformerInference{
		t:      t,
		x:      make([]float64, t.inDim),
		seq:    mk(),
		normed: mk(),
		q:      mk(),
		k:      mk(),
		v:      mk(),
		ctx:    mk(),
		ffBuf:  make([]float64, t.ff),
		scores: make([]float64, n),
		logits: make([]float64, t.inDim),
		out:    make([]float64, t.inDim),
	}
}

// X returns the reusable input row.
func (b *transformerInference) X() []float64 { return b.x }

// affine computes dst = src·W + add (add may be nil), for one row.
func affine(dst, src []float64, w *tensorDense, add []float64) {
	cols := w.cols
	if add != nil {
		copy(dst, add)
	} else {
		for j := range dst {
			dst[j] = 0
		}
	}
	for i, sv := range src {
		if sv == 0 {
			continue
		}
		row := w.data[i*cols : (i+1)*cols]
		for j, wv := range row {
			dst[j] += sv * wv
		}
	}
}

// tensorDense is a lightweight view used by the inference fast path.
type tensorDense struct {
	data []float64
	cols int
}

// layerNormRow normalizes src into dst with the given gain/bias rows.
func layerNormRow(dst, src, gain, bias []float64, eps float64) {
	var mean float64
	for _, v := range src {
		mean += v
	}
	mean /= float64(len(src))
	var varsum float64
	for _, v := range src {
		d := v - mean
		varsum += d * d
	}
	inv := 1 / math.Sqrt(varsum/float64(len(src))+eps)
	for j, v := range src {
		dst[j] = (v-mean)*inv*gain[j] + bias[j]
	}
}

// Forward computes the full logits row for the current X.
func (b *transformerInference) Forward() []float64 {
	t := b.t
	n := len(t.colSizes)
	d := t.dModel

	// Tokens: SOS then shifted embeddings, plus positions.
	copy(b.seq[0], t.sos.Data)
	for i := 1; i < n; i++ {
		row := b.seq[i]
		for j := range row {
			row[j] = 0
		}
		off, size := t.offsets[i-1], t.colSizes[i-1]
		for c := 0; c < size; c++ {
			xv := b.x[off+c]
			if xv == 0 {
				continue
			}
			emb := t.wEmb.Row(off + c)
			for j, ev := range emb {
				row[j] += xv * ev
			}
		}
	}
	for i := 0; i < n; i++ {
		pos := t.pos.Row(i)
		row := b.seq[i]
		for j, pv := range pos {
			row[j] += pv
		}
	}

	scale := 1 / math.Sqrt(float64(t.dk))
	for _, l := range t.layers {
		for i := 0; i < n; i++ {
			layerNormRow(b.normed[i], b.seq[i], l.ln1Gain.Data, l.ln1Bias.Data, 1e-5)
		}
		wq := tensorDense{l.wq.Data, d}
		wk := tensorDense{l.wk.Data, d}
		wv := tensorDense{l.wv.Data, d}
		for i := 0; i < n; i++ {
			affine(b.q[i], b.normed[i], &wq, nil)
			affine(b.k[i], b.normed[i], &wk, nil)
			affine(b.v[i], b.normed[i], &wv, nil)
		}
		// Causal attention per head.
		for i := 0; i < n; i++ {
			for j := range b.ctx[i] {
				b.ctx[i][j] = 0
			}
		}
		for hd := 0; hd < t.heads; hd++ {
			lo := hd * t.dk
			hi := lo + t.dk
			for i := 0; i < n; i++ {
				scores := b.scores[:i+1]
				maxv := math.Inf(-1)
				for j := 0; j <= i; j++ {
					var s float64
					qi, kj := b.q[i], b.k[j]
					for c := lo; c < hi; c++ {
						s += qi[c] * kj[c]
					}
					scores[j] = s * scale
					if scores[j] > maxv {
						maxv = scores[j]
					}
				}
				var sum float64
				for j := range scores {
					scores[j] = math.Exp(scores[j] - maxv)
					sum += scores[j]
				}
				inv := 1 / sum
				ctxRow := b.ctx[i]
				for j := 0; j <= i; j++ {
					p := scores[j] * inv
					vj := b.v[j]
					for c := lo; c < hi; c++ {
						ctxRow[c] += p * vj[c]
					}
				}
			}
		}
		wo := tensorDense{l.wo.Data, d}
		for i := 0; i < n; i++ {
			affine(b.normed[i], b.ctx[i], &wo, nil) // reuse normed as scratch
			row := b.seq[i]
			for j, v := range b.normed[i] {
				row[j] += v
			}
		}

		// Feed-forward block.
		w1 := tensorDense{l.w1.Data, t.ff}
		w2 := tensorDense{l.w2.Data, d}
		for i := 0; i < n; i++ {
			layerNormRow(b.normed[i], b.seq[i], l.ln2Gain.Data, l.ln2Bias.Data, 1e-5)
			affine(b.ffBuf, b.normed[i], &w1, l.b1.Data)
			for j, v := range b.ffBuf {
				if v < 0 {
					b.ffBuf[j] = 0
				}
			}
			affine(b.normed[i], b.ffBuf, &w2, l.b2.Data)
			row := b.seq[i]
			for j, v := range b.normed[i] {
				row[j] += v
			}
		}
	}

	wOut := tensorDense{t.wOut.Data, t.inDim}
	logits := b.logits
	for i := 0; i < n; i++ {
		layerNormRow(b.normed[i], b.seq[i], t.lnFGain.Data, t.lnFBias.Data, 1e-5)
		affine(logits, b.normed[i], &wOut, t.bOut.Data)
		copy(b.out[t.offsets[i]:t.offsets[i]+t.colSizes[i]],
			logits[t.offsets[i]:t.offsets[i]+t.colSizes[i]])
	}
	return b.out
}
