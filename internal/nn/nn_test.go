package nn

import (
	"math"
	"math/rand"
	"testing"

	"sam/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	g := tensor.NewGraph()
	x := tensor.New(2, 4)
	x.Randn(rng, 1)
	y := l.Forward(g, g.Const(x))
	if y.Val.Rows != 2 || y.Val.Cols != 3 {
		t.Fatalf("bad output shape %v", y.Val)
	}
}

func TestMaskedLinearZeroMaskBlocksSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mask := tensor.New(3, 2) // all zero
	l := NewMaskedLinear(rng, 3, 2, mask)
	g := tensor.NewGraph()
	x := tensor.New(1, 3)
	x.Fill(5)
	y := l.Forward(g, g.Const(x))
	for j := 0; j < 2; j++ {
		if y.Val.At(0, j) != l.B.Data[j] {
			t.Fatalf("masked-out weight leaked signal")
		}
	}
}

func TestMADEAutoregressiveProperty(t *testing.T) {
	// Perturbing the one-hot block of column j must not change the logits of
	// any column i ≤ j.
	rng := rand.New(rand.NewSource(3))
	colSizes := []int{3, 4, 2, 5}
	m := NewMADE(rng, colSizes, 16, 2)
	buf := m.NewInference()

	base := make([]float64, m.InDim())
	for i, off := range m.Offsets() {
		base[off+rng.Intn(colSizes[i])] = 1
	}
	copy(buf.X(), base)
	out0 := append([]float64(nil), buf.Forward()...)

	for j := 0; j < len(colSizes); j++ {
		perturbed := append([]float64(nil), base...)
		for k := 0; k < colSizes[j]; k++ {
			perturbed[m.Offsets()[j]+k] = rng.Float64()*2 - 1
		}
		copy(buf.X(), perturbed)
		out1 := buf.Forward()
		for i := 0; i <= j; i++ {
			a := m.ColLogits(out0, i)
			b := m.ColLogits(out1, i)
			for k := range a {
				if math.Abs(a[k]-b[k]) > 1e-12 {
					t.Fatalf("column %d logits depend on column %d input", i, j)
				}
			}
		}
	}
}

func TestMADEFirstColumnUnconditional(t *testing.T) {
	// Column 0 logits must be constant regardless of the entire input.
	rng := rand.New(rand.NewSource(4))
	m := NewMADE(rng, []int{3, 3}, 8, 2)
	buf := m.NewInference()
	copy(buf.X(), make([]float64, m.InDim()))
	a := append([]float64(nil), m.ColLogits(buf.Forward(), 0)...)
	for i := range buf.X() {
		buf.X()[i] = rng.Float64()
	}
	b := m.ColLogits(buf.Forward(), 0)
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-12 {
			t.Fatal("column 0 logits are input-dependent")
		}
	}
}

func TestMADEInferMatchesAutodiffForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	colSizes := []int{2, 3, 4}
	m := NewMADE(rng, colSizes, 12, 2)
	x := tensor.New(1, m.InDim())
	for i, off := range m.Offsets() {
		x.Set(0, off+rng.Intn(colSizes[i]), 1)
	}
	g := tensor.NewGraph()
	outG := m.Forward(g, g.Const(x))
	buf := m.NewInference()
	copy(buf.X(), x.Data)
	outI := buf.Forward()
	for i := range outI {
		if math.Abs(outI[i]-outG.Val.Data[i]) > 1e-10 {
			t.Fatalf("infer/autodiff mismatch at %d: %v vs %v", i, outI[i], outG.Val.Data[i])
		}
	}
}

func TestMADESingleColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMADE(rng, []int{5}, 8, 1)
	buf := m.NewInference()
	out := buf.Forward()
	if len(m.ColLogits(out, 0)) != 5 {
		t.Fatal("bad single-column logits")
	}
}

func TestMADEPanicsOnBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fn := range []func(){
		func() { NewMADE(rng, nil, 8, 1) },
		func() { NewMADE(rng, []int{2, 0}, 8, 1) },
		func() { NewMADE(rng, []int{2}, 0, 1) },
		func() { NewMADE(rng, []int{2}, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize ‖W − target‖² — Adam should get close quickly.
	rng := rand.New(rand.NewSource(8))
	w := tensor.New(1, 4)
	w.Randn(rng, 1)
	target := tensor.FromSlice(1, 4, []float64{1, -2, 3, 0.5})
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		g := tensor.NewGraph()
		p := g.Param(w)
		diff := g.Sub(p, g.Const(target))
		loss := g.Mean(g.Square(diff))
		g.Backward(loss)
		opt.Step([]GradPair{{Param: w, Grad: g.ParamGrad(w)}})
	}
	for i := range w.Data {
		if math.Abs(w.Data[i]-target.Data[i]) > 1e-2 {
			t.Fatalf("Adam did not converge: %v vs %v", w.Data, target.Data)
		}
	}
	if opt.StepCount() != 500 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

func TestAdamGradientClipping(t *testing.T) {
	w := tensor.FromSlice(1, 2, []float64{0, 0})
	grad := tensor.FromSlice(1, 2, []float64{3e6, 4e6})
	opt := NewAdam(0.1)
	opt.ClipMax = 5
	opt.Step([]GradPair{{Param: w, Grad: grad}})
	norm := math.Hypot(grad.Data[0], grad.Data[1])
	if math.Abs(norm-5) > 1e-9 {
		t.Fatalf("clipped norm %v", norm)
	}
}

func TestMADETrainsSimpleDistribution(t *testing.T) {
	// End-to-end sanity: train a 2-column MADE by maximum likelihood on a
	// deterministic pattern (x2 == x1) and check the learned conditionals.
	rng := rand.New(rand.NewSource(9))
	colSizes := []int{2, 2}
	m := NewMADE(rng, colSizes, 16, 2)
	opt := NewAdam(0.05)

	samples := [][2]int{{0, 0}, {1, 1}, {0, 0}, {1, 1}}
	for epoch := 0; epoch < 300; epoch++ {
		g := tensor.NewGraph()
		x := tensor.New(len(samples), m.InDim())
		for r, s := range samples {
			x.Set(r, m.Offsets()[0]+s[0], 1)
			x.Set(r, m.Offsets()[1]+s[1], 1)
		}
		out := m.Forward(g, g.Const(x))
		// NLL of column 2 given column 1: the mask selects the true value.
		col2 := g.SliceCols(out, m.Offsets()[1], colSizes[1])
		mask2 := tensor.New(len(samples), colSizes[1])
		for r, s := range samples {
			mask2.Set(r, s[1], 1)
		}
		p := g.RangeProb(col2, mask2)
		loss := g.Scale(g.Mean(g.Log(p)), -1)
		g.Backward(loss)
		var pairs []GradPair
		for _, param := range m.Params() {
			pairs = append(pairs, GradPair{Param: param, Grad: g.ParamGrad(param)})
		}
		opt.Step(pairs)
	}

	// Check P(x2 = v | x1 = v) is high for v in {0, 1}.
	buf := m.NewInference()
	for v := 0; v < 2; v++ {
		for i := range buf.X() {
			buf.X()[i] = 0
		}
		buf.X()[m.Offsets()[0]+v] = 1
		out := buf.Forward()
		logits := m.ColLogits(out, 1)
		probs := make([]float64, 2)
		tensor.SoftmaxRowInto(probs, logits)
		if probs[v] < 0.9 {
			t.Fatalf("P(x2=%d|x1=%d) = %v, want > 0.9", v, v, probs[v])
		}
	}
}
