package nn

import (
	"math"
	"math/rand"
	"testing"

	"sam/internal/tensor"
)

// fillLaneOneHots sets one random one-hot per column block in every lane
// of x and mirrors lane l into singles[l].
func fillLaneOneHots(rng *rand.Rand, x *tensor.Tensor, offsets, colSizes []int, singles [][]float64) {
	for l := 0; l < x.Rows; l++ {
		row := x.Row(l)
		for i := range row {
			row[i] = 0
		}
		for i, off := range offsets {
			row[off+rng.Intn(colSizes[i])] = 1
		}
		copy(singles[l], row)
	}
}

// backboneBatchMatchesSingle drives a B-lane batched forward against B
// independent single-row inferences and checks Forward and every ForwardCol
// block agree lane by lane. The batched ForwardCol path runs restricted
// (head-limited, transposed-dot) kernels, so this is the equivalence proof
// for the whole batched sampling stack.
func backboneBatchMatchesSingle(t *testing.T, m Backbone, colSizes []int, tol float64) {
	t.Helper()
	const lanes = 5
	rng := rand.New(rand.NewSource(41))
	bi := m.NewBatchInference(lanes)
	if bi.Batch() != lanes {
		t.Fatalf("Batch() = %d, want %d", bi.Batch(), lanes)
	}
	singles := make([][]float64, lanes)
	for l := range singles {
		singles[l] = make([]float64, m.InDim())
	}
	fillLaneOneHots(rng, bi.X(), m.Offsets(), colSizes, singles)

	buf := m.NewInference()
	want := make([][]float64, lanes)
	for l := range want {
		copy(buf.X(), singles[l])
		want[l] = append([]float64(nil), buf.Forward()...)
	}

	out := bi.Forward()
	for l := 0; l < lanes; l++ {
		row := out.Row(l)
		for j := range row {
			if math.Abs(row[j]-want[l][j]) > tol {
				t.Fatalf("Forward lane %d logit %d: batched %v vs single %v",
					l, j, row[j], want[l][j])
			}
		}
	}
	for i := range colSizes {
		block := bi.ForwardCol(i)
		for l := 0; l < lanes; l++ {
			row := block.Row(l)
			wantBlock := m.ColLogits(want[l], i)
			for j := range row {
				if math.Abs(row[j]-wantBlock[j]) > tol {
					t.Fatalf("ForwardCol(%d) lane %d logit %d: batched %v vs single %v",
						i, l, j, row[j], wantBlock[j])
				}
			}
		}
	}
}

func TestMADEBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	colSizes := []int{3, 5, 2, 7, 4}
	backboneBatchMatchesSingle(t, NewMADE(rng, colSizes, 24, 2), colSizes, 1e-9)
}

func TestMADEBatchMatchesSingleOneHiddenLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	colSizes := []int{4, 3, 6}
	backboneBatchMatchesSingle(t, NewMADE(rng, colSizes, 16, 1), colSizes, 1e-9)
}

func TestTransformerBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	colSizes := []int{3, 4, 2}
	backboneBatchMatchesSingle(t, NewTransformer(rng, colSizes, 16, 2, 32, 2), colSizes, 1e-9)
}

// TestMADEBatchForwardColAllocFree pins the per-sweep contract the batched
// sampler's throughput rests on: once constructed, a batched ForwardCol
// performs zero heap allocations (kernels serial — the parallel path
// allocates goroutine bookkeeping).
func TestMADEBatchForwardColAllocFree(t *testing.T) {
	old := tensor.MatMulWorkers()
	tensor.SetMatMulWorkers(1)
	defer tensor.SetMatMulWorkers(old)

	rng := rand.New(rand.NewSource(12))
	colSizes := []int{6, 4, 8, 3}
	m := NewMADE(rng, colSizes, 32, 2)
	bi := m.NewBatchInference(16)
	singles := make([][]float64, 16)
	for l := range singles {
		singles[l] = make([]float64, m.InDim())
	}
	fillLaneOneHots(rng, bi.X(), m.Offsets(), colSizes, singles)
	sweep := func() {
		for i := range colSizes {
			bi.ForwardCol(i)
		}
	}
	sweep() // warm transposed-weight caches
	if n := testing.AllocsPerRun(20, sweep); n != 0 {
		t.Fatalf("warm batched ForwardCol sweep allocates %v times, want 0", n)
	}
}

// TestBatchPrefixCacheRetrainInvalidation pins the prefix-activation (and,
// for the transformer, KV) cache against retraining: a full ascending
// ForwardCol sweep warms every cached prefix width, then a parameter
// perturbation with MarkDirty bumps the version stamps; the next sweep —
// with the inputs untouched, so every cache key still matches — must
// recompute from scratch and agree with fresh single-row forwards. A cache
// keyed on the last-changed input column alone would serve stale
// activations here.
func TestBatchPrefixCacheRetrainInvalidation(t *testing.T) {
	colSizes := []int{3, 4, 5, 2}
	backbones := map[string]func() Backbone{
		"made": func() Backbone {
			return NewMADE(rand.New(rand.NewSource(14)), colSizes, 20, 2)
		},
		"transformer": func() Backbone {
			return NewTransformer(rand.New(rand.NewSource(15)), colSizes, 16, 2, 32, 2)
		},
	}
	for name, build := range backbones {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(16))
			m := build()
			const lanes = 3
			bi := m.NewBatchInference(lanes)
			singles := make([][]float64, lanes)
			for l := range singles {
				singles[l] = make([]float64, m.InDim())
			}
			fillLaneOneHots(rng, bi.X(), m.Offsets(), colSizes, singles)
			for i := range colSizes {
				bi.ForwardCol(i) // warm every cached prefix width
			}

			for _, p := range m.Params() {
				for i := range p.Data {
					p.Data[i] += 0.05 * rng.NormFloat64()
				}
				p.MarkDirty()
			}

			buf := m.NewInference()
			for i := range colSizes {
				block := bi.ForwardCol(i)
				for l := 0; l < lanes; l++ {
					copy(buf.X(), singles[l])
					want := m.ColLogits(buf.Forward(), i)
					row := block.Row(l)
					for j := range row {
						if math.Abs(row[j]-want[j]) > 1e-9 {
							t.Fatalf("col %d lane %d logit %d stale after retrain: %v vs %v",
								i, l, j, row[j], want[j])
						}
					}
				}
			}
		})
	}
}

// TestMADEBatchTracksRetraining checks the transposed-weight caches follow
// weight updates: mutating a layer (with MarkDirty, as optimizers do) must
// change the batched ForwardCol output to match a fresh single-row forward.
func TestMADEBatchTracksRetraining(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	colSizes := []int{3, 4, 5}
	m := NewMADE(rng, colSizes, 12, 2)
	bi := m.NewBatchInference(2)
	singles := make([][]float64, 2)
	for l := range singles {
		singles[l] = make([]float64, m.InDim())
	}
	fillLaneOneHots(rng, bi.X(), m.Offsets(), colSizes, singles)
	bi.ForwardCol(len(colSizes) - 1) // populate caches pre-update

	for _, p := range m.Params() {
		for i := range p.Data {
			p.Data[i] += 0.05 * rng.NormFloat64()
		}
		p.MarkDirty()
	}

	buf := m.NewInference()
	last := len(colSizes) - 1
	block := bi.ForwardCol(last)
	for l := 0; l < 2; l++ {
		copy(buf.X(), singles[l])
		want := m.ColLogits(buf.Forward(), last)
		row := block.Row(l)
		for j := range row {
			if math.Abs(row[j]-want[j]) > 1e-9 {
				t.Fatalf("lane %d logit %d stale after retrain: %v vs %v",
					l, j, row[j], want[j])
			}
		}
	}
}
