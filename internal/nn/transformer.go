package nn

import (
	"fmt"
	"math"
	"math/rand"

	"sam/internal/tensor"
)

// Transformer is a causal (decoder-only) transformer over grouped
// categorical columns — the paper's alternative autoregressive backbone
// (§4.1 instantiates SAM "by any learning-based AR architecture (e.g.,
// MADE and Transformer)"). Column values become a token sequence shifted
// right behind a start-of-sequence token; position i's output produces the
// logits of column i, and the causal attention mask guarantees it depends
// only on columns < i.
type Transformer struct {
	colSizes []int
	offsets  []int
	inDim    int

	dModel int
	heads  int
	dk     int
	ff     int

	wEmb *tensor.Tensor // inDim × dModel (per-value embeddings)
	sos  *tensor.Tensor // 1 × dModel
	pos  *tensor.Tensor // numCols × dModel

	layers []*transformerLayer

	lnFGain, lnFBias *tensor.Tensor
	wOut             *tensor.Tensor // dModel × inDim
	bOut             *tensor.Tensor // 1 × inDim

	causal *tensor.Tensor // numCols × numCols additive mask (0 / −1e30)
}

var _ Backbone = (*Transformer)(nil)

type transformerLayer struct {
	ln1Gain, ln1Bias *tensor.Tensor
	wq, wk, wv, wo   *tensor.Tensor // dModel × dModel
	ln2Gain, ln2Bias *tensor.Tensor
	w1               *tensor.Tensor // dModel × ff
	b1               *tensor.Tensor // 1 × ff
	w2               *tensor.Tensor // ff × dModel
	b2               *tensor.Tensor // 1 × dModel
}

// NewTransformer constructs a pre-norm causal transformer with the given
// model width, head count, feed-forward width and layer count.
func NewTransformer(rng *rand.Rand, colSizes []int, dModel, heads, ffDim, numLayers int) *Transformer {
	n := len(colSizes)
	if n == 0 {
		panic("nn: Transformer needs at least one column")
	}
	if dModel <= 0 || heads <= 0 || dModel%heads != 0 || ffDim <= 0 || numLayers <= 0 {
		panic(fmt.Sprintf("nn: bad transformer config d=%d h=%d ff=%d L=%d", dModel, heads, ffDim, numLayers))
	}
	t := &Transformer{
		colSizes: append([]int(nil), colSizes...),
		dModel:   dModel,
		heads:    heads,
		dk:       dModel / heads,
		ff:       ffDim,
	}
	t.offsets = make([]int, n)
	for i, s := range colSizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: column %d has nonpositive domain %d", i, s))
		}
		t.offsets[i] = t.inDim
		t.inDim += s
	}

	newT := func(r, c int, std float64) *tensor.Tensor {
		m := tensor.New(r, c)
		m.Randn(rng, std)
		return m
	}
	ones := func(c int) *tensor.Tensor {
		m := tensor.New(1, c)
		m.Fill(1)
		return m
	}
	std := 1 / math.Sqrt(float64(dModel))
	t.wEmb = newT(t.inDim, dModel, std)
	t.sos = newT(1, dModel, std)
	t.pos = newT(n, dModel, std)
	for l := 0; l < numLayers; l++ {
		t.layers = append(t.layers, &transformerLayer{
			ln1Gain: ones(dModel), ln1Bias: tensor.New(1, dModel),
			wq: newT(dModel, dModel, std), wk: newT(dModel, dModel, std),
			wv: newT(dModel, dModel, std), wo: newT(dModel, dModel, std),
			ln2Gain: ones(dModel), ln2Bias: tensor.New(1, dModel),
			w1: newT(dModel, ffDim, std), b1: tensor.New(1, ffDim),
			w2: newT(ffDim, dModel, 1/math.Sqrt(float64(ffDim))), b2: tensor.New(1, dModel),
		})
	}
	t.lnFGain = ones(dModel)
	t.lnFBias = tensor.New(1, dModel)
	t.wOut = newT(dModel, t.inDim, std)
	t.bOut = tensor.New(1, t.inDim)

	t.causal = tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.causal.Set(i, j, -1e30)
		}
	}
	return t
}

// InDim returns the total one-hot input width.
func (t *Transformer) InDim() int { return t.inDim }

// NumCols returns the number of modeled columns.
func (t *Transformer) NumCols() int { return len(t.colSizes) }

// ColSizes returns the per-column domain sizes.
func (t *Transformer) ColSizes() []int { return t.colSizes }

// Offsets returns each column block's start offset.
func (t *Transformer) Offsets() []int { return t.offsets }

// OutputBias returns the output projection bias (1×InDim).
func (t *Transformer) OutputBias() *tensor.Tensor { return t.bOut }

// ColLogits slices the logits of column i out of a full output row.
func (t *Transformer) ColLogits(out []float64, i int) []float64 {
	return out[t.offsets[i] : t.offsets[i]+t.colSizes[i]]
}

// Params returns all trainable tensors.
func (t *Transformer) Params() []*tensor.Tensor {
	ps := []*tensor.Tensor{t.wEmb, t.sos, t.pos}
	for _, l := range t.layers {
		ps = append(ps,
			l.ln1Gain, l.ln1Bias, l.wq, l.wk, l.wv, l.wo,
			l.ln2Gain, l.ln2Bias, l.w1, l.b1, l.w2, l.b2)
	}
	ps = append(ps, t.lnFGain, t.lnFBias, t.wOut, t.bOut)
	return ps
}

// Forward runs the batched autodiff pass. Samples are independent token
// sequences, processed one per batch row and re-stacked.
func (t *Transformer) Forward(g *tensor.Graph, x *tensor.Node) *tensor.Node {
	rows := make([]*tensor.Node, x.Val.Rows)
	for b := 0; b < x.Val.Rows; b++ {
		rows[b] = t.forwardOne(g, g.SliceRows(x, b, 1))
	}
	if len(rows) == 1 {
		return rows[0]
	}
	return g.ConcatRows(rows...)
}

// forwardOne computes the 1×InDim logits of one sample (1×InDim input).
func (t *Transformer) forwardOne(g *tensor.Graph, x *tensor.Node) *tensor.Node {
	n := len(t.colSizes)
	wEmb := g.Param(t.wEmb)
	// Token sequence: SOS, then embeddings of columns 0..n−2, plus
	// positional embeddings.
	tokens := make([]*tensor.Node, n)
	tokens[0] = g.Param(t.sos)
	for i := 1; i < n; i++ {
		blk := g.SliceCols(x, t.offsets[i-1], t.colSizes[i-1])
		emb := g.MatMul(blk, g.SliceRows(wEmb, t.offsets[i-1], t.colSizes[i-1]))
		tokens[i] = emb
	}
	var seq *tensor.Node
	if n == 1 {
		seq = tokens[0]
	} else {
		seq = g.ConcatRows(tokens...)
	}
	hn := g.Add(seq, g.Param(t.pos))

	scale := 1 / math.Sqrt(float64(t.dk))
	for _, l := range t.layers {
		// Pre-norm attention block.
		a := g.LayerNorm(hn, g.Param(l.ln1Gain), g.Param(l.ln1Bias), 1e-5)
		q := g.MatMul(a, g.Param(l.wq))
		k := g.MatMul(a, g.Param(l.wk))
		v := g.MatMul(a, g.Param(l.wv))
		headOuts := make([]*tensor.Node, t.heads)
		for hd := 0; hd < t.heads; hd++ {
			qh := g.SliceCols(q, hd*t.dk, t.dk)
			kh := g.SliceCols(k, hd*t.dk, t.dk)
			vh := g.SliceCols(v, hd*t.dk, t.dk)
			scores := g.AddConst(g.Scale(g.MatMulTB(qh, kh), scale), t.causal)
			probs := g.SoftmaxRows(scores)
			headOuts[hd] = g.MatMul(probs, vh)
		}
		var ctx *tensor.Node
		if t.heads == 1 {
			ctx = headOuts[0]
		} else {
			ctx = g.ConcatCols(headOuts...)
		}
		hn = g.Add(hn, g.MatMul(ctx, g.Param(l.wo)))

		// Pre-norm feed-forward block.
		f := g.LayerNorm(hn, g.Param(l.ln2Gain), g.Param(l.ln2Bias), 1e-5)
		f = g.AddRow(g.MatMul(f, g.Param(l.w1)), g.Param(l.b1))
		f = g.ReLU(f)
		f = g.AddRow(g.MatMul(f, g.Param(l.w2)), g.Param(l.b2))
		hn = g.Add(hn, f)
	}
	hn = g.LayerNorm(hn, g.Param(t.lnFGain), g.Param(t.lnFBias), 1e-5)
	logits := g.AddRow(g.MatMul(hn, g.Param(t.wOut)), g.Param(t.bOut)) // n × inDim

	// Gather: column i's logits come from token row i.
	parts := make([]*tensor.Node, n)
	for i := 0; i < n; i++ {
		parts[i] = g.SliceCols(g.SliceRows(logits, i, 1), t.offsets[i], t.colSizes[i])
	}
	if n == 1 {
		return parts[0]
	}
	return g.ConcatCols(parts...)
}
