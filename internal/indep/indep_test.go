package indep

import (
	"math"
	"math/rand"
	"testing"

	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/metrics"
	"sam/internal/relation"
	"sam/internal/workload"
)

func TestTrainRejectsEmptyWorkload(t *testing.T) {
	s := datagen.Census(1, 100)
	if _, err := Train(s, &workload.Workload{}, map[string]int{"census": 100}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestIndependentModelFitsMarginals(t *testing.T) {
	// Single-column constraints on a skewed column must reshape its
	// histogram away from uniform.
	col := relation.NewColumn("v", relation.Categorical, 4)
	for i := 0; i < 1000; i++ {
		if i < 900 {
			col.Append(0)
		} else {
			col.Append(int32(1 + i%3))
		}
	}
	s := relation.MustSchema(relation.NewTable("t", col))
	queries := []workload.Query{
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "v", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "v", Op: workload.GE, Code: 1}}},
	}
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	m, err := Train(s, wl, map[string]int{"t": 1000})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := m.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	var zeros int
	for _, v := range gen.Tables[0].Col("v").Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / 1000
	if math.Abs(frac-0.9) > 0.05 {
		t.Fatalf("P(v=0) generated %.3f want ≈0.9", frac)
	}
}

func TestIndependenceBreaksCorrelatedQueries(t *testing.T) {
	// Two perfectly correlated columns: the independence model must get
	// single-column constraints right but miss the conjunction badly —
	// the paper's Limitation 1.
	c1 := relation.NewColumn("x", relation.Categorical, 2)
	c2 := relation.NewColumn("y", relation.Categorical, 2)
	for i := 0; i < 1000; i++ {
		v := int32(i % 2)
		c1.Append(v)
		c2.Append(v)
	}
	s := relation.MustSchema(relation.NewTable("t", c1, c2))
	queries := []workload.Query{
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "x", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "y", Op: workload.EQ, Code: 0}}},
	}
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	m, err := Train(s, wl, map[string]int{"t": 1000})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := m.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	conj := workload.Query{Tables: []string{"t"}, Preds: []workload.Predicate{
		{Table: "t", Column: "x", Op: workload.EQ, Code: 0},
		{Table: "t", Column: "y", Op: workload.EQ, Code: 1},
	}}
	// Truth: impossible combination (x == y always), card 0. Independence
	// predicts ~250.
	got := engine.Card(gen, &conj)
	if got < 150 {
		t.Fatalf("independence model should hallucinate the impossible combo, got %d", got)
	}
}

func TestGeneratedSchemaValidAndSized(t *testing.T) {
	orig := datagen.IMDB(5, 150)
	rng := rand.New(rand.NewSource(4))
	queries := workload.GenerateMultiRelation(rng, orig, 60, workload.DefaultMultiRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(orig, queries)}
	sizes := map[string]int{}
	for _, tab := range orig.Tables {
		sizes[tab.Name] = tab.NumRows()
	}
	m, err := Train(orig, wl, sizes)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := m.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tab := range orig.Tables {
		if gen.Table(tab.Name).NumRows() != tab.NumRows() {
			t.Fatalf("table %s size mismatch", tab.Name)
		}
	}
	// Sanity: single-column marginal constraints are roughly honored.
	var qe []float64
	for i := range wl.Queries {
		if len(wl.Queries[i].Preds) != 1 || len(wl.Queries[i].Tables) != 1 {
			continue
		}
		got := engine.Card(gen, &wl.Queries[i].Query)
		qe = append(qe, metrics.QError(float64(got), float64(wl.Queries[i].Card)))
	}
	if len(qe) > 3 {
		if sum := metrics.Summarize(qe); sum.Median > 4 {
			t.Fatalf("single-predicate fidelity too poor: %v", sum)
		}
	}
}
