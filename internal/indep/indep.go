// Package indep is the classic strawman the paper's §2.3 argument is
// aimed at: a generator that fits **independent per-column histograms**
// from single-column cardinality constraints and samples every column
// independently (foreign keys uniformly). It exists as a third comparator
// for the experiments: SAM and the PGM baseline must both beat it wherever
// columns correlate, and the gap quantifies how much of the task is about
// joint structure rather than marginals.
package indep

import (
	"fmt"
	"math/rand"
	"sort"

	"sam/internal/relation"
	"sam/internal/workload"
)

// Model holds one fitted histogram per column of every table.
type Model struct {
	Schema *relation.Schema
	Sizes  map[string]int
	// hist["table.column"] is a probability vector over the column's raw
	// codes.
	hist map[string][]float64
}

// Train fits per-column histograms. Every predicate contributes its
// query's selectivity as a mass observation on the satisfying codes
// (heavier filters are discounted by the query's other predicates under
// the independence assumption itself); columns never filtered stay
// uniform.
func Train(s *relation.Schema, wl *workload.Workload, sizes map[string]int) (*Model, error) {
	if wl.Len() == 0 {
		return nil, fmt.Errorf("indep: empty workload")
	}
	m := &Model{Schema: s, Sizes: sizes, hist: map[string][]float64{}}
	// Accumulate, per column, interval constraints (lo, hi, selectivity)
	// from single-predicate queries — the only constraints an independence
	// model can consume exactly.
	type obs struct {
		lo, hi int32
		sel    float64
	}
	colObs := map[string][]obs{}
	for qi := range wl.Queries {
		cq := &wl.Queries[qi]
		if len(cq.Preds) != 1 || len(cq.Tables) != 1 {
			continue
		}
		p := cq.Preds[0]
		size := sizes[p.Table]
		if size <= 0 {
			continue
		}
		col := s.Table(p.Table).Col(p.Column)
		lo, hi, ok := p.Range(col.NumValues)
		if !ok {
			continue
		}
		key := p.Table + "." + p.Column
		colObs[key] = append(colObs[key], obs{lo, hi, float64(cq.Card) / float64(size)})
	}
	for _, t := range s.Tables {
		for _, c := range t.Cols {
			key := t.Name + "." + c.Name
			h := make([]float64, c.NumValues)
			obsList := colObs[key]
			if len(obsList) == 0 {
				for i := range h {
					h[i] = 1 / float64(c.NumValues)
				}
				m.hist[key] = h
				continue
			}
			// Fit: piecewise-constant density from the interval
			// constraints via a simple sweep — sort boundary points,
			// assign each elementary segment the average selectivity
			// density of the constraints covering it, then normalize.
			cuts := map[int32]bool{0: true, int32(c.NumValues): true}
			for _, o := range obsList {
				cuts[o.lo] = true
				cuts[o.hi+1] = true
			}
			bounds := make([]int32, 0, len(cuts))
			for v := range cuts {
				bounds = append(bounds, v)
			}
			sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
			for bi := 0; bi+1 < len(bounds); bi++ {
				lo, hi := bounds[bi], bounds[bi+1]
				var density, n float64
				for _, o := range obsList {
					if o.lo <= lo && hi-1 <= o.hi {
						density += o.sel / float64(o.hi-o.lo+1)
						n++
					}
				}
				if n > 0 {
					density /= n
				} else {
					density = 1 / float64(c.NumValues)
				}
				for v := lo; v < hi; v++ {
					h[v] = density
				}
			}
			var sum float64
			for _, v := range h {
				sum += v
			}
			if sum <= 0 {
				for i := range h {
					h[i] = 1 / float64(c.NumValues)
				}
			} else {
				for i := range h {
					h[i] /= sum
				}
			}
			m.hist[key] = h
		}
	}
	return m, nil
}

// Generate samples every column independently from its histogram; foreign
// keys are uniform over the parent.
func (m *Model) Generate(seed int64) (*relation.Schema, error) {
	rng := rand.New(rand.NewSource(seed))
	tables := make([]*relation.Table, 0, len(m.Schema.Tables))
	rowsOf := map[string]int{}
	for _, t := range m.Schema.Tables {
		cols := make([]*relation.Column, len(t.Cols))
		cums := make([][]float64, len(t.Cols))
		for i, c := range t.Cols {
			nc := relation.NewColumn(c.Name, c.Kind, c.NumValues)
			if c.Vals != nil {
				nc = nc.WithVals(c.Vals)
			}
			cols[i] = nc
			h := m.hist[t.Name+"."+c.Name]
			cum := make([]float64, len(h))
			var run float64
			for j, p := range h {
				run += p
				cum[j] = run
			}
			cums[i] = cum
		}
		nt := relation.NewTable(t.Name, cols...)
		nt.Parent = t.Parent
		size := m.Sizes[t.Name]
		rowsOf[t.Name] = size
		for r := 0; r < size; r++ {
			for i := range cols {
				u := rng.Float64() * cums[i][len(cums[i])-1]
				j := sort.SearchFloat64s(cums[i], u)
				if j >= len(cums[i]) {
					j = len(cums[i]) - 1
				}
				cols[i].Append(int32(j))
			}
			if t.Parent != "" {
				nt.FK = append(nt.FK, int64(rng.Intn(rowsOf[t.Parent])))
			}
		}
		tables = append(tables, nt)
	}
	return relation.NewSchema(tables...)
}
