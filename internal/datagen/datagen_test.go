package datagen

import (
	"testing"

	"sam/internal/engine"
)

func TestCensusShape(t *testing.T) {
	s := Census(1, 2000)
	if !s.SingleTable() {
		t.Fatal("census must be a single relation")
	}
	tab := s.Tables[0]
	if len(tab.Cols) != 14 {
		t.Fatalf("census has %d columns, want 14", len(tab.Cols))
	}
	if tab.NumRows() != 2000 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	minDom, maxDom := 1<<30, 0
	for _, c := range tab.Cols {
		if c.NumValues < minDom {
			minDom = c.NumValues
		}
		if c.NumValues > maxDom {
			maxDom = c.NumValues
		}
	}
	if minDom != 2 || maxDom != 123 {
		t.Fatalf("domain range [%d, %d], want [2, 123]", minDom, maxDom)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCensusDeterministic(t *testing.T) {
	a := Census(7, 500)
	b := Census(7, 500)
	for ci := range a.Tables[0].Cols {
		ca, cb := a.Tables[0].Cols[ci], b.Tables[0].Cols[ci]
		for i := range ca.Data {
			if ca.Data[i] != cb.Data[i] {
				t.Fatalf("column %s row %d differs across same-seed runs", ca.Name, i)
			}
		}
	}
	c := Census(8, 500)
	same := true
	for ci := range a.Tables[0].Cols {
		for i := range a.Tables[0].Cols[ci].Data {
			if a.Tables[0].Cols[ci].Data[i] != c.Tables[0].Cols[ci].Data[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestCensusHasCorrelation(t *testing.T) {
	// education_num and age must be positively correlated by construction.
	s := Census(2, 5000)
	tab := s.Tables[0]
	age := tab.Col("age")
	edu := tab.Col("education_num")
	var sa, se, saa, see, sae float64
	n := float64(tab.NumRows())
	for i := 0; i < tab.NumRows(); i++ {
		a, e := float64(age.Data[i]), float64(edu.Data[i])
		sa += a
		se += e
		saa += a * a
		see += e * e
		sae += a * e
	}
	cov := sae/n - (sa/n)*(se/n)
	va := saa/n - (sa/n)*(sa/n)
	ve := see/n - (se/n)*(se/n)
	corr := cov / (sqrt(va) * sqrt(ve))
	if corr < 0.15 {
		t.Fatalf("age/education correlation %v too weak", corr)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method suffices for a test helper.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestDMVShape(t *testing.T) {
	s := DMV(3, 3000)
	tab := s.Tables[0]
	if len(tab.Cols) != 11 {
		t.Fatalf("dmv has %d columns, want 11", len(tab.Cols))
	}
	minDom, maxDom := 1<<30, 0
	for _, c := range tab.Cols {
		if c.NumValues < minDom {
			minDom = c.NumValues
		}
		if c.NumValues > maxDom {
			maxDom = c.NumValues
		}
	}
	if minDom != 2 || maxDom != 2101 {
		t.Fatalf("domain range [%d, %d], want [2, 2101]", minDom, maxDom)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIMDBShape(t *testing.T) {
	s := IMDB(4, 1000)
	if len(s.Tables) != 6 {
		t.Fatalf("imdb has %d tables, want 6", len(s.Tables))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	title := s.Table("title")
	if title == nil || title.Parent != "" {
		t.Fatal("title must be the root")
	}
	for _, name := range []string{"cast_info", "movie_companies", "movie_info", "movie_info_idx", "movie_keyword"} {
		tab := s.Table(name)
		if tab == nil {
			t.Fatalf("missing table %s", name)
		}
		if tab.Parent != "title" {
			t.Fatalf("%s parent = %q", name, tab.Parent)
		}
		if tab.NumRows() == 0 {
			t.Fatalf("%s is empty", name)
		}
		for _, fk := range tab.FK {
			if fk < 0 || fk >= int64(title.NumRows()) {
				t.Fatalf("%s has dangling FK %d", name, fk)
			}
		}
	}
}

func TestIMDBFanoutsAreSkewedWithZeros(t *testing.T) {
	s := IMDB(5, 2000)
	fan := engine.Fanouts(s, "cast_info")
	title := s.Table("title")
	zeros := title.NumRows() - len(fan)
	if zeros == 0 {
		t.Fatal("expected some titles with no cast_info (NULLs in the FOJ)")
	}
	maxFan := int64(0)
	var sum int64
	for _, c := range fan {
		if c > maxFan {
			maxFan = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(fan))
	if float64(maxFan) < 2.5*mean {
		t.Fatalf("fanout not heavy-tailed: max %d mean %.1f", maxFan, mean)
	}
}

func TestIMDBFOJLargerThanBaseTables(t *testing.T) {
	s := IMDB(6, 500)
	foj := engine.FOJSize(s)
	if foj <= int64(s.TotalRows()) {
		t.Fatalf("FOJ size %d should exceed total base rows %d", foj, s.TotalRows())
	}
}

func TestIMDBChildParentCorrelation(t *testing.T) {
	// cast_info.role_id is constructed to track title.kind_id: the mean
	// role_id for kind 0 titles must differ from kind ≥ 4 titles.
	s := IMDB(7, 3000)
	title := s.Table("title")
	ci := s.Table("cast_info")
	kindOf := title.Col("kind_id").Data
	role := ci.Col("role_id").Data
	var lowSum, lowN, highSum, highN float64
	for i := 0; i < ci.NumRows(); i++ {
		k := kindOf[ci.FK[i]]
		v := float64(role[i])
		if k == 0 {
			lowSum += v
			lowN++
		} else if k >= 4 {
			highSum += v
			highN++
		}
	}
	if lowN == 0 || highN == 0 {
		t.Skip("not enough data in one bucket")
	}
	if highSum/highN-lowSum/lowN < 1.0 {
		t.Fatalf("child attribute not correlated with parent kind: low %.2f high %.2f",
			lowSum/lowN, highSum/highN)
	}
}

func TestTPCHShape(t *testing.T) {
	s := TPCH(1, 500)
	if len(s.Tables) != 3 {
		t.Fatalf("tables %d", len(s.Tables))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Table("orders").Parent != "customer" || s.Table("lineitem").Parent != "orders" {
		t.Fatal("chain parents wrong")
	}
	if s.Table("lineitem").NumRows() <= s.Table("orders").NumRows() {
		t.Fatal("lineitem should outnumber orders")
	}
}

func TestTPCHCorrelationFlowsDownChain(t *testing.T) {
	s := TPCH(2, 2000)
	cust := s.Table("customer")
	ord := s.Table("orders")
	li := s.Table("lineitem")
	// quantity correlates with grandparent segment via order priority.
	var loSum, loN, hiSum, hiN float64
	for i := 0; i < li.NumRows(); i++ {
		order := li.FK[i]
		seg := cust.Col("mktsegment").Data[ord.FK[order]]
		q := float64(li.Col("quantity").Data[i])
		if seg == 0 {
			loSum += q
			loN++
		} else if seg >= 3 {
			hiSum += q
			hiN++
		}
	}
	if loN == 0 || hiN == 0 {
		t.Skip("insufficient data")
	}
	if hiSum/hiN-loSum/loN < 3 {
		t.Fatalf("chain correlation too weak: lo %.1f hi %.1f", loSum/loN, hiSum/hiN)
	}
}
