// Package datagen builds the deterministic synthetic datasets that stand in
// for the paper's real-world evaluation data (Census, DMV, IMDB/JOB-light).
// The generators reproduce what the algorithms actually consume: column
// counts, mixed categorical/numeric types, matching domain-size ranges,
// value skew, cross-column correlation, and — for the IMDB-like star schema
// — heavy-tailed foreign-key fanouts correlated with parent attributes.
// Row counts are parameters so experiments can be scaled to a CPU budget.
package datagen

import (
	"math"
	"math/rand"

	"sam/internal/relation"
)

// zipfDraw returns a Zipf-skewed value in [0, n) with exponent s.
func zipfDraw(rng *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return int(z.Uint64())
}

// clampedNormal draws round(N(mu, sigma)) clamped into [0, n).
func clampedNormal(rng *rand.Rand, mu, sigma float64, n int) int {
	v := int(math.Round(rng.NormFloat64()*sigma + mu))
	if v < 0 {
		v = 0
	}
	if v >= n {
		v = n - 1
	}
	return v
}

// censusSpec describes one column of the census-like table. The real Census
// (UCI Adult) has 14 columns with domain sizes from 2 to 123 after the
// preprocessing the paper cites.
type censusSpec struct {
	name   string
	kind   relation.Kind
	domain int
}

var censusSpecs = []censusSpec{
	{"age", relation.Numeric, 74},
	{"workclass", relation.Categorical, 9},
	{"fnlwgt_bucket", relation.Numeric, 100},
	{"education", relation.Categorical, 16},
	{"education_num", relation.Numeric, 16},
	{"marital_status", relation.Categorical, 7},
	{"occupation", relation.Categorical, 15},
	{"relationship", relation.Categorical, 6},
	{"race", relation.Categorical, 5},
	{"sex", relation.Categorical, 2},
	{"capital_gain", relation.Numeric, 123},
	{"capital_loss", relation.Numeric, 99},
	{"hours_per_week", relation.Numeric, 96},
	{"native_country", relation.Categorical, 42},
}

// Census generates a single-relation census-like table with rows rows. A
// latent socioeconomic class drives correlated draws across columns, so the
// joint distribution is far from independent — the regime where the paper's
// AR model beats independence-assuming baselines.
func Census(seed int64, rows int) *relation.Schema {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*relation.Column, len(censusSpecs))
	for i, sp := range censusSpecs {
		cols[i] = relation.NewColumn(sp.name, sp.kind, sp.domain)
	}
	for r := 0; r < rows; r++ {
		// Latent class 0..4, skewed toward lower classes.
		cls := zipfDraw(rng, 5, 1.3)
		fc := float64(cls)
		eduNum := clampedNormal(rng, 4+fc*2.6, 1.8, 16)
		age := clampedNormal(rng, 18+fc*9+float64(eduNum), 9, 74)
		vals := []int{
			age,
			clampedNormal(rng, fc*1.7, 1.5, 9),
			zipfDraw(rng, 100, 1.2),
			eduNum, // education label tracks education_num
			eduNum,
			clampedNormal(rng, 1.2+0.4*float64(age)/10, 1.4, 7),
			clampedNormal(rng, fc*3, 2.2, 15),
			clampedNormal(rng, 2.5-fc*0.4, 1.3, 6),
			zipfDraw(rng, 5, 1.6),
			rng.Intn(2),
			0, // capital_gain, filled below
			0, // capital_loss, filled below
			clampedNormal(rng, 30+fc*4, 9, 96),
			zipfDraw(rng, 42, 1.8),
		}
		// Capital gain/loss: mostly zero, heavy tail growing with class.
		if rng.Float64() < 0.06+0.05*fc {
			vals[10] = 1 + zipfDraw(rng, 122, 1.1)
		}
		if rng.Float64() < 0.04 {
			vals[11] = 1 + zipfDraw(rng, 98, 1.2)
		}
		for i, v := range vals {
			cols[i].Append(int32(v))
		}
	}
	return relation.MustSchema(relation.NewTable("census", cols...))
}

// dmvSpec mirrors the DMV vehicle-registration table: 11 columns with
// widely varying types and domain sizes from 2 to 2101 (the paper's
// preprocessed range).
type dmvSpec struct {
	name   string
	kind   relation.Kind
	domain int
}

var dmvSpecs = []dmvSpec{
	{"record_type", relation.Categorical, 2},
	{"registration_class", relation.Categorical, 75},
	{"state", relation.Categorical, 5},
	{"county", relation.Categorical, 63},
	{"body_type", relation.Categorical, 59},
	{"fuel_type", relation.Categorical, 9},
	{"unladen_weight", relation.Numeric, 800},
	{"weight_bucket", relation.Numeric, 150},
	{"model_year", relation.Numeric, 120},
	{"color", relation.Categorical, 225},
	{"make", relation.Categorical, 2101},
}

// DMV generates the DMV-like single relation. The latent variable is a
// vehicle segment (passenger / commercial / motorcycle / trailer …), which
// correlates make, body type, weight and fuel.
func DMV(seed int64, rows int) *relation.Schema {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*relation.Column, len(dmvSpecs))
	for i, sp := range dmvSpecs {
		cols[i] = relation.NewColumn(sp.name, sp.kind, sp.domain)
	}
	for r := 0; r < rows; r++ {
		seg := zipfDraw(rng, 6, 1.4)
		fs := float64(seg)
		weight := clampedNormal(rng, 120+fs*110, 70, 800)
		makeBase := seg * 330
		makeID := makeBase + zipfDraw(rng, 2101-makeBase, 1.35)
		if makeID >= 2101 {
			makeID = 2100
		}
		vals := []int{
			boolToInt(rng.Float64() < 0.93),
			clampedNormal(rng, fs*11, 6, 75),
			zipfDraw(rng, 5, 2.0),
			zipfDraw(rng, 63, 1.15),
			clampedNormal(rng, fs*9, 5, 59),
			clampedNormal(rng, fs*1.1, 1.1, 9),
			weight,
			weight * 150 / 800,
			clampedNormal(rng, 80-fs*6, 14, 120),
			zipfDraw(rng, 225, 1.35),
			makeID,
		}
		for i, v := range vals {
			cols[i].Append(int32(v))
		}
	}
	return relation.MustSchema(relation.NewTable("dmv", cols...))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// IMDBSizes controls the scale of the IMDB-like database relative to the
// title row count.
type IMDBSizes struct {
	TitleRows int
}

// IMDB generates the JOB-light star schema: title at the root and five
// foreign-key relations (cast_info, movie_companies, movie_info,
// movie_info_idx, movie_keyword). Fanouts are heavy-tailed and may be zero
// (so the full outer join contains NULL-extended tuples), child attribute
// distributions depend on the parent title's kind and year, and a latent
// per-title "popularity" correlates the fanouts of all child relations
// with each other beyond what the title's content columns explain — the
// joint structure that pairwise view-based key assignment cannot recover
// but Group-and-Merge can (§4.3.2).
func IMDB(seed int64, titleRows int) *relation.Schema {
	rng := rand.New(rand.NewSource(seed))

	kind := relation.NewColumn("kind_id", relation.Categorical, 7)
	year := relation.NewColumn("production_year", relation.Numeric, 133)
	titleKinds := make([]int, titleRows)
	titleYears := make([]int, titleRows)
	titlePop := make([]float64, titleRows)
	for i := 0; i < titleRows; i++ {
		k := zipfDraw(rng, 7, 1.2)
		y := clampedNormal(rng, 95-float64(k)*4, 18, 133)
		titleKinds[i], titleYears[i] = k, y
		// Popularity: heavy-tailed, hidden from the content columns.
		switch zipfDraw(rng, 3, 1.4) {
		case 0:
			titlePop[i] = 0.6
		case 1:
			titlePop[i] = 1.5
		default:
			titlePop[i] = 4
		}
		kind.Append(int32(k))
		year.Append(int32(y))
	}
	title := relation.NewTable("title", kind, year)

	type childSpec struct {
		name     string
		colName  string
		domain   int
		kind     relation.Kind
		meanFan  float64 // average children per title
		zeroProb float64 // chance a title has no children at all
		skew     float64
	}
	specs := []childSpec{
		{"cast_info", "role_id", 11, relation.Categorical, 3.0, 0.03, 1.3},
		{"movie_companies", "company_type_id", 4, relation.Categorical, 1.3, 0.10, 1.5},
		{"movie_info", "info_type_id", 71, relation.Categorical, 2.0, 0.05, 1.25},
		{"movie_info_idx", "info_type_id", 5, relation.Categorical, 0.8, 0.20, 1.6},
		{"movie_keyword", "keyword_id", 500, relation.Categorical, 2.3, 0.08, 1.15},
	}
	tables := []*relation.Table{title}
	for _, sp := range specs {
		col := relation.NewColumn(sp.colName, sp.kind, sp.domain)
		t := relation.NewTable(sp.name, col)
		t.Parent = "title"
		for ti := 0; ti < titleRows; ti++ {
			if rng.Float64() < sp.zeroProb/titlePop[ti] {
				continue
			}
			// Heavy-tailed fanout: 1 + Zipf draw scaled by the mean,
			// multiplied by the title's latent popularity (shared across
			// all child relations) and modulated by the title's kind.
			base := 1 + zipfDraw(rng, int(sp.meanFan*4)+2, sp.skew)
			if titleKinds[ti] >= 4 && base > 1 {
				base = 1 + base/2
			}
			base = int(float64(base)*titlePop[ti] + 0.5)
			if base < 1 {
				base = 1
			}
			for c := 0; c < base; c++ {
				// Child attribute correlated with parent kind and year.
				center := float64(titleKinds[ti]) / 6 * float64(sp.domain-1)
				spread := float64(sp.domain) / 6
				v := clampedNormal(rng, center+float64(titleYears[ti]%7), spread, sp.domain)
				col.Append(int32(v))
				t.FK = append(t.FK, int64(ti))
			}
		}
		tables = append(tables, t)
	}
	return relation.MustSchema(tables...)
}

// TPCH generates a TPC-H-flavoured depth-2 chain: customer ← orders ←
// lineitem (each FK table's parent is the previous one). Unlike the IMDB
// star, join keys nest two levels deep, exercising the recursive
// Group-and-Merge extension. Order priority correlates with the customer
// segment, and lineitem attributes with the order's priority — correlation
// flows down the chain.
func TPCH(seed int64, customers int) *relation.Schema {
	rng := rand.New(rand.NewSource(seed))

	segment := relation.NewColumn("mktsegment", relation.Categorical, 5)
	balance := relation.NewColumn("acctbal_bucket", relation.Numeric, 50)
	custSeg := make([]int, customers)
	for i := 0; i < customers; i++ {
		seg := zipfDraw(rng, 5, 1.2)
		custSeg[i] = seg
		segment.Append(int32(seg))
		balance.Append(int32(clampedNormal(rng, 12+float64(seg)*7, 8, 50)))
	}
	customer := relation.NewTable("customer", segment, balance)

	priority := relation.NewColumn("orderpriority", relation.Categorical, 5)
	status := relation.NewColumn("orderstatus", relation.Categorical, 3)
	orders := relation.NewTable("orders", priority, status)
	orders.Parent = "customer"
	orderPrio := []int{}
	for ci := 0; ci < customers; ci++ {
		n := zipfDraw(rng, 8, 1.3)
		if custSeg[ci] >= 3 {
			n += 2
		}
		for o := 0; o < n; o++ {
			prio := clampedNormal(rng, float64(custSeg[ci]), 1.2, 5)
			orderPrio = append(orderPrio, prio)
			priority.Append(int32(prio))
			status.Append(int32(zipfDraw(rng, 3, 1.5)))
			orders.FK = append(orders.FK, int64(ci))
		}
	}

	quantity := relation.NewColumn("quantity", relation.Numeric, 50)
	flags := relation.NewColumn("returnflag", relation.Categorical, 3)
	lineitem := relation.NewTable("lineitem", quantity, flags)
	lineitem.Parent = "orders"
	for oi := 0; oi < orders.NumRows(); oi++ {
		n := 1 + zipfDraw(rng, 7, 1.25)
		for li := 0; li < n; li++ {
			quantity.Append(int32(clampedNormal(rng, 10+float64(orderPrio[oi])*5, 8, 50)))
			flags.Append(int32(zipfDraw(rng, 3, 1.8)))
			lineitem.FK = append(lineitem.FK, int64(oi))
		}
	}
	return relation.MustSchema(customer, orders, lineitem)
}
