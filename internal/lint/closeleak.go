package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// CloseLeak enforces the resource lifecycle of the streaming pipeline's
// file-backed values: an os.File or a relation shard/spill handle opened
// in a function must reach Close on every exit path, or the fd (and for
// writers, the unpatched row-count header) leaks. The creation set is
// deliberately narrow — os.Create/Open/OpenFile/CreateTemp plus the
// relation constructors that own a file — and ownership transfer is
// respected aggressively: a handle that is returned, stored, passed to
// another call, captured by a closure, or address-taken is someone
// else's to close, so only clearly-owned locals are checked.
//
// Path coverage runs on the CFG from the creation statement: a deferred
// Close covers everything, otherwise analysis.UncoveredExit must find no
// exit that skips both the Close call and the creation's own error-guard
// return (on the error path there is nothing to close). The suggested
// fix inserts `defer x.Close()` after the error check.
var CloseLeak = &analysis.Analyzer{
	Name: "closeleak",
	Doc: "require file-backed values (os files, relation shard/spill handles) " +
		"opened in a function to be closed on every path or handed off",
	Run: runCloseLeak,
}

func runCloseLeak(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkCloseScope(pass, body)
		})
	}
	return nil
}

// closeable tracks one owned handle from its creation.
type closeable struct {
	obj    types.Object
	name   string
	create *ast.AssignStmt
	errObj types.Object // the err bound by the same creation, if any
}

func checkCloseScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var handles []*closeable
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCloseableCreation(pass.TypesInfo, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		h := &closeable{obj: pass.TypesInfo.Defs[id], name: id.Name, create: as}
		if h.obj == nil {
			return true
		}
		if len(as.Lhs) == 2 {
			if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
				h.errObj = pass.TypesInfo.Defs[errID]
			}
		}
		handles = append(handles, h)
		return true
	})
	if len(handles) == 0 {
		return
	}

	guards := errGuards(body)
	var cfg *analysis.CFG
	for _, h := range handles {
		if handleEscapes(pass, body, h) {
			continue
		}
		if deferredClose(pass, body, h) {
			continue
		}
		if cfg == nil {
			cfg = analysis.BuildCFG(body)
		}
		covers := func(n ast.Node) bool {
			if isCloseStmt(pass, n, h.obj) {
				return true
			}
			// A return inside the creation's own `if err != nil` guard:
			// the handle is invalid on that path, nothing to close.
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || h.errObj == nil {
				return false
			}
			guard := guards[ret]
			return guard != nil && condMentions(pass.TypesInfo, guard.Cond, h.errObj)
		}
		if exit, uncovered := cfg.UncoveredExit(h.create, covers); uncovered {
			pass.Report(analysis.Diagnostic{
				Pos: exit,
				Message: fmt.Sprintf(
					"handle %s (opened at line %d) is not closed on this path; defer %s.Close() after the error check",
					h.name, pass.Fset.Position(h.create.Pos()).Line, h.name),
				SuggestedFixes: []analysis.SuggestedFix{deferCloseFix(pass, body, h)},
			})
		}
	}
}

// errGuards maps each return statement in the scope to the innermost if
// statement whose then-branch contains it, for error-guard recognition.
func errGuards(body *ast.BlockStmt) map[*ast.ReturnStmt]*ast.IfStmt {
	guards := make(map[*ast.ReturnStmt]*ast.IfStmt)
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for i := len(parents) - 1; i >= 0; i-- {
			if ifs, ok := parents[i].(*ast.IfStmt); ok && containsPos(ifs.Body, ret.Pos()) {
				guards[ret] = ifs
				return
			}
		}
	})
	return guards
}

// isCloseableCreation recognizes the narrow creation set: os file opens
// and the relation constructors that own a file handle.
func isCloseableCreation(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !isPkgLevel(fn) {
		return false
	}
	switch pkgPath(fn) {
	case "os":
		switch fn.Name() {
		case "Create", "Open", "OpenFile", "CreateTemp":
			return true
		}
	case relationPath:
		switch fn.Name() {
		case "CreateShardFile", "OpenShardFile":
			return true
		}
	}
	return false
}

// handleEscapes reports whether ownership of h leaves this function:
// returned, stored, passed as an argument, captured by a closure, or
// address-taken. Method calls on the handle itself (h.Write, h.Close)
// are normal use, not escapes.
func handleEscapes(pass *analysis.Pass, body *ast.BlockStmt, h *closeable) bool {
	escaped := false
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		if escaped {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || defOrUse(pass.TypesInfo, id) != h.obj {
			return
		}
		if len(parents) == 0 {
			return
		}
		// The creation's own LHS is not a use.
		if parents[len(parents)-1] == h.create {
			return
		}
		for _, p := range parents {
			if lit, ok := p.(*ast.FuncLit); ok && !containsPos(lit, h.create.Pos()) {
				escaped = true // captured by a closure defined after creation
				return
			}
		}
		switch p := parents[len(parents)-1].(type) {
		case *ast.SelectorExpr:
			return // receiver of a method call or field read: normal use
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == n && !isBorrowingCall(pass.TypesInfo, p) {
					escaped = true
					return
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
			escaped = true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				escaped = true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == n {
					escaped = true // aliased into another variable
					return
				}
			}
		}
	})
	return escaped
}

// isBorrowingCall recognizes calls that use a handle for the duration of
// the call without taking ownership — fmt.Fprint* and the io copy/write
// helpers. Passing a handle to anything else (a wrapper constructor, a
// goroutine body, an unknown function) transfers the Close obligation.
func isBorrowingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !isPkgLevel(fn) {
		return false
	}
	switch pkgPath(fn) {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Fprint")
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "CopyBuffer", "WriteString", "ReadAll", "ReadFull":
			return true
		}
	}
	return false
}

// deferredClose reports whether a defer in this scope closes h: `defer
// h.Close()` or a deferred closure containing h.Close().
func deferredClose(pass *analysis.Pass, body *ast.BlockStmt, h *closeable) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isCloseCall(pass, d.Call, h.obj) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isCloseCall(pass, call, h.obj) {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// isCloseStmt reports whether a CFG node is `h.Close()` at statement
// level (bare or with its error consumed).
func isCloseStmt(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(n.X).(*ast.CallExpr)
		return ok && isCloseCall(pass, call, obj)
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isCloseCall(pass, call, obj) {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isCloseCall(pass, call, obj) {
				return true
			}
		}
	}
	return false
}

func isCloseCall(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && defOrUse(pass.TypesInfo, id) == obj
}

func condMentions(info *types.Info, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && defOrUse(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// deferCloseFix inserts `defer h.Close()` after the creation's error
// guard (or directly after the creation when there is none), matching
// indentation.
func deferCloseFix(pass *analysis.Pass, body *ast.BlockStmt, h *closeable) analysis.SuggestedFix {
	after := ast.Node(h.create)
	// If the statement immediately following the creation in the same
	// block is the err-guard if, insert after it instead.
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return
		}
		for i, s := range blk.List {
			if s != ast.Stmt(h.create) || i+1 >= len(blk.List) {
				continue
			}
			if ifs, ok := blk.List[i+1].(*ast.IfStmt); ok && h.errObj != nil &&
				condMentions(pass.TypesInfo, ifs.Cond, h.errObj) {
				after = ifs
			}
		}
	})
	pos := pass.Fset.Position(h.create.Pos())
	indent := lineIndent(pass.Sources[pos.Filename], pos)
	return analysis.SuggestedFix{
		Message: "defer " + h.name + ".Close() once the handle is known valid",
		TextEdits: []analysis.TextEdit{{
			Pos:     after.End(),
			End:     after.End(),
			NewText: []byte("\n" + indent + "defer " + h.name + ".Close()"),
		}},
	}
}
