// Package lint is samlint: the project-specific static-analysis suite
// that turns invariants earlier PRs bought at runtime into machine-checked
// law. Each analyzer encodes one invariant:
//
//   - detrand: sampling is bit-deterministic for a fixed (seed, workers,
//     batch) — pipeline packages must not draw from the global math/rand
//     state or seed RNGs from the clock.
//   - hotalloc: warm train/sample steps are zero-allocation — loops in
//     pipeline packages must not call allocating tensor constructors or
//     ops that have pooled/...Into variants.
//   - spanend: an obs phase span started in a function is ended on every
//     path, or ownership is explicitly handed off.
//   - graphreset: a pooled gradient tape rebuilt every loop iteration is
//     Reset each iteration, or it leaks nodes (the PR 1 tape-leak class).
//   - errpropagate: errors from relation/obs IO and JSONL serialization
//     are never silently dropped.
//   - obsnil: observer callbacks are invoked through their nil-safe
//     wrappers, never directly off the Hooks struct.
//   - maporder: values derived from map iteration order never reach
//     writers, hashes, RNG seeding, or heap comparators (taint analysis
//     over def-use chains; sort.* sanitizes).
//   - goleak: goroutines in core/obs signal completion (WaitGroup.Done,
//     close, or channel send) on every CFG exit path.
//   - lockguard: fields written under a struct's mutex anywhere in a
//     package are never accessed bare elsewhere in it.
//   - closeleak: file-backed handles (os files, relation shard files)
//     reach Close on every path or are explicitly handed off.
//   - veccard: labeled-metric With() handles are pre-resolved outside
//     hot loops, and label values come from bounded sets.
//
// The suite runs via `go run ./cmd/samlint ./...` and in the CI lint job.
// Intentional exceptions carry a //lint:allow <analyzer> <reason> marker
// on (or on the standalone line above) the flagged line; the driver
// rejects markers with no reason and markers that suppress nothing.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// Import paths the analyzers reason about.
const (
	tensorPath   = "sam/internal/tensor"
	obsPath      = "sam/internal/obs"
	relationPath = "sam/internal/relation"
)

// PipelinePackages are the packages under the determinism and hot-path
// allocation contracts (detrand, hotalloc). The rest of the module gets
// the repo-wide analyzers only.
var PipelinePackages = map[string]bool{
	"sam/internal/ar":     true,
	"sam/internal/core":   true,
	"sam/internal/nn":     true,
	"sam/internal/tensor": true,
	"sam/internal/pgm":    true,
	"sam/internal/engine": true,
}

// IsPipelinePackage reports whether importPath is under the pipeline
// contracts; fixture packages (loaded under samlint.fixture/) never are,
// so fixtures exercise analyzers directly.
func IsPipelinePackage(importPath string) bool {
	return PipelinePackages[importPath]
}

// Suite returns every samlint analyzer, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRand,
		HotAlloc,
		SpanEnd,
		GraphReset,
		ErrPropagate,
		ObsNil,
		MapOrder,
		GoLeak,
		LockGuard,
		CloseLeak,
		VecCard,
	}
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPath returns the import path of the package declaring fn ("" for
// builtins and universe-scope objects).
func pkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgLevel reports whether fn is a package-level function (no receiver).
func isPkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedOrPointee unwraps one level of pointer and reports the named type
// beneath, if any.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t is (a pointer to) the named type
// path.name.
func isNamedType(t types.Type, path, name string) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path && n.Obj().Name() == name
}

// funcBodies visits every function body in the file — declarations and
// literals — handing each to visit with the enclosing declaration's name
// ("" for literals) and its type. Each body is one analysis scope.
func funcBodies(f *ast.File, visit func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Type, fd.Body)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			visit("", lit.Type, lit.Body)
		}
		return true
	})
}

// inspectShallow walks the subtree under n in source order but does not
// descend into nested function literals: each function body is one
// analysis scope, and statements inside a closure belong to the closure's
// own visit, not its enclosing function's.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		if _, ok := child.(*ast.FuncLit); ok && child != n {
			return false
		}
		return fn(child)
	})
}

// walkParents traverses the subtree under root in source order, handing
// visit each node together with its ancestor stack (outermost first,
// excluding the node itself). Unlike inspectShallow it does descend into
// nested function literals; callers that need scope boundaries can check
// the stack for *ast.FuncLit entries.
func walkParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// lineIndent returns the leading whitespace of the source line containing
// pos, for indentation-preserving insertions.
func lineIndent(src []byte, pos token.Position) string {
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || start > len(src) {
		return ""
	}
	line := string(src[start:])
	return line[:len(line)-len(strings.TrimLeft(line, " \t"))]
}

// containsPos reports whether node's source range covers pos.
func containsPos(node ast.Node, pos token.Pos) bool {
	return node != nil && node.Pos() <= pos && pos < node.End()
}
