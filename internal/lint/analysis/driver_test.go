package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

// toyAnalyzer flags every call to a function literally named "boom" — just
// enough analyzer to exercise the driver's marker and gating logic.
func toyAnalyzer(pipelineOnly bool) *Analyzer {
	return &Analyzer{
		Name:         "toybomb",
		Doc:          "flags calls to boom",
		PipelineOnly: pipelineOnly,
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
							p.Reportf(call.Pos(), "call to boom")
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

func loadAllowFixture(t *testing.T) (*Loader, *Package) {
	t.Helper()
	l := NewLoader()
	pkg, err := l.LoadDir("testdata/src/allow", "samlint.fixture/allow")
	if err != nil {
		t.Fatal(err)
	}
	return l, pkg
}

func TestDriverAllowMarkers(t *testing.T) {
	_, pkg := loadAllowFixture(t)
	findings, err := Run([]*Package{pkg}, []*Analyzer{toyAnalyzer(false)}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	var suppressed, unsuppressed, malformed, unused int
	var reasons []string
	for _, f := range findings {
		switch {
		case f.Analyzer == "samlint" && strings.Contains(f.Message, "malformed"):
			malformed++
		case f.Analyzer == "samlint" && strings.Contains(f.Message, "unused"):
			unused++
		case f.Suppressed:
			suppressed++
			reasons = append(reasons, f.SuppressReason)
		default:
			unsuppressed++
		}
	}
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (same-line and line-above markers)", suppressed)
	}
	for _, want := range []string{"calls boom on purpose", "standalone marker above"} {
		found := false
		for _, r := range reasons {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no suppressed finding carries reason %q (got %v)", want, reasons)
		}
	}
	if unsuppressed != 2 {
		t.Errorf("unsuppressed = %d, want 2 (bare call and the one under a malformed marker)", unsuppressed)
	}
	if malformed != 1 {
		t.Errorf("malformed-marker findings = %d, want 1", malformed)
	}
	if unused != 1 {
		t.Errorf("unused-marker findings = %d, want 1", unused)
	}

	// Findings come back position-sorted.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1].Pos, findings[i].Pos
		if a.Filename == b.Filename && a.Line > b.Line {
			t.Fatalf("findings not sorted: %s before %s", findings[i-1], findings[i])
		}
	}
}

func TestDriverPipelineGating(t *testing.T) {
	_, pkg := loadAllowFixture(t)

	notPipeline := func(string) bool { return false }
	findings, err := Run([]*Package{pkg}, []*Analyzer{toyAnalyzer(true)}, Config{IsPipeline: notPipeline})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "toybomb" {
			t.Fatalf("pipeline-only analyzer ran on a non-pipeline package: %s", f)
		}
	}

	// With no classifier every package counts as pipeline.
	findings, err = Run([]*Package{pkg}, []*Analyzer{toyAnalyzer(true)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, f := range findings {
		if f.Analyzer == "toybomb" {
			ran = true
		}
	}
	if !ran {
		t.Fatal("pipeline-only analyzer did not run under a nil classifier")
	}
}

func TestDriverScopeGating(t *testing.T) {
	_, pkg := loadAllowFixture(t)

	// A scope that rejects the fixture's import path silences the
	// analyzer entirely — no findings, and the fixture's allow markers
	// become "unused" findings since nothing matched them.
	scoped := toyAnalyzer(false)
	scoped.Scope = func(path string) bool { return strings.HasPrefix(path, "sam/internal/core") }
	findings, err := Run([]*Package{pkg}, []*Analyzer{scoped}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "toybomb" {
			t.Fatalf("scoped analyzer ran outside its scope: %s", f)
		}
	}

	// A scope accepting the path behaves like no scope at all.
	scoped.Scope = func(path string) bool { return path == "samlint.fixture/allow" }
	findings, err = Run([]*Package{pkg}, []*Analyzer{scoped}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, f := range findings {
		if f.Analyzer == "toybomb" {
			ran = true
		}
	}
	if !ran {
		t.Fatal("analyzer did not run inside its scope")
	}
}

func TestApplyFixes(t *testing.T) {
	fset := token.NewFileSet()
	src := []byte("abcdef")
	file := fset.AddFile("x.go", -1, len(src))
	file.SetLinesForContent(src)
	pos := func(off int) token.Pos { return file.Pos(off) }

	findings := []Finding{
		{Fixes: []SuggestedFix{{TextEdits: []TextEdit{{Pos: pos(1), End: pos(3), NewText: []byte("XY")}}}}},
		{Fixes: []SuggestedFix{{TextEdits: []TextEdit{{Pos: pos(5), End: pos(5), NewText: []byte("Z")}}}}},
		// Suppressed findings contribute no edits.
		{Suppressed: true, Fixes: []SuggestedFix{{TextEdits: []TextEdit{{Pos: pos(0), End: pos(6), NewText: []byte("GONE")}}}}},
	}
	out, err := ApplyFixes(fset, map[string][]byte{"x.go": src}, findings)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out["x.go"]); got != "aXYdeZf" {
		t.Errorf("ApplyFixes = %q, want %q", got, "aXYdeZf")
	}

	overlapping := []Finding{
		{Fixes: []SuggestedFix{{TextEdits: []TextEdit{{Pos: pos(1), End: pos(3), NewText: []byte("X")}}}}},
		{Fixes: []SuggestedFix{{TextEdits: []TextEdit{{Pos: pos(2), End: pos(4), NewText: []byte("Y")}}}}},
	}
	if _, err := ApplyFixes(fset, map[string][]byte{"x.go": src}, overlapping); err == nil {
		t.Fatal("overlapping edits did not error")
	}
}
