package allow

func boom() int { return 1 }

func suppressedSameLine() int {
	return boom() //lint:allow toybomb calls boom on purpose
}

func suppressedLineAbove() int {
	//lint:allow toybomb standalone marker above
	return boom()
}

func unsuppressed() int {
	return boom()
}

//lint:allow toybomb
func malformedNoReason() int {
	return boom()
}

//lint:allow toybomb orphan marker with nothing to suppress
func cleanFunc() int { return 2 }
