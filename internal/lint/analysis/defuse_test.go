package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckFunc parses and typechecks src (a full file) and returns the
// first function's body plus the type info.
func typecheckFunc(t *testing.T, src string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fn, info
		}
	}
	t.Fatal("no function found")
	return nil, nil
}

// objByName finds the variable object named name defined in the body.
func objByName(t *testing.T, body ast.Node, info *types.Info, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && id.Name == name && info.Defs[id] != nil && obj == nil {
			obj = info.Defs[id]
		}
		return true
	})
	if obj == nil {
		t.Fatalf("variable %q not defined in body", name)
	}
	return obj
}

func TestTaintReachThroughAssignments(t *testing.T) {
	fn, info := typecheckFunc(t, `package p

func f(m map[string]int) string {
	var out string
	for k := range m {
		a := k + "x"
		b := a
		out = b
	}
	clean := "fixed"
	_ = clean
	return out
}
`)
	g := BuildTaint(fn.Body, info)
	k := objByName(t, fn.Body, info, "k")
	tainted := g.Reach([]types.Object{k})
	for _, want := range []string{"a", "b", "out"} {
		if !tainted[objByName(t, fn.Body, info, want)] {
			t.Errorf("%s not tainted, want tainted", want)
		}
	}
	if tainted[objByName(t, fn.Body, info, "clean")] {
		t.Error("clean tainted, want untainted")
	}
}

func TestTaintSortSanitizes(t *testing.T) {
	fn, info := typecheckFunc(t, `package p

import "sort"

func f(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := keys
	return ordered
}
`)
	g := BuildTaint(fn.Body, info)
	k := objByName(t, fn.Body, info, "k")
	tainted := g.Reach([]types.Object{k})
	keys := objByName(t, fn.Body, info, "keys")
	if !g.Sanitized(keys) {
		t.Fatal("keys not marked sanitized by sort.Strings")
	}
	if tainted[keys] {
		t.Error("keys tainted despite sort.Strings")
	}
	if tainted[objByName(t, fn.Body, info, "ordered")] {
		t.Error("ordered tainted despite deriving from the sorted slice")
	}
}

func TestTaintSlicesSortSanitizes(t *testing.T) {
	fn, info := typecheckFunc(t, `package p

import "slices"

func f(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
`)
	g := BuildTaint(fn.Body, info)
	keys := objByName(t, fn.Body, info, "keys")
	if !g.Sanitized(keys) {
		t.Fatal("keys not sanitized by slices.Sort")
	}
}

func TestTaintRangeValueAndTuple(t *testing.T) {
	fn, info := typecheckFunc(t, `package p

func f(m map[string]int) (int, bool) {
	total := 0
	for _, v := range m {
		total += v
	}
	got, ok := lookup(total)
	return got, ok
}

func lookup(x int) (int, bool) { return x, true }
`)
	g := BuildTaint(fn.Body, info)
	v := objByName(t, fn.Body, info, "v")
	tainted := g.Reach([]types.Object{v})
	if !tainted[objByName(t, fn.Body, info, "total")] {
		t.Error("total not tainted by range value")
	}
	// Tuple assignment: both results derive from the tainted argument.
	if !tainted[objByName(t, fn.Body, info, "got")] {
		t.Error("got not tainted through tuple assignment")
	}
	if !tainted[objByName(t, fn.Body, info, "ok")] {
		t.Error("ok not tainted through tuple assignment")
	}
}

func TestRootObjUnwrapping(t *testing.T) {
	fn, info := typecheckFunc(t, `package p

type s struct{ f int }

func f(k int) {
	var st s
	m := map[int]int{}
	p := &st
	var arr []int

	st.f = k
	m[0] = k
	p.f = k
	_ = arr
}
`)
	g := BuildTaint(fn.Body, info)
	// k is a parameter, so its defining ident is in the signature, not
	// the body — search the whole declaration.
	k := objByName(t, fn, info, "k")
	tainted := g.Reach([]types.Object{k})
	for _, want := range []string{"st", "m", "p"} {
		if !tainted[objByName(t, fn.Body, info, want)] {
			t.Errorf("%s not tainted through field/index/pointer write", want)
		}
	}
	if tainted[objByName(t, fn.Body, info, "arr")] {
		t.Error("arr tainted, want untainted")
	}
}
