package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
)

// parseBody wraps body in a single-function file and returns the parsed
// block. CFG construction is purely syntactic, so no typechecking is
// needed and the bodies may reference undeclared names.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// callNamed matches an ExprStmt calling the bare identifier name — the
// marker convention the table tests use (cover(), start()).
func callNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// findStmt returns the first node in the body matching pred, or nil.
func findStmt(body *ast.BlockStmt, pred func(ast.Node) bool) ast.Node {
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n != nil && pred(n) {
			found = n
			return false
		}
		return true
	})
	return found
}

// TestUncoveredExit drives the every-path question through each control
// construct the builder lowers. cover() marks a covering node; start()
// optionally marks where the walk begins; wantUncovered says whether an
// exit escapes without passing cover().
func TestUncoveredExit(t *testing.T) {
	cases := []struct {
		name          string
		body          string
		wantUncovered bool
	}{
		{"straight line", `x := 1; _ = x; cover()`, false},
		{"no cover at all", `x := 1; _ = x`, true},
		{"if then only", `if c { cover() }`, true},
		{"if both branches", `if c { cover() } else { cover() }`, false},
		{"if then returns early", `if c { return }; cover()`, true},
		{"if then covered return", `if c { cover(); return }; cover()`, false},
		{"cover after if join", `if c { a() } else { b() }; cover()`, false},
		{"for body only", `for i := 0; i < n; i++ { cover() }`, true},
		{"for then cover", `for i := 0; i < n; i++ { a() }; cover()`, false},
		{"infinite for never exits", `for { a() }`, false},
		{"infinite for with break", `for { if c { break } }`, true},
		{"infinite for break after cover", `for { cover(); if c { break } }`, false},
		{"continue skips cover", `for i := 0; i < n; i++ { if c { continue }; cover() }`, true},
		{"range body only", `for _, v := range xs { _ = v; cover() }`, true},
		{"range then cover", `for _, v := range xs { _ = v }; cover()`, false},
		{"range break before cover", `for range xs { break }; cover()`, false},
		{"switch no default", `switch x { case 1: cover(); case 2: cover() }`, true},
		{"switch with default", `switch x { case 1: cover(); default: cover() }`, false},
		{"switch default misses", `switch x { case 1: cover(); default: a() }`, true},
		{"switch break", `switch x { default: if c { break }; cover() }`, true},
		{"fallthrough reaches cover", `switch x { case 1: fallthrough; default: cover() }`, false},
		{"fallthrough from uncovered case", `switch x { case 1: a(); case 2: cover(); default: cover() }`, true},
		{"type switch with default", `switch x.(type) { case int: cover(); default: cover() }`, false},
		{"type switch no default", `switch x.(type) { case int: cover() }`, true},
		{"select all comms covered", `select { case <-ch: cover(); case ch2 <- v: cover() }`, false},
		{"select one comm misses", `select { case <-ch: cover(); case ch2 <- v: a() }`, true},
		{"goto skips cover", `if c { goto done }; cover(); done: return`, true},
		{"goto after cover", `cover(); if c { goto done }; a(); done: return`, false},
		{"goto backward loop", "i := 0\nloop:\nif i < n { i++; goto loop }\ncover()", false},
		{"labeled break covered", "outer:\nfor { for { if c { break outer }; a() } }\ncover()", false},
		{"labeled continue skips cover", "outer:\nfor i := 0; i < n; i++ { for { if c { continue outer }; cover() } }", true},
		{"panic path needs no cover", `if c { panic("boom") }; cover()`, false},
		{"only panic exits", `panic("always")`, false},
		{"return both covered", `if c { cover(); return }; cover(); return`, false},
		{"nested if partial", `if a1 { if b1 { cover() } else { cover() } } else { if b2 { cover() } }`, true},
		{"start marker scopes walk", `cover(); start(); return`, true},
		{"start before cover", `start(); cover(); return`, false},
		{"start inside loop", `for { start(); if c { break } }; cover()`, false},
		{"dead code after return ignored", `cover(); return; a()`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := parseBody(t, tc.body)
			cfg := BuildCFG(body)
			var from ast.Node
			if strings.Contains(tc.body, "start()") {
				from = findStmt(body, callNamed("start"))
				if from == nil {
					t.Fatal("start() marker not found")
				}
			}
			pos, uncovered := cfg.UncoveredExit(from, callNamed("cover"))
			if uncovered != tc.wantUncovered {
				t.Fatalf("UncoveredExit = %v, want %v\ncfg:\n%s", uncovered, tc.wantUncovered, cfg)
			}
			if uncovered && !pos.IsValid() {
				t.Fatalf("uncovered exit reported with invalid position")
			}
		})
	}
}

// TestUncoveredExitPosition pins the reported position: an explicit
// return reports the return statement, the implicit return reports the
// closing brace, and multiple uncovered exits report the earliest.
func TestUncoveredExitPosition(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n\tif c {\n\t\treturn\n\t}\n\ta()\n}\n"
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	cfg := BuildCFG(body)

	pos, uncovered := cfg.UncoveredExit(nil, callNamed("cover"))
	if !uncovered {
		t.Fatal("want uncovered exit")
	}
	// Both exits are uncovered; the explicit return on line 5 precedes
	// the closing brace on line 8.
	if got := fset.Position(pos).Line; got != 5 {
		t.Fatalf("uncovered exit at line %d, want 5 (the return)", got)
	}

	// Cover the return path: the implicit return at the brace remains.
	pos, uncovered = cfg.UncoveredExit(nil, func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	if !uncovered {
		t.Fatal("want uncovered implicit return")
	}
	if got := fset.Position(pos).Line; got != 8 {
		t.Fatalf("uncovered exit at line %d, want 8 (closing brace)", got)
	}
}

// TestCFGDefers checks defer collection: every defer in the body lands in
// Defers, in source order, including defers inside branches.
func TestCFGDefers(t *testing.T) {
	body := parseBody(t, `
	defer a()
	if c {
		defer b()
	}
	for {
		defer d()
		break
	}
`)
	cfg := BuildCFG(body)
	if len(cfg.Defers) != 3 {
		t.Fatalf("got %d defers, want 3\ncfg:\n%s", len(cfg.Defers), cfg)
	}
	for i := 1; i < len(cfg.Defers); i++ {
		if cfg.Defers[i].Pos() <= cfg.Defers[i-1].Pos() {
			t.Fatalf("defers out of source order")
		}
	}
}

// TestCFGReachableDeadCode checks that statements after a terminator land
// in a block Reachable does not include.
func TestCFGReachableDeadCode(t *testing.T) {
	body := parseBody(t, `
	a()
	return
	b()
`)
	cfg := BuildCFG(body)
	reach := cfg.Reachable()
	dead := findStmt(cfg.Body, callNamed("b"))
	if dead == nil {
		t.Fatal("b() not found")
	}
	blk, _ := cfg.find(dead)
	if blk == nil {
		t.Fatal("b() not placed in any block")
	}
	if reach[blk] {
		t.Fatalf("dead block %d:%s is reachable\ncfg:\n%s", blk.Index, blk.Kind, cfg)
	}
	if !reach[cfg.Exit] {
		t.Fatal("exit unreachable in function with a return")
	}
}

// stmtGen emits random function bodies from a small grammar, for the
// invariant test below. It is deterministic per seed.
type stmtGen struct {
	rng   *rand.Rand
	depth int
	loops int // nesting depth of enclosing loops (break/continue legal)
	sw    int // nesting depth of enclosing switches (break legal)
	n     int // statement counter for unique names
}

func (g *stmtGen) block(sb *strings.Builder, indent string) {
	stmts := 1 + g.rng.Intn(4)
	for i := 0; i < stmts; i++ {
		g.stmt(sb, indent)
	}
}

func (g *stmtGen) stmt(sb *strings.Builder, indent string) {
	g.n++
	if g.depth >= 4 {
		fmt.Fprintf(sb, "%scall%d()\n", indent, g.n)
		return
	}
	choice := g.rng.Intn(12)
	switch {
	case choice < 3: // plain call
		fmt.Fprintf(sb, "%scall%d()\n", indent, g.n)
	case choice == 3: // assignment
		fmt.Fprintf(sb, "%sv%d := call%d()\n%s_ = v%d\n", indent, g.n, g.n, indent, g.n)
	case choice == 4: // defer
		fmt.Fprintf(sb, "%sdefer call%d()\n", indent, g.n)
	case choice == 5: // if
		fmt.Fprintf(sb, "%sif cond%d {\n", indent, g.n)
		g.nested(sb, indent)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(sb, "%s} else {\n", indent)
			g.nested(sb, indent)
		}
		fmt.Fprintf(sb, "%s}\n", indent)
	case choice == 6: // for
		fmt.Fprintf(sb, "%sfor i%d := 0; i%d < 3; i%d++ {\n", indent, g.n, g.n, g.n)
		g.loops++
		g.nested(sb, indent)
		g.loops--
		fmt.Fprintf(sb, "%s}\n", indent)
	case choice == 7: // range
		fmt.Fprintf(sb, "%sfor range xs {\n", indent)
		g.loops++
		g.nested(sb, indent)
		g.loops--
		fmt.Fprintf(sb, "%s}\n", indent)
	case choice == 8: // switch
		def := g.rng.Intn(2) == 0
		fmt.Fprintf(sb, "%sswitch x%d {\n", indent, g.n)
		cases := 1 + g.rng.Intn(2)
		g.sw++
		for c := 0; c < cases; c++ {
			fmt.Fprintf(sb, "%scase %d:\n", indent, c)
			g.nested(sb, indent)
		}
		if def {
			fmt.Fprintf(sb, "%sdefault:\n", indent)
			g.nested(sb, indent)
		}
		g.sw--
		fmt.Fprintf(sb, "%s}\n", indent)
	case choice == 9 && g.loops > 0: // break / continue
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(sb, "%sbreak\n", indent)
		} else {
			fmt.Fprintf(sb, "%scontinue\n", indent)
		}
	case choice == 10: // return
		fmt.Fprintf(sb, "%sreturn\n", indent)
	default:
		fmt.Fprintf(sb, "%scall%d()\n", indent, g.n)
	}
}

func (g *stmtGen) nested(sb *strings.Builder, indent string) {
	g.depth++
	g.block(sb, indent+"\t")
	g.depth--
}

// TestCFGNodePlacementInvariant is the fuzz-ish structural test: across
// randomly generated bodies, every simple statement must land in exactly
// one block (reachable or flagged dead — never dropped), every edge must
// point at a registered block, and every reachable non-exit block must
// lead somewhere.
func TestCFGNodePlacementInvariant(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		g := &stmtGen{rng: rand.New(rand.NewSource(seed))}
		var sb strings.Builder
		g.block(&sb, "\t")
		bodySrc := sb.String()

		body := parseBody(t, bodySrc)
		cfg := BuildCFG(body)

		// Every simple statement appears in exactly one block.
		placed := make(map[ast.Node]int)
		for _, blk := range cfg.Blocks {
			for _, n := range blk.Nodes {
				placed[n]++
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ExprStmt, *ast.AssignStmt, *ast.DeferStmt, *ast.ReturnStmt, *ast.IncDecStmt:
				if placed[n] != 1 {
					t.Fatalf("seed %d: %T at %v placed %d times, want 1\nbody:\n%s\ncfg:\n%s",
						seed, n, n.Pos(), placed[n], bodySrc, cfg)
				}
			}
			return true
		})

		// Edges point at registered blocks; reachable non-exit blocks
		// don't dead-end.
		known := make(map[*Block]bool, len(cfg.Blocks))
		for _, blk := range cfg.Blocks {
			known[blk] = true
		}
		reach := cfg.Reachable()
		for _, blk := range cfg.Blocks {
			for _, s := range blk.Succs {
				if !known[s] {
					t.Fatalf("seed %d: block %d has edge to unregistered block", seed, blk.Index)
				}
			}
			if reach[blk] && blk != cfg.Exit && len(blk.Succs) == 0 {
				t.Fatalf("seed %d: reachable block %d:%s dead-ends\nbody:\n%s\ncfg:\n%s",
					seed, blk.Index, blk.Kind, bodySrc, cfg)
			}
		}

		// Exit never has successors; every defer in the source was
		// collected.
		if len(cfg.Exit.Succs) != 0 {
			t.Fatalf("seed %d: exit block has successors", seed)
		}
		wantDefers := strings.Count(bodySrc, "defer ")
		if len(cfg.Defers) != wantDefers {
			t.Fatalf("seed %d: collected %d defers, want %d", seed, len(cfg.Defers), wantDefers)
		}
	}
}
