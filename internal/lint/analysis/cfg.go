package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the control-flow half of the lightweight dataflow engine
// (the def-use half lives in defuse.go). BuildCFG lowers one function
// body into basic blocks connected by explicit edges, so analyzers that
// need "on every path" guarantees — spanend, goleak, closeleak — can ask
// a real reachability question instead of approximating with block
// nesting. The builder covers the full statement grammar: if/else, for
// and range loops (with labeled break/continue), switch/type-switch with
// fallthrough, select, goto, defer, and panic termination.

// Block is one basic block: a maximal straight-line run of simple
// statements and control expressions, ended by at most one control
// transfer.
type Block struct {
	Index int
	// Kind names the construct that created the block ("entry",
	// "for.head", "if.then", ...) — for debugging and test assertions,
	// never for analysis decisions.
	Kind string
	// Nodes are the flat statements and control expressions executed in
	// this block, in order. Compound statements are decomposed: an if
	// contributes its init statement and condition here and its branches
	// as separate blocks, so inspecting a node never wanders into a
	// nested branch. Function literals do appear inside nodes; analyzers
	// that must not cross into closures skip them while inspecting.
	Nodes []ast.Node
	Succs []*Block
	// Term is the statement that transfers control out of the block — a
	// return, branch, goto, fallthrough, or terminating panic call. Nil
	// means the block falls through to its successor.
	Term ast.Stmt
}

// CFG is the control-flow graph of one function body. Exit is the single
// synthetic sink: returns, terminating panics, and the implicit return
// at the end of the body all edge into it.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers collects every defer statement in the body (in source
	// order). Deferred calls run on all exits, so path-coverage analyzers
	// check them separately from block reachability.
	Defers []*ast.DeferStmt
	Body   *ast.BlockStmt
}

// BuildCFG lowers body into basic blocks. The builder is purely
// syntactic — it needs no type information — and never fails: statements
// after a terminator land in an unreachable block rather than being
// dropped, so dead code is preserved for analyzers (and flagged by
// Reachable).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{Body: body},
		labels: make(map[string]*labelTarget),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur.Term == nil {
		// Implicit return at the closing brace.
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

type labelTarget struct {
	// target is the label's own block — where goto lands.
	target *Block
	// brk/cont are set when the labeled statement is a loop, switch, or
	// select, for labeled break/continue.
	brk  *Block
	cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	brk  []*Block // innermost-last break targets
	cont []*Block // innermost-last continue targets

	labels       map[string]*labelTarget
	pendingLabel string
	// nextCase is the fallthrough target while a switch case body builds.
	nextCase *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump terminates the current block with term, edges it to target, and
// opens an unreachable continuation for any dead statements that follow.
func (b *cfgBuilder) jump(target *Block, term ast.Stmt) {
	b.cur.Term = term
	b.edge(b.cur, target)
	b.cur = b.newBlock("unreachable")
}

// takeLabel consumes the pending label (set by the enclosing
// LabeledStmt), registering break/continue targets for it.
func (b *cfgBuilder) takeLabel(brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	lt := b.labelFor(b.pendingLabel)
	lt.brk, lt.cont = brk, cont
	b.pendingLabel = ""
}

func (b *cfgBuilder) labelFor(name string) *labelTarget {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTarget{target: b.newBlock("label." + name)}
		b.labels[name] = lt
	}
	return lt
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		join := b.newBlock("if.join")
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.fallInto(join)
		} else {
			b.edge(cond, join)
		}
		b.cur = thenEnd
		b.fallInto(join)
		b.cur = join

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock("for.head")
		b.fallInto(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.takeLabel(after, post)
		b.pushLoop(after, post)
		b.cur = body
		b.stmt(s.Body)
		b.fallInto(post)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		head.Nodes = append(head.Nodes, s.X)
		b.fallInto(head)
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edge(head, body)
		b.edge(head, after)
		b.takeLabel(after, head)
		b.pushLoop(after, head)
		b.cur = body
		b.stmt(s.Body)
		b.fallInto(head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchClauses(s.Body, true)

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchClauses(s.Body, false)

	case *ast.SelectStmt:
		cond := b.cur
		after := b.newBlock("select.after")
		b.takeLabel(after, nil)
		b.pushBreak(after)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			cb := b.newBlock("select.comm")
			b.edge(cond, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.fallInto(after)
		}
		b.popBreak()
		b.cur = after

	case *ast.LabeledStmt:
		lt := b.labelFor(s.Label.Name)
		b.fallInto(lt.target)
		b.cur = lt.target
		// Only loop/switch/select statements consume the label for
		// break/continue targeting; a labeled plain statement is just a
		// goto target.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.jump(b.branchTarget(s, true), s)
		case token.CONTINUE:
			b.jump(b.branchTarget(s, false), s)
		case token.GOTO:
			b.jump(b.labelFor(s.Label.Name).target, s)
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				b.jump(b.nextCase, s)
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit, s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.cfg.Exit, s)
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// fallInto edges the current block to next unless it already terminated.
func (b *cfgBuilder) fallInto(next *Block) {
	if b.cur.Term == nil {
		b.edge(b.cur, next)
	}
}

// switchClauses lowers the clause list shared by switch and type switch.
// allowFallthrough wires the fallthrough target chain (type switches
// cannot fall through).
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, allowFallthrough bool) {
	cond := b.cur
	after := b.newBlock("switch.after")
	b.takeLabel(after, nil)
	var caseBlocks []*Block
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		cb := b.newBlock("switch.case")
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cond, cb)
		caseBlocks = append(caseBlocks, cb)
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	b.pushBreak(after)
	savedNext := b.nextCase
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		b.nextCase = nil
		if allowFallthrough && i+1 < len(caseBlocks) {
			b.nextCase = caseBlocks[i+1]
		}
		b.cur = caseBlocks[i]
		b.stmtList(cc.Body)
		b.fallInto(after)
	}
	b.nextCase = savedNext
	b.popBreak()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.brk = append(b.brk, brk)
	b.cont = append(b.cont, cont)
}

func (b *cfgBuilder) popLoop() {
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
}

func (b *cfgBuilder) pushBreak(brk *Block) {
	b.brk = append(b.brk, brk)
	b.cont = append(b.cont, nil)
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

// branchTarget resolves break/continue, labeled or not. An unresolvable
// branch (continue outside a loop — illegal Go) targets the exit so the
// builder stays total.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *Block {
	if s.Label != nil {
		lt := b.labelFor(s.Label.Name)
		if isBreak && lt.brk != nil {
			return lt.brk
		}
		if !isBreak && lt.cont != nil {
			return lt.cont
		}
		return lt.target
	}
	stack := b.cont
	if isBreak {
		stack = b.brk
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return b.cfg.Exit
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// IsPanicTerm reports whether a block terminator is a terminating panic
// call. Every-path analyzers usually skip panic exits: deferred cleanups
// still run, and a crashing process does not leak.
func IsPanicTerm(term ast.Stmt) bool {
	es, ok := term.(*ast.ExprStmt)
	return ok && isPanicCall(es.X)
}

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// UncoveredExit asks the every-path question: starting just after the
// statement `from` (or at the entry when from is nil), can control reach
// the function exit without passing a node for which pass returns true?
// If so it returns the position of the earliest such exit — the return
// statement, or the body's closing brace for the implicit return — and
// true. Paths that leave by panicking are not exits (deferred cleanups
// run regardless), and a nil pass never covers anything.
//
// Deferred statements do not cover paths here; callers that accept a
// defer as covering every exit check c.Defers before asking.
func (c *CFG) UncoveredExit(from ast.Node, pass func(ast.Node) bool) (token.Pos, bool) {
	startBlock, startIdx := c.Entry, 0
	if from != nil {
		blk, idx := c.find(from)
		if blk == nil {
			return token.NoPos, false
		}
		startBlock, startIdx = blk, idx+1
	}
	type item struct {
		b   *Block
		idx int
	}
	var uncovered []token.Pos
	seen := map[*Block]bool{}
	work := []item{{startBlock, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		covered := false
		for i := it.idx; i < len(it.b.Nodes); i++ {
			if pass != nil && pass(it.b.Nodes[i]) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		for _, s := range it.b.Succs {
			if s == c.Exit {
				if it.b.Term == nil {
					uncovered = append(uncovered, c.Body.End())
				} else if !IsPanicTerm(it.b.Term) {
					uncovered = append(uncovered, it.b.Term.Pos())
				}
				continue
			}
			if !seen[s] {
				seen[s] = true
				work = append(work, item{s, 0})
			}
		}
	}
	if len(uncovered) == 0 {
		return token.NoPos, false
	}
	sort.Slice(uncovered, func(i, j int) bool { return uncovered[i] < uncovered[j] })
	return uncovered[0], true
}

// find locates the block and node index holding n — by identity first,
// then by position containment (for callers handing in a subexpression
// of a lowered statement).
func (c *CFG) find(n ast.Node) (*Block, int) {
	for _, blk := range c.Blocks {
		for i, node := range blk.Nodes {
			if node == n {
				return blk, i
			}
		}
	}
	for _, blk := range c.Blocks {
		for i, node := range blk.Nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				return blk, i
			}
		}
	}
	return nil, 0
}

// String renders the graph compactly for tests and debugging:
// "0:entry -> 2" per block, in index order, with node counts.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "%d:%s[%d]", blk.Index, blk.Kind, len(blk.Nodes))
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
