package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// ApplyFixes applies every suggested fix in findings to the given sources
// (filename → contents) and returns the rewritten files. Suppressed
// findings are skipped. Overlapping edits are an error — fixes are meant
// to be mechanical, and overlap means two analyzers disagree about the
// same text.
func ApplyFixes(fset *token.FileSet, sources map[string][]byte, findings []Finding) (map[string][]byte, error) {
	type edit struct {
		start, end int
		newText    []byte
	}
	perFile := make(map[string][]edit)
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		for _, fix := range f.Fixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End != token.NoPos {
					end = fset.Position(te.End)
				}
				if end.Filename != start.Filename {
					return nil, fmt.Errorf("fix for %s spans files", f)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
			}
		}
	}
	out := make(map[string][]byte, len(perFile))
	for name, edits := range perFile {
		src, ok := sources[name]
		if !ok {
			return nil, fmt.Errorf("no source for %s", name)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return nil, fmt.Errorf("%s: overlapping suggested fixes at offsets %d and %d", name, edits[i-1].start, edits[i].start)
			}
		}
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) {
				return nil, fmt.Errorf("%s: edit out of range [%d,%d)", name, e.start, e.end)
			}
			buf = append(buf, src[last:e.start]...)
			buf = append(buf, e.newText...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		out[name] = buf
	}
	return out, nil
}
