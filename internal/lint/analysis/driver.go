package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one driver-level result: a diagnostic resolved to positions,
// tagged with its analyzer, and annotated with suppression state.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []SuggestedFix

	// Suppressed is set when a //lint:allow marker covers the finding;
	// SuppressReason carries the marker's justification.
	Suppressed     bool
	SuppressReason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Config controls a driver run.
type Config struct {
	// IsPipeline classifies import paths as pipeline packages; analyzers
	// with PipelineOnly set are skipped elsewhere. A nil func treats
	// every package as pipeline.
	IsPipeline func(importPath string) bool
}

// allowMarker is one parsed //lint:allow comment.
type allowMarker struct {
	analyzer   string
	reason     string
	line       int  // line the comment appears on
	standalone bool // comment is the only thing on its line (covers next line)
	pos        token.Pos
	used       bool
}

const allowPrefix = "//lint:allow"

// Run executes each analyzer over each package and returns the combined
// findings, sorted by position. Suppression markers are applied here, not
// in analyzers: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line (or alone on the line above it) marks the finding
// as an intentional exception. Markers must name an analyzer and carry a
// non-empty reason, and must suppress at least one finding — malformed or
// unused markers are themselves reported, so stale exceptions surface
// instead of rotting.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg Config) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		markers, bad := parseMarkers(pkg)
		for _, f := range bad {
			findings = append(findings, f)
		}
		pipeline := cfg.IsPipeline == nil || cfg.IsPipeline(pkg.ImportPath)
		for _, a := range analyzers {
			if a.PipelineOnly && !pipeline {
				continue
			}
			if a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset(),
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Sources:   pkg.Sources,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				pos := pass.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message, Fixes: d.SuggestedFixes}
				if m := matchMarker(markers[pos.Filename], a.Name, pos.Line); m != nil {
					m.used = true
					f.Suppressed = true
					f.SuppressReason = m.reason
				}
				findings = append(findings, f)
			}
		}
		for _, ms := range markers {
			for _, m := range ms {
				if !m.used {
					findings = append(findings, Finding{
						Analyzer: "samlint",
						Pos:      pkg.Fset().Position(m.pos),
						Message:  fmt.Sprintf("unused //lint:allow marker for %q: no finding on this line", m.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Fset returns the FileSet package positions resolve against. All
// packages from one Loader share a FileSet; it is recovered from any
// file's position table.
func (p *Package) Fset() *token.FileSet {
	return p.fset
}

// parseMarkers extracts //lint:allow markers per file. Malformed markers
// (missing analyzer or reason) become findings.
func parseMarkers(pkg *Package) (map[string][]*allowMarker, []Finding) {
	markers := make(map[string][]*allowMarker)
	var bad []Finding
	fset := pkg.Fset()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "samlint",
						Pos:      pos,
						Message:  "malformed //lint:allow marker: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				m := &allowMarker{
					analyzer:   fields[0],
					reason:     strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
					line:       pos.Line,
					standalone: commentStandsAlone(pkg.Sources[pos.Filename], pos),
					pos:        c.Pos(),
				}
				markers[pos.Filename] = append(markers[pos.Filename], m)
			}
		}
	}
	return markers, bad
}

// commentStandsAlone reports whether only whitespace precedes the comment
// on its source line.
func commentStandsAlone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// matchMarker finds an unused-or-used marker covering (analyzer, line): a
// marker on the same line, or a standalone marker on the previous line.
func matchMarker(ms []*allowMarker, analyzer string, line int) *allowMarker {
	for _, m := range ms {
		if m.analyzer != analyzer {
			continue
		}
		if m.line == line || (m.standalone && m.line == line-1) {
			return m
		}
	}
	return nil
}
