package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the def-use half of the dataflow engine (the control-flow
// half lives in cfg.go). A TaintGraph records, for one function body,
// which variables derive their values from which others: every
// assignment, declaration, and range binding adds edges from the objects
// referenced on the right to the variable defined or written on the
// left. Reach then answers "which variables are (transitively) derived
// from these seeds" — the question maporder asks with map-range
// variables as seeds.
//
// The graph is deliberately flow-insensitive: one edge set for the whole
// body, closures included. That trades soundness for zero false
// positives from ordering subtleties, which is the right trade for a
// lint that gates CI.

// TaintGraph is the def-use graph of one function body.
type TaintGraph struct {
	// edges maps a source object to the objects whose values are derived
	// from it.
	edges map[types.Object][]types.Object
	// sanitized marks objects that pass through a recognized sanitizer
	// (sort.* / slices.Sort*) anywhere in the body: a sorted slice has a
	// deterministic order regardless of how it was filled, so taint does
	// not propagate through it.
	sanitized map[types.Object]bool
}

// BuildTaint constructs the def-use graph for body (typically a
// *ast.FuncDecl body or *ast.FuncLit body; nested closures are included
// in the same graph).
func BuildTaint(body ast.Node, info *types.Info) *TaintGraph {
	g := &TaintGraph{
		edges:     make(map[types.Object][]types.Object),
		sanitized: make(map[types.Object]bool),
	}
	if body == nil {
		return g
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			g.assign(n, info)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					dst := info.Defs[name]
					if dst == nil {
						continue
					}
					if len(vs.Values) == len(vs.Names) {
						g.addEdges(refObjs(vs.Values[i], info), dst)
					} else if len(vs.Values) > 0 {
						for _, v := range vs.Values {
							g.addEdges(refObjs(v, info), dst)
						}
					}
				}
			}
		case *ast.RangeStmt:
			srcs := refObjs(n.X, info)
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs == nil {
					continue
				}
				if dst := RootObj(lhs, info); dst != nil {
					g.addEdges(srcs, dst)
				}
			}
		case *ast.CallExpr:
			if obj := sanitizedArg(n, info); obj != nil {
				g.sanitized[obj] = true
			}
		}
		return true
	})
	return g
}

func (g *TaintGraph) assign(n *ast.AssignStmt, info *types.Info) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if dst := RootObj(lhs, info); dst != nil {
				g.addEdges(refObjs(n.Rhs[i], info), dst)
			}
		}
		return
	}
	// Tuple assignment (x, y := f()) and comma-ok forms: every LHS is
	// derived from everything on the right.
	var srcs []types.Object
	for _, rhs := range n.Rhs {
		srcs = append(srcs, refObjs(rhs, info)...)
	}
	for _, lhs := range n.Lhs {
		if dst := RootObj(lhs, info); dst != nil {
			g.addEdges(srcs, dst)
		}
	}
}

func (g *TaintGraph) addEdges(srcs []types.Object, dst types.Object) {
	for _, src := range srcs {
		if src == dst {
			continue
		}
		g.edges[src] = append(g.edges[src], dst)
	}
}

// Sanitized reports whether obj passes through a sanitizer in this body.
func (g *TaintGraph) Sanitized(obj types.Object) bool { return g.sanitized[obj] }

// Reach returns the set of objects transitively derived from seeds.
// Seeds themselves are included (unless sanitized); propagation stops at
// sanitized objects.
func (g *TaintGraph) Reach(seeds []types.Object) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	var work []types.Object
	for _, s := range seeds {
		if s != nil && !g.sanitized[s] && !tainted[s] {
			tainted[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, next := range g.edges[obj] {
			if g.sanitized[next] || tainted[next] {
				continue
			}
			tainted[next] = true
			work = append(work, next)
		}
	}
	return tainted
}

// RootObj resolves an assignable expression to the variable that is
// actually written: s.f, m[k], *p, and (x) all root at the base
// identifier's object.
func RootObj(e ast.Expr, info *types.Info) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Defs[x]; obj != nil {
				return obj
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// refObjs collects every variable object referenced anywhere in e.
// Function and type names are excluded: taint flows through values, and
// `f(x)` derives from x, not from f.
func refObjs(e ast.Expr, info *types.Info) []types.Object {
	var objs []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if _, isVar := obj.(*types.Var); isVar {
			objs = append(objs, obj)
		}
		return true
	})
	return objs
}

// sanitizedArg reports the object sanitized by call, if any: the first
// argument of sort.Strings / sort.Ints / sort.Slice / ... or
// slices.Sort* establishes a deterministic order for that slice.
func sanitizedArg(call *ast.CallExpr, info *types.Info) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, ok := info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return nil
	}
	switch pkgName.Imported().Path() {
	case "sort":
		// Every sort.* entry point orders its first argument.
	case "slices":
		if !strings.HasPrefix(sel.Sel.Name, "Sort") {
			return nil
		}
	default:
		return nil
	}
	return RootObj(call.Args[0], info)
}
