// Package analysis is a dependency-free re-implementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs. The
// module deliberately has no third-party dependencies, so the samlint
// analyzer suite (internal/lint) is written against this package instead
// of x/tools. The shapes mirror the upstream API — Analyzer, Pass,
// Diagnostic, SuggestedFix — so the analyzers can be ported to a real
// multichecker by swapping the import if the dependency policy ever
// changes.
//
// The package provides three layers:
//
//   - a Loader that enumerates packages with `go list -json`, parses them
//     with go/parser, and typechecks them with go/types using the stdlib
//     "source" importer (load.go);
//   - a driver that runs analyzers over loaded packages and applies
//     //lint:allow suppression markers (driver.go);
//   - suggested-fix application for mechanical rewrites (fix.go).
//
// The fixture test harness (the analysistest analogue) lives in the
// analysistest subpackage.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and in
// //lint:allow markers; Doc is the one-paragraph invariant description
// printed by `samlint -list`.
type Analyzer struct {
	Name string
	Doc  string

	// PipelineOnly restricts the analyzer to the configured pipeline
	// packages (Config.IsPipeline); repo-wide analyzers leave it false.
	PipelineOnly bool

	// Scope, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. The driver applies it; the analysistest
	// harness deliberately does not, so fixtures exercise the analyzer
	// regardless of scope.
	Scope func(importPath string) bool

	Run func(*Pass) error
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Sources maps filenames to raw file contents, for analyzers that
	// need surrounding text (indentation for inserted fixes, line
	// classification).
	Sources map[string][]byte

	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. End is optional (NoPos means "unknown").
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a mechanical rewrite that resolves a diagnostic. All
// edits must apply, or none.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// is an insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
