// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixture packages live under testdata (so the go tool ignores them) but
// are full compiling Go: they may import the module's real packages, and
// the loader typechecks them against the real types. Expectations are
// written at the end of the offending line:
//
//	rand.Intn(3) // want `global math/rand`
//
// Each back-quoted or double-quoted string is a regular expression that
// must match exactly one diagnostic reported on that line; diagnostics
// with no matching expectation, and expectations with no matching
// diagnostic, both fail the test. Files without want comments assert the
// analyzer stays silent on them.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"sam/internal/lint/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// expectation is one want clause: a regexp expected to match a
// diagnostic's message on a given line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads dir as a single fixture package, applies the analyzer, and
// reports any mismatch between diagnostics and want comments as test
// errors. It returns the findings so callers can make extra assertions
// (e.g. on suggested fixes).
func Run(t *testing.T, l *analysis.Loader, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := l.LoadDir(dir, "samlint.fixture/"+strings.ReplaceAll(dir, "/", "_"))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for name, src := range pkg.Sources {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			clauses, err := parseWantClauses(m[1])
			if err != nil {
				t.Fatalf("%s:%d: %v", name, i+1, err)
			}
			for _, c := range clauses {
				re, err := regexp.Compile(c)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, c, err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, re: re, raw: c})
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Sources:   pkg.Sources,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	return diags
}

// claim marks the first unmet expectation matching (pos, msg) as met.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// parseWantClauses splits the text after "// want" into its quoted
// regexps. Both back-quoted and double-quoted forms are accepted.
func parseWantClauses(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want clause must be a quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want clause %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want clause")
	}
	return out, nil
}
