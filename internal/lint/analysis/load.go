package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Sources maps each file name to its raw contents.
	Sources map[string][]byte

	fset *token.FileSet
}

// Loader parses and typechecks packages using only the standard library.
// Package patterns are resolved by `go list -json`; type information comes
// from go/types with the stdlib "source" importer, which typechecks
// dependencies from source and resolves module import paths through the
// go command (so the loader must run with a working directory inside the
// module). One Loader shares a FileSet and an import cache across every
// package it loads.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh FileSet and import cache. Cgo is
// disabled in the build context: this module is pure Go, and pure-Go
// dependency resolution keeps typechecking deterministic across machines
// with and without a C toolchain.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load resolves patterns (e.g. "./...") to packages and typechecks each.
// Test files are not loaded: the lint suite's invariants target production
// code, and test-only violations are covered by the analyzers' fixtures.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads every non-test .go file in dir as a single package with
// the given import path, without consulting the go command for
// enumeration. It is the entry point fixture tests use: fixture packages
// live under testdata (invisible to `go list ./...`) but still typecheck
// against the module's real packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses and typechecks one package from explicit file paths.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Sources:    make(map[string][]byte, len(filenames)),
		fset:       l.Fset,
	}
	for _, fn := range filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, fn, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Sources[fn] = src
		pkg.Files = append(pkg.Files, f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("typechecking %s:\n  %s", importPath, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
