package lint

import (
	"go/ast"
	"go/types"

	"sam/internal/lint/analysis"
)

// errPropagatePkgs are the packages whose error returns must never be
// dropped: relation IO (schema specs, CSV round-trips) and obs trace
// serialization (JSONL write/read, debug server startup). A swallowed
// error there silently yields truncated databases or unusable traces.
var errPropagatePkgs = map[string]bool{
	relationPath: true,
	obsPath:      true,
}

// ErrPropagate flags discarded error results from relation and obs
// functions: a call used as a bare statement (or under go/defer) whose
// last result is an error, and explicit assignment of that error to the
// blank identifier.
var ErrPropagate = &analysis.Analyzer{
	Name: "errpropagate",
	Doc: "forbid ignoring error returns from relation/obs IO and JSONL " +
		"serialization (bare-statement calls and _ assignments)",
	Run: runErrPropagate,
}

func runErrPropagate(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportDroppedErr(pass, n.X, "result ignored")
			case *ast.GoStmt:
				reportDroppedErr(pass, n.Call, "result ignored in go statement")
			case *ast.DeferStmt:
				reportDroppedErr(pass, n.Call, "result ignored in deferred call")
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			}
			return true
		})
	}
	return nil
}

// watchedErrCall resolves expr to a call of a watched-package function
// whose final result is an error.
func watchedErrCall(pass *analysis.Pass, expr ast.Expr) *types.Func {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !errPropagatePkgs[pkgPath(fn)] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return nil
	}
	return fn
}

func reportDroppedErr(pass *analysis.Pass, expr ast.Expr, how string) {
	if fn := watchedErrCall(pass, expr); fn != nil {
		pass.Reportf(expr.Pos(), "error from %s.%s %s; propagate or handle it",
			shortPkg(fn), fn.Name(), how)
	}
}

// checkBlankErr flags `_ = relationOrObsCall()` and multi-assignments
// that land the error in the blank identifier.
func checkBlankErr(pass *analysis.Pass, as *ast.AssignStmt) {
	// Single call on the right: the error is the last LHS position.
	if len(as.Rhs) == 1 {
		fn := watchedErrCall(pass, as.Rhs[0])
		if fn == nil {
			return
		}
		last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
		if ok && last.Name == "_" {
			pass.Reportf(as.Pos(), "error from %s.%s assigned to _; propagate or handle it",
				shortPkg(fn), fn.Name())
		}
		return
	}
	// Parallel assignment: check each RHS call against its own LHS slot.
	for i, rhs := range as.Rhs {
		fn := watchedErrCall(pass, rhs)
		if fn == nil || i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(), "error from %s.%s assigned to _; propagate or handle it",
				shortPkg(fn), fn.Name())
		}
	}
}

// shortPkg renders the package qualifier diagnostics use.
func shortPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}
