package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// MapOrder enforces the determinism half of the (seed, shard) contract at
// its most common failure point: Go map iteration order is randomized per
// run, so any value derived from ranging over a map must never reach an
// output writer, a hash, an RNG seed, or a merge comparator. A violation
// produces a database that differs run to run with the same seed — the
// exact breakage TestShardBytesInvariantAcrossWorkers exists to catch,
// except the analyzer catches it in every function, not just the tested
// ones.
//
// The check is taint-based: variables bound by `range m` (m a map) are
// seeds, the def-use graph (analysis.BuildTaint) propagates through
// assignments, and sort.*/slices.Sort* calls sanitize — the established
// repo pattern of collecting keys into a slice and sorting before
// iterating is recognized as clean.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid values derived from map iteration order from reaching writers, " +
		"hashes, RNG seeding, or heap comparators (sort keys first)",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkMapOrderScope(pass, body)
		})
	}
	return nil
}

func checkMapOrderScope(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildTaint(body, pass.TypesInfo)

	// Map ranges in this scope only — closures are visited as their own
	// scopes, so descending into them here would double-report.
	var ranges []*ast.RangeStmt
	inspectShallow(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isMapRange(pass.TypesInfo, r) {
			ranges = append(ranges, r)
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}

	reported := make(map[token.Pos]bool)
	for _, r := range ranges {
		fixed := false
		var seeds []types.Object
		for _, e := range []ast.Expr{r.Key, r.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					seeds = append(seeds, obj)
				}
			}
		}
		if len(seeds) == 0 {
			continue
		}
		tainted := g.Reach(seeds)
		rangeLine := pass.Fset.Position(r.Pos()).Line

		// Sinks anywhere in the body, closures included: a tainted value
		// captured by a worker closure is just as nondeterministic.
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			desc, args := orderSink(pass.TypesInfo, call)
			if desc == "" || reported[call.Pos()] {
				return true
			}
			for _, arg := range args {
				if !argTainted(pass.TypesInfo, arg, tainted) {
					continue
				}
				reported[call.Pos()] = true
				d := analysis.Diagnostic{
					Pos: call.Pos(),
					Message: fmt.Sprintf(
						"value derived from map iteration order reaches %s (map range at line %d); iterate over sorted keys",
						desc, rangeLine),
				}
				// The mechanical rewrite targets the range statement;
				// attach it once per range so fixes never overlap.
				if !fixed {
					if fix, ok := sortedRangeFix(pass, r); ok {
						d.SuggestedFixes = []analysis.SuggestedFix{fix}
						fixed = true
					}
				}
				pass.Report(d)
				break
			}
			return true
		})
	}
}

// isMapRange reports whether r ranges over a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// argTainted reports whether arg references any tainted object.
func argTainted(info *types.Info, arg ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := defOrUse(info, id); obj != nil && tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// orderSink classifies call as an order-sensitive sink and returns a
// human-readable description plus the arguments whose taint matters.
// Sinks, per the determinism contract:
//
//   - Write* methods on relation writers, bufio/os/io writers, and
//     hash.Hash implementations (shard bytes, spill runs, CSV rows, and
//     partition hashes must not depend on iteration order);
//   - fmt.Fprint* into any writer;
//   - RNG seeding: math/rand sources and the repo's own seed-splitting
//     (ar.SplitSeed / ar.LaneSeed);
//   - container/heap.Push — merge-heap comparators see insertion order.
func orderSink(info *types.Info, call *ast.CallExpr) (string, []ast.Expr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	path := pkgPath(fn)
	if recv := sig.Recv(); recv != nil {
		if !strings.HasPrefix(fn.Name(), "Write") {
			return "", nil
		}
		switch {
		case path == relationPath,
			path == "bufio", path == "os", path == "io",
			path == "hash", strings.HasPrefix(path, "hash/"):
			return fn.FullName(), call.Args
		}
		return "", nil
	}
	switch path {
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 1 {
			return "fmt." + fn.Name(), call.Args[1:]
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "Seed":
			return path + "." + fn.Name(), call.Args
		}
	case "sam/internal/ar":
		switch fn.Name() {
		case "SplitSeed", "LaneSeed":
			return "ar." + fn.Name(), call.Args
		}
	case "container/heap":
		if fn.Name() == "Push" && len(call.Args) > 1 {
			return "heap.Push", call.Args[1:]
		}
	}
	return "", nil
}

// sortedRangeFix rewrites `for k, v := range m {` into the sorted-keys
// idiom:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys {
//		v := m[k]
//
// The fix applies only when the shape is mechanical: the key is a named
// identifier of type string or int, and the range operand is a simple
// expression (identifier or selector). The file must import "sort".
func sortedRangeFix(pass *analysis.Pass, r *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	key, ok := r.Key.(*ast.Ident)
	if !ok || key.Name == "_" || r.Tok != token.DEFINE {
		return analysis.SuggestedFix{}, false
	}
	switch ast.Unparen(r.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return analysis.SuggestedFix{}, false
	}
	keyObj := pass.TypesInfo.Defs[key]
	if keyObj == nil {
		return analysis.SuggestedFix{}, false
	}
	basic, ok := keyObj.Type().(*types.Basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	var elemType, sortCall string
	switch basic.Kind() {
	case types.String:
		elemType, sortCall = "string", "sort.Strings"
	case types.Int:
		elemType, sortCall = "int", "sort.Ints"
	default:
		return analysis.SuggestedFix{}, false
	}

	pos := pass.Fset.Position(r.Pos())
	src := pass.Sources[pos.Filename]
	indent := lineIndent(src, pos)
	mExpr := string(src[pass.Fset.Position(r.X.Pos()).Offset:pass.Fset.Position(r.X.End()).Offset])

	var sb strings.Builder
	fmt.Fprintf(&sb, "keys := make([]%s, 0, len(%s))\n", elemType, mExpr)
	fmt.Fprintf(&sb, "%sfor %s := range %s {\n", indent, key.Name, mExpr)
	fmt.Fprintf(&sb, "%s\tkeys = append(keys, %s)\n", indent, key.Name)
	fmt.Fprintf(&sb, "%s}\n", indent)
	fmt.Fprintf(&sb, "%s%s(keys)\n", indent, sortCall)
	fmt.Fprintf(&sb, "%sfor _, %s := range keys {", indent, key.Name)
	if val, ok := r.Value.(*ast.Ident); ok && val.Name != "_" {
		fmt.Fprintf(&sb, "\n%s\t%s := %s[%s]", indent, val.Name, mExpr, key.Name)
	}

	return analysis.SuggestedFix{
		Message: "iterate over sorted keys instead of raw map order",
		TextEdits: []analysis.TextEdit{{
			Pos:     r.Pos(),
			End:     r.Body.Lbrace + 1,
			NewText: []byte(sb.String()),
		}},
	}, true
}
