package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// GoLeak enforces the goroutine-completion contract in the concurrent
// packages (core's streaming fan-in/fan-out, obs's debug server): a
// goroutine launched with a function literal must signal completion —
// WaitGroup.Done, close(ch), or a channel send — on every exit path, or
// the waiter on the other side hangs. The blessed shapes are exactly the
// ones the repo uses: `defer wg.Done()`, `defer close(done)`, and a
// final send on every path (the shard writer's `writeErr <- err`).
//
// The check is per-path on the CFG: a deferred signal covers everything,
// and otherwise analysis.UncoveredExit must find no exit that skips a
// signal. Goroutines that never exit (event loops) are fine by
// construction, and goroutines launched on named functions are skipped —
// the analysis is intraprocedural.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "require goroutines in core/obs to signal completion (WaitGroup.Done, " +
		"close, or channel send) on every exit path",
	Scope: func(importPath string) bool {
		return importPath == "sam/internal/core" || importPath == obsPath
	},
	Run: runGoLeak,
}

func runGoLeak(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true // named function: body not visible here
				}
				checkGoroutine(pass, g, lit)
				return true
			})
		})
	}
	return nil
}

func checkGoroutine(pass *analysis.Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	cfg := analysis.BuildCFG(lit.Body)

	// A deferred signal — defer wg.Done(), defer close(done), or a
	// deferred closure containing one — runs on every exit.
	for _, d := range cfg.Defers {
		if isCompletionCall(pass, d.Call) {
			return
		}
		if dl, ok := d.Call.Fun.(*ast.FuncLit); ok && containsSignal(pass, dl.Body) {
			return
		}
	}

	signal := func(n ast.Node) bool { return isSignalStmt(pass, n) }
	if _, uncovered := cfg.UncoveredExit(nil, signal); uncovered {
		pass.Reportf(g.Pos(),
			"goroutine can exit without signaling completion (no WaitGroup.Done, close, or channel send on some path); a waiter can hang")
	}
}

// isSignalStmt reports whether a CFG node is a completion signal at
// statement level: a channel send, or an expression statement calling
// close(ch) or WaitGroup.Done.
func isSignalStmt(pass *analysis.Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(n.X).(*ast.CallExpr)
		return ok && isCompletionCall(pass, call)
	}
	return false
}

// containsSignal reports whether body (of a deferred closure) contains a
// completion signal anywhere, without descending into further nested
// literals.
func containsSignal(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if isSignalStmt(pass, n) {
			found = true
		}
		return true
	})
	return found
}

// isCompletionCall reports whether call is close(ch) or a
// (*sync.WaitGroup).Done invocation.
func isCompletionCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		// The close builtin, not a shadowing declaration.
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			return true
		}
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	return fn.Name() == "Done" && strings.HasPrefix(fn.FullName(), "(*sync.WaitGroup).")
}
