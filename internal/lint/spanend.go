package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sam/internal/lint/analysis"
)

// SpanEnd enforces the span-lifecycle contract of the obs telemetry layer:
// a phase span started with Child must be ended on every path out of the
// function, or ownership must be handed off explicitly (stored, returned,
// or passed along — escapes are not analyzed further).
//
// Accepted endings, in order of preference: a `defer sp.End()` (directly
// or inside a deferred closure), or manual sp.End() calls that cover every
// return and fall-through exit reachable while the span is live. The path
// check is block-structural, not a full CFG: an End call covers a later
// exit when its enclosing block is an ancestor of (or the same as) the
// exit's block. Branch-balanced manual endings that the approximation
// cannot see (an if/else where both arms End) need a //lint:allow marker.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require obs spans started in a function to be ended on every path " +
		"(defer sp.End() or covering manual End calls)",
	Run: runSpanEnd,
}

// pathPoint is a position in a function with its enclosing-block chain
// (outermost first): an End call, a return, or a block fall-through exit.
type pathPoint struct {
	pos   token.Pos
	chain []ast.Node
}

// spanVar tracks one span-typed local from its Child(...) start.
type spanVar struct {
	obj      types.Object
	name     string
	start    *ast.AssignStmt
	chain    []ast.Node // block chain at the start statement
	ends     []pathPoint
	deferred bool
	escaped  bool
}

func runSpanEnd(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, ftype *ast.FuncType, body *ast.BlockStmt) {
			checkSpanScope(pass, ftype, body)
		})
	}
	return nil
}

func checkSpanScope(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	spans := map[types.Object]*spanVar{}
	var returns []pathPoint

	// Pass 1 (own scope only): span starts and return statements.
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		if insideFuncLit(parents) {
			return
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if sv := spanStart(pass.TypesInfo, n, blockChain(parents)); sv != nil {
				spans[sv.obj] = sv
			}
		case *ast.ReturnStmt:
			returns = append(returns, pathPoint{pos: n.Pos(), chain: blockChain(parents)})
		}
	})
	if len(spans) == 0 {
		return
	}

	// Pass 2 (including closures): classify every use of each span var.
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		sv := spans[defOrUse(pass.TypesInfo, id)]
		if sv == nil || isStartLHS(sv, id) {
			return
		}
		classifySpanUse(sv, id, parents)
	})

	for _, sv := range spans {
		verdictSpan(pass, ftype, body, sv, returns)
	}
}

// spanStart recognizes `sp := parent.Child("name")` where the result is an
// *obs.Span. Only := definitions are tracked; reassignment is treated as
// an escape by the use classifier.
func spanStart(info *types.Info, as *ast.AssignStmt, chain []ast.Node) *spanVar {
	if as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Child" || pkgPath(fn) != obsPath {
		return nil
	}
	obj := info.Defs[id]
	if obj == nil || !isNamedType(obj.Type(), obsPath, "Span") {
		return nil
	}
	return &spanVar{obj: obj, name: id.Name, start: as, chain: chain}
}

func isStartLHS(sv *spanVar, id *ast.Ident) bool {
	return len(sv.start.Lhs) == 1 && sv.start.Lhs[0] == id
}

// classifySpanUse updates sv for one identifier occurrence: an End call
// (deferred or positional), a benign method call, or an escape.
func classifySpanUse(sv *spanVar, id *ast.Ident, parents []ast.Node) {
	call, isRecv := methodCallOf(id, parents)
	if lit := enclosingFuncLit(parents); lit != nil {
		// Inside a closure. The one blessed shape is an End reached via
		// `defer func() { ... sp.End() ... }()`.
		if isRecv && methodName(call) == "End" && litIsDeferredCall(lit, parents) {
			sv.deferred = true
			return
		}
		sv.escaped = true
		return
	}
	if !isRecv {
		sv.escaped = true
		return
	}
	if methodName(call) != "End" {
		return // SetAttr, Child, ... — benign receiver uses
	}
	if len(parents) >= 3 {
		if d, ok := parents[len(parents)-3].(*ast.DeferStmt); ok && d.Call == call {
			sv.deferred = true
			return
		}
	}
	sv.ends = append(sv.ends, pathPoint{pos: call.Pos(), chain: blockChain(parents)})
}

// verdictSpan reports a span that can leak: never ended at all, or with an
// exit path no End call covers.
func verdictSpan(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt, sv *spanVar, returns []pathPoint) {
	if sv.escaped || sv.deferred {
		return
	}
	if len(sv.ends) == 0 {
		pass.Report(analysis.Diagnostic{
			Pos:            sv.start.Pos(),
			Message:        "obs span " + sv.name + " is never ended; add defer " + sv.name + ".End() after starting it",
			SuggestedFixes: []analysis.SuggestedFix{deferEndFix(pass, sv)},
		})
		return
	}
	exits := liveExits(ftype, body, sv, returns)
	for _, exit := range exits {
		if !covered(sv.ends, exit) {
			pass.Reportf(exit.pos,
				"obs span %s (started at line %d) is not ended on this path; End it before the exit or defer %s.End()",
				sv.name, pass.Fset.Position(sv.start.Pos()).Line, sv.name)
			return // one report per span keeps the signal clean
		}
	}
}

// liveExits collects the exits reachable while the span is live: returns
// positioned after the start within the declaring block's subtree, plus
// the declaring block's fall-through exit (or the function's implicit
// return for a span declared at the top level of a void function).
func liveExits(ftype *ast.FuncType, body *ast.BlockStmt, sv *spanVar, returns []pathPoint) []pathPoint {
	var exits []pathPoint
	for _, r := range returns {
		if r.pos > sv.start.Pos() && chainIsPrefix(sv.chain, r.chain) {
			exits = append(exits, r)
		}
	}
	declBlock := body
	if len(sv.chain) > 0 {
		if b, ok := sv.chain[len(sv.chain)-1].(*ast.BlockStmt); ok {
			declBlock = b
		}
	}
	if declBlock != body {
		exits = append(exits, pathPoint{pos: declBlock.End(), chain: sv.chain})
	} else if ftype.Results == nil || len(ftype.Results.List) == 0 {
		if n := len(body.List); n == 0 || !isTerminating(body.List[n-1]) {
			exits = append(exits, pathPoint{pos: body.End(), chain: sv.chain})
		}
	}
	return exits
}

// isTerminating reports (conservatively) whether the statement never falls
// through: a return, or a panic call.
func isTerminating(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// covered reports whether some End call dominates the exit in the
// block-structural approximation: the End appears earlier and its block
// encloses (or equals) the exit's block.
func covered(ends []pathPoint, exit pathPoint) bool {
	for _, e := range ends {
		if e.pos < exit.pos && chainIsPrefix(e.chain, exit.chain) {
			return true
		}
	}
	return false
}

// deferEndFix builds the mechanical rewrite: insert `defer sp.End()` on a
// new line after the start statement, matching its indentation.
func deferEndFix(pass *analysis.Pass, sv *spanVar) analysis.SuggestedFix {
	pos := pass.Fset.Position(sv.start.Pos())
	indent := lineIndent(pass.Sources[pos.Filename], pos)
	return analysis.SuggestedFix{
		Message: "defer " + sv.name + ".End() right after the span starts",
		TextEdits: []analysis.TextEdit{{
			Pos:     sv.start.End(),
			End:     sv.start.End(),
			NewText: []byte("\n" + indent + "defer " + sv.name + ".End()"),
		}},
	}
}

// blockChain filters an ancestor stack down to the block-like nodes that
// define the structural path: blocks, switch cases, and select comms.
func blockChain(parents []ast.Node) []ast.Node {
	var chain []ast.Node
	for _, p := range parents {
		switch p.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			chain = append(chain, p)
		}
	}
	return chain
}

// chainIsPrefix reports whether a is a prefix of b.
func chainIsPrefix(a, b []ast.Node) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// methodCallOf reports whether id is the receiver of a method call
// (parents end with [..., CallExpr, SelectorExpr]) and returns the call.
func methodCallOf(id *ast.Ident, parents []ast.Node) (*ast.CallExpr, bool) {
	if len(parents) < 2 {
		return nil, false
	}
	sel, ok := parents[len(parents)-1].(*ast.SelectorExpr)
	if !ok || sel.X != id {
		return nil, false
	}
	call, ok := parents[len(parents)-2].(*ast.CallExpr)
	if !ok || call.Fun != sel {
		return nil, false
	}
	return call, true
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// insideFuncLit reports whether the ancestor stack crosses a function
// literal (i.e. the node belongs to a nested closure's scope).
func insideFuncLit(parents []ast.Node) bool {
	return enclosingFuncLit(parents) != nil
}

// enclosingFuncLit returns the innermost function literal on the stack.
func enclosingFuncLit(parents []ast.Node) *ast.FuncLit {
	for i := len(parents) - 1; i >= 0; i-- {
		if lit, ok := parents[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// litIsDeferredCall reports whether lit appears on the stack as the
// function of a deferred call: defer func() { ... }().
func litIsDeferredCall(lit *ast.FuncLit, parents []ast.Node) bool {
	for i, p := range parents {
		if p != lit {
			continue
		}
		if i < 2 {
			return false
		}
		call, ok := parents[i-1].(*ast.CallExpr)
		if !ok || call.Fun != lit {
			return false
		}
		d, ok := parents[i-2].(*ast.DeferStmt)
		return ok && d.Call == call
	}
	return false
}
