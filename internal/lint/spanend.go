package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sam/internal/lint/analysis"
)

// SpanEnd enforces the span-lifecycle contract of the obs telemetry layer:
// a phase span started with Child must be ended on every path out of the
// function, or ownership must be handed off explicitly (stored, returned,
// or passed along — escapes are not analyzed further).
//
// Accepted endings, in order of preference: a `defer sp.End()` (directly
// or inside a deferred closure), or manual sp.End() calls that cover every
// exit path. Path coverage runs on the basic-block CFG
// (analysis.BuildCFG + UncoveredExit), so branch-balanced manual endings
// — an if/else where both arms End — are recognized, and paths that
// leave by panicking are exempt (deferred cleanup and process death both
// make the span moot).
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require obs spans started in a function to be ended on every path " +
		"(defer sp.End() or covering manual End calls)",
	Run: runSpanEnd,
}

// spanVar tracks one span-typed local from its Child(...) start.
type spanVar struct {
	obj      types.Object
	name     string
	start    *ast.AssignStmt
	ends     int // manual End calls in this scope
	deferred bool
	escaped  bool
}

func runSpanEnd(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkSpanScope(pass, body)
		})
	}
	return nil
}

func checkSpanScope(pass *analysis.Pass, body *ast.BlockStmt) {
	spans := map[types.Object]*spanVar{}

	// Pass 1 (own scope only): span starts.
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		if insideFuncLit(parents) {
			return
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if sv := spanStart(pass.TypesInfo, as); sv != nil {
				spans[sv.obj] = sv
			}
		}
	})
	if len(spans) == 0 {
		return
	}

	// Pass 2 (including closures): classify every use of each span var.
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		sv := spans[defOrUse(pass.TypesInfo, id)]
		if sv == nil || isStartLHS(sv, id) {
			return
		}
		classifySpanUse(sv, id, parents)
	})

	var cfg *analysis.CFG
	for _, sv := range spans {
		if sv.escaped || sv.deferred {
			continue
		}
		if sv.ends == 0 {
			pass.Report(analysis.Diagnostic{
				Pos:            sv.start.Pos(),
				Message:        "obs span " + sv.name + " is never ended; add defer " + sv.name + ".End() after starting it",
				SuggestedFixes: []analysis.SuggestedFix{deferEndFix(pass, sv)},
			})
			continue
		}
		if cfg == nil {
			cfg = analysis.BuildCFG(body)
		}
		isEnd := func(n ast.Node) bool { return isEndStmt(pass.TypesInfo, n, sv.obj) }
		if exit, uncovered := cfg.UncoveredExit(sv.start, isEnd); uncovered {
			pass.Reportf(exit,
				"obs span %s (started at line %d) is not ended on this path; End it before the exit or defer %s.End()",
				sv.name, pass.Fset.Position(sv.start.Pos()).Line, sv.name)
		}
	}
}

// isEndStmt reports whether a CFG node is `sp.End()` at statement level
// for the given span object.
func isEndStmt(info *types.Info, n ast.Node, obj types.Object) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && defOrUse(info, id) == obj
}

// spanStart recognizes `sp := parent.Child("name")` where the result is an
// *obs.Span. Only := definitions are tracked; reassignment is treated as
// an escape by the use classifier.
func spanStart(info *types.Info, as *ast.AssignStmt) *spanVar {
	if as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Child" || pkgPath(fn) != obsPath {
		return nil
	}
	obj := info.Defs[id]
	if obj == nil || !isNamedType(obj.Type(), obsPath, "Span") {
		return nil
	}
	return &spanVar{obj: obj, name: id.Name, start: as}
}

func isStartLHS(sv *spanVar, id *ast.Ident) bool {
	return len(sv.start.Lhs) == 1 && sv.start.Lhs[0] == id
}

// classifySpanUse updates sv for one identifier occurrence: an End call
// (deferred or positional), a benign method call, or an escape.
func classifySpanUse(sv *spanVar, id *ast.Ident, parents []ast.Node) {
	call, isRecv := methodCallOf(id, parents)
	if lit := enclosingFuncLit(parents); lit != nil {
		// Inside a closure. The one blessed shape is an End reached via
		// `defer func() { ... sp.End() ... }()`.
		if isRecv && methodName(call) == "End" && litIsDeferredCall(lit, parents) {
			sv.deferred = true
			return
		}
		sv.escaped = true
		return
	}
	if !isRecv {
		sv.escaped = true
		return
	}
	if methodName(call) != "End" {
		return // SetAttr, Child, ... — benign receiver uses
	}
	if len(parents) >= 3 {
		if d, ok := parents[len(parents)-3].(*ast.DeferStmt); ok && d.Call == call {
			sv.deferred = true
			return
		}
	}
	sv.ends++
}

// deferEndFix builds the mechanical rewrite: insert `defer sp.End()` on a
// new line after the start statement, matching its indentation.
func deferEndFix(pass *analysis.Pass, sv *spanVar) analysis.SuggestedFix {
	pos := pass.Fset.Position(sv.start.Pos())
	indent := lineIndent(pass.Sources[pos.Filename], pos)
	return analysis.SuggestedFix{
		Message: "defer " + sv.name + ".End() right after the span starts",
		TextEdits: []analysis.TextEdit{{
			Pos:     sv.start.End(),
			End:     sv.start.End(),
			NewText: []byte("\n" + indent + "defer " + sv.name + ".End()"),
		}},
	}
}

// methodCallOf reports whether id is the receiver of a method call
// (parents end with [..., CallExpr, SelectorExpr]) and returns the call.
func methodCallOf(id *ast.Ident, parents []ast.Node) (*ast.CallExpr, bool) {
	if len(parents) < 2 {
		return nil, false
	}
	sel, ok := parents[len(parents)-1].(*ast.SelectorExpr)
	if !ok || sel.X != id {
		return nil, false
	}
	call, ok := parents[len(parents)-2].(*ast.CallExpr)
	if !ok || call.Fun != sel {
		return nil, false
	}
	return call, true
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// insideFuncLit reports whether the ancestor stack crosses a function
// literal (i.e. the node belongs to a nested closure's scope).
func insideFuncLit(parents []ast.Node) bool {
	return enclosingFuncLit(parents) != nil
}

// enclosingFuncLit returns the innermost function literal on the stack.
func enclosingFuncLit(parents []ast.Node) *ast.FuncLit {
	for i := len(parents) - 1; i >= 0; i-- {
		if lit, ok := parents[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// litIsDeferredCall reports whether lit appears on the stack as the
// function of a deferred call: defer func() { ... }().
func litIsDeferredCall(lit *ast.FuncLit, parents []ast.Node) bool {
	for i, p := range parents {
		if p != lit {
			continue
		}
		if i < 2 {
			return false
		}
		call, ok := parents[i-1].(*ast.CallExpr)
		if !ok || call.Fun != lit {
			return false
		}
		d, ok := parents[i-2].(*ast.DeferStmt)
		return ok && d.Call == call
	}
	return false
}
