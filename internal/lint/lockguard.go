package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// LockGuard is a package-level consistency check for mutex-protected
// state, seeded from the obs registry pattern (and the model-registry
// shape samserve will need): if some function writes a struct field
// while holding that struct's mutex, then every other function in the
// package must also hold the mutex to touch the field. A bare access is
// a data race the -race CI job may or may not catch at runtime; here it
// is caught structurally.
//
// The inference is two-pass and intraprocedural. Pass one finds, for
// each named struct with a sync.Mutex/RWMutex field (named or embedded),
// the set of fields written in function bodies that lock that mutex —
// the protected set. Pass two flags reads or writes of protected fields
// in bodies that never lock. Exemptions keep the signal clean:
// constructors (New*/new*), receivers constructed locally in the same
// body, functions whose name contains "Locked" (the caller-holds-lock
// convention), and fields of sync/atomic type (their safety does not
// come from the mutex).
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flag bare accesses to struct fields that other functions in the " +
		"package only touch while holding the struct's mutex",
	Run: runLockGuard,
}

// fieldAccess records one selector expression touching a struct field.
type fieldAccess struct {
	field *types.Var
	owner *types.Named
	sel   *ast.SelectorExpr
	write bool
}

// lockScope summarizes one function body for the lockguard passes.
type lockScope struct {
	name     string
	locked   map[*types.Named]string // struct type -> mutex description
	accesses []fieldAccess
	fresh    map[types.Object]bool // locals built from composite literals / new
}

func runLockGuard(pass *analysis.Pass) error {
	mutexed := mutexedStructs(pass)
	if len(mutexed) == 0 {
		return nil
	}

	var scopes []*lockScope
	for _, f := range pass.Files {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			scopes = append(scopes, summarizeLockScope(pass, name, body, mutexed))
		})
	}

	// Pass one: the protected set — fields written under their struct's
	// mutex anywhere in the package.
	type key struct {
		field *types.Var
	}
	protected := make(map[key]string) // field -> "T.mu" description
	for _, sc := range scopes {
		for _, acc := range sc.accesses {
			if !acc.write {
				continue
			}
			if mu, ok := sc.locked[acc.owner]; ok {
				protected[key{acc.field}] = acc.owner.Obj().Name() + "." + mu
			}
		}
	}
	if len(protected) == 0 {
		return nil
	}

	// Pass two: bare accesses in scopes that never lock. An assignment
	// records its LHS selector twice (as a write and as a read during the
	// walk), so reports dedupe by position.
	seen := make(map[token.Pos]bool)
	for _, sc := range scopes {
		if isConstructorName(sc.name) || strings.Contains(strings.ToLower(sc.name), "locked") {
			continue
		}
		for _, acc := range sc.accesses {
			if seen[acc.sel.Pos()] {
				continue
			}
			mu, isProtected := protected[key{acc.field}]
			if !isProtected {
				continue
			}
			if _, holds := sc.locked[acc.owner]; holds {
				continue
			}
			if base := analysis.RootObj(acc.sel.X, pass.TypesInfo); base != nil && sc.fresh[base] {
				continue // receiver built in this body; not shared yet
			}
			seen[acc.sel.Pos()] = true
			pass.Reportf(acc.sel.Pos(),
				"field %s.%s is written under %s elsewhere in this package; access it holding the lock",
				acc.owner.Obj().Name(), acc.field.Name(), mu)
		}
	}
	return nil
}

// mutexedStructs finds named struct types declared in this package that
// have a sync.Mutex or sync.RWMutex field, mapping each to the mutex
// field's name ("Mutex"/"RWMutex" when embedded).
func mutexedStructs(pass *analysis.Pass) map[*types.Named]string {
	out := make(map[*types.Named]string)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				out[named] = f.Name()
				break
			}
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

func isAtomicType(t types.Type) bool {
	n := namedOrPointee(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// summarizeLockScope walks one function body (closures excluded — they
// are their own scopes) collecting lock acquisitions, field accesses on
// mutexed structs, and locally-constructed receivers.
func summarizeLockScope(pass *analysis.Pass, name string, body *ast.BlockStmt, mutexed map[*types.Named]string) *lockScope {
	sc := &lockScope{
		name:   name,
		locked: make(map[*types.Named]string),
		fresh:  make(map[types.Object]bool),
	}
	info := pass.TypesInfo

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if owner, mu := lockTarget(info, n, mutexed); owner != nil {
				sc.locked[owner] = mu
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sc.recordAccess(info, lhs, true, mutexed)
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) && isFreshValue(n.Rhs[i]) {
					if obj := info.Defs[id]; obj != nil {
						sc.fresh[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			sc.recordAccess(info, n.X, true, mutexed)
		case *ast.SelectorExpr:
			sc.recordAccess(info, n, false, mutexed)
			return false // recordAccess handles the whole chain
		}
		return true
	})
	return sc
}

// lockTarget resolves a Lock/RLock call to the package-local struct type
// whose mutex it acquires, handling both named fields (r.mu.Lock()) and
// embedded mutexes (r.Lock()).
func lockTarget(info *types.Info, call *ast.CallExpr, mutexed map[*types.Named]string) (*types.Named, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
	default:
		return nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recv := ast.Unparen(sel.X)
	// r.mu.Lock(): the receiver expression is itself a field selection on
	// the struct. r.Lock() on an embedded mutex selects the struct
	// directly.
	if inner, ok := recv.(*ast.SelectorExpr); ok {
		if owner := ownedStruct(info, inner.X, mutexed); owner != nil {
			return owner, inner.Sel.Name
		}
	}
	if owner := ownedStruct(info, recv, mutexed); owner != nil {
		return owner, mutexed[owner]
	}
	return nil, ""
}

// ownedStruct returns the mutexed package-local struct type of e, if any.
func ownedStruct(info *types.Info, e ast.Expr, mutexed map[*types.Named]string) *types.Named {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	n := namedOrPointee(tv.Type)
	if n == nil {
		return nil
	}
	if _, ok := mutexed[n]; !ok {
		return nil
	}
	return n
}

// recordAccess registers e if it is a field selection on a mutexed
// struct. Mutex fields themselves and atomic fields are never
// interesting: the former are the guards, the latter guard themselves.
func (sc *lockScope) recordAccess(info *types.Info, e ast.Expr, write bool, mutexed map[*types.Named]string) {
	// Unwrap index and dereference layers: `s.vals[k] = v` and `*s.p = v`
	// both write through the field beneath.
	e = ast.Unparen(e)
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(v.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(v.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	owner := ownedStruct(info, sel.X, mutexed)
	if owner == nil {
		// The base may itself be a deeper selection worth recording
		// (a.b.c reads b off a).
		sc.recordAccess(info, sel.X, false, mutexed)
		return
	}
	field, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() {
		return
	}
	if isMutexType(field.Type()) || isAtomicType(field.Type()) {
		return
	}
	sc.accesses = append(sc.accesses, fieldAccess{field: field, owner: owner, sel: sel, write: write})
}

// isFreshValue reports whether rhs constructs a new value: a composite
// literal, &composite, or new(T).
func isFreshValue(rhs ast.Expr) bool {
	switch v := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(v.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}
