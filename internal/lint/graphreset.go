package lint

import (
	"go/ast"
	"go/types"

	"sam/internal/lint/analysis"
)

// GraphReset catches the PR 1 tape-leak class: a pooled *tensor.Graph
// reused across loop iterations accumulates nodes forever unless Reset is
// called each iteration. The marker for "this iteration builds and
// consumes a full tape" is a Backward call: a loop body that calls
// g.Backward on a graph declared outside the loop must also call g.Reset
// somewhere in the same body (top of the iteration by convention, but any
// position restores the pool for the next build).
var GraphReset = &analysis.Analyzer{
	Name: "graphreset",
	Doc: "require loops that run Backward on a pooled *tensor.Graph declared outside " +
		"the loop to Reset it every iteration (tape-leak guard)",
	Run: runGraphReset,
}

func runGraphReset(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				var loop ast.Node
				loopBody := func() *ast.BlockStmt {
					switch s := n.(type) {
					case *ast.ForStmt:
						loop = s
						return s.Body
					case *ast.RangeStmt:
						loop = s
						return s.Body
					}
					return nil
				}()
				if loopBody != nil {
					checkGraphLoop(pass, loop, loopBody)
				}
				return true
			})
		})
	}
	return nil
}

// checkGraphLoop flags Backward calls in the loop body on outer-declared
// graphs with no matching Reset in the same body.
func checkGraphLoop(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt) {
	type graphUse struct {
		backward *ast.CallExpr
		reset    bool
	}
	uses := map[types.Object]*graphUse{}
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := defOrUse(pass.TypesInfo, recv)
		if obj == nil || !isNamedType(obj.Type(), tensorPath, "Graph") {
			return true
		}
		if containsPos(loop, obj.Pos()) {
			return true // per-iteration graph: fresh or visibly managed here
		}
		u := uses[obj]
		if u == nil {
			u = &graphUse{}
			uses[obj] = u
		}
		switch sel.Sel.Name {
		case "Backward":
			if u.backward == nil {
				u.backward = call
			}
		case "Reset":
			u.reset = true
		}
		return true
	})
	for obj, u := range uses {
		if u.backward != nil && !u.reset {
			pass.Reportf(u.backward.Pos(),
				"graph %s is rebuilt and consumed across loop iterations without Reset; "+
					"call %s.Reset() each iteration or the pooled tape leaks nodes",
				obj.Name(), obj.Name())
		}
	}
}
