package lint

import (
	"os"
	"strings"
	"sync"
	"testing"

	"sam/internal/lint/analysis"
	"sam/internal/lint/analysis/analysistest"
)

// One loader for the whole test binary: the source importer typechecks
// the module's real packages once and every fixture reuses the cache.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func fixtureLoader() *analysis.Loader {
	loaderOnce.Do(func() { loader = analysis.NewLoader() })
	return loader
}

func TestDetRandFixtures(t *testing.T) {
	diags := analysistest.Run(t, fixtureLoader(), DetRand, "testdata/src/detrand")

	// The clock-seed findings must carry a mechanical fix that swaps the
	// seed expression for a literal.
	fixes := 0
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now()") {
			continue
		}
		if len(d.SuggestedFixes) != 1 || len(d.SuggestedFixes[0].TextEdits) != 1 {
			t.Fatalf("clock-seed finding %q: want exactly one single-edit fix, got %+v", d.Message, d.SuggestedFixes)
		}
		if got := string(d.SuggestedFixes[0].TextEdits[0].NewText); got != "1" {
			t.Errorf("clock-seed fix text = %q, want \"1\"", got)
		}
		fixes++
	}
	if fixes == 0 {
		t.Error("no clock-seed finding carried a suggested fix")
	}
}

func TestHotAllocFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), HotAlloc, "testdata/src/hotalloc")
}

func TestSpanEndFixtures(t *testing.T) {
	diags := analysistest.Run(t, fixtureLoader(), SpanEnd, "testdata/src/spanend")

	// The never-ended span has a mechanical fix: apply it and check the
	// defer lands right after the start, at matching indentation.
	for _, d := range diags {
		if !strings.Contains(d.Message, "never ended") {
			continue
		}
		if len(d.SuggestedFixes) != 1 || len(d.SuggestedFixes[0].TextEdits) != 1 {
			t.Fatalf("never-ended finding: want one single-edit fix, got %+v", d.SuggestedFixes)
		}
		pos := fixtureLoader().Fset.Position(d.SuggestedFixes[0].TextEdits[0].Pos)
		src, err := os.ReadFile(pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		patched, err := analysis.ApplyFixes(fixtureLoader().Fset, map[string][]byte{pos.Filename: src},
			[]analysis.Finding{{Fixes: d.SuggestedFixes}})
		if err != nil {
			t.Fatal(err)
		}
		if got := string(patched[pos.Filename]); !strings.Contains(got, "Child(\"phase\")\n\tdefer sp.End()") {
			t.Errorf("applied fix did not insert defer right after the span start:\n%s", got)
		}
		return
	}
	t.Error("no never-ended finding reported")
}

func TestGraphResetFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), GraphReset, "testdata/src/graphreset")
}

func TestErrPropagateFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), ErrPropagate, "testdata/src/errpropagate")
}

func TestObsNilFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), ObsNil, "testdata/src/obsnil")
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run func", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"detrand", "hotalloc", "spanend", "graphreset", "errpropagate"} {
		if !seen[name] {
			t.Errorf("suite is missing required analyzer %q", name)
		}
	}
}

func TestIsPipelinePackage(t *testing.T) {
	for path, want := range map[string]bool{
		"sam/internal/tensor":      true,
		"sam/internal/ar":          true,
		"sam/internal/obs":         false,
		"sam/cmd/samlint":          false,
		"samlint.fixture/hotalloc": false,
	} {
		if got := IsPipelinePackage(path); got != want {
			t.Errorf("IsPipelinePackage(%q) = %v, want %v", path, got, want)
		}
	}
}
