package lint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sam/internal/lint/analysis"
	"sam/internal/lint/analysis/analysistest"
)

// One loader for the whole test binary: the source importer typechecks
// the module's real packages once and every fixture reuses the cache.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func fixtureLoader() *analysis.Loader {
	loaderOnce.Do(func() { loader = analysis.NewLoader() })
	return loader
}

func TestDetRandFixtures(t *testing.T) {
	diags := analysistest.Run(t, fixtureLoader(), DetRand, "testdata/src/detrand")

	// The clock-seed findings must carry a mechanical fix that swaps the
	// seed expression for a literal.
	fixes := 0
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now()") {
			continue
		}
		if len(d.SuggestedFixes) != 1 || len(d.SuggestedFixes[0].TextEdits) != 1 {
			t.Fatalf("clock-seed finding %q: want exactly one single-edit fix, got %+v", d.Message, d.SuggestedFixes)
		}
		if got := string(d.SuggestedFixes[0].TextEdits[0].NewText); got != "1" {
			t.Errorf("clock-seed fix text = %q, want \"1\"", got)
		}
		fixes++
	}
	if fixes == 0 {
		t.Error("no clock-seed finding carried a suggested fix")
	}
}

func TestHotAllocFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), HotAlloc, "testdata/src/hotalloc")
}

func TestSpanEndFixtures(t *testing.T) {
	diags := analysistest.Run(t, fixtureLoader(), SpanEnd, "testdata/src/spanend")

	// The never-ended span has a mechanical fix: apply it and check the
	// defer lands right after the start, at matching indentation.
	for _, d := range diags {
		if !strings.Contains(d.Message, "never ended") {
			continue
		}
		if len(d.SuggestedFixes) != 1 || len(d.SuggestedFixes[0].TextEdits) != 1 {
			t.Fatalf("never-ended finding: want one single-edit fix, got %+v", d.SuggestedFixes)
		}
		pos := fixtureLoader().Fset.Position(d.SuggestedFixes[0].TextEdits[0].Pos)
		src, err := os.ReadFile(pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		patched, err := analysis.ApplyFixes(fixtureLoader().Fset, map[string][]byte{pos.Filename: src},
			[]analysis.Finding{{Fixes: d.SuggestedFixes}})
		if err != nil {
			t.Fatal(err)
		}
		if got := string(patched[pos.Filename]); !strings.Contains(got, "Child(\"phase\")\n\tdefer sp.End()") {
			t.Errorf("applied fix did not insert defer right after the span start:\n%s", got)
		}
		return
	}
	t.Error("no never-ended finding reported")
}

func TestGraphResetFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), GraphReset, "testdata/src/graphreset")
}

func TestErrPropagateFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), ErrPropagate, "testdata/src/errpropagate")
}

func TestObsNilFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), ObsNil, "testdata/src/obsnil")
}

func TestMapOrderFixtures(t *testing.T) {
	diags := analysistest.Run(t, fixtureLoader(), MapOrder, "testdata/src/maporder")
	roundTripFixes(t, MapOrder, "testdata/src/maporder", diags)
}

func TestGoLeakFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), GoLeak, "testdata/src/goleak")
}

func TestLockGuardFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), LockGuard, "testdata/src/lockguard")
}

func TestCloseLeakFixtures(t *testing.T) {
	diags := analysistest.Run(t, fixtureLoader(), CloseLeak, "testdata/src/closeleak")
	roundTripFixes(t, CloseLeak, "testdata/src/closeleak", diags)
}

func TestVecCardFixtures(t *testing.T) {
	analysistest.Run(t, fixtureLoader(), VecCard, "testdata/src/veccard")
}

// roundTripFixes applies every suggested fix a fixture run produced,
// writes the patched package to a temp dir, reruns the analyzer on it,
// and asserts the findings are gone: the mechanical rewrite must satisfy
// the analyzer that demanded it.
func roundTripFixes(t *testing.T, a *analysis.Analyzer, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	var findings []analysis.Finding
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			findings = append(findings, analysis.Finding{Fixes: d.SuggestedFixes})
		}
	}
	if len(findings) == 0 {
		t.Fatal("no suggested fixes to round-trip")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sources[path] = src
	}
	patched, err := analysis.ApplyFixes(fixtureLoader().Fset, sources, findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	tmp := t.TempDir()
	for path, src := range sources {
		if p, ok := patched[path]; ok {
			src = p
		}
		if err := os.WriteFile(filepath.Join(tmp, filepath.Base(path)), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := fixtureLoader().LoadDir(tmp, "samlint.fixture/"+a.Name+"_fixed")
	if err != nil {
		t.Fatalf("reloading fixed fixture: %v", err)
	}
	var rerun []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fixtureLoader().Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Sources:   pkg.Sources,
		Report:    func(d analysis.Diagnostic) { rerun = append(rerun, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	for _, d := range rerun {
		t.Errorf("finding survives its own fix: %s: %s", fixtureLoader().Fset.Position(d.Pos), d.Message)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 11 {
		t.Fatalf("suite has %d analyzers, want at least 11", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run func", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{
		"detrand", "hotalloc", "spanend", "graphreset", "errpropagate", "obsnil",
		"maporder", "goleak", "lockguard", "closeleak", "veccard",
	} {
		if !seen[name] {
			t.Errorf("suite is missing required analyzer %q", name)
		}
	}
}

func TestIsPipelinePackage(t *testing.T) {
	for path, want := range map[string]bool{
		"sam/internal/tensor":      true,
		"sam/internal/ar":          true,
		"sam/internal/obs":         false,
		"sam/cmd/samlint":          false,
		"samlint.fixture/hotalloc": false,
	} {
		if got := IsPipelinePackage(path); got != want {
			t.Errorf("IsPipelinePackage(%q) = %v, want %v", path, got, want)
		}
	}
}
