package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// tensorAllocators are package-level tensor constructors that always heap-
// allocate; inside loops the pooled Graph.NewTensor (or hoisting) is the
// sanctioned form.
var tensorAllocators = map[string]bool{
	"New":       true,
	"FromSlice": true,
}

// HotAlloc enforces the zero-allocation contract on warm loops in
// pipeline packages (the 115→0 allocs/step result of PR 1, pinned by the
// alloc-regression tests). Inside for/range bodies it flags:
//
//   - tensor.New / tensor.FromSlice and (*Tensor).Clone — fresh heap
//     tensors per iteration; hoist them or draw from a pooled Graph.
//   - calls to a function or method F where F's own package declares an
//     F+"Into" variant (tensor.MatMul vs tensor.MatMulInto): the Into
//     form writes into a caller-owned destination and is the hot-path
//     sanctioned spelling.
//   - append to a slice declared inside an enclosing loop body without a
//     sized make: the temporary regrows from nil every iteration; hoist
//     it and reuse with s = s[:0].
//
// Functions named New*/new* are exempt — constructors run once and build
// persistent state by design — and so are closures defined inside them.
// Other closures are separate scopes: a loop outside a func literal does
// not make the literal's body hot. Slices initialized by a sized make,
// by reslicing an existing slice (s := buf[:0], the in-place filter
// idiom), or by selecting a row of a pooled slice-of-slices
// (lst := pool[i]) are treated as pre-sized and their appends are not
// flagged.
var HotAlloc = &analysis.Analyzer{
	Name:         "hotalloc",
	PipelineOnly: true,
	Doc: "forbid allocating tensor constructors/ops in loops in pipeline packages when a " +
		"pooled or ...Into variant exists; keep warm steps zero-allocation",
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Bodies of New*/new* constructors are cold by design; closures
		// defined inside them inherit the exemption (a constructor's setup
		// helper is still setup).
		var exempt []*ast.BlockStmt
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") {
				exempt = append(exempt, fd.Body)
			}
		}
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			for _, e := range exempt {
				if containsPos(e, body.Pos()) {
					return
				}
			}
			checkHotScope(pass, body)
		})
	}
	return nil
}

// checkHotScope analyzes one function body: it collects the loop bodies
// in the scope, then flags allocation patterns at positions covered by at
// least one of them.
func checkHotScope(pass *analysis.Pass, scope *ast.BlockStmt) {
	var loopBodies []*ast.BlockStmt
	inspectShallow(scope, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.RangeStmt:
			loopBodies = append(loopBodies, s.Body)
		}
		return true
	})
	if len(loopBodies) == 0 {
		return
	}
	inLoop := func(pos token.Pos) bool {
		for _, b := range loopBodies {
			if containsPos(b, pos) {
				return true
			}
		}
		return false
	}
	declaredInLoop := func(pos token.Pos) bool { return inLoop(pos) }

	sizedMake := map[types.Object]bool{}
	inspectShallow(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if inLoop(n.Pos()) {
				checkAllocCall(pass, n)
			}
		case *ast.AssignStmt:
			recordSizedMakes(pass.TypesInfo, n, sizedMake)
			if inLoop(n.Pos()) {
				checkLoopAppend(pass, n, declaredInLoop, sizedMake)
			}
		}
		return true
	})
}

// checkAllocCall flags allocating tensor constructors and calls with an
// ...Into sibling.
func checkAllocCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	path := pkgPath(fn)
	if path == tensorPath {
		if isPkgLevel(fn) && tensorAllocators[fn.Name()] {
			pass.Reportf(call.Pos(),
				"tensor.%s allocates inside a loop; hoist it or use a pooled Graph.NewTensor", fn.Name())
			return
		}
		if fn.Name() == "Clone" && !isPkgLevel(fn) {
			pass.Reportf(call.Pos(),
				"(*tensor.Tensor).Clone allocates inside a loop; hoist the destination and copy into it")
			return
		}
	}
	if !strings.HasPrefix(path, "sam/") || strings.HasSuffix(fn.Name(), "Into") {
		return
	}
	if intoVariantExists(fn) {
		pass.Reportf(call.Pos(),
			"%s allocates its result inside a loop; use %sInto with a reused destination", fn.Name(), fn.Name())
	}
}

// intoVariantExists reports whether fn's package (for functions) or
// receiver type (for methods) declares fn.Name()+"Into".
func intoVariantExists(fn *types.Func) bool {
	into := fn.Name() + "Into"
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return fn.Pkg() != nil && fn.Pkg().Scope().Lookup(into) != nil
	}
	obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, fn.Pkg(), into)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// isBuiltin reports whether id resolves to the named predeclared builtin
// (rather than a user identifier shadowing it).
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// recordSizedMakes marks slice variables defined by a make with explicit
// length or capacity, by reslicing an existing slice (s := buf[:0], the
// in-place filter idiom), or by selecting a row of a pooled
// slice-of-slices (lst := pool[i], appended to and stored back); appends
// to those reuse capacity on purpose — the backing buffer outlives the
// loop even when the header variable is loop-local.
func recordSizedMakes(info *types.Info, as *ast.AssignStmt, sized map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		presized := false
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
			presized = ok && len(rhs.Args) >= 2 && isBuiltin(info, id, "make")
		case *ast.SliceExpr:
			presized = true
		case *ast.IndexExpr:
			presized = true
		}
		if !presized || i >= len(as.Lhs) {
			continue
		}
		if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
			if obj := defOrUse(info, lhs); obj != nil {
				sized[obj] = true
			}
		}
	}
}

// defOrUse resolves an identifier to its object whether it defines or
// uses it.
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkLoopAppend flags s = append(s, ...) where s is declared (unsized)
// inside an enclosing loop body: the temporary reallocates and regrows
// every iteration.
func checkLoopAppend(pass *analysis.Pass, as *ast.AssignStmt, declaredInLoop func(token.Pos) bool, sized map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || !isBuiltin(pass.TypesInfo, id, "append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		lhs, ok := as.Lhs[i].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			continue
		}
		obj := defOrUse(pass.TypesInfo, lhs)
		if obj == nil || sized[obj] {
			continue
		}
		if declaredInLoop(obj.Pos()) {
			pass.Reportf(as.Pos(),
				"append grows %s, a temporary declared in a loop body, every iteration; "+
					"hoist it and reuse with %s = %s[:0]", lhs.Name, lhs.Name, lhs.Name)
		}
	}
}
