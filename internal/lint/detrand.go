package lint

import (
	"go/ast"
	"go/types"

	"sam/internal/lint/analysis"
)

// randConstructors are the math/rand entry points that do not touch the
// package-global source: they build explicit generators the caller owns
// (and is responsible for seeding deterministically).
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

// seedSinks are the constructors whose integer arguments become RNG seeds;
// detrand rejects clock-derived values flowing into them.
var seedSinks = map[string]bool{
	"NewSource": true,
	"New":       true,
	"NewPCG":    true,
	"Seed":      true, // (*rand.Rand).Seed — deterministic reseeding is fine, clock seeding is not
}

// DetRand enforces the determinism contract on pipeline packages:
// generated databases must be bit-identical for a fixed (seed, workers,
// batch), so randomness must flow in as parameters or per-lane streams.
// It flags (1) calls to math/rand and math/rand/v2 package-level
// functions, which draw from unseeded process-global state, and (2) RNG
// seeds derived from time.Now, with a suggested fix replacing the
// clock-derived seed with the literal 1.
var DetRand = &analysis.Analyzer{
	Name:         "detrand",
	PipelineOnly: true,
	Doc: "forbid global math/rand state and time-derived RNG seeds in pipeline packages; " +
		"RNGs must be injected and deterministically seeded",
	Run: runDetRand,
}

func runDetRand(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			path := pkgPath(fn)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if isPkgLevel(fn) && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to global %s.%s draws from process-global RNG state; inject a seeded *rand.Rand instead",
					path, fn.Name())
				return true
			}
			if seedSinks[fn.Name()] {
				for _, arg := range call.Args {
					if now := findTimeNow(pass.TypesInfo, arg); now != nil {
						pass.Report(analysis.Diagnostic{
							Pos: now.Pos(),
							Message: "RNG seed derived from time.Now() breaks run-to-run determinism; " +
								"use a fixed or injected seed",
							SuggestedFixes: []analysis.SuggestedFix{{
								Message:   "replace clock-derived seed with the literal 1",
								TextEdits: []analysis.TextEdit{{Pos: arg.Pos(), End: arg.End(), NewText: []byte("1")}},
							}},
						})
					}
				}
			}
			return true
		})
	}
	return nil
}

// findTimeNow returns the first call to time.Now in the expression
// subtree, or nil. Subtrees that are themselves seed-sink calls are
// skipped: rand.New(rand.NewSource(time.Now()...)) reports once, at the
// inner sink whose argument the suggested fix can safely replace.
func findTimeNow(info *types.Info, expr ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch path := pkgPath(fn); {
		case path == "time" && fn.Name() == "Now":
			found = call
			return false
		case (path == "math/rand" || path == "math/rand/v2") && seedSinks[fn.Name()]:
			return false // the inner sink's own visit reports it
		}
		return true
	})
	return found
}
