package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// VecCard protects the two contracts the labeled-metric layer (PR 7)
// established: warm loops stay 0 allocs/op because With() handles are
// pre-resolved outside them (With takes the vector's RWMutex and may
// allocate a child), and label sets stay finite because the registry
// panics past its cardinality cap. Two checks:
//
//   - a With() call on an obs vector (CounterVec/GaugeVec/HistogramVec)
//     lexically inside a loop, unless the loop ranges over a constant
//     composite literal (bounded setup loops like the per-pass handle
//     table in obs hooks) or the enclosing function is a constructor;
//   - a With() argument computed by strconv.*/fmt.Sprint* — stringifying
//     a number is the classic unbounded-label mistake; if the number is
//     provably bounded, say so with a //lint:allow marker.
var VecCard = &analysis.Analyzer{
	Name: "veccard",
	Doc: "require labeled-metric With() handles to be pre-resolved outside hot " +
		"loops and label values to come from bounded sets",
	Run: runVecCard,
}

func runVecCard(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkVecScope(pass, name, body)
		})
	}
	return nil
}

func checkVecScope(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	constructor := isConstructorName(name)
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isVecWith(pass.TypesInfo, call) {
			return
		}
		// Closures are separate scopes; their With calls are visited when
		// funcBodies hands us the literal itself.
		if insideFuncLit(parents) {
			return
		}
		if !constructor {
			if loop := enclosingLoop(parents); loop != nil && !isBoundedLoop(pass.TypesInfo, loop) {
				pass.Reportf(call.Pos(),
					"vector With() inside a loop resolves the handle every iteration (lock + map lookup); pre-resolve it outside the loop")
			}
		}
		for _, arg := range call.Args {
			if desc := unboundedLabelArg(pass.TypesInfo, arg); desc != "" {
				pass.Reportf(arg.Pos(),
					"label value computed with %s is unbounded; label cardinality must be finite (the registry panics past its cap)", desc)
			}
		}
	})
}

// isVecWith reports whether call is With() on one of the obs labeled
// vector types.
func isVecWith(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "With" || pkgPath(fn) != obsPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOrPointee(sig.Recv().Type())
	if n == nil {
		return false
	}
	switch n.Obj().Name() {
	case "CounterVec", "GaugeVec", "HistogramVec":
		return true
	}
	return false
}

// enclosingLoop returns the innermost for/range statement on the
// ancestor chain, or nil.
func enclosingLoop(parents []ast.Node) ast.Stmt {
	for i := len(parents) - 1; i >= 0; i-- {
		switch s := parents[i].(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		}
	}
	return nil
}

// isBoundedLoop recognizes the blessed setup shape: ranging over a
// composite literal of constants (`for _, pass := range []string{...}`).
// Such loops run a fixed, small number of iterations at registration
// time, where resolving handles is the point.
func isBoundedLoop(info *types.Info, loop ast.Stmt) bool {
	r, ok := loop.(*ast.RangeStmt)
	if !ok {
		return false
	}
	lit, ok := ast.Unparen(r.X).(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		tv, ok := info.Types[elt]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}

// unboundedLabelArg classifies arg as an unbounded label value: a direct
// strconv or fmt.Sprint* stringification of a runtime value.
func unboundedLabelArg(info *types.Info, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || !isPkgLevel(fn) {
		return ""
	}
	switch pkgPath(fn) {
	case "strconv":
		if strings.HasPrefix(fn.Name(), "Format") || fn.Name() == "Itoa" || fn.Name() == "Quote" {
			return "strconv." + fn.Name()
		}
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Sprint") {
			return "fmt." + fn.Name()
		}
	}
	return ""
}
