package obsnil

import "sam/internal/obs"

// Invoking a callback field directly panics the moment an observer
// leaves it unset.
func fire(h *obs.Hooks, s obs.TrainStep, p obs.GenPhase, gp obs.GenProgress) {
	h.OnTrainStep(s)    // want `calling obs\.Hooks\.OnTrainStep directly panics when the callback is unset; use the nil-safe wrapper h\.TrainStep`
	h.OnGenPhase(p)     // want `calling obs\.Hooks\.OnGenPhase directly .* use the nil-safe wrapper h\.GenPhase`
	h.OnGenProgress(gp) // want `calling obs\.Hooks\.OnGenProgress directly .* use the nil-safe wrapper h\.GenProgress`
}
