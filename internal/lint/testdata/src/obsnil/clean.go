package obsnil

import "sam/internal/obs"

// The wrapper methods are nil-safe on both the receiver and the field.
func fireSafe(h *obs.Hooks, s obs.TrainStep) {
	h.TrainStep(s)
	if h.WantsTrainStep() {
		h.TrainStep(s)
	}
}

// Constructing Hooks values and nil-checking fields is fine; only direct
// invocation is a hazard.
func construct(fn func(obs.TrainStep)) *obs.Hooks {
	h := &obs.Hooks{OnTrainStep: fn}
	if h.OnTrainStep != nil {
		return h
	}
	return nil
}
