package obsnil

import "sam/internal/obs"

// The wrapper methods are nil-safe on both the receiver and the field.
func fireSafe(h *obs.Hooks, s obs.TrainStep, p obs.GenProgress) {
	h.TrainStep(s)
	if h.WantsTrainStep() {
		h.TrainStep(s)
	}
	if h.WantsGenProgress() {
		h.GenProgress(p)
	}
}

// Constructing Hooks values and nil-checking fields is fine; only direct
// invocation is a hazard.
func construct(fn func(obs.TrainStep)) *obs.Hooks {
	h := &obs.Hooks{OnTrainStep: fn}
	if h.OnTrainStep != nil {
		return h
	}
	return nil
}

// Labeled families follow the same contract: With on a nil vector hands
// back a detached metric, so pre-resolved handles need no nil branch.
func labeledSafe(r *obs.Registry) {
	c := r.CounterVec("x_total", "phase").With("sample")
	c.Inc()
	r.GaugeVec("mass", "table").With("t").Set(1)
}
