package hotalloc

import "sam/internal/tensor"

// Constructors are cold: building persistent state allocates by design,
// and closures defined inside them inherit the exemption.
func NewModel(n int) []*tensor.Tensor {
	view := func(rows int) *tensor.Tensor {
		var last *tensor.Tensor
		for r := 1; r <= rows; r++ {
			last = tensor.New(r, 4)
		}
		return last
	}
	views := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		views = append(views, view(i+1))
	}
	return views
}

// The Into form writes into a caller-owned destination: zero allocations
// per iteration.
func warmStep(dst, a, b *tensor.Tensor, n int) {
	for i := 0; i < n; i++ {
		tensor.MatMulInto(dst, a, b)
	}
}

// Reslicing an existing buffer reuses its capacity (the in-place filter
// idiom), so the append is not a per-iteration allocation.
func filtered(buf []float64, rows [][]float64) int {
	total := 0
	for _, r := range rows {
		keep := buf[:0]
		for _, v := range r {
			if v > 0 {
				keep = append(keep, v)
			}
		}
		total += len(keep)
	}
	return total
}

// A sized make pre-allocates deliberately; its appends never regrow.
func sized(rows [][]float64) int {
	total := 0
	for _, r := range rows {
		out := make([]float64, 0, len(r))
		for _, v := range r {
			out = append(out, v*2)
		}
		total += len(out)
	}
	return total
}
