package hotalloc

import "sam/internal/tensor"

// Constructors are cold: building persistent state allocates by design,
// and closures defined inside them inherit the exemption.
func NewModel(n int) []*tensor.Tensor {
	view := func(rows int) *tensor.Tensor {
		var last *tensor.Tensor
		for r := 1; r <= rows; r++ {
			last = tensor.New(r, 4)
		}
		return last
	}
	views := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		views = append(views, view(i+1))
	}
	return views
}

// The Into form writes into a caller-owned destination: zero allocations
// per iteration.
func warmStep(dst, a, b *tensor.Tensor, n int) {
	for i := 0; i < n; i++ {
		tensor.MatMulInto(dst, a, b)
	}
}

// Reslicing an existing buffer reuses its capacity (the in-place filter
// idiom), so the append is not a per-iteration allocation.
func filtered(buf []float64, rows [][]float64) int {
	total := 0
	for _, r := range rows {
		keep := buf[:0]
		for _, v := range r {
			if v > 0 {
				keep = append(keep, v)
			}
		}
		total += len(keep)
	}
	return total
}

// Per-lane cache buffers belong in the constructor: allocated once with
// capacity for the worst case, the warm sweep reslices each to empty and
// refills it instead of reallocating.
type laneCache struct {
	nz [][]int
}

func NewLaneCache(lanes, width int) *laneCache {
	c := &laneCache{nz: make([][]int, lanes)}
	for l := range c.nz {
		c.nz[l] = make([]int, 0, width)
	}
	return c
}

// Continuing a pooled row without truncation (lst := pool[l], append,
// store back) reuses capacity the same way: the nonzero-list kernels
// extend each lane's list in place across column steps.
func (c *laneCache) extend(rows [][]float64, lo int) int {
	total := 0
	for l, r := range rows {
		lst := c.nz[l]
		for j, v := range r {
			if v > 0 {
				lst = append(lst, lo+j)
			}
		}
		c.nz[l] = lst
		total += len(lst)
	}
	return total
}

func (c *laneCache) sweep(rows [][]float64) int {
	total := 0
	for l, r := range rows {
		lst := c.nz[l][:0]
		for j, v := range r {
			if v > 0 {
				lst = append(lst, j)
			}
		}
		c.nz[l] = lst
		total += len(lst)
	}
	return total
}

// A sized make pre-allocates deliberately; its appends never regrow.
func sized(rows [][]float64) int {
	total := 0
	for _, r := range rows {
		out := make([]float64, 0, len(r))
		for _, v := range r {
			out = append(out, v*2)
		}
		total += len(out)
	}
	return total
}
