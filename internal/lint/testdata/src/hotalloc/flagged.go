package hotalloc

import "sam/internal/tensor"

// Warm loops must not allocate fresh tensors or call allocating ops with
// ...Into siblings.
func hotLoop(a, b *tensor.Tensor, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		t := tensor.New(4, 4)                   // want `tensor\.New allocates inside a loop`
		v := tensor.FromSlice(1, 4, a.Data[:4]) // want `tensor\.FromSlice allocates inside a loop`
		c := a.Clone()                          // want `Clone allocates inside a loop`
		p := tensor.MatMul(a, b)                // want `MatMul allocates its result inside a loop; use MatMulInto`
		sum += t.Data[0] + v.Data[0] + c.Data[0] + p.Data[0]
	}
	return sum
}

// The pre-fusion sampling loop normalized each lane's logits into a fresh
// probability slice before walking the CDF; the fused path exponentiates
// the logit row in place (tensor.ExpRowMass) and draws straight from the
// unnormalized masses, so a per-lane probs slice in the sweep is a bug.
func drawSweep(logits *tensor.Tensor) int {
	bins := 0
	for l := 0; l < logits.Rows; l++ {
		var probs []float64
		for _, v := range logits.Row(l) {
			probs = append(probs, v) // want `append grows probs, a temporary declared in a loop body`
		}
		bins += len(probs)
	}
	return bins
}

// A temporary declared in a loop body regrows from nil every iteration.
func growingTemp(rows [][]float64) int {
	total := 0
	for _, r := range rows {
		var hot []float64
		for _, v := range r {
			if v > 0 {
				hot = append(hot, v) // want `append grows hot, a temporary declared in a loop body`
			}
		}
		total += len(hot)
	}
	return total
}
