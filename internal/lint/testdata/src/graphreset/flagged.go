package graphreset

import "sam/internal/tensor"

// A pooled graph consumed by Backward every iteration leaks tape nodes
// unless Reset runs each iteration.
func trainLoop(params *tensor.Tensor, steps int) {
	g := tensor.NewGraph()
	for i := 0; i < steps; i++ {
		w := g.Param(params)
		loss := g.MulElem(w, w)
		g.Backward(loss) // want `graph g is rebuilt and consumed across loop iterations without Reset`
	}
}

// Range loops are hot loops too.
func trainRange(g *tensor.Graph, batches []*tensor.Tensor) {
	for _, b := range batches {
		w := g.Param(b)
		g.Backward(g.MulElem(w, w)) // want `graph g is rebuilt and consumed across loop iterations without Reset`
	}
}
