package graphreset

import "sam/internal/tensor"

// Reset at the top of each iteration restores the pool before rebuild.
func resetEachIter(params *tensor.Tensor, steps int) {
	g := tensor.NewGraph()
	for i := 0; i < steps; i++ {
		g.Reset()
		w := g.Param(params)
		loss := g.MulElem(w, w)
		g.Backward(loss)
	}
}

// A graph created inside the loop is fresh every iteration.
func freshPerIter(params *tensor.Tensor, steps int) {
	for i := 0; i < steps; i++ {
		g := tensor.NewGraph()
		w := g.Param(params)
		g.Backward(g.MulElem(w, w))
	}
}

// Forward-only accumulation loops build one tape on purpose; only
// Backward marks an iteration as consuming the tape.
func forwardOnly(g *tensor.Graph, params *tensor.Tensor, steps int) *tensor.Node {
	var last *tensor.Node
	for i := 0; i < steps; i++ {
		last = g.MulElem(g.Param(params), g.Param(params))
	}
	return last
}
