package errpropagate

import (
	"fmt"
	"io"

	"sam/internal/obs"
	"sam/internal/relation"
)

// Checked, returned, and wrapped errors all count as handled.
func propagate(t *relation.Table, tr *obs.Trace, w io.Writer, r io.Reader) error {
	if err := t.WriteCSV(w); err != nil {
		return fmt.Errorf("write csv: %w", err)
	}
	spec, err := relation.ReadSpec(r)
	if err != nil {
		return err
	}
	_ = spec
	return tr.WriteJSONL(w)
}

// Only relation/obs calls are watched; other dropped results are out of
// scope for this analyzer.
func unwatched() {
	fmt.Println("fine")
}
