package errpropagate

import (
	"io"

	"sam/internal/obs"
	"sam/internal/relation"
)

// Errors from relation/obs IO must never be dropped.
func dropAll(t *relation.Table, tr *obs.Trace, w io.Writer, r io.Reader) {
	t.WriteCSV(w)                   // want `error from relation\.WriteCSV result ignored`
	_ = tr.WriteJSONL(w)            // want `error from obs\.WriteJSONL assigned to _`
	defer t.WriteCSV(w)             // want `error from relation\.WriteCSV result ignored in deferred call`
	go tr.WriteJSONL(w)             // want `error from obs\.WriteJSONL result ignored in go statement`
	spec, _ := relation.ReadSpec(r) // want `error from relation\.ReadSpec assigned to _`
	_ = spec
}
