package spanend

import (
	"errors"

	"sam/internal/obs"
)

var errEarly = errors.New("early")

// A span that is started and never ended leaks an open phase.
func neverEnded(root *obs.Span) {
	sp := root.Child("phase") // want `obs span sp is never ended; add defer sp\.End\(\)`
	sp.SetAttr("k", 1)
}

// Manual ends must cover every exit; the early return escapes this one.
func missingPath(root *obs.Span, fail bool) error {
	sp := root.Child("phase")
	if fail {
		return errEarly // want `obs span sp \(started at line \d+\) is not ended on this path`
	}
	sp.End()
	return nil
}

// In a void function the implicit return is an exit too.
func fallThrough(root *obs.Span, n int) {
	sp := root.Child("phase")
	if n > 0 {
		sp.End()
	}
} // want `obs span sp \(started at line \d+\) is not ended on this path`

// A spill pass that ends manually must cover the error returns too; this
// one leaks the span when the writer fails.
func spillErrorPath(tspan *obs.Span, fail bool) error {
	sp := tspan.Child("A")
	sp.SetAttr("fan_in", 2)
	if fail {
		return errEarly // want `obs span sp \(started at line \d+\) is not ended on this path`
	}
	sp.End()
	return nil
}

// Goroutine closures are function bodies too: a worker span with no End
// leaks one open shard per worker.
func workerLeak(psp *obs.Span, n int) {
	for i := 0; i < n; i++ {
		go func(shard int) {
			sp := psp.Child("shard") // want `obs span sp is never ended; add defer sp\.End\(\)`
			sp.SetAttr("shard", shard)
		}(i)
	}
}
