package spanend

import (
	"errors"

	"sam/internal/obs"
)

var errEarly = errors.New("early")

// A span that is started and never ended leaks an open phase.
func neverEnded(root *obs.Span) {
	sp := root.Child("phase") // want `obs span sp is never ended; add defer sp\.End\(\)`
	sp.SetAttr("k", 1)
}

// Manual ends must cover every exit; the early return escapes this one.
func missingPath(root *obs.Span, fail bool) error {
	sp := root.Child("phase")
	if fail {
		return errEarly // want `obs span sp \(started at line \d+\) is not ended on this path`
	}
	sp.End()
	return nil
}

// In a void function the implicit return is an exit too.
func fallThrough(root *obs.Span, n int) {
	sp := root.Child("phase")
	if n > 0 {
		sp.End()
	}
} // want `obs span sp \(started at line \d+\) is not ended on this path`
