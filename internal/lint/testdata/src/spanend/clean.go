package spanend

import "sam/internal/obs"

// defer sp.End() covers every path by construction.
func deferred(root *obs.Span) {
	sp := root.Child("phase")
	defer sp.End()
	sp.SetAttr("k", 1)
}

// End inside a deferred closure also counts.
func deferredClosure(root *obs.Span) {
	sp := root.Child("phase")
	defer func() {
		sp.End()
	}()
	sp.SetAttr("k", 1)
}

// Manual ends are fine when every exit is covered.
func manualBothPaths(root *obs.Span, fail bool) error {
	sp := root.Child("phase")
	if fail {
		sp.End()
		return errEarly
	}
	sp.End()
	return nil
}

// An early End before the early return covers the later exits too.
func endBeforeReturns(root *obs.Span, fail bool) error {
	sp := root.Child("phase")
	sp.SetAttr("k", 1)
	sp.End()
	if fail {
		return errEarly
	}
	return nil
}

// Returning the span hands ownership to the caller: an explicit escape.
func handoff(root *obs.Span) *obs.Span {
	sp := root.Child("phase")
	return sp
}

// Storing the span passes ownership too.
func stored(root *obs.Span, sink *struct{ Sp *obs.Span }) {
	sp := root.Child("phase")
	sink.Sp = sp
}

// The streaming spill passes end manually before every error return
// (pass A cannot defer: its wall time feeds the StreamPass event).
func spillPass(tspan *obs.Span, fail bool) error {
	sp := tspan.Child("A")
	sp.SetAttr("fan_in", 2)
	if fail {
		sp.End()
		return errEarly
	}
	if err := work(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

// Pass B wraps itself in an immediately-invoked closure so one defer
// covers the early error returns inside.
func spillPassClosure(tspan *obs.Span) error {
	return func() error {
		sp := tspan.Child("B")
		defer sp.End()
		if err := work(); err != nil {
			return err
		}
		return nil
	}()
}

// Shard workers run as goroutine closures; the deferred End inside the
// FuncLit covers the worker's exits.
func shardWorkers(psp *obs.Span, n int) {
	for i := 0; i < n; i++ {
		go func(shard int) {
			sp := psp.Child("shard")
			sp.SetAttr("shard", shard)
			defer sp.End()
			_ = work()
		}(i)
	}
}

func work() error { return nil }
