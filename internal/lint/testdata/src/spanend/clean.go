package spanend

import "sam/internal/obs"

// defer sp.End() covers every path by construction.
func deferred(root *obs.Span) {
	sp := root.Child("phase")
	defer sp.End()
	sp.SetAttr("k", 1)
}

// End inside a deferred closure also counts.
func deferredClosure(root *obs.Span) {
	sp := root.Child("phase")
	defer func() {
		sp.End()
	}()
	sp.SetAttr("k", 1)
}

// Manual ends are fine when every exit is covered.
func manualBothPaths(root *obs.Span, fail bool) error {
	sp := root.Child("phase")
	if fail {
		sp.End()
		return errEarly
	}
	sp.End()
	return nil
}

// An early End before the early return covers the later exits too.
func endBeforeReturns(root *obs.Span, fail bool) error {
	sp := root.Child("phase")
	sp.SetAttr("k", 1)
	sp.End()
	if fail {
		return errEarly
	}
	return nil
}

// Returning the span hands ownership to the caller: an explicit escape.
func handoff(root *obs.Span) *obs.Span {
	sp := root.Child("phase")
	return sp
}

// Storing the span passes ownership too.
func stored(root *obs.Span, sink *struct{ Sp *obs.Span }) {
	sp := root.Child("phase")
	sink.Sp = sp
}
