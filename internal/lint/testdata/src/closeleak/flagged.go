// Package closeleak holds fixtures for the resource-lifecycle analyzer:
// a file-backed handle opened in a function must reach Close on every
// exit path, or ownership must visibly move elsewhere.
package closeleak

import (
	"errors"
	"fmt"
	"os"

	"sam/internal/relation"
)

var errEmpty = errors.New("empty row")

// writeAll closes on the happy path but leaks f when a row is empty.
func writeAll(path string, rows []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r == "" {
			return errEmpty // want `handle f \(opened at line \d+\) is not closed on this path; defer f\.Close\(\) after the error check`
		}
		fmt.Fprintln(f, r)
	}
	return f.Close()
}

// spillRun opens a shard file and forgets it entirely: the fd leaks and
// the header row count is never patched.
func spillRun(dir string, rows [][]int32) error {
	w, err := relation.CreateShardFile(dir, 0, 3, 42)
	if err != nil {
		return err
	}
	for _, r := range rows {
		w.WriteRows(r)
	}
	return nil // want `handle w \(opened at line \d+\) is not closed on this path; defer w\.Close\(\) after the error check`
}
