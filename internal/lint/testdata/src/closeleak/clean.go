package closeleak

import (
	"io"
	"os"

	"sam/internal/relation"
)

// The canonical shape: defer right after the error check.
func readHeader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 32)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Branch-balanced manual closes cover every exit; io.Copy borrows the
// handle without taking ownership.
func copyOut(dst io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(dst, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// A returned handle is the caller's to close.
func openShard(path string) (*relation.ShardFileReader, error) {
	r, err := relation.OpenShardFile(path)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// A stored handle belongs to the struct's lifecycle now.
type sink struct {
	f *os.File
}

func (s *sink) open(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.f = f
	return nil
}

// Passing the handle to an unknown function transfers ownership.
func handOff(path string, register func(*os.File)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	register(f)
	return nil
}

// Captured by a cleanup closure: ownership moves into it.
func withTemp(dir string, use func(*os.File) error) error {
	f, err := os.CreateTemp(dir, "sam-*")
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()
	return use(f)
}
