package goleak

import "sync"

// defer wg.Done() covers every exit.
func worker(wg *sync.WaitGroup, in <-chan int, sink func(int)) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range in {
			sink(v)
		}
	}()
}

// defer close(done) signals no matter how the body leaves.
func notifier(done chan struct{}, work func() error) {
	go func() {
		defer close(done)
		if err := work(); err != nil {
			return
		}
		work()
	}()
}

// A send on every path: the shard-writer shape — the error return is
// preceded by a send, and so is the fallthrough exit.
func writerGoroutine(rows <-chan []byte, writeErr chan<- error, write func([]byte) error) {
	go func() {
		for r := range rows {
			if err := write(r); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()
}

// A deferred closure that closes the channel counts as a signal.
func deferredClosure(done chan struct{}, cleanup func()) {
	go func() {
		defer func() {
			cleanup()
			close(done)
		}()
		cleanup()
	}()
}

// An event loop that never exits has no exit paths to cover.
func eventLoop(events <-chan int, handle func(int)) {
	go func() {
		for {
			handle(<-events)
		}
	}()
}

func run() {}

// Goroutines on named functions are skipped: the analysis is
// intraprocedural and the body is not visible here.
func launchNamed() {
	go run()
}
