// Package goleak holds fixtures for the goroutine-completion analyzer:
// a goroutine launched on a function literal must signal completion
// (WaitGroup.Done, close, or a channel send) on every exit path.
package goleak

import "sync"

// The early error return skips the final send; the reader of out hangs.
func fanInLeak(in <-chan int, out chan<- int, bad func(int) error) {
	go func() { // want `goroutine can exit without signaling completion`
		total := 0
		for v := range in {
			if err := bad(v); err != nil {
				return
			}
			total += v
		}
		out <- total
	}()
}

// Add without a matching Done: wg.Wait() never returns.
func addWithoutDone(wg *sync.WaitGroup, work []int, sink func(int)) {
	wg.Add(len(work))
	for _, w := range work {
		w := w
		go func() { // want `goroutine can exit without signaling completion`
			sink(w)
		}()
	}
}
