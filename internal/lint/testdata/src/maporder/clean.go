package maporder

import (
	"fmt"
	"io"
	"sort"
)

// Order-free aggregation: the total is tainted but a plain return is
// not an order sink.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Iterating a pre-recorded order slice and indexing into the map is
// deterministic by construction.
func dumpOrdered(w io.Writer, order []string, m map[string]int) {
	for _, name := range order {
		fmt.Fprintf(w, "%s=%d\n", name, m[name])
	}
}

// Collect, sort, iterate: sort.Strings sanitizes the key slice, so the
// second loop's variable is not tainted.
func dumpSorted(w io.Writer, m map[string]int) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s=%d\n", k, m[k]); err != nil {
			return err
		}
	}
	return nil
}
