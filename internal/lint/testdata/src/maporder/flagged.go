// Package maporder holds fixtures for the map-iteration-order taint
// analyzer: values derived from ranging over a map must never reach a
// writer, a hash, an RNG seed, or a heap comparator.
package maporder

import (
	"bufio"
	"container/heap"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
)

// Iteration order leaks straight into the output stream.
func dumpDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `value derived from map iteration order reaches fmt\.Fprintf \(map range at line \d+\); iterate over sorted keys`
	}
}

// Taint propagates through the intermediate string before it hits the
// buffered writer.
func dumpChained(bw *bufio.Writer, m map[string]string) {
	for k := range m {
		line := k + "\n"
		bw.WriteString(line) // want `value derived from map iteration order reaches \(\*bufio\.Writer\)\.WriteString \(map range at line \d+\)`
	}
}

// Feeding keys to a hash in iteration order produces a different digest
// every run.
func hashKeys(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `value derived from map iteration order reaches \(io\.Writer\)\.Write \(map range at line \d+\)`
	}
	return h.Sum64()
}

// Seeding an RNG from whichever key happens to come last is
// run-dependent; both the source construction and the generator wrap
// are sinks.
func seedFromMap(m map[int]float64) *rand.Rand {
	var r *rand.Rand
	for k := range m {
		r = rand.New(rand.NewSource(int64(k))) // want `reaches math/rand\.New ` `reaches math/rand\.NewSource `
	}
	return r
}

// intHeap is a minimal heap.Interface for the merge-comparator sink.
type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Heap insertion order from a map range skews what the comparator sees.
func pushAll(h *intHeap, m map[string]int) {
	for k := range m {
		heap.Push(h, len(k)) // want `value derived from map iteration order reaches heap\.Push \(map range at line \d+\)`
	}
}

// dumpSortedKeys is the blessed pattern the suggested fixes rewrite the
// functions above into; it also keeps the sort import live so fixed
// output compiles against the same import block.
func dumpSortedKeys(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
