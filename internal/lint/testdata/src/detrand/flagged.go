package detrand

import (
	"math/rand"
	"time"
)

// Package-level math/rand functions draw from process-global state.
func globalDraws() int {
	n := rand.Intn(6)                  // want `global math/rand\.Intn draws from process-global RNG state`
	f := rand.Float64()                // want `global math/rand\.Float64`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle`
	return n + int(f)
}

// Clock-derived seeds break run-to-run determinism.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seed derived from time\.Now\(\)`
}

func reseeded(rng *rand.Rand) {
	rng.Seed(time.Now().Unix()) // want `RNG seed derived from time\.Now\(\)`
}
