package detrand

import (
	"math/rand"
	"time"
)

// An injected, deterministically seeded generator is the sanctioned form.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Clock reads outside seed position are fine: latency measurement is not
// a determinism hazard.
func timed(rng *rand.Rand) time.Duration {
	start := time.Now()
	_ = rng.Intn(10)
	return time.Since(start)
}
