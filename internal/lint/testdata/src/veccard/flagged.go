// Package veccard holds fixtures for the labeled-metric cardinality
// analyzer: With() handles are pre-resolved outside hot loops, and
// label values come from bounded sets.
package veccard

import (
	"fmt"
	"strconv"

	"sam/internal/obs"
)

// Resolving the handle inside the row loop pays the vector's lock and
// map lookup every iteration.
func recordRows(v *obs.CounterVec, rows [][]string) {
	for range rows {
		v.With("stream").Inc() // want `vector With\(\) inside a loop resolves the handle every iteration`
	}
}

// Stringifying a runtime integer makes the label set unbounded.
func recordShard(v *obs.CounterVec, shard int) {
	v.With(strconv.Itoa(shard)).Inc() // want `label value computed with strconv\.Itoa is unbounded`
}

// Sprintf labels are the same mistake with more steps.
func observeBatch(v *obs.HistogramVec, batch int, secs float64) {
	v.With(fmt.Sprintf("batch-%d", batch)).Observe(secs) // want `label value computed with fmt\.Sprintf is unbounded`
}
