package veccard

import "sam/internal/obs"

// Pre-resolved handle: the loop touches only the atomic counter.
func recordRowsResolved(v *obs.CounterVec, rows [][]string) {
	h := v.With("stream")
	for range rows {
		h.Inc()
	}
}

// A bounded setup loop over constants resolves handles on purpose —
// that is the registration-time pattern obs hooks use.
func resolveAll(v *obs.GaugeVec) map[string]*obs.Gauge {
	out := make(map[string]*obs.Gauge, 2)
	for _, pass := range []string{"shard", "weight"} {
		out[pass] = v.With(pass)
	}
	return out
}

// Constructors resolve eagerly by design.
func newMeters(v *obs.HistogramVec, phases []string) []*obs.Histogram {
	var hs []*obs.Histogram
	for _, phase := range phases {
		hs = append(hs, v.With(phase))
	}
	return hs
}
