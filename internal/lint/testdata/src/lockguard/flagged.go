// Package lockguard holds fixtures for the mutex-consistency analyzer:
// fields written under a struct's mutex anywhere in the package must
// never be touched bare elsewhere in it.
package lockguard

import "sync"

// registry guards count and items with mu in Add; Peek and Reset touch
// them without the lock.
type registry struct {
	mu    sync.Mutex
	count int
	items map[string]int
}

func (r *registry) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.items[name] = r.count
}

func (r *registry) Peek() int {
	return r.count // want `field registry\.count is written under registry\.mu elsewhere in this package; access it holding the lock`
}

func (r *registry) Reset() {
	r.count = 0                // want `field registry\.count is written under registry\.mu`
	r.items = map[string]int{} // want `field registry\.items is written under registry\.mu`
}

// table embeds its mutex; bump locks through the promoted method.
type table struct {
	sync.Mutex
	rows int
}

func (t *table) bump() {
	t.Lock()
	t.rows++
	t.Unlock()
}

func (t *table) Rows() int {
	return t.rows // want `field table\.rows is written under table\.Mutex`
}
