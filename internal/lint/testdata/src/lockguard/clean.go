package lockguard

import (
	"sync"
	"sync/atomic"
)

// store locks consistently in writers and readers alike.
type store struct {
	mu   sync.RWMutex
	vals map[string]int
	hits atomic.Int64
}

func (s *store) Set(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[k] = v
}

func (s *store) Get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits.Add(1)
	v, ok := s.vals[k]
	return v, ok
}

// NewStore is a constructor: the value is not shared yet.
func NewStore() *store {
	s := &store{vals: map[string]int{}}
	s.vals["seed"] = 0
	return s
}

// A locally-constructed value is private to this frame.
func snapshotLocal() int {
	tmp := store{vals: map[string]int{}}
	tmp.vals["x"] = 1
	return tmp.vals["x"]
}

// The Locked naming convention means the caller holds the lock.
func drainLocked(s *store) {
	for k := range s.vals {
		delete(s.vals, k)
	}
}
