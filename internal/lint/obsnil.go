package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"sam/internal/lint/analysis"
)

// ObsNil guards the nil-observer contract: a nil *obs.Hooks (or a Hooks
// with unset callbacks) must disable a signal, never panic. Callback
// fields are therefore invoked only through the struct's nil-safe wrapper
// methods (h.TrainStep, h.GenPhase, ...) — calling a field like
// h.OnTrainStep directly panics the moment an observer leaves it unset.
// Constructing Hooks values and nil-checking fields remain fine; only
// direct invocation is flagged. The obs package itself (which implements
// the wrappers) is exempt.
var ObsNil = &analysis.Analyzer{
	Name: "obsnil",
	Doc: "forbid invoking obs.Hooks callback fields directly; route through the " +
		"nil-safe wrapper methods so nil observers stay free",
	Run: runObsNil,
}

func runObsNil(pass *analysis.Pass) error {
	if pass.Pkg.Path() == obsPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := hooksCallbackField(pass.TypesInfo, sel)
			if field == nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"calling obs.Hooks.%s directly panics when the callback is unset; "+
					"use the nil-safe wrapper h.%s(...)",
				field.Name(), strings.TrimPrefix(field.Name(), "On"))
			return true
		})
	}
	return nil
}

// hooksCallbackField resolves sel to an On* func-typed field of obs.Hooks,
// or nil.
func hooksCallbackField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !strings.HasPrefix(field.Name(), "On") {
		return nil
	}
	if !isNamedType(selection.Recv(), obsPath, "Hooks") {
		return nil
	}
	return field
}
