// Package sqlparse translates the COUNT(*) SQL dialect found in real query
// logs (and in benchmarks like JOB-light) into workload queries: a FROM
// list of (optionally aliased) tables, and a WHERE conjunction of
// comparison predicates, IN lists, and equi-join conditions. Join
// conditions must correspond to the schema's foreign-key edges (the
// paper's supported class); everything else is rejected with a position
// in the error.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"sam/internal/relation"
	"sam/internal/workload"
)

// Parse translates one SQL statement into a validated workload query.
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT COUNT(*) FROM t1 [a1], t2 [a2], ...
//	[WHERE cond [AND cond]...] [;]
//
//	cond := ref (= | < | <= | > | >=) number
//	      | ref IN ( number [, number]... )
//	      | ref = ref            -- FK join condition
//	ref  := [alias.]column | alias.id
//
// Strict < and > are rewritten to the inclusive ≤/≥ the workload model
// uses (integer domains make them equivalent).
func Parse(sql string, s *relation.Schema) (*workload.Query, error) {
	p := &parser{toks: lex(sql), schema: s}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(s); err != nil {
		return nil, fmt.Errorf("sqlparse: %w", err)
	}
	return q, nil
}

// ParseAll splits input on ';' and parses every nonempty statement.
func ParseAll(input string, s *relation.Schema) ([]workload.Query, error) {
	var out []workload.Query
	for i, stmt := range strings.Split(input, ";") {
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		q, err := Parse(stmt, s)
		if err != nil {
			return nil, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, *q)
	}
	return out, nil
}

type tokKind int

const (
	tokWord tokKind = iota
	tokNumber
	tokSymbol // ( ) , . ; and comparison operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) []token {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokWord, input[i:j], i})
			i = j
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case c == '<' || c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			}
		case strings.ContainsRune("(),.;=*", c):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks
}

type parser struct {
	toks   []token
	pos    int
	schema *relation.Schema
	// alias → table name
	alias map[string]string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: pos %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectWord(w string) error {
	t := p.next()
	if t.kind != tokWord || !strings.EqualFold(t.text, w) {
		return fmt.Errorf("sqlparse: pos %d: expected %q, got %q", t.pos, w, t.text)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sqlparse: pos %d: expected %q, got %q", t.pos, s, t.text)
	}
	return nil
}

func (p *parser) parse() (*workload.Query, error) {
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectWord("COUNT"); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	if err := p.expectSym("*"); err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}

	q := &workload.Query{}
	p.alias = map[string]string{}
	for {
		t := p.next()
		if t.kind != tokWord {
			return nil, fmt.Errorf("sqlparse: pos %d: expected table name, got %q", t.pos, t.text)
		}
		table := t.text
		if p.schema.Table(table) == nil {
			return nil, fmt.Errorf("sqlparse: pos %d: unknown table %q", t.pos, table)
		}
		alias := table
		if p.cur().kind == tokWord && !isKeyword(p.cur().text) {
			alias = p.next().text
		}
		if _, dup := p.alias[alias]; dup {
			return nil, fmt.Errorf("sqlparse: duplicate alias %q", alias)
		}
		p.alias[alias] = table
		q.Tables = append(q.Tables, table)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}

	switch {
	case p.cur().kind == tokEOF:
		return q, nil
	case p.cur().kind == tokSymbol && p.cur().text == ";":
		p.next()
		return q, nil
	}
	if err := p.expectWord("WHERE"); err != nil {
		return nil, err
	}
	for {
		if err := p.cond(q); err != nil {
			return nil, err
		}
		if p.cur().kind == tokWord && strings.EqualFold(p.cur().text, "AND") {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

func isKeyword(w string) bool {
	switch strings.ToUpper(w) {
	case "WHERE", "AND", "IN", "FROM", "SELECT", "COUNT":
		return true
	}
	return false
}

// colRef is a parsed [alias.]column reference.
type colRef struct {
	table  string
	column string
	pos    int
}

func (p *parser) ref() (colRef, error) {
	t := p.next()
	if t.kind != tokWord {
		return colRef{}, fmt.Errorf("sqlparse: pos %d: expected column reference, got %q", t.pos, t.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.next()
		col := p.next()
		if col.kind != tokWord {
			return colRef{}, fmt.Errorf("sqlparse: pos %d: expected column after '.'", col.pos)
		}
		table, ok := p.alias[t.text]
		if !ok {
			return colRef{}, fmt.Errorf("sqlparse: pos %d: unknown alias %q", t.pos, t.text)
		}
		return colRef{table: table, column: col.text, pos: t.pos}, nil
	}
	// Bare column: resolve against the single table that has it.
	var owner string
	for alias, table := range p.alias {
		_ = alias
		if p.schema.Table(table).Col(t.text) != nil {
			if owner != "" && owner != table {
				return colRef{}, fmt.Errorf("sqlparse: pos %d: ambiguous column %q", t.pos, t.text)
			}
			owner = table
		}
	}
	if owner == "" {
		return colRef{}, fmt.Errorf("sqlparse: pos %d: unknown column %q", t.pos, t.text)
	}
	return colRef{table: owner, column: t.text, pos: t.pos}, nil
}

// cond parses one WHERE conjunct into q.
func (p *parser) cond(q *workload.Query) error {
	left, err := p.ref()
	if err != nil {
		return err
	}
	t := p.next()
	if t.kind == tokWord && strings.EqualFold(t.text, "IN") {
		if err := p.expectSym("("); err != nil {
			return err
		}
		var codes []int32
		for {
			n := p.next()
			if n.kind != tokNumber {
				return fmt.Errorf("sqlparse: pos %d: expected number in IN list", n.pos)
			}
			v, err := strconv.ParseInt(n.text, 10, 32)
			if err != nil {
				return fmt.Errorf("sqlparse: pos %d: %v", n.pos, err)
			}
			codes = append(codes, int32(v))
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return err
		}
		q.Preds = append(q.Preds, workload.Predicate{
			Table: left.table, Column: left.column, Op: workload.IN, Codes: codes,
		})
		return nil
	}
	if t.kind != tokSymbol {
		return fmt.Errorf("sqlparse: pos %d: expected operator, got %q", t.pos, t.text)
	}
	op := t.text
	// Join condition: ref = ref.
	if op == "=" && p.cur().kind == tokWord && !isNumberAhead(p.cur()) {
		right, err := p.ref()
		if err != nil {
			return err
		}
		return p.checkJoin(left, right)
	}
	n := p.next()
	if n.kind != tokNumber {
		return fmt.Errorf("sqlparse: pos %d: expected literal, got %q", n.pos, n.text)
	}
	v, err := strconv.ParseInt(n.text, 10, 32)
	if err != nil {
		return fmt.Errorf("sqlparse: pos %d: %v", n.pos, err)
	}
	pred := workload.Predicate{Table: left.table, Column: left.column}
	switch op {
	case "=":
		pred.Op = workload.EQ
		pred.Code = int32(v)
	case "<=":
		pred.Op = workload.LE
		pred.Code = int32(v)
	case ">=":
		pred.Op = workload.GE
		pred.Code = int32(v)
	case "<":
		pred.Op = workload.LE
		pred.Code = int32(v - 1)
	case ">":
		pred.Op = workload.GE
		pred.Code = int32(v + 1)
	default:
		return fmt.Errorf("sqlparse: pos %d: unsupported operator %q", t.pos, op)
	}
	q.Preds = append(q.Preds, pred)
	return nil
}

func isNumberAhead(t token) bool { return t.kind == tokNumber }

// checkJoin accepts a join condition exactly when it matches a schema FK
// edge between the two referenced tables (either direction); the join
// itself is implied by the query's table set, so nothing is appended.
func (p *parser) checkJoin(a, b colRef) error {
	ta, tb := p.schema.Table(a.table), p.schema.Table(b.table)
	if ta == nil || tb == nil {
		return fmt.Errorf("sqlparse: join over unknown tables %q, %q", a.table, b.table)
	}
	if ta.Parent == b.table || tb.Parent == a.table {
		return nil
	}
	return fmt.Errorf("sqlparse: pos %d: join %s.%s = %s.%s does not match a foreign-key edge",
		a.pos, a.table, a.column, b.table, b.column)
}
