package sqlparse

import (
	"strings"
	"testing"

	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/relation"
	"sam/internal/workload"
)

func imdbSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return datagen.IMDB(1, 200)
}

func TestParseSingleTable(t *testing.T) {
	s := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*) FROM title WHERE kind_id <= 3 AND production_year >= 50", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0] != "title" {
		t.Fatalf("tables %v", q.Tables)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds %v", q.Preds)
	}
	if q.Preds[0].Op != workload.LE || q.Preds[0].Code != 3 {
		t.Fatalf("pred 0: %+v", q.Preds[0])
	}
}

func TestParseJoinWithAliases(t *testing.T) {
	s := imdbSchema(t)
	sql := `SELECT COUNT(*) FROM title t, cast_info ci
	        WHERE t.id = ci.movie_id AND t.kind_id = 2 AND ci.role_id <= 5;`
	q, err := Parse(sql, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 {
		t.Fatalf("tables %v", q.Tables)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("join condition leaked into predicates: %v", q.Preds)
	}
	// Parsed query must execute.
	if card := engine.Card(s, q); card < 0 {
		t.Fatal("unexecutable query")
	}
}

func TestParseStrictComparisonsRewritten(t *testing.T) {
	s := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*) FROM title WHERE kind_id < 3 AND production_year > 50", s)
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Op != workload.LE || q.Preds[0].Code != 2 {
		t.Fatalf("< not rewritten: %+v", q.Preds[0])
	}
	if q.Preds[1].Op != workload.GE || q.Preds[1].Code != 51 {
		t.Fatalf("> not rewritten: %+v", q.Preds[1])
	}
}

func TestParseINList(t *testing.T) {
	s := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*) FROM cast_info ci, title t WHERE t.id = ci.movie_id AND ci.role_id IN (1, 3, 5)", s)
	if err != nil {
		t.Fatal(err)
	}
	var in *workload.Predicate
	for i := range q.Preds {
		if q.Preds[i].Op == workload.IN {
			in = &q.Preds[i]
		}
	}
	if in == nil || len(in.Codes) != 3 {
		t.Fatalf("IN predicate missing: %v", q.Preds)
	}
}

func TestParseAllSplitsStatements(t *testing.T) {
	s := imdbSchema(t)
	input := `SELECT COUNT(*) FROM title WHERE kind_id = 1;
	          SELECT COUNT(*) FROM title WHERE kind_id = 2;`
	qs, err := ParseAll(input, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("parsed %d statements", len(qs))
	}
}

func TestParseSQLAgainstEngine(t *testing.T) {
	// Parsed cardinalities must match hand-built queries.
	s := imdbSchema(t)
	q1, err := Parse("SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id AND mk.keyword_id <= 100", s)
	if err != nil {
		t.Fatal(err)
	}
	q2 := workload.Query{
		Tables: []string{"title", "movie_keyword"},
		Preds: []workload.Predicate{
			{Table: "movie_keyword", Column: "keyword_id", Op: workload.LE, Code: 100},
		},
	}
	if engine.Card(s, q1) != engine.Card(s, &q2) {
		t.Fatal("SQL and hand-built query disagree")
	}
}

func TestParseErrors(t *testing.T) {
	s := imdbSchema(t)
	cases := []string{
		"",
		"SELECT * FROM title",
		"SELECT COUNT(*) FROM nope",
		"SELECT COUNT(*) FROM title WHERE bogus = 1",
		"SELECT COUNT(*) FROM title WHERE kind_id == 1 OR 1",
		"SELECT COUNT(*) FROM title t, title u WHERE t.kind_id = 1", // duplicate table via Validate
		"SELECT COUNT(*) FROM title WHERE kind_id IN ()",
		"SELECT COUNT(*) FROM cast_info ci, movie_keyword mk WHERE ci.movie_id = mk.movie_id", // non-FK join (+ disconnected)
		"SELECT COUNT(*) FROM title WHERE kind_id <= 99999",                                   // out of domain
		"SELECT COUNT(*) FROM title WHERE kind_id = 1 garbage",
	}
	for i, sql := range cases {
		if _, err := Parse(sql, s); err == nil {
			t.Fatalf("case %d accepted: %q", i, sql)
		}
	}
}

func TestBareColumnAmbiguity(t *testing.T) {
	s := imdbSchema(t)
	// info_type_id exists in both movie_info and movie_info_idx.
	_, err := Parse("SELECT COUNT(*) FROM title t, movie_info mi, movie_info_idx mii WHERE t.id = mi.movie_id AND t.id = mii.movie_id AND info_type_id = 1", s)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column accepted: %v", err)
	}
}
