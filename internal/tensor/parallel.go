package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The matmul kernels shard output rows across a bounded set of extra
// goroutines. A global token budget (rather than a per-call pool) keeps the
// total number of kernel goroutines at the worker limit even when many
// training workers issue matmuls concurrently: a caller takes whatever
// tokens are free and runs the rest of the work inline, so under full
// training parallelism the kernels degrade gracefully to serial instead of
// oversubscribing the machine.
var (
	parLimit  atomic.Int32 // max goroutines (including the caller) per kernel
	parTokens atomic.Int32 // global budget of extra kernel goroutines
)

func init() {
	n := runtime.GOMAXPROCS(0)
	parLimit.Store(int32(n))
	parTokens.Store(int32(n - 1))
}

// parallelMinFlops is the work threshold (multiply-adds) below which a
// kernel always runs serially: spawning a goroutine costs on the order of a
// microsecond, so a shard must carry at least ~256K multiply-adds to pay
// for itself. Each extra worker requires another threshold's worth of work.
const parallelMinFlops = 1 << 18

// SetMatMulWorkers overrides the kernel worker limit (including the calling
// goroutine); n ≤ 1 forces serial kernels. It must not be called while
// matmuls are in flight — intended for tests, benchmarks, and process
// startup.
func SetMatMulWorkers(n int) {
	if n < 1 {
		n = 1
	}
	parLimit.Store(int32(n))
	parTokens.Store(int32(n - 1))
}

// MatMulWorkers returns the current kernel worker limit.
func MatMulWorkers() int { return int(parLimit.Load()) }

// AcquireKernelTokens claims up to n extra-worker tokens from the shared
// budget and returns how many were obtained (possibly zero). Long-running
// phases that spawn their own goroutines — batched sampling workers, most
// notably — reserve their parallelism here so the matmul kernels and the
// phase share one core budget instead of competing: a sampling worker
// holding a token is a core the kernels will not also try to use. Callers
// must return every acquired token with ReleaseKernelTokens.
func AcquireKernelTokens(n int) int {
	acquired := 0
	for acquired < n {
		cur := parTokens.Load()
		if cur <= 0 {
			break
		}
		if parTokens.CompareAndSwap(cur, cur-1) {
			acquired++
		}
	}
	return acquired
}

// ReleaseKernelTokens returns tokens previously obtained from
// AcquireKernelTokens to the shared budget.
func ReleaseKernelTokens(n int) {
	if n > 0 {
		parTokens.Add(int32(n))
	}
}

// rangeKernel computes dst rows [lo, hi) from a and b, accumulating into
// dst when acc is set. spans, when non-nil, bounds the nonzero column range
// of the masked operand per row (see MaskedWeight); plain kernels ignore
// it. Implementations must be safe for concurrent calls on disjoint ranges.
type rangeKernel func(dst, a, b *Tensor, spans []int, lo, hi int, acc bool)

// runKernel runs k over [0, rows) split into contiguous shards, using up to
// limit workers when the kernel is large enough and tokens are free. The
// operands are threaded explicitly (rather than captured in a closure) so
// the serial fast path — which dominates for the small per-query DPS
// matrices — performs no heap allocation.
func runKernel(rows, flops int, k rangeKernel, dst, a, b *Tensor, spans []int, acc bool) {
	w := int(parLimit.Load())
	if byFlops := flops / parallelMinFlops; w > byFlops {
		w = byFlops
	}
	if w > rows {
		w = rows
	}
	if w > 1 {
		extra := 0
		for extra < w-1 {
			cur := parTokens.Load()
			if cur <= 0 {
				break
			}
			if parTokens.CompareAndSwap(cur, cur-1) {
				extra++
			}
		}
		if extra > 0 {
			workers := extra + 1
			chunk := (rows + workers - 1) / workers
			var wg sync.WaitGroup
			for t := 1; t < workers; t++ {
				lo := t * chunk
				hi := lo + chunk
				if hi > rows {
					hi = rows
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					k(dst, a, b, spans, lo, hi, acc)
				}(lo, hi)
			}
			if chunk > rows {
				chunk = rows
			}
			k(dst, a, b, spans, 0, chunk, acc)
			wg.Wait()
			parTokens.Add(int32(extra))
			return
		}
	}
	k(dst, a, b, spans, 0, rows, acc)
}
