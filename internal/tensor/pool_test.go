package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestGraphResetReuse checks that a Reset tape recycles its buffers: the
// second identical forward pass allocates nothing new and still computes the
// right values and gradients.
func TestGraphResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := New(4, 3)
	w.Randn(rng, 0.5)
	x := New(2, 4)
	x.Randn(rng, 1)

	run := func(g *Graph) (float64, []float64) {
		p := g.Param(w)
		out := g.MatMul(g.Const(x), p)
		loss := g.Mean(g.Square(out))
		g.Backward(loss)
		return loss.Val.Data[0], g.ParamGrad(w).Data
	}

	g := NewGraph()
	loss1, grad1 := run(g)
	want := append([]float64(nil), grad1...)

	g.Reset()
	loss2, grad2 := run(g)
	if loss1 != loss2 {
		t.Fatalf("loss changed across Reset: %v vs %v", loss1, loss2)
	}
	for i := range want {
		if grad2[i] != want[i] {
			t.Fatalf("grad[%d] changed across Reset: %v vs %v", i, grad2[i], want[i])
		}
	}
}

// TestGraphNewTensorZeroed checks pooled scratch comes back zeroed even when
// the recycled buffer held garbage.
func TestGraphNewTensorZeroed(t *testing.T) {
	g := NewGraph()
	a := g.NewTensor(3, 5)
	a.Fill(42)
	g.Reset()
	b := g.NewTensor(3, 5)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: %v", i, v)
		}
	}
}

// TestMaskedWeightInvalidation checks the W∘Mask cache tracks MarkDirty.
func TestMaskedWeightInvalidation(t *testing.T) {
	w := FromSlice(2, 2, []float64{1, 2, 3, 4})
	mask := FromSlice(2, 2, []float64{1, 0, 0, 1})
	c := NewMaskedWeight(w, mask)
	got := c.Get()
	wantA := []float64{1, 0, 0, 4}
	for i := range wantA {
		if got.Data[i] != wantA[i] {
			t.Fatalf("initial cache wrong: %v", got.Data)
		}
	}
	if c.Get() != got {
		t.Fatalf("clean cache recomputed a different tensor")
	}

	w.Data[0] = 10
	w.Data[1] = 20
	w.MarkDirty()
	got = c.Get()
	wantB := []float64{10, 0, 0, 4}
	for i := range wantB {
		if got.Data[i] != wantB[i] {
			t.Fatalf("post-dirty cache wrong: %v", got.Data)
		}
	}
}

// TestMaskedMatMulMatchesReference checks the fused op against the
// MulConst+MatMul composition it replaces, forward and backward, across
// mask styles (random interior zeros, MADE-style contiguous suffixes,
// all-zero rows) and shapes large enough to drive the 4-row blocked span
// kernels through their intersection and leftover paths.
func TestMaskedMatMulMatchesReference(t *testing.T) {
	maskStyles := map[string]func(rng *rand.Rand, mask *Tensor){
		"random": func(rng *rand.Rand, mask *Tensor) {
			for i := range mask.Data {
				if rng.Intn(2) == 1 {
					mask.Data[i] = 1
				}
			}
		},
		"suffix": func(rng *rand.Rand, mask *Tensor) {
			// MADE-like: each row's nonzeros are one suffix, of a length
			// that varies row to row so adjacent rows in a 4-block have
			// different spans.
			for r := 0; r < mask.Rows; r++ {
				for c := rng.Intn(mask.Cols + 1); c < mask.Cols; c++ {
					mask.Set(r, c, 1)
				}
			}
		},
		"zero-rows": func(rng *rand.Rand, mask *Tensor) {
			for r := 0; r < mask.Rows; r++ {
				if r%3 == 0 {
					continue // entire row masked out
				}
				for c := 0; c < mask.Cols; c++ {
					if rng.Intn(4) > 0 {
						mask.Set(r, c, 1)
					}
				}
			}
		},
	}
	shapes := []struct{ batch, in, out int }{
		{3, 5, 4},
		{8, 37, 29}, // odd sizes: blocked paths plus scalar tails
		{16, 64, 48},
	}
	for name, fill := range maskStyles {
		for _, sh := range shapes {
			rng := rand.New(rand.NewSource(11))
			w := New(sh.in, sh.out)
			w.Randn(rng, 0.7)
			mask := New(sh.in, sh.out)
			fill(rng, mask)
			x := New(sh.batch, sh.in)
			x.Randn(rng, 1)
			cache := NewMaskedWeight(w, mask)

			gRef := NewGraph()
			xr := gRef.Param(x)
			wr := gRef.Param(w)
			outRef := gRef.MatMul(xr, gRef.MulConst(wr, mask))
			lossRef := gRef.Mean(gRef.Square(outRef))
			gRef.Backward(lossRef)

			gFused := NewGraph()
			xf := gFused.Param(x)
			wf := gFused.Param(w)
			outFused := gFused.MaskedMatMul(xf, wf, cache)
			lossFused := gFused.Mean(gFused.Square(outFused))
			gFused.Backward(lossFused)

			for i := range outRef.Val.Data {
				if !almostEq(outRef.Val.Data[i], outFused.Val.Data[i], 1e-12) {
					t.Fatalf("%s forward mismatch at %d: %v vs %v", name, i, outRef.Val.Data[i], outFused.Val.Data[i])
				}
			}
			for i := range w.Data {
				if !almostEq(wr.Grad.Data[i], wf.Grad.Data[i], 1e-12) {
					t.Fatalf("%s dW mismatch at %d: %v vs %v", name, i, wr.Grad.Data[i], wf.Grad.Data[i])
				}
			}
			for i := range x.Data {
				if !almostEq(xr.Grad.Data[i], xf.Grad.Data[i], 1e-12) {
					t.Fatalf("%s dX mismatch at %d: %v vs %v", name, i, xr.Grad.Data[i], xf.Grad.Data[i])
				}
			}
		}
	}
}

// TestMaskedMatMulGradCheck numerically verifies the fused op's weight
// gradient. The closure marks W dirty so the cache follows the finite
// differences.
func TestMaskedMatMulGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := New(4, 3)
	w.Randn(rng, 0.6)
	mask := New(4, 3)
	for i := range mask.Data {
		if rng.Intn(3) > 0 {
			mask.Data[i] = 1
		}
	}
	x := New(2, 4)
	x.Randn(rng, 1)
	cache := NewMaskedWeight(w, mask)
	gradCheck(t, w, func(g *Graph, p *Node) *Node {
		w.MarkDirty()
		out := g.MaskedMatMul(g.Const(x), p, cache)
		return g.Mean(g.Square(out))
	})
}

// TestParallelKernelsMatchSerial checks every matmul kernel produces
// bit-identical results with 1 and 4 workers across shapes that exercise the
// blocked, tiled, remainder, and sparse paths.
func TestParallelKernelsMatchSerial(t *testing.T) {
	old := MatMulWorkers()
	defer SetMatMulWorkers(old)

	rng := rand.New(rand.NewSource(17))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {8, 64, 8}, {33, 65, 129}, {64, 512, 64},
	}
	for _, sh := range shapes {
		a := New(sh.m, sh.k)
		a.Randn(rng, 1)
		bT := New(sh.k, sh.n) // operand for a·b
		bT.Randn(rng, 1)
		bRowMajor := New(sh.n, sh.k) // operand for a·bᵀ
		bRowMajor.Randn(rng, 1)
		aTall := New(sh.k, sh.m) // operand for aᵀ·b, a is k×m
		aTall.Randn(rng, 1)
		bTall := New(sh.k, sh.n)
		bTall.Randn(rng, 1)
		// A sparse a exercises the density-dispatch path.
		aSparse := New(sh.m, sh.k)
		for i := 0; i < sh.m; i++ {
			aSparse.Set(i, rng.Intn(sh.k), 1)
		}

		type kernel struct {
			name string
			dst  func() *Tensor
			run  func(dst *Tensor)
		}
		kernels := []kernel{
			{"MatMul", func() *Tensor { return New(sh.m, sh.n) }, func(d *Tensor) { MatMulInto(d, a, bT) }},
			{"MatMulSparse", func() *Tensor { return New(sh.m, sh.n) }, func(d *Tensor) { MatMulInto(d, aSparse, bT) }},
			{"MatMulAdd", func() *Tensor { d := New(sh.m, sh.n); d.Fill(0.5); return d }, func(d *Tensor) { MatMulAddInto(d, a, bT) }},
			{"MatMulTransA", func() *Tensor { return New(sh.m, sh.n) }, func(d *Tensor) { MatMulTransAInto(d, aTall, bTall) }},
			{"MatMulTransAAdd", func() *Tensor { d := New(sh.m, sh.n); d.Fill(0.5); return d }, func(d *Tensor) { MatMulTransAAddInto(d, aTall, bTall) }},
			{"MatMulTransB", func() *Tensor { return New(sh.m, sh.n) }, func(d *Tensor) { MatMulTransBInto(d, a, bRowMajor) }},
			{"MatMulTransBAdd", func() *Tensor { d := New(sh.m, sh.n); d.Fill(0.5); return d }, func(d *Tensor) { MatMulTransBAddInto(d, a, bRowMajor) }},
		}
		for _, kr := range kernels {
			SetMatMulWorkers(1)
			serial := kr.dst()
			kr.run(serial)
			SetMatMulWorkers(4)
			par := kr.dst()
			kr.run(par)
			for i := range serial.Data {
				if serial.Data[i] != par.Data[i] {
					t.Fatalf("%s %dx%dx%d: serial/parallel mismatch at %d: %v vs %v",
						kr.name, sh.m, sh.k, sh.n, i, serial.Data[i], par.Data[i])
				}
			}
		}
	}
}

// TestWarmTapeAllocs checks the headline pooling property: a warm tape's
// forward+backward step performs no heap allocation. Kernels are forced
// serial because the parallel path allocates goroutine bookkeeping.
func TestWarmTapeAllocs(t *testing.T) {
	old := MatMulWorkers()
	SetMatMulWorkers(1)
	defer SetMatMulWorkers(old)

	rng := rand.New(rand.NewSource(19))
	w := New(32, 16)
	w.Randn(rng, 0.5)
	b := New(1, 16)
	mask := New(32, 16)
	for i := range mask.Data {
		if rng.Intn(2) == 1 {
			mask.Data[i] = 1
		}
	}
	cache := NewMaskedWeight(w, mask)
	x := New(8, 32)
	x.Randn(rng, 1)

	g := NewGraph()
	step := func() {
		g.Reset()
		p := g.Param(w)
		out := g.AddRow(g.MaskedMatMul(g.Const(x), p, cache), g.Param(b))
		h := g.ReLU(out)
		sm := g.SoftmaxRows(h)
		loss := g.Mean(g.Square(g.Log(sm)))
		g.Backward(loss)
	}
	step() // warm the pool
	step() // reach steady-state capacities
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Fatalf("warm forward+backward step allocates %v times, want 0", n)
	}
}

// TestParallelPooledGraphsRace exercises the parallel kernels and per-worker
// pooled tapes from concurrent goroutines; meaningful under -race.
func TestParallelPooledGraphsRace(t *testing.T) {
	old := MatMulWorkers()
	SetMatMulWorkers(4)
	defer SetMatMulWorkers(old)

	w := New(64, 48)
	mask := New(64, 48)
	seedRng := rand.New(rand.NewSource(23))
	w.Randn(seedRng, 0.5)
	for i := range mask.Data {
		if seedRng.Intn(2) == 1 {
			mask.Data[i] = 1
		}
	}
	cache := NewMaskedWeight(w, mask)

	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			g := NewGraph()
			x := New(16, 64)
			for step := 0; step < 10; step++ {
				g.Reset()
				x.Randn(rng, 1)
				p := g.Param(w)
				out := g.MaskedMatMul(g.Const(x), p, cache)
				big := g.MatMulTB(out, g.Const(w)) // 16×48 · (64×48)ᵀ → 16×64
				loss := g.Mean(g.Square(big))
				g.Backward(loss)
				if math.IsNaN(loss.Val.Data[0]) {
					t.Error("NaN loss")
					return
				}
			}
		}(int64(worker) + 31)
	}
	wg.Wait()

	// Concurrent Get with a dirty cache: all readers must agree.
	w.Data[0] += 1
	w.MarkDirty()
	var wg2 sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			got := cache.Get()
			if got.Data[0] != w.Data[0]*mask.Data[0] {
				t.Errorf("stale cache read: %v", got.Data[0])
			}
		}()
	}
	wg2.Wait()
}
