package tensor

import "fmt"

// Span-aware matmul kernels for masked weight matrices. The mask's per-row
// nonzero column spans (precomputed by MaskedWeight) bound where the cached
// product W∘Mask can be nonzero, so each kernel touches only those columns.
// For MADE's sorted-degree masks the spans are contiguous suffixes covering
// about half of each row, which halves the multiply-add work of every
// masked layer. The kernels remain correct for arbitrary masks: columns
// inside a span that happen to be masked just multiply by zero.
//
// The register-blocked paths process four weight rows at a time; rows in a
// block may have different spans, so the block handles the intersection
// with axpy4/dot4 and the per-row leftovers scalar. Sorted-degree masks
// give near-identical spans for adjacent rows, keeping the leftovers tiny.

// MatMulMaskedInto computes dst = a·mw for a masked weight product mw with
// the given spans (nil spans fall back to the dense kernel).
func MatMulMaskedInto(dst, a, mw *Tensor, spans []int) {
	checkMatMul(dst, a, mw)
	if spans == nil {
		runKernel(a.Rows, a.Rows*a.Cols*mw.Cols, matMulRange, dst, a, mw, nil, false)
		return
	}
	runKernel(a.Rows, a.Rows*a.Cols*mw.Cols, matMulMaskedRange, dst, a, mw, spans, false)
}

// MatMulMaskedTransBAddInto computes dst += a·mwᵀ — the input gradient of a
// masked layer (a is the output gradient).
func MatMulMaskedTransBAddInto(dst, a, mw *Tensor, spans []int) {
	checkMatMulTransB(dst, a, mw)
	if spans == nil {
		runKernel(a.Rows, a.Rows*a.Cols*mw.Rows, matMulTransBRange, dst, a, mw, nil, true)
		return
	}
	runKernel(a.Rows, a.Rows*a.Cols*mw.Rows, matMulMaskedTransBRange, dst, a, mw, spans, true)
}

// MatMulMaskedTransAInto computes dst = aᵀ·b restricted to each dst row's
// span — the weight-gradient shape of a masked layer. Columns outside a
// row's span are zeroed.
func MatMulMaskedTransAInto(dst, a, b *Tensor, spans []int) {
	checkMatMulTransA(dst, a, b)
	if spans == nil {
		runKernel(a.Cols, a.Rows*a.Cols*b.Cols, matMulTransARange, dst, a, b, nil, false)
		return
	}
	runKernel(a.Cols, a.Rows*a.Cols*b.Cols, matMulMaskedTransARange, dst, a, b, spans, false)
}

// SpansSuffixMonotone reports whether spans describe rows whose nonzeros
// are suffixes [start, n) with nondecreasing starts — the shape MADE's
// sorted-degree masks always have (empty rows encode as [n, n) and must
// come last). The suffix kernels below exploit this: a quad's span
// intersection is just the last row's span, and the rows reaching a column
// slice form a prefix.
func SpansSuffixMonotone(spans []int, n int) bool {
	prev := 0
	for k := 0; 2*k < len(spans); k++ {
		s, e := spans[2*k], spans[2*k+1]
		if s < prev || e != n {
			return false
		}
		prev = s
	}
	return true
}

// MatMulMaskedSuffixInto computes dst = a·mw for a masked weight whose
// spans satisfy SpansSuffixMonotone. Compared to MatMulMaskedInto it hoists
// all span-intersection work out of the inner loops: a quad of weight rows
// intersects to the last row's suffix, and the at most three leftover
// prefixes are applied scalar (adjacent sorted-degree rows have nearly
// identical starts, so leftovers are tiny). The kernel is not k-tiled —
// it targets the narrow hidden layers of batched ancestral sampling.
func MatMulMaskedSuffixInto(dst, a, mw *Tensor, spans []int) {
	checkMatMul(dst, a, mw)
	runKernel(a.Rows, a.Rows*a.Cols*mw.Cols, matMulSuffixRange, dst, a, mw, spans, false)
}

// matMulSuffixRange computes rows [lo, hi) of dst = a·mw assuming
// suffix-monotone spans.
func matMulSuffixRange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if cols == 0 || n == 0 {
		return
	}
	if looksSparse(a.Data[lo*cols : hi*cols]) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				if s := spans[2*k]; s < n {
					axpy1(drow[s:], b.Data[k*n+s:(k+1)*n], av)
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= cols; k += 4 {
			v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			s := spans[2*(k+3)] // monotone: the quad's widest start
			if s < n {
				axpy4(drow[s:],
					b.Data[k*n+s:(k+1)*n], b.Data[(k+1)*n+s:(k+2)*n],
					b.Data[(k+2)*n+s:(k+3)*n], b.Data[(k+3)*n+s:(k+4)*n],
					v0, v1, v2, v3)
			}
			if spans[2*k] < s { // leftover prefixes of rows k..k+2
				vs := [3]float64{v0, v1, v2}
				for t := 0; t < 3; t++ {
					v := vs[t]
					if v == 0 {
						continue
					}
					if ks := spans[2*(k+t)]; ks < s {
						axpy1(drow[ks:s], b.Data[(k+t)*n+ks:(k+t)*n+s], v)
					}
				}
			}
		}
		for ; k < cols; k++ {
			if av := arow[k]; av != 0 {
				if s := spans[2*k]; s < n {
					axpy1(drow[s:], b.Data[k*n+s:(k+1)*n], av)
				}
			}
		}
	}
}

// MatMulMaskedSuffixHeadInto computes only columns [0, head) of
// dst = a·mw for suffix-monotone spans; the remaining dst columns are left
// untouched. Batched ancestral sampling uses it to evaluate a hidden layer
// restricted to the unit prefix that the current column's logits can
// actually depend on (suffix starts are sorted degree boundaries, so that
// dependency set is always a prefix). Rows of mw whose suffix starts at or
// past head contribute nothing and are skipped wholesale.
func MatMulMaskedSuffixHeadInto(dst, a, mw *Tensor, spans []int, head int) {
	MatMulMaskedSuffixHeadRangeInto(dst, a, mw, spans, 0, head)
}

// MatMulMaskedSuffixHeadRangeInto computes only columns [lo, head) of
// dst = a·mw for suffix-monotone spans; dst columns outside the range are
// left untouched. The prefix activation cache uses it to recompute just
// the stale tail of a hidden layer: columns [0, lo) already hold valid
// activations for the current input, so only units the last-changed input
// column can reach are re-evaluated.
func MatMulMaskedSuffixHeadRangeInto(dst, a, mw *Tensor, spans []int, lo, head int) {
	checkMatMul(dst, a, mw)
	if lo < 0 || lo > head || head > mw.Cols {
		panic(fmt.Sprintf("tensor: suffix range [%d,%d) out of range [0,%d]", lo, head, mw.Cols))
	}
	cols, n := a.Cols, mw.Cols
	kEnd := 0
	for k := 0; k < cols; k++ {
		if spans[2*k] < head {
			kEnd = k + 1
		} else {
			break
		}
	}
	sparse := a.Rows > 0 && looksSparse(a.Data)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*cols : i*cols+kEnd]
		drow := dst.Data[i*n : i*n+head]
		for j := lo; j < head; j++ {
			drow[j] = 0
		}
		if sparse {
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s := spans[2*k]
				if s < lo {
					s = lo
				}
				axpy1(drow[s:], mw.Data[k*n+s:k*n+head], av)
			}
			continue
		}
		k := 0
		for ; k+4 <= kEnd; k += 4 {
			v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			s := spans[2*(k+3)] // monotone: the quad's widest start, < head
			if sc := max(s, lo); sc < head {
				axpy4(drow[sc:],
					mw.Data[k*n+sc:k*n+head], mw.Data[(k+1)*n+sc:(k+1)*n+head],
					mw.Data[(k+2)*n+sc:(k+2)*n+head], mw.Data[(k+3)*n+sc:(k+3)*n+head],
					v0, v1, v2, v3)
			}
			if spans[2*k] < s && s > lo {
				vs := [3]float64{v0, v1, v2}
				for t := 0; t < 3; t++ {
					v := vs[t]
					if v == 0 {
						continue
					}
					if ks := max(spans[2*(k+t)], lo); ks < s {
						axpy1(drow[ks:s], mw.Data[(k+t)*n+ks:(k+t)*n+s], v)
					}
				}
			}
		}
		for ; k < kEnd; k++ {
			if av := arow[k]; av != 0 {
				s := max(spans[2*k], lo)
				axpy1(drow[s:], mw.Data[k*n+s:k*n+head], av)
			}
		}
	}
}

// MatMulNZSuffixHeadRangeInto computes columns [lo, head) of dst = a·mw for
// suffix-monotone spans, visiting only the entries of each a row whose
// (ascending) indices are listed in nz[i] instead of scanning the row for
// nonzeros. Batched ancestral sampling uses it for the one-hot input layer:
// the sampler's buffer already knows which inputs it set, so the per-lane
// cost is proportional to the sampled prefix length rather than the input
// width. Listed entries may be zero (they just add nothing); unlisted
// entries must be zero.
func MatMulNZSuffixHeadRangeInto(dst, a *Tensor, nz [][]int, mw *Tensor, spans []int, lo, head int) {
	checkMatMul(dst, a, mw)
	if lo < 0 || lo > head || head > mw.Cols {
		panic(fmt.Sprintf("tensor: suffix range [%d,%d) out of range [0,%d]", lo, head, mw.Cols))
	}
	cols, n := a.Cols, mw.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*n : i*n+head]
		for j := lo; j < head; j++ {
			drow[j] = 0
		}
		for _, k := range nz[i] {
			s := spans[2*k]
			if s >= head {
				break // monotone: every later entry starts later still
			}
			if s < lo {
				s = lo
			}
			axpy1(drow[s:], mw.Data[k*n+s:k*n+head], arow[k])
		}
	}
}

// The prefix-dot kernels below are the transposed formulation of the
// suffix kernels: with wt = (W∘Mask)ᵀ, output unit j depends on the input
// PREFIX [0, prefix[j]) (the transpose of sorted suffix spans), so each
// output is one dense dot product with four accumulator chains, no
// destination zeroing, and the bias (and ReLU) fused into the write. At
// ancestral-sampling widths this removes the per-quad span and slice
// bookkeeping that dominates the axpy formulation.

// MatMulPrefixReLUInto computes dst[:, :head] = relu(a·wtᵀ + bias), where
// wt holds the masked weight transposed (wt row j = weight column j) and
// prefix[j] is the nonzero prefix length of wt row j, nondecreasing in j.
// dst columns at or past head are left untouched.
func MatMulPrefixReLUInto(dst, a, wt *Tensor, prefix []int, bias []float64, head int) {
	MatMulPrefixReLURangeInto(dst, a, wt, prefix, bias, 0, head)
}

// MatMulPrefixReLURangeInto computes dst[:, lo:head] = relu(a·wtᵀ + bias)
// restricted to output units [lo, head); columns outside the range are left
// untouched. This is the prefix-cache form of MatMulPrefixReLUInto: units
// below lo already hold valid activations for the current input and are
// skipped wholesale.
func MatMulPrefixReLURangeInto(dst, a, wt *Tensor, prefix []int, bias []float64, lo, head int) {
	if a.Cols != wt.Cols || dst.Rows != a.Rows || lo < 0 || lo > head || head > wt.Rows || head > dst.Cols {
		panic(fmt.Sprintf("tensor: prefix matmul mismatch %v·%vᵀ→%v range [%d,%d)", a, wt, dst, lo, head))
	}
	ac, n := a.Cols, dst.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*ac : (i+1)*ac]
		drow := dst.Data[i*n : i*n+head]
		j := lo
		for ; j+4 <= head; j += 4 {
			p := prefix[j] // the quad's shortest prefix
			s0, s1, s2, s3 := dot4Dense(arow[:p],
				wt.Data[j*ac:j*ac+p], wt.Data[(j+1)*ac:(j+1)*ac+p],
				wt.Data[(j+2)*ac:(j+2)*ac+p], wt.Data[(j+3)*ac:(j+3)*ac+p])
			if q := prefix[j+1]; q > p {
				s1 += dot1Dense(arow[p:q], wt.Data[(j+1)*ac+p:(j+1)*ac+q])
			}
			if q := prefix[j+2]; q > p {
				s2 += dot1Dense(arow[p:q], wt.Data[(j+2)*ac+p:(j+2)*ac+q])
			}
			if q := prefix[j+3]; q > p {
				s3 += dot1Dense(arow[p:q], wt.Data[(j+3)*ac+p:(j+3)*ac+q])
			}
			drow[j] = max(s0+bias[j], 0)
			drow[j+1] = max(s1+bias[j+1], 0)
			drow[j+2] = max(s2+bias[j+2], 0)
			drow[j+3] = max(s3+bias[j+3], 0)
		}
		for ; j < head; j++ {
			p := prefix[j]
			drow[j] = max(dot1Dense(arow[:p], wt.Data[j*ac:j*ac+p])+bias[j], 0)
		}
	}
}

// MatMulPrefixReLURangeNZInto is MatMulPrefixReLURangeInto fused with
// nonzero bookkeeping: the index of every strictly positive output in
// [lo, head) is appended to nz[i] as it is written, so axpy-form consumers
// of the activations (MatMulNZBlockBiasInto) never rescan the rows for
// nonzeros. Callers must ensure each nz[i] currently covers exactly units
// [0, lo) — the lists stay ascending and gap-free.
func MatMulPrefixReLURangeNZInto(dst, a, wt *Tensor, prefix []int, bias []float64, lo, head int, nz [][]int) {
	if a.Cols != wt.Cols || dst.Rows != a.Rows || lo < 0 || lo > head || head > wt.Rows || head > dst.Cols {
		panic(fmt.Sprintf("tensor: prefix matmul mismatch %v·%vᵀ→%v range [%d,%d)", a, wt, dst, lo, head))
	}
	ac, n := a.Cols, dst.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*ac : (i+1)*ac]
		drow := dst.Data[i*n : i*n+head]
		lst := nz[i]
		j := lo
		for ; j+4 <= head; j += 4 {
			p := prefix[j] // the quad's shortest prefix
			s0, s1, s2, s3 := dot4Dense(arow[:p],
				wt.Data[j*ac:j*ac+p], wt.Data[(j+1)*ac:(j+1)*ac+p],
				wt.Data[(j+2)*ac:(j+2)*ac+p], wt.Data[(j+3)*ac:(j+3)*ac+p])
			if q := prefix[j+1]; q > p {
				s1 += dot1Dense(arow[p:q], wt.Data[(j+1)*ac+p:(j+1)*ac+q])
			}
			if q := prefix[j+2]; q > p {
				s2 += dot1Dense(arow[p:q], wt.Data[(j+2)*ac+p:(j+2)*ac+q])
			}
			if q := prefix[j+3]; q > p {
				s3 += dot1Dense(arow[p:q], wt.Data[(j+3)*ac+p:(j+3)*ac+q])
			}
			drow[j] = max(s0+bias[j], 0)
			drow[j+1] = max(s1+bias[j+1], 0)
			drow[j+2] = max(s2+bias[j+2], 0)
			drow[j+3] = max(s3+bias[j+3], 0)
			if drow[j] > 0 {
				lst = append(lst, j)
			}
			if drow[j+1] > 0 {
				lst = append(lst, j+1)
			}
			if drow[j+2] > 0 {
				lst = append(lst, j+2)
			}
			if drow[j+3] > 0 {
				lst = append(lst, j+3)
			}
		}
		for ; j < head; j++ {
			p := prefix[j]
			v := max(dot1Dense(arow[:p], wt.Data[j*ac:j*ac+p])+bias[j], 0)
			drow[j] = v
			if v > 0 {
				lst = append(lst, j)
			}
		}
		nz[i] = lst
	}
}

// MatMulPrefixBiasInto computes dst = a[:, :p]·wtᵀ + bias for one uniform
// prefix p — the output-block form of the prefix dot, where every logit of
// a column block shares the same dependency prefix. dst must be
// a.Rows×wt.Rows.
func MatMulPrefixBiasInto(dst, a, wt *Tensor, bias []float64, p int) {
	m := dst.Cols
	if a.Cols != wt.Cols || dst.Rows != a.Rows || m != wt.Rows || p < 0 || p > a.Cols {
		panic(fmt.Sprintf("tensor: prefix block matmul mismatch %v·%vᵀ→%v p %d", a, wt, dst, p))
	}
	ac := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*ac : i*ac+p]
		drow := dst.Data[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			s0, s1, s2, s3 := dot4Dense(arow,
				wt.Data[j*ac:j*ac+p], wt.Data[(j+1)*ac:(j+1)*ac+p],
				wt.Data[(j+2)*ac:(j+2)*ac+p], wt.Data[(j+3)*ac:(j+3)*ac+p])
			drow[j] = s0 + bias[j]
			drow[j+1] = s1 + bias[j+1]
			drow[j+2] = s2 + bias[j+2]
			drow[j+3] = s3 + bias[j+3]
		}
		for ; j < m; j++ {
			drow[j] = dot1Dense(arow, wt.Data[j*ac:j*ac+p]) + bias[j]
		}
	}
}

// MatMulNZBlockBiasInto computes dst = a·w[:, off:off+m] + bias
// (m = dst.Cols) in the axpy formulation, visiting only the entries of each
// a row whose indices are listed in nz[i] (all < w.Rows). ReLU activations
// are about half zeros, and in this form a zero skips an entire weight row
// of work — unlike the dot form's per-element skip, which mispredicts more
// than it saves (see dot4Dense). The output-layer block projection of
// batched sampling uses it with w as the masked weight product directly, so
// no transposed copy of the (widest) output layer is materialized, and with
// incrementally maintained nonzero lists, so the activation rows are never
// rescanned. Listed entries may be zero; unlisted entries must be zero (or
// masked off for the block).
func MatMulNZBlockBiasInto(dst, a *Tensor, nz [][]int, w *Tensor, bias []float64, off int) {
	m := dst.Cols
	if dst.Rows != a.Rows || a.Cols > w.Rows || off < 0 || off+m > w.Cols || len(bias) != m {
		panic(fmt.Sprintf("tensor: nz block matmul mismatch %v·%v[:,%d:%d]→%v", a, w, off, off+m, dst))
	}
	n := w.Cols
	for i := 0; i < dst.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*m : (i+1)*m]
		copy(drow, bias)
		lst := nz[i]
		k := 0
		for ; k+4 <= len(lst); k += 4 {
			k0, k1, k2, k3 := lst[k], lst[k+1], lst[k+2], lst[k+3]
			axpy4(drow,
				w.Data[k0*n+off:k0*n+off+m], w.Data[k1*n+off:k1*n+off+m],
				w.Data[k2*n+off:k2*n+off+m], w.Data[k3*n+off:k3*n+off+m],
				arow[k0], arow[k1], arow[k2], arow[k3])
		}
		for ; k < len(lst); k++ {
			kk := lst[k]
			axpy1(drow, w.Data[kk*n+off:kk*n+off+m], arow[kk])
		}
	}
}

// dot4Dense is dot4 without the zero-skip branch: ReLU activations are
// about half zeros in a random pattern, so the skip mispredicts more than
// it saves.
func dot4Dense(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for k, av := range a {
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
	}
	return
}

// dot1Dense is the single-row counterpart of dot4Dense.
func dot1Dense(a, b []float64) (s float64) {
	b = b[:len(a)]
	for k, av := range a {
		s += av * b[k]
	}
	return
}

// MatMulMaskedSliceInto computes dst = a·mw[:, off:off+dst.Cols] — a
// column slice of a masked matmul. Ancestral sampling uses it to produce
// only the current column's logit block instead of the full output row,
// which skips most of the (wide) output layer per sampling step. spans are
// the mask's per-row nonzero ranges (nil means dense) and are clipped to
// the slice; suffix-monotone spans take a fast path where only a prefix of
// the weight rows is visited. Batch rows are small here, so the kernel
// stays serial.
func MatMulMaskedSliceInto(dst, a, mw *Tensor, spans []int, off int) {
	width := dst.Cols
	if a.Cols != mw.Rows || dst.Rows != a.Rows || off < 0 || off+width > mw.Cols {
		panic(fmt.Sprintf("tensor: matmul slice mismatch %v,%v[%d:%d]→%v", a, mw, off, off+width, dst))
	}
	end := off + width
	n := mw.Cols
	cols := a.Cols
	if spans != nil && SpansSuffixMonotone(spans, n) {
		matMulSuffixSlice(dst, a, mw, spans, off, end)
		return
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*width : (i+1)*width]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= cols; k += 4 {
			v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			// Fast path: all four weight rows cover the whole block, which
			// is the common case for MADE's suffix-shaped output spans.
			if spans == nil || spanCovers4(spans, k, off, end) {
				axpy4(drow,
					mw.Data[k*n+off:k*n+end], mw.Data[(k+1)*n+off:(k+1)*n+end],
					mw.Data[(k+2)*n+off:(k+2)*n+end], mw.Data[(k+3)*n+off:(k+3)*n+end],
					v0, v1, v2, v3)
				continue
			}
			vs := [4]float64{v0, v1, v2, v3}
			for t := 0; t < 4; t++ {
				sliceAxpy(drow, mw, spans, k+t, n, off, end, vs[t])
			}
		}
		for ; k < cols; k++ {
			sliceAxpy(drow, mw, spans, k, n, off, end, arow[k])
		}
	}
}

// matMulSuffixSlice is the suffix-monotone fast path of
// MatMulMaskedSliceInto: rows whose suffix starts at or before off cover
// the whole block and form a prefix handled with axpy4; the few rows
// starting inside the block get clipped scalar updates; rows starting at or
// past end are never visited.
func matMulSuffixSlice(dst, a, mw *Tensor, spans []int, off, end int) {
	width := end - off
	n := mw.Cols
	cols := a.Cols
	kFull, kEnd := 0, 0
	for k := 0; k < cols; k++ {
		s := spans[2*k]
		if s <= off {
			kFull = k + 1
		}
		if s < end {
			kEnd = k + 1
		} else {
			break
		}
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*width : (i+1)*width]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kFull; k += 4 {
			v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			axpy4(drow,
				mw.Data[k*n+off:k*n+end], mw.Data[(k+1)*n+off:(k+1)*n+end],
				mw.Data[(k+2)*n+off:(k+2)*n+end], mw.Data[(k+3)*n+off:(k+3)*n+end],
				v0, v1, v2, v3)
		}
		for ; k < kEnd; k++ {
			v := arow[k]
			if v == 0 {
				continue
			}
			s := spans[2*k]
			if s <= off {
				axpy1(drow, mw.Data[k*n+off:k*n+end], v)
			} else {
				axpy1(drow[s-off:], mw.Data[k*n+s:k*n+end], v)
			}
		}
	}
}

// spanCovers4 reports whether the spans of rows k..k+3 all contain
// [off, end).
func spanCovers4(spans []int, k, off, end int) bool {
	for t := 0; t < 4; t++ {
		if spans[2*(k+t)] > off || spans[2*(k+t)+1] < end {
			return false
		}
	}
	return true
}

// sliceAxpy accumulates v·mw[k, clip] into the block-relative drow, where
// clip is row k's span intersected with [off, end).
func sliceAxpy(drow []float64, mw *Tensor, spans []int, k, n, off, end int, v float64) {
	if v == 0 {
		return
	}
	s, e := off, end
	if spans != nil {
		if ks := spans[2*k]; ks > s {
			s = ks
		}
		if ke := spans[2*k+1]; ke < e {
			e = ke
		}
	}
	if s < e {
		axpy1(drow[s-off:e-off], mw.Data[k*n+s:k*n+e], v)
	}
}

// matMulMaskedRange computes rows [lo, hi) of dst = a·mw, touching only
// each mw row's span.
func matMulMaskedRange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if cols == 0 || n == 0 {
		return
	}
	if looksSparse(a.Data[lo*cols : hi*cols]) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s, e := spans[2*k], spans[2*k+1]
				if s < e {
					axpy1(drow[s:e], b.Data[k*n+s:k*n+e], av)
				}
			}
		}
		return
	}
	kb := kBlockFor(n)
	for k0 := 0; k0 < cols; k0 += kb {
		k1 := k0 + kb
		if k1 > cols {
			k1 = cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			k := k0
			for ; k+4 <= k1; k += 4 {
				v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				s, e := spanIntersect4(spans, k)
				if s < e {
					axpy4(drow[s:e],
						b.Data[k*n+s:k*n+e], b.Data[(k+1)*n+s:(k+1)*n+e],
						b.Data[(k+2)*n+s:(k+2)*n+e], b.Data[(k+3)*n+s:(k+3)*n+e],
						v0, v1, v2, v3)
				}
				spanLeftovers4(drow, b, spans, k, n, s, e, v0, v1, v2, v3)
			}
			for ; k < k1; k++ {
				if av := arow[k]; av != 0 {
					s, e := spans[2*k], spans[2*k+1]
					if s < e {
						axpy1(drow[s:e], b.Data[k*n+s:k*n+e], av)
					}
				}
			}
		}
	}
}

// spanIntersect4 returns the intersection of the spans of rows k..k+3
// (empty spans come back as s >= e).
func spanIntersect4(spans []int, k int) (s, e int) {
	s, e = spans[2*k], spans[2*k+1]
	for t := 1; t < 4; t++ {
		if ks := spans[2*(k+t)]; ks > s {
			s = ks
		}
		if ke := spans[2*(k+t)+1]; ke < e {
			e = ke
		}
	}
	if s >= e {
		s, e = 0, 0
	}
	return
}

// spanLeftovers4 applies the parts of rows k..k+3 that fall outside the
// intersection [s, e) already handled by axpy4.
func spanLeftovers4(drow []float64, b *Tensor, spans []int, k, n, s, e int, v0, v1, v2, v3 float64) {
	vs := [4]float64{v0, v1, v2, v3}
	for t := 0; t < 4; t++ {
		v := vs[t]
		if v == 0 {
			continue
		}
		ks, ke := spans[2*(k+t)], spans[2*(k+t)+1]
		base := (k + t) * n
		if le := min(ke, s); ks < le {
			axpy1(drow[ks:le], b.Data[base+ks:base+le], v)
		}
		if ls := max(ks, e); ls < ke {
			axpy1(drow[ls:ke], b.Data[base+ls:base+ke], v)
		}
	}
}

// matMulMaskedTransBRange computes rows [lo, hi) of dst = a·mwᵀ: per output
// element (i, k), the dot of a row i with mw row k over that row's span.
func matMulMaskedTransBRange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= n; k += 4 {
			s, e := spanIntersect4(spans, k)
			var s0, s1, s2, s3 float64
			if s < e {
				s0, s1, s2, s3 = dot4(arow[s:e],
					b.Data[k*cols+s:k*cols+e], b.Data[(k+1)*cols+s:(k+1)*cols+e],
					b.Data[(k+2)*cols+s:(k+2)*cols+e], b.Data[(k+3)*cols+s:(k+3)*cols+e])
			}
			sums := [4]float64{s0, s1, s2, s3}
			for t := 0; t < 4; t++ {
				ks, ke := spans[2*(k+t)], spans[2*(k+t)+1]
				base := (k + t) * cols
				if le := min(ke, s); ks < le {
					sums[t] += dot1(arow[ks:le], b.Data[base+ks:base+le])
				}
				if ls := max(ks, e); ls < ke {
					sums[t] += dot1(arow[ls:ke], b.Data[base+ls:base+ke])
				}
			}
			if acc {
				drow[k] += sums[0]
				drow[k+1] += sums[1]
				drow[k+2] += sums[2]
				drow[k+3] += sums[3]
			} else {
				drow[k], drow[k+1], drow[k+2], drow[k+3] = sums[0], sums[1], sums[2], sums[3]
			}
		}
		for ; k < n; k++ {
			s, e := spans[2*k], spans[2*k+1]
			var sum float64
			if s < e {
				sum = dot1(arow[s:e], b.Data[k*cols+s:k*cols+e])
			}
			if acc {
				drow[k] += sum
			} else {
				drow[k] = sum
			}
		}
	}
}

// dot1 returns the dot product of two equal-length slices, skipping zeros
// of a.
func dot1(a, b []float64) (s float64) {
	b = b[:len(a)]
	for k, av := range a {
		if av != 0 {
			s += av * b[k]
		}
	}
	return
}

// matMulMaskedTransARange computes dst rows [lo, hi) of dst = aᵀ·b where
// dst row i only receives its span's columns; the rest of the row is
// zeroed (acc is accepted for interface symmetry but the masked weight
// gradient always overwrites).
func matMulMaskedTransARange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if n == 0 {
		return
	}
	r := 0
	for ; r+4 <= a.Rows; r += 4 {
		a0 := a.Data[r*cols : (r+1)*cols]
		a1 := a.Data[(r+1)*cols : (r+2)*cols]
		a2 := a.Data[(r+2)*cols : (r+3)*cols]
		a3 := a.Data[(r+3)*cols : (r+4)*cols]
		b0 := b.Data[r*n : (r+1)*n]
		b1 := b.Data[(r+1)*n : (r+2)*n]
		b2 := b.Data[(r+2)*n : (r+3)*n]
		b3 := b.Data[(r+3)*n : (r+4)*n]
		for i := lo; i < hi; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			s, e := spans[2*i], spans[2*i+1]
			if s < e {
				axpy4(dst.Data[i*n+s:i*n+e], b0[s:e], b1[s:e], b2[s:e], b3[s:e], v0, v1, v2, v3)
			}
		}
	}
	for ; r < a.Rows; r++ {
		arow := a.Data[r*cols : (r+1)*cols]
		brow := b.Data[r*n : (r+1)*n]
		for i := lo; i < hi; i++ {
			if av := arow[i]; av != 0 {
				s, e := spans[2*i], spans[2*i+1]
				if s < e {
					axpy1(dst.Data[i*n+s:i*n+e], brow[s:e], av)
				}
			}
		}
	}
}
