package tensor

// Span-aware matmul kernels for masked weight matrices. The mask's per-row
// nonzero column spans (precomputed by MaskedWeight) bound where the cached
// product W∘Mask can be nonzero, so each kernel touches only those columns.
// For MADE's sorted-degree masks the spans are contiguous suffixes covering
// about half of each row, which halves the multiply-add work of every
// masked layer. The kernels remain correct for arbitrary masks: columns
// inside a span that happen to be masked just multiply by zero.
//
// The register-blocked paths process four weight rows at a time; rows in a
// block may have different spans, so the block handles the intersection
// with axpy4/dot4 and the per-row leftovers scalar. Sorted-degree masks
// give near-identical spans for adjacent rows, keeping the leftovers tiny.

// MatMulMaskedInto computes dst = a·mw for a masked weight product mw with
// the given spans (nil spans fall back to the dense kernel).
func MatMulMaskedInto(dst, a, mw *Tensor, spans []int) {
	checkMatMul(dst, a, mw)
	if spans == nil {
		runKernel(a.Rows, a.Rows*a.Cols*mw.Cols, matMulRange, dst, a, mw, nil, false)
		return
	}
	runKernel(a.Rows, a.Rows*a.Cols*mw.Cols, matMulMaskedRange, dst, a, mw, spans, false)
}

// MatMulMaskedTransBAddInto computes dst += a·mwᵀ — the input gradient of a
// masked layer (a is the output gradient).
func MatMulMaskedTransBAddInto(dst, a, mw *Tensor, spans []int) {
	checkMatMulTransB(dst, a, mw)
	if spans == nil {
		runKernel(a.Rows, a.Rows*a.Cols*mw.Rows, matMulTransBRange, dst, a, mw, nil, true)
		return
	}
	runKernel(a.Rows, a.Rows*a.Cols*mw.Rows, matMulMaskedTransBRange, dst, a, mw, spans, true)
}

// MatMulMaskedTransAInto computes dst = aᵀ·b restricted to each dst row's
// span — the weight-gradient shape of a masked layer. Columns outside a
// row's span are zeroed.
func MatMulMaskedTransAInto(dst, a, b *Tensor, spans []int) {
	checkMatMulTransA(dst, a, b)
	if spans == nil {
		runKernel(a.Cols, a.Rows*a.Cols*b.Cols, matMulTransARange, dst, a, b, nil, false)
		return
	}
	runKernel(a.Cols, a.Rows*a.Cols*b.Cols, matMulMaskedTransARange, dst, a, b, spans, false)
}

// matMulMaskedRange computes rows [lo, hi) of dst = a·mw, touching only
// each mw row's span.
func matMulMaskedRange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if cols == 0 || n == 0 {
		return
	}
	if looksSparse(a.Data[lo*cols : hi*cols]) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s, e := spans[2*k], spans[2*k+1]
				if s < e {
					axpy1(drow[s:e], b.Data[k*n+s:k*n+e], av)
				}
			}
		}
		return
	}
	kb := kBlockFor(n)
	for k0 := 0; k0 < cols; k0 += kb {
		k1 := k0 + kb
		if k1 > cols {
			k1 = cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			k := k0
			for ; k+4 <= k1; k += 4 {
				v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				s, e := spanIntersect4(spans, k)
				if s < e {
					axpy4(drow[s:e],
						b.Data[k*n+s:k*n+e], b.Data[(k+1)*n+s:(k+1)*n+e],
						b.Data[(k+2)*n+s:(k+2)*n+e], b.Data[(k+3)*n+s:(k+3)*n+e],
						v0, v1, v2, v3)
				}
				spanLeftovers4(drow, b, spans, k, n, s, e, v0, v1, v2, v3)
			}
			for ; k < k1; k++ {
				if av := arow[k]; av != 0 {
					s, e := spans[2*k], spans[2*k+1]
					if s < e {
						axpy1(drow[s:e], b.Data[k*n+s:k*n+e], av)
					}
				}
			}
		}
	}
}

// spanIntersect4 returns the intersection of the spans of rows k..k+3
// (empty spans come back as s >= e).
func spanIntersect4(spans []int, k int) (s, e int) {
	s, e = spans[2*k], spans[2*k+1]
	for t := 1; t < 4; t++ {
		if ks := spans[2*(k+t)]; ks > s {
			s = ks
		}
		if ke := spans[2*(k+t)+1]; ke < e {
			e = ke
		}
	}
	if s >= e {
		s, e = 0, 0
	}
	return
}

// spanLeftovers4 applies the parts of rows k..k+3 that fall outside the
// intersection [s, e) already handled by axpy4.
func spanLeftovers4(drow []float64, b *Tensor, spans []int, k, n, s, e int, v0, v1, v2, v3 float64) {
	vs := [4]float64{v0, v1, v2, v3}
	for t := 0; t < 4; t++ {
		v := vs[t]
		if v == 0 {
			continue
		}
		ks, ke := spans[2*(k+t)], spans[2*(k+t)+1]
		base := (k + t) * n
		if le := min(ke, s); ks < le {
			axpy1(drow[ks:le], b.Data[base+ks:base+le], v)
		}
		if ls := max(ks, e); ls < ke {
			axpy1(drow[ls:ke], b.Data[base+ls:base+ke], v)
		}
	}
}

// matMulMaskedTransBRange computes rows [lo, hi) of dst = a·mwᵀ: per output
// element (i, k), the dot of a row i with mw row k over that row's span.
func matMulMaskedTransBRange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= n; k += 4 {
			s, e := spanIntersect4(spans, k)
			var s0, s1, s2, s3 float64
			if s < e {
				s0, s1, s2, s3 = dot4(arow[s:e],
					b.Data[k*cols+s:k*cols+e], b.Data[(k+1)*cols+s:(k+1)*cols+e],
					b.Data[(k+2)*cols+s:(k+2)*cols+e], b.Data[(k+3)*cols+s:(k+3)*cols+e])
			}
			sums := [4]float64{s0, s1, s2, s3}
			for t := 0; t < 4; t++ {
				ks, ke := spans[2*(k+t)], spans[2*(k+t)+1]
				base := (k + t) * cols
				if le := min(ke, s); ks < le {
					sums[t] += dot1(arow[ks:le], b.Data[base+ks:base+le])
				}
				if ls := max(ks, e); ls < ke {
					sums[t] += dot1(arow[ls:ke], b.Data[base+ls:base+ke])
				}
			}
			if acc {
				drow[k] += sums[0]
				drow[k+1] += sums[1]
				drow[k+2] += sums[2]
				drow[k+3] += sums[3]
			} else {
				drow[k], drow[k+1], drow[k+2], drow[k+3] = sums[0], sums[1], sums[2], sums[3]
			}
		}
		for ; k < n; k++ {
			s, e := spans[2*k], spans[2*k+1]
			var sum float64
			if s < e {
				sum = dot1(arow[s:e], b.Data[k*cols+s:k*cols+e])
			}
			if acc {
				drow[k] += sum
			} else {
				drow[k] = sum
			}
		}
	}
}

// dot1 returns the dot product of two equal-length slices, skipping zeros
// of a.
func dot1(a, b []float64) (s float64) {
	b = b[:len(a)]
	for k, av := range a {
		if av != 0 {
			s += av * b[k]
		}
	}
	return
}

// matMulMaskedTransARange computes dst rows [lo, hi) of dst = aᵀ·b where
// dst row i only receives its span's columns; the rest of the row is
// zeroed (acc is accepted for interface symmetry but the masked weight
// gradient always overwrites).
func matMulMaskedTransARange(dst, a, b *Tensor, spans []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if n == 0 {
		return
	}
	r := 0
	for ; r+4 <= a.Rows; r += 4 {
		a0 := a.Data[r*cols : (r+1)*cols]
		a1 := a.Data[(r+1)*cols : (r+2)*cols]
		a2 := a.Data[(r+2)*cols : (r+3)*cols]
		a3 := a.Data[(r+3)*cols : (r+4)*cols]
		b0 := b.Data[r*n : (r+1)*n]
		b1 := b.Data[(r+1)*n : (r+2)*n]
		b2 := b.Data[(r+2)*n : (r+3)*n]
		b3 := b.Data[(r+3)*n : (r+4)*n]
		for i := lo; i < hi; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			s, e := spans[2*i], spans[2*i+1]
			if s < e {
				axpy4(dst.Data[i*n+s:i*n+e], b0[s:e], b1[s:e], b2[s:e], b3[s:e], v0, v1, v2, v3)
			}
		}
	}
	for ; r < a.Rows; r++ {
		arow := a.Data[r*cols : (r+1)*cols]
		brow := b.Data[r*n : (r+1)*n]
		for i := lo; i < hi; i++ {
			if av := arow[i]; av != 0 {
				s, e := spans[2*i], spans[2*i+1]
				if s < e {
					axpy1(dst.Data[i*n+s:i*n+e], brow[s:e], av)
				}
			}
		}
	}
}
