// Package tensor provides dense float64 matrices and a small reverse-mode
// automatic differentiation engine. It is the substrate that stands in for
// the deep-learning framework used by the SAM paper: just enough machinery
// (matmul, activations, softmax-derived ops, Gumbel-Softmax) to train masked
// autoregressive density models from query workloads on a CPU.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
)

// Tensor is a dense, row-major 2-D matrix of float64. Vectors are
// represented as 1×n or n×1 tensors. The zero value is not useful; use New
// or FromSlice.
type Tensor struct {
	Rows, Cols int
	Data       []float64

	// version counts in-place mutations announced via MarkDirty; consumers
	// such as MaskedWeight use it as a dirty bit for derived caches.
	version uint64
}

// New returns a zero-initialized rows×cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d×%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Version returns the mutation counter maintained by MarkDirty. It only
// advances when writers announce their updates; direct Data writes do not
// move it.
func (t *Tensor) Version() uint64 { return atomic.LoadUint64(&t.version) }

// MarkDirty advances the mutation counter, invalidating caches derived from
// this tensor (e.g. MaskedWeight). Optimizers call it after updating
// parameters in place.
func (t *Tensor) MarkDirty() { atomic.AddUint64(&t.version, 1) }

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns a view (shared storage) of row i.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

// String describes the tensor shape.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%d×%d)", t.Rows, t.Cols)
}

// Randn fills t with Gaussian noise scaled by std using rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// XavierInit fills t with the Glorot-uniform initialization for a layer with
// the given fan-in and fan-out.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// The matmul kernels below come in Into (dst overwritten) and AddInto
// (dst accumulated) flavors. All of them register-block four rows of the
// streamed operand for instruction-level parallelism, tile the k dimension
// so the streamed block stays cache-resident, fall back to a zero-skipping
// scalar path for sparse (one-hot style) inputs, and shard output rows
// across the worker pool in parallel.go when the matrix is large enough.

// kBlockFor picks the k-tile size so one tile of b (kb rows × n cols of
// float64) stays within ~32KB (L1-sized); it is always a multiple of 4.
func kBlockFor(n int) int {
	if n <= 0 {
		return 4
	}
	kb := (1 << 15) / (8 * n) &^ 3
	if kb < 4 {
		kb = 4
	}
	return kb
}

// axpy4 computes dst += v0·b0 + v1·b1 + v2·b2 + v3·b3 elementwise. All
// slices must have the same length; reslicing lets the compiler drop bounds
// checks in the loop.
func axpy4(dst, b0, b1, b2, b3 []float64, v0, v1, v2, v3 float64) {
	dst = dst[:len(b0)]
	b1 = b1[:len(b0)]
	b2 = b2[:len(b0)]
	b3 = b3[:len(b0)]
	for j, bv := range b0 {
		dst[j] += v0*bv + v1*b1[j] + v2*b2[j] + v3*b3[j]
	}
}

// axpy1 computes dst += v·b elementwise.
func axpy1(dst, b []float64, v float64) {
	dst = dst[:len(b)]
	for j, bv := range b {
		dst[j] += v * bv
	}
}

// dot4 returns the dot products of a against four rows, skipping zero
// entries of a (one-hot inputs) and keeping four independent accumulator
// chains for dense ones.
func dot4(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for k, av := range a {
		if av == 0 {
			continue
		}
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
	}
	return
}

// looksSparse estimates whether under a quarter of data is nonzero by
// sampling a strided subset, so density dispatch costs O(sample) instead of
// a full scan per kernel call. One-hot progressive-sampling inputs are
// uniformly sparse, so a small sample classifies them reliably.
func looksSparse(data []float64) bool {
	const sample = 256
	stride := len(data) / sample
	if stride < 1 {
		stride = 1
	}
	seen, nz := 0, 0
	for i := 0; i < len(data); i += stride {
		seen++
		if data[i] != 0 {
			nz++
		}
	}
	return nz*4 < seen
}

// MatMul computes and returns a·b in a freshly allocated tensor. It is
// the convenience form for cold paths (setup, tests, one-shot math);
// warm loops use MatMulInto with a caller-owned destination — samlint's
// hotalloc analyzer enforces exactly that split.
func MatMul(a, b *Tensor) *Tensor {
	dst := New(a.Rows, b.Cols)
	MatMulInto(dst, a, b)
	return dst
}

// MatMulInto computes dst = a·b. dst must be a.Rows×b.Cols and distinct from
// both operands.
func MatMulInto(dst, a, b *Tensor) {
	checkMatMul(dst, a, b)
	runKernel(a.Rows, a.Rows*a.Cols*b.Cols, matMulRange, dst, a, b, nil, false)
}

// MatMulAddInto computes dst += a·b, used by backward passes to accumulate
// gradients without a temporary.
func MatMulAddInto(dst, a, b *Tensor) {
	checkMatMul(dst, a, b)
	runKernel(a.Rows, a.Rows*a.Cols*b.Cols, matMulRange, dst, a, b, nil, true)
}

func checkMatMul(dst, a, b *Tensor) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v·%v→%v", a, b, dst))
	}
}

// matMulRange computes rows [lo, hi) of dst = a·b (or += with acc).
func matMulRange(dst, a, b *Tensor, _ []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if cols == 0 || n == 0 {
		return
	}
	// Sparse inputs (one-hot blocks from progressive sampling) skip rows of
	// b entirely; dense inputs take the tiled, register-blocked path.
	if looksSparse(a.Data[lo*cols : hi*cols]) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				axpy1(drow, b.Data[k*n:(k+1)*n], av)
			}
		}
		return
	}
	kb := kBlockFor(n)
	for k0 := 0; k0 < cols; k0 += kb {
		k1 := k0 + kb
		if k1 > cols {
			k1 = cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			drow := dst.Data[i*n : (i+1)*n]
			k := k0
			for ; k+4 <= k1; k += 4 {
				v0, v1, v2, v3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				axpy4(drow,
					b.Data[k*n:(k+1)*n], b.Data[(k+1)*n:(k+2)*n],
					b.Data[(k+2)*n:(k+3)*n], b.Data[(k+3)*n:(k+4)*n],
					v0, v1, v2, v3)
			}
			for ; k < k1; k++ {
				if av := arow[k]; av != 0 {
					axpy1(drow, b.Data[k*n:(k+1)*n], av)
				}
			}
		}
	}
}

// MatMulTransAInto computes dst = aᵀ·b (a is used transposed).
func MatMulTransAInto(dst, a, b *Tensor) {
	checkMatMulTransA(dst, a, b)
	runKernel(a.Cols, a.Rows*a.Cols*b.Cols, matMulTransARange, dst, a, b, nil, false)
}

// MatMulTransAAddInto computes dst += aᵀ·b.
func MatMulTransAAddInto(dst, a, b *Tensor) {
	checkMatMulTransA(dst, a, b)
	runKernel(a.Cols, a.Rows*a.Cols*b.Cols, matMulTransARange, dst, a, b, nil, true)
}

func checkMatMulTransA(dst, a, b *Tensor) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch %v,%v→%v", a, b, dst))
	}
}

// matMulTransARange computes dst rows [lo, hi) — i.e. a's columns lo..hi —
// of dst = aᵀ·b (or += with acc). Four rows of a/b are blocked together so
// each pass over the dst shard amortizes their loads.
func matMulTransARange(dst, a, b *Tensor, _ []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Cols
	if !acc {
		z := dst.Data[lo*n : hi*n]
		for i := range z {
			z[i] = 0
		}
	}
	if n == 0 {
		return
	}
	r := 0
	for ; r+4 <= a.Rows; r += 4 {
		a0 := a.Data[r*cols : (r+1)*cols]
		a1 := a.Data[(r+1)*cols : (r+2)*cols]
		a2 := a.Data[(r+2)*cols : (r+3)*cols]
		a3 := a.Data[(r+3)*cols : (r+4)*cols]
		b0 := b.Data[r*n : (r+1)*n]
		b1 := b.Data[(r+1)*n : (r+2)*n]
		b2 := b.Data[(r+2)*n : (r+3)*n]
		b3 := b.Data[(r+3)*n : (r+4)*n]
		for i := lo; i < hi; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			axpy4(dst.Data[i*n:(i+1)*n], b0, b1, b2, b3, v0, v1, v2, v3)
		}
	}
	for ; r < a.Rows; r++ {
		arow := a.Data[r*cols : (r+1)*cols]
		brow := b.Data[r*n : (r+1)*n]
		for i := lo; i < hi; i++ {
			if av := arow[i]; av != 0 {
				axpy1(dst.Data[i*n:(i+1)*n], brow, av)
			}
		}
	}
}

// MatMulTransBInto computes dst = a·bᵀ (b is used transposed).
func MatMulTransBInto(dst, a, b *Tensor) {
	checkMatMulTransB(dst, a, b)
	runKernel(a.Rows, a.Rows*a.Cols*b.Rows, matMulTransBRange, dst, a, b, nil, false)
}

// MatMulTransBAddInto computes dst += a·bᵀ.
func MatMulTransBAddInto(dst, a, b *Tensor) {
	checkMatMulTransB(dst, a, b)
	runKernel(a.Rows, a.Rows*a.Cols*b.Rows, matMulTransBRange, dst, a, b, nil, true)
}

func checkMatMulTransB(dst, a, b *Tensor) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB shape mismatch %v,%v→%v", a, b, dst))
	}
}

// matMulTransBRange computes rows [lo, hi) of dst = a·bᵀ (or += with acc)
// in dot-product form, four b-rows per pass.
func matMulTransBRange(dst, a, b *Tensor, _ []int, lo, hi int, acc bool) {
	cols, n := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s0, s1, s2, s3 := dot4(arow,
				b.Data[j*cols:(j+1)*cols], b.Data[(j+1)*cols:(j+2)*cols],
				b.Data[(j+2)*cols:(j+3)*cols], b.Data[(j+3)*cols:(j+4)*cols])
			if acc {
				drow[j] += s0
				drow[j+1] += s1
				drow[j+2] += s2
				drow[j+3] += s3
			} else {
				drow[j] = s0
				drow[j+1] = s1
				drow[j+2] = s2
				drow[j+3] = s3
			}
		}
		for ; j < n; j++ {
			brow := b.Data[j*cols : (j+1)*cols][:len(arow)]
			var s float64
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s += av * brow[k]
			}
			if acc {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// AddInPlace adds o to t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic("tensor: add shape mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// SoftmaxRowInto writes the numerically stable softmax of src into dst. The
// two slices must have the same length and may alias.
func SoftmaxRowInto(dst, src []float64) {
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxRowsInto writes the row-wise softmax of src into dst. The tensors
// must have the same shape and may alias; every row is normalized
// independently (the batched counterpart of SoftmaxRowInto).
func SoftmaxRowsInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: softmax shape mismatch %v→%v", src, dst))
	}
	for r := 0; r < src.Rows; r++ {
		SoftmaxRowInto(dst.Row(r), src.Row(r))
	}
}

// ExpRowsInto writes row-wise exponentials into dst without normalizing —
// softmax up to a positive per-row factor, stabilized per row exactly as
// ExpRowMass describes. Categorical samplers that accumulate their own
// total mass draw identically from the unnormalized weights, which saves
// the normalization pass per row. The tensors must have the same shape and
// may alias.
func ExpRowsInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: exp shape mismatch %v→%v", src, dst))
	}
	for r := 0; r < src.Rows; r++ {
		ExpRowMass(dst.Row(r), src.Row(r))
	}
}

// expRowSafe bounds the single-pass range of ExpRowMass: for |v| ≤ 700,
// exp(v) is a normal, finite float64 (no overflow, no denormal), so a row
// of such entries needs no max subtraction and the stored exponentials
// remain exactly invertible by log if a rescue must reconstruct them.
const expRowSafe = 700

// ExpRowMass writes exp(src) into dst (same length, may alias) and returns
// the total mass Σ dst — the fused form behind in-logits sampling: one
// pass produces both the unnormalized weights and the CDF total a
// categorical draw needs, with no separate probability buffer, summation
// pass, or (on this common path) max scan. In-range entries go through
// expBounded, whose ~7e-12 relative error is invisible at draw and
// estimate tolerances. Entries outside (−700, 700) — far beyond any
// trained logit — divert to the classic max-subtracted two-pass form, so
// the result is finite and positive for every row with a finite maximum,
// exactly as if the stable form had run throughout.
func ExpRowMass(dst, src []float64) float64 {
	var mass float64
	for i, v := range src {
		if !(math.Abs(v) <= expRowSafe) { // also catches NaN
			return expRowMassRescue(dst, src, i)
		}
		e := expBounded(v)
		dst[i] = e
		mass += e
	}
	if mass > math.MaxFloat64 {
		// Entries are individually ≤ e⁷⁰⁰ but a very long row can still
		// overflow the sum; rerun shifted.
		return expRowMassRescue(dst, src, len(src))
	}
	return mass
}

// expBounded computes exp(x) for |x| ≤ expRowSafe. The bound kills every
// special case math.Exp must guard against (±Inf, NaN, overflow,
// denormals), leaving the classic Cody–Waite reduction x = k·ln2 + r and a
// degree-10 Taylor polynomial on |r| ≤ ln2/2 — evaluated Estrin-style so
// the chains pipeline — with truncation error under 7e-12 relative. The
// branch-free body is what makes the hot exp loop of ExpRowMass beat the
// guarded archExp call per logit.
func expBounded(x float64) float64 {
	// Round-to-nearest via the 1.5·2⁵² shifter: adding it pushes the
	// integer part into the mantissa's low bits, so subtracting it back
	// yields round(x/ln2) with two adds instead of a Floor call (and keeps
	// the whole body under the inlining budget).
	kf := x*expLog2E + expShifter
	kf -= expShifter
	r := x - kf*expLn2Hi - kf*expLn2Lo
	r2 := r * r
	r4 := r2 * r2
	g0 := (1 + r) + (exp2C+exp3C*r)*r2
	g1 := (exp4C + exp5C*r) + (exp6C+exp7C*r)*r2
	g2 := (exp8C + exp9C*r) + exp10C*r2
	p := g0 + (g1+g2*r4)*r4
	return p * math.Float64frombits(uint64(int(kf)+1023)<<52)
}

const (
	expLog2E   = 1.44269504088896340736 // 1/ln2
	expLn2Hi   = 6.93147180369123816490e-01
	expLn2Lo   = 1.90821492927058770002e-10
	expShifter = 3 << 51 // 1.5·2⁵², the round-to-nearest bias

	// Taylor coefficients 1/k! of exp at 0.
	exp2C  = 1.0 / 2
	exp3C  = 1.0 / 6
	exp4C  = 1.0 / 24
	exp5C  = 1.0 / 120
	exp6C  = 1.0 / 720
	exp7C  = 1.0 / 5040
	exp8C  = 1.0 / 40320
	exp9C  = 1.0 / 362880
	exp10C = 1.0 / 3628800
)

// expRowMassRescue finishes a row whose entry i fell outside ExpRowMass's
// single-pass range (or whose total overflowed): it restores any prefix the
// fused loop already overwrote in aliased calls — log inverts the stored
// exponentials to within an ulp, and the prefix is within ±700 where that
// inversion is well-conditioned — then applies the max-subtracted form to
// the whole row.
func expRowMassRescue(dst, src []float64, i int) float64 {
	if i > 0 && &dst[0] == &src[0] {
		for j := 0; j < i; j++ {
			dst[j] = math.Log(dst[j])
		}
	}
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	var mass float64
	for k, v := range src {
		e := math.Exp(v - maxv)
		dst[k] = e
		mass += e
	}
	return mass
}
