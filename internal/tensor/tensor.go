// Package tensor provides dense float64 matrices and a small reverse-mode
// automatic differentiation engine. It is the substrate that stands in for
// the deep-learning framework used by the SAM paper: just enough machinery
// (matmul, activations, softmax-derived ops, Gumbel-Softmax) to train masked
// autoregressive density models from query workloads on a CPU.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major 2-D matrix of float64. Vectors are
// represented as 1×n or n×1 tensors. The zero value is not useful; use New
// or FromSlice.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized rows×cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d×%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns a view (shared storage) of row i.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

// String describes the tensor shape.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%d×%d)", t.Rows, t.Cols)
}

// Randn fills t with Gaussian noise scaled by std using rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// XavierInit fills t with the Glorot-uniform initialization for a layer with
// the given fan-in and fan-out.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MatMulInto computes dst = a·b. dst must be a.Rows×b.Cols and distinct from
// both operands.
func MatMulInto(dst, a, b *Tensor) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v·%v→%v", a, b, dst))
	}
	dst.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransAInto computes dst = aᵀ·b (a is used transposed).
func MatMulTransAInto(dst, a, b *Tensor) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch %v,%v→%v", a, b, dst))
	}
	dst.Zero()
	n := b.Cols
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Data[r*n : (r+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = a·bᵀ (b is used transposed).
func MatMulTransBInto(dst, a, b *Tensor) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB shape mismatch %v,%v→%v", a, b, dst))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddInPlace adds o to t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic("tensor: add shape mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// SoftmaxRowInto writes the numerically stable softmax of src into dst. The
// two slices must have the same length and may alias.
func SoftmaxRowInto(dst, src []float64) {
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}
