package tensor

// Node is a vertex in the computation graph: a value tensor plus, when
// gradients are required, an accumulated gradient of the same shape and a
// backward closure propagating into its parents.
type Node struct {
	Val          *Tensor
	Grad         *Tensor
	requiresGrad bool
	backward     func()
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ensureGrad lazily allocates the gradient buffer.
func (n *Node) ensureGrad() {
	if n.Grad == nil {
		n.Grad = New(n.Val.Rows, n.Val.Cols)
	}
}

// Graph is a gradient tape. Operations append nodes in creation order;
// Backward walks the tape in reverse. A Graph is single-use per forward
// pass and not safe for concurrent use; training code builds one graph per
// goroutine.
type Graph struct {
	nodes  []*Node
	params map[*Tensor]*Node
}

// NewGraph returns an empty tape.
func NewGraph() *Graph { return &Graph{} }

// Param registers t as a trainable leaf: gradients accumulate into
// node.Grad. The tensor is shared, not copied, so optimizer updates to t are
// visible in subsequent graphs. Registering the same tensor twice on one
// graph returns the same node, so layers may bind their weights on every
// forward call without double-counting gradients.
func (g *Graph) Param(t *Tensor) *Node {
	if n, ok := g.params[t]; ok {
		return n
	}
	n := &Node{Val: t, requiresGrad: true}
	n.ensureGrad()
	g.nodes = append(g.nodes, n)
	if g.params == nil {
		g.params = make(map[*Tensor]*Node)
	}
	g.params[t] = n
	return n
}

// ParamGrad returns the gradient accumulated for t on this graph, or nil if
// t was never registered.
func (g *Graph) ParamGrad(t *Tensor) *Tensor {
	if n, ok := g.params[t]; ok {
		return n.Grad
	}
	return nil
}

// Const registers t as a non-trainable leaf (inputs, masks).
func (g *Graph) Const(t *Tensor) *Node {
	n := &Node{Val: t}
	g.nodes = append(g.nodes, n)
	return n
}

// newNode appends an interior node whose gradient requirement is inherited
// from its parents.
func (g *Graph) newNode(val *Tensor, parents ...*Node) *Node {
	n := &Node{Val: val}
	for _, p := range parents {
		if p.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	if n.requiresGrad {
		n.ensureGrad()
	}
	g.nodes = append(g.nodes, n)
	return n
}

// Backward seeds loss with gradient 1 (loss must be 1×1) and propagates
// through the tape in reverse creation order.
func (g *Graph) Backward(loss *Node) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic("tensor: Backward requires a scalar loss node")
	}
	if !loss.requiresGrad {
		return
	}
	loss.Grad.Data[0] = 1
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		if n.backward != nil && n.requiresGrad {
			n.backward()
		}
	}
}
