package tensor

// opKind tags a node with the operation that produced it; Backward
// dispatches on it instead of per-node closures, which keeps the tape free
// of per-step heap allocations (closures and their capture records) once
// the graph's buffer pool is warm.
type opKind uint8

const (
	opLeaf opKind = iota
	opMatMul
	opMatMulTB
	opMaskedMatMul
	opMulConst
	opAddRow
	opAdd
	opSub
	opMulElem
	opReLU
	opScale
	opLog
	opSquare
	opMean
	opSumAll
	opDot
	opReciprocal
	opConcatCols
	opConcatRows
	opSliceCols
	opSliceRows
	opRangeProb
	opSTGumbel
	opSoftmaxRows
	opAddConst
	opLayerNorm
)

// Node is a vertex in the computation graph: a value tensor plus, when
// gradients are required, an accumulated gradient of the same shape and the
// operands needed to propagate into its parents.
type Node struct {
	Val          *Tensor
	Grad         *Tensor
	requiresGrad bool

	op      opKind
	a, b, c *Node   // operands (op-specific; unused entries nil)
	parts   []*Node // operands of variadic ops (Concat*)
	aux1    *Tensor // op-specific saved tensor (mask, softmax, x̂, ...)
	aux2    *Tensor // second saved tensor (masked weights, 1/σ rows, ...)
	mwc     *MaskedWeight
	auxF    []float64
	f1      float64
	i1, i2  int
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Graph is a gradient tape with a per-tape buffer pool. Operations append
// nodes in creation order; Backward walks the tape in reverse. A Graph is
// single-use per forward pass and not safe for concurrent use; training
// code builds one graph per goroutine and calls Reset between steps so
// output, gradient, and scratch buffers are recycled instead of churning
// the garbage collector.
type Graph struct {
	nodes  []*Node
	params map[*Tensor]*Node

	free       map[int][]*Tensor // released buffers keyed by element count
	owned      []*Tensor         // pool-allocated tensors live on this tape
	spareNodes []*Node           // recycled Node structs
	partsArena []*Node           // backing storage for Node.parts slices
}

// NewGraph returns an empty tape.
func NewGraph() *Graph { return &Graph{} }

// Reset releases every buffer and node allocated on this tape back to its
// pool and truncates the tape, so the next forward pass reuses them. All
// Nodes and pool-owned Tensors handed out since the previous Reset —
// including gradients returned by ParamGrad and tensors from NewTensor —
// are invalidated. Caller-owned tensors (Param values, Const inputs) are
// untouched.
func (g *Graph) Reset() {
	if g.free == nil && len(g.owned) > 0 {
		g.free = make(map[int][]*Tensor)
	}
	for _, t := range g.owned {
		sz := len(t.Data)
		g.free[sz] = append(g.free[sz], t)
	}
	g.owned = g.owned[:0]
	g.spareNodes = append(g.spareNodes, g.nodes...)
	g.nodes = g.nodes[:0]
	g.partsArena = g.partsArena[:0]
	clear(g.params)
}

// NewTensor returns a zeroed rows×cols tensor drawn from the tape's pool.
// It is valid until the next Reset; use it for per-step scratch (masks,
// targets) that lives exactly as long as the tape.
func (g *Graph) NewTensor(rows, cols int) *Tensor {
	return g.alloc(rows, cols, true)
}

// alloc returns a pooled rows×cols tensor. With zero=false the contents are
// arbitrary and the caller must overwrite every element.
func (g *Graph) alloc(rows, cols int, zero bool) *Tensor {
	sz := rows * cols
	if list := g.free[sz]; len(list) > 0 {
		t := list[len(list)-1]
		g.free[sz] = list[:len(list)-1]
		t.Rows, t.Cols = rows, cols
		if zero {
			t.Zero()
		}
		g.owned = append(g.owned, t)
		return t
	}
	t := New(rows, cols)
	g.owned = append(g.owned, t)
	return t
}

// getNode returns a recycled (zeroed) Node or a fresh one.
func (g *Graph) getNode() *Node {
	if k := len(g.spareNodes); k > 0 {
		n := g.spareNodes[k-1]
		g.spareNodes = g.spareNodes[:k-1]
		*n = Node{}
		return n
	}
	return &Node{}
}

// copyParts copies a variadic operand list into the tape's arena so the
// caller may reuse its slice after the op returns.
func (g *Graph) copyParts(ps []*Node) []*Node {
	off := len(g.partsArena)
	g.partsArena = append(g.partsArena, ps...)
	return g.partsArena[off : off+len(ps) : off+len(ps)]
}

// push appends an interior node for op with the given output value,
// allocating its gradient buffer from the pool when needed.
func (g *Graph) push(val *Tensor, op opKind, requiresGrad bool) *Node {
	n := g.getNode()
	n.Val = val
	n.op = op
	n.requiresGrad = requiresGrad
	if requiresGrad {
		n.Grad = g.alloc(val.Rows, val.Cols, true)
	}
	g.nodes = append(g.nodes, n)
	return n
}

// Param registers t as a trainable leaf: gradients accumulate into
// node.Grad. The tensor is shared, not copied, so optimizer updates to t are
// visible in subsequent graphs. Registering the same tensor twice on one
// graph returns the same node, so layers may bind their weights on every
// forward call without double-counting gradients.
func (g *Graph) Param(t *Tensor) *Node {
	if n, ok := g.params[t]; ok {
		return n
	}
	n := g.getNode()
	n.Val = t
	n.requiresGrad = true
	n.Grad = g.alloc(t.Rows, t.Cols, true)
	g.nodes = append(g.nodes, n)
	if g.params == nil {
		g.params = make(map[*Tensor]*Node)
	}
	g.params[t] = n
	return n
}

// ParamGrad returns the gradient accumulated for t on this graph, or nil if
// t was never registered. The returned tensor is pool-owned: read or copy
// it before the next Reset.
func (g *Graph) ParamGrad(t *Tensor) *Tensor {
	if n, ok := g.params[t]; ok {
		return n.Grad
	}
	return nil
}

// Const registers t as a non-trainable leaf (inputs, masks).
func (g *Graph) Const(t *Tensor) *Node {
	n := g.getNode()
	n.Val = t
	g.nodes = append(g.nodes, n)
	return n
}

// Backward seeds loss with gradient 1 (loss must be 1×1) and propagates
// through the tape in reverse creation order.
func (g *Graph) Backward(loss *Node) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic("tensor: Backward requires a scalar loss node")
	}
	if !loss.requiresGrad {
		return
	}
	loss.Grad.Data[0] = 1
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		if n.requiresGrad && n.op != opLeaf {
			g.backstep(n)
		}
	}
}
