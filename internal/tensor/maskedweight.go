package tensor

import (
	"sync"
	"sync/atomic"
)

// MaskedWeight caches the elementwise product W∘Mask of a trainable weight
// matrix and a fixed 0/1 mask. MADE-style masked layers need the product on
// every forward pass, but W only changes at optimizer steps, so the cache
// turns a per-forward elementwise multiply (and, previously, a per-forward
// allocation) into a dirty-bit check.
//
// Invalidation is driven by W's mutation counter: writers must call
// W.MarkDirty() after updating the weights in place (nn.Adam does). Get is
// safe for concurrent readers; the recompute that follows an invalidation
// is serialized by a mutex, and the version is published with
// release/acquire semantics so readers never observe a half-written
// product. Mutating W concurrently with Get is not supported — the training
// loop steps the optimizer only while no forward passes are in flight.
type MaskedWeight struct {
	w, mask *Tensor
	cached  *Tensor
	spans   []int // per row r: nonzero column range [spans[2r], spans[2r+1])
	mu      sync.Mutex
	seen    atomic.Uint64 // W.Version()+1 of the cached product; 0 = invalid
}

// NewMaskedWeight builds a cache for w∘mask. Both tensors are retained by
// reference; the mask must not be mutated afterwards. The per-row nonzero
// column spans of the mask are precomputed so the masked kernels can skip
// masked-out columns entirely — for MADE's sorted-degree masks the nonzeros
// of every row are one contiguous suffix, halving the matmul work on
// average. Masks with interior zeros stay correct (the cached product is
// zero there); spans only bound the nonzero extent.
func NewMaskedWeight(w, mask *Tensor) *MaskedWeight {
	if !w.SameShape(mask) {
		panic("tensor: MaskedWeight shape mismatch")
	}
	c := &MaskedWeight{w: w, mask: mask, cached: New(w.Rows, w.Cols)}
	c.spans = make([]int, 2*mask.Rows)
	for r := 0; r < mask.Rows; r++ {
		row := mask.Row(r)
		s, e := 0, len(row)
		for s < e && row[s] == 0 {
			s++
		}
		for e > s && row[e-1] == 0 {
			e--
		}
		c.spans[2*r], c.spans[2*r+1] = s, e
	}
	return c
}

// RowSpan returns the nonzero column range [start, end) of mask row r.
func (c *MaskedWeight) RowSpan(r int) (start, end int) {
	return c.spans[2*r], c.spans[2*r+1]
}

// Spans returns the per-row nonzero column ranges in the flat
// [start0, end0, start1, end1, ...] layout the masked matmul kernels
// consume. The slice is owned by the cache and must not be mutated.
func (c *MaskedWeight) Spans() []int { return c.spans }

// Weight returns the cached product's weight operand.
func (c *MaskedWeight) Weight() *Tensor { return c.w }

// Mask returns the fixed mask operand.
func (c *MaskedWeight) Mask() *Tensor { return c.mask }

// Get returns W∘Mask, recomputing it only if W changed since the last call.
// The returned tensor is owned by the cache and must not be mutated; it is
// valid until the next optimizer step.
func (c *MaskedWeight) Get() *Tensor {
	v := c.w.Version() + 1
	if c.seen.Load() == v {
		return c.cached
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen.Load() != v {
		wd := c.w.Data
		md := c.mask.Data[:len(wd)]
		cd := c.cached.Data[:len(wd)]
		for i, wv := range wd {
			cd[i] = wv * md[i]
		}
		c.seen.Store(v)
	}
	return c.cached
}
