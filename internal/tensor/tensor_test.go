package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapes(t *testing.T) {
	tt := New(3, 4)
	if tt.Rows != 3 || tt.Cols != 4 || len(tt.Data) != 12 {
		t.Fatalf("bad tensor: %+v", tt)
	}
	tt.Set(2, 3, 7)
	if tt.At(2, 3) != 7 {
		t.Fatalf("At/Set broken")
	}
	if tt.Row(2)[3] != 7 {
		t.Fatalf("Row view broken")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MatMulInto(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("matmul[%d] = %v want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulAllocatingFormMatchesInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	if got.Rows != 2 || got.Cols != 2 {
		t.Fatalf("MatMul shape = %d×%d want 2×2", got.Rows, got.Cols)
	}
	dst := New(2, 2)
	MatMulInto(dst, a, b)
	for i := range dst.Data {
		if got.Data[i] != dst.Data[i] {
			t.Fatalf("MatMul[%d] = %v want %v", i, got.Data[i], dst.Data[i])
		}
	}
}

func TestMatMulTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 3)
	b := New(4, 5)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	// aᵀ·b via explicit transpose.
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := New(3, 5)
	MatMulInto(want, at, b)
	got := New(3, 5)
	MatMulTransAInto(got, a, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("TransA mismatch at %d", i)
		}
	}

	c := New(5, 3)
	c.Randn(rng, 1)
	// a·cᵀ
	ct := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want2 := New(4, 5)
	MatMulInto(want2, a, ct)
	got2 := New(4, 5)
	MatMulTransBInto(got2, a, c)
	for i := range want2.Data {
		if !almostEq(got2.Data[i], want2.Data[i], 1e-12) {
			t.Fatalf("TransB mismatch at %d", i)
		}
	}
}

func TestSoftmaxRow(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	SoftmaxRowInto(dst, src)
	var sum float64
	for _, v := range dst {
		sum += v
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax not monotone: %v", dst)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	src := []float64{1000, 1001, 999}
	dst := make([]float64, 3)
	SoftmaxRowInto(dst, src)
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable: %v", dst)
		}
	}
}

func TestExpRowMass(t *testing.T) {
	// Common path: direct exponentials, mass is their sum.
	src := []float64{0, 1, -2}
	dst := make([]float64, 3)
	mass := ExpRowMass(dst, src)
	want := math.Exp(0) + math.Exp(1) + math.Exp(-2)
	if !almostEq(mass, want, 1e-12) {
		t.Fatalf("mass %v, want %v", mass, want)
	}
	for i, v := range src {
		if !almostEq(dst[i], math.Exp(v), 1e-12) {
			t.Fatalf("dst[%d] = %v, want exp(%v)", i, dst[i], v)
		}
	}

	// Rescue paths, aliased the way the samplers call it: rows whose
	// entries leave the single-pass range must still yield a finite,
	// positive mass with the right relative weights.
	cases := [][]float64{
		{1000, 1001, 999},    // overflow, rescued mid-row after no writes
		{1, 2, 1000},         // overflow after the prefix was overwritten
		{-1000, -1001, -999}, // all entries underflow unshifted
		{-800, 0, 3},         // one degenerate entry, rest in range
	}
	for _, c := range cases {
		row := append([]float64(nil), c...)
		mass := ExpRowMass(row, row)
		if math.IsNaN(mass) || math.IsInf(mass, 0) || mass <= 0 {
			t.Fatalf("mass %v for %v", mass, c)
		}
		// The shifted exponentials must preserve pairwise ratios wherever
		// both are representable: check the two largest entries.
		hi, lo := 0, 0
		for i, v := range c {
			if v > c[hi] {
				hi = i
			}
		}
		for i, v := range c {
			if i != hi && (lo == hi || v > c[lo]) {
				lo = i
			}
		}
		if lo == hi {
			lo = (hi + 1) % len(c)
		}
		if wantRatio := math.Exp(c[lo] - c[hi]); !almostEq(row[lo]/row[hi], wantRatio, 1e-9) {
			t.Fatalf("ratio %v, want %v for %v (row %v)", row[lo]/row[hi], wantRatio, c, row)
		}
	}

	// NaN entries poison the mass rather than panicking or hanging.
	nanRow := []float64{1, math.NaN(), 2}
	if m := ExpRowMass(nanRow, nanRow); !math.IsNaN(m) {
		t.Fatalf("NaN row mass %v, want NaN", m)
	}
}

func TestExpBoundedAccuracy(t *testing.T) {
	check := func(x float64) {
		t.Helper()
		got, want := expBounded(x), math.Exp(x)
		if rel := math.Abs(got-want) / want; rel > 1e-11 {
			t.Fatalf("expBounded(%v) = %v, want %v (rel err %v)", x, got, want, rel)
		}
	}
	// Edges of the bounded range, reduction boundaries, and a dense sweep
	// of the logit magnitudes sampling actually produces.
	for _, x := range []float64{-expRowSafe, expRowSafe, 0, math.Ln2 / 2, -math.Ln2 / 2, 1, -1, 709.0 / 2, -745.0 / 2} {
		check(x)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		check((rng.Float64()*2 - 1) * expRowSafe)
		check((rng.Float64()*2 - 1) * 30) // typical logit range
	}
}

// gradCheck numerically verifies dLoss/dParam for a scalar loss built by f.
func gradCheck(t *testing.T, param *Tensor, f func(g *Graph, p *Node) *Node) {
	t.Helper()
	g := NewGraph()
	p := g.Param(param)
	loss := f(g, p)
	g.Backward(loss)
	analytic := p.Grad.Clone()

	// Central differences, rebuilt graph per perturbation.
	const h = 1e-6
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + h
		g2 := NewGraph()
		lp := f(g2, g2.Param(param)).Val.Data[0]
		param.Data[i] = orig - h
		g3 := NewGraph()
		lm := f(g3, g3.Param(param)).Val.Data[0]
		param.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if !almostEq(numeric, analytic.Data[i], 1e-4*(1+math.Abs(numeric))) {
			t.Fatalf("grad[%d]: numeric %v analytic %v", i, numeric, analytic.Data[i])
		}
	}
}

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := New(3, 2)
	w.Randn(rng, 0.5)
	x := FromSlice(2, 3, []float64{0.5, -1, 2, 1, 0.3, -0.7})
	gradCheck(t, w, func(g *Graph, p *Node) *Node {
		xc := g.Const(x)
		h := g.MatMul(xc, p)
		r := g.ReLU(h)
		return g.Mean(g.Square(r))
	})
}

func TestGradAddRowBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := New(1, 4)
	b.Randn(rng, 0.5)
	x := New(3, 4)
	x.Randn(rng, 1)
	gradCheck(t, b, func(g *Graph, p *Node) *Node {
		xc := g.Const(x)
		return g.Mean(g.Square(g.AddRow(xc, p)))
	})
}

func TestGradMulConstMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := New(2, 3)
	w.Randn(rng, 1)
	mask := FromSlice(2, 3, []float64{1, 0, 1, 0, 1, 1})
	gradCheck(t, w, func(g *Graph, p *Node) *Node {
		return g.Mean(g.Square(g.MulConst(p, mask)))
	})
}

func TestGradLogSquareMean(t *testing.T) {
	w := FromSlice(1, 3, []float64{0.5, 1.5, 2.5})
	gradCheck(t, w, func(g *Graph, p *Node) *Node {
		return g.Mean(g.Square(g.Log(p)))
	})
}

func TestGradRangeProb(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := New(2, 4)
	logits.Randn(rng, 1)
	mask := FromSlice(2, 4, []float64{1, 1, 0, 0, 0, 1, 1, 1})
	gradCheck(t, logits, func(g *Graph, p *Node) *Node {
		return g.Mean(g.Square(g.Log(g.RangeProb(p, mask))))
	})
}

func TestRangeProbFullMaskIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := New(3, 5)
	logits.Randn(rng, 2)
	mask := New(3, 5)
	mask.Fill(1)
	g := NewGraph()
	p := g.RangeProb(g.Const(logits), mask)
	for i := 0; i < 3; i++ {
		if !almostEq(p.Val.Data[i], 1, 1e-12) {
			t.Fatalf("full-mask prob = %v", p.Val.Data[i])
		}
	}
}

func TestGradDotReciprocal(t *testing.T) {
	a := FromSlice(2, 3, []float64{0.2, 0.5, 0.3, 0.1, 0.8, 0.1})
	vals := []float64{1, 2, 4}
	gradCheck(t, a, func(g *Graph, p *Node) *Node {
		return g.Mean(g.Reciprocal(g.Dot(p, vals)))
	})
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(2, 3)
	a.Randn(rng, 1)
	b := New(2, 2)
	b.Randn(rng, 1)
	gradCheck(t, a, func(g *Graph, p *Node) *Node {
		bc := g.Const(b)
		cat := g.ConcatCols(p, bc)
		sl := g.SliceCols(cat, 1, 3) // overlaps both parts
		return g.Mean(g.Square(sl))
	})
}

func TestGradSubMulElemScale(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := New(2, 2)
	a.Randn(rng, 1)
	b := New(2, 2)
	b.Randn(rng, 1)
	gradCheck(t, a, func(g *Graph, p *Node) *Node {
		bc := g.Const(b)
		return g.Mean(g.Square(g.Scale(g.MulElem(g.Sub(p, bc), p), 0.7)))
	})
}

func TestSTGumbelForwardIsOneHotInMask(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := New(5, 6)
	logits.Randn(rng, 1)
	mask := New(5, 6)
	for i := 0; i < 5; i++ {
		mask.Set(i, i%6, 1)
		mask.Set(i, (i+2)%6, 1)
	}
	g := NewGraph()
	out := g.STGumbel(g.Const(logits), mask, 1.0, rng)
	for i := 0; i < 5; i++ {
		var ones, mass int
		for j := 0; j < 6; j++ {
			v := out.Val.At(i, j)
			if v == 1 {
				ones++
				if mask.At(i, j) == 0 {
					t.Fatalf("row %d: sampled outside mask", i)
				}
			} else if v != 0 {
				mass++
			}
		}
		if ones != 1 || mass != 0 {
			t.Fatalf("row %d not one-hot", i)
		}
	}
}

func TestSTGumbelRespectsDistribution(t *testing.T) {
	// With very peaked logits the argmax should almost always pick the peak.
	rng := rand.New(rand.NewSource(10))
	logits := FromSlice(1, 3, []float64{0, 10, 0})
	mask := FromSlice(1, 3, []float64{1, 1, 1})
	hits := 0
	for trial := 0; trial < 200; trial++ {
		g := NewGraph()
		out := g.STGumbel(g.Const(logits), mask, 0.5, rng)
		if out.Val.At(0, 1) == 1 {
			hits++
		}
	}
	if hits < 190 {
		t.Fatalf("peaked logit chosen only %d/200 times", hits)
	}
}

func TestSTGumbelGradientFlows(t *testing.T) {
	// Gradients through the straight-through estimator are not exact, but
	// they must be nonzero and finite for in-mask entries.
	rng := rand.New(rand.NewSource(11))
	logits := New(1, 4)
	logits.Randn(rng, 1)
	mask := FromSlice(1, 4, []float64{1, 1, 1, 0})
	g := NewGraph()
	p := g.Param(logits)
	y := g.STGumbel(p, mask, 1.0, rng)
	loss := g.Mean(g.Square(g.Dot(y, []float64{1, 2, 3, 4})))
	g.Backward(loss)
	var nonzero int
	for _, gv := range p.Grad.Data {
		if math.IsNaN(gv) || math.IsInf(gv, 0) {
			t.Fatalf("bad gradient %v", p.Grad.Data)
		}
		if gv != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no gradient flowed through STGumbel")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	g := NewGraph()
	p := g.Param(New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	g.Backward(p)
}

func TestQuickSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		src := []float64{a, b, c, d}
		for i, v := range src {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				src[i] = 0
			}
			// keep magnitudes sane
			src[i] = math.Mod(src[i], 50)
		}
		dst := make([]float64, 4)
		SoftmaxRowInto(dst, src)
		var sum float64
		for _, v := range dst {
			if v < 0 {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatMulDistributes(t *testing.T) {
	// (A+B)·C == A·C + B·C for random small matrices.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		r, k, c := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a, b, cm := New(r, k), New(r, k), New(k, c)
		a.Randn(rng, 1)
		b.Randn(rng, 1)
		cm.Randn(rng, 1)
		sum := a.Clone()
		sum.AddInPlace(b)
		left := New(r, c)
		MatMulInto(left, sum, cm)
		ac, bc := New(r, c), New(r, c)
		MatMulInto(ac, a, cm)
		MatMulInto(bc, b, cm)
		ac.AddInPlace(bc)
		for i := range left.Data {
			if !almostEq(left.Data[i], ac.Data[i], 1e-9) {
				t.Fatalf("distributivity violated at trial %d", trial)
			}
		}
	}
}

func TestOpShapeContracts(t *testing.T) {
	// Every binary op must reject mismatched shapes loudly rather than
	// corrupt memory.
	a23 := New(2, 3)
	a32 := New(3, 2)
	a22 := New(2, 2)
	bias13 := New(1, 3)
	cases := []struct {
		name string
		fn   func(g *Graph)
	}{
		{"Add", func(g *Graph) { g.Add(g.Const(a23), g.Const(a32)) }},
		{"Sub", func(g *Graph) { g.Sub(g.Const(a23), g.Const(a22)) }},
		{"MulElem", func(g *Graph) { g.MulElem(g.Const(a23), g.Const(a22)) }},
		{"MulConst", func(g *Graph) { g.MulConst(g.Const(a23), a22) }},
		{"AddRow", func(g *Graph) { g.AddRow(g.Const(a22), g.Const(bias13)) }},
		{"Dot", func(g *Graph) { g.Dot(g.Const(a23), []float64{1, 2}) }},
		{"RangeProb", func(g *Graph) { g.RangeProb(g.Const(a23), a22) }},
		{"STGumbelShape", func(g *Graph) {
			rng := rand.New(rand.NewSource(1))
			g.STGumbel(g.Const(a23), a22, 1, rng)
		}},
		{"STGumbelTau", func(g *Graph) {
			rng := rand.New(rand.NewSource(1))
			g.STGumbel(g.Const(a23), a23, 0, rng)
		}},
		{"SliceColsRange", func(g *Graph) { g.SliceCols(g.Const(a23), 2, 5) }},
		{"SliceRowsRange", func(g *Graph) { g.SliceRows(g.Const(a23), 1, 5) }},
		{"ConcatColsRows", func(g *Graph) { g.ConcatCols(g.Const(a23), g.Const(a32)) }},
		{"ConcatRowsCols", func(g *Graph) { g.ConcatRows(g.Const(a23), g.Const(a32)) }},
		{"AddConst", func(g *Graph) { g.AddConst(g.Const(a23), a22) }},
		{"LayerNorm", func(g *Graph) {
			g.LayerNorm(g.Const(a23), g.Const(New(1, 2)), g.Const(New(1, 3)), 1e-5)
		}},
		{"ConcatColsEmpty", func(g *Graph) { g.ConcatCols() }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted mismatched shapes", c.name)
				}
			}()
			c.fn(NewGraph())
		}()
	}
}
