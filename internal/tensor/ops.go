package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// logEps floors arguments to Log and Reciprocal so gradients stay finite.
const logEps = 1e-12

// MatMul returns a·b with gradient support for both operands.
func (g *Graph) MatMul(a, b *Node) *Node {
	out := New(a.Val.Rows, b.Val.Cols)
	MatMulInto(out, a.Val, b.Val)
	n := g.newNode(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				tmp := New(a.Val.Rows, a.Val.Cols)
				MatMulTransBInto(tmp, n.Grad, b.Val)
				a.Grad.AddInPlace(tmp)
			}
			if b.requiresGrad {
				tmp := New(b.Val.Rows, b.Val.Cols)
				MatMulTransAInto(tmp, a.Val, n.Grad)
				b.Grad.AddInPlace(tmp)
			}
		}
	}
	return n
}

// MulConst returns a⊙m for a constant mask m (used for MADE weight masks).
// The gradient to a is likewise masked.
func (g *Graph) MulConst(a *Node, m *Tensor) *Node {
	if !a.Val.SameShape(m) {
		panic("tensor: MulConst shape mismatch")
	}
	out := New(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = v * m.Data[i]
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i, gv := range n.Grad.Data {
				a.Grad.Data[i] += gv * m.Data[i]
			}
		}
	}
	return n
}

// AddRow broadcasts the 1×m bias b over every row of a.
func (g *Graph) AddRow(a, b *Node) *Node {
	if b.Val.Rows != 1 || b.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("tensor: AddRow shape mismatch %v + %v", a.Val, b.Val))
	}
	out := New(a.Val.Rows, a.Val.Cols)
	for i := 0; i < a.Val.Rows; i++ {
		arow := a.Val.Row(i)
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = v + b.Val.Data[j]
		}
	}
	n := g.newNode(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				a.Grad.AddInPlace(n.Grad)
			}
			if b.requiresGrad {
				for i := 0; i < n.Grad.Rows; i++ {
					grow := n.Grad.Row(i)
					for j, gv := range grow {
						b.Grad.Data[j] += gv
					}
				}
			}
		}
	}
	return n
}

// Add returns a+b elementwise.
func (g *Graph) Add(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("tensor: Add shape mismatch")
	}
	out := New(a.Val.Rows, a.Val.Cols)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] + b.Val.Data[i]
	}
	n := g.newNode(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				a.Grad.AddInPlace(n.Grad)
			}
			if b.requiresGrad {
				b.Grad.AddInPlace(n.Grad)
			}
		}
	}
	return n
}

// Sub returns a−b elementwise.
func (g *Graph) Sub(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("tensor: Sub shape mismatch")
	}
	out := New(a.Val.Rows, a.Val.Cols)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] - b.Val.Data[i]
	}
	n := g.newNode(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				a.Grad.AddInPlace(n.Grad)
			}
			if b.requiresGrad {
				for i, gv := range n.Grad.Data {
					b.Grad.Data[i] -= gv
				}
			}
		}
	}
	return n
}

// MulElem returns a⊙b elementwise.
func (g *Graph) MulElem(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("tensor: MulElem shape mismatch")
	}
	out := New(a.Val.Rows, a.Val.Cols)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] * b.Val.Data[i]
	}
	n := g.newNode(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				for i, gv := range n.Grad.Data {
					a.Grad.Data[i] += gv * b.Val.Data[i]
				}
			}
			if b.requiresGrad {
				for i, gv := range n.Grad.Data {
					b.Grad.Data[i] += gv * a.Val.Data[i]
				}
			}
		}
	}
	return n
}

// ReLU returns max(a, 0) elementwise.
func (g *Graph) ReLU(a *Node) *Node {
	out := New(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i, gv := range n.Grad.Data {
				if a.Val.Data[i] > 0 {
					a.Grad.Data[i] += gv
				}
			}
		}
	}
	return n
}

// Scale returns s·a.
func (g *Graph) Scale(a *Node, s float64) *Node {
	out := New(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = v * s
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i, gv := range n.Grad.Data {
				a.Grad.Data[i] += gv * s
			}
		}
	}
	return n
}

// Log returns ln(max(a, ε)) elementwise.
func (g *Graph) Log(a *Node) *Node {
	out := New(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = math.Log(math.Max(v, logEps))
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i, gv := range n.Grad.Data {
				a.Grad.Data[i] += gv / math.Max(a.Val.Data[i], logEps)
			}
		}
	}
	return n
}

// Square returns a² elementwise.
func (g *Graph) Square(a *Node) *Node {
	out := New(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = v * v
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i, gv := range n.Grad.Data {
				a.Grad.Data[i] += 2 * gv * a.Val.Data[i]
			}
		}
	}
	return n
}

// Mean returns the scalar mean of all elements of a as a 1×1 node.
func (g *Graph) Mean(a *Node) *Node {
	out := New(1, 1)
	var s float64
	for _, v := range a.Val.Data {
		s += v
	}
	inv := 1 / float64(len(a.Val.Data))
	out.Data[0] = s * inv
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			gv := n.Grad.Data[0] * inv
			for i := range a.Grad.Data {
				a.Grad.Data[i] += gv
			}
		}
	}
	return n
}

// SumAll returns the scalar sum of all elements of a as a 1×1 node.
func (g *Graph) SumAll(a *Node) *Node {
	out := New(1, 1)
	var s float64
	for _, v := range a.Val.Data {
		s += v
	}
	out.Data[0] = s
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			gv := n.Grad.Data[0]
			for i := range a.Grad.Data {
				a.Grad.Data[i] += gv
			}
		}
	}
	return n
}

// Dot returns, per row i, Σ_j a_ij·v_j as a batch×1 node. v is constant.
// Used to decode a (relaxed) one-hot row into a scalar value such as a
// fanout factor.
func (g *Graph) Dot(a *Node, v []float64) *Node {
	if a.Val.Cols != len(v) {
		panic("tensor: Dot length mismatch")
	}
	out := New(a.Val.Rows, 1)
	for i := 0; i < a.Val.Rows; i++ {
		arow := a.Val.Row(i)
		var s float64
		for j, av := range arow {
			s += av * v[j]
		}
		out.Data[i] = s
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i := 0; i < a.Val.Rows; i++ {
				gv := n.Grad.Data[i]
				if gv == 0 {
					continue
				}
				grow := a.Grad.Row(i)
				for j, vv := range v {
					grow[j] += gv * vv
				}
			}
		}
	}
	return n
}

// Reciprocal returns 1/max(a, ε) elementwise.
func (g *Graph) Reciprocal(a *Node) *Node {
	out := New(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = 1 / math.Max(v, logEps)
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i, gv := range n.Grad.Data {
				d := math.Max(a.Val.Data[i], logEps)
				a.Grad.Data[i] -= gv / (d * d)
			}
		}
	}
	return n
}

// ConcatCols concatenates the parts horizontally: all parts must share the
// same row count; the result has Σ cols columns.
func (g *Graph) ConcatCols(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := parts[0].Val.Rows
	total := 0
	for _, p := range parts {
		if p.Val.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		total += p.Val.Cols
	}
	out := New(rows, total)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Row(i)[off:off+p.Val.Cols], p.Val.Row(i))
		}
		off += p.Val.Cols
	}
	n := g.newNode(out, parts...)
	if n.requiresGrad {
		n.backward = func() {
			off := 0
			for _, p := range parts {
				if p.requiresGrad {
					for i := 0; i < rows; i++ {
						grow := n.Grad.Row(i)[off : off+p.Val.Cols]
						prow := p.Grad.Row(i)
						for j, gv := range grow {
							prow[j] += gv
						}
					}
				}
				off += p.Val.Cols
			}
		}
	}
	return n
}

// SliceCols returns the column range [off, off+width) of a as a new node.
func (g *Graph) SliceCols(a *Node, off, width int) *Node {
	if off < 0 || off+width > a.Val.Cols {
		panic("tensor: SliceCols out of range")
	}
	out := New(a.Val.Rows, width)
	for i := 0; i < a.Val.Rows; i++ {
		copy(out.Row(i), a.Val.Row(i)[off:off+width])
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i := 0; i < a.Val.Rows; i++ {
				grow := n.Grad.Row(i)
				arow := a.Grad.Row(i)[off : off+width]
				for j, gv := range grow {
					arow[j] += gv
				}
			}
		}
	}
	return n
}

// RangeProb computes, per row, the probability mass that softmax(logits)
// places inside the 0/1 mask: out_i = Σ_j mask_ij · softmax(logits_i)_j.
// This is the differentiable P(X ∈ R | x_<i) at the heart of progressive
// sampling. The mask is constant.
func (g *Graph) RangeProb(logits *Node, mask *Tensor) *Node {
	if !logits.Val.SameShape(mask) {
		panic("tensor: RangeProb shape mismatch")
	}
	rows, cols := logits.Val.Rows, logits.Val.Cols
	soft := New(rows, cols)
	out := New(rows, 1)
	for i := 0; i < rows; i++ {
		SoftmaxRowInto(soft.Row(i), logits.Val.Row(i))
		var p float64
		srow := soft.Row(i)
		mrow := mask.Row(i)
		for j, sv := range srow {
			p += sv * mrow[j]
		}
		out.Data[i] = p
	}
	n := g.newNode(out, logits)
	if n.requiresGrad {
		n.backward = func() {
			// d p/d logit_j = s_j (mask_j − p).
			for i := 0; i < rows; i++ {
				gv := n.Grad.Data[i]
				if gv == 0 {
					continue
				}
				p := out.Data[i]
				srow := soft.Row(i)
				mrow := mask.Row(i)
				lrow := logits.Grad.Row(i)
				for j, sv := range srow {
					lrow[j] += gv * sv * (mrow[j] - p)
				}
			}
		}
	}
	return n
}

// STGumbel performs straight-through Gumbel-Softmax sampling restricted to
// the mask support: the forward value is a hard one-hot drawn from the
// in-mask renormalized softmax with Gumbel noise at temperature tau; the
// backward pass uses the soft (relaxed) sample's Jacobian so gradients flow
// through the categorical choice, enabling Differentiable Progressive
// Sampling (Wu & Cong, SIGMOD'21). Fractional mask entries in (0, 1] act as
// multiplicative priors (log-mask added to the logits), which is how
// intervalized columns express partial bin coverage.
func (g *Graph) STGumbel(logits *Node, mask *Tensor, tau float64, rng *rand.Rand) *Node {
	if !logits.Val.SameShape(mask) {
		panic("tensor: STGumbel shape mismatch")
	}
	if tau <= 0 {
		panic("tensor: STGumbel requires tau > 0")
	}
	rows, cols := logits.Val.Rows, logits.Val.Cols
	soft := New(rows, cols) // relaxed sample, kept for backward
	out := New(rows, cols)  // hard one-hot
	perturbed := make([]float64, cols)
	for i := 0; i < rows; i++ {
		lrow := logits.Val.Row(i)
		mrow := mask.Row(i)
		best, bestIdx := math.Inf(-1), -1
		for j := range perturbed {
			if mrow[j] == 0 {
				perturbed[j] = math.Inf(-1)
				continue
			}
			gnoise := -math.Log(-math.Log(rng.Float64() + 1e-20))
			perturbed[j] = (lrow[j] + math.Log(mrow[j]) + gnoise) / tau
			if perturbed[j] > best {
				best, bestIdx = perturbed[j], j
			}
		}
		if bestIdx < 0 {
			panic("tensor: STGumbel empty mask row")
		}
		SoftmaxRowInto(soft.Row(i), perturbed)
		out.Set(i, bestIdx, 1)
	}
	n := g.newNode(out, logits)
	if n.requiresGrad {
		n.backward = func() {
			// Straight-through: treat out as soft. Softmax Jacobian at
			// temperature tau: dy_j/dlogit_k = (1/tau)·y_j(δ_jk − y_k).
			for i := 0; i < rows; i++ {
				grow := n.Grad.Row(i)
				srow := soft.Row(i)
				var dot float64
				for j, gv := range grow {
					dot += gv * srow[j]
				}
				lrow := logits.Grad.Row(i)
				for j, sv := range srow {
					if sv == 0 {
						continue
					}
					lrow[j] += sv * (grow[j] - dot) / tau
				}
			}
		}
	}
	return n
}

// SoftmaxRows applies a numerically stable softmax to every row.
func (g *Graph) SoftmaxRows(a *Node) *Node {
	out := New(a.Val.Rows, a.Val.Cols)
	for i := 0; i < a.Val.Rows; i++ {
		SoftmaxRowInto(out.Row(i), a.Val.Row(i))
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			for i := 0; i < a.Val.Rows; i++ {
				yrow := out.Row(i)
				grow := n.Grad.Row(i)
				var dot float64
				for j, gv := range grow {
					dot += gv * yrow[j]
				}
				arow := a.Grad.Row(i)
				for j, yv := range yrow {
					arow[j] += yv * (grow[j] - dot)
				}
			}
		}
	}
	return n
}

// MatMulTB returns a·bᵀ with gradient support for both operands (used for
// attention scores Q·Kᵀ).
func (g *Graph) MatMulTB(a, b *Node) *Node {
	out := New(a.Val.Rows, b.Val.Rows)
	MatMulTransBInto(out, a.Val, b.Val)
	n := g.newNode(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				// dA = G·B
				tmp := New(a.Val.Rows, a.Val.Cols)
				MatMulInto(tmp, n.Grad, b.Val)
				a.Grad.AddInPlace(tmp)
			}
			if b.requiresGrad {
				// dB = Gᵀ·A
				tmp := New(b.Val.Rows, b.Val.Cols)
				MatMulTransAInto(tmp, n.Grad, a.Val)
				b.Grad.AddInPlace(tmp)
			}
		}
	}
	return n
}

// AddConst returns a + c for a constant tensor c (e.g. an attention mask
// of 0 / −inf entries; -1e30 is used for masked positions so gradients
// stay finite).
func (g *Graph) AddConst(a *Node, c *Tensor) *Node {
	if !a.Val.SameShape(c) {
		panic("tensor: AddConst shape mismatch")
	}
	out := New(a.Val.Rows, a.Val.Cols)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] + c.Data[i]
	}
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			a.Grad.AddInPlace(n.Grad)
		}
	}
	return n
}

// LayerNorm normalizes every row of a to zero mean and unit variance, then
// applies the learned elementwise gain and bias (both 1×cols).
func (g *Graph) LayerNorm(a, gain, bias *Node, eps float64) *Node {
	rows, cols := a.Val.Rows, a.Val.Cols
	if gain.Val.Cols != cols || bias.Val.Cols != cols || gain.Val.Rows != 1 || bias.Val.Rows != 1 {
		panic("tensor: LayerNorm parameter shape mismatch")
	}
	out := New(rows, cols)
	xhat := New(rows, cols)
	invStd := make([]float64, rows)
	for i := 0; i < rows; i++ {
		arow := a.Val.Row(i)
		var mean float64
		for _, v := range arow {
			mean += v
		}
		mean /= float64(cols)
		var varsum float64
		for _, v := range arow {
			d := v - mean
			varsum += d * d
		}
		inv := 1 / math.Sqrt(varsum/float64(cols)+eps)
		invStd[i] = inv
		xrow := xhat.Row(i)
		orow := out.Row(i)
		for j, v := range arow {
			xrow[j] = (v - mean) * inv
			orow[j] = xrow[j]*gain.Val.Data[j] + bias.Val.Data[j]
		}
	}
	n := g.newNode(out, a, gain, bias)
	if n.requiresGrad {
		n.backward = func() {
			for i := 0; i < rows; i++ {
				grow := n.Grad.Row(i)
				xrow := xhat.Row(i)
				if gain.requiresGrad {
					for j, gv := range grow {
						gain.Grad.Data[j] += gv * xrow[j]
					}
				}
				if bias.requiresGrad {
					for j, gv := range grow {
						bias.Grad.Data[j] += gv
					}
				}
				if a.requiresGrad {
					// dL/dx = inv/N · (N·dxhat − Σdxhat − xhat·Σ(dxhat·xhat))
					N := float64(cols)
					var sumD, sumDX float64
					dxhat := make([]float64, cols)
					for j, gv := range grow {
						dxhat[j] = gv * gain.Val.Data[j]
						sumD += dxhat[j]
						sumDX += dxhat[j] * xrow[j]
					}
					arow := a.Grad.Row(i)
					for j := range dxhat {
						arow[j] += invStd[i] / N * (N*dxhat[j] - sumD - xrow[j]*sumDX)
					}
				}
			}
		}
	}
	return n
}

// ConcatRows stacks the parts vertically: all parts must share the same
// column count.
func (g *Graph) ConcatRows(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := parts[0].Val.Cols
	total := 0
	for _, p := range parts {
		if p.Val.Cols != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		total += p.Val.Rows
	}
	out := New(total, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off*cols:], p.Val.Data)
		off += p.Val.Rows
	}
	n := g.newNode(out, parts...)
	if n.requiresGrad {
		n.backward = func() {
			off := 0
			for _, p := range parts {
				if p.requiresGrad {
					src := n.Grad.Data[off*cols : (off+p.Val.Rows)*cols]
					for i, gv := range src {
						p.Grad.Data[i] += gv
					}
				}
				off += p.Val.Rows
			}
		}
	}
	return n
}

// SliceRows returns rows [off, off+count) of a as a new node.
func (g *Graph) SliceRows(a *Node, off, count int) *Node {
	if off < 0 || off+count > a.Val.Rows {
		panic("tensor: SliceRows out of range")
	}
	cols := a.Val.Cols
	out := New(count, cols)
	copy(out.Data, a.Val.Data[off*cols:(off+count)*cols])
	n := g.newNode(out, a)
	if n.requiresGrad {
		n.backward = func() {
			dst := a.Grad.Data[off*cols : (off+count)*cols]
			for i, gv := range n.Grad.Data {
				dst[i] += gv
			}
		}
	}
	return n
}
