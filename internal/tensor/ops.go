package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// logEps floors arguments to Log and Reciprocal so gradients stay finite.
const logEps = 1e-12

// MatMul returns a·b with gradient support for both operands.
func (g *Graph) MatMul(a, b *Node) *Node {
	out := g.alloc(a.Val.Rows, b.Val.Cols, false)
	MatMulInto(out, a.Val, b.Val)
	n := g.push(out, opMatMul, a.requiresGrad || b.requiresGrad)
	n.a, n.b = a, b
	return n
}

// MatMulTB returns a·bᵀ with gradient support for both operands (used for
// attention scores Q·Kᵀ).
func (g *Graph) MatMulTB(a, b *Node) *Node {
	out := g.alloc(a.Val.Rows, b.Val.Rows, false)
	MatMulTransBInto(out, a.Val, b.Val)
	n := g.push(out, opMatMulTB, a.requiresGrad || b.requiresGrad)
	n.a, n.b = a, b
	return n
}

// MaskedMatMul returns x·(W∘Mask) where the product W∘Mask comes from the
// dirty-bit cache, so the mask multiply is skipped on every forward pass
// whose weights are unchanged since the last optimizer step. w must be the
// node binding the cache's weight tensor (typically g.Param(cache.Weight())).
// Gradients flow to x through the masked weights and to W through the mask,
// exactly as for MatMul(x, MulConst(w, mask)).
func (g *Graph) MaskedMatMul(x, w *Node, cache *MaskedWeight) *Node {
	if w.Val != cache.Weight() {
		panic("tensor: MaskedMatMul weight node does not bind the cache's weight tensor")
	}
	mw := cache.Get()
	out := g.alloc(x.Val.Rows, mw.Cols, false)
	MatMulMaskedInto(out, x.Val, mw, cache.spans)
	n := g.push(out, opMaskedMatMul, x.requiresGrad || w.requiresGrad)
	n.a, n.b = x, w
	n.aux1 = cache.Mask()
	n.aux2 = mw
	n.mwc = cache
	return n
}

// MulConst returns a⊙m for a constant mask m (used for MADE weight masks).
// The gradient to a is likewise masked.
func (g *Graph) MulConst(a *Node, m *Tensor) *Node {
	if !a.Val.SameShape(m) {
		panic("tensor: MulConst shape mismatch")
	}
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = v * m.Data[i]
	}
	n := g.push(out, opMulConst, a.requiresGrad)
	n.a = a
	n.aux1 = m
	return n
}

// AddRow broadcasts the 1×m bias b over every row of a.
func (g *Graph) AddRow(a, b *Node) *Node {
	if b.Val.Rows != 1 || b.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("tensor: AddRow shape mismatch %v + %v", a.Val, b.Val))
	}
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i := 0; i < a.Val.Rows; i++ {
		arow := a.Val.Row(i)
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = v + b.Val.Data[j]
		}
	}
	n := g.push(out, opAddRow, a.requiresGrad || b.requiresGrad)
	n.a, n.b = a, b
	return n
}

// Add returns a+b elementwise.
func (g *Graph) Add(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("tensor: Add shape mismatch")
	}
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] + b.Val.Data[i]
	}
	n := g.push(out, opAdd, a.requiresGrad || b.requiresGrad)
	n.a, n.b = a, b
	return n
}

// Sub returns a−b elementwise.
func (g *Graph) Sub(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("tensor: Sub shape mismatch")
	}
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] - b.Val.Data[i]
	}
	n := g.push(out, opSub, a.requiresGrad || b.requiresGrad)
	n.a, n.b = a, b
	return n
}

// MulElem returns a⊙b elementwise.
func (g *Graph) MulElem(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("tensor: MulElem shape mismatch")
	}
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] * b.Val.Data[i]
	}
	n := g.push(out, opMulElem, a.requiresGrad || b.requiresGrad)
	n.a, n.b = a, b
	return n
}

// ReLU returns max(a, 0) elementwise.
func (g *Graph) ReLU(a *Node) *Node {
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	n := g.push(out, opReLU, a.requiresGrad)
	n.a = a
	return n
}

// Scale returns s·a.
func (g *Graph) Scale(a *Node, s float64) *Node {
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = v * s
	}
	n := g.push(out, opScale, a.requiresGrad)
	n.a = a
	n.f1 = s
	return n
}

// Log returns ln(max(a, ε)) elementwise.
func (g *Graph) Log(a *Node) *Node {
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = math.Log(math.Max(v, logEps))
	}
	n := g.push(out, opLog, a.requiresGrad)
	n.a = a
	return n
}

// Square returns a² elementwise.
func (g *Graph) Square(a *Node) *Node {
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = v * v
	}
	n := g.push(out, opSquare, a.requiresGrad)
	n.a = a
	return n
}

// Mean returns the scalar mean of all elements of a as a 1×1 node.
func (g *Graph) Mean(a *Node) *Node {
	out := g.alloc(1, 1, false)
	var s float64
	for _, v := range a.Val.Data {
		s += v
	}
	inv := 1 / float64(len(a.Val.Data))
	out.Data[0] = s * inv
	n := g.push(out, opMean, a.requiresGrad)
	n.a = a
	n.f1 = inv
	return n
}

// SumAll returns the scalar sum of all elements of a as a 1×1 node.
func (g *Graph) SumAll(a *Node) *Node {
	out := g.alloc(1, 1, false)
	var s float64
	for _, v := range a.Val.Data {
		s += v
	}
	out.Data[0] = s
	n := g.push(out, opSumAll, a.requiresGrad)
	n.a = a
	return n
}

// Dot returns, per row i, Σ_j a_ij·v_j as a batch×1 node. v is constant.
// Used to decode a (relaxed) one-hot row into a scalar value such as a
// fanout factor.
func (g *Graph) Dot(a *Node, v []float64) *Node {
	if a.Val.Cols != len(v) {
		panic("tensor: Dot length mismatch")
	}
	out := g.alloc(a.Val.Rows, 1, false)
	for i := 0; i < a.Val.Rows; i++ {
		arow := a.Val.Row(i)
		var s float64
		for j, av := range arow {
			s += av * v[j]
		}
		out.Data[i] = s
	}
	n := g.push(out, opDot, a.requiresGrad)
	n.a = a
	n.auxF = v
	return n
}

// Reciprocal returns 1/max(a, ε) elementwise.
func (g *Graph) Reciprocal(a *Node) *Node {
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = 1 / math.Max(v, logEps)
	}
	n := g.push(out, opReciprocal, a.requiresGrad)
	n.a = a
	return n
}

// ConcatCols concatenates the parts horizontally: all parts must share the
// same row count; the result has Σ cols columns.
func (g *Graph) ConcatCols(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := parts[0].Val.Rows
	total := 0
	req := false
	for _, p := range parts {
		if p.Val.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		total += p.Val.Cols
		req = req || p.requiresGrad
	}
	out := g.alloc(rows, total, false)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Row(i)[off:off+p.Val.Cols], p.Val.Row(i))
		}
		off += p.Val.Cols
	}
	n := g.push(out, opConcatCols, req)
	n.parts = g.copyParts(parts)
	return n
}

// ConcatRows stacks the parts vertically: all parts must share the same
// column count.
func (g *Graph) ConcatRows(parts ...*Node) *Node {
	if len(parts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := parts[0].Val.Cols
	total := 0
	req := false
	for _, p := range parts {
		if p.Val.Cols != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		total += p.Val.Rows
		req = req || p.requiresGrad
	}
	out := g.alloc(total, cols, false)
	off := 0
	for _, p := range parts {
		copy(out.Data[off*cols:], p.Val.Data)
		off += p.Val.Rows
	}
	n := g.push(out, opConcatRows, req)
	n.parts = g.copyParts(parts)
	return n
}

// SliceCols returns the column range [off, off+width) of a as a new node.
func (g *Graph) SliceCols(a *Node, off, width int) *Node {
	if off < 0 || off+width > a.Val.Cols {
		panic("tensor: SliceCols out of range")
	}
	out := g.alloc(a.Val.Rows, width, false)
	for i := 0; i < a.Val.Rows; i++ {
		copy(out.Row(i), a.Val.Row(i)[off:off+width])
	}
	n := g.push(out, opSliceCols, a.requiresGrad)
	n.a = a
	n.i1, n.i2 = off, width
	return n
}

// SliceRows returns rows [off, off+count) of a as a new node.
func (g *Graph) SliceRows(a *Node, off, count int) *Node {
	if off < 0 || off+count > a.Val.Rows {
		panic("tensor: SliceRows out of range")
	}
	cols := a.Val.Cols
	out := g.alloc(count, cols, false)
	copy(out.Data, a.Val.Data[off*cols:(off+count)*cols])
	n := g.push(out, opSliceRows, a.requiresGrad)
	n.a = a
	n.i1, n.i2 = off, count
	return n
}

// RangeProb computes, per row, the probability mass that softmax(logits)
// places inside the 0/1 mask: out_i = Σ_j mask_ij · softmax(logits_i)_j.
// This is the differentiable P(X ∈ R | x_<i) at the heart of progressive
// sampling. The mask is constant.
func (g *Graph) RangeProb(logits *Node, mask *Tensor) *Node {
	if !logits.Val.SameShape(mask) {
		panic("tensor: RangeProb shape mismatch")
	}
	rows, cols := logits.Val.Rows, logits.Val.Cols
	soft := g.alloc(rows, cols, false)
	out := g.alloc(rows, 1, false)
	for i := 0; i < rows; i++ {
		SoftmaxRowInto(soft.Row(i), logits.Val.Row(i))
		var p float64
		srow := soft.Row(i)
		mrow := mask.Row(i)
		for j, sv := range srow {
			p += sv * mrow[j]
		}
		out.Data[i] = p
	}
	n := g.push(out, opRangeProb, logits.requiresGrad)
	n.a = logits
	n.aux1 = soft
	n.aux2 = mask
	return n
}

// STGumbel performs straight-through Gumbel-Softmax sampling restricted to
// the mask support: the forward value is a hard one-hot drawn from the
// in-mask renormalized softmax with Gumbel noise at temperature tau; the
// backward pass uses the soft (relaxed) sample's Jacobian so gradients flow
// through the categorical choice, enabling Differentiable Progressive
// Sampling (Wu & Cong, SIGMOD'21). Fractional mask entries in (0, 1] act as
// multiplicative priors (log-mask added to the logits), which is how
// intervalized columns express partial bin coverage.
func (g *Graph) STGumbel(logits *Node, mask *Tensor, tau float64, rng *rand.Rand) *Node {
	if !logits.Val.SameShape(mask) {
		panic("tensor: STGumbel shape mismatch")
	}
	if tau <= 0 {
		panic("tensor: STGumbel requires tau > 0")
	}
	rows, cols := logits.Val.Rows, logits.Val.Cols
	soft := g.alloc(rows, cols, false) // relaxed sample, kept for backward
	out := g.alloc(rows, cols, true)   // hard one-hot
	perturbed := g.alloc(1, cols, false).Data
	for i := 0; i < rows; i++ {
		lrow := logits.Val.Row(i)
		mrow := mask.Row(i)
		best, bestIdx := math.Inf(-1), -1
		for j := range perturbed {
			if mrow[j] == 0 {
				perturbed[j] = math.Inf(-1)
				continue
			}
			gnoise := -math.Log(-math.Log(rng.Float64() + 1e-20))
			perturbed[j] = (lrow[j] + math.Log(mrow[j]) + gnoise) / tau
			if perturbed[j] > best {
				best, bestIdx = perturbed[j], j
			}
		}
		if bestIdx < 0 {
			panic("tensor: STGumbel empty mask row")
		}
		SoftmaxRowInto(soft.Row(i), perturbed)
		out.Set(i, bestIdx, 1)
	}
	n := g.push(out, opSTGumbel, logits.requiresGrad)
	n.a = logits
	n.aux1 = soft
	n.f1 = tau
	return n
}

// SoftmaxRows applies a numerically stable softmax to every row.
func (g *Graph) SoftmaxRows(a *Node) *Node {
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i := 0; i < a.Val.Rows; i++ {
		SoftmaxRowInto(out.Row(i), a.Val.Row(i))
	}
	n := g.push(out, opSoftmaxRows, a.requiresGrad)
	n.a = a
	return n
}

// AddConst returns a + c for a constant tensor c (e.g. an attention mask
// of 0 / −inf entries; -1e30 is used for masked positions so gradients
// stay finite).
func (g *Graph) AddConst(a *Node, c *Tensor) *Node {
	if !a.Val.SameShape(c) {
		panic("tensor: AddConst shape mismatch")
	}
	out := g.alloc(a.Val.Rows, a.Val.Cols, false)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] + c.Data[i]
	}
	n := g.push(out, opAddConst, a.requiresGrad)
	n.a = a
	return n
}

// LayerNorm normalizes every row of a to zero mean and unit variance, then
// applies the learned elementwise gain and bias (both 1×cols).
func (g *Graph) LayerNorm(a, gain, bias *Node, eps float64) *Node {
	rows, cols := a.Val.Rows, a.Val.Cols
	if gain.Val.Cols != cols || bias.Val.Cols != cols || gain.Val.Rows != 1 || bias.Val.Rows != 1 {
		panic("tensor: LayerNorm parameter shape mismatch")
	}
	out := g.alloc(rows, cols, false)
	xhat := g.alloc(rows, cols, false)
	invStd := g.alloc(1, rows, false)
	for i := 0; i < rows; i++ {
		arow := a.Val.Row(i)
		var mean float64
		for _, v := range arow {
			mean += v
		}
		mean /= float64(cols)
		var varsum float64
		for _, v := range arow {
			d := v - mean
			varsum += d * d
		}
		inv := 1 / math.Sqrt(varsum/float64(cols)+eps)
		invStd.Data[i] = inv
		xrow := xhat.Row(i)
		orow := out.Row(i)
		for j, v := range arow {
			xrow[j] = (v - mean) * inv
			orow[j] = xrow[j]*gain.Val.Data[j] + bias.Val.Data[j]
		}
	}
	n := g.push(out, opLayerNorm, a.requiresGrad || gain.requiresGrad || bias.requiresGrad)
	n.a, n.b, n.c = a, gain, bias
	n.aux1 = xhat
	n.aux2 = invStd
	return n
}

// backstep propagates n.Grad into n's operands. Temporaries come from the
// tape's pool, so a warm tape's backward pass performs no heap allocation.
func (g *Graph) backstep(n *Node) {
	switch n.op {
	case opMatMul:
		a, b := n.a, n.b
		if a.requiresGrad {
			MatMulTransBAddInto(a.Grad, n.Grad, b.Val)
		}
		if b.requiresGrad {
			MatMulTransAAddInto(b.Grad, a.Val, n.Grad)
		}
	case opMatMulTB:
		a, b := n.a, n.b
		if a.requiresGrad {
			// dA = G·B
			MatMulAddInto(a.Grad, n.Grad, b.Val)
		}
		if b.requiresGrad {
			// dB = Gᵀ·A
			MatMulTransAAddInto(b.Grad, n.Grad, a.Val)
		}
	case opMaskedMatMul:
		x, w := n.a, n.b
		spans := n.mwc.spans
		if x.requiresGrad {
			// dX = G·(W∘M)ᵀ — the cached product saved at forward time.
			MatMulMaskedTransBAddInto(x.Grad, n.Grad, n.aux2, spans)
		}
		if w.requiresGrad {
			// dW = (Xᵀ·G)∘M: the masked tmp kernel zeroes outside each
			// row's span, so only the span needs the mask multiply.
			tmp := g.alloc(w.Val.Rows, w.Val.Cols, false)
			MatMulMaskedTransAInto(tmp, x.Val, n.Grad, spans)
			md := n.aux1.Data
			wg := w.Grad.Data
			cols := w.Val.Cols
			for r := 0; r < w.Val.Rows; r++ {
				for i := r*cols + spans[2*r]; i < r*cols+spans[2*r+1]; i++ {
					wg[i] += tmp.Data[i] * md[i]
				}
			}
		}
	case opMulConst:
		a, m := n.a, n.aux1
		for i, gv := range n.Grad.Data {
			a.Grad.Data[i] += gv * m.Data[i]
		}
	case opAddRow:
		a, b := n.a, n.b
		if a.requiresGrad {
			a.Grad.AddInPlace(n.Grad)
		}
		if b.requiresGrad {
			for i := 0; i < n.Grad.Rows; i++ {
				grow := n.Grad.Row(i)
				for j, gv := range grow {
					b.Grad.Data[j] += gv
				}
			}
		}
	case opAdd:
		if n.a.requiresGrad {
			n.a.Grad.AddInPlace(n.Grad)
		}
		if n.b.requiresGrad {
			n.b.Grad.AddInPlace(n.Grad)
		}
	case opSub:
		if n.a.requiresGrad {
			n.a.Grad.AddInPlace(n.Grad)
		}
		if n.b.requiresGrad {
			for i, gv := range n.Grad.Data {
				n.b.Grad.Data[i] -= gv
			}
		}
	case opMulElem:
		a, b := n.a, n.b
		if a.requiresGrad {
			for i, gv := range n.Grad.Data {
				a.Grad.Data[i] += gv * b.Val.Data[i]
			}
		}
		if b.requiresGrad {
			for i, gv := range n.Grad.Data {
				b.Grad.Data[i] += gv * a.Val.Data[i]
			}
		}
	case opReLU:
		a := n.a
		for i, gv := range n.Grad.Data {
			if a.Val.Data[i] > 0 {
				a.Grad.Data[i] += gv
			}
		}
	case opScale:
		a, s := n.a, n.f1
		for i, gv := range n.Grad.Data {
			a.Grad.Data[i] += gv * s
		}
	case opLog:
		a := n.a
		for i, gv := range n.Grad.Data {
			a.Grad.Data[i] += gv / math.Max(a.Val.Data[i], logEps)
		}
	case opSquare:
		a := n.a
		for i, gv := range n.Grad.Data {
			a.Grad.Data[i] += 2 * gv * a.Val.Data[i]
		}
	case opMean:
		a := n.a
		gv := n.Grad.Data[0] * n.f1
		for i := range a.Grad.Data {
			a.Grad.Data[i] += gv
		}
	case opSumAll:
		a := n.a
		gv := n.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += gv
		}
	case opDot:
		a, v := n.a, n.auxF
		for i := 0; i < a.Val.Rows; i++ {
			gv := n.Grad.Data[i]
			if gv == 0 {
				continue
			}
			grow := a.Grad.Row(i)
			for j, vv := range v {
				grow[j] += gv * vv
			}
		}
	case opReciprocal:
		a := n.a
		for i, gv := range n.Grad.Data {
			d := math.Max(a.Val.Data[i], logEps)
			a.Grad.Data[i] -= gv / (d * d)
		}
	case opConcatCols:
		rows := n.Val.Rows
		off := 0
		for _, p := range n.parts {
			if p.requiresGrad {
				for i := 0; i < rows; i++ {
					grow := n.Grad.Row(i)[off : off+p.Val.Cols]
					prow := p.Grad.Row(i)
					for j, gv := range grow {
						prow[j] += gv
					}
				}
			}
			off += p.Val.Cols
		}
	case opConcatRows:
		cols := n.Val.Cols
		off := 0
		for _, p := range n.parts {
			if p.requiresGrad {
				src := n.Grad.Data[off*cols : (off+p.Val.Rows)*cols]
				for i, gv := range src {
					p.Grad.Data[i] += gv
				}
			}
			off += p.Val.Rows
		}
	case opSliceCols:
		a, off, width := n.a, n.i1, n.i2
		for i := 0; i < a.Val.Rows; i++ {
			grow := n.Grad.Row(i)
			arow := a.Grad.Row(i)[off : off+width]
			for j, gv := range grow {
				arow[j] += gv
			}
		}
	case opSliceRows:
		a, off, count := n.a, n.i1, n.i2
		cols := a.Val.Cols
		dst := a.Grad.Data[off*cols : (off+count)*cols]
		for i, gv := range n.Grad.Data {
			dst[i] += gv
		}
	case opRangeProb:
		// d p/d logit_j = s_j (mask_j − p).
		a, soft, mask := n.a, n.aux1, n.aux2
		for i := 0; i < soft.Rows; i++ {
			gv := n.Grad.Data[i]
			if gv == 0 {
				continue
			}
			p := n.Val.Data[i]
			srow := soft.Row(i)
			mrow := mask.Row(i)
			lrow := a.Grad.Row(i)
			for j, sv := range srow {
				lrow[j] += gv * sv * (mrow[j] - p)
			}
		}
	case opSTGumbel:
		// Straight-through: treat out as soft. Softmax Jacobian at
		// temperature tau: dy_j/dlogit_k = (1/tau)·y_j(δ_jk − y_k).
		a, soft, tau := n.a, n.aux1, n.f1
		for i := 0; i < soft.Rows; i++ {
			grow := n.Grad.Row(i)
			srow := soft.Row(i)
			var dot float64
			for j, gv := range grow {
				dot += gv * srow[j]
			}
			lrow := a.Grad.Row(i)
			for j, sv := range srow {
				if sv == 0 {
					continue
				}
				lrow[j] += sv * (grow[j] - dot) / tau
			}
		}
	case opSoftmaxRows:
		a := n.a
		for i := 0; i < n.Val.Rows; i++ {
			yrow := n.Val.Row(i)
			grow := n.Grad.Row(i)
			var dot float64
			for j, gv := range grow {
				dot += gv * yrow[j]
			}
			arow := a.Grad.Row(i)
			for j, yv := range yrow {
				arow[j] += yv * (grow[j] - dot)
			}
		}
	case opAddConst:
		n.a.Grad.AddInPlace(n.Grad)
	case opLayerNorm:
		a, gain, bias := n.a, n.b, n.c
		xhat, invStd := n.aux1, n.aux2
		rows, cols := n.Val.Rows, n.Val.Cols
		var dxhat []float64
		if a.requiresGrad {
			dxhat = g.alloc(1, cols, false).Data
		}
		for i := 0; i < rows; i++ {
			grow := n.Grad.Row(i)
			xrow := xhat.Row(i)
			if gain.requiresGrad {
				for j, gv := range grow {
					gain.Grad.Data[j] += gv * xrow[j]
				}
			}
			if bias.requiresGrad {
				for j, gv := range grow {
					bias.Grad.Data[j] += gv
				}
			}
			if a.requiresGrad {
				// dL/dx = inv/N · (N·dxhat − Σdxhat − xhat·Σ(dxhat·xhat))
				N := float64(cols)
				var sumD, sumDX float64
				for j, gv := range grow {
					dxhat[j] = gv * gain.Val.Data[j]
					sumD += dxhat[j]
					sumDX += dxhat[j] * xrow[j]
				}
				arow := a.Grad.Row(i)
				inv := invStd.Data[i]
				for j := range dxhat {
					arow[j] += inv / N * (N*dxhat[j] - sumD - xrow[j]*sumDX)
				}
			}
		}
	default:
		panic("tensor: backstep on unknown op")
	}
}
