package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := New(64, 512)
	w := New(512, 64)
	a.Randn(rng, 1)
	w.Randn(rng, 1)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, w)
	}
}

func BenchmarkMatMulSparseInput(b *testing.B) {
	// One-hot style inputs hit the zero-skip fast path.
	rng := rand.New(rand.NewSource(2))
	a := New(64, 512)
	for r := 0; r < 64; r++ {
		for k := 0; k < 12; k++ {
			a.Set(r, rng.Intn(512), 1)
		}
	}
	w := New(512, 64)
	w.Randn(rng, 1)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, w)
	}
}

func BenchmarkRangeProbBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	logits := New(64, 128)
	logits.Randn(rng, 1)
	mask := New(64, 128)
	for i := range mask.Data {
		if rng.Float64() < 0.3 {
			mask.Data[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		p := g.Param(logits)
		loss := g.Mean(g.Square(g.Log(g.RangeProb(p, mask))))
		g.Backward(loss)
	}
}

func BenchmarkSTGumbel(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	logits := New(64, 128)
	logits.Randn(rng, 1)
	mask := New(64, 128)
	mask.Fill(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		g.STGumbel(g.Const(logits), mask, 1.0, rng)
	}
}
