package engine

import (
	"math/rand"
	"testing"

	"sam/internal/workload"
)

func BenchmarkSingleTableCard(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := buildTestSchema(rng, 20000, 100)
	q := &workload.Query{Tables: []string{"root"}, Preds: []workload.Predicate{
		{Table: "root", Column: "r1", Op: workload.LE, Code: 2},
		{Table: "root", Column: "r2", Op: workload.EQ, Code: 1},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Card(s, q)
	}
}

func BenchmarkFourWayJoinCard(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := buildTestSchema(rng, 5000, 15000)
	q := &workload.Query{
		Tables: []string{"root", "b", "c", "d"},
		Preds: []workload.Predicate{
			{Table: "root", Column: "r1", Op: workload.LE, Code: 2},
			{Table: "b", Column: "b1", Op: workload.GE, Code: 1},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Card(s, q)
	}
}

func BenchmarkFOJSize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := buildTestSchema(rng, 5000, 15000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FOJSize(s)
	}
}
