package engine

import (
	"strings"
	"time"

	"sam/internal/metrics"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

// EvalWorkload executes each constraint's query against s and returns the
// Q-Errors of the measured cardinalities versus the recorded ground truth.
// When h is non-nil every query emits an obs.EvalQuery event carrying its
// estimated and true cardinality, Q-Error, and wall-clock latency — the
// signal behind the eval_qerror / eval_query_seconds metrics and -progress
// output. Queries run sequentially so per-query latencies are undistorted
// by sibling work.
func EvalWorkload(s *relation.Schema, queries []workload.CardQuery, h *obs.Hooks) []float64 {
	out := make([]float64, 0, len(queries))
	for i := range queries {
		start := time.Now()
		got := Card(s, &queries[i].Query)
		wall := time.Since(start)
		qe := metrics.QError(float64(got), float64(queries[i].Card))
		out = append(out, qe)
		h.EvalQuery(obs.EvalQuery{
			Card:   got,
			Truth:  queries[i].Card,
			QError: qe,
			Table:  strings.Join(queries[i].Tables, ","),
			Preds:  len(queries[i].Preds),
			Wall:   wall,
		})
	}
	return out
}
