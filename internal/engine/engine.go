// Package engine executes workload queries against in-memory databases:
// conjunctive filters, foreign-key joins along the schema tree, full outer
// join sizing, and timed execution. It plays the role PostgreSQL plays in
// the paper's evaluation — ground-truth cardinalities for training and test
// workloads, and wall-clock latencies for the performance-deviation
// experiments.
package engine

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"sam/internal/relation"
	"sam/internal/workload"
)

// MatchMask evaluates the conjunction of preds on every row of t and
// returns one bool per row. Predicates referencing other tables are
// ignored; unknown columns panic (queries are validated upstream).
func MatchMask(t *relation.Table, preds []workload.Predicate) []bool {
	n := t.NumRows()
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	for pi := range preds {
		p := &preds[pi]
		if p.Table != t.Name {
			continue
		}
		col := t.Col(p.Column)
		if col == nil {
			panic(fmt.Sprintf("engine: unknown column %s.%s", p.Table, p.Column))
		}
		data := col.Data
		switch p.Op {
		case workload.LE:
			lit := p.Code
			for i, c := range data {
				if c > lit {
					mask[i] = false
				}
			}
		case workload.GE:
			lit := p.Code
			for i, c := range data {
				if c < lit {
					mask[i] = false
				}
			}
		case workload.EQ:
			lit := p.Code
			for i, c := range data {
				if c != lit {
					mask[i] = false
				}
			}
		case workload.IN:
			set := make(map[int32]bool, len(p.Codes))
			for _, c := range p.Codes {
				set[c] = true
			}
			for i, c := range data {
				if !set[c] {
					mask[i] = false
				}
			}
		default:
			panic(fmt.Sprintf("engine: unknown op %v", p.Op))
		}
	}
	return mask
}

// Card returns the cardinality of q on s: the number of matching rows for a
// single relation, or the inner equi-join result size along the schema's FK
// edges for multi-relation queries.
func Card(s *relation.Schema, q *workload.Query) int64 {
	if len(q.Tables) == 1 {
		t := s.Table(q.Tables[0])
		mask := MatchMask(t, q.Preds)
		var n int64
		for _, m := range mask {
			if m {
				n++
			}
		}
		return n
	}
	inQ := make(map[string]bool, len(q.Tables))
	for _, name := range q.Tables {
		inQ[name] = true
	}
	root := ""
	for _, name := range q.Tables {
		parent := s.Table(name).Parent
		if parent == "" || !inQ[parent] {
			root = name
			break
		}
	}
	if root == "" {
		panic("engine: join query has no local root")
	}
	rt := s.Table(root)
	mask := MatchMask(rt, q.Preds)
	childCounts := childJoinCounts(s, q, inQ, root)
	var total int64
	for i := 0; i < rt.NumRows(); i++ {
		if !mask[i] {
			continue
		}
		w := int64(1)
		pk := rt.PK(i)
		for _, cnt := range childCounts {
			w *= cnt[pk]
			if w == 0 {
				break
			}
		}
		total += w
	}
	return total
}

// childJoinCounts computes, for every child of parent participating in the
// query, the inner-join row multiplicity per parent key, recursing down the
// subtree.
func childJoinCounts(s *relation.Schema, q *workload.Query, inQ map[string]bool, parent string) []map[int64]int64 {
	var out []map[int64]int64
	for _, child := range s.Children(parent) {
		if !inQ[child.Name] {
			continue
		}
		mask := MatchMask(child, q.Preds)
		grand := childJoinCounts(s, q, inQ, child.Name)
		cnt := make(map[int64]int64)
		for i := 0; i < child.NumRows(); i++ {
			if !mask[i] {
				continue
			}
			w := int64(1)
			pk := child.PK(i)
			for _, g := range grand {
				w *= g[pk]
				if w == 0 {
					break
				}
			}
			if w != 0 {
				cnt[child.FK[i]] += w
			}
		}
		out = append(out, cnt)
	}
	return out
}

// FOJSize returns the number of tuples of the full outer join of the whole
// schema, computed by fanout aggregation without materialization: a parent
// row with no matching child rows still appears once (the child columns are
// NULL), hence the max(count, 1) factors.
func FOJSize(s *relation.Schema) int64 {
	roots := s.Roots()
	if len(roots) != 1 {
		// A forest's FOJ is the product of the trees' FOJs; this repository
		// only uses single-root schemas.
		panic("engine: FOJSize requires a single-root schema")
	}
	root := roots[0]
	counts := fojChildCounts(s, root.Name)
	var total int64
	for i := 0; i < root.NumRows(); i++ {
		w := int64(1)
		pk := root.PK(i)
		for _, cnt := range counts {
			c := cnt[pk]
			if c > 1 {
				w *= c
			}
		}
		total += w
	}
	return total
}

func fojChildCounts(s *relation.Schema, parent string) []map[int64]int64 {
	var out []map[int64]int64
	for _, child := range s.Children(parent) {
		grand := fojChildCounts(s, child.Name)
		cnt := make(map[int64]int64)
		for i := 0; i < child.NumRows(); i++ {
			w := int64(1)
			pk := child.PK(i)
			for _, g := range grand {
				c := g[pk]
				if c > 1 {
					w *= c
				}
			}
			cnt[child.FK[i]] += w
		}
		out = append(out, cnt)
	}
	return out
}

// Fanouts returns, for the FK table named child, the number of child rows
// per parent primary key — the fanout column F_{child.key} of the paper.
// Keys absent from the map have fanout 0.
func Fanouts(s *relation.Schema, child string) map[int64]int64 {
	t := s.Table(child)
	if t == nil || t.Parent == "" {
		panic(fmt.Sprintf("engine: %s is not a foreign-key table", child))
	}
	cnt := make(map[int64]int64)
	for _, fk := range t.FK {
		cnt[fk]++
	}
	return cnt
}

// TimedCard executes q and returns its cardinality along with the
// wall-clock execution time — the latency signal for the performance
// deviation experiments (Tables 8 and 9).
func TimedCard(s *relation.Schema, q *workload.Query) (int64, time.Duration) {
	start := time.Now()
	card := Card(s, q)
	return card, time.Since(start)
}

// Label evaluates every query against s in parallel and returns the
// resulting cardinality constraints in input order.
func Label(s *relation.Schema, queries []workload.Query) []workload.CardQuery {
	out := make([]workload.CardQuery, len(queries))
	nw := runtime.GOMAXPROCS(0)
	if nw > len(queries) {
		nw = len(queries)
	}
	if nw < 1 {
		nw = 1
	}
	var wg sync.WaitGroup
	chunk := (len(queries) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = workload.CardQuery{Query: queries[i], Card: Card(s, &queries[i])}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// SignedCard evaluates an inclusion–exclusion expansion: Σ sign·Card.
func SignedCard(s *relation.Schema, sq []workload.SignedQuery) int64 {
	var total int64
	for i := range sq {
		total += int64(sq[i].Sign) * Card(s, &sq[i].Query)
	}
	return total
}

// Enumerate executes q and walks every result tuple, returning the result
// cardinality. Unlike Card — whose cost is dominated by scans — Enumerate
// spends work proportional to the output size (it visits each join
// combination), which is how latency behaves in a row-producing DBMS.
// The performance-deviation experiments (Tables 8–9) time this walk.
func Enumerate(s *relation.Schema, q *workload.Query) int64 {
	if len(q.Tables) == 1 {
		t := s.Table(q.Tables[0])
		mask := MatchMask(t, q.Preds)
		var n int64
		var sink int64
		for i, m := range mask {
			if m {
				n++
				sink ^= int64(i) // touch each produced row
			}
		}
		runtime.KeepAlive(sink)
		return n
	}
	inQ := make(map[string]bool, len(q.Tables))
	for _, name := range q.Tables {
		inQ[name] = true
	}
	root := ""
	for _, name := range q.Tables {
		parent := s.Table(name).Parent
		if parent == "" || !inQ[parent] {
			root = name
			break
		}
	}
	rt := s.Table(root)
	mask := MatchMask(rt, q.Preds)
	rows := childJoinRows(s, q, inQ, root)
	var total int64
	var sink int64
	// For each root row, walk the cartesian product of its children's
	// expanded row lists — one visit per result tuple.
	for i := 0; i < rt.NumRows(); i++ {
		if !mask[i] {
			continue
		}
		total += walkProduct(rows, rt.PK(i), 0, &sink)
	}
	runtime.KeepAlive(sink)
	return total
}

// childRowSet maps a parent key to the (already recursively expanded)
// joined row weights of one child subtree: each entry is the pk of a
// matching child row, repeated per its own subtree combination count.
type childRowSet map[int64][]int64

// childJoinRows builds, per participating child of parent, the list of
// matching child-subtree expansions keyed by parent key.
func childJoinRows(s *relation.Schema, q *workload.Query, inQ map[string]bool, parent string) []childRowSet {
	var out []childRowSet
	for _, child := range s.Children(parent) {
		if !inQ[child.Name] {
			continue
		}
		mask := MatchMask(child, q.Preds)
		grand := childJoinRows(s, q, inQ, child.Name)
		set := make(childRowSet)
		var sink int64
		for i := 0; i < child.NumRows(); i++ {
			if !mask[i] {
				continue
			}
			pk := child.PK(i)
			n := walkProduct(grand, pk, 0, &sink)
			for rep := int64(0); rep < n; rep++ {
				set[child.FK[i]] = append(set[child.FK[i]], pk)
			}
		}
		out = append(out, set)
	}
	return out
}

// walkProduct walks the cartesian product of the sibling row sets for one
// parent key, touching every combination. All sibling sets are keyed by
// the same parent key.
func walkProduct(sets []childRowSet, pk int64, level int, sink *int64) int64 {
	if level == len(sets) {
		return 1
	}
	var n int64
	for _, sub := range sets[level][pk] {
		*sink ^= sub
		n += walkProduct(sets, pk, level+1, sink)
	}
	return n
}

// TimedEnumerate executes q with output walking and returns its
// cardinality along with the wall-clock execution time.
func TimedEnumerate(s *relation.Schema, q *workload.Query) (int64, time.Duration) {
	start := time.Now()
	card := Enumerate(s, q)
	return card, time.Since(start)
}

// Describe returns an EXPLAIN-style, human-readable account of how q
// executes: join order along the schema tree and per-table filter
// selectivity. Used by inspection tooling and examples.
func Describe(s *relation.Schema, q *workload.Query) string {
	var sb strings.Builder
	inQ := make(map[string]bool, len(q.Tables))
	for _, name := range q.Tables {
		inQ[name] = true
	}
	root := q.Tables[0]
	for _, name := range q.Tables {
		parent := s.Table(name).Parent
		if parent == "" || !inQ[parent] {
			root = name
			break
		}
	}
	var walk func(table string, depth int)
	walk = func(table string, depth int) {
		t := s.Table(table)
		mask := MatchMask(t, q.Preds)
		matched := 0
		for _, m := range mask {
			if m {
				matched++
			}
		}
		var preds []string
		for _, p := range q.Preds {
			if p.Table == table {
				if p.Op == workload.IN {
					preds = append(preds, fmt.Sprintf("%s IN(%d values)", p.Column, len(p.Codes)))
				} else {
					preds = append(preds, fmt.Sprintf("%s %v %d", p.Column, p.Op, p.Code))
				}
			}
		}
		pad := strings.Repeat("  ", depth)
		join := "scan"
		if depth > 0 {
			join = "hash-join on " + t.Parent + ".pk"
		}
		fmt.Fprintf(&sb, "%s%s %s: %d/%d rows pass", pad, join, table, matched, t.NumRows())
		if len(preds) > 0 {
			fmt.Fprintf(&sb, " [%s]", strings.Join(preds, " AND "))
		}
		sb.WriteByte('\n')
		for _, c := range s.Children(table) {
			if inQ[c.Name] {
				walk(c.Name, depth+1)
			}
		}
	}
	walk(root, 0)
	fmt.Fprintf(&sb, "result: %d rows\n", Card(s, q))
	return sb.String()
}
