package engine

import (
	"math/rand"
	"strings"
	"testing"

	"sam/internal/relation"
	"sam/internal/workload"
)

// buildTestSchema creates a depth-2 tree: root ← b, c; b ← d. Sizes and
// contents are randomized but seeded.
func buildTestSchema(rng *rand.Rand, rootRows, childRows int) *relation.Schema {
	mkCol := func(name string, dom, rows int) *relation.Column {
		c := relation.NewColumn(name, relation.Categorical, dom)
		for i := 0; i < rows; i++ {
			c.Append(int32(rng.Intn(dom)))
		}
		return c
	}
	root := relation.NewTable("root", mkCol("r1", 4, rootRows), mkCol("r2", 3, rootRows))

	mkChild := func(name, parent string, parentRows, rows int) *relation.Table {
		t := relation.NewTable(name, mkCol(name+"1", 5, rows), mkCol(name+"2", 2, rows))
		t.Parent = parent
		t.FK = make([]int64, rows)
		for i := range t.FK {
			t.FK[i] = int64(rng.Intn(parentRows))
		}
		return t
	}
	b := mkChild("b", "root", rootRows, childRows)
	c := mkChild("c", "root", rootRows, childRows)
	d := mkChild("d", "b", childRows, childRows)
	return relation.MustSchema(root, b, c, d)
}

// bruteJoinCard materializes the inner join of the query's tables by nested
// recursion and counts matching combinations.
func bruteJoinCard(s *relation.Schema, q *workload.Query) int64 {
	inQ := map[string]bool{}
	for _, t := range q.Tables {
		inQ[t] = true
	}
	root := ""
	for _, name := range q.Tables {
		p := s.Table(name).Parent
		if p == "" || !inQ[p] {
			root = name
		}
	}
	var countFor func(table string, keyFilter func(int64) bool) int64
	countFor = func(table string, keyFilter func(int64) bool) int64 {
		t := s.Table(table)
		mask := MatchMask(t, q.Preds)
		var total int64
		for i := 0; i < t.NumRows(); i++ {
			if !mask[i] {
				continue
			}
			if keyFilter != nil && !keyFilter(t.FK[i]) {
				continue
			}
			w := int64(1)
			pk := t.PK(i)
			for _, child := range s.Children(table) {
				if !inQ[child.Name] {
					continue
				}
				w *= countFor(child.Name, func(fk int64) bool { return fk == pk })
				if w == 0 {
					break
				}
			}
			total += w
		}
		return total
	}
	return countFor(root, nil)
}

// bruteFOJSize enumerates full-outer-join tuples of the whole tree.
func bruteFOJSize(s *relation.Schema) int64 {
	var expand func(table string, keyFilter func(int64) bool) int64
	expand = func(table string, keyFilter func(int64) bool) int64 {
		t := s.Table(table)
		var total int64
		for i := 0; i < t.NumRows(); i++ {
			if keyFilter != nil && !keyFilter(t.FK[i]) {
				continue
			}
			w := int64(1)
			pk := t.PK(i)
			for _, child := range s.Children(table) {
				c := expand(child.Name, func(fk int64) bool { return fk == pk })
				if c > 1 {
					w *= c
				}
			}
			total += w
		}
		return total
	}
	root := s.Roots()[0]
	return expand(root.Name, nil)
}

func TestSingleTableCard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := buildTestSchema(rng, 50, 80)
	root := s.Table("root")
	q := workload.Query{
		Tables: []string{"root"},
		Preds: []workload.Predicate{
			{Table: "root", Column: "r1", Op: workload.LE, Code: 2},
			{Table: "root", Column: "r2", Op: workload.EQ, Code: 1},
		},
	}
	var want int64
	for i := 0; i < root.NumRows(); i++ {
		if root.Cols[0].Data[i] <= 2 && root.Cols[1].Data[i] == 1 {
			want++
		}
	}
	if got := Card(s, &q); got != want {
		t.Fatalf("Card = %d want %d", got, want)
	}
}

func TestMatchMaskINAndGE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := buildTestSchema(rng, 30, 30)
	b := s.Table("b")
	preds := []workload.Predicate{
		{Table: "b", Column: "b1", Op: workload.IN, Codes: []int32{0, 4}},
		{Table: "b", Column: "b2", Op: workload.GE, Code: 1},
	}
	mask := MatchMask(b, preds)
	for i := range mask {
		v1 := b.Cols[0].Data[i]
		v2 := b.Cols[1].Data[i]
		want := (v1 == 0 || v1 == 4) && v2 >= 1
		if mask[i] != want {
			t.Fatalf("row %d: mask %v want %v", i, mask[i], want)
		}
	}
}

func TestJoinCardMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := buildTestSchema(rng, 20, 35)
	tableSets := [][]string{
		{"root", "b"},
		{"root", "c"},
		{"root", "b", "c"},
		{"b", "d"},
		{"root", "b", "d"},
		{"root", "b", "c", "d"},
	}
	for trial := 0; trial < 40; trial++ {
		ts := tableSets[rng.Intn(len(tableSets))]
		q := workload.Query{Tables: ts}
		// Random predicates on random participating tables.
		for _, name := range ts {
			if rng.Float64() < 0.5 {
				tab := s.Table(name)
				col := tab.Cols[rng.Intn(len(tab.Cols))]
				ops := []workload.Op{workload.LE, workload.GE, workload.EQ}
				q.Preds = append(q.Preds, workload.Predicate{
					Table: name, Column: col.Name,
					Op: ops[rng.Intn(3)], Code: int32(rng.Intn(col.NumValues)),
				})
			}
		}
		if err := q.Validate(s); err != nil {
			t.Fatalf("invalid test query: %v", err)
		}
		want := bruteJoinCard(s, &q)
		if got := Card(s, &q); got != want {
			t.Fatalf("trial %d tables %v: Card = %d want %d", trial, ts, got, want)
		}
	}
}

func TestFOJSizeMatchesBruteForce(t *testing.T) {
	for seed := int64(10); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := buildTestSchema(rng, 8, 12)
		want := bruteFOJSize(s)
		if got := FOJSize(s); got != want {
			t.Fatalf("seed %d: FOJSize = %d want %d", seed, got, want)
		}
	}
}

func TestFanouts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := buildTestSchema(rng, 10, 25)
	b := s.Table("b")
	fan := Fanouts(s, "b")
	var total int64
	for _, c := range fan {
		total += c
	}
	if total != int64(b.NumRows()) {
		t.Fatalf("fanouts sum %d want %d", total, b.NumRows())
	}
	for key, c := range fan {
		var manual int64
		for _, fk := range b.FK {
			if fk == key {
				manual++
			}
		}
		if manual != c {
			t.Fatalf("fanout of %d: %d want %d", key, c, manual)
		}
	}
}

func TestFanoutsPanicsOnRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := buildTestSchema(rng, 5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fanouts(s, "root")
}

func TestTimedCardAgreesWithCard(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := buildTestSchema(rng, 30, 40)
	q := workload.Query{Tables: []string{"root", "b"}, Preds: []workload.Predicate{
		{Table: "b", Column: "b1", Op: workload.LE, Code: 3},
	}}
	card, dur := TimedCard(s, &q)
	if card != Card(s, &q) {
		t.Fatal("TimedCard disagrees with Card")
	}
	if dur < 0 {
		t.Fatal("negative duration")
	}
}

func TestLabelParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := buildTestSchema(rng, 25, 40)
	queries := workload.GenerateMultiRelation(rng, s, 64, workload.DefaultMultiRelationOptions())
	labeled := Label(s, queries)
	if len(labeled) != 64 {
		t.Fatalf("labeled %d", len(labeled))
	}
	for i := range labeled {
		if labeled[i].Card != Card(s, &queries[i]) {
			t.Fatalf("query %d: label mismatch", i)
		}
	}
}

func TestSignedCardInclusionExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := buildTestSchema(rng, 40, 40)
	root := s.Table("root")
	clauses := []workload.Query{
		{Tables: []string{"root"}, Preds: []workload.Predicate{{Table: "root", Column: "r1", Op: workload.LE, Code: 1}}},
		{Tables: []string{"root"}, Preds: []workload.Predicate{{Table: "root", Column: "r2", Op: workload.EQ, Code: 2}}},
	}
	sq, err := workload.ExpandDisjunction(clauses)
	if err != nil {
		t.Fatal(err)
	}
	got := SignedCard(s, sq)
	var want int64
	for i := 0; i < root.NumRows(); i++ {
		if root.Cols[0].Data[i] <= 1 || root.Cols[1].Data[i] == 2 {
			want++
		}
	}
	if got != want {
		t.Fatalf("IE card = %d want %d", got, want)
	}
}

func TestCardEmptyJoinIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := buildTestSchema(rng, 10, 10)
	q := workload.Query{Tables: []string{"root", "b"}, Preds: []workload.Predicate{
		{Table: "b", Column: "b1", Op: workload.IN, Codes: []int32{4}},
		{Table: "b", Column: "b2", Op: workload.GE, Code: 2}, // b2 domain is 2 → impossible... GE 2 never matches domain {0,1}
	}}
	// b2 has domain 2, codes {0,1}; GE 2 cannot match — but Validate would
	// reject code 2, so craft emptiness via contradictory equality instead.
	q.Preds[1] = workload.Predicate{Table: "b", Column: "b2", Op: workload.EQ, Code: 0}
	q.Preds = append(q.Preds, workload.Predicate{Table: "b", Column: "b2", Op: workload.EQ, Code: 1})
	if got := Card(s, &q); got != 0 {
		t.Fatalf("contradictory predicates: card %d", got)
	}
}

func TestEnumerateMatchesCard(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := buildTestSchema(rng, 15, 30)
	tableSets := [][]string{
		{"root"},
		{"root", "b"},
		{"root", "b", "c"},
		{"b", "d"},
		{"root", "b", "c", "d"},
	}
	for trial := 0; trial < 40; trial++ {
		ts := tableSets[rng.Intn(len(tableSets))]
		q := workload.Query{Tables: ts}
		for _, name := range ts {
			if rng.Float64() < 0.6 {
				tab := s.Table(name)
				col := tab.Cols[rng.Intn(len(tab.Cols))]
				ops := []workload.Op{workload.LE, workload.GE, workload.EQ}
				q.Preds = append(q.Preds, workload.Predicate{
					Table: name, Column: col.Name,
					Op: ops[rng.Intn(3)], Code: int32(rng.Intn(col.NumValues)),
				})
			}
		}
		if got, want := Enumerate(s, &q), Card(s, &q); got != want {
			t.Fatalf("trial %d tables %v: Enumerate %d != Card %d", trial, ts, got, want)
		}
	}
}

func TestTimedEnumerateScalesWithOutput(t *testing.T) {
	// A query producing far more rows must take measurably longer than one
	// producing almost none, on the same database.
	rng := rand.New(rand.NewSource(52))
	s := buildTestSchema(rng, 400, 4000)
	big := workload.Query{Tables: []string{"root", "b", "c", "d"}}
	small := workload.Query{Tables: []string{"root", "b", "c", "d"}, Preds: []workload.Predicate{
		{Table: "root", Column: "r1", Op: workload.EQ, Code: 0},
		{Table: "b", Column: "b1", Op: workload.EQ, Code: 0},
		{Table: "d", Column: "d1", Op: workload.EQ, Code: 4},
	}}
	cb, db := Enumerate(s, &big), Enumerate(s, &small)
	if cb < 100*db || cb < 10000 {
		t.Skipf("fixture not contrasty enough: big %d small %d", cb, db)
	}
	var bigBest, smallBest int64 = 1 << 62, 1 << 62
	for r := 0; r < 3; r++ {
		_, d1 := TimedEnumerate(s, &big)
		_, d2 := TimedEnumerate(s, &small)
		if d1.Nanoseconds() < bigBest {
			bigBest = d1.Nanoseconds()
		}
		if d2.Nanoseconds() < smallBest {
			smallBest = d2.Nanoseconds()
		}
	}
	if bigBest < smallBest*2 {
		t.Fatalf("latency not output-sensitive: big %dns (card %d) small %dns (card %d)",
			bigBest, cb, smallBest, db)
	}
}

func TestDescribe(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := buildTestSchema(rng, 20, 30)
	q := workload.Query{Tables: []string{"root", "b", "d"}, Preds: []workload.Predicate{
		{Table: "root", Column: "r1", Op: workload.LE, Code: 2},
		{Table: "d", Column: "d1", Op: workload.IN, Codes: []int32{0, 1}},
	}}
	out := Describe(s, &q)
	for _, want := range []string{"scan root", "hash-join on root.pk", "hash-join on b.pk",
		"r1 <= 2", "IN(2 values)", "result:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestMatchMaskUnknownColumnPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	s := buildTestSchema(rng, 5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatchMask(s.Table("root"), []workload.Predicate{{Table: "root", Column: "nope", Op: workload.EQ}})
}
