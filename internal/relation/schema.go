package relation

import (
	"fmt"
	"sort"
)

// Schema is a database: a set of tables whose FK edges form a forest (the
// paper assumes a tree, i.e. an acyclic foreign-key join schema). Tables
// are kept in topological order, parents before children.
type Schema struct {
	Tables []*Table
	byName map[string]*Table
}

// NewSchema validates the tables form an acyclic parent tree and returns a
// schema with tables in topological order.
func NewSchema(tables ...*Table) (*Schema, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one table")
	}
	byName := make(map[string]*Table, len(tables))
	for _, t := range tables {
		if t.Name == "" {
			return nil, fmt.Errorf("relation: table with empty name")
		}
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate table %s", t.Name)
		}
		byName[t.Name] = t
	}
	for _, t := range tables {
		if t.Parent == "" {
			continue
		}
		if _, ok := byName[t.Parent]; !ok {
			return nil, fmt.Errorf("relation: table %s references unknown parent %s", t.Name, t.Parent)
		}
		// Walk up; a cycle revisits t.
		seen := map[string]bool{t.Name: true}
		for cur := t.Parent; cur != ""; cur = byName[cur].Parent {
			if seen[cur] {
				return nil, fmt.Errorf("relation: FK cycle through %s", cur)
			}
			seen[cur] = true
		}
	}
	// Topological order: repeatedly emit tables whose parent is emitted.
	ordered := make([]*Table, 0, len(tables))
	emitted := make(map[string]bool, len(tables))
	// Deterministic: sort names first.
	names := make([]string, 0, len(tables))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for len(ordered) < len(tables) {
		progressed := false
		for _, n := range names {
			t := byName[n]
			if emitted[n] {
				continue
			}
			if t.Parent == "" || emitted[t.Parent] {
				ordered = append(ordered, t)
				emitted[n] = true
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("relation: FK graph is not a forest")
		}
	}
	return &Schema{Tables: ordered, byName: byName}, nil
}

// MustSchema is NewSchema that panics on error; for tests and generators
// with statically known-good schemas.
func MustSchema(tables ...*Table) *Schema {
	s, err := NewSchema(tables...)
	if err != nil {
		panic(err)
	}
	return s
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.byName[name] }

// Children returns the tables whose parent is name, in topological order.
func (s *Schema) Children(name string) []*Table {
	var out []*Table
	for _, t := range s.Tables {
		if t.Parent == name {
			out = append(out, t)
		}
	}
	return out
}

// Ancestors returns the chain of ancestor table names of name, nearest
// first (empty for a root).
func (s *Schema) Ancestors(name string) []string {
	var out []string
	t := s.byName[name]
	if t == nil {
		return nil
	}
	for cur := t.Parent; cur != ""; cur = s.byName[cur].Parent {
		out = append(out, cur)
	}
	return out
}

// Roots returns the root tables (no parent).
func (s *Schema) Roots() []*Table {
	var out []*Table
	for _, t := range s.Tables {
		if t.Parent == "" {
			out = append(out, t)
		}
	}
	return out
}

// SingleTable reports whether the schema has exactly one table.
func (s *Schema) SingleTable() bool { return len(s.Tables) == 1 }

// Validate validates every table.
func (s *Schema) Validate() error {
	for _, t := range s.Tables {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalRows returns the sum of row counts across tables.
func (s *Schema) TotalRows() int {
	var n int
	for _, t := range s.Tables {
		n += t.NumRows()
	}
	return n
}
