package relation

import (
	"bytes"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	a := NewTable("a",
		NewColumn("x", Categorical, 5),
		NewColumn("y", Numeric, 3).WithVals([]float64{1.5, 2.5, 9}))
	for i := 0; i < 4; i++ {
		a.Cols[0].Append(int32(i))
		a.Cols[1].Append(int32(i % 3))
	}
	b := NewTable("b", NewColumn("z", Categorical, 2))
	b.Parent = "a"
	b.Cols[0].Append(1)
	b.FK = []int64{2}
	s := MustSchema(a, b)

	var buf bytes.Buffer
	if err := s.Spec().WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	spec, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Sizes()["a"] != 4 || spec.Sizes()["b"] != 1 {
		t.Fatalf("sizes %v", spec.Sizes())
	}
	shell, err := spec.EmptySchema()
	if err != nil {
		t.Fatal(err)
	}
	at := shell.Table("a")
	if at == nil || at.NumRows() != 0 || len(at.Cols) != 2 {
		t.Fatal("empty schema malformed")
	}
	if at.Col("y").Kind != Numeric || at.Col("y").Vals[2] != 9 {
		t.Fatal("numeric vals lost")
	}
	if shell.Table("b").Parent != "a" {
		t.Fatal("parent lost")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := NewTable("a", NewColumn("x", Categorical, 5))
	a.Parent = "p"
	a.PKVals = []int64{10, 11, 12}
	a.FK = []int64{0, 0, 1}
	for _, v := range []int32{4, 2, 0} {
		a.Cols[0].Append(v)
	}
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewTable("a", NewColumn("x", Categorical, 5))
	back.Parent = "p"
	if err := back.ReadCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Fatalf("rows %d", back.NumRows())
	}
	for i := range a.Cols[0].Data {
		if back.Cols[0].Data[i] != a.Cols[0].Data[i] {
			t.Fatal("content mismatch")
		}
		if back.PKVals[i] != a.PKVals[i] || back.FK[i] != a.FK[i] {
			t.Fatal("key mismatch")
		}
	}
}

func TestReadCSVRejectsUnknownColumn(t *testing.T) {
	back := NewTable("a", NewColumn("x", Categorical, 5))
	if err := back.ReadCSV(bytes.NewBufferString("zz\n1\n")); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestReadSpecRejectsBadKind(t *testing.T) {
	spec := SchemaSpec{Tables: []TableSpec{{
		Name:    "t",
		Columns: []ColumnSpec{{Name: "x", Kind: "weird", Domain: 2}},
	}}}
	if _, err := spec.EmptySchema(); err == nil {
		t.Fatal("bad kind accepted")
	}
}
