package relation

import (
	"strings"
	"testing"
)

func TestColumnAppendAndValue(t *testing.T) {
	c := NewColumn("age", Numeric, 3).WithVals([]float64{18, 30, 65})
	c.Append(0)
	c.Append(2)
	if len(c.Data) != 2 {
		t.Fatalf("len = %d", len(c.Data))
	}
	if c.Value(2) != 65 {
		t.Fatalf("Value(2) = %v", c.Value(2))
	}
	plain := NewColumn("k", Categorical, 4)
	if plain.Value(3) != 3 {
		t.Fatalf("default Value = %v", plain.Value(3))
	}
}

func TestColumnAppendOutOfDomainPanics(t *testing.T) {
	c := NewColumn("x", Categorical, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Append(2)
}

func TestColumnBadValsPanics(t *testing.T) {
	for _, vals := range [][]float64{{1, 2}, {3, 2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewColumn("x", Numeric, 3).WithVals(vals)
		}()
	}
}

func mkTable(name string, rows int, parent string) *Table {
	c := NewColumn("a", Categorical, 10)
	for i := 0; i < rows; i++ {
		c.Append(int32(i % 10))
	}
	t := NewTable(name, c)
	t.Parent = parent
	if parent != "" {
		t.FK = make([]int64, rows)
	}
	return t
}

func TestTableBasics(t *testing.T) {
	tab := mkTable("t", 5, "")
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Col("a") == nil || tab.Col("b") != nil {
		t.Fatal("Col lookup broken")
	}
	if tab.ColIndex("a") != 0 || tab.ColIndex("zz") != -1 {
		t.Fatal("ColIndex broken")
	}
	if tab.PK(3) != 3 {
		t.Fatal("implicit PK broken")
	}
	tab.PKVals = []int64{10, 11, 12, 13, 14}
	if tab.PK(3) != 13 {
		t.Fatal("explicit PK broken")
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableValidateCatchesMismatch(t *testing.T) {
	tab := mkTable("t", 4, "p")
	tab.FK = tab.FK[:2]
	if err := tab.Validate(); err == nil || !strings.Contains(err.Error(), "FK") {
		t.Fatalf("err = %v", err)
	}
	tab2 := NewTable("u", NewColumn("a", Categorical, 2), NewColumn("b", Categorical, 2))
	tab2.Cols[0].Append(0)
	if err := tab2.Validate(); err == nil {
		t.Fatal("expected length mismatch error")
	}
	tab3 := NewTable("v", NewColumn("a", Categorical, 2))
	tab3.Cols[0].Data = []int32{5} // bypass Append check
	if err := tab3.Validate(); err == nil {
		t.Fatal("expected domain error")
	}
}

func TestSchemaTopoOrderAndLookups(t *testing.T) {
	a := mkTable("a", 3, "")
	b := mkTable("b", 3, "a")
	c := mkTable("c", 3, "b")
	d := mkTable("d", 3, "a")
	s, err := NewSchema(c, d, b, a) // shuffled input
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, tab := range s.Tables {
		pos[tab.Name] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"] && pos["a"] < pos["d"]) {
		t.Fatalf("bad topo order: %v", pos)
	}
	if s.Table("b") != b || s.Table("zz") != nil {
		t.Fatal("Table lookup broken")
	}
	kids := s.Children("a")
	if len(kids) != 2 {
		t.Fatalf("children of a: %d", len(kids))
	}
	anc := s.Ancestors("c")
	if len(anc) != 2 || anc[0] != "b" || anc[1] != "a" {
		t.Fatalf("ancestors of c: %v", anc)
	}
	if len(s.Roots()) != 1 || s.Roots()[0] != a {
		t.Fatal("Roots broken")
	}
	if s.SingleTable() {
		t.Fatal("SingleTable wrong")
	}
	if s.TotalRows() != 12 {
		t.Fatalf("TotalRows = %d", s.TotalRows())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaRejectsBadShapes(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema accepted")
	}
	a := mkTable("a", 1, "")
	a2 := mkTable("a", 1, "")
	if _, err := NewSchema(a, a2); err == nil {
		t.Fatal("duplicate accepted")
	}
	orphan := mkTable("x", 1, "nope")
	if _, err := NewSchema(orphan); err == nil {
		t.Fatal("unknown parent accepted")
	}
	// 2-cycle.
	p := mkTable("p", 1, "q")
	q := mkTable("q", 1, "p")
	if _, err := NewSchema(p, q); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema()
}
