package relation

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateShardFile(dir, 3, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		-1, 0, 2147483647, -2147483648,
	}
	if err := w.WriteRows(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows(rows[:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenShardFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NCols() != 4 || r.Shard() != 3 || r.Seed() != 99 {
		t.Fatalf("header ncols=%d shard=%d seed=%d", r.NCols(), r.Shard(), r.Seed())
	}
	if r.Rows() != 4 {
		t.Fatalf("patched row count %d want 4", r.Rows())
	}
	// Read back through a buffer smaller than the stream to exercise
	// partial reads.
	buf := make([]int32, 3*4)
	var got []int32
	for {
		n, err := r.ReadRows(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n*4]...)
	}
	want := append(append([]int32{}, rows...), rows[:4]...)
	if len(got) != len(want) {
		t.Fatalf("read %d codes want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("code %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestShardWriterValidation(t *testing.T) {
	var b bytes.Buffer
	if _, err := NewShardWriter(&b, 0, 0, 1); err == nil {
		t.Fatal("accepted zero columns")
	}
	if _, err := NewShardWriter(&b, 2, -1, 1); err == nil {
		t.Fatal("accepted negative shard")
	}
	w, err := NewShardWriter(&b, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows([]int32{1, 2, 3}); err == nil {
		t.Fatal("accepted partial row")
	}
}

func TestShardReaderRejectsCorruptStreams(t *testing.T) {
	if _, err := NewShardReader(strings.NewReader("not a shard file at all")); err == nil {
		t.Fatal("accepted bad magic")
	}

	// A stream truncated mid-row must error rather than silently drop
	// codes.
	var b bytes.Buffer
	w, err := NewShardWriter(&b, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows([]int32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := b.Bytes()[:b.Len()-2]
	r, err := NewShardReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 8)
	if _, err := r.ReadRows(buf); err == nil || err == io.EOF {
		t.Fatalf("mid-row truncation not detected: %v", err)
	}
}

func TestShardStreamHeaderWithoutPatch(t *testing.T) {
	// Writers over non-seekable sinks leave the row count unknown; readers
	// must still stream to EOF.
	var b bytes.Buffer
	w, err := NewShardWriter(&b, 2, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows([]int32{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	r, err := NewShardReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != -1 {
		t.Fatalf("unpatched row count %d want -1", r.Rows())
	}
	buf := make([]int32, 4)
	n, err := r.ReadRows(buf)
	if err != nil || n != 2 {
		t.Fatalf("read %d rows err %v", n, err)
	}
	if _, err := r.ReadRows(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCSVRowWriterMatchesWriteCSV(t *testing.T) {
	// The streaming row writer and the in-memory table writer must emit
	// byte-identical CSV for identical rows.
	col := NewColumn("x", Categorical, 5)
	for _, v := range []int32{4, 0, 3} {
		col.Append(v)
	}
	tb := NewTable("child", col)
	tb.Parent = "root"
	tb.FK = []int64{2, 0, 1}
	tb.PKVals = []int64{0, 1, 2}

	var mem bytes.Buffer
	if err := tb.WriteCSV(&mem); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	rw, err := NewCSVRowWriter(&streamed, tb, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if err := rw.WriteRow(tb.PKVals[i], []int32{col.Data[i]}, tb.FK[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if mem.String() != streamed.String() {
		t.Fatalf("csv mismatch:\nmem:\n%s\nstream:\n%s", mem.String(), streamed.String())
	}

	// And ReadCSV round-trips the streamed bytes.
	rootCol := NewColumn("r", Categorical, 2)
	rootCol.Append(0)
	rootCol.Append(1)
	rootCol.Append(0)
	root := NewTable("root", rootCol)
	spec := MustSchema(root, tb).Spec()
	shell, err := spec.EmptySchema()
	if err != nil {
		t.Fatal(err)
	}
	back := shell.Table("child")
	if err := back.ReadCSV(&streamed); err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.FK[0] != 2 || back.PKVals[2] != 2 || back.Cols[0].Data[2] != 3 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestShardFileNameStable(t *testing.T) {
	if got := ShardFileName(7); got != "shard-00007.bin" {
		t.Fatalf("shard file name %q", got)
	}
	if got := filepath.Join("d", ShardFileName(0)); got != filepath.Join("d", "shard-00000.bin") {
		t.Fatal("join mismatch")
	}
	// Names sort in shard order for directory scans.
	if !(ShardFileName(9) < ShardFileName(10)) {
		t.Fatal("shard names do not sort numerically")
	}
	if _, err := os.Stat(filepath.Join(t.TempDir(), ShardFileName(0))); err == nil {
		t.Fatal("unexpected file")
	}
}
