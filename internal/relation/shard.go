package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Binary shard format for full-outer-join sample streams. A shard file is
// a fixed header followed by row-major little-endian int32 model codes:
//
//	offset  0: magic "SAMSHRD1" (8 bytes)
//	offset  8: uint32 columns per row
//	offset 12: uint32 shard index
//	offset 16: int64 generation seed (the run seed, pre-split)
//	offset 24: int64 row count, or -1 while streaming / when the sink
//	           cannot seek back to patch it
//	offset 32: rows…
//
// The format is the generation pipeline's spill and interchange unit: the
// sharded sampler streams rows in as they are drawn, and the external
// group-and-merge passes stream them back out without ever holding a full
// shard resident. Readers never need the header row count — they stream to
// EOF — so the format works over pipes as well as files.

// shardMagic identifies shard files; the trailing digit is the format
// version.
const shardMagic = "SAMSHRD1"

// ShardHeaderSize is the fixed byte length of a shard file header.
const ShardHeaderSize = 32

// ShardFileName returns the canonical file name of a shard.
func ShardFileName(shard int) string {
	return fmt.Sprintf("shard-%05d.bin", shard)
}

// ShardWriter streams sample rows into the binary shard format.
type ShardWriter struct {
	w     io.Writer
	ncols int
	rows  int64
	buf   []byte
}

// NewShardWriter writes the shard header and returns a writer for the row
// stream. The header's row count is left unknown (-1); file-backed callers
// patch it on close (see ShardFileWriter).
func NewShardWriter(w io.Writer, ncols, shard int, seed int64) (*ShardWriter, error) {
	if ncols <= 0 {
		return nil, fmt.Errorf("relation: shard writer needs positive columns, got %d", ncols)
	}
	if shard < 0 {
		return nil, fmt.Errorf("relation: negative shard index %d", shard)
	}
	h := make([]byte, ShardHeaderSize)
	copy(h, shardMagic)
	binary.LittleEndian.PutUint32(h[8:], uint32(ncols))
	binary.LittleEndian.PutUint32(h[12:], uint32(shard))
	binary.LittleEndian.PutUint64(h[16:], uint64(seed))
	binary.LittleEndian.PutUint64(h[24:], ^uint64(0)) // rows unknown
	if _, err := w.Write(h); err != nil {
		return nil, fmt.Errorf("relation: write shard header: %w", err)
	}
	return &ShardWriter{w: w, ncols: ncols}, nil
}

// NCols returns the columns per row.
func (s *ShardWriter) NCols() int { return s.ncols }

// Rows returns the number of rows written so far.
func (s *ShardWriter) Rows() int64 { return s.rows }

// WriteRows appends len(flat)/ncols rows (flat must be row-major and a
// whole number of rows).
func (s *ShardWriter) WriteRows(flat []int32) error {
	if len(flat)%s.ncols != 0 {
		return fmt.Errorf("relation: shard write of %d codes is not a multiple of %d columns", len(flat), s.ncols)
	}
	need := len(flat) * 4
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	b := s.buf[:need]
	for i, v := range flat {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("relation: write shard rows: %w", err)
	}
	s.rows += int64(len(flat) / s.ncols)
	return nil
}

// ShardFileWriter is a buffered file-backed ShardWriter that patches the
// header row count when closed.
type ShardFileWriter struct {
	*ShardWriter
	f    *os.File
	bw   *bufio.Writer
	path string
}

// CreateShardFile creates dir/ShardFileName(shard) and returns a buffered
// writer for it.
func CreateShardFile(dir string, shard, ncols int, seed int64) (*ShardFileWriter, error) {
	path := filepath.Join(dir, ShardFileName(shard))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("relation: create shard: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	sw, err := NewShardWriter(bw, ncols, shard, seed)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &ShardFileWriter{ShardWriter: sw, f: f, bw: bw, path: path}, nil
}

// Path returns the shard file path.
func (s *ShardFileWriter) Path() string { return s.path }

// Close flushes buffered rows, patches the header row count, and closes
// the file.
func (s *ShardFileWriter) Close() error {
	flushErr := s.bw.Flush()
	if flushErr == nil {
		var hb [8]byte
		binary.LittleEndian.PutUint64(hb[:], uint64(s.rows))
		if _, err := s.f.WriteAt(hb[:], 24); err != nil {
			flushErr = fmt.Errorf("relation: patch shard row count: %w", err)
		}
	}
	if err := s.f.Close(); flushErr == nil && err != nil {
		flushErr = fmt.Errorf("relation: close shard: %w", err)
	}
	return flushErr
}

// ShardReader streams rows back out of the binary shard format.
type ShardReader struct {
	r     io.Reader
	ncols int
	shard int
	seed  int64
	rows  int64 // -1 when the header was written by a non-seekable sink
	buf   []byte
}

// NewShardReader parses and validates the header.
func NewShardReader(r io.Reader) (*ShardReader, error) {
	h := make([]byte, ShardHeaderSize)
	if _, err := io.ReadFull(r, h); err != nil {
		return nil, fmt.Errorf("relation: read shard header: %w", err)
	}
	if string(h[:8]) != shardMagic {
		return nil, fmt.Errorf("relation: bad shard magic %q", h[:8])
	}
	ncols := int(binary.LittleEndian.Uint32(h[8:]))
	if ncols <= 0 {
		return nil, fmt.Errorf("relation: shard header declares %d columns", ncols)
	}
	return &ShardReader{
		r:     r,
		ncols: ncols,
		shard: int(binary.LittleEndian.Uint32(h[12:])),
		seed:  int64(binary.LittleEndian.Uint64(h[16:])),
		rows:  int64(binary.LittleEndian.Uint64(h[24:])),
	}, nil
}

// NCols returns the columns per row.
func (s *ShardReader) NCols() int { return s.ncols }

// Shard returns the shard index recorded in the header.
func (s *ShardReader) Shard() int { return s.shard }

// Seed returns the generation run seed recorded in the header.
func (s *ShardReader) Seed() int64 { return s.seed }

// Rows returns the header row count, or -1 when it was not patched in.
func (s *ShardReader) Rows() int64 { return s.rows }

// ReadRows fills dst (row-major, capacity len(dst)/ncols rows) with the
// next rows of the stream and returns how many it read. It returns 0,
// io.EOF when the stream is exhausted, and an error when the stream ends
// mid-row.
func (s *ShardReader) ReadRows(dst []int32) (int, error) {
	rows := len(dst) / s.ncols
	if rows == 0 {
		return 0, fmt.Errorf("relation: shard read buffer holds no full row (%d codes for %d columns)", len(dst), s.ncols)
	}
	need := rows * s.ncols * 4
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	b := s.buf[:need]
	n, err := io.ReadFull(s.r, b)
	switch err {
	case nil:
	case io.ErrUnexpectedEOF:
		rowBytes := s.ncols * 4
		if n%rowBytes != 0 {
			return 0, fmt.Errorf("relation: shard truncated mid-row (%d trailing bytes)", n%rowBytes)
		}
		rows = n / rowBytes
		if rows == 0 {
			return 0, io.EOF
		}
		b = b[:n]
	case io.EOF:
		return 0, io.EOF
	default:
		return 0, fmt.Errorf("relation: read shard rows: %w", err)
	}
	for i := 0; i < len(b)/4; i++ {
		dst[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return rows, nil
}

// ShardFileReader is a buffered file-backed ShardReader.
type ShardFileReader struct {
	*ShardReader
	f *os.File
}

// OpenShardFile opens a shard file for streaming reads.
func OpenShardFile(path string) (*ShardFileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: open shard: %w", err)
	}
	sr, err := NewShardReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("relation: %s: %w", path, err)
	}
	return &ShardFileReader{ShardReader: sr, f: f}, nil
}

// Close closes the underlying file.
func (s *ShardFileReader) Close() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("relation: close shard: %w", err)
	}
	return nil
}
