// Package relation defines the relational data model shared by the whole
// repository: discrete-domain columns, tables with tree-structured foreign
// keys, and schemas. Following the SAM paper, every content column is a
// finite discrete domain — categorical columns are value codes, numeric
// columns are codes ordered by their numeric value (code order == value
// order), which is what the model's intervalization operates on.
package relation

import (
	"fmt"
	"sort"
)

// Kind distinguishes categorical from numeric columns. Numeric columns are
// still stored as ordered codes; the distinction drives intervalization in
// the model and the uniform-in-interval decoding at generation time.
type Kind int

const (
	// Categorical columns have unordered finite domains.
	Categorical Kind = iota
	// Numeric columns have ordered domains: code i corresponds to the i-th
	// smallest value.
	Numeric
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single attribute: a name, a kind, a finite domain of
// NumValues codes, and per-row data. For numeric columns Vals optionally
// maps codes to real values (ascending); when nil, the code itself is the
// value.
type Column struct {
	Name      string
	Kind      Kind
	NumValues int
	Data      []int32
	Vals      []float64 // optional, numeric only, ascending, len == NumValues
}

// NewColumn returns an empty column with the given domain size.
func NewColumn(name string, kind Kind, numValues int) *Column {
	if numValues <= 0 {
		panic(fmt.Sprintf("relation: column %q needs a positive domain, got %d", name, numValues))
	}
	return &Column{Name: name, Kind: kind, NumValues: numValues}
}

// WithVals attaches a code→value mapping (numeric columns). The slice must
// be ascending and of length NumValues.
func (c *Column) WithVals(vals []float64) *Column {
	if len(vals) != c.NumValues {
		panic(fmt.Sprintf("relation: column %q: %d vals for domain %d", c.Name, len(vals), c.NumValues))
	}
	if !sort.Float64sAreSorted(vals) {
		panic(fmt.Sprintf("relation: column %q: vals not ascending", c.Name))
	}
	c.Vals = vals
	return c
}

// Value decodes a code into its numeric value (the code itself when no
// mapping is attached).
func (c *Column) Value(code int32) float64 {
	if c.Vals != nil {
		return c.Vals[code]
	}
	return float64(code)
}

// Append adds one row value to the column.
func (c *Column) Append(code int32) {
	if code < 0 || int(code) >= c.NumValues {
		panic(fmt.Sprintf("relation: column %q: code %d outside domain %d", c.Name, code, c.NumValues))
	}
	c.Data = append(c.Data, code)
}

// Table is a relation: named content columns plus optional tree join keys.
// A table has at most one parent (acyclic FK schema, as in the paper);
// FK[i] holds the parent primary-key value of row i. PK values default to
// the row index; generated tables may carry explicit PKVals.
//
// Multi-key equi-joins are represented by a single surrogate key per edge
// (a composite key is encoded as one surrogate value), which preserves join
// semantics for the algorithms in this repository.
type Table struct {
	Name   string
	Cols   []*Column
	Parent string  // "" for a root table
	FK     []int64 // len == NumRows when Parent != ""
	PKVals []int64 // optional explicit primary-key values
}

// NewTable returns a table over the given columns.
func NewTable(name string, cols ...*Column) *Table {
	return &Table{Name: name, Cols: cols}
}

// NumRows returns the row count (taken from the first column).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return len(t.PKVals)
	}
	return len(t.Cols[0].Data)
}

// Col returns the column with the given name, or nil.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PK returns the primary-key value of row i.
func (t *Table) PK(i int) int64 {
	if t.PKVals != nil {
		return t.PKVals[i]
	}
	return int64(i)
}

// Validate checks internal consistency: equal column lengths, codes in
// domain, FK length.
func (t *Table) Validate() error {
	n := t.NumRows()
	for _, c := range t.Cols {
		if len(c.Data) != n {
			return fmt.Errorf("relation: table %s: column %s has %d rows, want %d", t.Name, c.Name, len(c.Data), n)
		}
		for i, code := range c.Data {
			if code < 0 || int(code) >= c.NumValues {
				return fmt.Errorf("relation: table %s: column %s row %d code %d outside domain %d", t.Name, c.Name, i, code, c.NumValues)
			}
		}
	}
	if t.Parent != "" && len(t.FK) != n {
		return fmt.Errorf("relation: table %s: FK has %d rows, want %d", t.Name, len(t.FK), n)
	}
	if t.PKVals != nil && len(t.PKVals) != n {
		return fmt.Errorf("relation: table %s: PKVals has %d rows, want %d", t.Name, len(t.PKVals), n)
	}
	return nil
}
