package relation

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ColumnSpec is the serializable description of a column.
type ColumnSpec struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"` // "categorical" or "numeric"
	Domain int       `json:"domain"`
	Vals   []float64 `json:"vals,omitempty"`
}

// TableSpec is the serializable description of a table (metadata only).
type TableSpec struct {
	Name    string       `json:"name"`
	Parent  string       `json:"parent,omitempty"`
	Rows    int          `json:"rows"`
	Columns []ColumnSpec `json:"columns"`
}

// SchemaSpec is the serializable description of a schema: everything a
// query-driven generator is allowed to know about the target database
// (names, types, domain sizes, row counts) without reading its data.
type SchemaSpec struct {
	Tables []TableSpec `json:"tables"`
}

// Spec extracts the metadata description of s.
func (s *Schema) Spec() SchemaSpec {
	spec := SchemaSpec{}
	for _, t := range s.Tables {
		ts := TableSpec{Name: t.Name, Parent: t.Parent, Rows: t.NumRows()}
		for _, c := range t.Cols {
			kind := "categorical"
			if c.Kind == Numeric {
				kind = "numeric"
			}
			ts.Columns = append(ts.Columns, ColumnSpec{Name: c.Name, Kind: kind, Domain: c.NumValues, Vals: c.Vals})
		}
		spec.Tables = append(spec.Tables, ts)
	}
	return spec
}

// WriteSpec serializes the spec as JSON.
func (spec SchemaSpec) WriteSpec(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// ReadSpec parses a JSON schema spec.
func ReadSpec(r io.Reader) (SchemaSpec, error) {
	var spec SchemaSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return spec, fmt.Errorf("relation: decode spec: %w", err)
	}
	return spec, nil
}

// EmptySchema builds a schema with empty tables matching the spec — the
// shell a generator fills in.
func (spec SchemaSpec) EmptySchema() (*Schema, error) {
	tables := make([]*Table, 0, len(spec.Tables))
	for _, ts := range spec.Tables {
		cols := make([]*Column, 0, len(ts.Columns))
		for _, cs := range ts.Columns {
			kind := Categorical
			switch cs.Kind {
			case "categorical":
			case "numeric":
				kind = Numeric
			default:
				return nil, fmt.Errorf("relation: unknown column kind %q", cs.Kind)
			}
			c := NewColumn(cs.Name, kind, cs.Domain)
			if cs.Vals != nil {
				c = c.WithVals(cs.Vals)
			}
			cols = append(cols, c)
		}
		t := NewTable(ts.Name, cols...)
		t.Parent = ts.Parent
		tables = append(tables, t)
	}
	return NewSchema(tables...)
}

// Sizes returns the target row count per table from the spec.
func (spec SchemaSpec) Sizes() map[string]int {
	out := make(map[string]int, len(spec.Tables))
	for _, t := range spec.Tables {
		out[t.Name] = t.Rows
	}
	return out
}

// WriteCSV writes the table as CSV: one column per content attribute, plus
// __pk / __fk columns when present. It streams through the same
// CSVRowWriter the bounded-memory generation path uses, so both emit
// byte-identical files for identical rows.
func (t *Table) WriteCSV(w io.Writer) error {
	rw, err := NewCSVRowWriter(w, t, t.PKVals != nil)
	if err != nil {
		return err
	}
	codes := make([]int32, len(t.Cols))
	for i := 0; i < t.NumRows(); i++ {
		var pk, fk int64
		if t.PKVals != nil {
			pk = t.PKVals[i]
		}
		if t.Parent != "" {
			fk = t.FK[i]
		}
		for ci, c := range t.Cols {
			codes[ci] = c.Data[i]
		}
		if err := rw.WriteRow(pk, codes, fk); err != nil {
			return err
		}
	}
	return rw.Flush()
}

// ReadCSV fills an empty table (built from a spec) from CSV produced by
// WriteCSV.
func (t *Table) ReadCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("relation: read csv header: %w", err)
	}
	colOf := make([]int, len(header)) // -1 pk, -2 fk, else column index
	for hi, h := range header {
		switch h {
		case "__pk":
			colOf[hi] = -1
		case "__fk":
			colOf[hi] = -2
		default:
			idx := t.ColIndex(h)
			if idx < 0 {
				return fmt.Errorf("relation: csv column %q not in table %s", h, t.Name)
			}
			colOf[hi] = idx
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("relation: read csv: %w", err)
		}
		for hi, field := range rec {
			v, err := strconv.ParseInt(field, 10, 64)
			if err != nil {
				return fmt.Errorf("relation: csv value %q: %w", field, err)
			}
			switch colOf[hi] {
			case -1:
				t.PKVals = append(t.PKVals, v)
			case -2:
				t.FK = append(t.FK, v)
			default:
				t.Cols[colOf[hi]].Append(int32(v))
			}
		}
	}
}
