package relation

import (
	"encoding/csv"
	"io"
	"strconv"
)

// RowWriter consumes one table's generated rows in final output order —
// the sink side of streaming generation, which never materializes a Table
// in memory. Implementations decide what pk/fk mean; callers pass zeroes
// for tables without the corresponding key column.
type RowWriter interface {
	// WriteRow appends one row: the table's content codes plus, when the
	// writer was configured with the key columns, its primary-key value and
	// parent foreign-key value.
	WriteRow(pk int64, codes []int32, fk int64) error
}

// CSVRowWriter streams rows as CSV in exactly the layout Table.WriteCSV
// produces (and Table.ReadCSV parses): optional __pk first, content
// columns, optional __fk last.
type CSVRowWriter struct {
	cw    *csv.Writer
	hasPK bool
	hasFK bool
	row   []string
}

// NewCSVRowWriter writes the header row for a table shaped like t and
// returns the streaming writer. withPK controls the __pk column; the __fk
// column follows from t.Parent.
func NewCSVRowWriter(w io.Writer, t *Table, withPK bool) (*CSVRowWriter, error) {
	hasFK := t.Parent != ""
	header := make([]string, 0, len(t.Cols)+2)
	if withPK {
		header = append(header, "__pk")
	}
	for _, c := range t.Cols {
		header = append(header, c.Name)
	}
	if hasFK {
		header = append(header, "__fk")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &CSVRowWriter{
		cw:    cw,
		hasPK: withPK,
		hasFK: hasFK,
		row:   make([]string, 0, len(header)),
	}, nil
}

// WriteRow appends one row. pk is ignored unless the writer was built with
// withPK; fk is ignored for root tables.
func (w *CSVRowWriter) WriteRow(pk int64, codes []int32, fk int64) error {
	row := w.row[:0]
	if w.hasPK {
		row = append(row, strconv.FormatInt(pk, 10))
	}
	for _, c := range codes {
		row = append(row, strconv.FormatInt(int64(c), 10))
	}
	if w.hasFK {
		row = append(row, strconv.FormatInt(fk, 10))
	}
	w.row = row
	return w.cw.Write(row)
}

// Flush drains buffered rows to the underlying writer and reports any
// write error. Call it once after the last row.
func (w *CSVRowWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}
