package obs

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
)

// buildPromRegistry populates a registry with every metric shape the
// exposition has to render: plain and labeled counters/gauges/histograms,
// awkward label values, and an empty histogram.
func buildPromRegistry() *Registry {
	r := NewRegistry()
	r.Counter("jobs_total").Add(42)
	r.Gauge("temperature").Set(-3.25)
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // overflow bucket
	r.Histogram("empty_seconds", []float64{1, 2})

	r.CounterVec("gen_tuples_total", "phase").With("sample").Add(100)
	r.CounterVec("gen_tuples_total", "phase").With("merge").Add(7)
	r.GaugeVec("gen_weight_mass", "table", "stage").With(`we"ird\ta
ble`, "before").Set(1.5)
	hv := r.HistogramVec("phase_seconds", []float64{0.1, 10}, "phase")
	hv.With("sample").Observe(0.05)
	hv.With("sample").Observe(3)
	return r
}

// TestWritePrometheusRoundTrip renders a full registry and feeds the
// bytes back through the strict parser — the same gate CI applies to a
// live /metrics fetch.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := buildPromRegistry()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse:\n%s\nerror: %v", text, err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	if f := byName["jobs_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("jobs_total family: %+v", f)
	}
	if f := byName["temperature"]; f.Type != "gauge" || f.Samples[0].Value != -3.25 {
		t.Fatalf("temperature family: %+v", f)
	}

	tuples := byName["gen_tuples_total"]
	if tuples.Type != "counter" || len(tuples.Samples) != 2 {
		t.Fatalf("gen_tuples_total family: %+v", tuples)
	}
	var sample, merge float64
	for _, s := range tuples.Samples {
		switch s.Label("phase") {
		case "sample":
			sample = s.Value
		case "merge":
			merge = s.Value
		}
	}
	if sample != 100 || merge != 7 {
		t.Fatalf("labeled counters: sample=%v merge=%v", sample, merge)
	}

	// The escaped label value must round-trip to the original string.
	mass := byName["gen_weight_mass"]
	if len(mass.Samples) != 1 || mass.Samples[0].Label("table") != "we\"ird\\ta\nble" {
		t.Fatalf("escaped label round-trip: %+v", mass.Samples)
	}

	// Histogram shape: cumulative buckets, +Inf == _count, sum present.
	lat := byName["latency_seconds"]
	if lat.Type != "histogram" {
		t.Fatalf("latency_seconds type = %s", lat.Type)
	}
	var cums []float64
	var count, sum float64
	for _, s := range lat.Samples {
		switch s.Name {
		case "latency_seconds_bucket":
			cums = append(cums, s.Value)
		case "latency_seconds_count":
			count = s.Value
		case "latency_seconds_sum":
			sum = s.Value
		}
	}
	want := []float64{1, 2, 3, 4} // cumulative over 4 observations, +Inf last
	if len(cums) != len(want) {
		t.Fatalf("bucket series %v, want %v", cums, want)
	}
	for i := range want {
		if cums[i] != want[i] {
			t.Fatalf("bucket series %v, want %v", cums, want)
		}
	}
	if count != 4 || math.Abs(sum-5.555) > 1e-9 {
		t.Fatalf("count=%v sum=%v", count, sum)
	}

	// The empty histogram still renders a complete, valid series.
	if f := byName["empty_seconds"]; f.Type != "histogram" || len(f.Samples) != 5 {
		t.Fatalf("empty histogram family: %+v", f)
	}
}

// TestWritePrometheusDeterministic pins byte-identical output for
// identical registry state.
func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, buildPromRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, buildPromRegistry()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition not deterministic:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
}

// TestSanitizeMetricName maps arbitrary registry names onto the
// exposition charset.
func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name":     "ok_name",
		"with-dash":   "with_dash",
		"9leading":    "_leading",
		"sp ace{x=1}": "sp_ace_x_1_",
		"":            "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParsePrometheusRejects covers the validator's failure modes so the
// CI gate cannot pass vacuously.
func TestParsePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":           "1bad 3\n",
		"bad value":          "m abc\n",
		"unquoted label":     "m{l=x} 1\n",
		"unterminated label": "m{l=\"x 1\n",
		"bad type":           "# TYPE m widget\nm 1\n",
		"duplicate type":     "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"hist no inf":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"hist count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n" +
			"h_sum 1\nh_count 3\n",
		"hist not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"hist le not ascending": "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, text := range cases {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}

	good := "# TYPE m counter\nm{l=\"a\"} 1 1700000000\nm{l=\"b\"} 2\n"
	fams, err := ParsePrometheus(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 2 {
		t.Fatalf("parsed families: %+v", fams)
	}
}

// TestPrometheusRoundTripNonFinite pins the exposition of the IEEE
// specials: gauges holding NaN and ±Inf must render as the spec spellings
// and parse back to the same values.
func TestPrometheusRoundTripNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g_nan").Set(math.NaN())
	r.Gauge("g_posinf").Set(math.Inf(1))
	r.Gauge("g_neginf").Set(math.Inf(-1))

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"g_nan NaN", "g_posinf +Inf", "g_neginf -Inf"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			vals[s.Name] = s.Value
		}
	}
	if !math.IsNaN(vals["g_nan"]) {
		t.Fatalf("g_nan parsed as %v, want NaN", vals["g_nan"])
	}
	if !math.IsInf(vals["g_posinf"], 1) {
		t.Fatalf("g_posinf parsed as %v, want +Inf", vals["g_posinf"])
	}
	if !math.IsInf(vals["g_neginf"], -1) {
		t.Fatalf("g_neginf parsed as %v, want -Inf", vals["g_neginf"])
	}
}

// TestPrometheusRoundTripEscapedLabels drives label values through every
// escape the exposition format defines — backslash, double quote, and
// newline — and checks they parse back verbatim.
func TestPrometheusRoundTripEscapedLabels(t *testing.T) {
	values := []string{
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all\three" of\nthem` + "\n\\",
		`trailing\`,
	}
	r := NewRegistry()
	vec := r.CounterVec("escapes_total", "v")
	for i, v := range values {
		vec.With(v).Add(int64(i + 1))
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
	}
	got := map[string]float64{}
	for _, f := range fams {
		if f.Name != "escapes_total" {
			continue
		}
		for _, s := range f.Samples {
			got[s.Label("v")] = s.Value
		}
	}
	for i, v := range values {
		val, ok := got[v]
		if !ok {
			t.Fatalf("label value %q lost in round trip (got %q)", v, keysOf(got))
		}
		if val != float64(i+1) {
			t.Fatalf("label value %q carries %v, want %d", v, val, i+1)
		}
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
