package obs

import (
	"io"
	"testing"
)

// TestNilSafeEntryPoints pins the nil-observer contract: every exported
// obs entry point must be callable on a nil receiver (or with a nil
// registry/hooks argument) without panicking, and must behave as "signal
// disabled". samlint's obsnil analyzer leans on this guarantee.
func TestNilSafeEntryPoints(t *testing.T) {
	var (
		nilSpan  *Span
		nilTrace *Trace
		nilHooks *Hooks
		nilReg   *Registry
	)

	tests := []struct {
		name string
		call func(t *testing.T)
	}{
		{"Span.Child", func(t *testing.T) {
			if got := nilSpan.Child("x"); got != nil {
				t.Fatalf("nil span Child = %v, want nil", got)
			}
		}},
		{"Span.SetAttr", func(t *testing.T) { nilSpan.SetAttr("k", 1) }},
		{"Span.End", func(t *testing.T) { nilSpan.End() }},

		{"Trace.Root", func(t *testing.T) {
			if got := nilTrace.Root(); got != nil {
				t.Fatalf("nil trace Root = %v, want nil", got)
			}
		}},
		{"Trace.WriteJSONL", func(t *testing.T) {
			if err := nilTrace.WriteJSONL(io.Discard); err != nil {
				t.Fatalf("nil trace WriteJSONL = %v, want nil", err)
			}
		}},
		{"Trace.Summary", func(t *testing.T) {
			if got := nilTrace.Summary(); got != "" {
				t.Fatalf("nil trace Summary = %q, want empty", got)
			}
		}},

		{"Hooks.WantsTrainStep", func(t *testing.T) {
			if nilHooks.WantsTrainStep() {
				t.Fatal("nil hooks WantsTrainStep = true")
			}
		}},
		{"Hooks.WantsTrainEpoch", func(t *testing.T) {
			if nilHooks.WantsTrainEpoch() {
				t.Fatal("nil hooks WantsTrainEpoch = true")
			}
		}},
		{"Hooks.WantsGenProgress", func(t *testing.T) {
			if nilHooks.WantsGenProgress() {
				t.Fatal("nil hooks WantsGenProgress = true")
			}
		}},
		{"Hooks.TrainStep", func(t *testing.T) { nilHooks.TrainStep(TrainStep{}) }},
		{"Hooks.TrainEpoch", func(t *testing.T) { nilHooks.TrainEpoch(TrainEpoch{}) }},
		{"Hooks.GenPhase", func(t *testing.T) { nilHooks.GenPhase(GenPhase{}) }},
		{"Hooks.GenProgress", func(t *testing.T) { nilHooks.GenProgress(GenProgress{}) }},
		{"Hooks.EvalQuery", func(t *testing.T) { nilHooks.EvalQuery(EvalQuery{}) }},
		{"Merge", func(t *testing.T) {
			// All-nil inputs merge to a hooks value that is itself safe.
			Merge(nilHooks, nil).TrainStep(TrainStep{})
		}},

		{"Registry.Counter", func(t *testing.T) {
			c := nilReg.Counter("x")
			if c == nil {
				t.Fatal("nil registry Counter = nil")
			}
			c.Inc() // detached but functional
		}},
		{"Registry.Gauge", func(t *testing.T) {
			g := nilReg.Gauge("x")
			if g == nil {
				t.Fatal("nil registry Gauge = nil")
			}
			g.Set(1.5)
		}},
		{"Registry.Histogram", func(t *testing.T) {
			h := nilReg.Histogram("x", []float64{1, 2})
			if h == nil {
				t.Fatal("nil registry Histogram = nil")
			}
			h.Observe(0.5)
		}},
		{"Registry.Snapshot", func(t *testing.T) {
			s := nilReg.Snapshot()
			if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
				t.Fatalf("nil registry Snapshot not empty: %+v", s)
			}
		}},
		{"Registry.MarshalJSON", func(t *testing.T) {
			buf, err := nilReg.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(buf) != "{}" {
				t.Fatalf("nil registry MarshalJSON = %s, want {}", buf)
			}
		}},
		{"Registry.CounterVec", func(t *testing.T) {
			v := nilReg.CounterVec("x", "l")
			if v == nil {
				t.Fatal("nil registry CounterVec = nil")
			}
			v.With("a").Inc() // detached but functional
		}},
		{"Registry.GaugeVec", func(t *testing.T) {
			nilReg.GaugeVec("x", "l").With("a").Set(1)
		}},
		{"Registry.HistogramVec", func(t *testing.T) {
			nilReg.HistogramVec("x", []float64{1}, "l").With("a").Observe(0.5)
		}},
		{"CounterVec.With", func(t *testing.T) {
			var v *CounterVec
			v.With("a").Inc()
		}},
		{"GaugeVec.With", func(t *testing.T) {
			var v *GaugeVec
			v.With("a").Set(1)
		}},
		{"HistogramVec.With", func(t *testing.T) {
			var v *HistogramVec
			v.With("a").Observe(1)
		}},
		{"EventLog", func(t *testing.T) {
			var l *EventLog
			l.Add("k", 1)
			if l.Events() != nil || l.Total() != 0 {
				t.Fatal("nil event log not empty")
			}
		}},
		{"RateMeter", func(t *testing.T) {
			var m *RateMeter
			m.Add(1)
			if m.Rate() != 0 {
				t.Fatal("nil rate meter rate != 0")
			}
		}},
		{"Progress", func(t *testing.T) {
			var p *Progress
			p.Add(1)
			if p.ShouldEmit(0) {
				t.Fatal("nil progress wants to emit")
			}
			if s := p.Snapshot(); s != (ProgressSnapshot{}) {
				t.Fatalf("nil progress snapshot = %+v", s)
			}
		}},
		{"WritePrometheus", func(t *testing.T) {
			if err := WritePrometheus(io.Discard, nilReg); err != nil {
				t.Fatal(err)
			}
		}},
		{"Meta.SetAttrs", func(t *testing.T) { BuildMeta().SetAttrs(nilSpan) }},
		{"PublishExpvar", func(t *testing.T) {
			if PublishExpvar(nilReg) {
				t.Fatal("nil registry claimed the expvar slot")
			}
		}},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("nil-receiver call panicked: %v", r)
				}
			}()
			tc.call(t)
		})
	}
}

// TestZeroValueRegistryUsable pins the lazily-allocated-maps behavior: a
// zero-value Registry (not built with NewRegistry) registers and serves
// metrics normally.
func TestZeroValueRegistryUsable(t *testing.T) {
	var r Registry
	r.Counter("a").Add(3)
	r.Gauge("b").Set(2.5)
	r.Histogram("c", []float64{1, 10}).Observe(4)

	s := r.Snapshot()
	if s.Counters["a"] != 3 {
		t.Errorf("counter a = %d, want 3", s.Counters["a"])
	}
	if s.Gauges["b"] != 2.5 {
		t.Errorf("gauge b = %v, want 2.5", s.Gauges["b"])
	}
	if s.Histograms["c"].Count != 1 {
		t.Errorf("histogram c count = %d, want 1", s.Histograms["c"].Count)
	}

	// Get-or-create returns the same instance on repeat lookups.
	if r.Counter("a") != r.Counter("a") {
		t.Error("repeat Counter lookups returned different instances")
	}
}
