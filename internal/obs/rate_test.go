package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances manually so rate math is tested without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestMeter(window time.Duration) (*RateMeter, *fakeClock) {
	m := NewRateMeter(window)
	c := newFakeClock()
	m.now = c.now
	return m, c
}

// TestRateMeterSteadyState feeds a constant rate and expects Rate to
// report it once the window has data.
func TestRateMeterSteadyState(t *testing.T) {
	m, c := newTestMeter(16 * time.Second) // 1s slots
	for i := 0; i < 32; i++ {
		m.Add(10)
		c.advance(time.Second)
	}
	got := m.Rate()
	if got < 9 || got > 11 {
		t.Fatalf("steady rate = %v, want ~10", got)
	}
}

// TestRateMeterShortRunCorrection pins the early-reading behavior: after
// one burst the rate divides by the elapsed time, not the whole window —
// otherwise the first seconds of a run always under-report.
func TestRateMeterShortRunCorrection(t *testing.T) {
	m, c := newTestMeter(16 * time.Second)
	m.Add(100)
	c.advance(2 * time.Second)
	m.Add(100)
	got := m.Rate()
	if got < 80 || got > 220 {
		t.Fatalf("short-run rate = %v, want ~100 (200 events over ~2s)", got)
	}
}

// TestRateMeterAgesOut checks old slots leave the window.
func TestRateMeterAgesOut(t *testing.T) {
	m, c := newTestMeter(16 * time.Second)
	m.Add(1000)
	c.advance(40 * time.Second) // far past the window
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate after window = %v, want 0", got)
	}
}

// TestRateMeterEmpty returns 0 with no data.
func TestRateMeterEmpty(t *testing.T) {
	m, _ := newTestMeter(time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("empty rate = %v, want 0", got)
	}
}

// TestProgressSnapshot drives a tracker and checks done/total, rate, and
// a finite ETA; a finished tracker reports ETA 0.
func TestProgressSnapshot(t *testing.T) {
	p := NewProgress(1000, time.Second)
	c := newFakeClock()
	p.meter.now = c.now
	p.Add(250)
	c.advance(500 * time.Millisecond)
	p.Add(250)

	s := p.Snapshot()
	if s.Done != 500 || s.Total != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Rate <= 0 {
		t.Fatalf("rate = %v, want > 0", s.Rate)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 with half the work left", s.ETA)
	}

	p.Add(500)
	if s := p.Snapshot(); s.ETA != 0 {
		t.Fatalf("finished ETA = %v, want 0", s.ETA)
	}
}

// TestProgressShouldEmit pins the CAS throttle: the first caller wins,
// immediate retries lose, and the slot reopens after the interval.
func TestProgressShouldEmit(t *testing.T) {
	p := NewProgress(10, time.Second)
	if !p.ShouldEmit(time.Millisecond) {
		t.Fatal("first ShouldEmit = false")
	}
	if p.ShouldEmit(time.Hour) {
		t.Fatal("immediate second ShouldEmit = true")
	}
	time.Sleep(2 * time.Millisecond)
	if !p.ShouldEmit(time.Millisecond) {
		t.Fatal("ShouldEmit after interval = false")
	}
}

// TestProgressETAUnknownCases pins the "0 = unknown" ETA contract at its
// edges: an in-flight tracker with nothing done (no rate at all) and a
// rate so small the estimate would overflow a Duration both report ETA 0
// instead of manufacturing ±Inf/NaN or negative durations.
func TestProgressETAUnknownCases(t *testing.T) {
	// Nothing done yet: no rolling rate, no average fallback.
	p := NewProgress(1000, time.Second)
	if s := p.Snapshot(); s.ETA != 0 {
		t.Fatalf("not-yet-started ETA = %v, want 0 (unknown)", s.ETA)
	}

	// Work done but the rolling window has aged out and the start clock
	// implies a vanishing average rate: the remaining/rate quotient would
	// overflow time.Duration, so ETA must stay 0.
	p = NewProgress(1<<62, time.Second)
	c := newFakeClock()
	p.meter.now = c.now
	p.Add(1)
	c.advance(time.Hour) // ages the single event out of the window
	p.start = time.Now().Add(-time.Hour)
	s := p.Snapshot()
	if s.ETA < 0 {
		t.Fatalf("overflowing ETA = %v, want non-negative", s.ETA)
	}
	if s.ETA != 0 {
		t.Fatalf("overflowing ETA = %v, want 0 (unknown)", s.ETA)
	}

	// A zero-rate snapshot mid-run must render as "ETA unknown", never as
	// a numeric duration.
	var sb strings.Builder
	ProgressHooks(&sb).GenProgress(GenProgress{Phase: "sample", Done: 10, Total: 100, Rate: 0, ETA: 0})
	if !strings.Contains(sb.String(), "ETA unknown") {
		t.Fatalf("zero-rate progress line %q does not say ETA unknown", sb.String())
	}
	sb.Reset()
	ProgressHooks(&sb).GenProgress(GenProgress{Phase: "sample", Done: 100, Total: 100, Rate: 50, ETA: 0})
	if strings.Contains(sb.String(), "ETA") {
		t.Fatalf("finished progress line %q should not mention an ETA", sb.String())
	}
	sb.Reset()
	ProgressHooks(&sb).GenProgress(GenProgress{Phase: "sample", Done: 10, Total: 100, Rate: 45, ETA: 2 * time.Second})
	if !strings.Contains(sb.String(), "ETA 2s") {
		t.Fatalf("known-ETA progress line %q does not print the estimate", sb.String())
	}
}
