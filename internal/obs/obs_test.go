package obs

import (
	"bytes"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one counter, gauge, and histogram from
// GOMAXPROCS goroutines; meaningful under -race, and the counter and
// histogram totals must come out exact regardless.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("level")
			h := r.Histogram("lat", ExpBuckets(1e-6, 2, 24))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				g.Add(0.5)
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if got := r.Counter("hits").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	h := r.Histogram("lat", nil)
	if got := h.Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	wantSum := 0.0
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i%100) * 1e-5
	}
	wantSum *= float64(workers)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum+1e-12 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
	snap := r.Snapshot()
	if snap.Counters["hits"] != want || snap.Histograms["lat"].Count != want {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

// TestHistogramQuantiles checks bucket-interpolated quantiles against a
// sorted reference sample: every estimate must land within one bucket
// width of the exact quantile.
func TestHistogramQuantiles(t *testing.T) {
	bounds := ExpBuckets(0.001, 1.5, 40)
	h := NewHistogram(bounds)
	// Log-uniform-ish deterministic sample.
	var xs []float64
	v := 0.0017
	for i := 0; i < 5000; i++ {
		x := math.Mod(v*float64(i+1), 3.0) + 0.002
		xs = append(xs, x)
		h.Observe(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		exact := xs[int(math.Min(q*float64(len(xs)), float64(len(xs)-1)))]
		// Bucket width at the exact value bounds the estimation error.
		idx := sort.SearchFloat64s(bounds, exact)
		lo := 0.0
		if idx > 0 {
			lo = bounds[idx-1]
		}
		hi := exact * 2
		if idx < len(bounds) {
			hi = bounds[idx]
		}
		width := hi - lo
		if math.Abs(got-exact) > width+1e-12 {
			t.Fatalf("q=%.2f: got %v, exact %v (bucket width %v)", q, got, exact, width)
		}
	}
	if !math.IsNaN(NewHistogram(bounds).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

// TestHistogramQuantileEdges pins the interpolation corner cases: an
// empty histogram is NaN at every quantile, a single-bucket histogram
// interpolates within the observed range, p0 reports the observed min,
// p100 the observed max, and out-of-range q clamps to [0, 1].
func TestHistogramQuantileEdges(t *testing.T) {
	empty := NewHistogram([]float64{1, 2, 3})
	for _, q := range []float64{0, 0.5, 1} {
		if !math.IsNaN(empty.Quantile(q)) {
			t.Fatalf("empty Quantile(%v) = %v, want NaN", q, empty.Quantile(q))
		}
	}

	// One bound → two buckets; keep all mass in the first so a single
	// bucket holds every observation.
	single := NewHistogram([]float64{10})
	single.Observe(2)
	single.Observe(4)
	single.Observe(6)
	if got := single.Quantile(0); got != 2 {
		t.Fatalf("single-bucket p0 = %v, want observed min 2", got)
	}
	if got := single.Quantile(1); got != 6 {
		t.Fatalf("single-bucket p100 = %v, want observed max 6", got)
	}
	if mid := single.Quantile(0.5); mid < 2 || mid > 6 {
		t.Fatalf("single-bucket p50 = %v, want within [2, 6]", mid)
	}

	// q outside [0, 1] clamps instead of extrapolating.
	if got := single.Quantile(-3); got != 2 {
		t.Fatalf("Quantile(-3) = %v, want clamp to p0 = 2", got)
	}
	if got := single.Quantile(7); got != 6 {
		t.Fatalf("Quantile(7) = %v, want clamp to p100 = 6", got)
	}

	// Overflow-only mass: everything above the last bound still reports
	// quantiles clamped to the observed range.
	over := NewHistogram([]float64{1})
	over.Observe(50)
	over.Observe(100)
	if got := over.Quantile(1); got != 100 {
		t.Fatalf("overflow p100 = %v, want 100", got)
	}
	if got := over.Quantile(0); got != 50 {
		t.Fatalf("overflow p0 = %v, want 50", got)
	}
}

// TestHistogramMinMaxClamp pins the small-sample behaviour: a single
// observation reports itself exactly at every quantile.
func TestHistogramMinMaxClamp(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 10, 6))
	h.Observe(33)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); math.Abs(got-33) > 1e-9 {
			t.Fatalf("single-sample quantile(%v) = %v, want 33", q, got)
		}
	}
}

// TestSpanNestingRoundTrip builds a nested trace, serializes it to JSONL,
// parses it back, and checks the tree structure and measurements survive.
func TestSpanNestingRoundTrip(t *testing.T) {
	tr := NewTrace("run")
	tr.Root().SetAttr("seed", 42)
	train := tr.Root().Child("train")
	ep := train.Child("epoch")
	time.Sleep(time.Millisecond)
	ep.End()
	train.End()
	gen := tr.Root().Child("generate")
	gen.SetAttr("tuples", 123)
	gen.End()
	tr.Root().End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d spans, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	if byName["run"].Parent != 0 {
		t.Fatalf("root parent = %d", byName["run"].Parent)
	}
	if byName["train"].Parent != byName["run"].ID {
		t.Fatal("train should nest under run")
	}
	if byName["epoch"].Parent != byName["train"].ID {
		t.Fatal("epoch should nest under train")
	}
	if byName["epoch"].WallUS <= 0 {
		t.Fatalf("epoch wall = %dus, want > 0", byName["epoch"].WallUS)
	}
	if v, ok := byName["run"].Attrs["seed"]; !ok || v.(float64) != 42 {
		t.Fatalf("seed attr lost: %v", byName["run"].Attrs)
	}
	if v := byName["generate"].Attrs["tuples"]; v.(float64) != 123 {
		t.Fatalf("tuples attr = %v", v)
	}
	sum := SummarizeRecords(recs)
	for _, want := range []string{"run", "train", "epoch", "generate", "seed=42"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestReadTraceRejectsMalformed covers the checker used by the CI smoke
// run: empty traces, broken JSON, and orphan parents must all error.
func TestReadTraceRejectsMalformed(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := ReadTrace(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	orphan := `{"id":5,"parent":3,"name":"x","start_us":0,"wall_us":1}` + "\n"
	if _, err := ReadTrace(strings.NewReader(orphan)); err == nil {
		t.Fatal("orphan parent accepted")
	}
}

// TestNilTraceAndHooksAreNoOps pins the disabled-telemetry contract: nil
// receivers must be callable and free of effects.
func TestNilTraceAndHooksAreNoOps(t *testing.T) {
	var tr *Trace
	sp := tr.Root().Child("x")
	sp.SetAttr("k", 1)
	sp.End()
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var h *Hooks
	h.TrainEpoch(TrainEpoch{})
	h.TrainStep(TrainStep{})
	h.GenPhase(GenPhase{})
	h.EvalQuery(EvalQuery{})
	if h.WantsTrainStep() || h.WantsTrainEpoch() {
		t.Fatal("nil hooks want stats")
	}
	if Merge(nil, nil) != nil {
		t.Fatal("Merge of nils should be nil")
	}
}

// TestMergeFansOut checks merged hooks deliver every event to all targets.
func TestMergeFansOut(t *testing.T) {
	var a, b int
	h := Merge(&Hooks{OnTrainEpoch: func(TrainEpoch) { a++ }},
		&Hooks{OnTrainEpoch: func(TrainEpoch) { b++ }})
	h.TrainEpoch(TrainEpoch{})
	if a != 1 || b != 1 {
		t.Fatalf("fan-out a=%d b=%d", a, b)
	}
}

// TestMetricsHooksFeedRegistry wires MetricsHooks and checks the registry
// reflects emitted events.
func TestMetricsHooksFeedRegistry(t *testing.T) {
	r := NewRegistry()
	h := MetricsHooks(r)
	h.TrainEpoch(TrainEpoch{Epoch: 1, Epochs: 2, Loss: 0.5, GradNorm: 1.25, Wall: time.Second})
	h.TrainStep(TrainStep{Loss: 0.5, Wall: 2 * time.Millisecond})
	h.GenPhase(GenPhase{Phase: "merge", Table: "t", Tuples: 10, Groups: 4})
	h.GenPhase(GenPhase{Phase: "weight", Table: "t", MassBefore: 7, MassAfter: 100})
	h.EvalQuery(EvalQuery{Card: 10, Truth: 20, QError: 2, Wall: time.Millisecond})
	snap := r.Snapshot()
	if snap.Counters["train_epochs_total"] != 1 || snap.Counters["train_steps_total"] != 1 {
		t.Fatalf("train counters: %+v", snap.Counters)
	}
	if snap.Gauges["train_loss"] != 0.5 || snap.Gauges["train_epochs_per_sec"] != 1 {
		t.Fatalf("train gauges: %+v", snap.Gauges)
	}
	if snap.Counters[`gen_merge_groups_total{table="t"}`] != 4 {
		t.Fatalf("gen counters: %+v", snap.Counters)
	}
	if snap.Counters[`gen_tuples_total{phase="merge"}`] != 10 {
		t.Fatalf("gen counters: %+v", snap.Counters)
	}
	if snap.Gauges[`gen_weight_mass{table="t",stage="after"}`] != 100 {
		t.Fatalf("gen gauges: %+v", snap.Gauges)
	}
	if snap.Histograms["eval_qerror"].Count != 1 {
		t.Fatalf("eval histograms: %+v", snap.Histograms)
	}
	h.GenProgress(GenProgress{Phase: "sample", Done: 50, Total: 100, Rate: 123})
	snap = r.Snapshot()
	if snap.Gauges["gen_tuples_per_sec"] != 123 || snap.Gauges["gen_progress_ratio"] != 0.5 {
		t.Fatalf("progress gauges: %+v", snap.Gauges)
	}
}

// TestServeDebug boots the debug server on an ephemeral port, fetches
// every endpoint, validates the Prometheus exposition parses, and checks
// the close function actually drains the server.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("boot").Inc()
	r.CounterVec("boot_labeled_total", "kind").With("a").Add(2)
	ev := NewEventLog(8)
	ev.Add("train_step", TrainStep{Step: 1})
	addr, closeFn, err := ServeDebug("127.0.0.1:0", r, ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/metrics", "/metrics.json", "/debug/events"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("/metrics content type = %q, want %q", ct, PromContentType)
	}
	fams, err := ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
	}
	if !names["boot"] || !names["boot_labeled_total"] {
		t.Fatalf("exposition missing families: %v", names)
	}

	closeFn()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after close")
	}
}

// resetPublished clears the process-wide expvar slot so the publish test
// is independent of which test claimed it first.
func resetPublished() {
	publishMu.Lock()
	published = nil
	publishMu.Unlock()
}

// TestPublishExpvar pins the single-registry-per-process contract: the
// first non-nil registry claims the slot, later registries are refused,
// and nil never claims it.
func TestPublishExpvar(t *testing.T) {
	resetPublished()
	defer resetPublished()
	if PublishExpvar(nil) {
		t.Fatal("nil registry claimed the expvar slot")
	}
	first := NewRegistry()
	if !PublishExpvar(first) {
		t.Fatal("first registry refused")
	}
	if !PublishExpvar(first) {
		t.Fatal("republishing the same registry refused")
	}
	if PublishExpvar(NewRegistry()) {
		t.Fatal("second registry accepted")
	}
}
