// Package obs is the pipeline's telemetry layer: a dependency-free
// (stdlib-only) metrics registry, phase-scoped trace spans with memory
// deltas, and observer hooks that the training, generation, and evaluation
// stages invoke. Everything is safe for concurrent use and engineered so
// that a nil observer / nil span costs nothing on the hot paths — the
// training loop's zero-allocation contract survives instrumentation.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0; counters only grow).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 metric (last-write-wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket
// i counts observations in (bounds[i-1], bounds[i]]; a final overflow
// bucket counts observations above the last bound.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the usual latency/error bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the average observation, or 0 with no data.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the containing bucket. The error is bounded by the
// bucket width; observed min/max clamp the extreme buckets so small samples
// are not smeared across a whole bucket.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	lo := math.Float64frombits(h.min.Load())
	hi := math.Float64frombits(h.max.Load())
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			// Bucket span, clamped to the observed range.
			bLo := lo
			if i > 0 && h.bounds[i-1] > bLo {
				bLo = h.bounds[i-1]
			}
			bHi := hi
			if i < len(h.bounds) && h.bounds[i] < bHi {
				bHi = h.bounds[i]
			}
			if bHi < bLo {
				bHi = bLo
			}
			frac := (rank - cum) / c
			return bLo + frac*(bHi-bLo)
		}
		cum += c
	}
	return hi
}

// HistogramSnapshot is the JSON view of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
		s.P50 = h.Quantile(0.50)
		s.P90 = h.Quantile(0.90)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// Registry is a concurrent, get-or-create collection of named metrics.
// Like the rest of the obs layer it follows the nil-observer contract: on
// a nil *Registry the getters return detached metrics (recorded values go
// nowhere), Snapshot is empty, and nothing panics — so instrumented code
// needs no metrics-enabled branch. The zero value is also usable; maps
// are allocated on first registration.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// Labeled families (see labels.go). Kept separate from the plain maps
	// so exposition can render structured labels; the flat Snapshot view
	// folds children in under rendered name{label="value"} keys.
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry (the one -debug-addr exports).
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later callers get the existing one regardless of bounds).
// On a nil registry it returns a detached histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram(bounds)
		if r.histograms == nil {
			r.histograms = make(map[string]*Histogram)
		}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is the JSON view of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value, labeled children
// included (folded in under rendered name{label="value"} keys). A nil
// registry snapshots as empty.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	for _, v := range r.counterVecs {
		v.mu.RLock()
		for key, c := range v.children {
			s.Counters[renderLabels(v.name, v.labels, v.tuples[key].values)] = c.Value()
		}
		v.mu.RUnlock()
	}
	for _, v := range r.gaugeVecs {
		v.mu.RLock()
		for key, g := range v.children {
			s.Gauges[renderLabels(v.name, v.labels, v.tuples[key].values)] = g.Value()
		}
		v.mu.RUnlock()
	}
	for _, v := range r.histogramVecs {
		v.mu.RLock()
		for key, h := range v.children {
			s.Histograms[renderLabels(v.name, v.labels, v.tuples[key].values)] = h.Snapshot()
		}
		v.mu.RUnlock()
	}
	return s
}

// MarshalJSON renders the live registry (so it can be published to expvar).
func (r *Registry) MarshalJSON() ([]byte, error) { return json.Marshal(r.Snapshot()) }
