package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var (
	publishMu sync.Mutex
	published *Registry
	// expvarRegistered tracks the one-time expvar.Publish separately from
	// the slot: expvar panics on duplicate names, but the exported Func
	// reads `published` on every call, so the slot itself stays resettable
	// (tests rely on that).
	expvarRegistered bool
)

// PublishExpvar exposes the registry under the "sam" expvar key (served at
// /debug/vars). expvar is process-global and panics on duplicate names, so
// only one registry per process can be published: the first non-nil
// registry wins and every later call with a different registry is refused.
// The return value reports whether r is the published registry — callers
// that need a second exported registry should serve their own snapshot
// instead. A nil registry returns false without claiming the slot.
func PublishExpvar(r *Registry) bool {
	if r == nil {
		return false
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if published == nil {
		published = r
		if !expvarRegistered {
			expvarRegistered = true
			expvar.Publish("sam", expvar.Func(func() any {
				publishMu.Lock()
				reg := published
				publishMu.Unlock()
				return reg.Snapshot()
			}))
		}
	}
	return published == r
}

// ServeDebug starts an HTTP debug server on addr (e.g. ":6060") serving
// net/http/pprof under /debug/pprof/, expvar under /debug/vars, the
// registry in Prometheus text format under /metrics, the JSON snapshot
// under /metrics.json, and — when ev is non-nil — the recent-event ring
// under /debug/events. It binds synchronously, so a bad address fails
// fast, then serves in a background goroutine. The bound address is
// returned (useful with ":0") together with a close function that drains
// the server; serve failures are counted in the registry's
// obs_debug_serve_errors_total counter rather than silently dropped.
func ServeDebug(addr string, r *Registry, ev *EventLog) (string, func(), error) {
	PublishExpvar(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		if err := WritePrometheus(w, r); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		buf, err := r.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(buf)
	})
	if ev != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			buf, err := ev.MarshalJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(buf)
		})
	}
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			r.Counter("obs_debug_serve_errors_total").Inc()
		}
	}()
	closeFn := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		<-done
	}
	return ln.Addr().String(), closeFn, nil
}
