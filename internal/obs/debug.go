package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar exposes the registry under the "sam" expvar key (served at
// /debug/vars). Safe to call repeatedly; only the first registry wins
// (expvar panics on duplicate names).
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("sam", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// ServeDebug starts an HTTP debug server on addr (e.g. ":6060") serving
// net/http/pprof under /debug/pprof/, expvar under /debug/vars, and the
// registry snapshot as JSON under /metrics. It binds synchronously — so a
// bad address fails fast — then serves in a background goroutine for the
// life of the process. The bound address is returned (useful with ":0").
func ServeDebug(addr string, r *Registry) (string, error) {
	PublishExpvar(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		buf, err := r.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(buf)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
