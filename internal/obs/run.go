package obs

import (
	"bufio"
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A RunID is the correlation key of one pipeline invocation: the CLIs
// generate one per run and stamp it into the trace root ("run_id" attr),
// the event ring, the Prometheus run-info family, the JSONL run log, and
// the benchmark reports, so artifacts from the same run can be joined
// offline (cmd/samreport does exactly that).

// runSalt breaks ties between IDs minted by the same process when the
// entropy source is unavailable.
var runSalt atomic.Uint64

// NewRunID returns a fresh 16-hex-char run identifier. IDs come from the
// OS entropy source; if that fails (it realistically never does) the ID
// falls back to pid ⊕ a process-local counter, still unique within a
// machine's concurrent runs for correlation purposes.
func NewRunID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], uint64(os.Getpid())<<32^runSalt.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// RunInfoMetric is the name of the build-info-style identity family: a
// constant-1 gauge whose labels carry the run ID and build metadata, the
// idiom Prometheus uses to join a scrape to out-of-band artifacts.
const RunInfoMetric = "sam_run_info"

// runInfoLabels is the label schema of RunInfoMetric, in render order.
var runInfoLabels = []string{"run_id", "go_version", "goos", "goarch", "commit"}

// StampRunInfo publishes sam_run_info{run_id=…,go_version=…,…} 1 into r.
// Safe on a nil registry (no-op via the detached-vector contract).
func StampRunInfo(r *Registry, runID string, m Meta) {
	r.GaugeVec(RunInfoMetric, runInfoLabels...).
		With(runID, m.GoVersion, m.GOOS, m.GOARCH, m.Commit).Set(1)
}

// RunIDFromFamilies extracts the run ID a metrics payload was stamped
// with: the run_id label of the first sam_run_info sample. Empty when the
// family is absent.
func RunIDFromFamilies(fams []PromFamily) string {
	for i := range fams {
		if fams[i].Name != RunInfoMetric {
			continue
		}
		for _, s := range fams[i].Samples {
			if id := s.Label("run_id"); id != "" {
				return id
			}
		}
	}
	return ""
}

// RunIDFromSnapshot extracts the run ID a registry JSON snapshot was
// stamped with: the run_id label inside the sam_run_info gauge's flat
// key (`sam_run_info{run_id="…",…}`, run_id rendered first per the label
// schema). Label-value escapes (\\, \", \n) are undone. Empty when the
// family is absent.
func RunIDFromSnapshot(s Snapshot) string {
	prefix := RunInfoMetric + `{run_id="`
	for key := range s.Gauges {
		rest, ok := strings.CutPrefix(key, prefix)
		if !ok {
			continue
		}
		var sb strings.Builder
		for i := 0; i < len(rest); i++ {
			switch c := rest[i]; c {
			case '\\':
				if i+1 < len(rest) {
					i++
					if rest[i] == 'n' {
						sb.WriteByte('\n')
					} else {
						sb.WriteByte(rest[i])
					}
				}
			case '"':
				return sb.String()
			default:
				sb.WriteByte(c)
			}
		}
	}
	return ""
}

// RunLogEntry is one line of the structured JSONL run log: an absolute
// timestamp, the owning run's ID, a kind tag matching the event-ring
// vocabulary (plus "run_start"/"run_end" framing), and the event payload.
type RunLogEntry struct {
	Time  time.Time       `json:"time"`
	RunID string          `json:"run_id"`
	Kind  string          `json:"kind"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// RunLog appends structured events to a JSONL stream, one self-contained
// entry per line (every line repeats the run ID, so a log survives being
// cat'ed together with others and still joins correctly). All methods are
// safe for concurrent use and no-ops on a nil log; write errors are
// sticky and surface from Close.
type RunLog struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	runID string
	err   error
}

// NewRunLog starts a run log on w, writing the "run_start" framing entry
// with the build metadata as its payload.
func NewRunLog(w io.Writer, runID string) *RunLog {
	l := &RunLog{bw: bufio.NewWriter(w), runID: runID}
	l.Log("run_start", BuildMeta())
	return l
}

// RunID returns the ID every entry is stamped with ("" on a nil log).
func (l *RunLog) RunID() string {
	if l == nil {
		return ""
	}
	return l.runID
}

// Log appends one entry. Payloads that fail to marshal are recorded as
// the sticky error rather than silently dropped.
func (l *RunLog) Log(kind string, data any) {
	if l == nil {
		return
	}
	var raw json.RawMessage
	if data != nil {
		buf, err := json.Marshal(data)
		if err != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = fmt.Errorf("obs: runlog %s payload: %w", kind, err)
			}
			l.mu.Unlock()
			return
		}
		raw = buf
	}
	entry, err := json.Marshal(RunLogEntry{Time: time.Now(), RunID: l.runID, Kind: kind, Data: raw})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err == nil {
		_, err = l.bw.Write(append(entry, '\n'))
	}
	if err != nil {
		l.err = err
	}
}

// Close writes the "run_end" framing entry, flushes, and returns the
// first error the log hit. Nil logs close cleanly.
func (l *RunLog) Close() error {
	if l == nil {
		return nil
	}
	l.Log("run_end", nil)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// RunLogHooks returns hooks that append every pipeline event to the run
// log under the same kind vocabulary as the event ring. Like the ring,
// this is offline tooling: payloads are boxed and marshaled per event, so
// attach it only where the allocation-free contract doesn't apply.
func RunLogHooks(l *RunLog) *Hooks {
	return &Hooks{
		OnTrainEpoch:  func(e TrainEpoch) { l.Log("train_epoch", e) },
		OnTrainStep:   func(s TrainStep) { l.Log("train_step", s) },
		OnGenPhase:    func(p GenPhase) { l.Log("gen_phase", p) },
		OnGenProgress: func(p GenProgress) { l.Log("gen_progress", p) },
		OnStreamPass:  func(p StreamPass) { l.Log("stream_pass", p) },
		OnEvalQuery:   func(q EvalQuery) { l.Log("eval_query", q) },
	}
}

// ReadRunLog parses and validates a JSONL run log: every line must be a
// well-formed entry, carry a kind and the same non-empty run ID, and the
// first entry must be the "run_start" frame. It returns the entries in
// file order.
func ReadRunLog(r io.Reader) ([]RunLogEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var out []RunLogEntry
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e RunLogEntry
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("obs: runlog line %d: %w", lineNo, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("obs: runlog line %d: missing kind", lineNo)
		}
		if e.RunID == "" {
			return nil, fmt.Errorf("obs: runlog line %d: missing run_id", lineNo)
		}
		if len(out) == 0 {
			if e.Kind != "run_start" {
				return nil, fmt.Errorf("obs: runlog starts with %q, want run_start", e.Kind)
			}
		} else if e.RunID != out[0].RunID {
			return nil, fmt.Errorf("obs: runlog line %d: run_id %q does not match %q", lineNo, e.RunID, out[0].RunID)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: empty run log")
	}
	return out, nil
}
