package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace collects a tree of phase spans for one run. All methods are safe
// for concurrent use and safe on a nil receiver (a nil *Trace or nil *Span
// is "tracing disabled" and costs a branch).
type Trace struct {
	mu    sync.Mutex
	start time.Time
	next  int64
	spans []*Span
	root  *Span
}

// Span is one phase of a run: wall time plus allocation and GC deltas
// (from runtime.ReadMemStats at start and end), with optional attributes.
type Span struct {
	tr     *Trace
	id     int64
	parent int64
	name   string

	start      time.Time
	startAlloc uint64 // MemStats.TotalAlloc
	startMall  uint64 // MemStats.Mallocs
	startGC    uint32 // MemStats.NumGC

	mu    sync.Mutex
	ended bool
	wall  time.Duration
	alloc uint64
	mall  uint64
	gcs   uint32
	attrs map[string]any
}

// NewTrace starts a trace whose root span carries the run name. End the
// root (or just write the trace — live spans serialize with their current
// elapsed time) before serializing.
func NewTrace(name string) *Trace {
	tr := &Trace{start: time.Now()}
	tr.root = tr.newSpan(name, 0)
	return tr
}

// Root returns the run-level span; attach run attributes (seed, scale,
// host metadata) to it and create phase spans as its children.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

func (tr *Trace) newSpan(name string, parent int64) *Span {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	tr.mu.Lock()
	tr.next++
	sp := &Span{
		tr:         tr,
		id:         tr.next,
		parent:     parent,
		name:       name,
		start:      time.Now(),
		startAlloc: ms.TotalAlloc,
		startMall:  ms.Mallocs,
		startGC:    ms.NumGC,
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// Child opens a nested span. On a nil receiver it returns nil, so call
// sites need no tracing-enabled branch.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.newSpan(name, sp.id)
}

// SetAttr attaches an attribute to the span. Values must be JSON-encodable.
func (sp *Span) SetAttr(key string, value any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]any, 4)
	}
	sp.attrs[key] = value
	sp.mu.Unlock()
}

// End closes the span, recording wall time and memory deltas. Ending twice
// is a no-op; ending a nil span is a no-op.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sp.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.wall = time.Since(sp.start)
		sp.alloc = ms.TotalAlloc - sp.startAlloc
		sp.mall = ms.Mallocs - sp.startMall
		sp.gcs = ms.NumGC - sp.startGC
	}
	sp.mu.Unlock()
}

// SpanRecord is the JSONL wire form of one span. StartUS is relative to
// the trace start, so traces carry no absolute clock.
type SpanRecord struct {
	ID         int64          `json:"id"`
	Parent     int64          `json:"parent"` // 0 = root
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`
	WallUS     int64          `json:"wall_us"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Mallocs    uint64         `json:"mallocs"`
	GCs        uint32         `json:"gcs"`
	Live       bool           `json:"live,omitempty"` // span had not ended when serialized
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// record snapshots the span (live spans report elapsed-so-far).
func (sp *Span) record(traceStart time.Time) SpanRecord {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	rec := SpanRecord{
		ID:      sp.id,
		Parent:  sp.parent,
		Name:    sp.name,
		StartUS: sp.start.Sub(traceStart).Microseconds(),
		Attrs:   sp.attrs,
	}
	if sp.ended {
		rec.WallUS = sp.wall.Microseconds()
		rec.AllocBytes = sp.alloc
		rec.Mallocs = sp.mall
		rec.GCs = sp.gcs
	} else {
		rec.WallUS = time.Since(sp.start).Microseconds()
		rec.Live = true
	}
	return rec
}

// WriteJSONL serializes the trace, one span per line, parents before
// children.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	start := tr.start
	tr.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		if err := enc.Encode(sp.record(start)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace back into records (the round-trip half of
// WriteJSONL). It rejects empty traces, malformed lines, and spans whose
// parent is not defined on an earlier line.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []SpanRecord
	seen := map[int64]bool{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if rec.ID == 0 {
			return nil, fmt.Errorf("obs: trace line %d: span id 0", line)
		}
		if rec.Parent != 0 && !seen[rec.Parent] {
			return nil, fmt.Errorf("obs: trace line %d: parent %d not yet defined", line, rec.Parent)
		}
		seen[rec.ID] = true
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: empty trace")
	}
	return out, nil
}

// Summary renders the trace as an indented tree with per-span wall time
// and allocation deltas — the phase breakdown embedded in run reports.
func (tr *Trace) Summary() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	start := tr.start
	tr.mu.Unlock()
	recs := make([]SpanRecord, len(spans))
	for i, sp := range spans {
		recs[i] = sp.record(start)
	}
	return SummarizeRecords(recs)
}

// SummarizeRecords renders parsed span records as an indented tree.
func SummarizeRecords(recs []SpanRecord) string {
	children := map[int64][]SpanRecord{}
	for _, rec := range recs {
		children[rec.Parent] = append(children[rec.Parent], rec)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartUS < kids[j].StartUS })
	}
	var sb strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, rec := range children[parent] {
			live := ""
			if rec.Live {
				live = " (live)"
			}
			fmt.Fprintf(&sb, "%s%-*s %10s  %9s alloc  %6d mallocs  %d GCs%s%s\n",
				strings.Repeat("  ", depth), 24-2*depth, rec.Name,
				time.Duration(rec.WallUS)*time.Microsecond,
				fmtBytes(rec.AllocBytes), rec.Mallocs, rec.GCs, live, fmtAttrs(rec.Attrs))
			walk(rec.ID, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("  {")
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%v", k, attrs[k])
	}
	sb.WriteString("}")
	return sb.String()
}
