package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Event is one entry in the debug event ring: a pipeline signal (train
// step/epoch, generation phase/progress, evaluated query) with its
// arrival time and sequence number.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Data any       `json:"data"`
}

// EventLog is a fixed-capacity ring buffer of recent events, served by
// the debug server at /debug/events so a long run's last moments are
// inspectable without a trace file. Appends overwrite the oldest entry;
// all methods are safe for concurrent use and no-ops on a nil log.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // ring position of the next write
	seq   uint64 // total events ever appended
	runID string // stamped into the /debug/events payload for offline joins
}

// DefaultEventLogSize is the ring capacity the CLIs use.
const DefaultEventLogSize = 256

// NewEventLog returns a ring holding the last capacity events (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// SetRunID stamps the ring with the owning run's ID; it appears in the
// marshaled payload so /debug/events joins against the run's trace,
// metrics, and run log.
func (l *EventLog) SetRunID(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.runID = id
	l.mu.Unlock()
}

// RunID returns the stamped run ID ("" when unset or on a nil log).
func (l *EventLog) RunID() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.runID
}

// Add appends one event, evicting the oldest when full.
func (l *EventLog) Add(kind string, data any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev := Event{Seq: l.seq, Time: time.Now(), Kind: kind, Data: data}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.mu.Unlock()
}

// Events returns the buffered events, oldest first. A nil log returns nil.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Total returns the number of events ever appended (≥ len(Events())).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// MarshalJSON renders the ring as {"run_id": …, "total": N, "events":
// [...]} so the /debug/events endpoint shows the owning run, the retained
// window, and how much scrolled past it.
func (l *EventLog) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		RunID  string  `json:"run_id,omitempty"`
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}{RunID: l.RunID(), Total: l.Total(), Events: l.Events()})
}

// EventLogHooks returns hooks that append every pipeline event to the
// ring. This is debug tooling: appends box the event payload, so attach
// it only where the allocation-free contract doesn't apply (the CLIs do
// so under -debug-addr).
func EventLogHooks(l *EventLog) *Hooks {
	return &Hooks{
		OnTrainEpoch:  func(e TrainEpoch) { l.Add("train_epoch", e) },
		OnTrainStep:   func(s TrainStep) { l.Add("train_step", s) },
		OnGenPhase:    func(p GenPhase) { l.Add("gen_phase", p) },
		OnGenProgress: func(p GenProgress) { l.Add("gen_progress", p) },
		OnStreamPass:  func(p StreamPass) { l.Add("stream_pass", p) },
		OnEvalQuery:   func(q EvalQuery) { l.Add("eval_query", q) },
	}
}
