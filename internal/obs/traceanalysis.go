package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// PathStat aggregates every span sharing one root-to-span name path
// ("train/epoch/step" — names joined by '/'). Wall and alloc figures come
// in two flavors: Total includes descendants, Self subtracts the direct
// children's totals (clamped at zero, since concurrent children can
// overlap their parent's wall clock).
type PathStat struct {
	Path       string
	Count      int   // spans on this path
	WallUS     int64 // total wall, descendants included
	SelfUS     int64 // wall minus direct children (≥ 0)
	AllocBytes uint64
	SelfAlloc  uint64
	Mallocs    uint64
	GCs        uint32
	Live       int // spans still open when the trace was written
	Depth      int // path depth, root = 0
}

// AnalyzeTrace aggregates raw span records into per-path statistics,
// returned in depth-first tree order (parents before children, siblings
// by first start time). Spans whose parent path is missing aggregate
// under their own name at the root.
func AnalyzeTrace(recs []SpanRecord) []PathStat {
	paths := make(map[int64]string, len(recs))
	firstStart := make(map[string]int64, len(recs))
	stats := make(map[string]*PathStat, len(recs))
	childWall := make(map[int64]int64, len(recs))
	childAlloc := make(map[int64]uint64, len(recs))
	for _, rec := range recs {
		childWall[rec.Parent] += rec.WallUS
		childAlloc[rec.Parent] += rec.AllocBytes
	}
	for _, rec := range recs {
		path := rec.Name
		depth := 0
		if parent, ok := paths[rec.Parent]; ok {
			path = parent + "/" + rec.Name
			depth = strings.Count(path, "/")
		}
		paths[rec.ID] = path
		st := stats[path]
		if st == nil {
			st = &PathStat{Path: path, Depth: depth}
			stats[path] = st
			firstStart[path] = rec.StartUS
		}
		st.Count++
		st.WallUS += rec.WallUS
		st.AllocBytes += rec.AllocBytes
		st.Mallocs += rec.Mallocs
		st.GCs += rec.GCs
		if rec.Live {
			st.Live++
		}
		if self := rec.WallUS - childWall[rec.ID]; self > 0 {
			st.SelfUS += self
		}
		if kids := childAlloc[rec.ID]; rec.AllocBytes > kids {
			st.SelfAlloc += rec.AllocBytes - kids
		}
	}
	out := make([]PathStat, 0, len(stats))
	for _, st := range stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Path, out[j].Path
		// Tree order: compare segment by segment, siblings by first start.
		as, bs := strings.Split(a, "/"), strings.Split(b, "/")
		for k := 0; k < len(as) && k < len(bs); k++ {
			pa := strings.Join(as[:k+1], "/")
			pb := strings.Join(bs[:k+1], "/")
			if pa != pb {
				if firstStart[pa] != firstStart[pb] {
					return firstStart[pa] < firstStart[pb]
				}
				return pa < pb
			}
		}
		return len(as) < len(bs)
	})
	return out
}

// WriteTraceTree renders per-path statistics as an indented tree with
// total and self wall time and allocation attribution — the samtrace
// default view.
func WriteTraceTree(w io.Writer, stats []PathStat) {
	fmt.Fprintf(w, "%-44s %6s %12s %12s %12s %12s\n",
		"span", "count", "total", "self", "alloc", "self-alloc")
	for _, st := range stats {
		name := st.Path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		live := ""
		if st.Live > 0 {
			live = " (live)"
		}
		fmt.Fprintf(w, "%-44s %6d %12s %12s %12s %12s%s\n",
			strings.Repeat("  ", st.Depth)+name, st.Count,
			fmtUS(st.WallUS), fmtUS(st.SelfUS),
			fmtBytes(st.AllocBytes), fmtBytes(st.SelfAlloc), live)
	}
}

// TopSpans returns the n paths with the largest self wall time,
// descending (ties broken by path for determinism).
func TopSpans(stats []PathStat, n int) []PathStat {
	out := append([]PathStat(nil), stats...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Path < out[j].Path
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteTopSpans renders the top-N hot spans by self wall time.
func WriteTopSpans(w io.Writer, stats []PathStat, n int) {
	top := TopSpans(stats, n)
	fmt.Fprintf(w, "%-44s %6s %12s %12s\n", "span", "count", "self", "self-alloc")
	for _, st := range top {
		fmt.Fprintf(w, "%-44s %6d %12s %12s\n", st.Path, st.Count, fmtUS(st.SelfUS), fmtBytes(st.SelfAlloc))
	}
}

// PathDelta is one row of a trace diff: the same span path in two traces
// with its wall/alloc deltas. A path present in only one trace reports
// the other side as zero with OnlyIn set.
type PathDelta struct {
	Path         string
	WallA, WallB int64 // total wall µs in trace A / B
	AllocA       uint64
	AllocB       uint64
	CountA       int
	CountB       int
	OnlyIn       string // "a", "b", or "" when present in both
}

// DeltaUS returns WallB − WallA.
func (d PathDelta) DeltaUS() int64 { return d.WallB - d.WallA }

// DeltaAlloc returns AllocB − AllocA (signed).
func (d PathDelta) DeltaAlloc() int64 { return int64(d.AllocB) - int64(d.AllocA) }

// DiffTraces aligns two analyzed traces by span path and reports the
// union of paths sorted by descending absolute wall delta (ties by
// path), so regressions and improvements surface first.
func DiffTraces(a, b []PathStat) []PathDelta {
	byPath := make(map[string]*PathDelta, len(a)+len(b))
	order := make([]string, 0, len(a)+len(b))
	for _, st := range a {
		byPath[st.Path] = &PathDelta{
			Path: st.Path, WallA: st.WallUS, AllocA: st.AllocBytes, CountA: st.Count, OnlyIn: "a",
		}
		order = append(order, st.Path)
	}
	for _, st := range b {
		d := byPath[st.Path]
		if d == nil {
			d = &PathDelta{Path: st.Path, OnlyIn: "b"}
			byPath[st.Path] = d
			order = append(order, st.Path)
		} else {
			d.OnlyIn = ""
		}
		d.WallB = st.WallUS
		d.AllocB = st.AllocBytes
		d.CountB = st.Count
	}
	out := make([]PathDelta, 0, len(order))
	for _, p := range order {
		out = append(out, *byPath[p])
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].DeltaUS()), abs64(out[j].DeltaUS())
		if ai != aj {
			return ai > aj
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// WriteTraceDiff renders a path-aligned diff of two traces: per-span wall
// and alloc deltas, largest absolute wall change first.
func WriteTraceDiff(w io.Writer, deltas []PathDelta) {
	fmt.Fprintf(w, "%-44s %12s %12s %12s %14s\n", "span", "wall a", "wall b", "Δwall", "Δalloc")
	for _, d := range deltas {
		mark := ""
		switch d.OnlyIn {
		case "a":
			mark = "  [only a]"
		case "b":
			mark = "  [only b]"
		}
		fmt.Fprintf(w, "%-44s %12s %12s %12s %14s%s\n",
			d.Path, fmtUS(d.WallA), fmtUS(d.WallB),
			fmtSignedUS(d.DeltaUS()), fmtSignedBytes(d.DeltaAlloc()), mark)
	}
}

func fmtUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).Round(time.Microsecond).String()
}

func fmtSignedUS(us int64) string {
	if us >= 0 {
		return "+" + fmtUS(us)
	}
	return "-" + fmtUS(-us)
}

func fmtSignedBytes(b int64) string {
	if b >= 0 {
		return "+" + fmtBytes(uint64(b))
	}
	return "-" + fmtBytes(uint64(-b))
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
