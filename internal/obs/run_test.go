package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestNewRunIDShape pins the format (16 lowercase hex chars) and spot-
// checks uniqueness across a batch of IDs.
func TestNewRunIDShape(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 256; i++ {
		id := NewRunID()
		if !re.MatchString(id) {
			t.Fatalf("run ID %q does not match %s", id, re)
		}
		if seen[id] {
			t.Fatalf("duplicate run ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

// TestRunLogRoundTrip writes a log through the hooks adapter and reads it
// back through the strict validator: framing entries, per-line run IDs,
// and payload fidelity.
func TestRunLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	id := NewRunID()
	l := NewRunLog(&buf, id)
	h := RunLogHooks(l)
	h.TrainEpoch(TrainEpoch{Epoch: 1, Epochs: 2, Loss: 0.5, Wall: time.Second})
	h.StreamPass(StreamPass{Pass: "A", Table: "t", Shard: -1, RecordsIn: 10, RecordsOut: 4, Runs: 2})
	h.EvalQuery(EvalQuery{Card: 9, Truth: 10, QError: 10.0 / 9, Table: "t", Preds: 2})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadRunLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(entries))
	for i, e := range entries {
		kinds[i] = e.Kind
		if e.RunID != id {
			t.Fatalf("entry %d run_id %q, want %q", i, e.RunID, id)
		}
		if e.Time.IsZero() {
			t.Fatalf("entry %d has no timestamp", i)
		}
	}
	want := []string{"run_start", "train_epoch", "stream_pass", "eval_query", "run_end"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds %v, want %v", kinds, want)
	}
	var p StreamPass
	if err := json.Unmarshal(entries[2].Data, &p); err != nil {
		t.Fatal(err)
	}
	if p.Pass != "A" || p.Table != "t" || p.RecordsIn != 10 || p.RecordsOut != 4 || p.Runs != 2 {
		t.Fatalf("stream_pass payload %+v", p)
	}
	var meta Meta
	if err := json.Unmarshal(entries[0].Data, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.GoVersion == "" {
		t.Fatal("run_start frame carries no build metadata")
	}
}

// TestReadRunLogRejects covers the validator's failure modes: logs that
// don't start with run_start, mix run IDs, smuggle unknown fields, miss
// required ones, or are empty.
func TestReadRunLogRejects(t *testing.T) {
	line := func(id, kind string) string {
		return `{"time":"2026-01-02T03:04:05Z","run_id":"` + id + `","kind":"` + kind + `"}` + "\n"
	}
	cases := map[string]string{
		"empty":              "",
		"blank lines only":   "\n\n",
		"not run_start":      line("aa", "train_epoch"),
		"mixed run ids":      line("aa", "run_start") + line("bb", "train_epoch"),
		"missing kind":       `{"time":"2026-01-02T03:04:05Z","run_id":"aa"}` + "\n",
		"missing run_id":     `{"time":"2026-01-02T03:04:05Z","kind":"run_start"}` + "\n",
		"unknown field":      `{"time":"2026-01-02T03:04:05Z","run_id":"aa","kind":"run_start","extra":1}` + "\n",
		"not json":           "run_start aa\n",
		"second line broken": line("aa", "run_start") + "{\n",
	}
	for name, text := range cases {
		if _, err := ReadRunLog(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
	good := line("aa", "run_start") + "\n" + line("aa", "gen_phase")
	entries, err := ReadRunLog(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid log rejected: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(entries))
	}
}

// TestRunLogNilSafe exercises the nil-log contract: every method is a
// no-op and Close reports success.
func TestRunLogNilSafe(t *testing.T) {
	var l *RunLog
	l.Log("gen_phase", GenPhase{})
	if l.RunID() != "" {
		t.Fatal("nil log has a run ID")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	RunLogHooks(l).GenPhase(GenPhase{Phase: "sample"})
}

// TestStampRunInfo checks the identity family end to end: stamped into a
// registry, visible in the JSON snapshot (including label-value escapes),
// rendered to Prometheus text, and recovered by both extractors.
func TestStampRunInfo(t *testing.T) {
	r := NewRegistry()
	id := NewRunID()
	StampRunInfo(r, id, BuildMeta())

	snap := r.Snapshot()
	if got := RunIDFromSnapshot(snap); got != id {
		t.Fatalf("RunIDFromSnapshot = %q, want %q", got, id)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), RunInfoMetric+`{run_id="`+id+`"`) {
		t.Fatalf("exposition missing the run-info family:\n%s", buf.String())
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := RunIDFromFamilies(fams); got != id {
		t.Fatalf("RunIDFromFamilies = %q, want %q", got, id)
	}
	if RunIDFromFamilies(nil) != "" {
		t.Fatal("RunIDFromFamilies(nil) nonempty")
	}

	// Escaped label values must survive the snapshot extractor too.
	r2 := NewRegistry()
	weird := "id\"with\\escapes\nnewline"
	StampRunInfo(r2, weird, Meta{})
	if got := RunIDFromSnapshot(r2.Snapshot()); got != weird {
		t.Fatalf("escaped RunIDFromSnapshot = %q, want %q", got, weird)
	}

	// Nil-registry stamping must not panic (detached-vector contract).
	StampRunInfo(nil, id, Meta{})
	if got := RunIDFromSnapshot(Snapshot{}); got != "" {
		t.Fatalf("empty snapshot yielded run ID %q", got)
	}
}
