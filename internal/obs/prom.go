package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), stdlib only. The
// registry's plain and labeled metrics render as counter/gauge families;
// histograms render the full _bucket/_sum/_count series with cumulative
// bucket counts and a closing +Inf bucket. Output is deterministic: family
// names sort lexically and labeled children sort by label tuple, so two
// snapshots of identical state serialize byte-identically.

// PromContentType is the Content-Type the /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// sanitizeMetricName maps an arbitrary metric name onto the exposition
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become '_'.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// sanitizeLabelName maps a label name onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// formatPromValue renders a sample value; Prometheus spells infinities
// +Inf/-Inf and accepts Go's shortest-round-trip float syntax otherwise.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabelPairs renders {k1="v1",...} from parallel name/value slices,
// optionally appending an le pair; empty input renders as "".
func promLabelPairs(labels, values []string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeLabelName(l))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// histogramSeries snapshots one histogram as its exposition series:
// ascending cumulative bucket counts per bound, the total count (the +Inf
// bucket), and the sum. Reading races with Observe; the cumulative counts
// are summed from one pass over the buckets so the series stays
// internally consistent (count == +Inf bucket) regardless.
func (h *Histogram) histogramSeries() (bounds []float64, cum []int64, count int64, sum float64) {
	bounds = h.bounds
	cum = make([]int64, len(h.bounds))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		if i < len(cum) {
			cum[i] = running
		}
	}
	return bounds, cum, running, h.Sum()
}

func writePromHistogram(w io.Writer, name, labelPairs string, h *Histogram) error {
	bounds, cum, count, sum := h.histogramSeries()
	base := ""
	if labelPairs != "" {
		base = labelPairs[1 : len(labelPairs)-1] // strip braces for merging with le
	}
	for i, b := range bounds {
		pairs := `{le="` + formatPromValue(b) + `"}`
		if base != "" {
			pairs = "{" + base + `,le="` + formatPromValue(b) + `"}`
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, pairs, cum[i]); err != nil {
			return err
		}
	}
	pairs := `{le="+Inf"}`
	if base != "" {
		pairs = "{" + base + `,le="+Inf"}`
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, pairs, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelPairs, formatPromValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelPairs, count)
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. A nil registry writes nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	counterNames := make([]string, 0, len(r.counters)+len(r.counterVecs))
	for name := range r.counters {
		counterNames = append(counterNames, name)
	}
	for name := range r.counterVecs {
		counterNames = append(counterNames, name)
	}
	gaugeNames := make([]string, 0, len(r.gauges)+len(r.gaugeVecs))
	for name := range r.gauges {
		gaugeNames = append(gaugeNames, name)
	}
	for name := range r.gaugeVecs {
		gaugeNames = append(gaugeNames, name)
	}
	histNames := make([]string, 0, len(r.histograms)+len(r.histogramVecs))
	for name := range r.histograms {
		histNames = append(histNames, name)
	}
	for name := range r.histogramVecs {
		histNames = append(histNames, name)
	}
	counters, gauges, hists := r.counters, r.gauges, r.histograms
	counterVecs, gaugeVecs, histVecs := r.counterVecs, r.gaugeVecs, r.histogramVecs
	r.mu.RUnlock()

	sort.Strings(counterNames)
	sort.Strings(gaugeNames)
	sort.Strings(histNames)
	dedup := func(names []string) []string {
		out := names[:0]
		for i, n := range names {
			if i == 0 || n != names[i-1] {
				out = append(out, n)
			}
		}
		return out
	}

	for _, name := range dedup(counterNames) {
		prom := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", prom)
		if c, ok := counters[name]; ok {
			fmt.Fprintf(bw, "%s %d\n", prom, c.Value())
		}
		if v, ok := counterVecs[name]; ok {
			v.mu.RLock()
			for _, key := range sortedChildKeys(v.children) {
				fmt.Fprintf(bw, "%s%s %d\n", prom,
					promLabelPairs(v.labels, v.tuples[key].values, ""), v.children[key].Value())
			}
			v.mu.RUnlock()
		}
	}
	for _, name := range dedup(gaugeNames) {
		prom := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", prom)
		if g, ok := gauges[name]; ok {
			fmt.Fprintf(bw, "%s %s\n", prom, formatPromValue(g.Value()))
		}
		if v, ok := gaugeVecs[name]; ok {
			v.mu.RLock()
			for _, key := range sortedChildKeys(v.children) {
				fmt.Fprintf(bw, "%s%s %s\n", prom,
					promLabelPairs(v.labels, v.tuples[key].values, ""),
					formatPromValue(v.children[key].Value()))
			}
			v.mu.RUnlock()
		}
	}
	for _, name := range dedup(histNames) {
		prom := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", prom)
		if h, ok := hists[name]; ok {
			if err := writePromHistogram(bw, prom, "", h); err != nil {
				return err
			}
		}
		if v, ok := histVecs[name]; ok {
			v.mu.RLock()
			for _, key := range sortedChildKeys(v.children) {
				err := writePromHistogram(bw, prom,
					promLabelPairs(v.labels, v.tuples[key].values, ""), v.children[key])
				if err != nil {
					v.mu.RUnlock()
					return err
				}
			}
			v.mu.RUnlock()
		}
	}
	return bw.Flush()
}

// PromLabel is one parsed name="value" pair.
type PromLabel struct {
	Name, Value string
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels []PromLabel
	Value  float64
}

// Label returns the sample's value for a label name, or "".
func (s PromSample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// PromFamily is one parsed metric family: a # TYPE declaration plus the
// samples that belong to it (histogram families own their _bucket/_sum/
// _count series). Samples with no preceding TYPE line land in an
// "untyped" family.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus parses and validates text exposition-format output —
// the verification half of WritePrometheus, used by the format gate in
// the tests. It enforces metric/label name charsets, quoted-and-escaped
// label values, parseable sample values, known TYPE declarations, and
// histogram shape: every histogram family must carry _sum, _count, a
// closing +Inf bucket equal to _count, ascending le bounds, and
// non-decreasing cumulative bucket counts.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var fams []PromFamily
	index := map[string]int{} // family name -> fams index
	cur := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: prom line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("obs: prom line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: prom line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := index[name]; dup {
					return nil, fmt.Errorf("obs: prom line %d: duplicate TYPE for %q", lineNo, name)
				}
				index[name] = len(fams)
				fams = append(fams, PromFamily{Name: name, Type: typ})
				cur = index[name]
			}
			continue // HELP and other comments
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: %w", lineNo, err)
		}
		fi := -1
		if cur >= 0 && sampleInFamily(sample.Name, &fams[cur]) {
			fi = cur
		} else if i, ok := index[sample.Name]; ok {
			fi = i
		} else {
			index[sample.Name] = len(fams)
			fams = append(fams, PromFamily{Name: sample.Name, Type: "untyped"})
			fi = index[sample.Name]
		}
		fams[fi].Samples = append(fams[fi].Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "histogram" {
			if err := checkPromHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// sampleInFamily reports whether a sample name belongs to the family:
// exact match, or the _bucket/_sum/_count series of a histogram/summary.
func sampleInFamily(name string, f *PromFamily) bool {
	if name == f.Name {
		return true
	}
	if f.Type == "histogram" || f.Type == "summary" {
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return false
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validPromLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses `name[{labels}] value [timestamp]`.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parsePromLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after %q, got %q", s.Name, rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parsePromLabels parses a {name="value",...} block starting at text[0]
// == '{'; it returns the index one past the closing brace.
func parsePromLabels(text string) (int, []PromLabel, error) {
	var labels []PromLabel
	i := 1 // past '{'
	for {
		for i < len(text) && (text[i] == ' ' || text[i] == '\t') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(text) && text[i] != '=' {
			i++
		}
		if i >= len(text) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(text[start:i])
		if !validPromLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i++ // past '='
		if i >= len(text) || text[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: value must be quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(text) {
			c := text[i]
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: bad escape \\%c", name, text[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return 0, nil, fmt.Errorf("label %s: unterminated value", name)
		}
		labels = append(labels, PromLabel{Name: name, Value: val.String()})
		if i < len(text) && text[i] == ',' {
			i++
			continue
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, labels, nil
		}
		return 0, nil, fmt.Errorf("want ',' or '}' after label %s", name)
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// checkPromHistogram validates one histogram family's shape per labeled
// child: ascending le bounds, non-decreasing cumulative counts, a +Inf
// bucket, and _count equal to that bucket.
func checkPromHistogram(f *PromFamily) error {
	type series struct {
		cums    []float64
		count   float64
		hasCnt  bool
		hasSum  bool
		hasInf  bool
		infCum  float64
		lastLe  float64
		started bool
	}
	bySeries := map[string]*series{}
	get := func(s PromSample) *series {
		key := ""
		for _, l := range s.Labels {
			if l.Name == "le" {
				continue
			}
			key += l.Name + "\xfe" + l.Value + "\xff"
		}
		sr := bySeries[key]
		if sr == nil {
			sr = &series{}
			bySeries[key] = sr
		}
		return sr
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			sr := get(s)
			leStr := s.Label("le")
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", f.Name, leStr)
			}
			if math.IsInf(le, 1) {
				sr.hasInf = true
				sr.infCum = s.Value
			} else {
				if sr.started && le <= sr.lastLe {
					return fmt.Errorf("obs: histogram %s: le bounds not ascending at %v", f.Name, le)
				}
				sr.started = true
				sr.lastLe = le
			}
			if n := len(sr.cums); n > 0 && s.Value < sr.cums[n-1] {
				return fmt.Errorf("obs: histogram %s: bucket counts not cumulative at le=%v", f.Name, le)
			}
			sr.cums = append(sr.cums, s.Value)
		case f.Name + "_sum":
			get(s).hasSum = true
		case f.Name + "_count":
			sr := get(s)
			sr.hasCnt = true
			sr.count = s.Value
		case f.Name:
			return fmt.Errorf("obs: histogram %s: bare sample without _bucket/_sum/_count suffix", f.Name)
		}
	}
	for _, sr := range bySeries {
		if !sr.hasInf {
			return fmt.Errorf("obs: histogram %s: missing +Inf bucket", f.Name)
		}
		if !sr.hasSum || !sr.hasCnt {
			return fmt.Errorf("obs: histogram %s: missing _sum or _count", f.Name)
		}
		if sr.count != sr.infCum {
			return fmt.Errorf("obs: histogram %s: _count %v != +Inf bucket %v", f.Name, sr.count, sr.infCum)
		}
	}
	return nil
}
