package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric families. A vector is a family of metrics of one kind
// sharing a name and a fixed set of label names; each distinct label-value
// tuple owns one child metric. Resolving a child (With) takes the family
// lock and builds a map key, so hot paths resolve their handles once up
// front and then touch only the returned *Counter/*Gauge/*Histogram —
// atomics all the way down, zero allocations per update. The nil-observer
// contract extends to vectors: every method is safe on a nil receiver and
// a nil registry hands out detached families whose children record into
// the void.

// labelChild pairs one label-value tuple with its position in the family,
// kept so exposition can render structured labels without re-splitting
// map keys.
type labelChild struct {
	values []string
}

// checkLabelCardinality panics when a With call does not supply exactly
// one value per declared label name — a programming error, like indexing
// out of range.
func checkLabelCardinality(name string, labels, values []string) {
	if len(values) != len(labels) {
		panic("obs: " + name + " needs " + strings.Join(labels, ",") +
			" label values, got wrong count")
	}
}

// labelKey builds the child map key for a label-value tuple. \xff cannot
// appear in sane label values; colliding tuples would have to embed it.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter
	tuples   map[string]labelChild
}

// newCounterVec builds an (attached or detached) counter family.
func newCounterVec(name string, labels []string) *CounterVec {
	return &CounterVec{name: name, labels: append([]string(nil), labels...)}
}

// With returns the child counter for the given label values (one per label
// name, in declaration order), creating it on first use. Resolve once and
// keep the handle on hot paths. On a nil vector it returns a detached
// counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return &Counter{}
	}
	checkLabelCardinality(v.name, v.labels, values)
	key := labelKey(values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		if v.children == nil {
			v.children = make(map[string]*Counter)
			v.tuples = make(map[string]labelChild)
		}
		c = &Counter{}
		v.children[key] = c
		v.tuples[key] = labelChild{values: append([]string(nil), values...)}
	}
	return c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[string]*Gauge
	tuples   map[string]labelChild
}

func newGaugeVec(name string, labels []string) *GaugeVec {
	return &GaugeVec{name: name, labels: append([]string(nil), labels...)}
}

// With returns the child gauge for the given label values, creating it on
// first use. On a nil vector it returns a detached gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return &Gauge{}
	}
	checkLabelCardinality(v.name, v.labels, values)
	key := labelKey(values)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[key]; g == nil {
		if v.children == nil {
			v.children = make(map[string]*Gauge)
			v.tuples = make(map[string]labelChild)
		}
		g = &Gauge{}
		v.children[key] = g
		v.tuples[key] = labelChild{values: append([]string(nil), values...)}
	}
	return g
}

// HistogramVec is a family of histograms keyed by label values; all
// children share the bounds fixed at family creation.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
	tuples   map[string]labelChild
}

func newHistogramVec(name string, bounds []float64, labels []string) *HistogramVec {
	return &HistogramVec{
		name:   name,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
	}
}

// With returns the child histogram for the given label values, creating
// it (with the family's bounds) on first use. On a nil vector it returns
// a detached histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return NewHistogram(nil)
	}
	checkLabelCardinality(v.name, v.labels, values)
	key := labelKey(values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h == nil {
		if v.children == nil {
			v.children = make(map[string]*Histogram)
			v.tuples = make(map[string]labelChild)
		}
		h = NewHistogram(v.bounds)
		v.children[key] = h
		v.tuples[key] = labelChild{values: append([]string(nil), values...)}
	}
	return h
}

// CounterVec returns the named counter family with the given label names,
// creating it on first use; later callers get the existing family
// regardless of label names (first registration wins, like Histogram
// bounds). On a nil registry it returns a detached family.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return newCounterVec(name, labels)
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.counterVecs[name]; v == nil {
		if r.counterVecs == nil {
			r.counterVecs = make(map[string]*CounterVec)
		}
		v = newCounterVec(name, labels)
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use. On a
// nil registry it returns a detached family.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return newGaugeVec(name, labels)
	}
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.gaugeVecs[name]; v == nil {
		if r.gaugeVecs == nil {
			r.gaugeVecs = make(map[string]*GaugeVec)
		}
		v = newGaugeVec(name, labels)
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family with the given bounds
// and label names, creating it on first use. On a nil registry it returns
// a detached family.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return newHistogramVec(name, bounds, labels)
	}
	r.mu.RLock()
	v := r.histogramVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.histogramVecs[name]; v == nil {
		if r.histogramVecs == nil {
			r.histogramVecs = make(map[string]*HistogramVec)
		}
		v = newHistogramVec(name, bounds, labels)
		r.histogramVecs[name] = v
	}
	return v
}

// renderLabels formats name{k1="v1",k2="v2"} — the flat-snapshot key for
// one labeled child.
func renderLabels(name string, labels, values []string) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// sortedChildKeys returns the child map keys of one family in
// deterministic (label-tuple) order.
func sortedChildKeys[M any](children map[string]M) []string {
	keys := make([]string, 0, len(children))
	for k := range children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
