package obs

import (
	"runtime"
	"runtime/debug"
)

// Meta identifies the environment a run or benchmark executed in. Reports
// embed it so recorded numbers stay interpretable after toolchain or
// hardware changes.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"` // VCS revision when built from a checkout
}

// BuildMeta captures the current process's build and runtime environment.
// The commit comes from the binary's embedded build info (present when
// built inside a version-controlled checkout), not from invoking git.
func BuildMeta() Meta {
	m := Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" && modified == "true" {
			rev += "+dirty"
		}
		m.Commit = rev
	}
	return m
}

// String renders the metadata on one line — the CLIs' -version output.
func (m Meta) String() string {
	s := m.GoVersion + " " + m.GOOS + "/" + m.GOARCH
	if m.Commit != "" {
		s += " " + m.Commit
	}
	return s
}

// SetAttrs records the metadata as attributes on a span (typically a trace
// root), alongside whatever run parameters the caller adds.
func (m Meta) SetAttrs(sp *Span) {
	sp.SetAttr("go_version", m.GoVersion)
	sp.SetAttr("goos", m.GOOS)
	sp.SetAttr("goarch", m.GOARCH)
	sp.SetAttr("gomaxprocs", m.GOMAXPROCS)
	if m.Commit != "" {
		sp.SetAttr("commit", m.Commit)
	}
}
