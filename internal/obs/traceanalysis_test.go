package obs

import (
	"strings"
	"testing"
)

// fixtureTrace builds the span records of a two-phase run:
//
//	run (100ms, 10MiB)
//	├── train (60ms, 6MiB)
//	│   ├── epoch (20ms, 2MiB)
//	│   └── epoch (20ms, 2MiB)
//	└── generate (30ms, 3MiB)
func fixtureTrace() []SpanRecord {
	mib := uint64(1 << 20)
	return []SpanRecord{
		{ID: 1, Parent: 0, Name: "run", StartUS: 0, WallUS: 100_000, AllocBytes: 10 * mib},
		{ID: 2, Parent: 1, Name: "train", StartUS: 1_000, WallUS: 60_000, AllocBytes: 6 * mib},
		{ID: 3, Parent: 2, Name: "epoch", StartUS: 2_000, WallUS: 20_000, AllocBytes: 2 * mib},
		{ID: 4, Parent: 2, Name: "epoch", StartUS: 22_000, WallUS: 20_000, AllocBytes: 2 * mib},
		{ID: 5, Parent: 1, Name: "generate", StartUS: 65_000, WallUS: 30_000, AllocBytes: 3 * mib},
	}
}

// TestAnalyzeTrace checks path aggregation, self-time subtraction, and
// tree ordering.
func TestAnalyzeTrace(t *testing.T) {
	stats := AnalyzeTrace(fixtureTrace())
	byPath := map[string]PathStat{}
	for _, st := range stats {
		byPath[st.Path] = st
	}

	run := byPath["run"]
	if run.Count != 1 || run.WallUS != 100_000 {
		t.Fatalf("run stat: %+v", run)
	}
	// run self = 100ms − (60ms train + 30ms generate) = 10ms.
	if run.SelfUS != 10_000 {
		t.Fatalf("run self = %dus, want 10000", run.SelfUS)
	}
	// The two epochs aggregate under one path.
	ep := byPath["run/train/epoch"]
	if ep.Count != 2 || ep.WallUS != 40_000 || ep.SelfUS != 40_000 {
		t.Fatalf("epoch stat: %+v", ep)
	}
	// train self = 60ms − 40ms = 20ms; alloc self = 6MiB − 4MiB = 2MiB.
	tr := byPath["run/train"]
	if tr.SelfUS != 20_000 || tr.SelfAlloc != 2<<20 {
		t.Fatalf("train stat: %+v", tr)
	}
	if tr.Depth != 1 || ep.Depth != 2 {
		t.Fatalf("depths: train=%d epoch=%d", tr.Depth, ep.Depth)
	}

	// Tree order: parents before children, generate after train (starts later).
	order := make([]string, len(stats))
	for i, st := range stats {
		order[i] = st.Path
	}
	want := []string{"run", "run/train", "run/train/epoch", "run/generate"}
	if len(order) != len(want) {
		t.Fatalf("paths = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("paths = %v, want %v", order, want)
		}
	}
}

// TestAnalyzeTraceNegativeSelfClamps pins the concurrent-children case:
// when children overlap and their wall sum exceeds the parent's, self
// time clamps at zero instead of going negative.
func TestAnalyzeTraceNegativeSelfClamps(t *testing.T) {
	recs := []SpanRecord{
		{ID: 1, Parent: 0, Name: "run", WallUS: 10_000},
		{ID: 2, Parent: 1, Name: "worker", StartUS: 0, WallUS: 9_000},
		{ID: 3, Parent: 1, Name: "worker", StartUS: 0, WallUS: 9_000},
	}
	stats := AnalyzeTrace(recs)
	for _, st := range stats {
		if st.Path == "run" && st.SelfUS != 0 {
			t.Fatalf("overlapping children: run self = %d, want 0", st.SelfUS)
		}
	}
}

// TestTopSpans checks ordering by self time.
func TestTopSpans(t *testing.T) {
	top := TopSpans(AnalyzeTrace(fixtureTrace()), 2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(top))
	}
	if top[0].Path != "run/train/epoch" || top[1].Path != "run/generate" {
		t.Fatalf("top order: %s, %s", top[0].Path, top[1].Path)
	}
}

// TestDiffTraces aligns a modified trace against the fixture and checks
// deltas, ordering, and one-sided paths.
func TestDiffTraces(t *testing.T) {
	a := AnalyzeTrace(fixtureTrace())
	b := fixtureTrace()
	b[2].WallUS = 50_000 // first epoch 20ms → 50ms
	b[2].AllocBytes = 5 << 20
	b = append(b, SpanRecord{ID: 6, Parent: 1, Name: "eval", StartUS: 96_000, WallUS: 2_000})
	deltas := DiffTraces(a, AnalyzeTrace(b))

	byPath := map[string]PathDelta{}
	for _, d := range deltas {
		byPath[d.Path] = d
	}
	ep := byPath["run/train/epoch"]
	if ep.DeltaUS() != 30_000 {
		t.Fatalf("epoch Δwall = %d, want 30000", ep.DeltaUS())
	}
	if ep.DeltaAlloc() != 3<<20 {
		t.Fatalf("epoch Δalloc = %d, want 3MiB", ep.DeltaAlloc())
	}
	if ev := byPath["run/eval"]; ev.OnlyIn != "b" || ev.WallA != 0 || ev.WallB != 2_000 {
		t.Fatalf("eval delta: %+v", ev)
	}
	// Largest absolute wall delta first.
	if deltas[0].Path != "run/train/epoch" {
		t.Fatalf("first delta = %s, want run/train/epoch", deltas[0].Path)
	}
}

// TestTraceWriters smoke-checks the renderers carry the key numbers.
func TestTraceWriters(t *testing.T) {
	stats := AnalyzeTrace(fixtureTrace())
	var tree, top, diff strings.Builder
	WriteTraceTree(&tree, stats)
	for _, want := range []string{"run", "epoch", "2", "40ms"} {
		if !strings.Contains(tree.String(), want) {
			t.Fatalf("tree missing %q:\n%s", want, tree.String())
		}
	}
	WriteTopSpans(&top, stats, 3)
	if !strings.Contains(top.String(), "run/train/epoch") {
		t.Fatalf("top spans missing hottest path:\n%s", top.String())
	}
	WriteTraceDiff(&diff, DiffTraces(stats, stats))
	if !strings.Contains(diff.String(), "+0s") {
		t.Fatalf("self-diff should render zero deltas:\n%s", diff.String())
	}
}
