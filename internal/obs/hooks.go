package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// TrainEpoch describes one completed training epoch.
type TrainEpoch struct {
	Epoch, Epochs int
	Loss          float64 // mean batch loss over the epoch
	GradNorm      float64 // global gradient norm of the epoch's last step
	Steps         int
	Wall          time.Duration
}

// EpochsPerSec returns the epoch throughput implied by the wall time.
func (e TrainEpoch) EpochsPerSec() float64 {
	if e.Wall <= 0 {
		return 0
	}
	return float64(time.Second) / float64(e.Wall)
}

// TrainStep describes one optimizer step.
type TrainStep struct {
	Step     int // 1-based, cumulative across epochs
	Loss     float64
	GradNorm float64
	Wall     time.Duration
}

// GenPhase describes one generation-phase event: FOJ sampling, inverse
// probability weighting/scaling, or a table's Group-and-Merge pass.
type GenPhase struct {
	Phase  string // "sample", "weight", or "merge"
	Table  string // empty for the sample phase
	Tuples int    // tuples sampled or rows materialized
	Groups int    // merge groups formed (merge phase)
	// MassBefore/MassAfter are the table's total inverse-probability
	// weight mass before and after scaling to |T| (weight phase).
	MassBefore, MassAfter float64
	Wall                  time.Duration
}

// GenProgress is a rolling in-flight report from a generation phase:
// how many of the phase's units are done, the rolling throughput, and
// the ETA it implies. Emission is throttled at the source (see
// core.drawSamples), so listeners can print every event.
type GenProgress struct {
	Phase       string // "sample" (FOJ tuple draws)
	Done, Total int
	Rate        float64       // units/sec over a rolling window
	ETA         time.Duration // 0 when unknown
}

// StreamPass describes one completed unit of the sharded streaming
// pipeline (core.SampleShards / core.MaterializeStream): a shard's
// sampling leg, the weight scan, or one table's spill passes — A
// (partition spill), B (per-partition grouping), C (key allocation and
// emission).
type StreamPass struct {
	Pass  string // "shard", "weight", "A", "B", or "C"
	Table string // empty for shard and weight passes
	Shard int    // shard index when Pass == "shard", else -1
	// RecordsIn / RecordsOut count records consumed and emitted by the
	// pass (samples streamed, spill records written, groups formed, rows
	// emitted — per pass semantics).
	RecordsIn, RecordsOut int64
	// Runs is the number of spill runs the pass wrote.
	Runs int
	// FanIn is the heap-merge fan-in of the parent span runs consumed by
	// pass A (0 for root tables and other passes).
	FanIn int
	// BytesWritten / BytesRead count spill bytes moved by the pass.
	BytesWritten, BytesRead int64
	// BackpressureWait is the cumulative time a shard's sampler spent
	// blocked on the bounded chunk pipeline (Pass == "shard" only).
	BackpressureWait time.Duration
	Wall             time.Duration
}

// EvalQuery describes one evaluated query.
type EvalQuery struct {
	Card   int64 // cardinality on the evaluated database
	Truth  int64 // recorded true cardinality
	QError float64
	// Table names the queried relation(s) (comma-joined for joins) and
	// Preds counts the query's predicates — the label coordinates of the
	// per-table / per-predicate-count Q-Error families.
	Table string
	Preds int
	Wall  time.Duration
}

// Hooks is the pipeline observer: any subset of the callbacks may be set,
// and a nil *Hooks (or nil callback) disables that signal with no
// measurement cost — the hot paths check WantsX before computing inputs.
type Hooks struct {
	OnTrainEpoch  func(TrainEpoch)
	OnTrainStep   func(TrainStep)
	OnGenPhase    func(GenPhase)
	OnGenProgress func(GenProgress)
	OnStreamPass  func(StreamPass)
	OnEvalQuery   func(EvalQuery)
}

// WantsTrainStep reports whether per-step stats (latency, grad norm) are
// worth computing.
func (h *Hooks) WantsTrainStep() bool { return h != nil && h.OnTrainStep != nil }

// WantsTrainEpoch reports whether per-epoch stats are worth computing.
func (h *Hooks) WantsTrainEpoch() bool { return h != nil && h.OnTrainEpoch != nil }

// TrainEpoch invokes the epoch callback if set.
func (h *Hooks) TrainEpoch(e TrainEpoch) {
	if h != nil && h.OnTrainEpoch != nil {
		h.OnTrainEpoch(e)
	}
}

// TrainStep invokes the step callback if set.
func (h *Hooks) TrainStep(s TrainStep) {
	if h != nil && h.OnTrainStep != nil {
		h.OnTrainStep(s)
	}
}

// GenPhase invokes the generation-phase callback if set.
func (h *Hooks) GenPhase(p GenPhase) {
	if h != nil && h.OnGenPhase != nil {
		h.OnGenPhase(p)
	}
}

// WantsGenProgress reports whether in-flight generation progress (done
// counts, rolling rates, ETA) is worth tracking; the sampling loop skips
// the progress tracker entirely when it returns false.
func (h *Hooks) WantsGenProgress() bool { return h != nil && h.OnGenProgress != nil }

// GenProgress invokes the generation-progress callback if set. Progress
// events may arrive from any worker goroutine, so callbacks must be safe
// for concurrent use (the built-in hooks are).
func (h *Hooks) GenProgress(p GenProgress) {
	if h != nil && h.OnGenProgress != nil {
		h.OnGenProgress(p)
	}
}

// WantsStreamPass reports whether streaming-pass stats (per-pass record
// and byte counts, backpressure wait timing) are worth measuring; the
// streaming pipeline skips its accounting entirely when it returns false,
// keeping the observed and unobserved runs byte-identical either way.
func (h *Hooks) WantsStreamPass() bool { return h != nil && h.OnStreamPass != nil }

// StreamPass invokes the streaming-pass callback if set. Shard events may
// arrive from any sampling goroutine, so callbacks must be safe for
// concurrent use (the built-in hooks are).
func (h *Hooks) StreamPass(p StreamPass) {
	if h != nil && h.OnStreamPass != nil {
		h.OnStreamPass(p)
	}
}

// EvalQuery invokes the evaluation callback if set.
func (h *Hooks) EvalQuery(q EvalQuery) {
	if h != nil && h.OnEvalQuery != nil {
		h.OnEvalQuery(q)
	}
}

// Merge fans every event out to all non-nil hooks. Nil inputs are skipped;
// merging zero or one effective hooks returns that hook directly.
func Merge(hooks ...*Hooks) *Hooks {
	var live []*Hooks
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := &Hooks{}
	out.OnTrainEpoch = func(e TrainEpoch) {
		for _, h := range live {
			h.TrainEpoch(e)
		}
	}
	out.OnTrainStep = func(s TrainStep) {
		for _, h := range live {
			h.TrainStep(s)
		}
	}
	out.OnGenPhase = func(p GenPhase) {
		for _, h := range live {
			h.GenPhase(p)
		}
	}
	out.OnGenProgress = func(p GenProgress) {
		for _, h := range live {
			h.GenProgress(p)
		}
	}
	out.OnStreamPass = func(p StreamPass) {
		for _, h := range live {
			h.StreamPass(p)
		}
	}
	out.OnEvalQuery = func(q EvalQuery) {
		for _, h := range live {
			h.EvalQuery(q)
		}
	}
	return out
}

// MetricsHooks returns hooks that feed the registry: training loss/grad
// gauges, a step-latency histogram, epoch and query counters, per-query
// latency and Q-Error histograms, and labeled generation families —
// per-phase tuple counters and wall-time histograms, per-table merge
// groups, row rates and weight masses, plus rolling sampling throughput.
// Handles for the fixed phase vocabulary are pre-resolved at construction,
// so the per-event hot path (TrainStep, GenProgress) is pure atomics and
// stays at 0 allocs/op even with live labeled metrics (see
// ar.TestTrainStepLabeledMetricsAllocs); per-table children resolve
// lazily because generation phases fire once per table.
func MetricsHooks(r *Registry) *Hooks {
	latBounds := ExpBuckets(1e-6, 2, 32) // 1µs … ~1h, in seconds
	qeBounds := ExpBuckets(1, 1.5, 40)   // Q-Error 1 … ~1e7
	stepLat := r.Histogram("train_step_seconds", latBounds)
	loss := r.Gauge("train_loss")
	gradNorm := r.Gauge("train_grad_norm")
	epochsSec := r.Gauge("train_epochs_per_sec")
	epochs := r.Counter("train_epochs_total")
	steps := r.Counter("train_steps_total")
	evalQ := r.Counter("eval_queries_total")
	evalLat := r.Histogram("eval_query_seconds", latBounds)
	evalQE := r.Histogram("eval_qerror", qeBounds)
	// Q-Error as labeled families: fidelity by relation and by predicate
	// complexity, scrapeable live instead of read off experiment output.
	evalQEByTable := r.HistogramVec("eval_qerror_by_table", qeBounds, "table")
	evalQEByPreds := r.HistogramVec("eval_qerror_by_preds", qeBounds, "preds")

	// Streaming-pipeline families (core.SampleShards / MaterializeStream):
	// per-pass record flow, spill traffic, run counts, merge fan-in, and
	// the sampler's chunk-pipeline backpressure wait.
	passSec := r.HistogramVec("stream_pass_seconds", latBounds, "pass")
	passRecs := r.CounterVec("stream_records_total", "pass", "dir")
	spillBytes := r.CounterVec("stream_spill_bytes_total", "pass", "dir")
	spillRuns := r.CounterVec("stream_spill_runs_total", "pass")
	fanIn := r.GaugeVec("stream_merge_fanin", "table")
	bpWait := r.Histogram("stream_backpressure_wait_seconds", latBounds)
	shardRows := r.CounterVec("stream_shard_rows_total", "shard")

	tuples := r.CounterVec("gen_tuples_total", "phase")
	phaseSec := r.HistogramVec("gen_phase_seconds", latBounds, "phase")
	mergeGroups := r.CounterVec("gen_merge_groups_total", "table")
	rowsSec := r.GaugeVec("gen_rows_per_sec", "table")
	weightMass := r.GaugeVec("gen_weight_mass", "table", "stage")
	tuplesSec := r.Gauge("gen_tuples_per_sec")
	progress := r.Gauge("gen_progress_ratio")
	// Pre-resolved per-phase handles: the phase vocabulary is fixed.
	sampleTuples := tuples.With("sample")
	weightTuples := tuples.With("weight")
	mergeTuples := tuples.With("merge")
	samplePhaseSec := phaseSec.With("sample")
	weightPhaseSec := phaseSec.With("weight")
	mergePhaseSec := phaseSec.With("merge")
	// Streaming passes are a fixed vocabulary too; pre-resolving keeps the
	// per-pass path on plain atomics (shard labels resolve lazily — one
	// event per shard, not per row).
	type passHandles struct {
		sec     *Histogram
		in, out *Counter
		bw, br  *Counter
		runs    *Counter
	}
	streamPasses := map[string]passHandles{}
	for _, pass := range []string{"shard", "weight", "A", "B", "C"} {
		streamPasses[pass] = passHandles{
			sec:  passSec.With(pass),
			in:   passRecs.With(pass, "in"),
			out:  passRecs.With(pass, "out"),
			bw:   spillBytes.With(pass, "written"),
			br:   spillBytes.With(pass, "read"),
			runs: spillRuns.With(pass),
		}
	}

	return &Hooks{
		OnTrainEpoch: func(e TrainEpoch) {
			epochs.Inc()
			loss.Set(e.Loss)
			gradNorm.Set(e.GradNorm)
			epochsSec.Set(e.EpochsPerSec())
		},
		OnTrainStep: func(s TrainStep) {
			steps.Inc()
			stepLat.Observe(s.Wall.Seconds())
		},
		OnGenPhase: func(p GenPhase) {
			tup, sec := tuples.With(p.Phase), phaseSec.With(p.Phase)
			switch p.Phase {
			case "sample":
				tup, sec = sampleTuples, samplePhaseSec
			case "weight":
				tup, sec = weightTuples, weightPhaseSec
			case "merge":
				tup, sec = mergeTuples, mergePhaseSec
			}
			tup.Add(int64(p.Tuples))
			sec.Observe(p.Wall.Seconds())
			if p.Phase == "merge" {
				mergeGroups.With(p.Table).Add(int64(p.Groups))
				if p.Wall > 0 {
					rowsSec.With(p.Table).Set(float64(p.Tuples) / p.Wall.Seconds())
				}
			}
			if p.Phase == "weight" {
				weightMass.With(p.Table, "before").Set(p.MassBefore)
				weightMass.With(p.Table, "after").Set(p.MassAfter)
			}
		},
		OnGenProgress: func(p GenProgress) {
			tuplesSec.Set(p.Rate)
			if p.Total > 0 {
				progress.Set(float64(p.Done) / float64(p.Total))
			}
		},
		OnStreamPass: func(p StreamPass) {
			h, ok := streamPasses[p.Pass]
			if !ok {
				h = passHandles{
					sec:  passSec.With(p.Pass),
					in:   passRecs.With(p.Pass, "in"),
					out:  passRecs.With(p.Pass, "out"),
					bw:   spillBytes.With(p.Pass, "written"),
					br:   spillBytes.With(p.Pass, "read"),
					runs: spillRuns.With(p.Pass),
				}
			}
			h.sec.Observe(p.Wall.Seconds())
			h.in.Add(p.RecordsIn)
			h.out.Add(p.RecordsOut)
			h.bw.Add(p.BytesWritten)
			h.br.Add(p.BytesRead)
			h.runs.Add(int64(p.Runs))
			if p.Pass == "shard" {
				//lint:allow veccard shard ids are bounded by the run's configured shard count, well under the registry cap
				shardRows.With(strconv.Itoa(p.Shard)).Add(p.RecordsOut)
				bpWait.Observe(p.BackpressureWait.Seconds())
			}
			if p.FanIn > 0 {
				fanIn.With(p.Table).Set(float64(p.FanIn))
			}
		},
		OnEvalQuery: func(q EvalQuery) {
			evalQ.Inc()
			evalLat.Observe(q.Wall.Seconds())
			evalQE.Observe(q.QError)
			if q.Table != "" {
				evalQEByTable.With(q.Table).Observe(q.QError)
			}
			evalQEByPreds.With(predsBucket(q.Preds)).Observe(q.QError)
		},
	}
}

// predsBucket coarsens a query's predicate count into the fixed label
// vocabulary of eval_qerror_by_preds, keeping the family's cardinality
// bounded however elaborate the workload gets.
func predsBucket(n int) string {
	switch {
	case n <= 0:
		return "0"
	case n == 1:
		return "1"
	case n == 2:
		return "2"
	default:
		return "3+"
	}
}

// ProgressHooks returns hooks that print human-readable progress lines —
// one per training epoch (with an ETA over the remaining epochs),
// throttled in-flight sampling progress with rolling tuples/sec and ETA,
// per-phase generation stats with rows/sec, and one line per 100
// evaluated queries with a rolling query rate — to w (typically stderr
// under a CLI -progress flag). The returned hooks serialize their writes,
// so events may arrive from any goroutine.
func ProgressHooks(w io.Writer) *Hooks {
	var mu sync.Mutex
	var evalN int
	var epochWall time.Duration
	evalRate := NewRateMeter(5 * time.Second)
	return &Hooks{
		OnTrainEpoch: func(e TrainEpoch) {
			mu.Lock()
			defer mu.Unlock()
			epochWall += e.Wall
			line := fmt.Sprintf("train: epoch %d/%d  loss=%.4f  grad=%.3g  %.2f epochs/s",
				e.Epoch, e.Epochs, e.Loss, e.GradNorm, e.EpochsPerSec())
			if e.Epoch > 0 && e.Epochs > e.Epoch {
				eta := time.Duration(float64(epochWall) / float64(e.Epoch) * float64(e.Epochs-e.Epoch))
				line += fmt.Sprintf("  ETA %v", eta.Round(100*time.Millisecond))
			}
			fmt.Fprintln(w, line)
		},
		OnGenPhase: func(p GenPhase) {
			mu.Lock()
			defer mu.Unlock()
			switch p.Phase {
			case "sample":
				fmt.Fprintf(w, "generate: sampled %d FOJ tuples in %v\n", p.Tuples, p.Wall.Round(time.Millisecond))
			case "weight":
				fmt.Fprintf(w, "generate: %s weight mass %.1f -> %.1f\n", p.Table, p.MassBefore, p.MassAfter)
			case "merge":
				rate := ""
				if p.Wall > 0 {
					rate = fmt.Sprintf(" (%.0f rows/s)", float64(p.Tuples)/p.Wall.Seconds())
				}
				fmt.Fprintf(w, "generate: %s merged %d groups -> %d rows in %v%s\n",
					p.Table, p.Groups, p.Tuples, p.Wall.Round(time.Millisecond), rate)
			}
		},
		OnGenProgress: func(p GenProgress) {
			mu.Lock()
			defer mu.Unlock()
			pct := 0.0
			if p.Total > 0 {
				pct = 100 * float64(p.Done) / float64(p.Total)
			}
			line := fmt.Sprintf("generate: %s %d/%d (%.0f%%)  %.0f tuples/s", p.Phase, p.Done, p.Total, pct, p.Rate)
			if p.ETA > 0 {
				line += fmt.Sprintf("  ETA %v", p.ETA.Round(100*time.Millisecond))
			} else if p.Done < p.Total {
				// Zero-rate or not-yet-started windows have no finite
				// estimate; say so instead of printing ±Inf/NaN seconds.
				line += "  ETA unknown"
			}
			fmt.Fprintln(w, line)
		},
		OnStreamPass: func(p StreamPass) {
			mu.Lock()
			defer mu.Unlock()
			switch p.Pass {
			case "shard":
				fmt.Fprintf(w, "stream: shard %d sampled %d rows in %v (backpressure %v)\n",
					p.Shard, p.RecordsOut, p.Wall.Round(time.Millisecond), p.BackpressureWait.Round(time.Millisecond))
			case "weight":
				fmt.Fprintf(w, "stream: weight pass scanned %d samples in %v\n",
					p.RecordsIn, p.Wall.Round(time.Millisecond))
			default:
				fmt.Fprintf(w, "stream: %s pass %s: %d -> %d records in %v\n",
					p.Table, p.Pass, p.RecordsIn, p.RecordsOut, p.Wall.Round(time.Millisecond))
			}
		},
		OnEvalQuery: func(q EvalQuery) {
			mu.Lock()
			defer mu.Unlock()
			evalRate.Add(1)
			evalN++
			if evalN%100 == 0 {
				fmt.Fprintf(w, "eval: %d queries (%.0f q/s)\n", evalN, evalRate.Rate())
			}
		},
	}
}
