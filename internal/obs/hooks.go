package obs

import (
	"fmt"
	"io"
	"time"
)

// TrainEpoch describes one completed training epoch.
type TrainEpoch struct {
	Epoch, Epochs int
	Loss          float64 // mean batch loss over the epoch
	GradNorm      float64 // global gradient norm of the epoch's last step
	Steps         int
	Wall          time.Duration
}

// EpochsPerSec returns the epoch throughput implied by the wall time.
func (e TrainEpoch) EpochsPerSec() float64 {
	if e.Wall <= 0 {
		return 0
	}
	return float64(time.Second) / float64(e.Wall)
}

// TrainStep describes one optimizer step.
type TrainStep struct {
	Step     int // 1-based, cumulative across epochs
	Loss     float64
	GradNorm float64
	Wall     time.Duration
}

// GenPhase describes one generation-phase event: FOJ sampling, inverse
// probability weighting/scaling, or a table's Group-and-Merge pass.
type GenPhase struct {
	Phase  string // "sample", "weight", or "merge"
	Table  string // empty for the sample phase
	Tuples int    // tuples sampled or rows materialized
	Groups int    // merge groups formed (merge phase)
	// MassBefore/MassAfter are the table's total inverse-probability
	// weight mass before and after scaling to |T| (weight phase).
	MassBefore, MassAfter float64
	Wall                  time.Duration
}

// EvalQuery describes one evaluated query.
type EvalQuery struct {
	Card   int64 // cardinality on the evaluated database
	Truth  int64 // recorded true cardinality
	QError float64
	Wall   time.Duration
}

// Hooks is the pipeline observer: any subset of the callbacks may be set,
// and a nil *Hooks (or nil callback) disables that signal with no
// measurement cost — the hot paths check WantsX before computing inputs.
type Hooks struct {
	OnTrainEpoch func(TrainEpoch)
	OnTrainStep  func(TrainStep)
	OnGenPhase   func(GenPhase)
	OnEvalQuery  func(EvalQuery)
}

// WantsTrainStep reports whether per-step stats (latency, grad norm) are
// worth computing.
func (h *Hooks) WantsTrainStep() bool { return h != nil && h.OnTrainStep != nil }

// WantsTrainEpoch reports whether per-epoch stats are worth computing.
func (h *Hooks) WantsTrainEpoch() bool { return h != nil && h.OnTrainEpoch != nil }

// TrainEpoch invokes the epoch callback if set.
func (h *Hooks) TrainEpoch(e TrainEpoch) {
	if h != nil && h.OnTrainEpoch != nil {
		h.OnTrainEpoch(e)
	}
}

// TrainStep invokes the step callback if set.
func (h *Hooks) TrainStep(s TrainStep) {
	if h != nil && h.OnTrainStep != nil {
		h.OnTrainStep(s)
	}
}

// GenPhase invokes the generation-phase callback if set.
func (h *Hooks) GenPhase(p GenPhase) {
	if h != nil && h.OnGenPhase != nil {
		h.OnGenPhase(p)
	}
}

// EvalQuery invokes the evaluation callback if set.
func (h *Hooks) EvalQuery(q EvalQuery) {
	if h != nil && h.OnEvalQuery != nil {
		h.OnEvalQuery(q)
	}
}

// Merge fans every event out to all non-nil hooks. Nil inputs are skipped;
// merging zero or one effective hooks returns that hook directly.
func Merge(hooks ...*Hooks) *Hooks {
	var live []*Hooks
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := &Hooks{}
	out.OnTrainEpoch = func(e TrainEpoch) {
		for _, h := range live {
			h.TrainEpoch(e)
		}
	}
	out.OnTrainStep = func(s TrainStep) {
		for _, h := range live {
			h.TrainStep(s)
		}
	}
	out.OnGenPhase = func(p GenPhase) {
		for _, h := range live {
			h.GenPhase(p)
		}
	}
	out.OnEvalQuery = func(q EvalQuery) {
		for _, h := range live {
			h.EvalQuery(q)
		}
	}
	return out
}

// MetricsHooks returns hooks that feed the registry: training loss/grad
// gauges, a step-latency histogram, epoch and query counters, per-query
// latency and Q-Error histograms, and generation tuple/group/mass metrics.
func MetricsHooks(r *Registry) *Hooks {
	latBounds := ExpBuckets(1e-6, 2, 32) // 1µs … ~1h, in seconds
	qeBounds := ExpBuckets(1, 1.5, 40)   // Q-Error 1 … ~1e7
	stepLat := r.Histogram("train_step_seconds", latBounds)
	loss := r.Gauge("train_loss")
	gradNorm := r.Gauge("train_grad_norm")
	epochsSec := r.Gauge("train_epochs_per_sec")
	epochs := r.Counter("train_epochs_total")
	steps := r.Counter("train_steps_total")
	evalQ := r.Counter("eval_queries_total")
	evalLat := r.Histogram("eval_query_seconds", latBounds)
	evalQE := r.Histogram("eval_qerror", qeBounds)
	return &Hooks{
		OnTrainEpoch: func(e TrainEpoch) {
			epochs.Inc()
			loss.Set(e.Loss)
			gradNorm.Set(e.GradNorm)
			epochsSec.Set(e.EpochsPerSec())
		},
		OnTrainStep: func(s TrainStep) {
			steps.Inc()
			stepLat.Observe(s.Wall.Seconds())
		},
		OnGenPhase: func(p GenPhase) {
			r.Counter("gen_" + p.Phase + "_tuples_total").Add(int64(p.Tuples))
			if p.Phase == "merge" {
				r.Counter("gen_merge_groups_total").Add(int64(p.Groups))
			}
			if p.Phase == "weight" {
				r.Gauge("gen_weight_mass_before{" + p.Table + "}").Set(p.MassBefore)
				r.Gauge("gen_weight_mass_after{" + p.Table + "}").Set(p.MassAfter)
			}
		},
		OnEvalQuery: func(q EvalQuery) {
			evalQ.Inc()
			evalLat.Observe(q.Wall.Seconds())
			evalQE.Observe(q.QError)
		},
	}
}

// ProgressHooks returns hooks that print human-readable progress lines —
// one per training epoch, generation phase, and 100 evaluated queries —
// to w (typically stderr under a CLI -progress flag).
func ProgressHooks(w io.Writer) *Hooks {
	var evalN int
	return &Hooks{
		OnTrainEpoch: func(e TrainEpoch) {
			fmt.Fprintf(w, "train: epoch %d/%d  loss=%.4f  grad=%.3g  %.2f epochs/s\n",
				e.Epoch, e.Epochs, e.Loss, e.GradNorm, e.EpochsPerSec())
		},
		OnGenPhase: func(p GenPhase) {
			switch p.Phase {
			case "sample":
				fmt.Fprintf(w, "generate: sampled %d FOJ tuples in %v\n", p.Tuples, p.Wall.Round(time.Millisecond))
			case "weight":
				fmt.Fprintf(w, "generate: %s weight mass %.1f -> %.1f\n", p.Table, p.MassBefore, p.MassAfter)
			case "merge":
				fmt.Fprintf(w, "generate: %s merged %d groups -> %d rows in %v\n",
					p.Table, p.Groups, p.Tuples, p.Wall.Round(time.Millisecond))
			}
		},
		OnEvalQuery: func(q EvalQuery) {
			evalN++
			if evalN%100 == 0 {
				fmt.Fprintf(w, "eval: %d queries\n", evalN)
			}
		},
	}
}
