package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// rateSlots is the ring resolution of a RateMeter: the window is split
// into this many slots, so stale data ages out in window/rateSlots steps.
const rateSlots = 16

// RateMeter measures a rolling-window event rate (events/sec over the
// last window). Add is cheap (one mutex, integer math) and safe for
// concurrent use; a nil meter ignores Add and reports rate 0.
type RateMeter struct {
	mu     sync.Mutex
	slot   time.Duration // window / rateSlots
	counts [rateSlots]float64
	slots  [rateSlots]int64 // absolute slot index each bucket holds
	first  time.Time        // first Add, for short-run rate correction
	now    func() time.Time // injectable clock for tests
}

// NewRateMeter returns a meter over the given rolling window (e.g. 5s).
// Windows shorter than rateSlots nanoseconds are rounded up.
func NewRateMeter(window time.Duration) *RateMeter {
	if window < rateSlots {
		window = rateSlots
	}
	return &RateMeter{slot: window / rateSlots, now: time.Now}
}

// Add records n events now.
func (m *RateMeter) Add(n float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	t := m.now()
	if m.first.IsZero() {
		m.first = t
	}
	idx := int64(t.UnixNano()) / int64(m.slot)
	b := int(idx % rateSlots)
	if m.slots[b] != idx {
		m.slots[b] = idx
		m.counts[b] = 0
	}
	m.counts[b] += n
	m.mu.Unlock()
}

// Rate returns events/sec over the window (or over the elapsed time since
// the first Add, when shorter — so early readings are not diluted by the
// empty remainder of the window).
func (m *RateMeter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.first.IsZero() {
		return 0
	}
	t := m.now()
	idx := int64(t.UnixNano()) / int64(m.slot)
	var sum float64
	for b := range m.counts {
		if m.slots[b] > idx-rateSlots {
			sum += m.counts[b]
		}
	}
	span := time.Duration(rateSlots) * m.slot
	if el := t.Sub(m.first); el < span {
		span = el
	}
	if span < m.slot {
		span = m.slot // avoid divide-by-~0 spikes on the first slot
	}
	return sum / span.Seconds()
}

// Progress tracks completed units against a known total, computing a
// rolling rate and an ETA, with a built-in emission throttle so many
// workers can share one tracker and only one of them reports at a time.
// All methods are safe for concurrent use and no-ops on a nil tracker.
type Progress struct {
	total    int64
	done     atomic.Int64
	meter    *RateMeter
	start    time.Time
	lastEmit atomic.Int64 // UnixNano of the last granted ShouldEmit
}

// NewProgress returns a tracker for total units, measuring the rate over
// the given rolling window.
func NewProgress(total int64, window time.Duration) *Progress {
	return &Progress{total: total, meter: NewRateMeter(window), start: time.Now()}
}

// Add records n completed units.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
	p.meter.Add(float64(n))
}

// ShouldEmit reports whether at least minInterval has passed since the
// last granted emission, claiming the slot atomically: of several
// concurrent callers exactly one gets true.
func (p *Progress) ShouldEmit(minInterval time.Duration) bool {
	if p == nil {
		return false
	}
	now := time.Now().UnixNano()
	last := p.lastEmit.Load()
	return now-last >= int64(minInterval) && p.lastEmit.CompareAndSwap(last, now)
}

// ProgressSnapshot is one observation of a Progress tracker.
type ProgressSnapshot struct {
	Done, Total int64
	Rate        float64       // units/sec over the rolling window
	ETA         time.Duration // 0 when unknown (no rate yet) or finished
}

// Snapshot returns the current progress, rate, and ETA. The ETA uses the
// rolling rate, falling back to the overall average when the window is
// empty.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	done := p.done.Load()
	s := ProgressSnapshot{Done: done, Total: p.total, Rate: p.meter.Rate()}
	remaining := p.total - done
	if remaining <= 0 {
		return s
	}
	rate := s.Rate
	if rate <= 0 && done > 0 {
		if el := time.Since(p.start); el > 0 {
			rate = float64(done) / el.Seconds()
		}
	}
	// A zero or non-finite rate (nothing done yet, or a degenerate window)
	// has no finite estimate: leave ETA 0 ("unknown") rather than let the
	// float→Duration conversion manufacture ±Inf/NaN or overflowed
	// negative durations that downstream renderers would print as seconds.
	if rate > 0 && !math.IsInf(rate, 0) && !math.IsNaN(rate) {
		if eta := float64(remaining) / rate * float64(time.Second); eta < float64(math.MaxInt64) {
			s.ETA = time.Duration(eta)
		}
	}
	return s
}
