package obs

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestLabeledVectors pins the family behavior: children are keyed by the
// full label tuple, repeat With calls return the same handle, and the
// flat snapshot folds children in under rendered keys.
func TestLabeledVectors(t *testing.T) {
	r := NewRegistry()

	c := r.CounterVec("req_total", "table", "phase")
	c.With("users", "merge").Add(3)
	c.With("users", "weight").Add(2)
	c.With("orders", "merge").Inc()
	if c.With("users", "merge") != c.With("users", "merge") {
		t.Fatal("repeat With returned different counters")
	}
	if got := c.With("users", "merge").Value(); got != 3 {
		t.Fatalf("users/merge = %d, want 3", got)
	}

	g := r.GaugeVec("mass", "table")
	g.With("users").Set(7.5)

	h := r.HistogramVec("lat", ExpBuckets(0.001, 10, 4), "phase")
	h.With("sample").Observe(0.05)
	h.With("sample").Observe(0.5)

	snap := r.Snapshot()
	if snap.Counters[`req_total{table="users",phase="merge"}`] != 3 {
		t.Fatalf("snapshot counters: %+v", snap.Counters)
	}
	if snap.Counters[`req_total{table="orders",phase="merge"}`] != 1 {
		t.Fatalf("snapshot counters: %+v", snap.Counters)
	}
	if snap.Gauges[`mass{table="users"}`] != 7.5 {
		t.Fatalf("snapshot gauges: %+v", snap.Gauges)
	}
	if snap.Histograms[`lat{phase="sample"}`].Count != 2 {
		t.Fatalf("snapshot histograms: %+v", snap.Histograms)
	}

	// First registration wins, like Histogram bounds.
	if r.CounterVec("req_total", "other") != c {
		t.Fatal("second CounterVec registration returned a new family")
	}
}

// TestLabeledVectorCardinalityPanics pins that a wrong label-value count
// is a programming error, not a silent misrecord.
func TestLabeledVectorCardinalityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with one value for two labels did not panic")
		}
	}()
	v.With("only-one")
}

// TestLabeledVectorsConcurrent hammers child creation and updates across
// all three vector kinds while snapshots and Prometheus exposition run
// concurrently — the data-race gate for the labeled path (run with
// -race). Counter totals must come out exact.
func TestLabeledVectorsConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("hits_total", "worker", "kind")
	gv := r.GaugeVec("level", "worker")
	hv := r.HistogramVec("lat", ExpBuckets(1e-6, 4, 10), "worker")

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w%4) // shared children across goroutines
			c := cv.With(id, "write")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(id, "read").Inc() // unresolved lookup path
				gv.With(id).Set(float64(i))
				hv.With(id).Observe(float64(i%50) * 1e-5)
			}
		}(w)
	}
	// Concurrent readers: snapshots and exposition while children churn.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Snapshot()
				if err := WritePrometheus(discard{}, r); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var total int64
	for w := 0; w < 4; w++ {
		id := fmt.Sprintf("w%d", w)
		total += cv.With(id, "write").Value() + cv.With(id, "read").Value()
	}
	if want := int64(2 * workers * perWorker); total != want {
		t.Fatalf("labeled counter total = %d, want %d", total, want)
	}
}

// discard is an io.Writer that drops everything (avoids importing io just
// for the benchmark-style reader loop).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
