// Package join maps a tree-structured schema onto the flat column layout of
// the full-outer-join (FOJ) distribution that SAM's autoregressive model
// learns: every table's content columns plus, per foreign-key table, a
// virtual fanout column (how many rows of the table share this join key?),
// following the NeuroCard-style join handling the paper adopts. The paper's
// indicator column I_T is folded into the fanout column as its zero bin —
// I_T = 0 exactly when F_T = 0, so a separate binary column would let a
// learned model place inconsistent mass on (I, F) pairs, while a single
// column cannot. The package also derives the identifier-column sets of
// Theorem 2 that drive Group-and-Merge join-key assignment.
package join

import (
	"fmt"
	"math"

	"sam/internal/relation"
)

// VirtualKind classifies a model column.
type VirtualKind int

const (
	// Content columns carry real attribute values.
	Content VirtualKind = iota
	// Fanout columns are the F_{T.key} virtual columns, bin-coded; bin 0
	// means the table has no rows for this join key (the paper's
	// indicator I_T = 0).
	Fanout
)

// String returns the kind name.
func (k VirtualKind) String() string {
	switch k {
	case Content:
		return "content"
	case Fanout:
		return "fanout"
	default:
		return fmt.Sprintf("VirtualKind(%d)", int(k))
	}
}

// ModelColumn is one column of the FOJ model, in autoregressive order.
type ModelColumn struct {
	Kind   VirtualKind
	Table  string        // owning table
	Column string        // content column name (Content only)
	Rel    relation.Kind // relation-level kind (Content only)
	Domain int           // number of model codes before intervalization
	// Bins maps fanout codes to representative fanout values (Fanout
	// only); Bins[0] == 0 is the absent bin.
	Bins []float64
	// Edges are the lower edges of the fanout bins (Fanout only).
	Edges []float64
	// WeightVals are the values inverse-probability weights divide by:
	// max(Bins, 1), so absent relations weigh like the paper's
	// fanout-set-to-1 NULL handling (Fanout only).
	WeightVals []float64
}

// Name returns a stable display name.
func (c ModelColumn) Name() string {
	switch c.Kind {
	case Content:
		return c.Table + "." + c.Column
	default:
		return "F(" + c.Table + ")"
	}
}

// DefaultFanoutBinEdges are the lower edges of the fanout bins: the absent
// bin (fanout 0), exact small fanouts (where most join mass lives), then
// geometric buckets. The model is query-driven, so true maximum fanouts
// are unknown a priori; the bins bound what the model can represent
// (documented substitution in DESIGN.md). Bin b covers
// [edge_b, edge_{b+1}); its representative value is the geometric midpoint
// of that range, which keeps inverse-probability weights nearly unbiased
// under coarse binning.
var DefaultFanoutBinEdges = []float64{
	0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
	18, 21, 24, 28, 32, 37, 43, 49, 57, 66, 76, 88, 101, 117, 128,
}

// fanoutRepresentatives converts bin edges to representative values.
func fanoutRepresentatives(edges []float64) []float64 {
	reps := make([]float64, len(edges))
	for i := range edges {
		if edges[i] == 0 {
			reps[i] = 0
			continue
		}
		if i+1 < len(edges) {
			// Geometric midpoint of [edge_i, edge_{i+1}−1].
			hi := edges[i+1] - 1
			if hi < edges[i] {
				hi = edges[i]
			}
			reps[i] = math.Sqrt(edges[i] * hi)
		} else {
			reps[i] = edges[i]
		}
	}
	return reps
}

// Layout is the FOJ model column layout for a schema.
type Layout struct {
	Schema *relation.Schema
	Cols   []ModelColumn

	contentIdx map[string]int // "table.col" → model index
	fanoutIdx  map[string]int // table → model index
}

// NewLayout builds the layout: tables in topological order; per FK table
// the fanout column first (so content conditionals see presence), then the
// content columns.
func NewLayout(s *relation.Schema) *Layout {
	l := &Layout{
		Schema:     s,
		contentIdx: make(map[string]int),
		fanoutIdx:  make(map[string]int),
	}
	for _, t := range s.Tables {
		if t.Parent != "" {
			edges := append([]float64(nil), DefaultFanoutBinEdges...)
			reps := fanoutRepresentatives(edges)
			weights := make([]float64, len(reps))
			for i, v := range reps {
				weights[i] = math.Max(v, 1)
			}
			l.fanoutIdx[t.Name] = len(l.Cols)
			l.Cols = append(l.Cols, ModelColumn{
				Kind: Fanout, Table: t.Name, Domain: len(edges),
				Bins: reps, Edges: edges, WeightVals: weights,
			})
		}
		for _, c := range t.Cols {
			l.contentIdx[t.Name+"."+c.Name] = len(l.Cols)
			l.Cols = append(l.Cols, ModelColumn{
				Kind: Content, Table: t.Name, Column: c.Name,
				Rel: c.Kind, Domain: c.NumValues,
			})
		}
	}
	return l
}

// NumCols returns the number of model columns.
func (l *Layout) NumCols() int { return len(l.Cols) }

// ContentIndex returns the model index of table.col.
func (l *Layout) ContentIndex(table, col string) int {
	idx, ok := l.contentIdx[table+"."+col]
	if !ok {
		panic(fmt.Sprintf("join: no content column %s.%s", table, col))
	}
	return idx
}

// FanoutIndex returns the model index of F_table, if the table has one
// (root tables do not).
func (l *Layout) FanoutIndex(table string) (int, bool) {
	idx, ok := l.fanoutIdx[table]
	return idx, ok
}

// ContentColumns returns the model indices of table's content columns, in
// schema order.
func (l *Layout) ContentColumns(table string) []int {
	t := l.Schema.Table(table)
	out := make([]int, 0, len(t.Cols))
	for _, c := range t.Cols {
		out = append(out, l.ContentIndex(table, c.Name))
	}
	return out
}

// FanoutCode bin-encodes a true fanout value; 0 encodes an absent relation
// (the paper's indicator 0).
func (l *Layout) FanoutCode(table string, fanout int64) int {
	idx, ok := l.fanoutIdx[table]
	if !ok {
		panic(fmt.Sprintf("join: table %s has no fanout column", table))
	}
	edges := l.Cols[idx].Edges
	if fanout < 0 {
		fanout = 0
	}
	f := float64(fanout)
	for i := len(edges) - 1; i >= 0; i-- {
		if f >= edges[i] {
			return i
		}
	}
	return 0
}

// FanoutValue decodes a fanout code to its representative value (0 for the
// absent bin).
func (l *Layout) FanoutValue(table string, code int) float64 {
	idx, ok := l.fanoutIdx[table]
	if !ok {
		panic(fmt.Sprintf("join: table %s has no fanout column", table))
	}
	return l.Cols[idx].Bins[code]
}

// Present reports whether the sample row has table participating (fanout
// bin > 0). Root tables are always present.
func (l *Layout) Present(row []int32, table string) bool {
	idx, ok := l.fanoutIdx[table]
	if !ok {
		return true
	}
	return row[idx] != 0
}

// IdentifierColumns returns the model indices of Identifier(T.pk) from
// Theorem 2: the content columns of {T} ∪ Ancestors(T) plus the fanout
// columns of every FK relation whose parent lies in that set, and of the
// tables in the set themselves (their zero bins carry the paper's
// indicator information). FOJ tuples sharing the primary key T.pk agree on
// all of these columns.
func (l *Layout) IdentifierColumns(table string) []int {
	group := map[string]bool{table: true}
	for _, a := range l.Schema.Ancestors(table) {
		group[a] = true
	}
	var out []int
	for i, c := range l.Cols {
		switch c.Kind {
		case Content:
			if group[c.Table] {
				out = append(out, i)
			}
		case Fanout:
			if group[l.Schema.Table(c.Table).Parent] || group[c.Table] {
				out = append(out, i)
			}
		}
	}
	return out
}

// DownweightColumns returns, for a connected query table set, the fanout
// model indices whose weight values the inverse-probability weight divides
// by: every FK table outside tables ∪ Ancestors(local root). For a single
// base relation T this is exactly the denominator of Eq. 4.
func (l *Layout) DownweightColumns(tables []string) []int {
	inSet := make(map[string]bool, len(tables))
	for _, t := range tables {
		inSet[t] = true
	}
	// Local root: table whose parent is outside the set.
	root := ""
	for _, t := range tables {
		p := l.Schema.Table(t).Parent
		if p == "" || !inSet[p] {
			root = t
			break
		}
	}
	keep := make(map[string]bool, len(tables))
	for _, t := range tables {
		keep[t] = true
	}
	if root != "" {
		for _, a := range l.Schema.Ancestors(root) {
			keep[a] = true
		}
	}
	var out []int
	for i, c := range l.Cols {
		if c.Kind == Fanout && !keep[c.Table] {
			out = append(out, i)
		}
	}
	return out
}

// PresenceConstraints returns the fanout model indices that must be
// nonzero for a query over the given table set (every FK table in the set
// participates in the join) — the paper's I_T = 1 constraints expressed on
// the merged columns.
func (l *Layout) PresenceConstraints(tables []string) []int {
	var out []int
	for _, t := range tables {
		if idx, ok := l.fanoutIdx[t]; ok {
			out = append(out, idx)
		}
	}
	return out
}
