package join

import (
	"math"
	"math/rand"
	"testing"

	"sam/internal/engine"
	"sam/internal/relation"
)

// paperSchema reconstructs the flavor of the paper's Figure 3: root A with
// FK children B and C.
func paperSchema() *relation.Schema {
	aCol := relation.NewColumn("a", relation.Categorical, 2) // m=0, n=1
	for _, v := range []int32{0, 0, 1, 1} {
		aCol.Append(v)
	}
	a := relation.NewTable("A", aCol)

	bCol := relation.NewColumn("b", relation.Categorical, 3) // a,b,c
	b := relation.NewTable("B", bCol)
	b.Parent = "A"
	for i, v := range []int32{0, 1, 2} {
		bCol.Append(v)
		_ = i
	}
	b.FK = []int64{0, 1, 1} // B.x values 1,2,2 (0-indexed keys)

	cCol := relation.NewColumn("c", relation.Categorical, 2) // i,j
	c := relation.NewTable("C", cCol)
	c.Parent = "A"
	for _, v := range []int32{0, 1, 0, 1} {
		cCol.Append(v)
	}
	c.FK = []int64{0, 0, 1, 1}

	return relation.MustSchema(a, b, c)
}

func TestLayoutColumnOrderAndLookups(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	// A: content a. B: fanout, content b. C: same. Total 5.
	if l.NumCols() != 5 {
		t.Fatalf("NumCols = %d want 5", l.NumCols())
	}
	if idx := l.ContentIndex("A", "a"); l.Cols[idx].Kind != Content || l.Cols[idx].Table != "A" {
		t.Fatal("bad content lookup for A.a")
	}
	if _, ok := l.FanoutIndex("A"); ok {
		t.Fatal("root table must have no fanout")
	}
	for _, name := range []string{"B", "C"} {
		fi, ok := l.FanoutIndex(name)
		if !ok || l.Cols[fi].Kind != Fanout {
			t.Fatalf("bad fanout for %s", name)
		}
		if l.Cols[fi].Bins[0] != 0 || l.Cols[fi].WeightVals[0] != 1 {
			t.Fatalf("fanout absent bin malformed for %s", name)
		}
	}
	if got := len(l.ContentColumns("A")); got != 1 {
		t.Fatalf("ContentColumns(A) = %d", got)
	}
}

func TestFanoutCodeRoundTrip(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	fb, _ := l.FanoutIndex("B")
	edges := l.Cols[fb].Edges
	for _, f := range []int64{1, 2, 3, 7, 8, 9, 15, 63, 100, 500} {
		code := l.FanoutCode("B", f)
		if float64(f) < edges[code] {
			t.Fatalf("fanout %d below its bin edge %v", f, edges[code])
		}
		if code+1 < len(edges) && edges[code+1] <= float64(f) {
			t.Fatalf("fanout %d not in tightest bin (code %d)", f, code)
		}
		// The representative must lie inside the bin's range.
		v := l.FanoutValue("B", code)
		if v < edges[code] {
			t.Fatalf("representative %v below edge %v", v, edges[code])
		}
		if code+1 < len(edges) && v >= edges[code+1] {
			t.Fatalf("representative %v beyond next edge %v", v, edges[code+1])
		}
	}
	if l.FanoutCode("B", 0) != 0 || l.FanoutValue("B", 0) != 0 {
		t.Fatal("fanout 0 must land in the absent bin")
	}
	// Small fanouts are exact (the last exact edge is 15; 16 falls in the
	// first geometric bucket [16, 18)).
	for f := int64(1); f <= 15; f++ {
		if got := l.FanoutValue("B", l.FanoutCode("B", f)); got != float64(f) {
			t.Fatalf("fanout %d not exact: representative %v", f, got)
		}
	}
}

func TestIdentifierColumnsMatchPaperExample(t *testing.T) {
	// Identifier(A.x) = {A.a, F_B, F_C} plus any indicators of the group —
	// the paper lists {A.a, I_A, F_B.x, F_C.x}; the root carries no
	// indicator here because it is always present under FK constraints.
	s := paperSchema()
	l := NewLayout(s)
	got := l.IdentifierColumns("A")
	want := map[int]bool{
		l.ContentIndex("A", "a"): true,
	}
	fb, _ := l.FanoutIndex("B")
	fc, _ := l.FanoutIndex("C")
	want[fb] = true
	want[fc] = true
	if len(got) != len(want) {
		t.Fatalf("Identifier(A) = %v want %v", got, want)
	}
	for _, idx := range got {
		if !want[idx] {
			t.Fatalf("unexpected identifier column %d (%s)", idx, l.Cols[idx].Name())
		}
	}
}

func TestIdentifierColumnsDeepTree(t *testing.T) {
	// root ← b ← d; root ← c. Identifier(d) must include content+indicators
	// of {d, b, root} and fanouts of every FK table whose parent is in that
	// set: b (parent root), c (parent root), d (parent b).
	mk := func(name string, rows int, parent string, parentRows int) *relation.Table {
		col := relation.NewColumn("v", relation.Categorical, 3)
		for i := 0; i < rows; i++ {
			col.Append(int32(i % 3))
		}
		t := relation.NewTable(name, col)
		t.Parent = parent
		if parent != "" {
			t.FK = make([]int64, rows)
			for i := range t.FK {
				t.FK[i] = int64(i % parentRows)
			}
		}
		return t
	}
	root := mk("root", 4, "", 0)
	b := mk("b", 6, "root", 4)
	c := mk("c", 5, "root", 4)
	d := mk("d", 7, "b", 6)
	s := relation.MustSchema(root, b, c, d)
	l := NewLayout(s)
	got := map[int]bool{}
	for _, idx := range l.IdentifierColumns("d") {
		got[idx] = true
	}
	mustHave := []int{l.ContentIndex("d", "v"), l.ContentIndex("b", "v"), l.ContentIndex("root", "v")}
	for _, name := range []string{"b", "c", "d"} {
		fi, _ := l.FanoutIndex(name)
		mustHave = append(mustHave, fi)
	}
	for _, idx := range mustHave {
		if !got[idx] {
			t.Fatalf("Identifier(d) missing %s", l.Cols[idx].Name())
		}
	}
	// c's content must NOT be an identifier of d.
	if got[l.ContentIndex("c", "v")] {
		t.Fatal("Identifier(d) wrongly includes c's content")
	}
}

func TestDownweightColumns(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	fb, _ := l.FanoutIndex("B")
	fc, _ := l.FanoutIndex("C")

	// Base relation A (root): divide by both children's fanouts.
	got := l.DownweightColumns([]string{"A"})
	if len(got) != 2 {
		t.Fatalf("DownweightColumns(A) = %v", got)
	}
	// Base relation B: A is B's ancestor, so only F_C divides.
	got = l.DownweightColumns([]string{"B"})
	if len(got) != 1 || got[0] != fc {
		t.Fatalf("DownweightColumns(B) = %v want [%d]", got, fc)
	}
	// View {A, B}: only F_C divides.
	got = l.DownweightColumns([]string{"A", "B"})
	if len(got) != 1 || got[0] != fc {
		t.Fatalf("DownweightColumns(A,B) = %v want [%d]", got, fc)
	}
	// Full set: nothing divides.
	if got = l.DownweightColumns([]string{"A", "B", "C"}); len(got) != 0 {
		t.Fatalf("DownweightColumns(all) = %v", got)
	}
	_ = fb
}

func TestPresenceConstraints(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	if got := l.PresenceConstraints([]string{"A"}); len(got) != 0 {
		t.Fatalf("constraints for root-only query: %v", got)
	}
	got := l.PresenceConstraints([]string{"A", "B", "C"})
	if len(got) != 2 {
		t.Fatalf("constraints for full join: %v", got)
	}
}

func TestOracleFOJSizeMatchesEngine(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	o := NewOracle(l)
	if int64(o.FOJSize()) != engine.FOJSize(s) {
		t.Fatalf("oracle FOJ %v engine %d", o.FOJSize(), engine.FOJSize(s))
	}
}

func TestOracleSamplesMatchFOJDistribution(t *testing.T) {
	// On the paper-style schema, the FOJ marginal of A.a is computable by
	// hand; sampled frequencies must converge to it.
	s := paperSchema()
	l := NewLayout(s)
	o := NewOracle(l)
	rng := rand.New(rand.NewSource(42))
	const n = 60000
	dst := make([]int32, l.NumCols())
	aIdx := l.ContentIndex("A", "a")
	counts := map[int32]int{}
	for i := 0; i < n; i++ {
		o.SampleFOJ(rng, dst)
		counts[dst[aIdx]]++
	}
	// Exact FOJ multiplicities per root row: row0 (a=m): maxF_B(0)=1,
	// F_C(0)=2 → 2; row1 (a=m): F_B=2, F_C=2 → 4; rows 2,3 (a=n): no B, no
	// C → 1 each. FOJ size 8; P(a=m) = 6/8.
	foj := o.FOJSize()
	wantM := 6.0 / foj
	gotM := float64(counts[0]) / n
	if math.Abs(gotM-wantM) > 0.01 {
		t.Fatalf("P(a=m) sampled %v want %v", gotM, wantM)
	}
}

func TestOracleNullHandling(t *testing.T) {
	// Root rows 2 and 3 have no children; when sampled, indicators must be
	// 0 and fanout codes must encode value 1.
	s := paperSchema()
	l := NewLayout(s)
	o := NewOracle(l)
	rng := rand.New(rand.NewSource(7))
	dst := make([]int32, l.NumCols())
	aIdx := l.ContentIndex("A", "a")
	fb, _ := l.FanoutIndex("B")
	fc, _ := l.FanoutIndex("C")
	sawNull := false
	for i := 0; i < 2000; i++ {
		o.SampleFOJ(rng, dst)
		if dst[aIdx] == 1 { // a=n rows have no children
			sawNull = true
			if dst[fb] != 0 || dst[fc] != 0 {
				t.Fatalf("absent children must use the zero fanout bin: %d %d", dst[fb], dst[fc])
			}
			if !(!l.Present(dst, "B") && !l.Present(dst, "C")) {
				t.Fatal("Present() must report absence")
			}
		} else {
			if dst[fb] == 0 || dst[fc] == 0 {
				t.Fatalf("joined children must have nonzero fanout bins: %d %d", dst[fb], dst[fc])
			}
		}
	}
	if !sawNull {
		t.Fatal("never sampled a NULL-extended tuple")
	}
}

func TestOracleFanoutCodesAreConsistent(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	o := NewOracle(l)
	rng := rand.New(rand.NewSource(8))
	dst := make([]int32, l.NumCols())
	aIdx := l.ContentIndex("A", "a")
	bIdx := l.ContentIndex("B", "b")
	fb, _ := l.FanoutIndex("B")
	for i := 0; i < 2000; i++ {
		o.SampleFOJ(rng, dst)
		// Root row 1 (a=m, B rows {b,c}) has B-fanout 2; root row 0 has 1.
		if dst[aIdx] == 0 && dst[bIdx] == 0 { // B.b == a ⇒ root row 0
			if l.FanoutValue("B", int(dst[fb])) != 1 {
				t.Fatal("fanout of key 0 should be 1")
			}
		}
		if dst[bIdx] == 1 || dst[bIdx] == 2 { // rows joining key 1
			if l.FanoutValue("B", int(dst[fb])) != 2 {
				t.Fatal("fanout of key 1 should be 2")
			}
		}
	}
}

func TestEnumerateFOJCountsAndNulls(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	o := NewOracle(l)
	flat := o.EnumerateFOJ()
	ncols := l.NumCols()
	if len(flat) != int(o.FOJSize())*ncols {
		t.Fatalf("enumerated %d codes want %d", len(flat), int(o.FOJSize())*ncols)
	}
	// Count tuples with a=m (code 0): must be 6 of 8 (see sampling test).
	aIdx := l.ContentIndex("A", "a")
	var m int
	for i := 0; i+ncols <= len(flat); i += ncols {
		if flat[i+aIdx] == 0 {
			m++
		}
	}
	if m != 6 {
		t.Fatalf("enumeration has %d a=m tuples, want 6", m)
	}
}

func TestEnumerateFOJDeepTree(t *testing.T) {
	// root ← b ← d plus root ← c: enumeration size must equal the engine's
	// analytic FOJ size.
	rng := rand.New(rand.NewSource(33))
	mk := func(name string, rows int, parent string, parentRows int) *relation.Table {
		col := relation.NewColumn("v", relation.Categorical, 4)
		tt := relation.NewTable(name, col)
		tt.Parent = parent
		for i := 0; i < rows; i++ {
			col.Append(int32(rng.Intn(4)))
			if parent != "" {
				tt.FK = append(tt.FK, int64(rng.Intn(parentRows)))
			}
		}
		return tt
	}
	root := mk("root", 5, "", 0)
	b := mk("b", 8, "root", 5)
	c := mk("c", 6, "root", 5)
	d := mk("d", 9, "b", 8)
	s := relation.MustSchema(root, b, c, d)
	l := NewLayout(s)
	o := NewOracle(l)
	flat := o.EnumerateFOJ()
	want := engine.FOJSize(s)
	if got := int64(len(flat) / l.NumCols()); got != want {
		t.Fatalf("enumerated %d tuples want %d", got, want)
	}
}

func TestLayoutPanicsOnUnknownNames(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	for name, fn := range map[string]func(){
		"ContentIndex": func() { l.ContentIndex("A", "nope") },
		"FanoutCode":   func() { l.FanoutCode("A", 1) },
		"FanoutValue":  func() { l.FanoutValue("A", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted unknown target", name)
				}
			}()
			fn()
		}()
	}
}

func TestOracleSampleWrongLengthPanics(t *testing.T) {
	s := paperSchema()
	l := NewLayout(s)
	o := NewOracle(l)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.SampleFOJ(rand.New(rand.NewSource(1)), make([]int32, 2))
}
