package join

import "sam/internal/relation"

// EnumerateFOJ materializes every full-outer-join tuple of the oracle's
// database in model-code space, returned as a flat buffer of
// FOJSize() × NumCols() codes. Intended for small schemas (tests, exact
// recovery demonstrations); real generation samples instead.
func (o *Oracle) EnumerateFOJ() []int32 {
	ncols := o.L.NumCols()
	total := int(o.FOJSize())
	out := make([]int32, 0, total*ncols)
	cur := make([]int32, ncols)
	s := o.L.Schema
	root := s.Roots()[0]
	for r := 0; r < root.NumRows(); r++ {
		out = o.enumerateTable(out, cur, root.Name, r)
	}
	return out
}

// enumerateTable fills table row r into cur and expands the cartesian
// product of its children's joining rows (NULL when none), appending
// completed tuples when the last sibling closes. The recursion mirrors
// fillTable but explores every branch.
func (o *Oracle) enumerateTable(out []int32, cur []int32, table string, r int) []int32 {
	s := o.L.Schema
	t := s.Table(table)
	for _, c := range t.Cols {
		cur[o.L.ContentIndex(table, c.Name)] = c.Data[r]
	}
	children := s.Children(table)
	return o.enumerateChildren(out, cur, t.PK(r), children, 0)
}

func (o *Oracle) enumerateChildren(out []int32, cur []int32, pk int64, children []*relation.Table, ci int) []int32 {
	if ci == len(children) {
		return append(out, cur...)
	}
	child := children[ci]
	fidx, _ := o.L.FanoutIndex(child.Name)
	rows := o.rowsByKey[child.Name][pk]
	if len(rows) == 0 {
		o.fillNull(cur, child.Name)
		return o.enumerateChildren(out, cur, pk, children, ci+1)
	}
	cur[fidx] = int32(o.L.FanoutCode(child.Name, o.fanout[child.Name][pk]))
	for _, rr := range rows {
		// Recurse into this child row's own subtree, then continue with
		// the remaining siblings for every completed assignment.
		out = o.enumerateChildRow(out, cur, pk, children, ci, int(rr))
	}
	return out
}

// enumerateChildRow fixes one row of children[ci] and expands that child's
// own children before moving to the next sibling.
func (o *Oracle) enumerateChildRow(out []int32, cur []int32, pk int64, children []*relation.Table, ci int, r int) []int32 {
	s := o.L.Schema
	child := children[ci]
	for _, c := range child.Cols {
		cur[o.L.ContentIndex(child.Name, c.Name)] = c.Data[r]
	}
	grand := s.Children(child.Name)
	if len(grand) == 0 {
		return o.enumerateChildren(out, cur, pk, children, ci+1)
	}
	// Expand the grandchildren fully; for each completed grandchild
	// assignment, continue with the remaining siblings of children[ci].
	// We achieve this by enumerating the grandchildren into a temporary
	// set of prefixes.
	prefixes := o.enumerateChildren(nil, cur, child.PK(r), grand, 0)
	ncols := o.L.NumCols()
	tmp := make([]int32, ncols)
	for p := 0; p+ncols <= len(prefixes); p += ncols {
		copy(tmp, prefixes[p:p+ncols])
		out = o.enumerateChildrenWith(out, tmp, pk, children, ci+1)
	}
	return out
}

// enumerateChildrenWith continues sibling expansion on an explicit buffer.
func (o *Oracle) enumerateChildrenWith(out []int32, cur []int32, pk int64, children []*relation.Table, ci int) []int32 {
	return o.enumerateChildren(out, cur, pk, children, ci)
}
