package join

import (
	"math/rand"
	"sort"
)

// TupleSampler produces uniform samples of full-outer-join tuples encoded
// in a Layout's model-code space. SAM's trained model implements it (the
// paper's generation path); Oracle implements it from a concrete database
// (used for testing the generation algorithms in isolation and for
// ablations).
type TupleSampler interface {
	// SampleFOJ writes one uniform FOJ tuple's model codes into dst, which
	// has Layout.NumCols() entries.
	SampleFOJ(rng *rand.Rand, dst []int32)
}

// BatchTupleSampler is a TupleSampler that can draw many tuples per call,
// one forward sweep advancing a whole batch of lanes column by column.
// core.drawSamples type-asserts for it when GenOptions.Batch > 1.
type BatchTupleSampler interface {
	TupleSampler
	// BatchCap returns the maximum lane count per SampleFOJBatch call.
	BatchCap() int
	// SampleFOJBatch draws len(rngs) tuples at once; lane l consumes only
	// rngs[l] (its private stream, which keeps output independent of the
	// batch shape) and writes its codes to dst[l*NumCols():(l+1)*NumCols()].
	SampleFOJBatch(rngs []*rand.Rand, dst []int32)
}

// NullCode is the content code stored for columns of a table that is NULL
// (indicator 0) in a FOJ tuple. Queries always pair content constraints
// with an indicator-=1 constraint, so overloading code 0 is sound (see
// package documentation).
const NullCode int32 = 0

// Oracle samples uniform FOJ tuples directly from a database. Weights are
// subtree-expanded row multiplicities, so each full-outer-join tuple is
// equally likely.
type Oracle struct {
	L *Layout

	// rowsByKey[table][key] lists row indices of table joining key.
	rowsByKey map[string]map[int64][]int32
	// subW[table][row] is the FOJ tuple count of the subtree rooted at that
	// row; keySum[table][key] is the sum over rows joining key.
	subW   map[string][]float64
	keySum map[string]map[int64]float64
	// fanout[table][key] is the raw fanout count (rows of table per key).
	fanout map[string]map[int64]int64

	rootCum []float64 // cumulative root-row weights
}

// NewOracle precomputes sampling structures for the layout's schema.
func NewOracle(l *Layout) *Oracle {
	s := l.Schema
	o := &Oracle{
		L:         l,
		rowsByKey: make(map[string]map[int64][]int32),
		subW:      make(map[string][]float64),
		keySum:    make(map[string]map[int64]float64),
		fanout:    make(map[string]map[int64]int64),
	}
	// Bottom-up over reversed topological order.
	for i := len(s.Tables) - 1; i >= 0; i-- {
		t := s.Tables[i]
		n := t.NumRows()
		w := make([]float64, n)
		for r := 0; r < n; r++ {
			wr := 1.0
			pk := t.PK(r)
			for _, c := range s.Children(t.Name) {
				if sum := o.keySum[c.Name][pk]; sum > 1 {
					wr *= sum
				}
			}
			w[r] = wr
		}
		o.subW[t.Name] = w
		if t.Parent != "" {
			byKey := make(map[int64][]int32)
			sums := make(map[int64]float64)
			fans := make(map[int64]int64)
			for r := 0; r < n; r++ {
				k := t.FK[r]
				byKey[k] = append(byKey[k], int32(r))
				sums[k] += w[r]
				fans[k]++
			}
			o.rowsByKey[t.Name] = byKey
			o.keySum[t.Name] = sums
			o.fanout[t.Name] = fans
		}
	}
	root := s.Roots()[0]
	o.rootCum = make([]float64, root.NumRows())
	var cum float64
	for r, w := range o.subW[root.Name] {
		cum += w
		o.rootCum[r] = cum
	}
	return o
}

// FOJSize returns the total FOJ tuple count implied by the weights.
func (o *Oracle) FOJSize() float64 {
	if len(o.rootCum) == 0 {
		return 0
	}
	return o.rootCum[len(o.rootCum)-1]
}

// SampleFOJ draws one uniform full-outer-join tuple.
func (o *Oracle) SampleFOJ(rng *rand.Rand, dst []int32) {
	if len(dst) != o.L.NumCols() {
		panic("join: SampleFOJ dst has wrong length")
	}
	s := o.L.Schema
	root := s.Roots()[0]
	u := rng.Float64() * o.FOJSize()
	r := sort.SearchFloat64s(o.rootCum, u)
	if r >= len(o.rootCum) {
		r = len(o.rootCum) - 1
	}
	o.fillTable(rng, dst, root.Name, r)
}

// fillTable writes the codes of table's row r and recursively samples its
// children.
func (o *Oracle) fillTable(rng *rand.Rand, dst []int32, table string, r int) {
	s := o.L.Schema
	t := s.Table(table)
	for _, c := range t.Cols {
		dst[o.L.ContentIndex(table, c.Name)] = c.Data[r]
	}
	pk := t.PK(r)
	for _, child := range s.Children(table) {
		fidx, _ := o.L.FanoutIndex(child.Name)
		rows := o.rowsByKey[child.Name][pk]
		if len(rows) == 0 {
			o.fillNull(dst, child.Name)
			continue
		}
		dst[fidx] = int32(o.L.FanoutCode(child.Name, o.fanout[child.Name][pk]))
		// Sample one joining row proportional to its subtree weight.
		sum := o.keySum[child.Name][pk]
		u := rng.Float64() * sum
		w := o.subW[child.Name]
		pick := rows[len(rows)-1]
		var acc float64
		for _, rr := range rows {
			acc += w[rr]
			if u <= acc {
				pick = rr
				break
			}
		}
		o.fillTable(rng, dst, child.Name, int(pick))
	}
}

// fillNull marks table (and transitively its descendants) as absent in the
// tuple: fanout bin 0 (the merged indicator) and NullCode content.
func (o *Oracle) fillNull(dst []int32, table string) {
	s := o.L.Schema
	if idx, ok := o.L.FanoutIndex(table); ok {
		dst[idx] = 0
	}
	t := s.Table(table)
	for _, c := range t.Cols {
		dst[o.L.ContentIndex(table, c.Name)] = NullCode
	}
	for _, child := range s.Children(table) {
		o.fillNull(dst, child.Name)
	}
}
