package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sam/internal/relation"
)

func fixtureSchema(rng *rand.Rand) *relation.Schema {
	mkCol := func(name string, dom, rows int) *relation.Column {
		c := relation.NewColumn(name, relation.Categorical, dom)
		for i := 0; i < rows; i++ {
			c.Append(int32(rng.Intn(dom)))
		}
		return c
	}
	a := relation.NewTable("a", mkCol("a1", 6, 40), mkCol("a2", 10, 40), mkCol("a3", 3, 40))
	b := relation.NewTable("b", mkCol("b1", 4, 60))
	b.Parent = "a"
	b.FK = make([]int64, 60)
	for i := range b.FK {
		b.FK[i] = int64(rng.Intn(40))
	}
	c := relation.NewTable("c", mkCol("c1", 8, 50), mkCol("c2", 2, 50))
	c.Parent = "a"
	c.FK = make([]int64, 50)
	for i := range c.FK {
		c.FK[i] = int64(rng.Intn(40))
	}
	return relation.MustSchema(a, b, c)
}

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		p    Predicate
		code int32
		want bool
	}{
		{Predicate{Op: LE, Code: 3}, 3, true},
		{Predicate{Op: LE, Code: 3}, 4, false},
		{Predicate{Op: GE, Code: 3}, 3, true},
		{Predicate{Op: GE, Code: 3}, 2, false},
		{Predicate{Op: EQ, Code: 3}, 3, true},
		{Predicate{Op: EQ, Code: 3}, 2, false},
		{Predicate{Op: IN, Codes: []int32{1, 5}}, 5, true},
		{Predicate{Op: IN, Codes: []int32{1, 5}}, 2, false},
	}
	for i, c := range cases {
		if got := c.p.Matches(c.code); got != c.want {
			t.Fatalf("case %d: Matches = %v want %v", i, got, c.want)
		}
	}
}

func TestPredicateRange(t *testing.T) {
	lo, hi, ok := (&Predicate{Op: LE, Code: 4}).Range(10)
	if !ok || lo != 0 || hi != 4 {
		t.Fatalf("LE range %d..%d ok=%v", lo, hi, ok)
	}
	lo, hi, ok = (&Predicate{Op: GE, Code: 4}).Range(10)
	if !ok || lo != 4 || hi != 9 {
		t.Fatalf("GE range %d..%d ok=%v", lo, hi, ok)
	}
	lo, hi, ok = (&Predicate{Op: EQ, Code: 4}).Range(10)
	if !ok || lo != 4 || hi != 4 {
		t.Fatalf("EQ range %d..%d ok=%v", lo, hi, ok)
	}
	if _, _, ok = (&Predicate{Op: IN, Codes: []int32{1}}).Range(10); ok {
		t.Fatal("IN should not report a range")
	}
}

func TestQueryValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := fixtureSchema(rng)
	good := Query{Tables: []string{"a", "b"}, Preds: []Predicate{
		{Table: "a", Column: "a1", Op: LE, Code: 2},
	}}
	if err := good.Validate(s); err != nil {
		t.Fatalf("good query rejected: %v", err)
	}
	bad := []Query{
		{},                           // no tables
		{Tables: []string{"zz"}},     // unknown table
		{Tables: []string{"a", "a"}}, // duplicate
		{Tables: []string{"b", "c"}}, // disconnected (a missing)
		{Tables: []string{"a"}, Preds: []Predicate{{Table: "b", Column: "b1", Op: EQ}}},          // pred on absent table
		{Tables: []string{"a"}, Preds: []Predicate{{Table: "a", Column: "zz", Op: EQ}}},          // unknown col
		{Tables: []string{"a"}, Preds: []Predicate{{Table: "a", Column: "a1", Op: EQ, Code: 6}}}, // out of domain
		{Tables: []string{"a"}, Preds: []Predicate{{Table: "a", Column: "a1", Op: IN}}},          // empty IN
	}
	for i, q := range bad {
		if err := q.Validate(s); err == nil {
			t.Fatalf("bad query %d accepted", i)
		}
	}
}

func TestGenerateSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := fixtureSchema(rng)
	qs := GenerateSingleRelation(rng, s.Table("a"), 200, DefaultSingleRelationOptions())
	if len(qs) != 200 {
		t.Fatalf("generated %d", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(s); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if len(q.Preds) < 1 || len(q.Preds) > 3 { // table has 3 columns, MaxFilters clamps
			t.Fatalf("query %d has %d filters", i, len(q.Preds))
		}
		// No duplicate columns per query.
		seen := map[string]bool{}
		for _, p := range q.Preds {
			if seen[p.Column] {
				t.Fatalf("query %d filters column %s twice", i, p.Column)
			}
			seen[p.Column] = true
		}
	}
}

func TestGenerateMultiRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := fixtureSchema(rng)
	qs := GenerateMultiRelation(rng, s, 300, DefaultMultiRelationOptions())
	sawJoin := false
	sawSingle := false
	for i, q := range qs {
		if err := q.Validate(s); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if len(q.Preds) == 0 {
			t.Fatalf("query %d has no filters", i)
		}
		if len(q.Tables) > 1 {
			sawJoin = true
		} else {
			sawSingle = true
		}
		if len(q.Tables) > 3 {
			t.Fatalf("query %d joins too many tables: %v", i, q.Tables)
		}
	}
	if !sawJoin || !sawSingle {
		t.Fatalf("workload lacks variety: join=%v single=%v", sawJoin, sawSingle)
	}
}

func TestCoverageRatioRestrictsLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := fixtureSchema(rng)
	opts := DefaultSingleRelationOptions()
	opts.CoverageRatio = 0.5
	qs := GenerateSingleRelation(rng, s.Table("a"), 300, opts)
	for i, q := range qs {
		for _, p := range q.Preds {
			dom := s.Table("a").Col(p.Column).NumValues
			lim := int32(float64(dom)*0.5 + 0.999999)
			if p.Code >= lim {
				t.Fatalf("query %d: literal %d beyond covered %d of %d", i, p.Code, lim, dom)
			}
		}
	}
}

func TestWorkloadSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := fixtureSchema(rng)
	qs := GenerateMultiRelation(rng, s, 20, DefaultMultiRelationOptions())
	w := &Workload{}
	for i, q := range qs {
		w.Queries = append(w.Queries, CardQuery{Query: q, Card: int64(i * 7)})
	}
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Fatalf("roundtrip length %d want %d", got.Len(), w.Len())
	}
	for i := range got.Queries {
		if got.Queries[i].Card != w.Queries[i].Card {
			t.Fatalf("query %d card mismatch", i)
		}
		if got.Queries[i].String() != w.Queries[i].String() {
			t.Fatalf("query %d body mismatch", i)
		}
	}
}

func TestPrefixAndTableSets(t *testing.T) {
	w := &Workload{Queries: []CardQuery{
		{Query: Query{Tables: []string{"a"}}},
		{Query: Query{Tables: []string{"b", "a"}}},
		{Query: Query{Tables: []string{"a", "b"}}},
		{Query: Query{Tables: []string{"a"}}},
	}}
	if w.Prefix(2).Len() != 2 || w.Prefix(99).Len() != 4 {
		t.Fatal("Prefix broken")
	}
	sets := w.TableSets()
	if len(sets) != 2 {
		t.Fatalf("TableSets = %v", sets)
	}
}

func TestExpandDisjunction(t *testing.T) {
	q1 := Query{Tables: []string{"a"}, Preds: []Predicate{{Table: "a", Column: "a1", Op: LE, Code: 1}}}
	q2 := Query{Tables: []string{"a"}, Preds: []Predicate{{Table: "a", Column: "a2", Op: EQ, Code: 3}}}
	sq, err := ExpandDisjunction([]Query{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sq) != 3 {
		t.Fatalf("expansion size %d", len(sq))
	}
	var plus, minus int
	for _, s := range sq {
		switch s.Sign {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("bad sign %d", s.Sign)
		}
	}
	if plus != 2 || minus != 1 {
		t.Fatalf("signs: +%d −%d", plus, minus)
	}
	// Error paths.
	if _, err := ExpandDisjunction(nil); err == nil {
		t.Fatal("empty disjunction accepted")
	}
	q3 := Query{Tables: []string{"b"}}
	if _, err := ExpandDisjunction([]Query{q1, q3}); err == nil {
		t.Fatal("mismatched table sets accepted")
	}
}

func TestHasTableAndPredsOn(t *testing.T) {
	q := Query{Tables: []string{"a", "b"}, Preds: []Predicate{
		{Table: "a", Column: "a1", Op: EQ, Code: 1},
		{Table: "b", Column: "b1", Op: LE, Code: 2},
		{Table: "a", Column: "a2", Op: GE, Code: 0},
	}}
	if !q.HasTable("a") || q.HasTable("zz") {
		t.Fatal("HasTable broken")
	}
	if len(q.PredsOn("a")) != 2 || len(q.PredsOn("b")) != 1 || len(q.PredsOn("c")) != 0 {
		t.Fatal("PredsOn broken")
	}
}

func TestComputeStats(t *testing.T) {
	w := &Workload{Queries: []CardQuery{
		{Query: Query{Tables: []string{"a"}, Preds: []Predicate{
			{Table: "a", Column: "x", Op: LE, Code: 3},
			{Table: "a", Column: "y", Op: EQ, Code: 1},
		}}, Card: 10},
		{Query: Query{Tables: []string{"a", "b"}, Preds: []Predicate{
			{Table: "b", Column: "z", Op: IN, Codes: []int32{1, 2}},
		}}, Card: 0},
	}}
	s := ComputeStats(w)
	if s.Queries != 2 || s.ZeroCardinality != 1 || s.MaxCardinality != 10 {
		t.Fatalf("stats %+v", s)
	}
	if s.FiltersPerQuery[2] != 1 || s.FiltersPerQuery[1] != 1 {
		t.Fatalf("filter histogram %v", s.FiltersPerQuery)
	}
	if s.TablesPerQuery[1] != 1 || s.TablesPerQuery[2] != 1 {
		t.Fatalf("table histogram %v", s.TablesPerQuery)
	}
	if s.OpCounts[LE] != 1 || s.OpCounts[EQ] != 1 || s.OpCounts[IN] != 1 {
		t.Fatalf("op counts %v", s.OpCounts)
	}
	if len(s.ColumnCounts) != 3 {
		t.Fatalf("column counts %v", s.ColumnCounts)
	}
	out := s.String()
	for _, want := range []string{"queries: 2", "filters/query", "operators"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered stats missing %q:\n%s", want, out)
		}
	}
}

func TestCoverageRatios(t *testing.T) {
	w := &Workload{Queries: []CardQuery{
		{Query: Query{Tables: []string{"a"}, Preds: []Predicate{
			{Table: "a", Column: "x", Op: LE, Code: 2},
			{Table: "a", Column: "x", Op: GE, Code: 7},
		}}},
		{Query: Query{Tables: []string{"a"}, Preds: []Predicate{
			{Table: "a", Column: "y", Op: IN, Codes: []int32{0, 9}},
		}}},
	}}
	ratios := CoverageRatios(w, map[string]int{"a.x": 10, "a.y": 10})
	// x literals span 2..7 → 6/10; y spans 0..9 → full.
	if math.Abs(ratios["a.x"]-0.6) > 1e-12 {
		t.Fatalf("x coverage %v", ratios["a.x"])
	}
	if ratios["a.y"] != 1 {
		t.Fatalf("y coverage %v", ratios["a.y"])
	}
	if _, ok := ratios["a.unknown"]; ok {
		t.Fatal("unfiltered column reported")
	}
}

func TestGenerateWithINProb(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := fixtureSchema(rng)
	opts := DefaultSingleRelationOptions()
	opts.INProb = 0.5
	qs := GenerateSingleRelation(rng, s.Table("a"), 200, opts)
	sawIN := false
	for i, q := range qs {
		if err := q.Validate(s); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		for _, p := range q.Preds {
			if p.Op == IN {
				sawIN = true
				if len(p.Codes) == 0 || len(p.Codes) > 4 {
					t.Fatalf("IN list size %d", len(p.Codes))
				}
			}
		}
	}
	if !sawIN {
		t.Fatal("INProb produced no IN predicates")
	}
}
