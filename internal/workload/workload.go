// Package workload models query workloads: conjunctive predicates over
// content columns, optional foreign-key joins over a connected subtree of
// the schema, and the (query, cardinality) pairs SAM trains from. It also
// implements the workload generators the paper describes in §5.1 and the
// inclusion–exclusion expansion that reduces disjunctions to conjunctive
// constraints.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sam/internal/relation"
)

// Op is a predicate operator. The paper supports range constraints (≤, ≥),
// equality, and IN clauses.
type Op int

const (
	// LE matches codes ≤ the literal.
	LE Op = iota
	// GE matches codes ≥ the literal.
	GE
	// EQ matches codes equal to the literal.
	EQ
	// IN matches codes contained in the literal set.
	IN
)

// String returns the SQL-style operator symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	case IN:
		return "IN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a constraint on one content column of one table. Literals
// are value codes (see relation.Column).
type Predicate struct {
	Table  string  `json:"table"`
	Column string  `json:"column"`
	Op     Op      `json:"op"`
	Code   int32   `json:"code,omitempty"`
	Codes  []int32 `json:"codes,omitempty"` // IN only
}

// Matches reports whether a value code satisfies the predicate.
func (p *Predicate) Matches(code int32) bool {
	switch p.Op {
	case LE:
		return code <= p.Code
	case GE:
		return code >= p.Code
	case EQ:
		return code == p.Code
	case IN:
		for _, c := range p.Codes {
			if c == code {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("workload: unknown op %v", p.Op))
	}
}

// Range returns the inclusive code interval [lo, hi] implied by the
// predicate for interval-based reasoning, and ok=false for IN predicates
// (which are unions of points).
func (p *Predicate) Range(domain int) (lo, hi int32, ok bool) {
	switch p.Op {
	case LE:
		return 0, p.Code, true
	case GE:
		return p.Code, int32(domain - 1), true
	case EQ:
		return p.Code, p.Code, true
	default:
		return 0, 0, false
	}
}

// Query is a conjunction of predicates over a set of joined relations. The
// relations must form a connected subtree of the schema's join tree; the
// join conditions are implied by the schema's FK edges (the paper's
// assumption that join keys are never filtered).
type Query struct {
	Tables []string    `json:"tables"`
	Preds  []Predicate `json:"preds"`
}

// HasTable reports whether name participates in the query.
func (q *Query) HasTable(name string) bool {
	for _, t := range q.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// PredsOn returns the predicates restricted to the given table.
func (q *Query) PredsOn(table string) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if p.Table == table {
			out = append(out, p)
		}
	}
	return out
}

// Validate checks the query against the schema: known tables and columns,
// literals in domain, connected join subtree.
func (q *Query) Validate(s *relation.Schema) error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("workload: query with no tables")
	}
	inQuery := make(map[string]bool, len(q.Tables))
	for _, name := range q.Tables {
		if s.Table(name) == nil {
			return fmt.Errorf("workload: unknown table %s", name)
		}
		if inQuery[name] {
			return fmt.Errorf("workload: duplicate table %s", name)
		}
		inQuery[name] = true
	}
	if len(q.Tables) > 1 {
		// Connectivity on the join tree: every table except one must have
		// its parent in the query (a connected subtree of a tree has
		// exactly one "local root").
		localRoots := 0
		for _, name := range q.Tables {
			parent := s.Table(name).Parent
			if parent == "" || !inQuery[parent] {
				localRoots++
			}
		}
		if localRoots != 1 {
			return fmt.Errorf("workload: tables %v do not form a connected join subtree", q.Tables)
		}
	}
	for _, p := range q.Preds {
		if !inQuery[p.Table] {
			return fmt.Errorf("workload: predicate on table %s not in query", p.Table)
		}
		col := s.Table(p.Table).Col(p.Column)
		if col == nil {
			return fmt.Errorf("workload: unknown column %s.%s", p.Table, p.Column)
		}
		check := func(code int32) error {
			if code < 0 || int(code) >= col.NumValues {
				return fmt.Errorf("workload: literal %d outside domain of %s.%s", code, p.Table, p.Column)
			}
			return nil
		}
		if p.Op == IN {
			if len(p.Codes) == 0 {
				return fmt.Errorf("workload: empty IN list on %s.%s", p.Table, p.Column)
			}
			for _, c := range p.Codes {
				if err := check(c); err != nil {
					return err
				}
			}
		} else if err := check(p.Code); err != nil {
			return err
		}
	}
	return nil
}

// String renders the query as JSON.
func (q *Query) String() string {
	b, _ := json.Marshal(q)
	return string(b)
}

// CardQuery is a query together with its observed cardinality — one
// cardinality constraint of the input workload.
type CardQuery struct {
	Query
	Card int64 `json:"card"`
}

// Workload is an ordered list of cardinality constraints.
type Workload struct {
	Queries []CardQuery `json:"queries"`
}

// Len returns the number of constraints.
func (w *Workload) Len() int { return len(w.Queries) }

// Prefix returns a workload containing the first n constraints (or all,
// when n exceeds the length). The underlying slice is shared.
func (w *Workload) Prefix(n int) *Workload {
	if n > len(w.Queries) {
		n = len(w.Queries)
	}
	return &Workload{Queries: w.Queries[:n]}
}

// TableSets returns the distinct joined-relation sets appearing in the
// workload (sorted for determinism) — the "views" a PGM baseline must model
// separately.
func (w *Workload) TableSets() [][]string {
	seen := map[string][]string{}
	for i := range w.Queries {
		ts := append([]string(nil), w.Queries[i].Tables...)
		sort.Strings(ts)
		key := fmt.Sprint(ts)
		if _, ok := seen[key]; !ok {
			seen[key] = ts
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// Write serializes the workload as JSON.
func (w *Workload) Write(out io.Writer) error {
	enc := json.NewEncoder(out)
	return enc.Encode(w)
}

// Read deserializes a workload written by Write.
func Read(in io.Reader) (*Workload, error) {
	var w Workload
	if err := json.NewDecoder(in).Decode(&w); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	return &w, nil
}

// SignedQuery is a conjunctive query with a ±1 coefficient, produced by
// inclusion–exclusion expansion of a disjunction.
type SignedQuery struct {
	Query
	Sign int // +1 or −1
}

// ExpandDisjunction rewrites (c₁ ∨ c₂ ∨ … ∨ c_k), each clause a conjunctive
// Query over the same table set, into signed conjunctive queries via
// inclusion–exclusion: Card(∨ cᵢ) = Σ over nonempty S (−1)^{|S|+1}
// Card(∧_{i∈S} cᵢ). The returned queries conjoin the predicates of the
// chosen clauses. k is capped at 20 to bound the 2^k expansion.
func ExpandDisjunction(clauses []Query) ([]SignedQuery, error) {
	k := len(clauses)
	if k == 0 {
		return nil, fmt.Errorf("workload: empty disjunction")
	}
	if k > 20 {
		return nil, fmt.Errorf("workload: disjunction of %d clauses exceeds expansion limit", k)
	}
	tables := clauses[0].Tables
	for _, c := range clauses[1:] {
		if len(c.Tables) != len(tables) {
			return nil, fmt.Errorf("workload: disjunction clauses over different table sets")
		}
		for i := range tables {
			if c.Tables[i] != tables[i] {
				return nil, fmt.Errorf("workload: disjunction clauses over different table sets")
			}
		}
	}
	var out []SignedQuery
	for mask := 1; mask < 1<<k; mask++ {
		var preds []Predicate
		bits := 0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				bits++
				preds = append(preds, clauses[i].Preds...)
			}
		}
		sign := 1
		if bits%2 == 0 {
			sign = -1
		}
		out = append(out, SignedQuery{
			Query: Query{Tables: append([]string(nil), tables...), Preds: preds},
			Sign:  sign,
		})
	}
	return out, nil
}
