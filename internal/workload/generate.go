package workload

import (
	"fmt"
	"math/rand"

	"sam/internal/relation"
)

// GenOptions controls workload generation.
type GenOptions struct {
	// MinFilters/MaxFilters bound the number of filters per single-relation
	// query. The paper draws 1..5.
	MinFilters, MaxFilters int
	// MaxJoins bounds the number of join edges in multi-relation queries
	// (paper: 0..2 for the IMDB training workload).
	MaxJoins int
	// CoverageRatio, in (0, 1], restricts filter literals of every column to
	// the first ⌈ratio·domain⌉ codes (Figure 8's coverage experiment).
	// 0 means full coverage.
	CoverageRatio float64
	// INProb is the probability that a filter becomes an IN clause with
	// 1–4 sampled codes instead of a {≤, =, ≥} comparison. The paper's
	// workloads use comparisons only (INProb 0), but IN clauses are part
	// of the supported query class.
	INProb float64
}

// DefaultSingleRelationOptions mirrors §5.1: 1–5 filters, ops {≤, =, ≥},
// literals from uniformly sampled tuples.
func DefaultSingleRelationOptions() GenOptions {
	return GenOptions{MinFilters: 1, MaxFilters: 5}
}

// DefaultMultiRelationOptions mirrors the MSCN-style IMDB workload: 0–2
// joins, 0..#cols filters per relation.
func DefaultMultiRelationOptions() GenOptions {
	return GenOptions{MaxJoins: 2}
}

// coveredDomain returns the number of codes available for literals on a
// column under the coverage ratio.
func (o GenOptions) coveredDomain(domain int) int {
	if o.CoverageRatio <= 0 || o.CoverageRatio >= 1 {
		return domain
	}
	d := int(float64(domain)*o.CoverageRatio + 0.999999)
	if d < 1 {
		d = 1
	}
	return d
}

// GenerateSingleRelation draws n queries against the (single) table using
// the paper's procedure: the filter count is uniform in
// [MinFilters, MaxFilters], the filtered columns are a uniform sample
// without replacement, each operator is uniform over {≤, =, ≥}, and the
// literals come from a uniformly sampled data tuple (truncated to the
// covered sub-domain when a coverage ratio is set).
func GenerateSingleRelation(rng *rand.Rand, t *relation.Table, n int, opts GenOptions) []Query {
	if t.NumRows() == 0 {
		panic(fmt.Sprintf("workload: table %s is empty", t.Name))
	}
	if opts.MinFilters < 1 {
		opts.MinFilters = 1
	}
	maxF := opts.MaxFilters
	if maxF > len(t.Cols) {
		maxF = len(t.Cols)
	}
	if maxF < opts.MinFilters {
		maxF = opts.MinFilters
	}
	ops := []Op{LE, EQ, GE}
	queries := make([]Query, 0, n)
	for len(queries) < n {
		nf := opts.MinFilters + rng.Intn(maxF-opts.MinFilters+1)
		cols := rng.Perm(len(t.Cols))[:nf]
		row := rng.Intn(t.NumRows())
		q := Query{Tables: []string{t.Name}}
		for _, ci := range cols {
			col := t.Cols[ci]
			q.Preds = append(q.Preds, drawPredicate(rng, t.Name, col, row, ops, opts))
		}
		queries = append(queries, q)
	}
	return queries
}

// GenerateMultiRelation draws n queries against a tree schema the way the
// MSCN/IMDB training workload is built: a connected join subtree with at
// most MaxJoins edges is chosen, then each participating relation receives
// between 0 and #cols filters with literals from a sampled tuple of that
// relation. Every query keeps at least one filter overall so the constraint
// is informative.
func GenerateMultiRelation(rng *rand.Rand, s *relation.Schema, n int, opts GenOptions) []Query {
	ops := []Op{LE, EQ, GE}
	queries := make([]Query, 0, n)
	for len(queries) < n {
		tables := sampleJoinSubtree(rng, s, opts.MaxJoins)
		q := Query{Tables: tables}
		for _, name := range tables {
			t := s.Table(name)
			if t.NumRows() == 0 {
				continue
			}
			nf := rng.Intn(len(t.Cols) + 1)
			if nf == 0 {
				continue
			}
			cols := rng.Perm(len(t.Cols))[:nf]
			row := rng.Intn(t.NumRows())
			for _, ci := range cols {
				q.Preds = append(q.Preds, drawPredicate(rng, name, t.Cols[ci], row, ops, opts))
			}
		}
		if len(q.Preds) == 0 {
			continue
		}
		queries = append(queries, q)
	}
	return queries
}

// drawPredicate builds one filter on col: the literal comes from the
// sampled data row (clamped into the covered sub-domain), the operator is
// uniform over {≤, =, ≥}, or — with probability INProb — an IN clause of
// 1–4 codes seeded by the tuple's value.
func drawPredicate(rng *rand.Rand, table string, col *relation.Column, row int, ops []Op, opts GenOptions) Predicate {
	lim := opts.coveredDomain(col.NumValues)
	clamp := func(code int32) int32 {
		if int(code) >= lim {
			return int32(rng.Intn(lim))
		}
		return code
	}
	code := clamp(col.Data[row])
	if opts.INProb > 0 && rng.Float64() < opts.INProb {
		n := 1 + rng.Intn(4)
		codes := []int32{code}
		seen := map[int32]bool{code: true}
		for len(codes) < n {
			c := clamp(col.Data[rng.Intn(len(col.Data))])
			if !seen[c] {
				seen[c] = true
				codes = append(codes, c)
			}
			if len(seen) >= lim {
				break
			}
		}
		return Predicate{Table: table, Column: col.Name, Op: IN, Codes: codes}
	}
	return Predicate{Table: table, Column: col.Name, Op: ops[rng.Intn(len(ops))], Code: code}
}

// sampleJoinSubtree picks a connected subtree of the join tree with at most
// maxJoins edges: start from a uniform table, then repeatedly attach a
// uniform neighbouring table (parent or child) of the current subtree.
func sampleJoinSubtree(rng *rand.Rand, s *relation.Schema, maxJoins int) []string {
	start := s.Tables[rng.Intn(len(s.Tables))].Name
	chosen := []string{start}
	inSet := map[string]bool{start: true}
	joins := 0
	if maxJoins > 0 {
		joins = rng.Intn(maxJoins + 1)
	}
	for e := 0; e < joins; e++ {
		var frontier []string
		for name := range inSet {
			t := s.Table(name)
			if t.Parent != "" && !inSet[t.Parent] {
				frontier = append(frontier, t.Parent)
			}
			for _, c := range s.Children(name) {
				if !inSet[c.Name] {
					frontier = append(frontier, c.Name)
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		// Deterministic iteration order: frontier assembled from map; sort.
		sortStrings(frontier)
		pick := frontier[rng.Intn(len(frontier))]
		chosen = append(chosen, pick)
		inSet[pick] = true
	}
	return chosen
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
