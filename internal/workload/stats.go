package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a workload's shape: the signal a practitioner checks
// before training (coverage and variety drive recovery quality, §5.7–5.8).
type Stats struct {
	Queries int
	// FiltersPerQuery is a histogram of predicate counts.
	FiltersPerQuery map[int]int
	// TablesPerQuery is a histogram of joined-relation counts.
	TablesPerQuery map[int]int
	// OpCounts counts predicates per operator.
	OpCounts map[Op]int
	// ColumnCounts counts predicates per "table.column".
	ColumnCounts map[string]int
	// ZeroCardinality is the number of constraints whose recorded result
	// is empty.
	ZeroCardinality int
	// MaxCardinality is the largest recorded result.
	MaxCardinality int64
}

// ComputeStats aggregates the workload's descriptive statistics.
func ComputeStats(w *Workload) Stats {
	s := Stats{
		FiltersPerQuery: map[int]int{},
		TablesPerQuery:  map[int]int{},
		OpCounts:        map[Op]int{},
		ColumnCounts:    map[string]int{},
	}
	s.Queries = w.Len()
	for i := range w.Queries {
		cq := &w.Queries[i]
		s.FiltersPerQuery[len(cq.Preds)]++
		s.TablesPerQuery[len(cq.Tables)]++
		for _, p := range cq.Preds {
			s.OpCounts[p.Op]++
			s.ColumnCounts[p.Table+"."+p.Column]++
		}
		if cq.Card == 0 {
			s.ZeroCardinality++
		}
		if cq.Card > s.MaxCardinality {
			s.MaxCardinality = cq.Card
		}
	}
	return s
}

// String renders a compact multi-line report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "queries: %d (zero-result: %d, max card: %d)\n",
		s.Queries, s.ZeroCardinality, s.MaxCardinality)
	fmt.Fprintf(&sb, "filters/query: %s\n", histLine(s.FiltersPerQuery))
	fmt.Fprintf(&sb, "tables/query:  %s\n", histLine(s.TablesPerQuery))
	ops := make([]Op, 0, len(s.OpCounts))
	for op := range s.OpCounts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	var parts []string
	for _, op := range ops {
		parts = append(parts, fmt.Sprintf("%v:%d", op, s.OpCounts[op]))
	}
	fmt.Fprintf(&sb, "operators:     %s\n", strings.Join(parts, " "))
	fmt.Fprintf(&sb, "filtered columns: %d distinct\n", len(s.ColumnCounts))
	return sb.String()
}

func histLine(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d:%d", k, h[k]))
	}
	return strings.Join(parts, " ")
}

// CoverageRatios estimates, per filtered column, the fraction of its
// domain touched by the workload's literals — the quantity Figure 8
// varies. domains maps "table.column" to the column's domain size.
func CoverageRatios(w *Workload, domains map[string]int) map[string]float64 {
	seen := map[string]map[int32]bool{}
	note := func(key string, code int32) {
		m, ok := seen[key]
		if !ok {
			m = map[int32]bool{}
			seen[key] = m
		}
		m[code] = true
	}
	for i := range w.Queries {
		for _, p := range w.Queries[i].Preds {
			key := p.Table + "." + p.Column
			if p.Op == IN {
				for _, c := range p.Codes {
					note(key, c)
				}
			} else {
				note(key, p.Code)
			}
		}
	}
	out := make(map[string]float64, len(seen))
	for key, codes := range seen {
		dom := domains[key]
		if dom <= 0 {
			continue
		}
		// Literals of range predicates cover the span between the extreme
		// constants, not just the points.
		var lo, hi int32 = int32(dom), -1
		for c := range codes {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi < lo {
			continue
		}
		out[key] = float64(hi-lo+1) / float64(dom)
	}
	return out
}
