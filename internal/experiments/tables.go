package experiments

import (
	"fmt"

	"sam/internal/metrics"
)

// Table1 — Q-Error of input queries at full workload scale on the
// single-relation datasets (SAM only; PGM cannot process workloads this
// large).
func Table1(c *Context) *Report {
	r := &Report{
		ID:     "tab1",
		Title:  "Q-Error of input queries — full scale (Census, DMV)",
		Header: []string{"Model", "Dataset", "Median", "75th", "90th", "Mean"},
	}
	for _, b := range []*Bundle{c.Census(), c.DMV()} {
		db, _ := c.SAMDB(b, 0, 0, true)
		qe := c.qErrorsOn(db, sampleQueries(b.Train, c.Scale.EvalInputQ))
		r.Rows = append(r.Rows, append([]string{"SAM", b.Name}, summaryCells(metrics.Summarize(qe), false)...))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("input workloads: census %d, dmv %d queries; evaluated on %d sampled constraints",
		c.Census().Train.Len(), c.DMV().Train.Len(), c.Scale.EvalInputQ))
	return r
}

// Table2 — Q-Error on the very small workloads PGM can fully process
// within its time budget, both methods on the same constraints.
func Table2(c *Context) *Report {
	r := &Report{
		ID:     "tab2",
		Title:  "Q-Error of very few input queries (PGM-feasible workloads)",
		Header: []string{"Model", "Dataset", "#Q", "Median", "75th", "90th", "Mean"},
	}
	for _, item := range []struct {
		b    *Bundle
		tiny int
	}{{c.Census(), c.Scale.TinyCensusQ}, {c.DMV(), c.Scale.TinyDMVQ}} {
		b := item.b
		queries := b.Train.Prefix(item.tiny).Queries
		if db, _, err := c.PGMDB(b, item.tiny); err == nil {
			qe := c.qErrorsOn(db, queries)
			r.Rows = append(r.Rows, append([]string{"PGM", b.Name, fmt.Sprint(item.tiny)},
				summaryCells(metrics.Summarize(qe), false)...))
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf("PGM failed on %s: %v", b.Name, err))
		}
		db, _ := c.SAMDB(b, item.tiny, 0, true)
		qe := c.qErrorsOn(db, queries)
		r.Rows = append(r.Rows, append([]string{"SAM", b.Name, fmt.Sprint(item.tiny)},
			summaryCells(metrics.Summarize(qe), false)...))
	}
	return r
}

// Table3 — Q-Error of input queries on IMDB at full workload scale: SAM
// with and without Group-and-Merge.
func Table3(c *Context) *Report {
	r := &Report{
		ID:     "tab3",
		Title:  "Q-Error of input queries on IMDB — full scale",
		Header: []string{"Model", "Median", "75th", "90th", "Mean", "Max"},
	}
	b := c.IMDB()
	eval := sampleQueries(b.Train, c.Scale.EvalInputQ)
	for _, gam := range []bool{false, true} {
		db, _ := c.SAMDB(b, 0, c.Scale.IMDBSamples, gam)
		name := "SAM"
		if !gam {
			name = "SAM w/o Group-and-Merge"
		}
		qe := c.qErrorsOn(db, eval)
		r.Rows = append(r.Rows, append([]string{name}, summaryCells(metrics.Summarize(qe), true)...))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("input workload: %d queries; evaluated on %d sampled constraints",
		b.Train.Len(), len(eval)))
	return r
}

// Table4 — Q-Error of the small IMDB workload all three methods can
// process: PGM, SAM w/o Group-and-Merge, SAM.
func Table4(c *Context) *Report {
	r := &Report{
		ID:     "tab4",
		Title:  fmt.Sprintf("Q-Error of %d input queries on IMDB", c.Scale.SmallIMDBQ),
		Header: []string{"Model", "Median", "75th", "90th", "Mean", "Max"},
	}
	b := c.IMDB()
	n := c.Scale.SmallIMDBQ
	queries := b.Train.Prefix(n).Queries
	if db, _, err := c.PGMDB(b, n); err == nil {
		qe := c.qErrorsOn(db, queries)
		r.Rows = append(r.Rows, append([]string{"PGM"}, summaryCells(metrics.Summarize(qe), true)...))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf("PGM failed: %v", err))
	}
	for _, gam := range []bool{false, true} {
		db, _ := c.SAMDB(b, n, c.Scale.IMDBSamples, gam)
		name := "SAM"
		if !gam {
			name = "SAM w/o Group-and-Merge"
		}
		qe := c.qErrorsOn(db, queries)
		r.Rows = append(r.Rows, append([]string{name}, summaryCells(metrics.Summarize(qe), true)...))
	}
	return r
}

// Table5 — Q-Error of unseen test queries on the single-relation
// datasets: PGM (trained on the tiny workload it can handle) vs SAM
// (trained on the full workload). The fixed-processing-time protocol of
// §5.1.
func Table5(c *Context) *Report {
	r := &Report{
		ID:     "tab5",
		Title:  "Q-Error of test queries (database recovery)",
		Header: []string{"Model", "Dataset", "Median", "75th", "90th", "Mean"},
	}
	for _, item := range []struct {
		b    *Bundle
		tiny int
	}{{c.Census(), c.Scale.TinyCensusQ}, {c.DMV(), c.Scale.TinyDMVQ}} {
		b := item.b
		if db, _, err := c.PGMDB(b, item.tiny); err == nil {
			qe := c.qErrorsOn(db, b.Test.Queries)
			r.Rows = append(r.Rows, append([]string{"PGM", b.Name}, summaryCells(metrics.Summarize(qe), false)...))
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf("PGM failed on %s: %v", b.Name, err))
		}
		db, _ := c.SAMDB(b, 0, 0, true)
		qe := c.qErrorsOn(db, b.Test.Queries)
		r.Rows = append(r.Rows, append([]string{"SAM", b.Name}, summaryCells(metrics.Summarize(qe), false)...))
	}
	r.Notes = append(r.Notes,
		"fixed-time protocol: PGM processes only the workload prefix it can finish; SAM processes the full workload")
	return r
}

// Table6 — Q-Error of JOB-light-style queries on IMDB: PGM, SAM w/o
// Group-and-Merge, SAM.
func Table6(c *Context) *Report {
	r := &Report{
		ID:     "tab6",
		Title:  "Q-Error of JOB-light queries on IMDB",
		Header: []string{"Model", "Median", "75th", "90th", "Mean", "Max"},
	}
	b := c.IMDB()
	if db, _, err := c.PGMDB(b, c.Scale.SmallIMDBQ); err == nil {
		qe := c.qErrorsOn(db, b.Test.Queries)
		r.Rows = append(r.Rows, append([]string{"PGM"}, summaryCells(metrics.Summarize(qe), true)...))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf("PGM failed: %v", err))
	}
	for _, gam := range []bool{false, true} {
		db, _ := c.SAMDB(b, 0, c.Scale.IMDBSamples, gam)
		name := "SAM"
		if !gam {
			name = "SAM w/o Group-and-Merge"
		}
		qe := c.qErrorsOn(db, b.Test.Queries)
		r.Rows = append(r.Rows, append([]string{name}, summaryCells(metrics.Summarize(qe), true)...))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%d JOB-light-style queries joining up to %d relations",
		b.Test.Len(), len(b.Orig.Tables)))
	return r
}

// Table7 — cross entropy between the generated and original relations
// (title for IMDB, per Eq. 1).
func Table7(c *Context) *Report {
	r := &Report{
		ID:     "tab7",
		Title:  "Cross entropy of the generated relation (bits)",
		Header: []string{"Model", "Census", "DMV", "IMDB(title)"},
	}
	pgmCells := []string{"PGM"}
	samCells := []string{"SAM"}
	items := []struct {
		b     *Bundle
		tiny  int
		table string
	}{
		{c.Census(), c.Scale.TinyCensusQ, "census"},
		{c.DMV(), c.Scale.TinyDMVQ, "dmv"},
		{c.IMDB(), c.Scale.SmallIMDBQ, "title"},
	}
	for _, item := range items {
		b := item.b
		orig := b.Orig.Table(item.table)
		if db, _, err := c.PGMDB(b, item.tiny); err == nil {
			pgmCells = append(pgmCells, fmtG(metrics.CrossEntropyBits(orig, db.Table(item.table))))
		} else {
			pgmCells = append(pgmCells, "fail")
		}
		db, _ := c.SAMDB(b, 0, 0, true)
		samCells = append(samCells, fmtG(metrics.CrossEntropyBits(orig, db.Table(item.table))))
	}
	r.Rows = append(r.Rows, pgmCells, samCells)
	return r
}

// Table8 — performance deviation of test queries on the single-relation
// datasets, in milliseconds, using the in-memory engine's execution
// latency (the PostgreSQL substitute).
func Table8(c *Context) *Report {
	r := &Report{
		ID:     "tab8",
		Title:  "Performance deviation of test queries (ms)",
		Header: []string{"Model", "Dataset", "Median", "75th", "90th", "Mean"},
	}
	for _, item := range []struct {
		b    *Bundle
		tiny int
	}{{c.Census(), c.Scale.TinyCensusQ}, {c.DMV(), c.Scale.TinyDMVQ}} {
		b := item.b
		origLat := latenciesOn(b.Orig, b.Test.Queries, c.Scale.LatencyReps)
		if db, _, err := c.PGMDB(b, item.tiny); err == nil {
			dev := metrics.Deviations(origLat, latenciesOn(db, b.Test.Queries, c.Scale.LatencyReps))
			r.Rows = append(r.Rows, append([]string{"PGM", b.Name}, summaryCells(metrics.Summarize(dev), false)...))
		}
		db, _ := c.SAMDB(b, 0, 0, true)
		dev := metrics.Deviations(origLat, latenciesOn(db, b.Test.Queries, c.Scale.LatencyReps))
		r.Rows = append(r.Rows, append([]string{"SAM", b.Name}, summaryCells(metrics.Summarize(dev), false)...))
	}
	r.Notes = append(r.Notes, "latencies from the in-memory engine (min over repetitions); see DESIGN.md substitutions")
	return r
}

// Table9 — performance deviation of the JOB-light workload on IMDB (ms).
func Table9(c *Context) *Report {
	r := &Report{
		ID:     "tab9",
		Title:  "Performance deviation of JOB-light queries on IMDB (ms)",
		Header: []string{"Model", "Median", "75th", "90th", "Mean", "Max"},
	}
	b := c.IMDB()
	origLat := latenciesOn(b.Orig, b.Test.Queries, c.Scale.LatencyReps)
	if db, _, err := c.PGMDB(b, c.Scale.SmallIMDBQ); err == nil {
		dev := metrics.Deviations(origLat, latenciesOn(db, b.Test.Queries, c.Scale.LatencyReps))
		r.Rows = append(r.Rows, append([]string{"PGM"}, summaryCells(metrics.Summarize(dev), true)...))
	}
	db, _ := c.SAMDB(b, 0, c.Scale.IMDBSamples, true)
	dev := metrics.Deviations(origLat, latenciesOn(db, b.Test.Queries, c.Scale.LatencyReps))
	r.Rows = append(r.Rows, append([]string{"SAM"}, summaryCells(metrics.Summarize(dev), true)...))
	return r
}
