package experiments

import (
	"fmt"
	"strings"

	"sam/internal/engine"
	"sam/internal/metrics"
	"sam/internal/relation"
	"sam/internal/workload"
)

// Report is one experiment's printable result.
type Report struct {
	ID     string // e.g. "tab1", "fig5"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// fmtG renders a metric value compactly (matching the paper's mix of fixed
// and scientific notation).
func fmtG(v float64) string {
	switch {
	case v >= 1e5:
		return fmt.Sprintf("%.1e", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v < 0.1 && v != 0:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// summaryCells renders a Summary as table cells.
func summaryCells(s metrics.Summary, withMax bool) []string {
	cells := []string{fmtG(s.Median), fmtG(s.P75), fmtG(s.P90), fmtG(s.Mean)}
	if withMax {
		cells = append(cells, fmtG(s.Max))
	}
	return cells
}

// qErrorsOn executes each constraint's query on db and returns the
// Q-Errors against the recorded cardinalities. Each evaluation records an
// "eval" span under the context's trace and streams per-query events to
// the context's hooks.
func (c *Context) qErrorsOn(db *relation.Schema, queries []workload.CardQuery) []float64 {
	span := c.Span.Child("eval")
	span.SetAttr("queries", len(queries))
	out := engine.EvalWorkload(db, queries, c.Hooks)
	span.End()
	return out
}

// sampleQueries returns up to n evenly spaced constraints from the
// workload (the paper evaluates a random sample of 1000 input queries on
// IMDB; even spacing keeps it deterministic).
func sampleQueries(wl *workload.Workload, n int) []workload.CardQuery {
	if n <= 0 || wl.Len() <= n {
		return wl.Queries
	}
	out := make([]workload.CardQuery, 0, n)
	step := float64(wl.Len()) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, wl.Queries[int(float64(i)*step)])
	}
	return out
}

// latenciesOn measures per-query execution latency (min over reps) in
// nanoseconds, using the output-walking executor so latency scales with
// result size like a row-producing DBMS.
func latenciesOn(db *relation.Schema, queries []workload.CardQuery, reps int) []int64 {
	if reps < 1 {
		reps = 1
	}
	out := make([]int64, len(queries))
	for i := range queries {
		best := int64(1 << 62)
		for r := 0; r < reps; r++ {
			_, d := engine.TimedEnumerate(db, &queries[i].Query)
			if d.Nanoseconds() < best {
				best = d.Nanoseconds()
			}
		}
		out[i] = best
	}
	return out
}
