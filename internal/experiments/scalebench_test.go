package experiments

import (
	"strings"
	"testing"
)

func scaleReport() *ScaleBenchReport {
	return &ScaleBenchReport{
		Rows:          1_000_000,
		RowsPerSec:    50_000,
		PeakHeapBytes: 200 << 20,
		PeakRSSBytes:  300 << 20,
	}
}

func TestCompareScalePasses(t *testing.T) {
	rep := scaleReport()
	if v := CompareScale(rep, 40_000, 512<<20); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Zero disables each gate independently.
	rep.RowsPerSec = 1
	rep.PeakHeapBytes = 1 << 40
	rep.PeakRSSBytes = 1 << 40
	if v := CompareScale(rep, 0, 0); len(v) != 0 {
		t.Fatalf("disabled gates still fired: %v", v)
	}
}

func TestCompareScaleCatchesEveryBreach(t *testing.T) {
	rep := scaleReport()
	rep.RowsPerSec = 10_000
	rep.PeakHeapBytes = 600 << 20
	rep.PeakRSSBytes = 700 << 20
	v := CompareScale(rep, 40_000, 512<<20)
	if len(v) != 3 {
		t.Fatalf("want 3 violations, got %d: %v", len(v), v)
	}
	for _, frag := range []string{"rows/sec below required", "peak heap", "peak RSS"} {
		found := false
		for _, s := range v {
			if strings.Contains(s, frag) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no violation mentioning %q in %v", frag, v)
		}
	}
}

func TestCompareScaleSkipsMissingRSS(t *testing.T) {
	rep := scaleReport()
	rep.PeakRSSBytes = 0 // platform without /proc/self/status
	rep.PeakHeapBytes = 600 << 20
	v := CompareScale(rep, 0, 512<<20)
	if len(v) != 1 || !strings.Contains(v[0], "peak heap") {
		t.Fatalf("want only the heap breach, got %v", v)
	}
}

func TestRunScaleBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 20k rows through the streaming pipeline")
	}
	rep, err := RunScaleBench(ScaleBenchConfig{
		Rows:       20_000,
		Shards:     3,
		Workers:    2,
		Partitions: 8,
		Dir:        t.TempDir() + "/scale",
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("RunScaleBench: %v", err)
	}
	if rep.Rows != 20_000 || rep.Shards != 3 {
		t.Fatalf("report rows/shards = %d/%d, want 20000/3", rep.Rows, rep.Shards)
	}
	if rep.RowsPerSec <= 0 || rep.SampleRowsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", rep)
	}
	if rep.PeakHeapBytes <= 0 {
		t.Fatalf("heap watermark never sampled: %+v", rep)
	}
	if rep.ShardBytes <= 0 {
		t.Fatalf("shard bytes not recorded: %+v", rep)
	}
	if rep.Meta.Commit == "" && rep.Meta.GoVersion == "" {
		t.Fatalf("report meta not stamped: %+v", rep.Meta)
	}
	buf, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, key := range []string{"rows_per_sec", "peak_heap_bytes", "shard_bytes", "meta"} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("JSON missing %q:\n%s", key, buf)
		}
	}
}
