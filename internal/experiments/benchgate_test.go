package experiments

import (
	"strings"
	"testing"
)

func gateReport(results ...TensorBenchResult) *TensorBenchReport {
	return &TensorBenchReport{Results: results}
}

func TestCompareBenchPasses(t *testing.T) {
	base := gateReport(
		TensorBenchResult{Name: "matmul", NsOp: 1000, AllocsOp: 0},
		TensorBenchResult{Name: "sample_batched", NsOp: 100, AllocsOp: 0, Speedup: 3.5},
	)
	cur := gateReport(
		TensorBenchResult{Name: "matmul", NsOp: 1200, AllocsOp: 0}, // +20% < 25% tolerance
		TensorBenchResult{Name: "sample_batched", NsOp: 90, AllocsOp: 0, Speedup: 3.4},
	)
	if v := CompareBench(base, cur, 0.25, map[string]float64{"sample_batched": 3}); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareBenchCatchesEveryBreach(t *testing.T) {
	base := gateReport(
		TensorBenchResult{Name: "matmul", NsOp: 1000, AllocsOp: 0},
		TensorBenchResult{Name: "train", NsOp: 500, AllocsOp: 10},
		TensorBenchResult{Name: "gone", NsOp: 10, AllocsOp: 0},
	)
	cur := gateReport(
		TensorBenchResult{Name: "matmul", NsOp: 1300, AllocsOp: 0}, // +30% > tolerance
		TensorBenchResult{Name: "train", NsOp: 400, AllocsOp: 12},  // alloc growth
		TensorBenchResult{Name: "sample_batched", NsOp: 100, Speedup: 2.4},
	)
	v := CompareBench(base, cur, 0.25, map[string]float64{
		"sample_batched": 3,
		"absent":         2,
	})
	if len(v) != 5 {
		t.Fatalf("want 5 violations, got %d: %v", len(v), v)
	}
	for _, frag := range []string{
		"matmul: ns/op regressed",
		"train: allocs/op grew 10 → 12",
		"gone: present in baseline but missing",
		"absent: speedup floor",
		"sample_batched: speedup 2.40x below required 3.00x",
	} {
		found := false
		for _, s := range v {
			if strings.Contains(s, frag) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no violation mentioning %q in %v", frag, v)
		}
	}
}

func TestCompareBenchDeterministicOrder(t *testing.T) {
	base := gateReport(
		TensorBenchResult{Name: "b", NsOp: 10},
		TensorBenchResult{Name: "a", NsOp: 10},
	)
	cur := gateReport()
	v := CompareBench(base, cur, 0.25, nil)
	if len(v) != 2 || v[0] > v[1] {
		t.Fatalf("violations not sorted: %v", v)
	}
}
