package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/tensor"
)

// TensorBenchResult records one micro-benchmark of the tensor hot path, with
// the measured numbers next to the pre-overhaul baseline so regressions (or
// claimed speedups) are visible in one file.
type TensorBenchResult struct {
	Name string `json:"name"`
	// Before* fields are the seed-commit numbers, measured on the same
	// machine and benchtime as the current run they ship with.
	BeforeNsOp     int64   `json:"before_ns_op"`
	BeforeAllocsOp int64   `json:"before_allocs_op"`
	NsOp           int64   `json:"ns_op"`
	AllocsOp       int64   `json:"allocs_op"`
	BytesOp        int64   `json:"bytes_op"`
	Speedup        float64 `json:"speedup"`
	// Commit and MatmulWorkers pin the provenance of each row: the VCS
	// revision the measuring binary was built from and the kernel worker
	// limit in force while this benchmark ran (sample_batched_workers can
	// legitimately differ from the report-level setting).
	Commit        string `json:"commit,omitempty"`
	MatmulWorkers int    `json:"matmul_workers"`
}

// TensorBenchReport is the document written to BENCH_tensor.json.
type TensorBenchReport struct {
	Description string              `json:"description"`
	Meta        obs.Meta            `json:"meta"`
	Workers     int                 `json:"matmul_workers"`
	Results     []TensorBenchResult `json:"results"`
}

// Pre-overhaul baselines, measured at the seed commit in a side worktree on
// the same machine (best of 3 × 2s runs, serial kernels). The benchmark
// bodies below mirror the seed benchmarks exactly: matmul is 64×512·512×64
// into a preallocated destination; made_forward_autodiff is a batch-32
// forward+backward over colSizes {64,32,16,128,8,4,50}, hidden 64×2;
// made_forward_infer is the allocation-free sampling forward on the same
// net; train_step is forward+backward+Adam on colSizes {8,6,4,10}, hidden
// 32×2, batch 16.
var tensorBenchBaselines = map[string][2]int64{ // name → {ns/op, allocs/op}
	"matmul_512":            {1539014, 0},
	"made_forward_autodiff": {2619569, 115},
	"made_forward_infer":    {9636, 0},
	"train_step":            {178603, 122},
}

// RunTensorBench benchmarks the tensor hot paths (dense matmul, MADE
// training forward+backward, MADE sampling forward, full optimizer step)
// and returns the results paired with the seed baselines.
func RunTensorBench() *TensorBenchReport {
	rep := &TensorBenchReport{
		Description: "tensor hot-path micro-benchmarks; before_* columns are the pre-overhaul seed measured on the same machine",
		Meta:        obs.BuildMeta(),
		Workers:     tensor.MatMulWorkers(),
	}

	add := func(name string, fn func(b *testing.B)) {
		// Best of three runs: the shared CI machines this runs on jitter by
		// 50%+ between runs, and the minimum is the stablest estimate of
		// the code's actual cost (the baselines were taken the same way).
		r := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if rr := testing.Benchmark(fn); rr.NsPerOp() < r.NsPerOp() {
				r = rr
			}
		}
		base := tensorBenchBaselines[name]
		res := TensorBenchResult{
			Name:           name,
			BeforeNsOp:     base[0],
			BeforeAllocsOp: base[1],
			NsOp:           r.NsPerOp(),
			AllocsOp:       r.AllocsPerOp(),
			BytesOp:        r.AllocedBytesPerOp(),
			Commit:         rep.Meta.Commit,
			MatmulWorkers:  tensor.MatMulWorkers(),
		}
		if res.NsOp > 0 {
			res.Speedup = float64(res.BeforeNsOp) / float64(res.NsOp)
		}
		rep.Results = append(rep.Results, res)
	}

	add("matmul_512", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		a := tensor.New(64, 512)
		a.Randn(rng, 1)
		w := tensor.New(512, 64)
		w.Randn(rng, 1)
		dst := tensor.New(64, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dst, a, w)
		}
	})

	add("made_forward_autodiff", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		colSizes := []int{64, 32, 16, 128, 8, 4, 50}
		m := nn.NewMADE(rng, colSizes, 64, 2)
		x := tensor.New(32, m.InDim())
		x.Randn(rng, 0.5)
		g := tensor.NewGraph()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Reset()
			out := m.Forward(g, g.Const(x))
			loss := g.Mean(g.Square(out))
			g.Backward(loss)
		}
	})

	add("made_forward_infer", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		colSizes := []int{64, 32, 16, 128, 8, 4, 50}
		m := nn.NewMADE(rng, colSizes, 64, 2)
		buf := m.NewInference()
		for i := range buf.X() {
			if rng.Float64() < 0.05 {
				buf.X()[i] = 1
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Forward()
		}
	})

	add("sample_per_tuple", func(b *testing.B) {
		m := benchSamplerModel()
		s := m.NewSampler()
		rng := rand.New(rand.NewSource(7))
		dst := make([]int32, m.Layout.NumCols())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleFOJ(rng, dst)
		}
	})

	add("sample_batched", func(b *testing.B) {
		m := benchSamplerModel()
		const lanes = 64
		s := m.NewBatchSampler(lanes)
		rngs := make([]*rand.Rand, lanes)
		for l := range rngs {
			rngs[l] = rand.New(rand.NewSource(7 + int64(l)*7919))
		}
		dst := make([]int32, lanes*m.Layout.NumCols())
		b.ReportAllocs()
		b.ResetTimer()
		// One iteration = one tuple, so ns/op is directly comparable with
		// sample_per_tuple; each sweep draws a whole batch.
		for drawn := 0; drawn < b.N; drawn += lanes {
			s.SampleFOJBatch(rngs, dst)
		}
	})

	add("sample_batched_workers", func(b *testing.B) {
		// Worker×lane composition gate: two logical workers share the
		// kernel token bucket while each advances 64 batched lanes, going
		// through core's real scheduling path (DrawSamples). The bench
		// forces GOMAXPROCS ≥ 2 so both sampling goroutines can actually be
		// scheduled; on single-core CI hosts this measures composition
		// overhead rather than scaling, which is exactly what the gate
		// bounds — adding workers must not wreck batched throughput.
		if prev := runtime.GOMAXPROCS(0); prev < 2 {
			runtime.GOMAXPROCS(2)
			defer runtime.GOMAXPROCS(prev)
		}
		m := benchSamplerModel()
		g, err := core.FromModel(m, map[string]int{"t": 1000})
		if err != nil {
			panic(err)
		}
		const lanes = 64
		opts := core.DefaultGenOptions(7)
		opts.Workers = 2
		opts.Batch = lanes
		newSampler := core.ModelSampler(m, lanes)
		// Tuples per DrawSamples call: large enough that the per-call
		// sampler construction (one BatchSampler per worker goroutine)
		// amortizes below the noise floor, small enough to fit b.N.
		const per = 2 * lanes * 32
		b.ReportAllocs()
		b.ResetTimer()
		// One iteration = one tuple, comparable with sample_per_tuple.
		for drawn := 0; drawn < b.N; drawn += per {
			g.DrawSamples(newSampler, per, opts)
		}
	})

	add("train_step", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		colSizes := []int{8, 6, 4, 10}
		m := nn.NewMADE(rng, colSizes, 32, 2)
		x := tensor.New(16, m.InDim())
		x.Randn(rng, 0.5)
		opt := nn.NewAdam(1e-3)
		g := tensor.NewGraph()
		params := m.Params()
		pairs := make([]nn.GradPair, len(params))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Reset()
			out := m.Forward(g, g.Const(x))
			loss := g.Mean(g.Square(out))
			g.Backward(loss)
			for j, p := range params {
				pairs[j] = nn.GradPair{Param: p, Grad: g.ParamGrad(p)}
			}
			opt.Step(pairs)
		}
	})

	// The sampling rows are a same-run comparison, not a seed regression:
	// the batched entries' baseline is the per-tuple sampler measured
	// moments ago on the same machine, so their speedup columns are the
	// machine-independent batched-vs-per-tuple throughput ratios the CI
	// bench gate asserts on (≥6× at batch 64; the workers variant gates
	// the worker×lane composition at a lower floor since single-core CI
	// hosts pay scheduling overhead without any scaling win).
	var perTuple *TensorBenchResult
	for i := range rep.Results {
		if rep.Results[i].Name == "sample_per_tuple" {
			perTuple = &rep.Results[i]
		}
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		switch r.Name {
		case "sample_per_tuple":
			r.BeforeNsOp, r.BeforeAllocsOp = r.NsOp, r.AllocsOp
		case "sample_batched", "sample_batched_workers":
			r.BeforeNsOp, r.BeforeAllocsOp = perTuple.NsOp, perTuple.AllocsOp
		default:
			continue
		}
		if r.NsOp > 0 {
			r.Speedup = float64(r.BeforeNsOp) / float64(r.NsOp)
		}
	}

	return rep
}

// benchSamplerModel builds an untrained single-table MADE model matching
// the made_forward_infer net (colSizes {64,32,16,128,8,4,50}, hidden
// 64×2) for the ancestral-sampling benchmarks; sampling cost does not
// depend on the weights being trained.
func benchSamplerModel() *ar.Model {
	colSizes := []int{64, 32, 16, 128, 8, 4, 50}
	cols := make([]*relation.Column, len(colSizes))
	for i, s := range colSizes {
		cols[i] = relation.NewColumn(fmt.Sprintf("c%d", i), relation.Categorical, s)
	}
	s, err := relation.NewSchema(relation.NewTable("t", cols...))
	if err != nil {
		panic(err)
	}
	layout := join.NewLayout(s)
	return ar.NewModel(layout, nil, 1000,
		ar.Config{Hidden: 64, HiddenLayers: 2, Seed: 3, Arch: "made"})
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *TensorBenchReport) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
