package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sam/internal/core"
	"sam/internal/obs"
)

// ScaleBenchConfig sizes one scale-benchmark run.
type ScaleBenchConfig struct {
	// Rows is the FOJ sample count AND the generated table size (single
	// table, so the two coincide).
	Rows int
	// Shards, Workers, Batch, Partitions mirror core.StreamOptions; zero
	// values take the streaming defaults.
	Shards     int
	Workers    int
	Batch      int
	Partitions int
	// Dir receives the run's shards, spill files, and CSV; it should be
	// scratch space (the run's outputs are deleted afterwards).
	Dir string
	// Seed drives the sampler.
	Seed int64
	// RunID correlates the report with the run's trace/metrics/log
	// artifacts; empty generates a fresh one.
	RunID string
	// Hooks and Span let the caller observe the benchmarked run itself
	// (the CLI threads its -trace/-progress/-runlog observers through
	// here). The per-pass wall split is collected regardless.
	Hooks *obs.Hooks
	Span  *obs.Span
}

// ScaleBenchReport is the document written to BENCH_scale.json: paper-scale
// streaming generation throughput with the memory watermarks that prove the
// pipeline stayed bounded.
type ScaleBenchReport struct {
	Description string   `json:"description"`
	Meta        obs.Meta `json:"meta"`
	RunID       string   `json:"run_id,omitempty"`
	Rows        int      `json:"rows"`
	Shards      int      `json:"shards"`
	Workers     int      `json:"workers"`
	Batch       int      `json:"batch"`
	Partitions  int      `json:"partitions"`
	// SampleWallMs / MergeWallMs / TotalWallMs split the run into its
	// sampling and external-merge phases.
	SampleWallMs int64 `json:"sample_wall_ms"`
	MergeWallMs  int64 `json:"merge_wall_ms"`
	TotalWallMs  int64 `json:"total_wall_ms"`
	// The per-pass wall split of the merge (weight scan plus spill passes
	// A/B/C, summed across tables), from the pipeline's StreamPass
	// telemetry — the evidence benchgate cites when the throughput floor
	// trips, so a regression names its pass.
	WeightWallMs int64 `json:"weight_wall_ms"`
	PassAWallMs  int64 `json:"pass_a_wall_ms"`
	PassBWallMs  int64 `json:"pass_b_wall_ms"`
	PassCWallMs  int64 `json:"pass_c_wall_ms"`
	// SampleRowsPerSec is FOJ tuples drawn (and spilled to shards) per
	// second; RowsPerSec is end-to-end generated rows per second including
	// the merge.
	SampleRowsPerSec float64 `json:"sample_rows_per_sec"`
	RowsPerSec       float64 `json:"rows_per_sec"`
	// PeakHeapBytes is the maximum Go heap-in-use observed by a ~25ms
	// watermark sampler during the run; PeakRSSBytes is the process VmHWM
	// from /proc/self/status (0 where unavailable). These are the gate's
	// evidence that generation at paper scale never holds the sample set
	// resident.
	PeakHeapBytes int64 `json:"peak_heap_bytes"`
	PeakRSSBytes  int64 `json:"peak_rss_bytes"`
	// ShardBytes is the on-disk size of the sample shards (the data that
	// would have been resident under the in-memory path).
	ShardBytes int64 `json:"shard_bytes"`
}

// heapWatermark samples runtime.ReadMemStats on a fixed cadence and
// records the maximum heap-in-use. Stop before reading the peak.
type heapWatermark struct {
	peak atomic.Int64
	done chan struct{}
	wg   sync.WaitGroup
}

func startHeapWatermark(interval time.Duration) *heapWatermark {
	w := &heapWatermark{done: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if inuse := int64(ms.HeapInuse); inuse > w.peak.Load() {
				w.peak.Store(inuse)
			}
			select {
			case <-w.done:
				return
			case <-t.C:
			}
		}
	}()
	return w
}

func (w *heapWatermark) stop() int64 {
	close(w.done)
	w.wg.Wait()
	return w.peak.Load()
}

// readVmHWM returns the process's peak resident set (VmHWM) in bytes from
// /proc/self/status, or 0 on platforms without it.
func readVmHWM() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// RunScaleBench generates cfg.Rows rows through the sharded streaming
// pipeline (benchSamplerModel's single-table MADE net — the same model the
// tensor benchmarks sample) and reports throughput plus memory watermarks.
// The run's on-disk outputs are removed before returning; only the report
// survives.
func RunScaleBench(cfg ScaleBenchConfig) (*ScaleBenchReport, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("scalebench: rows must be positive, got %d", cfg.Rows)
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "scalebench")
		if err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	m := benchSamplerModel()
	gen, err := core.FromModel(m, map[string]int{"t": cfg.Rows})
	if err != nil {
		return nil, err
	}
	opts := core.DefaultStreamOptions(cfg.Seed, dir)
	opts.Samples = cfg.Rows
	opts.Shards = cfg.Shards
	opts.Workers = cfg.Workers
	if cfg.Batch > 0 {
		opts.Batch = cfg.Batch
	}
	opts.Partitions = cfg.Partitions
	opts.Span = cfg.Span

	runID := cfg.RunID
	if runID == "" {
		runID = obs.NewRunID()
	}
	// Accumulate the merge's per-pass wall split from the pipeline's own
	// StreamPass events (summed across tables; shard walls overlap across
	// workers so the sampling phase keeps its single SampleWallMs figure).
	var passWall struct {
		mu                 sync.Mutex
		weight, pa, pb, pc time.Duration
	}
	split := &obs.Hooks{OnStreamPass: func(p obs.StreamPass) {
		passWall.mu.Lock()
		switch p.Pass {
		case "weight":
			passWall.weight += p.Wall
		case "A":
			passWall.pa += p.Wall
		case "B":
			passWall.pb += p.Wall
		case "C":
			passWall.pc += p.Wall
		}
		passWall.mu.Unlock()
	}}
	opts.Hooks = obs.Merge(split, cfg.Hooks)

	wm := startHeapWatermark(25 * time.Millisecond)
	start := time.Now()
	set, err := gen.SampleShards(core.ModelSampler(m, opts.Batch), cfg.Rows, opts)
	if err != nil {
		wm.stop()
		return nil, err
	}
	shardBytes := set.Bytes()
	res, err := gen.MaterializeStream(set, opts)
	if err != nil {
		wm.stop()
		return nil, err
	}
	total := time.Since(start)
	peakHeap := wm.stop()

	rep := &ScaleBenchReport{
		Description: "sharded streaming generation at scale: single-table MADE sampling through the bounded-memory spill merge; watermarks prove peak memory does not grow with rows",
		Meta:        obs.BuildMeta(),
		RunID:       runID,
		Rows:        cfg.Rows,
		Shards:      len(set.Paths),
		Workers:     opts.Workers,
		Batch:       opts.Batch,
		Partitions:  opts.Partitions,

		SampleWallMs:  set.Wall.Milliseconds(),
		MergeWallMs:   res.MergeWall.Milliseconds(),
		TotalWallMs:   total.Milliseconds(),
		WeightWallMs:  passWall.weight.Milliseconds(),
		PassAWallMs:   passWall.pa.Milliseconds(),
		PassBWallMs:   passWall.pb.Milliseconds(),
		PassCWallMs:   passWall.pc.Milliseconds(),
		PeakHeapBytes: peakHeap,
		PeakRSSBytes:  readVmHWM(),
		ShardBytes:    shardBytes,
	}
	if rep.Workers <= 0 {
		rep.Workers = runtime.GOMAXPROCS(0)
	}
	if rep.Partitions <= 0 {
		rep.Partitions = 64
	}
	if s := set.Wall.Seconds(); s > 0 {
		rep.SampleRowsPerSec = float64(cfg.Rows) / s
	}
	if s := total.Seconds(); s > 0 {
		rep.RowsPerSec = float64(res.Rows["t"]) / s
	}
	if res.Rows["t"] != cfg.Rows {
		return nil, fmt.Errorf("scalebench: generated %d rows, want %d", res.Rows["t"], cfg.Rows)
	}
	return rep, nil
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *ScaleBenchReport) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// CompareScale gates a scale report: rows/sec must stay at or above
// minRowsPerSec and the peak memory watermarks must stay under
// maxPeakBytes (heap always; RSS too when the platform reported it). Both
// floors are machine-calibrated by the caller; zero disables a gate.
// Returns one violation string per breach.
func CompareScale(rep *ScaleBenchReport, minRowsPerSec float64, maxPeakBytes int64) []string {
	var out []string
	if minRowsPerSec > 0 && rep.RowsPerSec < minRowsPerSec {
		v := fmt.Sprintf("scale: %.0f rows/sec below required %.0f (rows=%d)",
			rep.RowsPerSec, minRowsPerSec, rep.Rows)
		// Name the pass when the report carries the split, so the gate's
		// failure points at the regressed phase rather than the aggregate.
		if rep.WeightWallMs+rep.PassAWallMs+rep.PassBWallMs+rep.PassCWallMs > 0 {
			v += fmt.Sprintf(" (pass split: sample=%dms weight=%dms A=%dms B=%dms C=%dms)",
				rep.SampleWallMs, rep.WeightWallMs, rep.PassAWallMs, rep.PassBWallMs, rep.PassCWallMs)
		}
		out = append(out, v)
	}
	if maxPeakBytes > 0 {
		if rep.PeakHeapBytes > maxPeakBytes {
			out = append(out, fmt.Sprintf("scale: peak heap %d bytes exceeds ceiling %d (unbounded generation memory?)",
				rep.PeakHeapBytes, maxPeakBytes))
		}
		if rep.PeakRSSBytes > 0 && rep.PeakRSSBytes > maxPeakBytes {
			out = append(out, fmt.Sprintf("scale: peak RSS %d bytes exceeds ceiling %d (unbounded generation memory?)",
				rep.PeakRSSBytes, maxPeakBytes))
		}
	}
	return out
}
