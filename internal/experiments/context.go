package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/obs"
	"sam/internal/pgm"
	"sam/internal/relation"
	"sam/internal/workload"
)

// Bundle holds everything derived from one dataset: the hidden original
// database, its model layout, labeled train/test workloads, and caches of
// trained models and generated databases.
type Bundle struct {
	Name       string
	Orig       *relation.Schema
	Layout     *join.Layout
	Sizes      map[string]int
	Population float64 // |T| or |FOJ|

	Train *workload.Workload
	Test  *workload.Workload

	mu      sync.Mutex
	samMods map[string]*ar.Model
	samDBs  map[string]*relation.Schema
	samTime map[string]time.Duration // training wall time per model key
	genTime map[string]time.Duration
	pgmMods map[string]*pgm.PGM
	pgmDBs  map[string]*relation.Schema
	pgmTime map[string]time.Duration
}

// Context shares scale parameters and dataset bundles across experiments.
type Context struct {
	Scale Scale
	Logf  func(format string, args ...any)

	// Hooks receives telemetry events (per-epoch loss, generation phases,
	// per-query eval stats) from every experiment run through this context;
	// Span is the parent trace span under which training, generation, and
	// evaluation record their phase tree. Both may be nil (telemetry off).
	Hooks *obs.Hooks
	Span  *obs.Span

	mu     sync.Mutex
	census *Bundle
	dmv    *Bundle
	imdb   *Bundle
}

// NewContext returns a context; logf may be nil.
func NewContext(scale Scale, logf func(string, ...any)) *Context {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Context{Scale: scale, Logf: logf}
}

func newBundle(name string, orig *relation.Schema) *Bundle {
	b := &Bundle{
		Name:    name,
		Orig:    orig,
		Layout:  join.NewLayout(orig),
		Sizes:   map[string]int{},
		samMods: map[string]*ar.Model{},
		samDBs:  map[string]*relation.Schema{},
		samTime: map[string]time.Duration{},
		genTime: map[string]time.Duration{},
		pgmMods: map[string]*pgm.PGM{},
		pgmDBs:  map[string]*relation.Schema{},
		pgmTime: map[string]time.Duration{},
	}
	for _, t := range orig.Tables {
		b.Sizes[t.Name] = t.NumRows()
	}
	if orig.SingleTable() {
		b.Population = float64(orig.Tables[0].NumRows())
	} else {
		b.Population = float64(engine.FOJSize(orig))
	}
	return b
}

// Census returns the census-like bundle, building it on first use.
func (c *Context) Census() *Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.census == nil {
		s := c.Scale
		c.Logf("building census dataset (%d rows) and workloads", s.CensusRows)
		orig := datagen.Census(s.Seed, s.CensusRows)
		b := newBundle("census", orig)
		rng := rand.New(rand.NewSource(s.Seed + 101))
		train := workload.GenerateSingleRelation(rng, orig.Tables[0], s.CensusTrainQ, workload.DefaultSingleRelationOptions())
		test := workload.GenerateSingleRelation(rng, orig.Tables[0], s.TestQ, workload.DefaultSingleRelationOptions())
		b.Train = &workload.Workload{Queries: engine.Label(orig, train)}
		b.Test = &workload.Workload{Queries: engine.Label(orig, test)}
		c.census = b
	}
	return c.census
}

// DMV returns the DMV-like bundle.
func (c *Context) DMV() *Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dmv == nil {
		s := c.Scale
		c.Logf("building dmv dataset (%d rows) and workloads", s.DMVRows)
		orig := datagen.DMV(s.Seed+1, s.DMVRows)
		b := newBundle("dmv", orig)
		rng := rand.New(rand.NewSource(s.Seed + 202))
		train := workload.GenerateSingleRelation(rng, orig.Tables[0], s.DMVTrainQ, workload.DefaultSingleRelationOptions())
		test := workload.GenerateSingleRelation(rng, orig.Tables[0], s.TestQ, workload.DefaultSingleRelationOptions())
		b.Train = &workload.Workload{Queries: engine.Label(orig, train)}
		b.Test = &workload.Workload{Queries: engine.Label(orig, test)}
		c.dmv = b
	}
	return c.dmv
}

// IMDB returns the IMDB-like multi-relation bundle; its test workload is
// the JOB-light-style query set.
func (c *Context) IMDB() *Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.imdb == nil {
		s := c.Scale
		c.Logf("building imdb dataset (%d titles) and workloads", s.IMDBTitles)
		orig := datagen.IMDB(s.Seed+2, s.IMDBTitles)
		b := newBundle("imdb", orig)
		rng := rand.New(rand.NewSource(s.Seed + 303))
		train := workload.GenerateMultiRelation(rng, orig, s.IMDBTrainQ, workload.DefaultMultiRelationOptions())
		b.Train = &workload.Workload{Queries: engine.Label(orig, train)}
		// JOB-light queries all have nonempty results; keep drawing until
		// the test set does too.
		var test []workload.CardQuery
		for len(test) < s.JOBLightQ {
			batch := engine.Label(orig, jobLightQueries(rng, orig, s.JOBLightQ))
			for _, cq := range batch {
				if cq.Card > 0 && len(test) < s.JOBLightQ {
					test = append(test, cq)
				}
			}
		}
		b.Test = &workload.Workload{Queries: test}
		c.imdb = b
	}
	return c.imdb
}

// jobLightQueries builds the JOB-light-style test set: joins of title with
// 1–5 of its FK relations (so 2–6 relations per query, like JOB-light's
// up-to-five-way joins) with a handful of predicates.
func jobLightQueries(rng *rand.Rand, s *relation.Schema, n int) []workload.Query {
	var fkTables []string
	for _, t := range s.Tables {
		if t.Parent != "" {
			fkTables = append(fkTables, t.Name)
		}
	}
	queries := make([]workload.Query, 0, n)
	for len(queries) < n {
		m := 1 + rng.Intn(len(fkTables))
		perm := rng.Perm(len(fkTables))[:m]
		q := workload.Query{Tables: []string{"title"}}
		for _, pi := range perm {
			q.Tables = append(q.Tables, fkTables[pi])
		}
		// One predicate on title, and one per joined FK table with
		// probability 1/2 — JOB-light queries are predicate-light.
		title := s.Table("title")
		col := title.Cols[rng.Intn(len(title.Cols))]
		row := rng.Intn(title.NumRows())
		ops := []workload.Op{workload.LE, workload.GE, workload.EQ}
		q.Preds = append(q.Preds, workload.Predicate{
			Table: "title", Column: col.Name,
			Op: ops[rng.Intn(3)], Code: col.Data[row],
		})
		for _, name := range q.Tables[1:] {
			if rng.Float64() < 0.5 {
				continue
			}
			t := s.Table(name)
			col := t.Cols[rng.Intn(len(t.Cols))]
			row := rng.Intn(t.NumRows())
			q.Preds = append(q.Preds, workload.Predicate{
				Table: name, Column: col.Name,
				Op: ops[rng.Intn(3)], Code: col.Data[row],
			})
		}
		queries = append(queries, q)
	}
	return queries
}

// SAMModel trains (or returns the cached) SAM model on the first nQueries
// of the bundle's training workload. nQueries ≤ 0 means the full workload.
func (c *Context) SAMModel(b *Bundle, nQueries int) (*ar.Model, time.Duration) {
	if nQueries <= 0 || nQueries > b.Train.Len() {
		nQueries = b.Train.Len()
	}
	key := fmt.Sprintf("n=%d", nQueries)
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.samMods[key]; ok {
		return m, b.samTime[key]
	}
	s := c.Scale
	cfg := ar.DefaultTrainConfig()
	cfg.Epochs = s.Epochs
	cfg.BatchSize = s.Batch
	cfg.LR = s.LR
	cfg.Model.Hidden = s.Hidden
	cfg.Seed = s.Seed
	cfg.Hooks = c.Hooks
	cfg.Span = c.Span
	// Fixed-time protocol (§5.1): every method gets the same wall-clock
	// budget, so the tiny PGM-feasible workloads (Table 2) buy many more
	// optimizer steps, not fewer. Applied only below one batch so the
	// Figure 5 scaling curve keeps constant per-query work.
	if nQueries < cfg.BatchSize && cfg.Epochs < 400 {
		cfg.Epochs = 400
	}
	c.Logf("training SAM on %s with %d queries", b.Name, nQueries)
	start := time.Now()
	m, err := ar.Train(b.Layout, b.Train.Prefix(nQueries), b.Population, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: SAM training on %s: %v", b.Name, err))
	}
	el := time.Since(start)
	c.Logf("trained SAM on %s (%d queries) in %v", b.Name, nQueries, el.Round(time.Millisecond))
	b.samMods[key] = m
	b.samTime[key] = el
	return m, el
}

// SAMDB generates (or returns the cached) database from the SAM model
// trained on nQueries, using the given FOJ sample budget and
// Group-and-Merge switch.
func (c *Context) SAMDB(b *Bundle, nQueries, samples int, gam bool) (*relation.Schema, time.Duration) {
	if samples <= 0 {
		if b.Orig.SingleTable() {
			samples = b.Sizes[b.Orig.Tables[0].Name]
		} else {
			samples = c.Scale.IMDBSamples
		}
	}
	key := fmt.Sprintf("n=%d,k=%d,gam=%v", nQueries, samples, gam)
	m, _ := c.SAMModel(b, nQueries)
	b.mu.Lock()
	defer b.mu.Unlock()
	if db, ok := b.samDBs[key]; ok {
		return db, b.genTime[key]
	}
	gen, err := core.FromModel(m, b.Sizes)
	if err != nil {
		panic(fmt.Sprintf("experiments: generator on %s: %v", b.Name, err))
	}
	opts := core.DefaultGenOptions(c.Scale.Seed + 7)
	opts.Samples = samples
	opts.GroupAndMerge = gam
	opts.Batch = c.Scale.GenBatch
	opts.Hooks = c.Hooks
	opts.Span = c.Span
	c.Logf("generating %s database from SAM (k=%d, gam=%v, batch=%d)", b.Name, samples, gam, opts.Batch)
	start := time.Now()
	db, err := gen.Generate(core.ModelSampler(m, opts.Batch), opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: generation on %s: %v", b.Name, err))
	}
	el := time.Since(start)
	c.Logf("generated %s from SAM in %v", b.Name, el.Round(time.Millisecond))
	b.samDBs[key] = db
	b.genTime[key] = el
	return db, el
}

// PGMModel trains (or returns the cached) PGM baseline on the first
// nQueries of the training workload.
func (c *Context) PGMModel(b *Bundle, nQueries int) (*pgm.PGM, time.Duration, error) {
	key := fmt.Sprintf("n=%d", nQueries)
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.pgmMods[key]; ok {
		return m, b.pgmTime[key], nil
	}
	wl := b.Train.Prefix(nQueries)
	populations := map[string]float64{}
	for _, ts := range wl.TableSets() {
		if len(ts) > 1 {
			q := workload.Query{Tables: ts}
			populations[viewKeyOf(ts)] = float64(engine.Card(b.Orig, &q))
		}
	}
	cfg := pgm.DefaultConfig()
	cfg.Seed = c.Scale.Seed
	c.Logf("training PGM on %s with %d queries", b.Name, nQueries)
	start := time.Now()
	m, err := pgm.Train(b.Orig, wl, b.Sizes, populations, cfg)
	if err != nil {
		return nil, 0, err
	}
	el := time.Since(start)
	c.Logf("trained PGM on %s (%d queries) in %v", b.Name, nQueries, el.Round(time.Millisecond))
	b.pgmMods[key] = m
	b.pgmTime[key] = el
	return m, el, nil
}

// PGMDB generates (or returns the cached) database from the PGM baseline.
func (c *Context) PGMDB(b *Bundle, nQueries int) (*relation.Schema, time.Duration, error) {
	key := fmt.Sprintf("n=%d", nQueries)
	m, _, err := c.PGMModel(b, nQueries)
	if err != nil {
		return nil, 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if db, ok := b.pgmDBs[key]; ok {
		return db, 0, nil
	}
	c.Logf("generating %s database from PGM", b.Name)
	start := time.Now()
	db, err := m.Generate(c.Scale.Seed + 11)
	if err != nil {
		return nil, 0, err
	}
	el := time.Since(start)
	c.Logf("generated %s from PGM in %v", b.Name, el.Round(time.Millisecond))
	b.pgmDBs[key] = db
	return db, el, nil
}

// viewKeyOf mirrors pgm's canonical view key (sorted names joined by |).
func viewKeyOf(tables []string) string {
	ts := append([]string(nil), tables...)
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	out := ts[0]
	for _, t := range ts[1:] {
		out += "|" + t
	}
	return out
}
