package experiments

import (
	"fmt"
	"time"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/indep"
	"sam/internal/metrics"
	"sam/internal/relation"
)

// ExtBackbones compares the two autoregressive architectures the paper
// names (§4.1, MADE and Transformer) on the census workload: training
// time, input-query fidelity of the generated database, and cross entropy.
// This is an extension beyond the paper's tables (the paper evaluates the
// MADE instantiation only).
func ExtBackbones(c *Context) *Report {
	r := &Report{
		ID:     "ext1",
		Title:  "Backbone comparison: MADE vs Transformer (Census)",
		Header: []string{"Backbone", "TrainTime(s)", "MedianQErr", "MeanQErr", "CrossEntropy(bits)"},
	}
	b := c.Census()
	s := c.Scale
	// Keep the transformer affordable: cap the workload and epochs.
	nQ := b.Train.Len()
	if nQ > 400 {
		nQ = 400
	}
	wl := b.Train.Prefix(nQ)

	for _, arch := range []string{"made", "transformer"} {
		cfg := ar.DefaultTrainConfig()
		cfg.Epochs = s.Epochs
		if cfg.Epochs > 6 {
			cfg.Epochs = 6
		}
		cfg.BatchSize = s.Batch
		cfg.LR = s.LR
		cfg.Seed = s.Seed
		cfg.Model.Arch = arch
		cfg.Model.Hidden = s.Hidden
		if arch == "transformer" {
			cfg.Model.DModel = 24
			cfg.Model.Heads = 2
			cfg.Model.HiddenLayers = 1
		}
		c.Logf("ext1: training %s backbone on census (%d queries)", arch, nQ)
		start := time.Now()
		m, err := ar.Train(b.Layout, wl, b.Population, cfg)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", arch, err))
			continue
		}
		trainTime := time.Since(start)
		gen, err := core.FromModel(m, b.Sizes)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", arch, err))
			continue
		}
		opts := core.DefaultGenOptions(s.Seed + 13)
		opts.Samples = b.Sizes[b.Orig.Tables[0].Name]
		opts.Batch = s.GenBatch
		db, err := gen.Generate(core.ModelSampler(m, opts.Batch), opts)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", arch, err))
			continue
		}
		qe := c.qErrorsOn(db, wl.Queries)
		sum := metrics.Summarize(qe)
		h := metrics.CrossEntropyBits(b.Orig.Tables[0], db.Tables[0])
		r.Rows = append(r.Rows, []string{arch,
			fmt.Sprintf("%.2f", trainTime.Seconds()), fmtG(sum.Median), fmtG(sum.Mean), fmtG(h)})
	}
	return r
}

// ExtProgressiveSamples sweeps the number of Monte-Carlo chains per query
// during DPS training (the paper leaves improving the sampler as future
// work; §7) on a reduced census workload.
func ExtProgressiveSamples(c *Context) *Report {
	r := &Report{
		ID:     "ext2",
		Title:  "DPS progressive samples per query (Census)",
		Header: []string{"Samples", "TrainTime(s)", "MedianQErr", "MeanQErr"},
	}
	b := c.Census()
	s := c.Scale
	nQ := b.Train.Len()
	if nQ > 400 {
		nQ = 400
	}
	wl := b.Train.Prefix(nQ)
	for _, ps := range []int{1, 2, 4} {
		cfg := ar.DefaultTrainConfig()
		cfg.Epochs = s.Epochs
		if cfg.Epochs > 6 {
			cfg.Epochs = 6
		}
		cfg.BatchSize = s.Batch
		cfg.LR = s.LR
		cfg.Seed = s.Seed
		cfg.Model.Hidden = s.Hidden
		cfg.ProgressiveSamples = ps
		c.Logf("ext2: training with %d progressive samples", ps)
		start := time.Now()
		m, err := ar.Train(b.Layout, wl, b.Population, cfg)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("ps=%d: %v", ps, err))
			continue
		}
		trainTime := time.Since(start)
		// Batched model-side evaluation: warm per-worker samplers instead
		// of a fresh inference buffer per estimate.
		eopts := ar.EvalOptions{Samples: 8, Batch: s.GenBatch, Seed: s.Seed + 17}
		qe := ar.EvalWorkload(m, wl.Queries, eopts, nil)
		sum := metrics.Summarize(qe)
		r.Rows = append(r.Rows, []string{fmt.Sprint(ps),
			fmt.Sprintf("%.2f", trainTime.Seconds()), fmtG(sum.Median), fmtG(sum.Mean)})
	}
	return r
}

// ExtIndependence adds the classic independence strawman (per-column
// histograms, §2.3's Limitation 1) next to PGM and SAM on Census database
// recovery: test-query Q-Error and cross entropy.
func ExtIndependence(c *Context) *Report {
	r := &Report{
		ID:     "ext3",
		Title:  "Independence baseline vs PGM vs SAM (Census recovery)",
		Header: []string{"Model", "MedianTestQErr", "MeanTestQErr", "CrossEntropy(bits)"},
	}
	b := c.Census()
	addRow := func(name string, db *relation.Schema) {
		qe := c.qErrorsOn(db, b.Test.Queries)
		sum := metrics.Summarize(qe)
		h := metrics.CrossEntropyBits(b.Orig.Tables[0], db.Tables[0])
		r.Rows = append(r.Rows, []string{name, fmtG(sum.Median), fmtG(sum.Mean), fmtG(h)})
	}

	im, err := indep.Train(b.Orig, b.Train, b.Sizes)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("indep: %v", err))
	} else if db, err := im.Generate(c.Scale.Seed + 19); err == nil {
		addRow("INDEP", db)
	}
	if db, _, err := c.PGMDB(b, c.Scale.TinyCensusQ); err == nil {
		addRow("PGM", db)
	}
	db, _ := c.SAMDB(b, 0, 0, true)
	addRow("SAM", db)
	r.Notes = append(r.Notes,
		"INDEP consumes the full workload's single-predicate constraints; PGM its feasible prefix; SAM the full workload")
	return r
}
