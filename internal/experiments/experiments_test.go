package experiments

import (
	"strings"
	"testing"

	"sam/internal/metrics"
	"sam/internal/workload"
)

// microScale is a minimal configuration so the full experiment suite runs
// in seconds under `go test`.
func microScale() Scale {
	s := QuickScale()
	s.CensusRows = 800
	s.DMVRows = 500
	s.IMDBTitles = 200
	s.CensusTrainQ = 80
	s.DMVTrainQ = 60
	s.IMDBTrainQ = 80
	s.TestQ = 30
	s.JOBLightQ = 12
	s.TinyCensusQ = 8
	s.TinyDMVQ = 5
	s.SmallIMDBQ = 20
	s.EvalInputQ = 40
	s.Epochs = 1
	s.Hidden = 16
	s.Batch = 32
	s.IMDBSamples = 3000
	s.Fig5SAMPoints = []int{20, 40, 80}
	s.Fig5PGMPoints = []int{2, 4}
	s.Fig6Samples = []int{1000, 2000}
	s.Fig7Fracs = []float64{0.5, 1.0}
	s.Fig8Cov = []float64{0.5, 1.0}
	s.LatencyReps = 1
	return s
}

func TestAllExperimentsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	ctx := NewContext(microScale(), t.Logf)
	reports := All(ctx)
	if len(reports) != len(Runners()) {
		t.Fatalf("got %d reports want %d", len(reports), len(Runners()))
	}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" {
			t.Fatalf("report missing metadata: %+v", r)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("experiment %s produced no rows (notes: %v)", r.ID, r.Notes)
		}
		s := r.String()
		if !strings.Contains(s, r.ID) {
			t.Fatalf("rendering of %s lacks its id", r.ID)
		}
		t.Logf("\n%s", s)
	}
}

func TestContextCaching(t *testing.T) {
	ctx := NewContext(microScale(), nil)
	b := ctx.Census()
	m1, _ := ctx.SAMModel(b, 20)
	m2, _ := ctx.SAMModel(b, 20)
	if m1 != m2 {
		t.Fatal("SAM model not cached")
	}
	db1, _ := ctx.SAMDB(b, 20, 500, true)
	db2, _ := ctx.SAMDB(b, 20, 500, true)
	if db1 != db2 {
		t.Fatal("SAM DB not cached")
	}
	db3, _ := ctx.SAMDB(b, 20, 500, false)
	if db3 == db1 {
		t.Fatal("ablation DB must be a distinct cache entry")
	}
}

func TestJobLightQueriesValid(t *testing.T) {
	ctx := NewContext(microScale(), nil)
	b := ctx.IMDB()
	if b.Test.Len() != 12 {
		t.Fatalf("job-light workload has %d queries", b.Test.Len())
	}
	maxTables := 0
	for i := range b.Test.Queries {
		q := &b.Test.Queries[i].Query
		if err := q.Validate(b.Orig); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if len(q.Tables) > maxTables {
			maxTables = len(q.Tables)
		}
	}
	if maxTables < 3 {
		t.Fatalf("job-light workload lacks multi-way joins (max %d tables)", maxTables)
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "LongColumn"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	s := r.String()
	for _, want := range []string{"demo", "LongColumn", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, s)
		}
	}
}

func TestSampleQueriesEvenSpacing(t *testing.T) {
	wl := &workload.Workload{}
	for i := 0; i < 100; i++ {
		wl.Queries = append(wl.Queries, workload.CardQuery{Card: int64(i)})
	}
	got := sampleQueries(wl, 10)
	if len(got) != 10 {
		t.Fatalf("sampled %d", len(got))
	}
	if got[0].Card != 0 || got[9].Card != 90 {
		t.Fatalf("spacing wrong: first %d last %d", got[0].Card, got[9].Card)
	}
	// Requesting more than available returns everything.
	if len(sampleQueries(wl, 500)) != 100 {
		t.Fatal("oversampling broken")
	}
	if len(sampleQueries(wl, 0)) != 100 {
		t.Fatal("zero means all")
	}
}

func TestFmtG(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.2345, "1.23"},
		{123.45, "123.5"},
		{1234567, "1.2e+06"},
		{0.00421, "0.0042"},
		{0, "0.00"},
	}
	for _, c := range cases {
		if got := fmtG(c.v); got != c.want {
			t.Fatalf("fmtG(%v) = %q want %q", c.v, got, c.want)
		}
	}
}

func TestSummaryCells(t *testing.T) {
	s := metrics.Summary{Median: 1, P75: 2, P90: 3, Mean: 4, Max: 5}
	if got := summaryCells(s, false); len(got) != 4 {
		t.Fatalf("cells %v", got)
	}
	if got := summaryCells(s, true); len(got) != 5 || got[4] != "5.00" {
		t.Fatalf("cells with max %v", got)
	}
}

func TestLatenciesOnShape(t *testing.T) {
	ctx := NewContext(microScale(), nil)
	b := ctx.Census()
	lat := latenciesOn(b.Orig, b.Test.Queries[:5], 2)
	if len(lat) != 5 {
		t.Fatalf("latencies %d", len(lat))
	}
	for i, v := range lat {
		if v <= 0 {
			t.Fatalf("latency %d nonpositive: %d", i, v)
		}
	}
}

func TestViewKeyOfMatchesPGM(t *testing.T) {
	if viewKeyOf([]string{"b", "a", "c"}) != "a|b|c" {
		t.Fatalf("viewKeyOf = %q", viewKeyOf([]string{"b", "a", "c"}))
	}
}
