// Package experiments reproduces the SAM paper's evaluation: one runner
// per table (1–9) and figure (5–8), sharing lazily built datasets,
// workloads, trained models and generated databases through a Context.
// Absolute numbers differ from the paper (synthetic datasets, CPU-scale
// model sizes — see DESIGN.md), but each experiment preserves the
// comparison the paper makes: who wins, by roughly what factor, and where
// the crossovers fall.
package experiments

import "time"

// Scale sets every size knob of the evaluation. QuickScale finishes on a
// laptop CPU in minutes; FullScale approaches the paper's workload sizes
// and runs for hours.
type Scale struct {
	CensusRows int
	DMVRows    int
	IMDBTitles int

	CensusTrainQ int // paper: 20K (and 100K for Figure 7)
	DMVTrainQ    int // paper: 20K
	IMDBTrainQ   int // paper: 100K
	TestQ        int // independent test workload per single-relation dataset
	JOBLightQ    int // paper: 70 JOB-light queries

	TinyCensusQ int // paper: 12 (all PGM can process in 12h)
	TinyDMVQ    int // paper: 7
	SmallIMDBQ  int // paper: 400

	EvalInputQ int // input-query sample used for fidelity evaluation (paper: 1000 on IMDB)

	Epochs int
	Hidden int
	Batch  int
	LR     float64

	// GenBatch is the ancestral-sampling lane count used when generating
	// databases from trained models (GenOptions.Batch); ≤ 1 samples one
	// tuple at a time.
	GenBatch int

	IMDBSamples int // FOJ sample budget for IMDB generation

	Fig5SAMPoints []int
	Fig5PGMPoints []int
	PGMPointCap   time.Duration // stop growing Figure 5 PGM curve past this per-point time

	Fig6Samples []int
	Fig7Fracs   []float64
	Fig8Cov     []float64

	LatencyReps int // repetitions per latency measurement (min is kept)

	Seed int64
}

// QuickScale returns the default CPU-friendly configuration.
func QuickScale() Scale {
	return Scale{
		CensusRows: 8000,
		DMVRows:    6000,
		IMDBTitles: 1200,

		CensusTrainQ: 1200,
		DMVTrainQ:    700,
		IMDBTrainQ:   1200,
		TestQ:        250,
		JOBLightQ:    70,

		TinyCensusQ: 12,
		TinyDMVQ:    7,
		SmallIMDBQ:  150,

		EvalInputQ: 300,

		Epochs: 12,
		Hidden: 40,
		Batch:  64,
		LR:     5e-3,

		GenBatch: 64,

		IMDBSamples: 40000,

		Fig5SAMPoints: []int{75, 150, 300, 600, 1200},
		Fig5PGMPoints: []int{2, 4, 8, 12, 16, 32, 64, 128, 256, 512, 1024},
		PGMPointCap:   12 * time.Second,

		Fig6Samples: []int{5000, 10000, 20000, 40000},
		Fig7Fracs:   []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		Fig8Cov:     []float64{0.25, 0.5, 0.75, 1.0},

		LatencyReps: 5,

		Seed: 1,
	}
}

// SmokeScale returns a drastically shrunk configuration for CI smoke runs
// and trace validation: every dataset, workload, and model knob is cut to
// the minimum that still drives the full pipeline (train → sample → weight
// → merge → eval), so a single experiment finishes in seconds.
func SmokeScale() Scale {
	s := QuickScale()
	s.CensusRows = 800
	s.DMVRows = 600
	s.IMDBTitles = 200

	s.CensusTrainQ = 120
	s.DMVTrainQ = 80
	s.IMDBTrainQ = 120
	s.TestQ = 40
	s.JOBLightQ = 10

	s.TinyCensusQ = 6
	s.TinyDMVQ = 5
	s.SmallIMDBQ = 20

	s.EvalInputQ = 40

	s.Epochs = 2
	s.Hidden = 16
	s.Batch = 32

	s.IMDBSamples = 4000
	s.Fig5SAMPoints = []int{30, 60, 120}
	s.Fig5PGMPoints = []int{2, 4, 8}
	s.PGMPointCap = 2 * time.Second
	s.Fig6Samples = []int{500, 1000}
	s.LatencyReps = 1
	return s
}

// FullScale returns a configuration close to the paper's sizes; expect
// multi-hour runtimes on CPU.
func FullScale() Scale {
	s := QuickScale()
	s.CensusRows = 48000
	s.DMVRows = 100000 // paper: 11.6M; capped for CPU memory/time
	s.IMDBTitles = 20000

	s.CensusTrainQ = 20000
	s.DMVTrainQ = 20000
	s.IMDBTrainQ = 100000
	s.TestQ = 1000

	s.SmallIMDBQ = 400
	s.EvalInputQ = 1000

	s.Epochs = 8
	s.Hidden = 64

	s.IMDBSamples = 400000
	s.Fig5SAMPoints = []int{1250, 2500, 5000, 10000, 20000}
	s.Fig5PGMPoints = []int{2, 4, 8, 12, 16, 20, 24}
	s.PGMPointCap = 5 * time.Minute
	s.Fig6Samples = []int{25000, 50000, 100000, 200000, 400000}
	return s
}
