package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/engine"
	"sam/internal/metrics"
	"sam/internal/workload"
)

// Figure5 — processing time against the number of input queries on Census
// and IMDB: SAM scales linearly, PGM as a high-degree polynomial (the PGM
// curve stops once a point exceeds the per-point time cap).
func Figure5(c *Context) *Report {
	r := &Report{
		ID:     "fig5",
		Title:  "Processing time vs. number of input queries (seconds)",
		Header: []string{"Dataset", "Model", "#Queries", "Time(s)"},
	}
	for _, b := range []*Bundle{c.Census(), c.IMDB()} {
		for _, n := range c.Scale.Fig5SAMPoints {
			if n > b.Train.Len() {
				continue
			}
			_, el := c.SAMModel(b, n)
			r.Rows = append(r.Rows, []string{b.Name, "SAM", fmt.Sprint(n), fmt.Sprintf("%.2f", el.Seconds())})
		}
		for _, n := range c.Scale.Fig5PGMPoints {
			if n > b.Train.Len() {
				break
			}
			_, el, err := c.PGMModel(b, n)
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("PGM on %s stopped at %d queries: %v", b.Name, n, err))
				break
			}
			r.Rows = append(r.Rows, []string{b.Name, "PGM", fmt.Sprint(n), fmt.Sprintf("%.2f", el.Seconds())})
			if el > c.Scale.PGMPointCap {
				r.Notes = append(r.Notes, fmt.Sprintf("PGM on %s exceeded the %v per-point cap at %d queries",
					b.Name, c.Scale.PGMPointCap, n))
				break
			}
		}
	}
	return r
}

// Figure6 — generation time and resulting median input-query Q-Error on
// IMDB as the FOJ sample budget grows.
func Figure6(c *Context) *Report {
	r := &Report{
		ID:     "fig6",
		Title:  "IMDB generation time and Q-Error vs. FOJ samples",
		Header: []string{"#Samples", "GenTime(s)", "MedianQErr"},
	}
	b := c.IMDB()
	eval := sampleQueries(b.Train, c.Scale.EvalInputQ)
	for _, k := range c.Scale.Fig6Samples {
		db, el := c.SAMDB(b, 0, k, true)
		qe := c.qErrorsOn(db, eval)
		sum := metrics.Summarize(qe)
		r.Rows = append(r.Rows, []string{fmt.Sprint(k), fmt.Sprintf("%.2f", el.Seconds()), fmtG(sum.Median)})
	}
	return r
}

// Figure7 — database recovery (cross entropy and mean test Q-Error) on
// Census as the training workload grows.
func Figure7(c *Context) *Report {
	r := &Report{
		ID:     "fig7",
		Title:  "Database recovery vs. workload size (Census)",
		Header: []string{"#Queries", "CrossEntropy(bits)", "MeanTestQErr"},
	}
	b := c.Census()
	for _, frac := range c.Scale.Fig7Fracs {
		n := int(frac * float64(b.Train.Len()))
		if n < 1 {
			continue
		}
		db, _ := c.SAMDB(b, n, 0, true)
		h := metrics.CrossEntropyBits(b.Orig.Tables[0], db.Tables[0])
		qe := c.qErrorsOn(db, b.Test.Queries)
		sum := metrics.Summarize(qe)
		r.Rows = append(r.Rows, []string{fmt.Sprint(n), fmtG(h), fmtG(sum.Mean)})
	}
	return r
}

// Figure8 — database recovery on Census as the workload's coverage ratio
// varies: literals restricted to a prefix of each column's domain.
func Figure8(c *Context) *Report {
	r := &Report{
		ID:     "fig8",
		Title:  "Database recovery vs. workload coverage ratio (Census)",
		Header: []string{"Coverage", "CrossEntropy(bits)", "MeanTestQErr"},
	}
	b := c.Census()
	s := c.Scale
	for _, cov := range s.Fig8Cov {
		rng := rand.New(rand.NewSource(s.Seed + 404))
		opts := workload.DefaultSingleRelationOptions()
		opts.CoverageRatio = cov
		queries := workload.GenerateSingleRelation(rng, b.Orig.Tables[0], b.Train.Len(), opts)
		wl := &workload.Workload{Queries: engine.Label(b.Orig, queries)}

		cfg := ar.DefaultTrainConfig()
		cfg.Epochs = s.Epochs
		cfg.BatchSize = s.Batch
		cfg.LR = s.LR
		cfg.Model.Hidden = s.Hidden
		cfg.Seed = s.Seed
		c.Logf("fig8: training SAM on census with coverage %.2f", cov)
		m, err := ar.Train(b.Layout, wl, b.Population, cfg)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("coverage %.2f: %v", cov, err))
			continue
		}
		gen, err := core.FromModel(m, b.Sizes)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("coverage %.2f: %v", cov, err))
			continue
		}
		gopts := core.DefaultGenOptions(s.Seed + 7)
		gopts.Samples = b.Sizes[b.Orig.Tables[0].Name]
		gopts.Batch = s.GenBatch
		db, err := gen.Generate(core.ModelSampler(m, gopts.Batch), gopts)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("coverage %.2f: %v", cov, err))
			continue
		}
		h := metrics.CrossEntropyBits(b.Orig.Tables[0], db.Tables[0])
		qe := c.qErrorsOn(db, b.Test.Queries)
		sum := metrics.Summarize(qe)
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%.2f", cov), fmtG(h), fmtG(sum.Mean)})
	}
	return r
}

// Runner is one named experiment.
type Runner struct {
	ID  string
	Fn  func(*Context) *Report
	Doc string
}

// Runners lists every experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{"fig5", Figure5, "processing time scaling (Census, IMDB)"},
		{"tab1", Table1, "input-query Q-Error, full scale (Census, DMV)"},
		{"tab2", Table2, "input-query Q-Error, tiny workloads (PGM vs SAM)"},
		{"tab3", Table3, "input-query Q-Error on IMDB, full scale"},
		{"tab4", Table4, "input-query Q-Error on IMDB, small workload"},
		{"tab5", Table5, "test-query Q-Error (database recovery)"},
		{"tab6", Table6, "JOB-light Q-Error on IMDB"},
		{"tab7", Table7, "cross entropy of generated relations"},
		{"tab8", Table8, "performance deviation, test queries"},
		{"tab9", Table9, "performance deviation, JOB-light"},
		{"fig6", Figure6, "generation time vs. FOJ samples (IMDB)"},
		{"fig7", Figure7, "recovery vs. workload size (Census)"},
		{"fig8", Figure8, "recovery vs. coverage ratio (Census)"},
		{"ext1", ExtBackbones, "extension: MADE vs Transformer backbone"},
		{"ext2", ExtProgressiveSamples, "extension: DPS progressive-sample sweep"},
		{"ext3", ExtIndependence, "extension: independence baseline comparison"},
	}
}

// All runs every experiment and returns the reports in paper order.
func All(c *Context) []*Report {
	var out []*Report
	for _, r := range Runners() {
		start := time.Now()
		rep := r.Fn(c)
		c.Logf("experiment %s finished in %v", r.ID, time.Since(start).Round(time.Millisecond))
		out = append(out, rep)
	}
	return out
}
