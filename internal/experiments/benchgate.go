package experiments

import (
	"fmt"
	"sort"
)

// CompareBench checks a fresh tensorbench report against a committed
// baseline and returns one violation string per breach (empty = gate
// passes). Three classes of breach:
//
//   - a benchmark present in the baseline is missing from the current run;
//   - ns/op regressed by more than tol (0.25 = fail beyond +25%);
//   - allocs/op grew at all — the hot paths are pinned allocation-free, so
//     any growth is a leak, not noise;
//   - a named speedup ratio (e.g. sample_batched's batched-vs-per-tuple
//     ratio) fell below its required floor.
//
// Only ratios and allocation counts transfer across machines; absolute
// ns/op comparisons assume baseline and current ran on comparable
// hardware, which is why CI regenerates the baseline alongside the run
// instead of trusting numbers measured elsewhere.
func CompareBench(baseline, current *TensorBenchReport, tol float64, minSpeedup map[string]float64) []string {
	cur := map[string]*TensorBenchResult{}
	for i := range current.Results {
		cur[current.Results[i].Name] = &current.Results[i]
	}
	var out []string
	for i := range baseline.Results {
		b := &baseline.Results[i]
		c, ok := cur[b.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but missing from current run", b.Name))
			continue
		}
		if limit := float64(b.NsOp) * (1 + tol); float64(c.NsOp) > limit {
			out = append(out, fmt.Sprintf("%s: ns/op regressed %d → %d (tolerance %.0f%% allows ≤ %.0f)",
				b.Name, b.NsOp, c.NsOp, tol*100, limit))
		}
		if c.AllocsOp > b.AllocsOp {
			out = append(out, fmt.Sprintf("%s: allocs/op grew %d → %d", b.Name, b.AllocsOp, c.AllocsOp))
		}
	}
	for name, min := range minSpeedup {
		c, ok := cur[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: speedup floor %.2fx set but benchmark missing from current run", name, min))
			continue
		}
		if c.Speedup < min {
			out = append(out, fmt.Sprintf("%s: speedup %.2fx below required %.2fx", name, c.Speedup, min))
		}
	}
	sort.Strings(out)
	return out
}
