package core

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"sam/internal/join"
	"sam/internal/obs"
	"sam/internal/relation"
)

// defaultPartitions is the spill fan-out when StreamOptions.Partitions is
// unset. Peak merge memory scales with (samples ÷ partitions).
const defaultPartitions = 64

// StreamResult summarizes one streaming generation run.
type StreamResult struct {
	// CSVPaths maps table name → the CSV file its rows streamed into.
	CSVPaths map[string]string
	// Rows is the emitted row count per table.
	Rows map[string]int
	// Groups is the merge-group count per table (telemetry, mirroring the
	// in-memory path's GenPhase events).
	Groups map[string]int
	// Samples is the number of FOJ samples consumed.
	Samples int
	// SampleWall and MergeWall are the phase wall times (SampleWall is zero
	// when MaterializeStream ran over pre-existing shards).
	SampleWall time.Duration
	MergeWall  time.Duration
}

// Stream replays the shard set's samples in global row order (shard 0
// first), invoking fn per row. buf is the reusable read buffer (row-major,
// a whole number of rows); the row slice passed to fn aliases it.
func (s *ShardSet) Stream(buf []int32, fn func(idx int64, row []int32) error) error {
	ncols := s.NCols
	if len(buf) < ncols {
		return fmt.Errorf("core: stream buffer holds no full row")
	}
	var idx int64
	for _, path := range s.Paths {
		r, err := relation.OpenShardFile(path)
		if err != nil {
			return err
		}
		for {
			n, err := r.ReadRows(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				//lint:allow errpropagate read-only close on an error path; the read error dominates
				r.Close()
				return err
			}
			for i := 0; i < n; i++ {
				if err := fn(idx, buf[i*ncols:(i+1)*ncols]); err != nil {
					//lint:allow errpropagate read-only close on an error path; the callback error dominates
					r.Close()
					return err
				}
				idx++
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
	}
	if idx != int64(s.Total) {
		return fmt.Errorf("core: shard set replayed %d rows, expected %d", idx, s.Total)
	}
	return nil
}

// tableCtx caches the per-table layout lookups the streaming passes make
// per sample.
type tableCtx struct {
	t           *relation.Table
	hasChildren bool
	fanIdx      int
	hasFan      bool
	down        []int
	factor      float64 // per-table weight scaling (Sizes / weight mass)
	ctIdx       []int   // layout column index per t.Cols position
	idCols      []int   // identifier columns (internal tables)
}

// sampleWeight computes one sample's scaled Alg. 2 weight for the table:
// zero for NULL presence, else factor·Π 1/WeightVals — the same float
// expression the in-memory weight pass evaluates.
func (g *Generator) sampleWeight(tc *tableCtx, row []int32) float64 {
	if tc.hasFan && row[tc.fanIdx] == 0 {
		return 0
	}
	wi := 1.0
	for _, f := range tc.down {
		wi /= g.Layout.Cols[f].WeightVals[row[f]]
	}
	return wi * tc.factor
}

// memberRec is one group member carried from the grouping pass to the key
// allocation pass: the sample's global index and its scaled weight.
type memberRec struct {
	idx int64
	w   float64
}

func spillPath(dir, prefix string, part int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%03d", prefix, part))
}

// GenerateStream runs the bounded-memory pipeline end to end: sharded
// sampling to opts.OutDir/shards, then the external Group-and-Merge into
// one CSV per table under opts.OutDir. The shard files are removed
// afterwards unless opts.KeepSamples is set.
func (g *Generator) GenerateStream(newSampler func() join.TupleSampler, opts StreamOptions) (*StreamResult, error) {
	k := opts.Samples
	if k <= 0 {
		for _, t := range g.Layout.Schema.Tables {
			k += g.Sizes[t.Name]
		}
	}
	set, err := g.SampleShards(newSampler, k, opts)
	if err != nil {
		return nil, err
	}
	res, err := g.MaterializeStream(set, opts)
	if err != nil {
		return nil, err
	}
	res.SampleWall = set.Wall
	if !opts.KeepSamples {
		if err := os.RemoveAll(set.Dir); err != nil {
			return nil, fmt.Errorf("core: remove shard dir: %w", err)
		}
	}
	return res, nil
}

// MaterializeStream is the external-memory Group-and-Merge: it turns a
// shard set into one CSV per table under opts.OutDir without ever holding
// the samples — or a table — resident. Per table (topological order) it
// runs three passes over spill files partitioned by group-key hash:
//
//	A: stream samples (merge-joining the parent's span runs by sample
//	   index), spill each surviving record to its group's hash partition;
//	B: group each partition in first-appearance order, writing aggregate
//	   and member runs and accumulating the global weight mass;
//	C: stream the aggregate runs through a systematic key allocator,
//	   emitting rows to the table's CSV and span runs for the children.
//
// Group traversal order is (hash partition, first appearance within the
// partition) — deterministic for fixed (Seed, Partitions), but a
// different order than the in-memory Materialize, so the two paths emit
// statistically equivalent databases rather than identical bytes. Peak
// memory is O(samples ÷ Partitions) plus the streaming buffers.
func (g *Generator) MaterializeStream(set *ShardSet, opts StreamOptions) (*StreamResult, error) {
	if !opts.GroupAndMerge {
		return nil, fmt.Errorf("core: streaming generation requires Group-and-Merge (the pairwise-view ablation is in-memory only)")
	}
	ncols := g.Layout.NumCols()
	if set.NCols != ncols {
		return nil, fmt.Errorf("core: shard set has %d columns, layout wants %d", set.NCols, ncols)
	}
	start := time.Now()
	P := opts.Partitions
	if P <= 0 {
		P = defaultPartitions
	}
	outDir := opts.OutDir
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: out dir: %w", err)
	}
	spillDir := opts.SpillDir
	if spillDir == "" {
		spillDir = filepath.Join(outDir, ".spill")
	}
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: spill dir: %w", err)
	}
	defer os.RemoveAll(spillDir)

	chunkRows := opts.ChunkRows
	if chunkRows <= 0 {
		chunkRows = defaultChunkRows
	}
	buf := make([]int32, chunkRows*ncols)

	// Weight pass: one scan computes every table's weight mass, giving the
	// per-table scaling factors (Alg. 2's |T|/Σw).
	weightSpan := opts.Span.Child("weight")
	wStart := time.Now()
	tcs := make([]*tableCtx, 0, len(g.Layout.Schema.Tables))
	for _, t := range g.Layout.Schema.Tables {
		fanIdx, hasFan := g.Layout.FanoutIndex(t.Name)
		tc := &tableCtx{
			t:           t,
			hasChildren: len(g.Layout.Schema.Children(t.Name)) > 0,
			fanIdx:      fanIdx,
			hasFan:      hasFan,
			down:        g.Layout.DownweightColumns([]string{t.Name}),
			ctIdx:       make([]int, len(t.Cols)),
		}
		for ci, c := range t.Cols {
			tc.ctIdx[ci] = g.Layout.ContentIndex(t.Name, c.Name)
		}
		if tc.hasChildren {
			tc.idCols = g.Layout.IdentifierColumns(t.Name)
		}
		tcs = append(tcs, tc)
	}
	sums := make([]float64, len(tcs))
	err := set.Stream(buf, func(_ int64, row []int32) error {
		for ti, tc := range tcs {
			if tc.hasFan && row[tc.fanIdx] == 0 {
				continue
			}
			wi := 1.0
			for _, f := range tc.down {
				wi /= g.Layout.Cols[f].WeightVals[row[f]]
			}
			sums[ti] += wi
		}
		return nil
	})
	if err != nil {
		weightSpan.End()
		return nil, err
	}
	for ti, tc := range tcs {
		if sums[ti] == 0 {
			weightSpan.End()
			return nil, fmt.Errorf("core: no full-outer-join sample contains relation %s", tc.t.Name)
		}
		tc.factor = float64(g.Sizes[tc.t.Name]) / sums[ti]
		weightSpan.SetAttr("mass_"+tc.t.Name, sums[ti])
		opts.Hooks.GenPhase(obs.GenPhase{
			Phase: "weight", Table: tc.t.Name, Tuples: set.Total,
			MassBefore: sums[ti], MassAfter: float64(g.Sizes[tc.t.Name]),
			Wall: time.Since(wStart),
		})
	}
	weightSpan.End()
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "weight", Shard: -1,
		RecordsIn: int64(set.Total),
		BytesRead: 4 * int64(set.Total) * int64(ncols),
		Wall:      time.Since(wStart),
	})

	mergeSpan := opts.Span.Child("merge")
	defer mergeSpan.End()
	mergeSpan.SetAttr("group_and_merge", true)
	mergeSpan.SetAttr("partitions", P)
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5a17))

	res := &StreamResult{
		CSVPaths: make(map[string]string, len(tcs)),
		Rows:     make(map[string]int, len(tcs)),
		Groups:   make(map[string]int, len(tcs)),
		Samples:  set.Total,
	}
	// Span runs feed every child of a table; drop them once the last child
	// has merged against them.
	childLeft := make(map[string]int)
	for _, tc := range tcs {
		if tc.t.Parent != "" {
			childLeft[tc.t.Parent]++
		}
	}
	for _, tc := range tcs {
		var parent *spanMerge
		if tc.t.Parent != "" {
			parent, err = openSpanMerge(spillDir, tc.t.Parent+".span", P)
			if err != nil {
				return nil, err
			}
		}
		tStart := time.Now()
		// One span per table (path merge/table, attr "name"), with the
		// three spill passes as A/B/C children — the per-pass self/total
		// attribution samtrace renders for a scale run.
		tspan := mergeSpan.Child("table")
		tspan.SetAttr("name", tc.t.Name)
		var rows, groups int
		if tc.hasChildren {
			rows, groups, err = g.streamInternal(set, tc, parent, buf, P, spillDir, outDir, rng, tspan, opts)
		} else {
			rows, groups, err = g.streamLeaf(set, tc, parent, buf, P, spillDir, outDir, rng, tspan, opts)
		}
		tspan.End()
		if parent != nil {
			parent.Close()
			childLeft[tc.t.Parent]--
			if childLeft[tc.t.Parent] == 0 {
				for part := 0; part < P; part++ {
					os.Remove(spillPath(spillDir, tc.t.Parent+".span", part))
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: stream table %s: %w", tc.t.Name, err)
		}
		res.CSVPaths[tc.t.Name] = filepath.Join(outDir, tc.t.Name+".csv")
		res.Rows[tc.t.Name] = rows
		res.Groups[tc.t.Name] = groups
		opts.Hooks.GenPhase(obs.GenPhase{
			Phase: "merge", Table: tc.t.Name, Tuples: rows,
			Groups: groups, Wall: time.Since(tStart),
		})
	}
	res.MergeWall = time.Since(start)
	return res, nil
}

// csvSink wraps the buffered CSV pipeline for one table.
type csvSink struct {
	f  *os.File
	bw *bufio.Writer
	rw *relation.CSVRowWriter
}

func newCSVSink(path string, t *relation.Table, withPK bool) (*csvSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("core: create csv: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	rw, err := relation.NewCSVRowWriter(bw, t, withPK)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &csvSink{f: f, bw: bw, rw: rw}, nil
}

func (s *csvSink) close() error {
	err := s.rw.Flush()
	if ferr := s.bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// streamInternal materializes one primary-key table: pass A spills
// (identifier bins, assigned parent key)-grouped records, pass B
// aggregates each partition into agg+member runs, pass C allocates keys
// systematically, emits one CSV row per key, and cell-walks each group's
// members into span runs for the children.
//
// Each pass runs under its own child span of tspan and reports an
// obs.StreamPass event (records in/out, spill bytes, run counts, the
// parent heap-merge fan-in). All of it is observational: the spill bytes,
// group order, and emitted CSV are identical with observers on or off.
func (g *Generator) streamInternal(set *ShardSet, tc *tableCtx, parent *spanMerge,
	buf []int32, P int, spillDir, outDir string, rng *rand.Rand, tspan *obs.Span, opts StreamOptions) (int, int, error) {
	name := tc.t.Name
	nid, nc := len(tc.idCols), len(tc.ctIdx)
	rawSize := 24 + 4*(nid+nc)
	aggSize := 20 + 4*nc
	fan := parent.fanIn()

	// Pass A: spill surviving samples to group-hash partitions.
	aStart := time.Now()
	passA := tspan.Child("A")
	passA.SetAttr("fan_in", fan)
	pw, err := newPartWriter(spillDir, name+".raw", P)
	if err != nil {
		passA.End()
		return 0, 0, err
	}
	coarse := make([]int32, nid)
	content := make([]int32, nc)
	var keyBuf, recBuf []byte
	var spans []keySpan
	var spilled int64
	err = set.Stream(buf, func(idx int64, row []int32) error {
		// Drain the parent's spans for every index, even filtered ones,
		// to keep the merge-join aligned.
		if parent != nil {
			spans, err = parent.spansFor(idx, spans[:0])
			if err != nil {
				return err
			}
		}
		wi := g.sampleWeight(tc, row)
		if wi <= 0 {
			return nil
		}
		var pk int64
		if parent != nil {
			if len(spans) == 0 {
				return nil // parent absent: inconsistent sample
			}
			pk = majorityKey(spans)
		}
		g.groupBins(row, tc.idCols, coarse)
		for ci, li := range tc.ctIdx {
			content[ci] = row[li]
		}
		keyBuf = packKey(keyBuf[:0], coarse, pk)
		recBuf = putU64(recBuf[:0], uint64(idx))
		recBuf = putF64(recBuf, wi)
		recBuf = putU64(recBuf, uint64(pk))
		recBuf = putI32s(recBuf, coarse)
		recBuf = putI32s(recBuf, content)
		spilled++
		return pw.write(spillPartition(keyBuf, P), recBuf)
	})
	if err == nil {
		err = pw.close()
	}
	passA.SetAttr("records_out", spilled)
	passA.End()
	if err != nil {
		pw.cleanup()
		return 0, 0, err
	}
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "A", Table: name, Shard: -1,
		RecordsIn: int64(set.Total), RecordsOut: spilled,
		Runs: P, FanIn: fan,
		BytesWritten: spilled * int64(rawSize),
		Wall:         time.Since(aStart),
	})

	// Pass B: group each partition (first-appearance order), write agg and
	// member runs, accumulate the global weight mass in group order.
	bStart := time.Now()
	type igroup struct {
		gw      float64
		pk      int64
		content []int32
		members int
	}
	var sum float64
	groups := 0
	err = func() error {
		passB := tspan.Child("B")
		defer passB.End()
		for part := 0; part < P; part++ {
			var order []*igroup
			lookup := make(map[string]*igroup)
			perGroup := make(map[*igroup][]memberRec)
			err := readRecords(pw.paths[part], rawSize, func(rec []byte) error {
				idx := int64(getU64(rec))
				w := getF64(rec[8:])
				// Group key = parent-key bytes + coarse identifier bytes,
				// reused straight from the record.
				key := string(rec[16 : 24+4*nid])
				grp := lookup[key]
				if grp == nil {
					ct := make([]int32, nc)
					getI32s(rec[24+4*nid:], ct)
					grp = &igroup{pk: int64(getU64(rec[16:])), content: ct}
					lookup[key] = grp
					order = append(order, grp)
				}
				grp.gw += w
				grp.members++
				perGroup[grp] = append(perGroup[grp], memberRec{idx: idx, w: w})
				return nil
			})
			if err != nil {
				return err
			}
			aggF, err := os.Create(spillPath(spillDir, name+".agg", part))
			if err != nil {
				return fmt.Errorf("core: create agg run: %w", err)
			}
			memF, err := os.Create(spillPath(spillDir, name+".mem", part))
			if err != nil {
				aggF.Close()
				return fmt.Errorf("core: create member run: %w", err)
			}
			aggW := bufio.NewWriterSize(aggF, 1<<15)
			memW := bufio.NewWriterSize(memF, 1<<15)
			for _, grp := range order {
				sum += grp.gw
				recBuf = putF64(recBuf[:0], grp.gw)
				recBuf = putU64(recBuf, uint64(grp.pk))
				recBuf = append(recBuf, byte(grp.members), byte(grp.members>>8), byte(grp.members>>16), byte(grp.members>>24))
				recBuf = putI32s(recBuf, grp.content)
				if _, err := aggW.Write(recBuf); err != nil {
					aggF.Close()
					memF.Close()
					return fmt.Errorf("core: write agg run: %w", err)
				}
				for _, m := range perGroup[grp] {
					recBuf = putU64(recBuf[:0], uint64(m.idx))
					recBuf = putF64(recBuf, m.w)
					if _, err := memW.Write(recBuf); err != nil {
						aggF.Close()
						memF.Close()
						return fmt.Errorf("core: write member run: %w", err)
					}
				}
			}
			groups += len(order)
			if err := flushClose(aggW, aggF); err != nil {
				memF.Close()
				return err
			}
			if err := flushClose(memW, memF); err != nil {
				return err
			}
			os.Remove(pw.paths[part])
		}
		passB.SetAttr("groups", groups)
		return nil
	}()
	if err != nil {
		return 0, 0, err
	}
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "B", Table: name, Shard: -1,
		RecordsIn: spilled, RecordsOut: int64(groups),
		Runs:         2 * P, // one agg + one member run per partition
		BytesRead:    spilled * int64(rawSize),
		BytesWritten: int64(groups)*int64(aggSize) + spilled*16,
		Wall:         time.Since(bStart),
	})

	// Pass C: allocate |T| keys across groups in order, one CSV row per
	// key, span runs for the children. Groups resolve with a one-group
	// delay so the final group absorbs the allocator's drift remainder
	// (matching systematicCounts).
	cStart := time.Now()
	passC := tspan.Child("C")
	sink, err := newCSVSink(filepath.Join(outDir, name+".csv"), tc.t, true)
	if err != nil {
		passC.End()
		return 0, 0, err
	}
	alloc := newSysAlloc(sum, g.Sizes[name])
	type pgroup struct {
		gw      float64
		pk      int64
		content []int32
		members []memberRec
		count   int
		part    int
	}
	var pending *pgroup
	var counter int64
	vals := make([]int32, nc)
	var spanBuf []spanRec
	var spanRecs int64 // span-run records written, for the pass C event
	curSpanPart := 0
	flushSpansTo := func(part int) error {
		for curSpanPart < part {
			if err := writeSpanRun(spillPath(spillDir, name+".span", curSpanPart), spanBuf); err != nil {
				return err
			}
			spanRecs += int64(len(spanBuf))
			spanBuf = spanBuf[:0]
			curSpanPart++
		}
		return nil
	}
	emit := func(p *pgroup) error {
		if p.count == 0 {
			return nil
		}
		if err := flushSpansTo(p.part); err != nil {
			return err
		}
		cell := p.gw / float64(p.count)
		base := counter
		counter += int64(p.count)
		for j := 0; j < p.count; j++ {
			for ci := range vals {
				vals[ci] = g.Disc[tc.ctIdx[ci]].SampleIn(rng, int(p.content[ci]))
			}
			if err := sink.rw.WriteRow(base+int64(j), vals, p.pk); err != nil {
				return err
			}
		}
		acc := 0.0
		for _, m := range p.members {
			start, end := acc, acc+m.w
			acc = end
			first := int(start / cell)
			last := int((end - 1e-12) / cell)
			if first >= p.count {
				first = p.count - 1
			}
			if last >= p.count {
				last = p.count - 1
			}
			for c := first; c <= last; c++ {
				lo := math.Max(start, float64(c)*cell)
				hi := math.Min(end, float64(c+1)*cell)
				frac := (hi - lo) / m.w
				if frac <= 0 {
					continue
				}
				spanBuf = append(spanBuf, spanRec{idx: m.idx, key: base + int64(c), frac: frac})
			}
		}
		return nil
	}
	streamErr := func() error {
		aggRec := make([]byte, aggSize)
		memRec := make([]byte, 16)
		for part := 0; part < P; part++ {
			aggF, err := os.Open(spillPath(spillDir, name+".agg", part))
			if err != nil {
				return fmt.Errorf("core: open agg run: %w", err)
			}
			memF, err := os.Open(spillPath(spillDir, name+".mem", part))
			if err != nil {
				aggF.Close()
				return fmt.Errorf("core: open member run: %w", err)
			}
			aggR := bufio.NewReaderSize(aggF, 1<<15)
			memR := bufio.NewReaderSize(memF, 1<<15)
			for {
				_, err := io.ReadFull(aggR, aggRec)
				if err == io.EOF {
					break
				}
				if err != nil {
					aggF.Close()
					memF.Close()
					return fmt.Errorf("core: read agg run: %w", err)
				}
				grp := &pgroup{
					gw:      getF64(aggRec),
					pk:      int64(getU64(aggRec[8:])),
					content: make([]int32, nc),
					part:    part,
				}
				getI32s(aggRec[20:], grp.content)
				n := int(getI32(aggRec[16:]))
				grp.members = make([]memberRec, n)
				for mi := 0; mi < n; mi++ {
					if _, err := io.ReadFull(memR, memRec); err != nil {
						aggF.Close()
						memF.Close()
						return fmt.Errorf("core: read member run: %w", err)
					}
					grp.members[mi] = memberRec{idx: int64(getU64(memRec)), w: getF64(memRec[8:])}
				}
				grp.count = alloc.next(grp.gw)
				if pending != nil {
					if err := emit(pending); err != nil {
						aggF.Close()
						memF.Close()
						return err
					}
				}
				pending = grp
			}
			aggF.Close()
			memF.Close()
			os.Remove(spillPath(spillDir, name+".agg", part))
			os.Remove(spillPath(spillDir, name+".mem", part))
		}
		if pending != nil {
			pending.count += alloc.leftover()
			if err := emit(pending); err != nil {
				return err
			}
			pending = nil
		}
		return flushSpansTo(P)
	}()
	if cerr := sink.close(); streamErr == nil {
		streamErr = cerr
	}
	passC.SetAttr("rows", counter)
	passC.End()
	if streamErr != nil {
		return 0, 0, streamErr
	}
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "C", Table: name, Shard: -1,
		RecordsIn: int64(groups), RecordsOut: counter,
		Runs:         P, // one child span run per partition
		BytesRead:    int64(groups)*int64(aggSize) + spilled*16,
		BytesWritten: spanRecs * spanRecSize,
		Wall:         time.Since(cStart),
	})
	return int(counter), groups, nil
}

func flushClose(bw *bufio.Writer, f *os.File) error {
	err := bw.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("core: flush spill run: %w", err)
	}
	return nil
}

// streamLeaf materializes a leaf table: pass A spills one record per
// (sample, parent span) with weight w·frac, pass B aggregates by (content
// bins, parent key), and pass C rescales the aggregate mass to |T| and
// emits the allocated row counts — each row decoded fresh, as in the
// in-memory path.
//
// As in streamInternal, each pass runs under its own child span of tspan
// and reports an obs.StreamPass event; the instrumentation never alters
// the spill bytes or the emitted CSV.
func (g *Generator) streamLeaf(set *ShardSet, tc *tableCtx, parent *spanMerge,
	buf []int32, P int, spillDir, outDir string, rng *rand.Rand, tspan *obs.Span, opts StreamOptions) (int, int, error) {
	name := tc.t.Name
	nc := len(tc.ctIdx)
	rawSize := 16 + 4*nc
	fan := parent.fanIn()

	aStart := time.Now()
	passA := tspan.Child("A")
	passA.SetAttr("fan_in", fan)
	pw, err := newPartWriter(spillDir, name+".raw", P)
	if err != nil {
		passA.End()
		return 0, 0, err
	}
	content := make([]int32, nc)
	var keyBuf, recBuf []byte
	var spans []keySpan
	var spilled int64
	spill := func(pk int64, w float64) error {
		keyBuf = packKey(keyBuf[:0], content, pk)
		recBuf = putU64(recBuf[:0], uint64(pk))
		recBuf = putF64(recBuf, w)
		recBuf = putI32s(recBuf, content)
		spilled++
		return pw.write(spillPartition(keyBuf, P), recBuf)
	}
	err = set.Stream(buf, func(idx int64, row []int32) error {
		if parent != nil {
			spans, err = parent.spansFor(idx, spans[:0])
			if err != nil {
				return err
			}
		}
		wi := g.sampleWeight(tc, row)
		if wi <= 0 {
			return nil
		}
		for ci, li := range tc.ctIdx {
			content[ci] = row[li]
		}
		if parent == nil {
			return spill(0, wi)
		}
		for _, sp := range spans {
			if err := spill(sp.key, wi*sp.frac); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		err = pw.close()
	}
	passA.SetAttr("records_out", spilled)
	passA.End()
	if err != nil {
		pw.cleanup()
		return 0, 0, err
	}
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "A", Table: name, Shard: -1,
		RecordsIn: int64(set.Total), RecordsOut: spilled,
		Runs: P, FanIn: fan,
		BytesWritten: spilled * int64(rawSize),
		Wall:         time.Since(aStart),
	})

	// Pass B: aggregate each partition by (content, parent key).
	bStart := time.Now()
	type lgroup struct {
		gw      float64
		fk      int64
		content []int32
	}
	aggSize := 16 + 4*nc
	var aggSum float64
	groups := 0
	err = func() error {
		passB := tspan.Child("B")
		defer passB.End()
		for part := 0; part < P; part++ {
			var order []*lgroup
			lookup := make(map[string]*lgroup)
			err := readRecords(pw.paths[part], rawSize, func(rec []byte) error {
				key := string(rec[0:8]) + string(rec[16:16+4*nc]) // pk bytes + content bytes
				grp := lookup[key]
				if grp == nil {
					ct := make([]int32, nc)
					getI32s(rec[16:], ct)
					grp = &lgroup{fk: int64(getU64(rec)), content: ct}
					lookup[key] = grp
					order = append(order, grp)
				}
				grp.gw += getF64(rec[8:])
				return nil
			})
			if err != nil {
				return err
			}
			aggF, err := os.Create(spillPath(spillDir, name+".agg", part))
			if err != nil {
				return fmt.Errorf("core: create agg run: %w", err)
			}
			aggW := bufio.NewWriterSize(aggF, 1<<15)
			for _, grp := range order {
				aggSum += grp.gw
				recBuf = putF64(recBuf[:0], grp.gw)
				recBuf = putU64(recBuf, uint64(grp.fk))
				recBuf = putI32s(recBuf, grp.content)
				if _, err := aggW.Write(recBuf); err != nil {
					aggF.Close()
					return fmt.Errorf("core: write agg run: %w", err)
				}
			}
			groups += len(order)
			if err := flushClose(aggW, aggF); err != nil {
				return err
			}
			os.Remove(pw.paths[part])
		}
		passB.SetAttr("groups", groups)
		return nil
	}()
	if err != nil {
		return 0, 0, err
	}
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "B", Table: name, Shard: -1,
		RecordsIn: spilled, RecordsOut: int64(groups),
		Runs:         P, // one agg run per partition (leaves have no members)
		BytesRead:    spilled * int64(rawSize),
		BytesWritten: int64(groups) * int64(aggSize),
		Wall:         time.Since(bStart),
	})

	// Pass C: rescale the aggregate mass to |T| (restoring mass lost with
	// dropped parent groups, exactly as the in-memory leaf path does
	// before rounding), then systematic allocation over scaled aggregate
	// weights, rows decoded per emission.
	cStart := time.Now()
	passC := tspan.Child("C")
	factor := 0.0
	if aggSum > 0 {
		factor = float64(g.Sizes[name]) / aggSum
	}
	var scaledSum float64
	for part := 0; part < P; part++ {
		err := readRecords(spillPath(spillDir, name+".agg", part), aggSize, func(rec []byte) error {
			scaledSum += getF64(rec) * factor
			return nil
		})
		if err != nil {
			passC.End()
			return 0, 0, err
		}
	}

	sink, err := newCSVSink(filepath.Join(outDir, name+".csv"), tc.t, false)
	if err != nil {
		passC.End()
		return 0, 0, err
	}
	alloc := newSysAlloc(scaledSum, g.Sizes[name])
	type pgroup struct {
		fk      int64
		content []int32
		count   int
	}
	var pending *pgroup
	rows := 0
	vals := make([]int32, nc)
	emit := func(p *pgroup) error {
		for j := 0; j < p.count; j++ {
			for ci := range vals {
				vals[ci] = g.Disc[tc.ctIdx[ci]].SampleIn(rng, int(p.content[ci]))
			}
			if err := sink.rw.WriteRow(0, vals, p.fk); err != nil {
				return err
			}
			rows++
		}
		return nil
	}
	streamErr := func() error {
		for part := 0; part < P; part++ {
			path := spillPath(spillDir, name+".agg", part)
			err := readRecords(path, aggSize, func(rec []byte) error {
				grp := &pgroup{fk: int64(getU64(rec[8:])), content: make([]int32, nc)}
				getI32s(rec[16:], grp.content)
				grp.count = alloc.next(getF64(rec) * factor)
				if pending != nil {
					if err := emit(pending); err != nil {
						return err
					}
				}
				pending = grp
				return nil
			})
			if err != nil {
				return err
			}
			os.Remove(path)
		}
		if pending != nil {
			pending.count += alloc.leftover()
			if err := emit(pending); err != nil {
				return err
			}
			pending = nil
		}
		return nil
	}()
	if cerr := sink.close(); streamErr == nil {
		streamErr = cerr
	}
	passC.SetAttr("rows", rows)
	passC.End()
	if streamErr != nil {
		return 0, 0, streamErr
	}
	opts.Hooks.StreamPass(obs.StreamPass{
		Pass: "C", Table: name, Shard: -1,
		RecordsIn: int64(groups), RecordsOut: int64(rows),
		// Two scans over the agg runs: the rescale pre-pass and the
		// allocation walk.
		BytesRead: 2 * int64(groups) * int64(aggSize),
		Wall:      time.Since(cStart),
	})
	return rows, groups, nil
}
