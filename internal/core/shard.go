package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sam/internal/ar"
	"sam/internal/join"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/tensor"
)

// StreamOptions configures the sharded, bounded-memory generation path.
// It extends GenOptions: Seed/Batch/Workers keep their meanings, but the
// determinism contract tightens — a shard's bytes are a pure function of
// (Seed, shard index, shard row range, Batch), independent of Workers,
// ChunkRows, and of which goroutine happens to sample the shard. Workers
// only parallelize across shards.
type StreamOptions struct {
	GenOptions

	// Shards is the number of sample shards; 0 derives one shard per
	// defaultShardRows rows (at least one). The shard count is part of the
	// reproducibility coordinates: it fixes each shard's row range.
	Shards int
	// OutDir receives the shard sample files (subdirectory "shards") and,
	// via GenerateStream, one CSV per generated table.
	OutDir string
	// ChunkRows bounds the rows buffered between a shard's sampling
	// goroutine and its writer; 0 defaults to 8192. Purely a
	// memory/backpressure knob — output bytes do not depend on it.
	ChunkRows int
	// Partitions is the spill fan-out of the external group-and-merge;
	// 0 defaults to 64. Part of the merge's determinism coordinates (it
	// fixes the group traversal order), not of the shard sampling contract.
	Partitions int
	// SpillDir holds the merge's temporary partition files; defaults to
	// OutDir/.spill and is removed when the merge finishes.
	SpillDir string
	// KeepSamples leaves the shard sample files in place after
	// GenerateStream materializes the tables (they are removed otherwise).
	KeepSamples bool
}

// DefaultStreamOptions mirrors DefaultGenOptions for the streaming path.
func DefaultStreamOptions(seed int64, outDir string) StreamOptions {
	return StreamOptions{GenOptions: DefaultGenOptions(seed), OutDir: outDir}
}

// defaultShardRows sizes auto-derived shards. Deliberately a function of
// the requested row count only — never of the machine — so default runs
// stay reproducible across hosts.
const defaultShardRows = 1 << 18

// defaultChunkRows bounds sampler→writer buffering per shard.
const defaultChunkRows = 8192

// chunkBuffers is the depth of each shard's free-buffer pool: the sampler
// stalls (backpressure) once this many chunks are in flight to the writer.
const chunkBuffers = 3

// shardCount resolves the shard count for k rows.
func (o *StreamOptions) shardCount(k int) int {
	if o.Shards > 0 {
		return min(o.Shards, max(k, 1))
	}
	return max((k+defaultShardRows-1)/defaultShardRows, 1)
}

// shardRange returns shard s's row range under S balanced shards of k.
func shardRange(k, S, s int) (lo, hi int) {
	return s * k / S, (s + 1) * k / S
}

// ShardSet describes the sample shards one run produced: where they are,
// how many rows each holds, and the sampling coordinates needed to
// regenerate any of them independently.
type ShardSet struct {
	Dir   string
	NCols int
	Seed  int64
	Batch int
	Paths []string
	Rows  []int
	Total int
	// Wall is the sampling phase's wall time (telemetry for scale
	// benchmarks).
	Wall time.Duration
}

// Bytes sums the on-disk size of the shard files.
func (s *ShardSet) Bytes() int64 {
	var n int64
	for _, p := range s.Paths {
		if fi, err := os.Stat(p); err == nil {
			n += fi.Size()
		}
	}
	return n
}

// OpenShardSet rebuilds a ShardSet from a directory of shard files
// (sorted by shard index); used to re-merge previously sampled shards.
func OpenShardSet(dir string) (*ShardSet, error) {
	set := &ShardSet{Dir: dir}
	for shard := 0; ; shard++ {
		path := filepath.Join(dir, relation.ShardFileName(shard))
		r, err := relation.OpenShardFile(path)
		if errors.Is(err, os.ErrNotExist) {
			break
		}
		if err != nil {
			return nil, err
		}
		rows := int(r.Rows())
		if set.NCols == 0 {
			set.NCols = r.NCols()
			set.Seed = r.Seed()
		} else if r.NCols() != set.NCols {
			//lint:allow errpropagate read-only close on an error path; the column mismatch dominates
			r.Close()
			return nil, fmt.Errorf("core: shard %d has %d columns, want %d", shard, r.NCols(), set.NCols)
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		if rows < 0 {
			return nil, fmt.Errorf("core: shard %d has no recorded row count", shard)
		}
		set.Paths = append(set.Paths, path)
		set.Rows = append(set.Rows, rows)
		set.Total += rows
	}
	if len(set.Paths) == 0 {
		//lint:allow closeleak the loop only breaks when OpenShardFile failed, so r is nil here; every opened reader was closed in the loop body
		return nil, fmt.Errorf("core: no shard files in %s", dir)
	}
	return set, nil
}

// SampleShards draws k sanitized FOJ samples into len == shardCount binary
// shard files under opts.OutDir/shards. Shards are sampled by up to
// opts.Workers goroutines (one shard at a time each), and each shard
// streams through a bounded chunk pipeline to its writer, so peak memory
// is O(workers × ChunkRows × NumCols) regardless of k.
//
// Shard s's bytes are a pure function of (Seed, s, its row range, Batch):
// lane l of shard s always consumes rng stream
// ar.LaneSeed(ar.SplitSeed(Seed, s), l), whichever goroutine samples it
// and in whatever order shards are claimed.
func (g *Generator) SampleShards(newSampler func() join.TupleSampler, k int, opts StreamOptions) (*ShardSet, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: sample count %d must be positive", k)
	}
	span := opts.Span.Child("sample")
	defer span.End()
	start := time.Now()

	ncols := g.Layout.NumCols()
	S := opts.shardCount(k)
	batch := max(opts.Batch, 1)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(max(workers, 1), S)
	chunkRows := opts.ChunkRows
	if chunkRows <= 0 {
		chunkRows = defaultChunkRows
	}
	// Chunks hold whole sweeps so a batched sweep never straddles buffers.
	chunkRows = (chunkRows + batch - 1) / batch * batch

	dir := filepath.Join(opts.OutDir, "shards")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: shard dir: %w", err)
	}

	span.SetAttr("tuples", k)
	span.SetAttr("shards", S)
	span.SetAttr("workers", workers)
	span.SetAttr("batch", batch)

	var prog *obs.Progress
	if opts.Hooks.WantsGenProgress() {
		prog = obs.NewProgress(int64(k), 2*time.Second)
	}
	const progressInterval = 100 * time.Millisecond
	emitProgress := func(n int) {
		if prog == nil {
			return
		}
		prog.Add(int64(n))
		if prog.ShouldEmit(progressInterval) {
			s := prog.Snapshot()
			opts.Hooks.GenProgress(obs.GenProgress{
				Phase: "sample", Done: int(s.Done), Total: int(s.Total),
				Rate: s.Rate, ETA: s.ETA,
			})
		}
	}

	set := &ShardSet{Dir: dir, NCols: ncols, Seed: opts.Seed, Batch: batch,
		Paths: make([]string, S), Rows: make([]int, S), Total: k}

	// Worker×lane composition as in drawSamples: each extra sampling
	// goroutine holds a kernel token so sampler parallelism and the matmul
	// kernels share one core budget.
	phys := 1
	if workers > 1 {
		phys += tensor.AcquireKernelTokens(workers - 1)
	}

	var failed atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func() {
		rngs := make([]*rand.Rand, batch)
		for l := range rngs {
			rngs[l] = rand.New(rand.NewSource(0))
		}
		sampler := newSampler()
		for {
			si := int(next.Add(1)) - 1
			if si >= S || failed.Load() {
				return
			}
			lo, hi := shardRange(k, S, si)
			rows, path, err := g.sampleOneShard(sampler, rngs, si, hi-lo, dir, chunkRows, span, opts, emitProgress)
			if err != nil {
				fail(fmt.Errorf("core: shard %d: %w", si, err))
				return
			}
			set.Paths[si] = path
			set.Rows[si] = rows
		}
	}
	for p := 1; p < phys; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
	if phys > 1 {
		tensor.ReleaseKernelTokens(phys - 1)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if prog != nil {
		s := prog.Snapshot()
		opts.Hooks.GenProgress(obs.GenProgress{
			Phase: "sample", Done: int(s.Done), Total: int(s.Total), Rate: s.Rate,
		})
	}
	set.Wall = time.Since(start)
	span.SetAttr("goroutines", phys)
	opts.Hooks.GenPhase(obs.GenPhase{Phase: "sample", Tuples: k, Wall: set.Wall})
	return set, nil
}

// SampleShard regenerates a single shard of a (Seed, k, shardCount, Batch)
// configuration, bit-identical to the same shard of a full SampleShards
// run — the contract that lets a lost or corrupted shard be rebuilt
// without touching the others. The shard file is written under dir (a
// shard directory, e.g. ShardSet.Dir).
func (g *Generator) SampleShard(newSampler func() join.TupleSampler, k, shard int, dir string, opts StreamOptions) (string, int, error) {
	S := opts.shardCount(k)
	if shard < 0 || shard >= S {
		return "", 0, fmt.Errorf("core: shard %d outside [0,%d)", shard, S)
	}
	batch := max(opts.Batch, 1)
	chunkRows := opts.ChunkRows
	if chunkRows <= 0 {
		chunkRows = defaultChunkRows
	}
	chunkRows = (chunkRows + batch - 1) / batch * batch
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("core: shard dir: %w", err)
	}
	rngs := make([]*rand.Rand, batch)
	for l := range rngs {
		rngs[l] = rand.New(rand.NewSource(0))
	}
	lo, hi := shardRange(k, S, shard)
	rows, path, err := g.sampleOneShard(newSampler(), rngs, shard, hi-lo, dir, chunkRows, opts.Span, opts, func(int) {})
	if err != nil {
		return "", 0, fmt.Errorf("core: shard %d: %w", shard, err)
	}
	return path, rows, nil
}

// sampleOneShard draws rows tuples for one shard, streaming them to the
// shard file through a bounded chunk pipeline: the sampler fills pooled
// chunk buffers and blocks when chunkBuffers of them are in flight, the
// writer goroutine drains them in order. The chunk size affects only
// memory and syscall granularity — the byte stream is fixed by
// (Seed, shard, rows, Batch).
//
// Telemetry (the per-shard span under psp, the stream_pass "shard" event
// with its backpressure wait) is strictly observational: the sampling
// order, rng consumption, and shard bytes are identical with observers on
// or off, and the per-chunk wait clock only runs when a hook listens.
func (g *Generator) sampleOneShard(sampler join.TupleSampler, rngs []*rand.Rand,
	shard, rows int, dir string, chunkRows int, psp *obs.Span, opts StreamOptions, emitProgress func(int)) (int, string, error) {
	ncols := g.Layout.NumCols()
	batch := len(rngs)
	base := ar.SplitSeed(opts.Seed, shard)
	for l := range rngs {
		rngs[l].Seed(ar.LaneSeed(base, l))
	}

	shardStart := time.Now()
	sp := psp.Child("shard")
	sp.SetAttr("shard", shard)
	sp.SetAttr("rows", rows)
	defer sp.End()
	wantPass := opts.Hooks.WantsStreamPass()

	w, err := relation.CreateShardFile(dir, shard, ncols, opts.Seed)
	if err != nil {
		return 0, "", err
	}

	type chunk struct {
		buf  []int32
		rows int
	}
	full := make(chan chunk, chunkBuffers)
	free := make(chan []int32, chunkBuffers)
	for i := 0; i < chunkBuffers; i++ {
		free <- make([]int32, chunkRows*ncols)
	}
	var writeFailed atomic.Bool
	writeErr := make(chan error, 1)
	go func() {
		var err error
		for c := range full {
			if err == nil {
				if err = w.WriteRows(c.buf[:c.rows*ncols]); err != nil {
					writeFailed.Store(true)
				}
			}
			free <- c.buf
		}
		writeErr <- err
	}()

	bs, okBatch := sampler.(join.BatchTupleSampler)
	okBatch = okBatch && batch > 1 && bs.BatchCap() >= batch

	// bpWait accumulates time blocked on the bounded chunk pipeline (all
	// chunkBuffers buffers in flight to the writer) — the backpressure
	// signal behind stream_backpressure_wait_seconds. The clock only runs
	// when a StreamPass hook listens; the channel protocol is identical
	// either way.
	var bpWait time.Duration
	takeFree := func() []int32 {
		if !wantPass {
			return <-free
		}
		select {
		case buf := <-free:
			return buf
		default:
		}
		waitStart := time.Now()
		buf := <-free
		bpWait += time.Since(waitStart)
		return buf
	}
	cur := takeFree()
	filled := 0 // rows in cur
	flush := func() {
		if filled > 0 {
			full <- chunk{cur, filled}
			cur = takeFree()
			filled = 0
		}
	}
	for done := 0; done < rows && !writeFailed.Load(); {
		n := min(batch, rows-done)
		dst := cur[filled*ncols : (filled+n)*ncols]
		if okBatch && n > 0 {
			bs.SampleFOJBatch(rngs[:n], dst)
			for i := 0; i < n; i++ {
				g.sanitize(dst[i*ncols : (i+1)*ncols])
			}
		} else {
			// Per-tuple fallback keeps the same lane-strided rng assignment
			// as the batched kernel, matching drawSamples.
			for i := 0; i < n; i++ {
				row := dst[i*ncols : (i+1)*ncols]
				sampler.SampleFOJ(rngs[i], row)
				g.sanitize(row)
			}
		}
		filled += n
		done += n
		emitProgress(n)
		if filled == chunkRows {
			flush()
		}
	}
	flush()
	close(full)
	err = <-writeErr
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, "", err
	}
	if wantPass {
		sp.SetAttr("backpressure_us", bpWait.Microseconds())
		opts.Hooks.StreamPass(obs.StreamPass{
			Pass: "shard", Shard: shard,
			RecordsOut:       int64(rows),
			BytesWritten:     4 * int64(rows) * int64(ncols),
			BackpressureWait: bpWait,
			Wall:             time.Since(shardStart),
		})
	}
	return rows, w.Path(), nil
}
