// Package core implements SAM's database generation pipeline — the paper's
// primary contribution. From uniform full-outer-join samples (drawn from a
// trained autoregressive model, or from any join.TupleSampler) it derives
// unbiased base-relation samples via inverse probability weighting (Alg. 2),
// scales them to the true relation sizes, assigns join keys with the
// Group-and-Merge algorithm (Alg. 3, extended recursively to multi-level
// trees), and materializes a synthetic database. Single-relation generation
// (Alg. 1) is the degenerate case with no virtual columns.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sam/internal/ar"
	"sam/internal/join"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/tensor"
)

// GenOptions controls the generation pass.
type GenOptions struct {
	// Samples is the number of full-outer-join tuples to draw (the paper's
	// k). Zero defaults to the sum of target table sizes.
	Samples int
	// Workers bounds sampling parallelism; 0 = GOMAXPROCS.
	Workers int
	// Batch is the number of sampling lanes each worker advances through
	// the model per forward sweep (batched ancestral sampling); values ≤ 1
	// draw one tuple at a time. Each lane owns an rng stream derived from
	// Seed, so output is deterministic for a fixed (Seed, Workers, Batch)
	// triple, and Batch ≤ 1 reproduces the legacy per-worker streams
	// exactly.
	Batch int
	// Seed drives all sampling randomness.
	Seed int64
	// GroupAndMerge selects join-key assignment: true runs Algorithm 3;
	// false is the paper's "SAM w/o Group-and-Merge" ablation, which
	// assigns foreign keys from pairwise views (Figure 4).
	GroupAndMerge bool

	// Hooks, when non-nil, observes the generation phases: tuples sampled,
	// per-table weight mass before/after scaling, and merge-group counts.
	Hooks *obs.Hooks
	// Span, when non-nil, is the parent trace span; generation records
	// sample/weight/merge child spans under it.
	Span *obs.Span
}

// DefaultGenOptions returns options matching the paper's main configuration.
func DefaultGenOptions(seed int64) GenOptions {
	return GenOptions{Seed: seed, GroupAndMerge: true, Batch: 64}
}

// Generator materializes synthetic databases in the shape of the layout's
// schema.
type Generator struct {
	Layout *join.Layout
	// Disc decodes model bins back to raw column codes; indexed like the
	// layout's columns. Identity discretizers pass codes through.
	Disc []*ar.Discretizer
	// Sizes is the target row count per table (the |T| inputs of Alg. 1/2).
	Sizes map[string]int
}

// NewGenerator validates and builds a generator.
func NewGenerator(layout *join.Layout, disc []*ar.Discretizer, sizes map[string]int) (*Generator, error) {
	if len(disc) != layout.NumCols() {
		return nil, fmt.Errorf("core: %d discretizers for %d model columns", len(disc), layout.NumCols())
	}
	for _, t := range layout.Schema.Tables {
		if sizes[t.Name] <= 0 {
			return nil, fmt.Errorf("core: missing target size for table %s", t.Name)
		}
	}
	return &Generator{Layout: layout, Disc: disc, Sizes: sizes}, nil
}

// FromModel builds a generator for a trained SAM model with the original
// table sizes as targets.
func FromModel(m *ar.Model, sizes map[string]int) (*Generator, error) {
	return NewGenerator(m.Layout, m.Disc, sizes)
}

// ModelSampler returns the per-worker sampler factory Generate expects for
// a trained model, honoring the batch setting: lanes > 1 get the batched
// ancestral sampler, otherwise the per-tuple one.
func ModelSampler(m *ar.Model, batch int) func() join.TupleSampler {
	if batch > 1 {
		return func() join.TupleSampler { return m.NewBatchSampler(batch) }
	}
	return func() join.TupleSampler { return m.NewSampler() }
}

// Generate runs the full pipeline. newSampler is called once per worker
// goroutine; a stateless sampler may return itself repeatedly.
func (g *Generator) Generate(newSampler func() join.TupleSampler, opts GenOptions) (*relation.Schema, error) {
	k := opts.Samples
	if k <= 0 {
		for _, t := range g.Layout.Schema.Tables {
			k += g.Sizes[t.Name]
		}
	}
	samples := g.drawSamples(newSampler, k, opts)
	return g.Materialize(samples, opts)
}

// DrawSamples runs the sampling phase on its own: k sanitized FOJ samples,
// flattened lane-major (k × NumCols bin codes), without materializing
// tables. Generate composes it with Materialize; benchmarks and diagnostic
// tools call it directly to measure or inspect the sampler under the real
// worker×lane scheduling.
func (g *Generator) DrawSamples(newSampler func() join.TupleSampler, k int, opts GenOptions) []int32 {
	return g.drawSamples(newSampler, k, opts)
}

// drawSamples draws k FOJ tuples in parallel and sanitizes presence
// consistency.
//
// The output is a pure function of (Seed, Workers, Batch): logical worker w
// covers a fixed tuple range and lane l of worker w always consumes rng
// stream Seed + (w·Batch+l)·7919, with both Workers and Batch resolved
// deterministically from the options (Workers 0 → GOMAXPROCS at entry).
// Physical goroutines are provisioned separately from the shared kernel
// token budget and only affect wall-clock, so a run reproduces bit-for-bit
// however loaded the machine is.
func (g *Generator) drawSamples(newSampler func() join.TupleSampler, k int, opts GenOptions) []int32 {
	span := opts.Span.Child("sample")
	defer span.End()
	start := time.Now()
	ncols := g.Layout.NumCols()
	flat := make([]int32, k*ncols)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	batch := opts.Batch
	if batch < 1 {
		batch = 1
	}
	span.SetAttr("tuples", k)
	span.SetAttr("workers", workers)
	span.SetAttr("batch", batch)

	chunk := (k + workers - 1) / workers
	type task struct{ w, lo, hi int }
	tasks := make([]task, 0, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		tasks = append(tasks, task{w, lo, hi})
	}

	// Worker×lane composition: sampling goroutines and the matmul kernels
	// draw from one shared core budget. Each extra sampling goroutine holds
	// a kernel token while it runs, so the per-layer GEMMs inside every
	// sampler see a correspondingly smaller budget and the two levels of
	// parallelism compose instead of oversubscribing the machine. Under a
	// full budget the samplers win all tokens and the kernels run serially
	// inside them — the right split, since worker parallelism has no
	// synchronization per layer.
	phys := 1
	if len(tasks) > 1 {
		phys += tensor.AcquireKernelTokens(len(tasks) - 1)
	}
	if phys > len(tasks) {
		phys = len(tasks)
	}

	// In-flight progress is observer-only: the tracker exists solely when a
	// hook asks for it (nil otherwise — every call below is a nil no-op), a
	// CAS throttle picks one reporting worker at a time, and nothing feeds
	// back into scheduling, so sampling output stays a pure function of
	// (Seed, Workers, Batch).
	var prog *obs.Progress
	if opts.Hooks.WantsGenProgress() {
		prog = obs.NewProgress(int64(k), 2*time.Second)
	}
	const progressInterval = 100 * time.Millisecond
	emitProgress := func(n int) {
		prog.Add(int64(n))
		if prog.ShouldEmit(progressInterval) {
			s := prog.Snapshot()
			opts.Hooks.GenProgress(obs.GenProgress{
				Phase: "sample", Done: int(s.Done), Total: int(s.Total),
				Rate: s.Rate, ETA: s.ETA,
			})
		}
	}

	var usedBatchKernel atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func() {
		// One rng stream per lane: lane l of worker w always sees the same
		// stream regardless of how tuples land in sweeps, and with batch 1
		// this reduces to the legacy per-worker seeding. The rngs are
		// allocated once per goroutine and reseeded per logical task.
		rngs := make([]*rand.Rand, batch)
		for l := range rngs {
			rngs[l] = rand.New(rand.NewSource(0))
		}
		s := newSampler()
		bs, okBatch := s.(join.BatchTupleSampler)
		okBatch = okBatch && batch > 1 && bs.BatchCap() >= batch
		for {
			t := int(next.Add(1)) - 1
			if t >= len(tasks) {
				return
			}
			w, lo, hi := tasks[t].w, tasks[t].lo, tasks[t].hi
			for l := range rngs {
				rngs[l].Seed(ar.LaneSeed(opts.Seed, w*batch+l))
			}
			if okBatch {
				usedBatchKernel.Store(true)
				for base := lo; base < hi; base += batch {
					n := batch
					if base+n > hi {
						n = hi - base
					}
					bs.SampleFOJBatch(rngs[:n], flat[base*ncols:(base+n)*ncols])
					for i := base; i < base+n; i++ {
						g.sanitize(flat[i*ncols : (i+1)*ncols])
					}
					if prog != nil {
						emitProgress(n)
					}
				}
				continue
			}
			// Per-tuple fallback keeps the lane-strided rng assignment so
			// each tuple consumes the same stream as under the batched
			// kernel.
			for i := lo; i < hi; i++ {
				dst := flat[i*ncols : (i+1)*ncols]
				s.SampleFOJ(rngs[(i-lo)%batch], dst)
				g.sanitize(dst)
				if prog != nil {
					emitProgress(1)
				}
			}
		}
	}
	for p := 1; p < phys; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
	if phys > 1 {
		tensor.ReleaseKernelTokens(phys - 1)
	}
	span.SetAttr("batched", usedBatchKernel.Load())
	span.SetAttr("goroutines", phys)
	if prog != nil {
		// Terminal event so observers always see done == total.
		s := prog.Snapshot()
		opts.Hooks.GenProgress(obs.GenProgress{
			Phase: "sample", Done: int(s.Done), Total: int(s.Total), Rate: s.Rate,
		})
	}
	opts.Hooks.GenPhase(obs.GenPhase{Phase: "sample", Tuples: k, Wall: time.Since(start)})
	return flat
}

// sanitize enforces presence consistency on one sample: a NULL table
// (fanout bin 0) has NULL descendants too, and NULL tables' content bins
// are cleared — the invariant oracle samples satisfy by construction and
// model samples must be projected onto.
func (g *Generator) sanitize(dst []int32) {
	s := g.Layout.Schema
	for _, t := range s.Tables {
		if t.Parent == "" {
			continue
		}
		idx, _ := g.Layout.FanoutIndex(t.Name)
		if pIdx, ok := g.Layout.FanoutIndex(t.Parent); ok && dst[pIdx] == 0 {
			dst[idx] = 0
		}
		if dst[idx] == 0 {
			for _, ci := range g.Layout.ContentColumns(t.Name) {
				dst[ci] = 0
			}
		}
	}
}

// Materialize turns pre-drawn FOJ samples (k × NumCols bin codes, flat) into
// a database. Exposed separately so experiments can reuse one sample set
// across ablations.
func (g *Generator) Materialize(flat []int32, opts GenOptions) (*relation.Schema, error) {
	ncols := g.Layout.NumCols()
	if len(flat) == 0 || len(flat)%ncols != 0 {
		return nil, fmt.Errorf("core: sample buffer of %d codes is not a multiple of %d columns", len(flat), ncols)
	}
	k := len(flat) / ncols
	sample := func(i int) []int32 { return flat[i*ncols : (i+1)*ncols] }

	// Algorithm 2: inverse probability weighting and scaling, per table.
	weightSpan := opts.Span.Child("weight")
	weights := make(map[string][]float64, len(g.Layout.Schema.Tables))
	for _, t := range g.Layout.Schema.Tables {
		tStart := time.Now()
		w := make([]float64, k)
		down := g.Layout.DownweightColumns([]string{t.Name})
		fanIdx, hasFan := g.Layout.FanoutIndex(t.Name)
		var sum float64
		for i := 0; i < k; i++ {
			row := sample(i)
			if hasFan && row[fanIdx] == 0 {
				continue // NULL: no sample derived for this relation
			}
			wi := 1.0
			for _, f := range down {
				wi /= g.Layout.Cols[f].WeightVals[row[f]]
			}
			w[i] = wi
			sum += wi
		}
		if sum == 0 {
			weightSpan.End()
			return nil, fmt.Errorf("core: no full-outer-join sample contains relation %s", t.Name)
		}
		factor := float64(g.Sizes[t.Name]) / sum // scaling step
		for i := range w {
			w[i] *= factor
		}
		weights[t.Name] = w
		weightSpan.SetAttr("mass_"+t.Name, sum)
		opts.Hooks.GenPhase(obs.GenPhase{
			Phase: "weight", Table: t.Name, Tuples: k,
			MassBefore: sum, MassAfter: float64(g.Sizes[t.Name]),
			Wall: time.Since(tStart),
		})
	}
	weightSpan.End()

	mergeSpan := opts.Span.Child("merge")
	defer mergeSpan.End()
	mergeSpan.SetAttr("group_and_merge", opts.GroupAndMerge)
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5a17))
	if opts.GroupAndMerge {
		return g.materializeGaM(flat, k, weights, rng, opts)
	}
	return g.materializeViews(flat, k, weights, rng, opts)
}

// binKey serializes selected columns of a sample into a map key.
func binKey(row []int32, cols []int, extra int64) string {
	buf := make([]byte, 0, len(cols)*4+8)
	for _, c := range cols {
		v := row[c]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for s := 0; s < 64; s += 8 {
		buf = append(buf, byte(extra>>s))
	}
	return string(buf)
}

// systematicCounts allocates total units over nonnegative weights by
// systematic (stratified) resampling: pointers at (j+½)·(Σw/total) on the
// cumulative weight axis, one unit per pointer. Unlike largest-remainder
// rounding — which systematically starves regions whose mass is splintered
// over many small entries (each fraction individually loses to larger
// ones) — systematic allocation is unbiased per region: a run of entries
// with combined weight W receives W·total/Σw units in expectation no
// matter how finely it is divided. Entries with zero weight get zero.
func systematicCounts(weights []float64, total int) []int {
	counts := make([]int, len(weights))
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 || total <= 0 {
		return counts
	}
	spacing := sum / float64(total)
	acc := 0.0
	ptr := 0 // next pointer index, at position (ptr+0.5)*spacing
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		end := acc + w
		for ptr < total && (float64(ptr)+0.5)*spacing < end {
			counts[i]++
			ptr++
		}
		acc = end
	}
	// Float drift can leave the last pointer unassigned; give it to the
	// final positive entry.
	for ptr < total {
		for i := len(weights) - 1; i >= 0; i-- {
			if weights[i] > 0 {
				counts[i]++
				break
			}
		}
		ptr++
	}
	return counts
}

// largestRemainderCounts rounds nonnegative weights to integers that sum to
// total (which must be ≤ the ceiling sum). Entries with zero weight stay
// zero.
func largestRemainderCounts(weights []float64, total int) []int {
	type frac struct {
		idx int
		f   float64
	}
	counts := make([]int, len(weights))
	used := 0
	fracs := make([]frac, 0, len(weights))
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		fl := math.Floor(w)
		counts[i] = int(fl)
		used += int(fl)
		fracs = append(fracs, frac{i, w - fl})
	}
	remaining := total - used
	if remaining <= 0 {
		return counts
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; i < remaining && i < len(fracs); i++ {
		counts[fracs[i].idx]++
	}
	return counts
}

// decodeRow appends the decoded content values of table for one sample.
func (g *Generator) decodeRow(rng *rand.Rand, table *relation.Table, cols []*relation.Column, row []int32) {
	for ci, c := range table.Cols {
		idx := g.Layout.ContentIndex(table.Name, c.Name)
		cols[ci].Append(g.Disc[idx].SampleIn(rng, int(row[idx])))
	}
}

// newEmptyTables clones the schema's table shells (same columns/domains, no
// data).
func (g *Generator) newEmptyTables() map[string]*relation.Table {
	out := make(map[string]*relation.Table, len(g.Layout.Schema.Tables))
	for _, t := range g.Layout.Schema.Tables {
		cols := make([]*relation.Column, len(t.Cols))
		for i, c := range t.Cols {
			nc := relation.NewColumn(c.Name, c.Kind, c.NumValues)
			if c.Vals != nil {
				nc = nc.WithVals(c.Vals)
			}
			cols[i] = nc
		}
		nt := relation.NewTable(t.Name, cols...)
		nt.Parent = t.Parent
		out[t.Name] = nt
	}
	return out
}

func (g *Generator) finishSchema(tables map[string]*relation.Table) (*relation.Schema, error) {
	ordered := make([]*relation.Table, 0, len(tables))
	for _, t := range g.Layout.Schema.Tables {
		ordered = append(ordered, tables[t.Name])
	}
	s, err := relation.NewSchema(ordered...)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
