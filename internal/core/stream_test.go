package core

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/metrics"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

// readBack loads the CSVs a streaming run produced into an empty copy of
// the original schema shape.
func readBack(t *testing.T, orig *relation.Schema, res *StreamResult) *relation.Schema {
	t.Helper()
	shell, err := orig.Spec().EmptySchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range shell.Tables {
		f, err := os.Open(res.CSVPaths[tab.Name])
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.ReadCSV(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
	}
	return shell
}

func fileBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardBytesInvariantAcrossWorkers is the golden determinism test for
// the sharded sampler: for a fixed (seed, shard, batch, shard count) the
// shard files are bit-identical whether sampled by 1, 2, or 4 workers, and
// whether produced by a full run or by regenerating a single shard.
func TestShardBytesInvariantAcrossWorkers(t *testing.T) {
	orig := datagen.IMDB(11, 120)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	const k = 4000
	newSampler := func() join.TupleSampler { return o }

	var golden [][]byte
	for _, workers := range []int{1, 2, 4} {
		opts := DefaultStreamOptions(42, t.TempDir())
		opts.Shards = 4
		opts.Workers = workers
		opts.ChunkRows = 100 + workers*37 // chunking must not affect bytes either
		set, err := gen.SampleShards(newSampler, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if set.Total != k || len(set.Paths) != 4 {
			t.Fatalf("set total %d shards %d", set.Total, len(set.Paths))
		}
		var cur [][]byte
		for _, p := range set.Paths {
			cur = append(cur, fileBytes(t, p))
		}
		if golden == nil {
			golden = cur
			continue
		}
		for s := range golden {
			if string(golden[s]) != string(cur[s]) {
				t.Fatalf("shard %d bytes differ between workers=1 and workers=%d", s, workers)
			}
		}
	}

	// Regenerating one shard in isolation reproduces the same bytes.
	opts := DefaultStreamOptions(42, t.TempDir())
	opts.Shards = 4
	dir := filepath.Join(opts.OutDir, "solo")
	path, rows, err := gen.SampleShard(newSampler, k, 2, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rows != k/4 {
		t.Fatalf("shard 2 rows %d want %d", rows, k/4)
	}
	if string(fileBytes(t, path)) != string(golden[2]) {
		t.Fatal("regenerated shard 2 differs from the full run's shard 2")
	}
}

// TestShardSeedsDivergeAcrossShards guards the seed-splitting: different
// shards of the same run must not replay the same rng streams.
func TestShardSeedsDivergeAcrossShards(t *testing.T) {
	orig := datagen.IMDB(3, 80)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultStreamOptions(7, t.TempDir())
	opts.Shards = 2
	set, err := gen.SampleShards(func() join.TupleSampler { return o }, 2000, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := fileBytes(t, set.Paths[0])
	b := fileBytes(t, set.Paths[1])
	if string(a[relation.ShardHeaderSize:]) == string(b[relation.ShardHeaderSize:]) {
		t.Fatal("shards 0 and 1 drew identical rows: per-shard seed split is broken")
	}
}

// TestStreamingExactRecovery mirrors TestExactRecoveryFromEnumeratedFOJ
// through the external-memory path: the enumerated FOJ written as shards
// and merged with spill files must recover the worked example exactly.
func TestStreamingExactRecovery(t *testing.T) {
	s := paperSchema()
	l := join.NewLayout(s)
	o := join.NewOracle(l)
	flat := o.EnumerateFOJ()
	ncols := l.NumCols()
	k := len(flat) / ncols

	// Write the enumerated samples as two shard files.
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shards")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	half := (k / 2) * ncols
	for shard, part := range [][]int32{flat[:half], flat[half:]} {
		w, err := relation.CreateShardFile(shardDir, shard, ncols, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRows(part); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	set, err := OpenShardSet(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Total != k {
		t.Fatalf("reopened shard set holds %d rows want %d", set.Total, k)
	}

	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(s))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultStreamOptions(1, dir)
	opts.Partitions = 3 // force multi-partition grouping even at toy scale
	res, err := gen.MaterializeStream(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := readBack(t, s, res)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tab := range s.Tables {
		if got := out.Table(tab.Name).NumRows(); got != tab.NumRows() {
			t.Fatalf("table %s: %d rows want %d", tab.Name, got, tab.NumRows())
		}
	}
	if got, want := engine.FOJSize(out), engine.FOJSize(s); got != want {
		t.Fatalf("FOJ size %d want %d", got, want)
	}
	queries := []workload.Query{
		{Tables: []string{"A"}, Preds: []workload.Predicate{{Table: "A", Column: "a", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"B"}, Preds: []workload.Predicate{{Table: "B", Column: "b", Op: workload.GE, Code: 1}}},
		{Tables: []string{"C"}, Preds: []workload.Predicate{{Table: "C", Column: "c", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"A", "B"}, Preds: []workload.Predicate{{Table: "A", Column: "a", Op: workload.EQ, Code: 1}}},
		{Tables: []string{"A", "C"}, Preds: []workload.Predicate{{Table: "C", Column: "c", Op: workload.EQ, Code: 1}}},
		{Tables: []string{"A", "B", "C"}, Preds: nil},
		{Tables: []string{"A", "B", "C"}, Preds: []workload.Predicate{
			{Table: "A", Column: "a", Op: workload.EQ, Code: 0},
			{Table: "B", Column: "b", Op: workload.LE, Code: 1},
		}},
	}
	for qi, q := range queries {
		if got, want := engine.Card(out, &q), engine.Card(s, &q); got != want {
			t.Fatalf("query %d: cardinality %d want %d", qi, got, want)
		}
	}
}

// TestGenerateStreamDeepChain runs the full streaming pipeline on the
// TPC-H style two-level chain: FK integrity must hold across both levels
// and 3-way join cardinalities must be preserved, matching the in-memory
// path's bar.
func TestGenerateStreamDeepChain(t *testing.T) {
	orig := datagen.TPCH(3, 300)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultStreamOptions(7, t.TempDir())
	opts.Samples = 40000
	opts.Shards = 3
	opts.Partitions = 8
	res, err := gen.GenerateStream(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 40000 {
		t.Fatalf("consumed %d samples", res.Samples)
	}
	if _, err := os.Stat(filepath.Join(opts.OutDir, "shards")); !os.IsNotExist(err) {
		t.Fatal("shard files not removed after generation")
	}
	if _, err := os.Stat(filepath.Join(opts.OutDir, ".spill")); !os.IsNotExist(err) {
		t.Fatal("spill dir not removed after generation")
	}
	out := readBack(t, orig, res)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}

	custKeys := map[int64]bool{}
	cust := out.Table("customer")
	for i := 0; i < cust.NumRows(); i++ {
		custKeys[cust.PK(i)] = true
	}
	ord := out.Table("orders")
	ordKeys := map[int64]bool{}
	for i := 0; i < ord.NumRows(); i++ {
		ordKeys[ord.PK(i)] = true
		if !custKeys[ord.FK[i]] {
			t.Fatalf("orders row %d has dangling customer key", i)
		}
	}
	li := out.Table("lineitem")
	if li.NumRows() != orig.Table("lineitem").NumRows() {
		t.Fatalf("lineitem rows %d want %d", li.NumRows(), orig.Table("lineitem").NumRows())
	}
	for i := 0; i < li.NumRows(); i++ {
		if !ordKeys[li.FK[i]] {
			t.Fatalf("lineitem row %d has dangling order key", i)
		}
	}

	rng := rand.New(rand.NewSource(41))
	var qerrs []float64
	for trial := 0; trial < 60; trial++ {
		q := workload.Query{
			Tables: []string{"customer", "orders", "lineitem"},
			Preds: []workload.Predicate{
				{Table: "customer", Column: "mktsegment", Op: workload.LE, Code: int32(rng.Intn(5))},
				{Table: "orders", Column: "orderpriority", Op: workload.LE, Code: int32(rng.Intn(5))},
				{Table: "lineitem", Column: "quantity", Op: workload.GE, Code: int32(rng.Intn(50))},
			},
		}
		truth := engine.Card(orig, &q)
		if truth == 0 {
			continue
		}
		got := engine.Card(out, &q)
		qerrs = append(qerrs, metrics.QError(float64(got), float64(truth)))
	}
	sum := metrics.Summarize(qerrs)
	if sum.Median > 2.0 {
		t.Fatalf("streamed deep-chain median Q-Error %.2f (%v)", sum.Median, sum)
	}
}

// TestGenerateStreamDeterministicAcrossWorkers pins the generalized
// contract end to end: the full streaming pipeline emits byte-identical
// CSVs for a fixed (seed, shards, batch, partitions) no matter the worker
// count.
func TestGenerateStreamDeterministicAcrossWorkers(t *testing.T) {
	orig := datagen.IMDB(15, 100)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string][]byte
	for _, workers := range []int{1, 3} {
		opts := DefaultStreamOptions(77, t.TempDir())
		opts.Samples = 6000
		opts.Shards = 4
		opts.Workers = workers
		opts.Partitions = 5
		res, err := gen.GenerateStream(func() join.TupleSampler { return o }, opts)
		if err != nil {
			t.Fatal(err)
		}
		cur := map[string][]byte{}
		for name, path := range res.CSVPaths {
			cur[name] = fileBytes(t, path)
		}
		if golden == nil {
			golden = cur
			continue
		}
		for name := range golden {
			if string(golden[name]) != string(cur[name]) {
				t.Fatalf("table %s CSV differs between workers=1 and workers=%d", name, workers)
			}
		}
	}
}

// TestStreamingMatchesInMemorySizes checks the two Group-and-Merge
// implementations agree on the aggregate shape: identical row counts per
// table from the same pre-drawn samples.
func TestStreamingMatchesInMemorySizes(t *testing.T) {
	orig := datagen.IMDB(9, 150)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	const k = 8000
	memOpts := DefaultGenOptions(5)
	memOpts.Samples = k
	flat := gen.DrawSamples(func() join.TupleSampler { return o }, k, memOpts)
	mem, err := gen.Materialize(flat, memOpts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shards")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := relation.CreateShardFile(shardDir, 0, l.NumCols(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows(flat); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	set, err := OpenShardSet(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.MaterializeStream(set, DefaultStreamOptions(5, dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range mem.Tables {
		if got := res.Rows[tab.Name]; got != tab.NumRows() {
			t.Fatalf("table %s: streamed %d rows, in-memory %d", tab.Name, got, tab.NumRows())
		}
	}
}

// TestStreamingSingleTable covers the leaf-root path (no parent, no
// children): a single-relation schema streams to exactly |T| rows.
func TestStreamingSingleTable(t *testing.T) {
	orig := datagen.Census(3, 500)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultStreamOptions(9, t.TempDir())
	opts.Samples = 3000
	res, err := gen.GenerateStream(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	name := orig.Tables[0].Name
	if res.Rows[name] != orig.Tables[0].NumRows() {
		t.Fatalf("rows %d want %d", res.Rows[name], orig.Tables[0].NumRows())
	}
	out := readBack(t, orig, res)
	if out.Table(name).NumRows() != orig.Tables[0].NumRows() {
		t.Fatal("csv row count mismatch")
	}
}

// TestSysAllocMatchesSystematicCounts pins the streaming allocator (with
// the one-group delay and leftover fold) to the batch systematicCounts it
// replaces.
func TestSysAllocMatchesSystematicCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = math.Abs(rng.NormFloat64()) * 3
		}
		total := 1 + rng.Intn(100)
		want := systematicCounts(weights, total)

		alloc := newSysAlloc(sumOf(weights), total)
		got := make([]int, n)
		last := -1
		for i, w := range weights {
			got[i] = alloc.next(w)
			if w > 0 {
				last = i
			}
		}
		if last >= 0 {
			got[last] += alloc.leftover()
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: streaming %v batch %v (weights %v total %d)", trial, got, want, weights, total)
			}
		}
	}
}

func sumOf(ws []float64) float64 {
	var s float64
	for _, w := range ws {
		if w > 0 {
			s += w
		}
	}
	return s
}

// TestKeepSamplesRetainsShards checks the KeepSamples escape hatch and
// that OpenShardSet can re-merge the retained shards.
func TestKeepSamplesRetainsShards(t *testing.T) {
	orig := datagen.IMDB(5, 80)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultStreamOptions(3, t.TempDir())
	opts.Samples = 2000
	opts.Shards = 2
	opts.KeepSamples = true
	res, err := gen.GenerateStream(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	set, err := OpenShardSet(filepath.Join(opts.OutDir, "shards"))
	if err != nil {
		t.Fatal(err)
	}
	if set.Total != 2000 || len(set.Paths) != 2 {
		t.Fatalf("reopened set total %d shards %d", set.Total, len(set.Paths))
	}
	// Re-merging the same shards reproduces the same tables.
	dir2 := t.TempDir()
	opts2 := DefaultStreamOptions(3, dir2)
	res2, err := gen.MaterializeStream(set, opts2)
	if err != nil {
		t.Fatal(err)
	}
	for name := range res.CSVPaths {
		if string(fileBytes(t, res.CSVPaths[name])) != string(fileBytes(t, res2.CSVPaths[name])) {
			t.Fatalf("re-merged table %s differs", name)
		}
	}
}

// TestStreamObserversByteIdentical is the observer-only contract for the
// streaming pipeline's telemetry: attaching the full set of hooks (stream
// passes, progress, a live trace span) must not change a single output
// byte — shard files and CSVs are compared bit-for-bit against an
// unobserved run with the same configuration.
func TestStreamObserversByteIdentical(t *testing.T) {
	orig := datagen.IMDB(13, 90)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var passes []obs.StreamPass
	hooks := obs.Merge(
		&obs.Hooks{
			OnStreamPass: func(p obs.StreamPass) {
				mu.Lock()
				passes = append(passes, p)
				mu.Unlock()
			},
			OnGenProgress: func(obs.GenProgress) {},
			OnGenPhase:    func(obs.GenPhase) {},
		},
		obs.MetricsHooks(obs.NewRegistry()),
	)
	trace := obs.NewTrace("test")

	run := func(h *obs.Hooks, sp *obs.Span) (map[string][]byte, [][]byte) {
		opts := DefaultStreamOptions(29, t.TempDir())
		opts.Samples = 5000
		opts.Shards = 3
		opts.Workers = 2
		opts.Partitions = 5
		opts.KeepSamples = true
		opts.Hooks = h
		opts.Span = sp
		res, err := gen.GenerateStream(func() join.TupleSampler { return o }, opts)
		if err != nil {
			t.Fatal(err)
		}
		csvs := map[string][]byte{}
		for name, path := range res.CSVPaths {
			csvs[name] = fileBytes(t, path)
		}
		set, err := OpenShardSet(filepath.Join(opts.OutDir, "shards"))
		if err != nil {
			t.Fatal(err)
		}
		var shards [][]byte
		for _, p := range set.Paths {
			shards = append(shards, fileBytes(t, p))
		}
		return csvs, shards
	}

	plainCSV, plainShards := run(nil, nil)
	obsCSV, obsShards := run(hooks, trace.Root())
	trace.Root().End()

	for name := range plainCSV {
		if string(plainCSV[name]) != string(obsCSV[name]) {
			t.Fatalf("table %s CSV differs with observers attached", name)
		}
	}
	for i := range plainShards {
		if string(plainShards[i]) != string(obsShards[i]) {
			t.Fatalf("shard %d bytes differ with observers attached", i)
		}
	}

	// The event stream itself must be internally consistent: one sampling
	// event per shard summing to the sample count, one weight scan, and
	// one A/B/C pass per table with matching record flow.
	byPass := map[string][]obs.StreamPass{}
	for _, p := range passes {
		byPass[p.Pass] = append(byPass[p.Pass], p)
	}
	if len(byPass["shard"]) != 3 {
		t.Fatalf("got %d shard events, want 3", len(byPass["shard"]))
	}
	var shardRows int64
	for _, p := range byPass["shard"] {
		shardRows += p.RecordsOut
	}
	if shardRows != 5000 {
		t.Fatalf("shard events sum to %d rows, want 5000", shardRows)
	}
	if n := len(byPass["weight"]); n != 1 {
		t.Fatalf("got %d weight events, want 1", n)
	}
	if in := byPass["weight"][0].RecordsIn; in != 5000 {
		t.Fatalf("weight pass scanned %d records, want 5000", in)
	}
	nt := len(orig.Tables)
	for _, pass := range []string{"A", "B", "C"} {
		if n := len(byPass[pass]); n != nt {
			t.Fatalf("got %d %s events, want one per table (%d)", n, pass, nt)
		}
	}
	byTable := map[string]map[string]obs.StreamPass{}
	for _, pass := range []string{"A", "B", "C"} {
		for _, p := range byPass[pass] {
			if byTable[p.Table] == nil {
				byTable[p.Table] = map[string]obs.StreamPass{}
			}
			byTable[p.Table][pass] = p
		}
	}
	for name, pp := range byTable {
		if pp["A"].RecordsOut != pp["B"].RecordsIn {
			t.Fatalf("table %s: pass A emitted %d records but pass B consumed %d",
				name, pp["A"].RecordsOut, pp["B"].RecordsIn)
		}
		if pp["B"].RecordsOut != pp["C"].RecordsIn {
			t.Fatalf("table %s: pass B formed %d groups but pass C consumed %d",
				name, pp["B"].RecordsOut, pp["C"].RecordsIn)
		}
		if pp["C"].RecordsOut != int64(orig.Table(name).NumRows()) {
			t.Fatalf("table %s: pass C emitted %d rows, want %d",
				name, pp["C"].RecordsOut, orig.Table(name).NumRows())
		}
	}
}
