package core

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Spill-to-disk building blocks for the external-memory Group-and-Merge
// (see MaterializeStream). The merge never holds more than one hash
// partition of one table's records resident: samples are streamed off the
// shard files, grouped records spill to P partition files, and the key
// allocation streams back over per-partition aggregate runs. All spill
// records are fixed-size little-endian binary — no framing, no varints —
// so partition files are plain arrays that readers chunk through.

// spillPartition hashes a group key to one of p partitions (FNV-1a over
// the key bytes). The hash — and therefore the (partition,
// first-appearance) group order every downstream pass inherits — depends
// only on the key bytes and p, keeping the merge deterministic for a fixed
// Partitions setting.
func spillPartition(key []byte, p int) int {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(p))
}

// packKey appends the group-key encoding of codes plus an already-assigned
// parent key to dst: the spill-side counterpart of binKey.
func packKey(dst []byte, codes []int32, pk int64) []byte {
	for _, v := range codes {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for s := 0; s < 64; s += 8 {
		dst = append(dst, byte(pk>>s))
	}
	return dst
}

// partWriter fans fixed-size records out to one buffered file per
// partition.
type partWriter struct {
	files []*os.File
	bufs  []*bufio.Writer
	paths []string
}

// newPartWriter creates p partition files named prefix-NNN under dir.
func newPartWriter(dir, prefix string, p int) (*partWriter, error) {
	w := &partWriter{
		files: make([]*os.File, p),
		bufs:  make([]*bufio.Writer, p),
		paths: make([]string, p),
	}
	for i := 0; i < p; i++ {
		path := filepath.Join(dir, fmt.Sprintf("%s-%03d", prefix, i))
		f, err := os.Create(path)
		if err != nil {
			w.cleanup()
			return nil, fmt.Errorf("core: create spill partition: %w", err)
		}
		w.files[i] = f
		w.bufs[i] = bufio.NewWriterSize(f, 1<<15)
		w.paths[i] = path
	}
	return w, nil
}

func (w *partWriter) write(part int, rec []byte) error {
	if _, err := w.bufs[part].Write(rec); err != nil {
		return fmt.Errorf("core: write spill record: %w", err)
	}
	return nil
}

// close flushes and closes every partition file, reporting the first
// error.
func (w *partWriter) close() error {
	var first error
	for i, f := range w.files {
		if f == nil {
			continue
		}
		if err := w.bufs[i].Flush(); err != nil && first == nil {
			first = fmt.Errorf("core: flush spill partition: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("core: close spill partition: %w", err)
		}
		w.files[i] = nil
	}
	return first
}

// cleanup closes and removes all partition files (error path / teardown).
func (w *partWriter) cleanup() {
	for i, f := range w.files {
		if f != nil {
			f.Close()
			w.files[i] = nil
		}
		if w.paths[i] != "" {
			os.Remove(w.paths[i])
		}
	}
}

// readRecords streams the fixed-size records of one partition file,
// invoking fn with each record's bytes (valid only during the call).
func readRecords(path string, size int, fn func(rec []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open spill partition: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<15)
	rec := make([]byte, size)
	for {
		_, err := io.ReadFull(br, rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: read spill partition %s: %w", filepath.Base(path), err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Record encode/decode helpers. Layouts (all little-endian):
//
//	raw (internal table):  idx u64 | w f64 | pk i64 | coarse ×nid i32 | content ×nc i32
//	raw (leaf table):      pk i64 | w f64 | content ×nc i32
//	agg (internal table):  gw f64 | pk i64 | members u32 | content ×nc i32
//	agg (leaf table):      gw f64 | fk i64 | content ×nc i32
//	member:                idx u64 | w f64
//	span:                  idx u64 | key i64 | frac f64

func putU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func putF64(dst []byte, v float64) []byte {
	return putU64(dst, math.Float64bits(v))
}

func putI32s(dst []byte, vs []int32) []byte {
	for _, v := range vs {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

func getU64(b []byte) uint64  { return binary.LittleEndian.Uint64(b) }
func getF64(b []byte) float64 { return math.Float64frombits(getU64(b)) }
func getI32(b []byte) int32   { return int32(binary.LittleEndian.Uint32(b)) }
func getI32s(b []byte, dst []int32) {
	for i := range dst {
		dst[i] = getI32(b[i*4:])
	}
}

// sysAlloc is the streaming form of systematicCounts: groups arrive one at
// a time (in the same order a counts vector would be walked) and next
// returns each group's pointer count. Float drift can leave trailing
// pointers unassigned exactly as in the batch version; callers resolve
// groups with a one-group delay and fold leftover() into the final
// positive group, reproducing the batch semantics without knowing the
// group count in advance.
type sysAlloc struct {
	spacing float64
	total   int
	ptr     int
	acc     float64
}

func newSysAlloc(sum float64, total int) *sysAlloc {
	a := &sysAlloc{total: total}
	if sum > 0 && total > 0 {
		a.spacing = sum / float64(total)
	} else {
		a.ptr = total // nothing to allocate
	}
	return a
}

// next advances the allocator past one group of weight gw and returns its
// pointer count.
func (a *sysAlloc) next(gw float64) int {
	if gw <= 0 || a.spacing == 0 {
		return 0
	}
	end := a.acc + gw
	n := 0
	for a.ptr < a.total && (float64(a.ptr)+0.5)*a.spacing < end {
		n++
		a.ptr++
	}
	a.acc = end
	return n
}

// leftover returns the pointers still unassigned after the last group —
// the drift remainder the final positive group absorbs.
func (a *sysAlloc) leftover() int {
	n := a.total - a.ptr
	a.ptr = a.total
	return n
}

// spanRec is one decoded span-run record: sample idx's membership fraction
// in an assigned key.
type spanRec struct {
	idx  int64
	key  int64
	frac float64
}

const spanRecSize = 24

// writeSpanRun sorts one partition's span records by sample index (stable,
// preserving the key-ascending order the cell walk emits per sample) and
// writes them as a sorted run file.
func writeSpanRun(path string, recs []spanRec) error {
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].idx < recs[b].idx })
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create span run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<15)
	buf := make([]byte, 0, spanRecSize)
	for _, r := range recs {
		buf = putU64(buf[:0], uint64(r.idx))
		buf = putU64(buf, uint64(r.key))
		buf = putF64(buf, r.frac)
		if _, err := bw.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("core: write span run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: flush span run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close span run: %w", err)
	}
	return nil
}

// spanSource is one sorted span run being merged.
type spanSource struct {
	f   *os.File
	br  *bufio.Reader
	cur spanRec
}

func (s *spanSource) advance() (bool, error) {
	var rec [spanRecSize]byte
	_, err := io.ReadFull(s.br, rec[:])
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("core: read span run: %w", err)
	}
	s.cur = spanRec{
		idx:  int64(getU64(rec[:])),
		key:  int64(getU64(rec[8:])),
		frac: getF64(rec[16:]),
	}
	return true, nil
}

// spanHeap orders sources by current sample idx. Each idx lives in exactly
// one run (a sample belongs to one group, and a group to one partition),
// so ties never occur and within-sample span order is the run's own.
type spanHeap []*spanSource

func (h spanHeap) Len() int            { return len(h) }
func (h spanHeap) Less(a, b int) bool  { return h[a].cur.idx < h[b].cur.idx }
func (h spanHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *spanHeap) Push(x interface{}) { *h = append(*h, x.(*spanSource)) }
func (h *spanHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// spanMerge streams a table's per-partition span runs back as one
// idx-ascending sequence, the shape the child table's grouping pass
// merge-joins against its own idx-ascending sample stream.
type spanMerge struct {
	h spanHeap
}

// openSpanMerge opens every span run matching prefix-NNN for p partitions.
// Runs that are empty contribute nothing.
func openSpanMerge(dir, prefix string, p int) (*spanMerge, error) {
	m := &spanMerge{}
	for i := 0; i < p; i++ {
		path := filepath.Join(dir, fmt.Sprintf("%s-%03d", prefix, i))
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("core: open span run: %w", err)
		}
		src := &spanSource{f: f, br: bufio.NewReaderSize(f, 1<<15)}
		ok, err := src.advance()
		if err != nil {
			f.Close()
			m.Close()
			return nil, err
		}
		if !ok {
			f.Close()
			continue
		}
		m.h = append(m.h, src)
	}
	heap.Init(&m.h)
	return m, nil
}

// fanIn reports how many non-empty runs the merge is currently drawing
// from — the heap fan-in telemetry of the pass that consumes it. Nil
// merges (root tables have no parent) report 0.
func (m *spanMerge) fanIn() int {
	if m == nil {
		return 0
	}
	return len(m.h)
}

// spansFor appends sample idx's spans to dst (empty when the sample
// earned none). Callers must ask for strictly increasing idx.
func (m *spanMerge) spansFor(idx int64, dst []keySpan) ([]keySpan, error) {
	for len(m.h) > 0 && m.h[0].cur.idx == idx {
		src := m.h[0]
		dst = append(dst, keySpan{key: src.cur.key, frac: src.cur.frac})
		ok, err := src.advance()
		if err != nil {
			return dst, err
		}
		if ok {
			heap.Fix(&m.h, 0)
		} else {
			src.f.Close()
			heap.Pop(&m.h)
		}
	}
	return dst, nil
}

// Close releases any remaining run files.
func (m *spanMerge) Close() {
	for _, src := range m.h {
		src.f.Close()
	}
	m.h = nil
}
