package core

import (
	"math"
	"math/rand"
	"time"

	"sam/internal/join"
	"sam/internal/obs"
	"sam/internal/relation"
)

// keySpan records that a sample contributes the given fraction of its
// primary-key weight to one assigned key. A sample whose scaled weight is
// below 1 usually lands in a single span (it merges with neighbours into
// one key); a sample whose scaled weight exceeds 1 represents several
// primary-key tuples and is split across several keys.
type keySpan struct {
	key  int64
	frac float64
}

// majorityKey returns the span carrying the largest fraction.
func majorityKey(spans []keySpan) int64 {
	best := spans[0]
	for _, s := range spans[1:] {
		if s.frac > best.frac {
			best = s
		}
	}
	return best.key
}

// groupBins maps a sample's identifier-column bins to the coarser codes
// used for grouping: fanout bins collapse to log₂ buckets of their
// representative value. A learned model spreads probability mass over far
// more identifier combinations than the true data holds; grouping at full
// fanout precision would splinter that mass into groups too light to ever
// earn a key (Alg. 3's weight_sum ≥ 1 is then unreachable), silently
// dropping exactly the heavy-fanout tuples that dominate join sizes. This
// is the same failure mode — and the same remedy — as the paper's
// intervalization of numeric columns (§4.3.2): merge at a coarser
// granularity, keep exact values for the weights.
func (g *Generator) groupBins(row []int32, idCols []int, dst []int32) {
	for i, c := range idCols {
		col := &g.Layout.Cols[c]
		if col.Kind == join.Fanout {
			v := col.Bins[row[c]]
			bucket := int32(0)
			for v >= 2 {
				v /= 2
				bucket++
			}
			dst[i] = bucket
			continue
		}
		dst[i] = row[c]
	}
}

// materializeGaM assigns join keys with the Group-and-Merge algorithm
// (Alg. 3) and materializes the database. Primary-key tables are processed
// in topological order; each table's samples are grouped by the identifier
// columns of its primary key (plus the already-assigned parent key — the
// recursive extension to multi-level join trees). Within a group the
// scaled weights lie on a continuous axis that is cut into ⌈ΣW⌉ unit-sized
// cells: each cell becomes one fresh key (Alg. 3's weight_sum ≥ 1 rule),
// samples merge into the cell(s) they overlap, and samples heavier than
// one cell split across several keys — the generalization needed when the
// sample budget is much smaller than the full outer join, so individual
// scaled weights exceed 1.
func (g *Generator) materializeGaM(flat []int32, k int, weights map[string][]float64, rng *rand.Rand, opts GenOptions) (*relation.Schema, error) {
	ncols := g.Layout.NumCols()
	sample := func(i int) []int32 { return flat[i*ncols : (i+1)*ncols] }
	tables := g.newEmptyTables()
	spansOf := make(map[string][][]keySpan) // pk table → per-sample spans

	for _, t := range g.Layout.Schema.Tables {
		tStart := time.Now()
		out := tables[t.Name]
		hasChildren := len(g.Layout.Schema.Children(t.Name)) > 0
		fanIdx, hasFan := g.Layout.FanoutIndex(t.Name)
		var parentSpans [][]keySpan
		if t.Parent != "" {
			parentSpans = spansOf[t.Parent]
		}
		w := weights[t.Name]

		if !hasChildren {
			groups := g.materializeLeaf(out, t, sample, k, w, parentSpans, fanIdx, hasFan, rng)
			opts.Hooks.GenPhase(obs.GenPhase{
				Phase: "merge", Table: t.Name, Tuples: out.NumRows(),
				Groups: groups, Wall: time.Since(tStart),
			})
			continue
		}

		// Group samples by Identifier(T.pk) and the assigned parent key.
		idCols := g.Layout.IdentifierColumns(t.Name)
		coarse := make([]int32, len(idCols))
		allCols := make([]int, len(idCols))
		for i := range allCols {
			allCols[i] = i
		}
		type group struct{ members []int }
		order := make([]string, 0, k/4)
		groups := make(map[string]*group)
		for i := 0; i < k; i++ {
			row := sample(i)
			if hasFan && row[fanIdx] == 0 {
				continue
			}
			if w[i] <= 0 {
				continue
			}
			var pk int64
			if parentSpans != nil {
				if parentSpans[i] == nil {
					continue // parent absent: inconsistent sample
				}
				pk = majorityKey(parentSpans[i])
			}
			g.groupBins(row, idCols, coarse)
			gk := binKey(coarse, allCols, pk)
			grp, ok := groups[gk]
			if !ok {
				grp = &group{}
				groups[gk] = grp
				order = append(order, gk)
			}
			grp.members = append(grp.members, i)
		}

		// Allocate exactly |T| keys across the groups in proportion to
		// their merged weights (global largest remainder). Groups too
		// light to earn a key are dropped, mirroring Alg. 3's behaviour
		// where a set whose weights never reach 1 yields no tuple; their
		// child mass is restored by rescaling during leaf materialization.
		groupWeights := make([]float64, len(order))
		for gi, gk := range order {
			for _, m := range groups[gk].members {
				groupWeights[gi] += w[m]
			}
		}
		keyCounts := systematicCounts(groupWeights, g.Sizes[t.Name])

		spans := make([][]keySpan, k)
		var counter int64
		var reprs []int        // representative sample per key
		var reprParent []int64 // parent key per key
		for gi, gk := range order {
			grp := groups[gk]
			nKeys := keyCounts[gi]
			if nKeys == 0 {
				continue
			}
			total := groupWeights[gi]
			cell := total / float64(nKeys)
			base := counter
			counter += int64(nKeys)
			haveRepr := make([]bool, nKeys)
			acc := 0.0
			for _, m := range grp.members {
				start, end := acc, acc+w[m]
				acc = end
				first := int(start / cell)
				last := int((end - 1e-12) / cell)
				if first >= nKeys {
					first = nKeys - 1
				}
				if last >= nKeys {
					last = nKeys - 1
				}
				for c := first; c <= last; c++ {
					lo := math.Max(start, float64(c)*cell)
					hi := math.Min(end, float64(c+1)*cell)
					frac := (hi - lo) / w[m]
					if frac <= 0 {
						continue
					}
					spans[m] = append(spans[m], keySpan{key: base + int64(c), frac: frac})
					if !haveRepr[c] {
						haveRepr[c] = true
						//lint:allow hotalloc per-table key list built once per table in cold model construction
						reprs = append(reprs, m)
						pk := int64(0)
						if parentSpans != nil {
							pk = majorityKey(parentSpans[m])
						}
						//lint:allow hotalloc per-table key list built once per table in cold model construction
						reprParent = append(reprParent, pk)
					}
				}
			}
		}
		spansOf[t.Name] = spans

		// One row per assigned key; identifier grouping guarantees every
		// member of a key shares the table's content bins, so the
		// representative decodes exactly.
		out.PKVals = make([]int64, 0, len(reprs))
		for key, ri := range reprs {
			g.decodeRow(rng, t, out.Cols, sample(ri))
			out.PKVals = append(out.PKVals, int64(key))
			if t.Parent != "" {
				out.FK = append(out.FK, reprParent[key])
			}
		}
		opts.Hooks.GenPhase(obs.GenPhase{
			Phase: "merge", Table: t.Name, Tuples: out.NumRows(),
			Groups: len(order), Wall: time.Since(tStart),
		})
	}
	return g.finishSchema(tables)
}

// materializeLeaf replicates a leaf relation to exactly |T| rows:
// per-sample scaled weights are spread over the sample's parent-key spans,
// aggregated by (parent key, content bins) — "aggregating the scaled
// weights" within each merged set — and rounded by largest remainder. It
// returns the number of merge groups formed (telemetry).
func (g *Generator) materializeLeaf(out *relation.Table, t *relation.Table,
	sample func(int) []int32, k int, w []float64, parentSpans [][]keySpan,
	fanIdx int, hasFan bool, rng *rand.Rand) int {
	contentCols := g.Layout.ContentColumns(t.Name)
	type agg struct {
		weight float64
		repr   int
		fk     int64
	}
	order := make([]string, 0, k/4)
	aggs := make(map[string]*agg)
	add := func(i int, fk int64, weight float64) {
		key := binKey(sample(i), contentCols, fk)
		a, ok := aggs[key]
		if !ok {
			a = &agg{repr: i, fk: fk}
			aggs[key] = a
			order = append(order, key)
		}
		a.weight += weight
	}
	for i := 0; i < k; i++ {
		if w[i] <= 0 {
			continue
		}
		if hasFan && sample(i)[fanIdx] == 0 {
			continue
		}
		if parentSpans == nil {
			add(i, 0, w[i])
			continue
		}
		if parentSpans[i] == nil {
			continue
		}
		for _, sp := range parentSpans[i] {
			add(i, sp.key, w[i]*sp.frac)
		}
	}
	aggWeights := make([]float64, len(order))
	var aggSum float64
	for ai, key := range order {
		aggWeights[ai] = aggs[key].weight
		aggSum += aggs[key].weight
	}
	// Rescale so the mass lost with dropped parent groups is restored and
	// the rounded counts hit |T| exactly.
	if aggSum > 0 {
		factor := float64(g.Sizes[t.Name]) / aggSum
		for ai := range aggWeights {
			aggWeights[ai] *= factor
		}
	}
	counts := systematicCounts(aggWeights, g.Sizes[t.Name])
	for ai, c := range counts {
		if c == 0 {
			continue
		}
		a := aggs[order[ai]]
		row := sample(a.repr)
		for j := 0; j < c; j++ {
			g.decodeRow(rng, t, out.Cols, row)
			if t.Parent != "" {
				out.FK = append(out.FK, a.fk)
			}
		}
	}
	return len(order)
}

// materializeViews is the "SAM w/o Group-and-Merge" ablation: foreign keys
// are assigned from pairwise (parent, child) views as in the paper's
// Figure 4 — each child row picks a uniform parent key among generated
// parent rows whose content matches the child's sampled parent content,
// which preserves pairwise correlation but breaks the joint distribution
// across three or more relations.
func (g *Generator) materializeViews(flat []int32, k int, weights map[string][]float64, rng *rand.Rand, opts GenOptions) (*relation.Schema, error) {
	ncols := g.Layout.NumCols()
	sample := func(i int) []int32 { return flat[i*ncols : (i+1)*ncols] }
	tables := g.newEmptyTables()
	pkBySig := make(map[string]map[string][]int64) // table → content signature → pks
	pkAll := make(map[string][]int64)

	for _, t := range g.Layout.Schema.Tables {
		tStart := time.Now()
		out := tables[t.Name]
		hasChildren := len(g.Layout.Schema.Children(t.Name)) > 0
		contentCols := g.Layout.ContentColumns(t.Name)
		var parentContent []int
		if t.Parent != "" {
			parentContent = g.Layout.ContentColumns(t.Parent)
		}
		// Aggregate weights over samples with identical (content, parent
		// content) bins so rounding happens per distinct tuple signature,
		// matching the GaM path's granularity.
		sigCols := make([]int, 0, len(contentCols)+len(parentContent))
		sigCols = append(append(sigCols, contentCols...), parentContent...)
		w := weights[t.Name]
		type agg struct {
			weight float64
			repr   int
		}
		order := make([]string, 0, k/4)
		aggs := make(map[string]*agg)
		for i := 0; i < k; i++ {
			if w[i] == 0 {
				continue
			}
			key := binKey(sample(i), sigCols, 0)
			a, ok := aggs[key]
			if !ok {
				a = &agg{repr: i}
				aggs[key] = a
				order = append(order, key)
			}
			a.weight += w[i]
		}
		aggWeights := make([]float64, len(order))
		for ai, key := range order {
			aggWeights[ai] = aggs[key].weight
		}
		counts := systematicCounts(aggWeights, g.Sizes[t.Name])
		if hasChildren {
			pkBySig[t.Name] = make(map[string][]int64)
			out.PKVals = make([]int64, 0, g.Sizes[t.Name])
		}
		var counter int64
		for ai, c := range counts {
			if c == 0 {
				continue
			}
			row := sample(aggs[order[ai]].repr)
			var cands []int64
			if t.Parent != "" {
				sig := binKey(row, parentContent, 0)
				cands = pkBySig[t.Parent][sig]
				if len(cands) == 0 {
					cands = pkAll[t.Parent]
				}
			}
			for j := 0; j < c; j++ {
				g.decodeRow(rng, t, out.Cols, row)
				if t.Parent != "" {
					out.FK = append(out.FK, cands[rng.Intn(len(cands))])
				}
				if hasChildren {
					pk := counter
					counter++
					out.PKVals = append(out.PKVals, pk)
					sig := binKey(row, contentCols, 0)
					pkBySig[t.Name][sig] = append(pkBySig[t.Name][sig], pk)
					pkAll[t.Name] = append(pkAll[t.Name], pk)
				}
			}
		}
		opts.Hooks.GenPhase(obs.GenPhase{
			Phase: "merge", Table: t.Name, Tuples: out.NumRows(),
			Groups: len(order), Wall: time.Since(tStart),
		})
	}
	return g.finishSchema(tables)
}
