package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sam/internal/ar"
	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/metrics"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

// paperSchema is the Figure-3 style database: A(root) ← B, C.
func paperSchema() *relation.Schema {
	aCol := relation.NewColumn("a", relation.Categorical, 2)
	for _, v := range []int32{0, 0, 1, 1} {
		aCol.Append(v)
	}
	a := relation.NewTable("A", aCol)
	bCol := relation.NewColumn("b", relation.Categorical, 3)
	b := relation.NewTable("B", bCol)
	b.Parent = "A"
	for _, v := range []int32{0, 1, 2} {
		bCol.Append(v)
	}
	b.FK = []int64{0, 1, 1}
	cCol := relation.NewColumn("c", relation.Categorical, 2)
	c := relation.NewTable("C", cCol)
	c.Parent = "A"
	for _, v := range []int32{0, 1, 0, 1} {
		cCol.Append(v)
	}
	c.FK = []int64{0, 0, 1, 1}
	return relation.MustSchema(a, b, c)
}

func identityDiscs(l *join.Layout) []*ar.Discretizer {
	disc := make([]*ar.Discretizer, l.NumCols())
	for i, c := range l.Cols {
		disc[i] = ar.NewIdentity(c.Domain)
	}
	return disc
}

func sizesOf(s *relation.Schema) map[string]int {
	out := map[string]int{}
	for _, t := range s.Tables {
		out[t.Name] = t.NumRows()
	}
	return out
}

func TestLargestRemainderCounts(t *testing.T) {
	counts := largestRemainderCounts([]float64{1.4, 2.4, 0.2, 0, 1.0}, 5)
	var sum int
	for _, c := range counts {
		sum += c
	}
	if sum != 5 {
		t.Fatalf("counts %v sum %d", counts, sum)
	}
	if counts[3] != 0 {
		t.Fatal("zero weight got rows")
	}
	if counts[1] < 2 {
		t.Fatalf("floor violated: %v", counts)
	}
}

func TestGeneratorValidation(t *testing.T) {
	s := paperSchema()
	l := join.NewLayout(s)
	if _, err := NewGenerator(l, nil, sizesOf(s)); err == nil {
		t.Fatal("accepted missing discretizers")
	}
	if _, err := NewGenerator(l, identityDiscs(l), map[string]int{"A": 4}); err == nil {
		t.Fatal("accepted missing sizes")
	}
}

// TestExactRecoveryFromEnumeratedFOJ reproduces the paper's worked example:
// with the full set of FOJ tuples and exact weights, Group-and-Merge must
// regenerate a database identical in distribution to the original.
func TestExactRecoveryFromEnumeratedFOJ(t *testing.T) {
	s := paperSchema()
	l := join.NewLayout(s)
	o := join.NewOracle(l)
	flat := o.EnumerateFOJ()

	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(s))
	if err != nil {
		t.Fatal(err)
	}
	out, err := gen.Materialize(flat, DefaultGenOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// Table sizes recovered exactly.
	for _, tab := range s.Tables {
		if got := out.Table(tab.Name).NumRows(); got != tab.NumRows() {
			t.Fatalf("table %s: %d rows want %d", tab.Name, got, tab.NumRows())
		}
	}
	// The full outer join is recovered exactly.
	if got, want := engine.FOJSize(out), engine.FOJSize(s); got != want {
		t.Fatalf("FOJ size %d want %d", got, want)
	}
	// Every conjunctive query over every table subset has identical
	// cardinality on both databases.
	queries := []workload.Query{
		{Tables: []string{"A"}, Preds: []workload.Predicate{{Table: "A", Column: "a", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"B"}, Preds: []workload.Predicate{{Table: "B", Column: "b", Op: workload.GE, Code: 1}}},
		{Tables: []string{"C"}, Preds: []workload.Predicate{{Table: "C", Column: "c", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"A", "B"}, Preds: []workload.Predicate{{Table: "A", Column: "a", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"A", "C"}, Preds: []workload.Predicate{{Table: "C", Column: "c", Op: workload.EQ, Code: 1}}},
		{Tables: []string{"A", "B", "C"}, Preds: []workload.Predicate{
			{Table: "A", Column: "a", Op: workload.EQ, Code: 0},
			{Table: "B", Column: "b", Op: workload.LE, Code: 1},
		}},
		{Tables: []string{"A", "B", "C"}, Preds: []workload.Predicate{
			{Table: "C", Column: "c", Op: workload.EQ, Code: 0},
		}},
	}
	for i, q := range queries {
		if got, want := engine.Card(out, &q), engine.Card(s, &q); got != want {
			t.Fatalf("query %d: card %d want %d", i, got, want)
		}
	}
}

func TestOracleSampledRecoveryIMDB(t *testing.T) {
	// Sampling (not enumerating) from the oracle of a realistic star schema
	// and regenerating must approximately preserve join cardinalities.
	orig := datagen.IMDB(11, 300)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(5)
	opts.Samples = 60000
	out, err := gen.Generate(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf table sizes are exact; the root (pk side) is approximate.
	for _, tab := range orig.Tables {
		got := out.Table(tab.Name).NumRows()
		want := tab.NumRows()
		if tab.Name == "title" {
			if math.Abs(float64(got-want)) > 0.15*float64(want) {
				t.Fatalf("title rows %d want ≈%d", got, want)
			}
		} else if got != want {
			t.Fatalf("table %s: %d rows want %d", tab.Name, got, want)
		}
	}
	rng := rand.New(rand.NewSource(21))
	queries := workload.GenerateMultiRelation(rng, orig, 60, workload.DefaultMultiRelationOptions())
	labeled := engine.Label(orig, queries)
	var qerrs []float64
	for i := range labeled {
		got := engine.Card(out, &labeled[i].Query)
		qerrs = append(qerrs, metrics.QError(float64(got), float64(labeled[i].Card)))
	}
	sum := metrics.Summarize(qerrs)
	if sum.Median > 2.0 {
		t.Fatalf("median Q-Error %.2f too high for oracle-sampled recovery (%v)", sum.Median, sum)
	}
}

func TestGaMBeatsViewAssignmentOnMultiJoin(t *testing.T) {
	// The paper's ablation: on queries joining 3 relations, Group-and-Merge
	// must preserve cross-relation correlation better than view-based
	// assignment.
	orig := datagen.IMDB(13, 250)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(9)
	opts.Samples = 50000
	flat := gen.drawSamples(func() join.TupleSampler { return o }, opts.Samples, opts)

	withGaM, err := gen.Materialize(flat, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsNoGaM := opts
	optsNoGaM.GroupAndMerge = false
	withoutGaM, err := gen.Materialize(flat, optsNoGaM)
	if err != nil {
		t.Fatal(err)
	}

	// 3-way join queries with correlated predicates.
	rng := rand.New(rand.NewSource(31))
	var gamErrs, viewErrs []float64
	for trial := 0; trial < 80; trial++ {
		q := workload.Query{
			Tables: []string{"title", "cast_info", "movie_keyword"},
			Preds: []workload.Predicate{
				{Table: "title", Column: "kind_id", Op: workload.LE, Code: int32(rng.Intn(7))},
				{Table: "cast_info", Column: "role_id", Op: workload.LE, Code: int32(rng.Intn(11))},
				{Table: "movie_keyword", Column: "keyword_id", Op: workload.LE, Code: int32(rng.Intn(500))},
			},
		}
		truth := float64(engine.Card(orig, &q))
		gamErrs = append(gamErrs, metrics.QError(float64(engine.Card(withGaM, &q)), truth))
		viewErrs = append(viewErrs, metrics.QError(float64(engine.Card(withoutGaM, &q)), truth))
	}
	gamSum := metrics.Summarize(gamErrs)
	viewSum := metrics.Summarize(viewErrs)
	if gamSum.P90 > viewSum.P90*1.25 {
		t.Fatalf("GaM p90 %.2f should not exceed view-based p90 %.2f", gamSum.P90, viewSum.P90)
	}
	if gamSum.Median > 2.5 {
		t.Fatalf("GaM median %.2f too high", gamSum.Median)
	}
}

func TestSingleTableGeneration(t *testing.T) {
	// Algorithm 1: single relation, oracle sampler, k = |T|.
	orig := datagen.Census(17, 3000)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(3)
	opts.Samples = orig.Tables[0].NumRows()
	out, err := gen.Generate(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tables[0].NumRows() != orig.Tables[0].NumRows() {
		t.Fatalf("rows %d want %d", out.Tables[0].NumRows(), orig.Tables[0].NumRows())
	}
	// Marginal of each column should be close (chi-square-free check on a
	// few coarse buckets).
	for ci, col := range orig.Tables[0].Cols {
		var origLow, genLow int
		mid := int32(col.NumValues / 2)
		for _, v := range col.Data {
			if v < mid {
				origLow++
			}
		}
		for _, v := range out.Tables[0].Cols[ci].Data {
			if v < mid {
				genLow++
			}
		}
		po := float64(origLow) / float64(len(col.Data))
		pg := float64(genLow) / float64(len(out.Tables[0].Cols[ci].Data))
		if math.Abs(po-pg) > 0.06 {
			t.Fatalf("column %s: P(low) orig %.3f gen %.3f", col.Name, po, pg)
		}
	}
}

func TestSanitizeEnforcesIndicatorConsistency(t *testing.T) {
	// A hand-built inconsistent sample (parent NULL, child present) must be
	// projected onto a consistent one.
	rng := rand.New(rand.NewSource(4))
	mk := func(name string, rows int, parent string, parentRows int) *relation.Table {
		col := relation.NewColumn("v", relation.Categorical, 3)
		tt := relation.NewTable(name, col)
		tt.Parent = parent
		for i := 0; i < rows; i++ {
			col.Append(int32(rng.Intn(3)))
			if parent != "" {
				tt.FK = append(tt.FK, int64(rng.Intn(parentRows)))
			}
		}
		return tt
	}
	root := mk("root", 4, "", 0)
	b := mk("b", 6, "root", 4)
	d := mk("d", 8, "b", 6)
	s := relation.MustSchema(root, b, d)
	l := join.NewLayout(s)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(s))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int32, l.NumCols())
	fb, _ := l.FanoutIndex("b")
	fd, _ := l.FanoutIndex("d")
	row[fb] = 0 // b absent
	row[fd] = 3 // d claims presence under an absent parent
	row[l.ContentIndex("d", "v")] = 2
	gen.sanitize(row)
	if row[fd] != 0 {
		t.Fatal("child fanout not cleared when parent is NULL")
	}
	if row[l.ContentIndex("d", "v")] != 0 {
		t.Fatal("NULL content not cleared")
	}
}

func TestMaterializeRejectsBadBuffer(t *testing.T) {
	s := paperSchema()
	l := join.NewLayout(s)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Materialize([]int32{1, 2, 3}, DefaultGenOptions(1)); err == nil {
		t.Fatal("accepted misaligned buffer")
	}
	if _, err := gen.Materialize(nil, DefaultGenOptions(1)); err == nil {
		t.Fatal("accepted empty buffer")
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	orig := datagen.IMDB(15, 100)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(77)
	opts.Samples = 5000
	opts.Workers = 2
	a, err := gen.Generate(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range a.Tables {
		other := b.Table(tab.Name)
		if tab.NumRows() != other.NumRows() {
			t.Fatalf("table %s row mismatch across identical runs", tab.Name)
		}
		for ci := range tab.Cols {
			for i := range tab.Cols[ci].Data {
				if tab.Cols[ci].Data[i] != other.Cols[ci].Data[i] {
					t.Fatalf("table %s col %d row %d differs", tab.Name, ci, i)
				}
			}
		}
	}
}

// TestGenProgressEvents pins the in-flight progress wiring: a hook that
// wants GenProgress receives monotone done counts, a terminal event with
// done == total, and — because the tracker is observer-only — the drawn
// samples are identical with and without the hook attached.
func TestGenProgressEvents(t *testing.T) {
	orig := datagen.IMDB(21, 100)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(99)
	opts.Workers = 2
	const k = 4000

	var mu sync.Mutex
	var events []obs.GenProgress
	opts.Hooks = &obs.Hooks{OnGenProgress: func(p obs.GenProgress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}}
	withHook := gen.DrawSamples(func() join.TupleSampler { return o }, k, opts)

	if len(events) == 0 {
		t.Fatal("no GenProgress events delivered")
	}
	last := events[len(events)-1]
	if last.Done != k || last.Total != k {
		t.Fatalf("terminal event = %d/%d, want %d/%d", last.Done, last.Total, k, k)
	}
	for _, e := range events {
		if e.Phase != "sample" || e.Done < 0 || e.Done > e.Total {
			t.Fatalf("bad progress event: %+v", e)
		}
	}

	opts.Hooks = nil
	plain := gen.DrawSamples(func() join.TupleSampler { return o }, k, opts)
	if len(withHook) != len(plain) {
		t.Fatalf("sample count differs with progress hook: %d vs %d", len(withHook), len(plain))
	}
	for i := range plain {
		if withHook[i] != plain[i] {
			t.Fatalf("sample %d differs with progress hook attached", i)
		}
	}
}

func TestQuickLargestRemainderProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		// Mirror real usage: weights are pre-scaled so they sum to the
		// integer target (floorSum ≤ total ≤ ceilSum always holds).
		weights := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r) / 16
			sum += weights[i]
		}
		if sum < 1 {
			return true
		}
		total := int(math.Round(sum))
		factor := float64(total) / sum
		for i := range weights {
			weights[i] *= factor
		}
		counts := largestRemainderCounts(weights, total)
		got := 0
		for i, c := range counts {
			if c < 0 {
				return false
			}
			if weights[i] == 0 && c != 0 {
				return false
			}
			if float64(c) < math.Floor(weights[i])-1e-9 {
				return false // never undercut the floor
			}
			if float64(c) > math.Ceil(weights[i])+1e-9 {
				return false // never exceed the ceiling
			}
			got += c
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedSchemasAlwaysValidate(t *testing.T) {
	// Property-style: many random small schemas and sample budgets, both
	// key-assignment paths, always yield structurally valid databases with
	// exact leaf sizes.
	for seed := int64(0); seed < 6; seed++ {
		orig := datagen.IMDB(40+seed, 60+int(seed)*30)
		l := join.NewLayout(orig)
		o := join.NewOracle(l)
		gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
		if err != nil {
			t.Fatal(err)
		}
		for _, gam := range []bool{true, false} {
			opts := DefaultGenOptions(seed)
			opts.Samples = 2000 + int(seed)*500
			opts.GroupAndMerge = gam
			out, err := gen.Generate(func() join.TupleSampler { return o }, opts)
			if err != nil {
				t.Fatalf("seed %d gam %v: %v", seed, gam, err)
			}
			if err := out.Validate(); err != nil {
				t.Fatalf("seed %d gam %v: %v", seed, gam, err)
			}
			for _, tab := range out.Tables {
				if tab.Parent == "" {
					continue
				}
				parent := out.Table(tab.Parent)
				pkSet := map[int64]bool{}
				for i := 0; i < parent.NumRows(); i++ {
					pkSet[parent.PK(i)] = true
				}
				for _, fk := range tab.FK {
					if !pkSet[fk] {
						t.Fatalf("seed %d gam %v: dangling FK %d in %s", seed, gam, fk, tab.Name)
					}
				}
				if tab.NumRows() != sizesOf(orig)[tab.Name] {
					t.Fatalf("seed %d gam %v: leaf %s has %d rows want %d",
						seed, gam, tab.Name, tab.NumRows(), sizesOf(orig)[tab.Name])
				}
			}
		}
	}
}

func TestGaMKeyCountMatchesTargetExactly(t *testing.T) {
	// After the global largest-remainder allocation, primary-key tables
	// must have exactly |T| rows even under heavy sample splintering.
	orig := datagen.IMDB(77, 400)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1500, 8000, 40000} {
		opts := DefaultGenOptions(3)
		opts.Samples = k
		out, err := gen.Generate(func() join.TupleSampler { return o }, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Table("title").NumRows(); got != 400 {
			t.Fatalf("k=%d: %d titles want 400", k, got)
		}
	}
}

func TestDeepTreeRecoveryTPCH(t *testing.T) {
	// customer ← orders ← lineitem: Group-and-Merge must assign keys
	// recursively down a two-level chain and preserve 3-way join
	// cardinalities from oracle samples.
	orig := datagen.TPCH(3, 400)
	l := join.NewLayout(orig)
	o := join.NewOracle(l)
	gen, err := NewGenerator(l, identityDiscs(l), sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(7)
	opts.Samples = 60000
	out, err := gen.Generate(func() join.TupleSampler { return o }, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mid-chain FKs must reference existing customer keys; leaf FKs must
	// reference existing order keys.
	custKeys := map[int64]bool{}
	cust := out.Table("customer")
	for i := 0; i < cust.NumRows(); i++ {
		custKeys[cust.PK(i)] = true
	}
	ord := out.Table("orders")
	ordKeys := map[int64]bool{}
	for i := 0; i < ord.NumRows(); i++ {
		ordKeys[ord.PK(i)] = true
		if !custKeys[ord.FK[i]] {
			t.Fatalf("orders row %d has dangling customer key", i)
		}
	}
	li := out.Table("lineitem")
	for i := 0; i < li.NumRows(); i++ {
		if !ordKeys[li.FK[i]] {
			t.Fatalf("lineitem row %d has dangling order key", i)
		}
	}

	rng := rand.New(rand.NewSource(41))
	var qerrs []float64
	for trial := 0; trial < 60; trial++ {
		q := workload.Query{
			Tables: []string{"customer", "orders", "lineitem"},
			Preds: []workload.Predicate{
				{Table: "customer", Column: "mktsegment", Op: workload.LE, Code: int32(rng.Intn(5))},
				{Table: "orders", Column: "orderpriority", Op: workload.LE, Code: int32(rng.Intn(5))},
				{Table: "lineitem", Column: "quantity", Op: workload.GE, Code: int32(rng.Intn(50))},
			},
		}
		truth := engine.Card(orig, &q)
		if truth == 0 {
			continue
		}
		got := engine.Card(out, &q)
		qerrs = append(qerrs, metrics.QError(float64(got), float64(truth)))
	}
	sum := metrics.Summarize(qerrs)
	if sum.Median > 2.0 {
		t.Fatalf("deep-chain median Q-Error %.2f (%v)", sum.Median, sum)
	}
}

func TestQuickSystematicCountsUnbiasedRegions(t *testing.T) {
	// Systematic allocation must give a contiguous region of entries a
	// total within 1 of its proportional share, no matter how finely the
	// region is split — the property largest-remainder lacks.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		nA := 1 + rng.Intn(50)  // region A entries
		nB := 1 + rng.Intn(500) // region B entries (possibly splintered)
		wA := 1 + rng.Float64()*10
		wB := 1 + rng.Float64()*10
		weights := make([]float64, 0, nA+nB)
		for i := 0; i < nA; i++ {
			weights = append(weights, wA/float64(nA))
		}
		for i := 0; i < nB; i++ {
			weights = append(weights, wB/float64(nB))
		}
		total := 10 + rng.Intn(200)
		counts := systematicCounts(weights, total)
		var gotA, gotTotal int
		for i, c := range counts {
			if c < 0 {
				t.Fatal("negative count")
			}
			if i < nA {
				gotA += c
			}
			gotTotal += c
		}
		if gotTotal != total {
			t.Fatalf("trial %d: total %d want %d", trial, gotTotal, total)
		}
		wantA := wA / (wA + wB) * float64(total)
		if math.Abs(float64(gotA)-wantA) > 1.0+1e-9 {
			t.Fatalf("trial %d: region A got %d want %.2f±1 (splintered into %d entries)",
				trial, gotA, wantA, nA)
		}
	}
}

func TestSystematicCountsEdgeCases(t *testing.T) {
	if c := systematicCounts(nil, 5); len(c) != 0 {
		t.Fatal("nil weights")
	}
	if c := systematicCounts([]float64{0, 0}, 5); c[0] != 0 || c[1] != 0 {
		t.Fatal("all-zero weights must allocate nothing")
	}
	if c := systematicCounts([]float64{1, 2, 3}, 0); c[0]+c[1]+c[2] != 0 {
		t.Fatal("zero total must allocate nothing")
	}
	c := systematicCounts([]float64{0, 5, 0}, 7)
	if c[0] != 0 || c[2] != 0 || c[1] != 7 {
		t.Fatalf("single-entry allocation %v", c)
	}
}

// schemasEqual reports whether two generated schemas are identical
// column-for-column.
func schemasEqual(a, b *relation.Schema) bool {
	for _, tab := range a.Tables {
		other := b.Table(tab.Name)
		if other == nil || tab.NumRows() != other.NumRows() {
			return false
		}
		for ci := range tab.Cols {
			for i := range tab.Cols[ci].Data {
				if tab.Cols[ci].Data[i] != other.Cols[ci].Data[i] {
					return false
				}
			}
		}
	}
	return true
}

// TestGenerateBatchedGolden pins the batched pipeline's determinism
// contract: a model-backed batched Generate is bit-identical across runs
// for a fixed (Seed, Workers, Batch) triple, and a different seed produces
// a different database.
func TestGenerateBatchedGolden(t *testing.T) {
	orig := datagen.IMDB(19, 120)
	l := join.NewLayout(orig)
	cfg := ar.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 9
	m := ar.NewModel(l, nil, float64(orig.Tables[0].NumRows()), cfg)
	gen, err := FromModel(m, sizesOf(orig))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(55)
	opts.Samples = 2000
	opts.Workers = 3
	opts.Batch = 16

	run := func(o GenOptions) *relation.Schema {
		out, err := gen.Generate(ModelSampler(m, o.Batch), o)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(opts)
	if !schemasEqual(a, run(opts)) {
		t.Fatal("same (seed, workers, batch) produced different databases")
	}
	reseeded := opts
	reseeded.Seed = 56
	if schemasEqual(a, run(reseeded)) {
		t.Fatal("different seed produced an identical database")
	}
}
