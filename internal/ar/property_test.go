package ar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sam/internal/join"
	"sam/internal/workload"
)

// TestQuickIntervalDiscretizerPartition: for arbitrary constants, the bins
// must partition [0, domain) exactly — every code lands in exactly one bin
// whose range contains it.
func TestQuickIntervalDiscretizerPartition(t *testing.T) {
	f := func(rawConsts []uint16, domSeed uint16) bool {
		domain := int(domSeed%500) + 2
		consts := make([]int32, 0, len(rawConsts))
		for _, c := range rawConsts {
			consts = append(consts, int32(int(c)%domain))
		}
		d := NewInterval(domain, consts)
		covered := 0
		for b := 0; b < d.Bins(); b++ {
			lo, hi := d.BinRange(b)
			if hi <= lo {
				return false
			}
			covered += int(hi - lo)
			for c := lo; c < hi; c++ {
				if d.BinOf(c) != b {
					return false
				}
			}
		}
		return covered == domain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaskMassMatchesPredicate: the total fractional mass of a range
// predicate's mask equals the number of satisfying codes divided by bin
// widths — i.e. Σ mask_b · width_b == #satisfying codes.
func TestQuickMaskMassMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		domain := 2 + rng.Intn(400)
		nconsts := rng.Intn(6)
		consts := make([]int32, nconsts)
		for i := range consts {
			consts[i] = int32(rng.Intn(domain))
		}
		d := NewInterval(domain, consts)
		ops := []workload.Op{workload.LE, workload.GE, workload.EQ}
		p := workload.Predicate{Op: ops[rng.Intn(3)], Code: int32(rng.Intn(domain))}
		mask, ok := d.MaskForPredicates([]workload.Predicate{p}, domain)
		if !ok {
			t.Fatalf("trial %d: single range predicate reported empty", trial)
		}
		var mass float64
		for b, m := range mask {
			mass += m * float64(d.BinWidth(b))
		}
		var want float64
		for c := int32(0); c < int32(domain); c++ {
			if p.Matches(c) {
				want++
			}
		}
		if math.Abs(mass-want) > 1e-9 {
			t.Fatalf("trial %d: mask mass %v want %v (op %v code %d domain %d)",
				trial, mass, want, p.Op, p.Code, domain)
		}
	}
}

// TestQuickMaskINMassMatches: same conservation property for IN lists.
func TestQuickMaskINMassMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		domain := 4 + rng.Intn(200)
		d := NewInterval(domain, []int32{int32(rng.Intn(domain)), int32(rng.Intn(domain))})
		nin := 1 + rng.Intn(6)
		codes := make([]int32, nin)
		for i := range codes {
			codes[i] = int32(rng.Intn(domain))
		}
		p := workload.Predicate{Op: workload.IN, Codes: codes}
		mask, ok := d.MaskForPredicates([]workload.Predicate{p}, domain)
		if !ok {
			t.Fatalf("trial %d: nonempty IN reported empty", trial)
		}
		var mass float64
		for b, m := range mask {
			mass += m * float64(d.BinWidth(b))
		}
		distinct := map[int32]bool{}
		for _, c := range codes {
			distinct[c] = true
		}
		if math.Abs(mass-float64(len(distinct))) > 1e-9 {
			t.Fatalf("trial %d: IN mass %v want %d", trial, mass, len(distinct))
		}
	}
}

// TestEstimateUnconstrainedQueryIsPopulation: a query with a full-domain
// mask on every column must estimate the population exactly (all range
// probabilities are 1).
func TestEstimateUnconstrainedQueryIsPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := twoColTable(rng, 100)
	l := join.NewLayout(s)
	m := NewModel(l, nil, 100, DefaultConfig())
	spec := &Spec{
		Masks:      make([][]float64, l.NumCols()),
		Downweight: make([]bool, l.NumCols()),
	}
	got := m.EstimateSpec(rng, spec, 4)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("unconstrained estimate %v want 100", got)
	}
}
