package ar

import (
	"math/rand"

	"sam/internal/nn"
	"sam/internal/tensor"
)

// BatchSampler runs ancestral sampling over up to B lanes at once: each
// column step is one batched forward pass (a (B×H) GEMM per layer) plus B
// fused exp-and-draw walks, instead of B independent batch-1 forwards. The
// draw is fused into the logits pass: tensor.ExpRowMass exponentiates each
// lane's logit row in place and hands its total mass straight to the CDF
// walk, so no normalized-probability matrix is ever materialized. It
// implements join.BatchTupleSampler, emitting model bin codes; like Sampler
// it is not safe for concurrent use — create one per goroutine.
type BatchSampler struct {
	m   *Model
	buf nn.BatchInference
	// probs0 is column 0's distribution, softmaxed once at construction:
	// the first conditional has no parents, so its logits are a constant of
	// the weights and every sweep skips that forward pass entirely.
	probs0 []float64
	sel    []float64 // per-lane selectivity accumulator (estimation)
	// touched lists the flat x indices set since the last reset, so each
	// sweep clears exactly the few one-hots it flipped instead of rewriting
	// the whole B×InDim input.
	touched []int
	one     [1]*rand.Rand // scratch for the single-tuple adapter
}

// NewBatchSampler returns a sampler drawing batch tuples per forward
// sweep. batch must be at least 1; batch 1 degenerates to per-tuple
// sampling through the batched kernels.
func (m *Model) NewBatchSampler(batch int) *BatchSampler {
	if batch < 1 {
		panic("ar: batch sampler needs at least one lane")
	}
	s := &BatchSampler{
		m:       m,
		buf:     m.Net.NewBatchInference(batch),
		sel:     make([]float64, batch),
		touched: make([]int, 0, batch*m.Layout.NumCols()),
	}
	// Snapshot column 0's (parent-free, hence constant) distribution. The
	// sampler assumes the weights stay fixed for its lifetime, which the
	// per-run sampler-per-goroutine usage guarantees.
	s.probs0 = make([]float64, m.Disc[0].Bins())
	tensor.SoftmaxRowInto(s.probs0, s.buf.ForwardCol(0).Row(0))
	return s
}

// BatchCap returns the lane count fixed at construction.
func (s *BatchSampler) BatchCap() int { return s.buf.Batch() }

// SampleFOJ draws one tuple through a single lane, satisfying
// join.TupleSampler so a BatchSampler can serve leftover tuples too.
func (s *BatchSampler) SampleFOJ(rng *rand.Rand, dst []int32) {
	s.one[0] = rng
	s.SampleFOJBatch(s.one[:], dst)
}

// SampleFOJBatch draws len(rngs) tuples from the modeled joint
// distribution by batched ancestral sampling (Algorithm 1, lines 3–7, over
// all lanes per column step). Lane l consumes only rngs[l], so a lane's
// output depends on its own stream alone and the caller controls
// determinism by seeding the streams. dst holds len(rngs)·NumCols codes,
// lane-major.
//
// Column steps ascend, so the per-step InvalidateFrom(offsets[i]) — issued
// after column i's logits are materialized but before its one-hots are set
// — leaves the backbone's prefix activation cache intact: only activations
// depending on column i are dropped, which are exactly the ones the next
// step computes fresh. The one-hots themselves go through SetInput, so the
// backbone's sparse input bookkeeping never rescans X.
func (s *BatchSampler) SampleFOJBatch(rngs []*rand.Rand, dst []int32) {
	m := s.m
	ncols := m.Layout.NumCols()
	lanes := len(rngs)
	if lanes == 0 || lanes > s.buf.Batch() {
		panic("ar: SampleFOJBatch lane count out of range")
	}
	if len(dst) != lanes*ncols {
		panic("ar: SampleFOJBatch dst has wrong length")
	}
	x := s.buf.X()
	s.resetX(x)
	offsets := m.Net.Offsets()
	for i := 0; i < ncols; i++ {
		var logits *tensor.Tensor
		if i > 0 {
			logits = s.buf.ForwardCol(i)
		}
		s.buf.InvalidateFrom(offsets[i])
		for l := 0; l < lanes; l++ {
			var bin int
			if i == 0 {
				bin = sampleCategorical(rngs[l], s.probs0, nil)
			} else {
				// Exponentiate the logit row in place (it is forward-pass
				// scratch) and draw straight from the unnormalized masses.
				row := logits.Row(l)
				bin = drawFromMass(rngs[l], row, nil, tensor.ExpRowMass(row, row))
			}
			dst[l*ncols+i] = int32(bin)
			s.setX(x, l, offsets[i]+bin)
		}
	}
}

// resetX clears exactly the one-hots the previous sweep set and drops the
// backbone's activation cache: a new sweep changes column 0, on which
// everything depends.
func (s *BatchSampler) resetX(x *tensor.Tensor) {
	for _, idx := range s.touched {
		x.Data[idx] = 0
	}
	s.touched = s.touched[:0]
	s.buf.InvalidateFrom(0)
}

// setX sets x[lane][idx] through the backbone's SetInput notification and
// records the flat position for the next reset.
func (s *BatchSampler) setX(x *tensor.Tensor, lane, idx int) {
	s.buf.SetInput(lane, idx)
	s.touched = append(s.touched, lane*x.Cols+idx)
}

// EstimateSpec is the batched progressive-sampling estimator: Monte-Carlo
// chains advance in sweeps of up to B lanes, sharing each column step's
// forward pass. It rides the same fused logits path as SampleFOJBatch —
// the masked mass that updates a chain's selectivity (p = Σ exp·mask /
// Σ exp) is the same accumulation the CDF draw consumes, so estimation and
// sampling exercise one code path. All chains draw from the single rng in
// lane order, so the estimate is deterministic for a fixed (rng state,
// batch) pair; it is a different (equally valid) Monte-Carlo draw than the
// per-tuple estimator's for the same seed.
func (s *BatchSampler) EstimateSpec(rng *rand.Rand, spec *Spec, samples int) float64 {
	m := s.m
	if samples <= 0 {
		samples = 1
	}
	lastNeeded := 0
	for i := range m.Layout.Cols {
		if spec.Masks[i] != nil || spec.Downweight[i] {
			lastNeeded = i
		}
	}
	batch := s.buf.Batch()
	offsets := m.Net.Offsets()
	x := s.buf.X()
	var total float64
	for done := 0; done < samples; done += batch {
		lanes := batch
		if rest := samples - done; rest < lanes {
			lanes = rest
		}
		sel := s.sel[:lanes]
		s.resetX(x)
		for l := 0; l < lanes; l++ {
			sel[l] = 1
		}
		for i := 0; i <= lastNeeded; i++ {
			var logits *tensor.Tensor
			if i > 0 {
				logits = s.buf.ForwardCol(i)
			}
			s.buf.InvalidateFrom(offsets[i])
			mask := spec.Masks[i]
			for l := 0; l < lanes; l++ {
				if sel[l] == 0 {
					continue // dead chain: mask mass hit zero earlier
				}
				var bin int
				if i == 0 {
					// Column 0 keeps the exact normalized snapshot, so
					// parent-free estimates stay exact expectations.
					if mask != nil {
						var p float64
						for b, pv := range s.probs0 {
							p += pv * mask[b]
						}
						sel[l] *= p
						if sel[l] == 0 {
							continue
						}
					}
					bin = sampleCategorical(rng, s.probs0, mask)
				} else {
					row := logits.Row(l)
					mass := tensor.ExpRowMass(row, row)
					if mask != nil {
						var mm float64
						for b, pv := range row {
							mm += pv * mask[b]
						}
						sel[l] *= mm / mass
						if sel[l] == 0 {
							continue
						}
						bin = drawFromMass(rng, row, mask, mm)
					} else {
						bin = drawFromMass(rng, row, nil, mass)
					}
				}
				if spec.Downweight[i] {
					sel[l] /= m.Layout.Cols[i].WeightVals[bin]
				}
				s.setX(x, l, offsets[i]+bin)
			}
		}
		for l := 0; l < lanes; l++ {
			total += sel[l]
		}
	}
	return m.Population * total / float64(samples)
}
