package ar

import (
	"math/rand"

	"sam/internal/nn"
	"sam/internal/tensor"
)

// BatchSampler runs ancestral sampling over up to B lanes at once: each
// column step is one batched forward pass (a (B×H) GEMM per layer) plus a
// batched softmax and B categorical draws, instead of B independent
// batch-1 forwards. It implements join.BatchTupleSampler, emitting model
// bin codes; like Sampler it is not safe for concurrent use — create one
// per goroutine.
type BatchSampler struct {
	m   *Model
	buf nn.BatchInference
	// probsV[i] is a B×Bins(i) view over one shared buffer; SoftmaxRowsInto
	// fills it from the column's logit block each step.
	probsV []*tensor.Tensor
	// probs0 is column 0's distribution, softmaxed once at construction:
	// the first conditional has no parents, so its logits are a constant of
	// the weights and every sweep skips that forward pass entirely.
	probs0 []float64
	sel    []float64 // per-lane selectivity accumulator (estimation)
	// touched lists the flat x indices set since the last reset, so each
	// sweep clears exactly the few one-hots it flipped instead of rewriting
	// the whole B×InDim input.
	touched []int
	one     [1]*rand.Rand // scratch for the single-tuple adapter
}

// NewBatchSampler returns a sampler drawing batch tuples per forward
// sweep. batch must be at least 1; batch 1 degenerates to per-tuple
// sampling through the batched kernels.
func (m *Model) NewBatchSampler(batch int) *BatchSampler {
	if batch < 1 {
		panic("ar: batch sampler needs at least one lane")
	}
	maxBins := 0
	for _, d := range m.Disc {
		if d.Bins() > maxBins {
			maxBins = d.Bins()
		}
	}
	s := &BatchSampler{
		m:       m,
		buf:     m.Net.NewBatchInference(batch),
		sel:     make([]float64, batch),
		touched: make([]int, 0, batch*m.Layout.NumCols()),
	}
	probsBuf := make([]float64, batch*maxBins)
	for _, d := range m.Disc {
		s.probsV = append(s.probsV, tensor.FromSlice(batch, d.Bins(), probsBuf[:batch*d.Bins()]))
	}
	// Snapshot column 0's (parent-free, hence constant) distribution. The
	// sampler assumes the weights stay fixed for its lifetime, which the
	// per-run sampler-per-goroutine usage guarantees.
	s.probs0 = make([]float64, m.Disc[0].Bins())
	tensor.SoftmaxRowInto(s.probs0, s.buf.ForwardCol(0).Row(0))
	return s
}

// BatchCap returns the lane count fixed at construction.
func (s *BatchSampler) BatchCap() int { return s.buf.Batch() }

// SampleFOJ draws one tuple through a single lane, satisfying
// join.TupleSampler so a BatchSampler can serve leftover tuples too.
func (s *BatchSampler) SampleFOJ(rng *rand.Rand, dst []int32) {
	s.one[0] = rng
	s.SampleFOJBatch(s.one[:], dst)
}

// SampleFOJBatch draws len(rngs) tuples from the modeled joint
// distribution by batched ancestral sampling (Algorithm 1, lines 3–7, over
// all lanes per column step). Lane l consumes only rngs[l], so a lane's
// output depends on its own stream alone and the caller controls
// determinism by seeding the streams. dst holds len(rngs)·NumCols codes,
// lane-major.
func (s *BatchSampler) SampleFOJBatch(rngs []*rand.Rand, dst []int32) {
	m := s.m
	ncols := m.Layout.NumCols()
	lanes := len(rngs)
	if lanes == 0 || lanes > s.buf.Batch() {
		panic("ar: SampleFOJBatch lane count out of range")
	}
	if len(dst) != lanes*ncols {
		panic("ar: SampleFOJBatch dst has wrong length")
	}
	x := s.buf.X()
	s.resetX(x)
	offsets := m.Net.Offsets()
	for i := 0; i < ncols; i++ {
		var probs *tensor.Tensor
		if i > 0 {
			probs = s.probsV[i]
			// Unnormalized is enough: sampleCategorical accumulates its
			// own total mass.
			tensor.ExpRowsInto(probs, s.buf.ForwardCol(i))
		}
		for l := 0; l < lanes; l++ {
			prow := s.probs0
			if i > 0 {
				prow = probs.Row(l)
			}
			bin := sampleCategorical(rngs[l], prow, nil)
			dst[l*ncols+i] = int32(bin)
			s.setX(x, l, offsets[i]+bin)
		}
	}
}

// resetX clears exactly the one-hots the previous sweep set.
func (s *BatchSampler) resetX(x *tensor.Tensor) {
	for _, idx := range s.touched {
		x.Data[idx] = 0
	}
	s.touched = s.touched[:0]
}

// setX sets x[lane][idx] and records it for the next reset.
func (s *BatchSampler) setX(x *tensor.Tensor, lane, idx int) {
	flat := lane*x.Cols + idx
	x.Data[flat] = 1
	s.touched = append(s.touched, flat)
}

// EstimateSpec is the batched progressive-sampling estimator: Monte-Carlo
// chains advance in sweeps of up to B lanes, sharing each column step's
// forward pass. All chains draw from the single rng in lane order, so the
// estimate is deterministic for a fixed (rng state, batch) pair; it is a
// different (equally valid) Monte-Carlo draw than the per-tuple
// estimator's for the same seed.
func (s *BatchSampler) EstimateSpec(rng *rand.Rand, spec *Spec, samples int) float64 {
	m := s.m
	if samples <= 0 {
		samples = 1
	}
	lastNeeded := 0
	for i := range m.Layout.Cols {
		if spec.Masks[i] != nil || spec.Downweight[i] {
			lastNeeded = i
		}
	}
	batch := s.buf.Batch()
	offsets := m.Net.Offsets()
	x := s.buf.X()
	var total float64
	for done := 0; done < samples; done += batch {
		lanes := batch
		if rest := samples - done; rest < lanes {
			lanes = rest
		}
		sel := s.sel[:lanes]
		s.resetX(x)
		for l := 0; l < lanes; l++ {
			sel[l] = 1
		}
		for i := 0; i <= lastNeeded; i++ {
			var probs *tensor.Tensor
			if i > 0 {
				probs = s.probsV[i]
				tensor.SoftmaxRowsInto(probs, s.buf.ForwardCol(i))
			}
			mask := spec.Masks[i]
			for l := 0; l < lanes; l++ {
				if sel[l] == 0 {
					continue // dead chain: mask mass hit zero earlier
				}
				prow := s.probs0
				if i > 0 {
					prow = probs.Row(l)
				}
				if mask != nil {
					var p float64
					for b, pv := range prow {
						p += pv * mask[b]
					}
					sel[l] *= p
					if sel[l] == 0 {
						continue
					}
				}
				bin := sampleCategorical(rng, prow, mask)
				if spec.Downweight[i] {
					sel[l] /= m.Layout.Cols[i].WeightVals[bin]
				}
				s.setX(x, l, offsets[i]+bin)
			}
		}
		for l := 0; l < lanes; l++ {
			total += sel[l]
		}
	}
	return m.Population * total / float64(samples)
}
