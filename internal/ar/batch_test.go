package ar

import (
	"math"
	"math/rand"
	"testing"

	"sam/internal/join"
	"sam/internal/relation"
	"sam/internal/tensor"
)

// batchTestModel builds a small untrained model; random init already
// defines a nondegenerate joint, which is all distribution-equivalence
// tests need.
func batchTestModel(t *testing.T, arch string) *Model {
	t.Helper()
	c1 := relation.NewColumn("x", relation.Categorical, 4)
	c2 := relation.NewColumn("y", relation.Categorical, 3)
	c3 := relation.NewColumn("z", relation.Categorical, 5)
	s := relation.MustSchema(relation.NewTable("t", c1, c2, c3))
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 21
	cfg.Arch = arch
	return NewModel(join.NewLayout(s), nil, 500, cfg)
}

// TestSampleFOJBatchMatchesUnbatchedMarginals draws a large sample through
// the per-tuple sampler and through the batched sampler and requires the
// per-column marginal frequencies to agree: both must sample the same
// modeled joint even though the batched path runs entirely different
// (head-restricted, transposed-dot) kernels.
func TestSampleFOJBatchMatchesUnbatchedMarginals(t *testing.T) {
	for _, arch := range []string{"made", "transformer"} {
		t.Run(arch, func(t *testing.T) {
			m := batchTestModel(t, arch)
			ncols := m.Layout.NumCols()
			const n = 12000

			single := m.NewSampler()
			rng := rand.New(rand.NewSource(99))
			dst := make([]int32, ncols)
			singleCounts := make([]map[int32]int, ncols)
			for i := range singleCounts {
				singleCounts[i] = map[int32]int{}
			}
			for k := 0; k < n; k++ {
				single.SampleFOJ(rng, dst)
				for i, v := range dst {
					singleCounts[i][v]++
				}
			}

			const lanes = 32
			batch := m.NewBatchSampler(lanes)
			rngs := make([]*rand.Rand, lanes)
			for l := range rngs {
				rngs[l] = rand.New(rand.NewSource(1000 + int64(l)))
			}
			bdst := make([]int32, lanes*ncols)
			batchCounts := make([]map[int32]int, ncols)
			for i := range batchCounts {
				batchCounts[i] = map[int32]int{}
			}
			for k := 0; k < n/lanes; k++ {
				batch.SampleFOJBatch(rngs, bdst)
				for l := 0; l < lanes; l++ {
					for i := 0; i < ncols; i++ {
						batchCounts[i][bdst[l*ncols+i]]++
					}
				}
			}

			for i := 0; i < ncols; i++ {
				for b := 0; b < m.Disc[i].Bins(); b++ {
					ps := float64(singleCounts[i][int32(b)]) / n
					pb := float64(batchCounts[i][int32(b)]) / n
					if math.Abs(ps-pb) > 0.025 {
						t.Fatalf("col %d bin %d marginal: single %.4f vs batched %.4f", i, b, ps, pb)
					}
				}
			}
		})
	}
}

// TestBatchSamplerWarmColdLanePermutation is the adversarial check on the
// prefix-cache wiring: a sampler whose activation cache and sparse-input
// bookkeeping have been churned by unrelated sweeps must draw exactly what
// a cold sampler draws, and a lane's output must be a function of its rng
// stream alone — independent of which lane index the stream lands on. The
// cold sweep runs streams in natural order; the warm sweep runs the same
// streams under a permutation, so any cross-lane leakage through the
// shared nonzero bookkeeping or stale cached activations breaks
// bit-equality.
func TestBatchSamplerWarmColdLanePermutation(t *testing.T) {
	for _, arch := range []string{"made", "transformer"} {
		t.Run(arch, func(t *testing.T) {
			m := batchTestModel(t, arch)
			ncols := m.Layout.NumCols()
			const lanes = 6
			seed := func(l int) int64 { return 400 + int64(l)*17 }

			cold := m.NewBatchSampler(lanes)
			rngs := make([]*rand.Rand, lanes)
			for l := range rngs {
				rngs[l] = rand.New(rand.NewSource(seed(l)))
			}
			ref := make([]int32, lanes*ncols)
			cold.SampleFOJBatch(rngs, ref)

			warm := m.NewBatchSampler(lanes)
			churn := make([]int32, lanes*ncols)
			for sweep := 0; sweep < 3; sweep++ {
				for l := range rngs {
					rngs[l] = rand.New(rand.NewSource(9000 + int64(sweep*lanes+l)))
				}
				warm.SampleFOJBatch(rngs, churn)
			}

			perm := []int{4, 2, 5, 0, 3, 1}
			for l, p := range perm {
				rngs[l] = rand.New(rand.NewSource(seed(p)))
			}
			got := make([]int32, lanes*ncols)
			warm.SampleFOJBatch(rngs, got)
			for l, p := range perm {
				for i := 0; i < ncols; i++ {
					if got[l*ncols+i] != ref[p*ncols+i] {
						t.Fatalf("lane %d (stream %d) col %d: warm-permuted %d vs cold %d",
							l, p, i, got[l*ncols+i], ref[p*ncols+i])
					}
				}
			}
		})
	}
}

// TestBatchSamplerSingleLaneAdapter checks the TupleSampler adapter draws
// through exactly one lane and produces codes in range.
func TestBatchSamplerSingleLaneAdapter(t *testing.T) {
	m := batchTestModel(t, "made")
	s := m.NewBatchSampler(8)
	rng := rand.New(rand.NewSource(3))
	dst := make([]int32, m.Layout.NumCols())
	for k := 0; k < 50; k++ {
		s.SampleFOJ(rng, dst)
		for i, v := range dst {
			if v < 0 || int(v) >= m.Disc[i].Bins() {
				t.Fatalf("col %d code %d out of range", i, v)
			}
		}
	}
}

// TestBatchEstimateSpecMatchesUnbatched compares the two progressive
// estimators. A mask on column 0 alone makes both estimates an exact
// expectation (no Monte-Carlo variance), so they must agree tightly; a
// mask on a later column is statistical, so the check is loose.
func TestBatchEstimateSpecMatchesUnbatched(t *testing.T) {
	m := batchTestModel(t, "made")
	ncols := m.Layout.NumCols()

	mask0 := []float64{1, 1, 0, 0}
	spec0 := &Spec{Masks: make([][]float64, ncols), Downweight: make([]bool, ncols)}
	spec0.Masks[0] = mask0
	est := m.NewSampler().EstimateSpec(rand.New(rand.NewSource(1)), spec0, 64)
	bst := m.NewBatchSampler(16).EstimateSpec(rand.New(rand.NewSource(2)), spec0, 64)
	if math.Abs(est-bst) > 1e-6*math.Max(est, 1) {
		t.Fatalf("column-0 mask estimate: unbatched %v vs batched %v", est, bst)
	}

	mask2 := []float64{0, 1, 1, 0, 0}
	spec2 := &Spec{Masks: make([][]float64, ncols), Downweight: make([]bool, ncols)}
	spec2.Masks[2] = mask2
	est = m.NewSampler().EstimateSpec(rand.New(rand.NewSource(5)), spec2, 4096)
	bst = m.NewBatchSampler(64).EstimateSpec(rand.New(rand.NewSource(6)), spec2, 4096)
	if est <= 0 || bst <= 0 {
		t.Fatalf("estimates must be positive: %v, %v", est, bst)
	}
	if r := est / bst; r < 0.8 || r > 1.25 {
		t.Fatalf("column-2 mask estimate ratio %v (unbatched %v, batched %v)", r, est, bst)
	}
}

// TestSamplerEstimateSpecAllocFree pins the hoisted-scratch fix: a warm
// Sampler.EstimateSpec call must not allocate (the old per-call
// Model.EstimateSpec path rebuilt the whole sampler every call).
func TestSamplerEstimateSpecAllocFree(t *testing.T) {
	old := tensor.MatMulWorkers()
	tensor.SetMatMulWorkers(1)
	defer tensor.SetMatMulWorkers(old)

	m := batchTestModel(t, "made")
	ncols := m.Layout.NumCols()
	spec := &Spec{Masks: make([][]float64, ncols), Downweight: make([]bool, ncols)}
	spec.Masks[2] = []float64{0, 1, 1, 0, 0}
	s := m.NewSampler()
	rng := rand.New(rand.NewSource(17))
	call := func() { s.EstimateSpec(rng, spec, 8) }
	call()
	if n := testing.AllocsPerRun(20, call); n != 0 {
		t.Fatalf("warm Sampler.EstimateSpec allocates %v times, want 0", n)
	}
}

// TestSampleCategoricalDegenerate covers the zero-mass fallbacks.
func TestSampleCategoricalDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))

	// All-zero weights, no mask: uniform over all bins.
	counts := [4]int{}
	for k := 0; k < 4000; k++ {
		b := sampleCategorical(rng, []float64{0, 0, 0, 0}, nil)
		if b < 0 || b > 3 {
			t.Fatalf("bin %d out of range", b)
		}
		counts[b]++
	}
	for b, c := range counts {
		if f := float64(c) / 4000; math.Abs(f-0.25) > 0.05 {
			t.Fatalf("zero-mass uniform fallback: bin %d frequency %v", b, f)
		}
	}

	// Mask kills all weight mass but admits bins 1 and 2: uniform over them.
	counts = [4]int{}
	for k := 0; k < 4000; k++ {
		b := sampleCategorical(rng, []float64{0.5, 0, 0, 0.5}, []float64{0, 1, 1, 0})
		counts[b]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("masked-out bins drawn: %v", counts)
	}
	for _, b := range []int{1, 2} {
		if f := float64(counts[b]) / 4000; math.Abs(f-0.5) > 0.05 {
			t.Fatalf("masked fallback: bin %d frequency %v", b, f)
		}
	}

	// All-zero mask: any bin may come back, but it must be in range.
	for k := 0; k < 100; k++ {
		if b := sampleCategorical(rng, []float64{1, 2, 3}, []float64{0, 0, 0}); b < 0 || b > 2 {
			t.Fatalf("bin %d out of range under zero mask", b)
		}
	}

	// Unnormalized weights draw proportionally — the property the batched
	// sampler's ExpRowsInto (no normalization pass) relies on.
	var ones int
	for k := 0; k < 8000; k++ {
		if sampleCategorical(rng, []float64{1, 3}, nil) == 1 {
			ones++
		}
	}
	if f := float64(ones) / 8000; math.Abs(f-0.75) > 0.03 {
		t.Fatalf("unnormalized draw frequency %v, want ≈0.75", f)
	}
}
