package ar

import (
	"math/rand"
	"testing"

	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/tensor"
	"sam/internal/workload"
)

// TestTrainConcurrentWorkersRace drives the full DPS training loop with
// several trainStep goroutines sharing the model, the masked-weight caches,
// and the parallel matmul kernels — the configuration the per-worker pooled
// tapes and the cache's dirty-bit protocol must keep race-free. The test is
// meaningful under -race; without it it is just a smoke test.
func TestTrainConcurrentWorkersRace(t *testing.T) {
	old := tensor.MatMulWorkers()
	tensor.SetMatMulWorkers(4)
	defer tensor.SetMatMulWorkers(old)

	rng := rand.New(rand.NewSource(29))
	s := twoColTable(rng, 200)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 32, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}

	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.BatchSize = 16
	cfg.Workers = 4
	cfg.Model.Hidden = 16
	cfg.Seed = 31
	m, err := Train(l, wl, float64(s.Tables[0].NumRows()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The sampling path reads the same masked-weight caches concurrently.
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			srng := rand.New(rand.NewSource(seed))
			smp := m.NewSampler()
			dst := make([]int32, l.NumCols())
			for i := 0; i < 20; i++ {
				smp.SampleFOJ(srng, dst)
			}
			done <- nil
		}(int64(w) + 41)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
