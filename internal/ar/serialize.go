package ar

import (
	"encoding/json"
	"fmt"
	"io"

	"sam/internal/join"
	"sam/internal/relation"
)

// modelFile is the on-disk representation of a trained model: enough to
// rebuild the layout and backbone deterministically, plus the learned
// weights. JSON keeps the format debuggable; weights dominate the size
// anyway.
type modelFile struct {
	Version    int                 `json:"version"`
	Schema     relation.SchemaSpec `json:"schema"`
	Population float64             `json:"population"`
	Config     Config              `json:"config"`
	// Cuts holds each discretizer's bin boundaries, per layout column.
	Cuts [][]int32 `json:"cuts"`
	// Params holds every trainable tensor's data, in Params() order.
	Params [][]float64 `json:"params"`
}

const modelFileVersion = 1

// Save serializes the model (schema metadata, discretizers, configuration,
// weights) so generation can run in a separate process from training.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{
		Version:    modelFileVersion,
		Schema:     m.Layout.Schema.Spec(),
		Population: m.Population,
		Config:     m.Cfg,
	}
	for _, d := range m.Disc {
		mf.Cuts = append(mf.Cuts, d.Cuts())
	}
	for _, p := range m.Net.Params() {
		mf.Params = append(mf.Params, p.Data)
	}
	return json.NewEncoder(w).Encode(&mf)
}

// Load rebuilds a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("ar: decode model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("ar: unsupported model version %d", mf.Version)
	}
	shell, err := mf.Schema.EmptySchema()
	if err != nil {
		return nil, err
	}
	layout := join.NewLayout(shell)
	if len(mf.Cuts) != layout.NumCols() {
		return nil, fmt.Errorf("ar: model has %d discretizers for %d columns", len(mf.Cuts), layout.NumCols())
	}
	// Rebuild with the saved configuration (the net's shape is a pure
	// function of config + discretizer bins), then overwrite the weights.
	cfg := mf.Config
	cfg.Intervalize = false // discretizers come from the file, not queries
	m := NewModel(layout, nil, mf.Population, cfg)
	for i, cuts := range mf.Cuts {
		d, err := FromCuts(cuts)
		if err != nil {
			return nil, fmt.Errorf("ar: column %d: %w", i, err)
		}
		m.Disc[i] = d
	}
	// Discretizer bins may differ from the identity net built above;
	// rebuild the backbone with the right column sizes.
	colSizes := make([]int, layout.NumCols())
	for i, d := range m.Disc {
		colSizes[i] = d.Bins()
	}
	m.Net = buildBackbone(cfg, colSizes)
	params := m.Net.Params()
	if len(params) != len(mf.Params) {
		return nil, fmt.Errorf("ar: model has %d parameter tensors, file has %d", len(params), len(mf.Params))
	}
	for i, p := range params {
		if len(p.Data) != len(mf.Params[i]) {
			return nil, fmt.Errorf("ar: parameter %d has %d values, file has %d", i, len(p.Data), len(mf.Params[i]))
		}
		copy(p.Data, mf.Params[i])
		p.MarkDirty() // invalidate masked-weight caches over this tensor
	}
	m.Cfg = mf.Config
	return m, nil
}
