package ar

import (
	"math/rand"
	"sort"
	"testing"

	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/metrics"
	"sam/internal/relation"
	"sam/internal/workload"
)

// bigDomainTable builds a single relation with one huge numeric column —
// the regime intervalization exists for.
func bigDomainTable(rng *rand.Rand, rows, domain int) *relation.Schema {
	c1 := relation.NewColumn("v", relation.Numeric, domain)
	c2 := relation.NewColumn("k", relation.Categorical, 4)
	for i := 0; i < rows; i++ {
		v := int32(rng.Intn(domain))
		c1.Append(v)
		c2.Append(v % 4)
	}
	return relation.MustSchema(relation.NewTable("t", c1, c2))
}

// TestIntervalizationShrinksModel: with intervalization the model's input
// dimension collapses from the raw domain to the number of workload
// constants, as §4.3.2 describes.
func TestIntervalizationShrinksModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := bigDomainTable(rng, 500, 5000)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 30, workload.DefaultSingleRelationOptions())
	wl := engine.Label(s, queries)

	on := DefaultConfig()
	on.Intervalize = true
	off := DefaultConfig()
	off.Intervalize = false
	mOn := NewModel(l, wl, 500, on)
	mOff := NewModel(l, wl, 500, off)
	if mOn.Net.InDim() >= mOff.Net.InDim() {
		t.Fatalf("intervalization did not shrink input: %d vs %d", mOn.Net.InDim(), mOff.Net.InDim())
	}
	if mOff.Net.InDim() < 5000 {
		t.Fatalf("raw model should carry the full domain, has %d", mOff.Net.InDim())
	}
}

// TestProgressiveSamplesReduceTrainingNoise: averaging two progressive
// chains per query must train at least as well as one chain on the same
// budget of epochs (checked loosely via training-set Q-Error).
func TestProgressiveSamplesReduceTrainingNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := bigDomainTable(rng, 800, 64)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 60, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}

	medianFor := func(ps int) float64 {
		cfg := DefaultTrainConfig()
		cfg.Epochs = 30
		cfg.ProgressiveSamples = ps
		cfg.Model.Hidden = 24
		cfg.Seed = 3
		m, err := Train(l, wl, 800, cfg)
		if err != nil {
			t.Fatal(err)
		}
		erng := rand.New(rand.NewSource(4))
		var qe []float64
		for qi := range wl.Queries {
			est, err := m.Estimate(erng, &wl.Queries[qi].Query, 8)
			if err != nil {
				t.Fatal(err)
			}
			qe = append(qe, metrics.QError(est, float64(wl.Queries[qi].Card)))
		}
		sort.Float64s(qe)
		return qe[len(qe)/2]
	}
	m1 := medianFor(1)
	m2 := medianFor(2)
	if m2 > m1*1.6 {
		t.Fatalf("2 progressive samples much worse than 1: %.2f vs %.2f", m2, m1)
	}
}

// TestFanoutPriorInstalls: a fresh model's fanout logits must decrease
// with the bin value (the 1/v² prior), so undertrained sampling cannot
// explode joins.
func TestFanoutPriorInstalls(t *testing.T) {
	aCol := relation.NewColumn("a", relation.Categorical, 2)
	aCol.Append(0)
	a := relation.NewTable("A", aCol)
	bCol := relation.NewColumn("b", relation.Categorical, 2)
	bCol.Append(0)
	b := relation.NewTable("B", bCol)
	b.Parent = "A"
	b.FK = []int64{0}
	s := relation.MustSchema(a, b)
	l := join.NewLayout(s)
	m := NewModel(l, nil, 2, DefaultConfig())

	fi, _ := l.FanoutIndex("B")
	bias := m.Net.OutputBias()
	off := m.Net.Offsets()[fi]
	bins := l.Cols[fi].Bins
	// Bins 0 (absent) and 1 (fanout 1) share the flat prior; it must decay
	// strictly beyond that.
	if bias.Data[off] != bias.Data[off+1] {
		t.Fatalf("absent and unit bins should share the prior: %v vs %v",
			bias.Data[off], bias.Data[off+1])
	}
	for i := 2; i < len(bins); i++ {
		if bias.Data[off+i] >= bias.Data[off+i-1] {
			t.Fatalf("fanout prior not monotone at bin %d: %v vs %v",
				i, bias.Data[off+i], bias.Data[off+i-1])
		}
	}
}

// TestTauAffectsSampling: a lower Gumbel temperature must still train and
// produce a valid model (smoke ablation for the DPS temperature).
func TestTauAffectsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := bigDomainTable(rng, 300, 32)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 30, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	for _, tau := range []float64{0.3, 1.0, 2.0} {
		cfg := DefaultTrainConfig()
		cfg.Epochs = 5
		cfg.Tau = tau
		cfg.Model.Hidden = 16
		if _, err := Train(l, wl, 300, cfg); err != nil {
			t.Fatalf("tau=%v: %v", tau, err)
		}
	}
}

// TestTransformerBackboneTrains: the alternative architecture plugs into
// the same training loop and reaches sane training fidelity.
func TestTransformerBackboneTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := bigDomainTable(rng, 400, 32)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 50, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	cfg := DefaultTrainConfig()
	cfg.Model = DefaultTransformerConfig()
	cfg.Model.DModel = 16
	cfg.Model.Heads = 2
	cfg.Model.Hidden = 32
	cfg.Model.HiddenLayers = 1
	cfg.Epochs = 25
	m, err := Train(l, wl, 400, cfg)
	if err != nil {
		t.Fatal(err)
	}
	erng := rand.New(rand.NewSource(9))
	var qe []float64
	for qi := range wl.Queries {
		est, err := m.Estimate(erng, &wl.Queries[qi].Query, 8)
		if err != nil {
			t.Fatal(err)
		}
		qe = append(qe, metrics.QError(est, float64(wl.Queries[qi].Card)))
	}
	sort.Float64s(qe)
	if med := qe[len(qe)/2]; med > 4 {
		t.Fatalf("transformer median training Q-Error %.2f", med)
	}
}

// TestUnknownArchPanics documents the Config.Arch contract.
func TestUnknownArchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := bigDomainTable(rng, 50, 8)
	l := join.NewLayout(s)
	cfg := DefaultConfig()
	cfg.Arch = "rnn"
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(l, nil, 50, cfg)
}
