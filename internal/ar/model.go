package ar

import (
	"fmt"
	"math"
	"math/rand"

	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/relation"
	"sam/internal/tensor"
	"sam/internal/workload"
)

// Model is a trained (or initialized) SAM model: a MADE network over the
// layout's columns after discretization, plus the population size it is
// normalized against (|T| for a single relation, |FOJ| for a join schema).
type Model struct {
	Layout     *join.Layout
	Disc       []*Discretizer
	Net        nn.Backbone
	Population float64
	Cfg        Config
}

// Config controls model construction.
type Config struct {
	Hidden       int  // hidden layer width (MADE) / feed-forward width (Transformer)
	HiddenLayers int  // number of hidden layers / transformer blocks
	Intervalize  bool // intervalize numeric content columns from workload constants
	Seed         int64

	// Arch selects the autoregressive backbone: "made" (default) or
	// "transformer" (§4.1: SAM can be instantiated by either).
	Arch string
	// DModel and Heads size the transformer backbone; ignored for MADE.
	DModel int
	Heads  int
}

// DefaultConfig returns a CPU-sized MADE configuration.
func DefaultConfig() Config {
	return Config{Hidden: 64, HiddenLayers: 2, Intervalize: true, Seed: 1, Arch: "made"}
}

// DefaultTransformerConfig returns a CPU-sized transformer configuration.
func DefaultTransformerConfig() Config {
	return Config{Hidden: 64, HiddenLayers: 2, Intervalize: true, Seed: 1,
		Arch: "transformer", DModel: 32, Heads: 2}
}

// NewModel builds discretizers from the workload's predicate constants and
// initializes the MADE backbone. population is |T| (single relation) or the
// full-outer-join size (multi-relation).
func NewModel(layout *join.Layout, queries []workload.CardQuery, population float64, cfg Config) *Model {
	if population <= 0 {
		panic("ar: population must be positive")
	}
	// Collect distinct constants per content column for intervalization.
	constants := make(map[int][]int32)
	if cfg.Intervalize {
		for qi := range queries {
			q := &queries[qi].Query
			for _, p := range q.Preds {
				idx := layout.ContentIndex(p.Table, p.Column)
				if layout.Cols[idx].Rel != relation.Numeric {
					continue
				}
				if p.Op == workload.IN {
					constants[idx] = append(constants[idx], p.Codes...)
				} else {
					constants[idx] = append(constants[idx], p.Code)
				}
			}
		}
	}
	disc := make([]*Discretizer, layout.NumCols())
	colSizes := make([]int, layout.NumCols())
	for i, c := range layout.Cols {
		if cs, ok := constants[i]; ok && len(cs) > 0 {
			disc[i] = NewInterval(c.Domain, cs)
		} else {
			disc[i] = NewIdentity(c.Domain)
		}
		colSizes[i] = disc[i].Bins()
	}
	net := buildBackbone(cfg, colSizes)
	// Heavy-tail prior on fanout columns: initialize the output bias of a
	// fanout bin with weight value v to −2·ln(max(v,1)), i.e.
	// P(fanout=v) ∝ 1/v² before any training (the absent bin and fanout 1
	// start equally likely). Fanout bins are never filtered directly, so
	// without a prior an undertrained model samples huge fanouts uniformly,
	// which the Group-and-Merge step would amplify into explosive join
	// sizes.
	bias := net.OutputBias()
	for i, c := range layout.Cols {
		if c.Kind != join.Fanout {
			continue
		}
		off := net.Offsets()[i]
		for b, v := range c.WeightVals {
			bias.Data[off+b] = -2 * math.Log(v)
		}
	}
	return &Model{Layout: layout, Disc: disc, Net: net, Population: population, Cfg: cfg}
}

// buildBackbone constructs the configured autoregressive network; the
// result is a pure function of cfg and the column sizes, which is what
// makes Save/Load reconstruction possible.
func buildBackbone(cfg Config, colSizes []int) nn.Backbone {
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Arch {
	case "", "made":
		return nn.NewMADE(rng, colSizes, cfg.Hidden, cfg.HiddenLayers)
	case "transformer":
		dModel, heads := cfg.DModel, cfg.Heads
		if dModel <= 0 {
			dModel = 32
		}
		if heads <= 0 {
			heads = 2
		}
		return nn.NewTransformer(rng, colSizes, dModel, heads, cfg.Hidden, cfg.HiddenLayers)
	default:
		panic(fmt.Sprintf("ar: unknown architecture %q", cfg.Arch))
	}
}

// Spec is a query compiled into the model's bin space: one fractional mask
// per constrained column (nil means unconstrained) plus the fanout columns
// whose values divide the estimate (fanout scaling / inverse probability
// weighting for the query's table set).
type Spec struct {
	Masks      [][]float64
	Downweight []bool // per model column
}

// Compile translates a validated query into a Spec. It returns an error if
// the predicates are unsatisfiable in bin space (zero mass everywhere on
// some column).
func (m *Model) Compile(q *workload.Query) (*Spec, error) {
	l := m.Layout
	spec := &Spec{
		Masks:      make([][]float64, l.NumCols()),
		Downweight: make([]bool, l.NumCols()),
	}
	// Group predicates by model column.
	byCol := make(map[int][]workload.Predicate)
	for _, p := range q.Preds {
		idx := l.ContentIndex(p.Table, p.Column)
		byCol[idx] = append(byCol[idx], p)
	}
	for idx, preds := range byCol {
		mask := make([]float64, m.Disc[idx].Bins())
		if !m.Disc[idx].maskInto(mask, preds, l.Cols[idx].Domain) {
			return nil, fmt.Errorf("ar: query unsatisfiable on %s", l.Cols[idx].Name())
		}
		spec.Masks[idx] = mask
	}
	for _, idx := range l.PresenceConstraints(q.Tables) {
		if spec.Masks[idx] != nil {
			continue // content predicates never target fanout columns
		}
		mask := make([]float64, m.Disc[idx].Bins())
		for b := 1; b < len(mask); b++ {
			mask[b] = 1
		}
		spec.Masks[idx] = mask
	}
	for _, idx := range l.DownweightColumns(q.Tables) {
		spec.Downweight[idx] = true
	}
	return spec, nil
}

// Sampler wraps per-goroutine inference scratch space; it implements
// join.TupleSampler, emitting model bin codes.
type Sampler struct {
	m     *Model
	buf   nn.Inference
	probs []float64
}

// NewSampler returns a sampler with its own buffers; samplers are not safe
// for concurrent use, create one per goroutine.
func (m *Model) NewSampler() *Sampler {
	maxBins := 0
	for _, d := range m.Disc {
		if d.Bins() > maxBins {
			maxBins = d.Bins()
		}
	}
	return &Sampler{m: m, buf: m.Net.NewInference(), probs: make([]float64, maxBins)}
}

// SampleFOJ draws one tuple from the modeled joint distribution by
// ancestral sampling (Algorithm 1, lines 3–7). dst receives bin codes per
// layout column.
func (s *Sampler) SampleFOJ(rng *rand.Rand, dst []int32) {
	m := s.m
	if len(dst) != m.Layout.NumCols() {
		panic("ar: SampleFOJ dst has wrong length")
	}
	x := s.buf.X()
	for i := range x {
		x[i] = 0
	}
	for i := range m.Layout.Cols {
		out := s.buf.Forward()
		logits := m.Net.ColLogits(out, i)
		probs := s.probs[:len(logits)]
		tensor.SoftmaxRowInto(probs, logits)
		bin := sampleCategorical(rng, probs, nil)
		dst[i] = int32(bin)
		x[m.Net.Offsets()[i]+bin] = 1
	}
}

// Estimate runs progressive-sampling cardinality estimation for q with the
// given number of Monte-Carlo samples, including fanout scaling for join
// queries.
func (m *Model) Estimate(rng *rand.Rand, q *workload.Query, samples int) (float64, error) {
	spec, err := m.Compile(q)
	if err != nil {
		return 0, err
	}
	return m.EstimateSpec(rng, spec, samples), nil
}

// EstimateSpec is Estimate for a precompiled spec. It allocates fresh
// inference buffers per call; hot loops should hold a Sampler (or
// BatchSampler) and call its EstimateSpec instead.
func (m *Model) EstimateSpec(rng *rand.Rand, spec *Spec, samples int) float64 {
	return m.NewSampler().EstimateSpec(rng, spec, samples)
}

// EstimateSpec runs progressive-sampling estimation for a precompiled spec
// on the sampler's reusable buffers: the warm path allocates nothing, so a
// per-goroutine sampler amortizes the inference scratch over a whole
// workload of estimates.
func (s *Sampler) EstimateSpec(rng *rand.Rand, spec *Spec, samples int) float64 {
	m := s.m
	if samples <= 0 {
		samples = 1
	}
	// Wildcard skipping: nothing beyond the last constrained or
	// downweighted column affects the estimate.
	lastNeeded := 0
	for i := range m.Layout.Cols {
		if spec.Masks[i] != nil || spec.Downweight[i] {
			lastNeeded = i
		}
	}
	var total float64
	for it := 0; it < samples; it++ {
		x := s.buf.X()
		for i := range x {
			x[i] = 0
		}
		sel := 1.0
		for i := 0; i <= lastNeeded; i++ {
			out := s.buf.Forward()
			logits := m.Net.ColLogits(out, i)
			probs := s.probs[:len(logits)]
			tensor.SoftmaxRowInto(probs, logits)
			mask := spec.Masks[i]
			if mask != nil {
				var p float64
				for b, pv := range probs {
					p += pv * mask[b]
				}
				sel *= p
				if sel == 0 {
					break
				}
			}
			bin := sampleCategorical(rng, probs, mask)
			if spec.Downweight[i] {
				sel /= m.Layout.Cols[i].WeightVals[bin]
			}
			x[m.Net.Offsets()[i]+bin] = 1
		}
		total += sel
	}
	return m.Population * total / float64(samples)
}

// sampleCategorical draws an index proportional to probs (optionally
// reweighted by mask). It falls back to the argmax of the weights if
// rounding leaves residual mass.
func sampleCategorical(rng *rand.Rand, probs, mask []float64) int {
	var sum float64
	for b, p := range probs {
		if mask != nil {
			p *= mask[b]
		}
		sum += p
	}
	return drawFromMass(rng, probs, mask, sum)
}

// drawFromMass is sampleCategorical's CDF walk with the total mass supplied
// by the caller. The batched sampler fuses the accumulation into the
// softmax-exp pass (tensor.ExpRowMass) and the batched estimator into its
// selectivity update, so neither re-sums the row just to draw from it. mass
// must equal the in-order sum of probs×mask for the draw to be bit-identical
// to sampleCategorical's.
func drawFromMass(rng *rand.Rand, probs, mask []float64, mass float64) int {
	if mass <= 0 {
		// Degenerate: uniform over positive-mask bins, else uniform.
		if mask != nil {
			var cands []int
			for b, mv := range mask {
				if mv > 0 {
					cands = append(cands, b)
				}
			}
			if len(cands) > 0 {
				return cands[rng.Intn(len(cands))]
			}
		}
		return rng.Intn(len(probs))
	}
	u := rng.Float64() * mass
	var acc float64
	best := len(probs) - 1
	for b, p := range probs {
		if mask != nil {
			p *= mask[b]
		}
		acc += p
		if u <= acc {
			return b
		}
	}
	return best
}
