package ar

// Seed-splitting for sharded generation. A generation run owns one user
// seed; shards, workers and lanes each need their own independent rng
// stream, reconstructible from coordinates alone so any shard can be
// regenerated bit-identically without replaying the others.
//
// Two levels compose:
//
//   - SplitSeed(seed, shard) derives a shard's base seed through a
//     SplitMix64 finalizer, so adjacent shard indices land on uncorrelated
//     points of the seed space (plain seed+shard would hand math/rand
//     near-identical source states).
//   - LaneSeed(base, lane) spaces the per-lane ancestral-sampling streams
//     inside a shard (or, unsharded, inside a logical worker) by a fixed
//     prime stride — the PR-3 contract that makes output a pure function
//     of (seed, workers, batch), generalized here to (seed, shard, batch).

// laneStride separates per-lane rng streams derived from one base seed.
// The value is pinned by golden determinism tests; changing it changes
// every generated database.
const laneStride = 7919

// SplitSeed derives the base rng seed of shard from the run seed using the
// SplitMix64 finalizer. shard -1 is reserved for callers that want the
// run seed itself mixed (not used by generation).
func SplitSeed(seed int64, shard int) int64 {
	z := uint64(seed) + (uint64(shard)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// LaneSeed derives lane's rng stream seed from a base seed (the run seed
// for unsharded generation, SplitSeed(seed, shard) for a shard).
func LaneSeed(base int64, lane int) int64 {
	return base + int64(lane)*laneStride
}
