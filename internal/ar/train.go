package ar

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/obs"
	"sam/internal/tensor"
	"sam/internal/workload"
)

// TrainConfig controls Differentiable Progressive Sampling training.
type TrainConfig struct {
	Model Config

	Epochs             int
	BatchSize          int
	LR                 float64
	Tau                float64 // Gumbel-Softmax temperature
	ClipNorm           float64 // gradient clipping by global norm; 0 = off
	ProgressiveSamples int     // Monte-Carlo chains per query per step
	Workers            int     // goroutines per batch; 0 = GOMAXPROCS
	Seed               int64

	// Logf, when non-nil, receives one progress line per epoch.
	Logf func(format string, args ...any)

	// Hooks, when non-nil, observes training: per-epoch loss/grad-norm/
	// throughput and per-step loss/latency. A nil Hooks adds zero cost —
	// the warm train step stays allocation-free (see alloc_test.go).
	Hooks *obs.Hooks
	// Span, when non-nil, is the parent trace span; Train records a
	// "train" child span with compile and epoch-loop phases under it.
	Span *obs.Span
}

// DefaultTrainConfig returns CPU-scale defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Model:              DefaultConfig(),
		Epochs:             8,
		BatchSize:          64,
		LR:                 5e-3,
		Tau:                1.0,
		ClipNorm:           5,
		ProgressiveSamples: 1,
		Seed:               1,
	}
}

// Train fits a SAM model to the workload's cardinality constraints. The
// loss is the mean squared log-ratio between predicted and true
// cardinalities (minimizing log Q-Error), with gradients flowing through
// the progressive sampler via straight-through Gumbel-Softmax. Queries that
// are unsatisfiable in bin space are dropped with a log line.
func Train(layout *join.Layout, wl *workload.Workload, population float64, cfg TrainConfig) (*Model, error) {
	if wl.Len() == 0 {
		return nil, fmt.Errorf("ar: empty workload")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("ar: epochs and batch size must be positive")
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 1.0
	}
	if cfg.ProgressiveSamples <= 0 {
		cfg.ProgressiveSamples = 1
	}
	span := cfg.Span.Child("train")
	defer span.End()
	span.SetAttr("queries", wl.Len())
	span.SetAttr("epochs", cfg.Epochs)
	span.SetAttr("batch", cfg.BatchSize)
	span.SetAttr("seed", cfg.Seed)

	compileSpan := span.Child("compile")
	m := NewModel(layout, wl.Queries, population, cfg.Model)

	// Precompile the workload.
	specs := make([]*Spec, 0, wl.Len())
	targets := make([]float64, 0, wl.Len())
	dropped := 0
	for qi := range wl.Queries {
		cq := &wl.Queries[qi]
		spec, err := m.Compile(&cq.Query)
		if err != nil {
			dropped++
			continue
		}
		card := float64(cq.Card)
		if card < 1 {
			card = 1
		}
		specs = append(specs, spec)
		targets = append(targets, math.Log(card/population))
	}
	if dropped > 0 && cfg.Logf != nil {
		cfg.Logf("ar: dropped %d unsatisfiable queries", dropped)
	}
	compileSpan.SetAttr("dropped", dropped)
	compileSpan.End()
	if len(specs) == 0 {
		return nil, fmt.Errorf("ar: no trainable queries after compilation")
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opt := nn.NewAdam(cfg.LR)
	opt.ClipMax = cfg.ClipNorm
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := newTrainer(m, specs, targets, cfg, opt, workers)

	epochsSpan := span.Child("epochs")
	defer epochsSpan.End()
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	observe := cfg.Hooks.WantsTrainStep() || cfg.Hooks.WantsTrainEpoch()
	totalSteps := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var steps int
		var epochStart time.Time
		if observe {
			epochStart = time.Now()
		}
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			var stepStart time.Time
			if observe {
				stepStart = time.Now()
			}
			loss := tr.step(batch, rng.Int63(), observe)
			epochLoss += loss
			steps++
			totalSteps++
			if cfg.Hooks.WantsTrainStep() {
				cfg.Hooks.TrainStep(obs.TrainStep{
					Step:     totalSteps,
					Loss:     loss,
					GradNorm: tr.lastGradNorm,
					Wall:     time.Since(stepStart),
				})
			}
		}
		if cfg.Hooks.WantsTrainEpoch() {
			cfg.Hooks.TrainEpoch(obs.TrainEpoch{
				Epoch:    epoch + 1,
				Epochs:   cfg.Epochs,
				Loss:     epochLoss / float64(steps),
				GradNorm: tr.lastGradNorm,
				Steps:    steps,
				Wall:     time.Since(epochStart),
			})
		}
		if cfg.Logf != nil {
			cfg.Logf("ar: epoch %d/%d mean batch loss %.4f", epoch+1, cfg.Epochs, epochLoss/float64(steps))
		}
	}
	epochsSpan.SetAttr("steps", totalSteps)
	return m, nil
}

// chunkScratch holds the per-column working slices one worker reuses across
// forwardChunk calls, so the steady-state step allocates nothing.
type chunkScratch struct {
	masks   []*tensor.Tensor
	anyDown []bool
	deltas  []*tensor.Tensor
	parts   []*tensor.Node
}

func newChunkScratch(ncols int) chunkScratch {
	return chunkScratch{
		masks:   make([]*tensor.Tensor, ncols),
		anyDown: make([]bool, ncols),
		deltas:  make([]*tensor.Tensor, ncols),
		parts:   make([]*tensor.Node, ncols),
	}
}

// trainWorker is one worker's persistent state: a pooled gradient tape, a
// reseedable RNG, gradient views, and the chunk scratch buffers.
type trainWorker struct {
	tape    *tensor.Graph
	rng     *rand.Rand
	grads   []*tensor.Tensor // per param; views into the tape
	scratch chunkScratch
}

// trainer bundles the state reused across optimizer steps: one persistent
// worker (tape + scratch, Reset between steps so tensor buffers are pooled)
// per goroutine plus the merged-gradient and bookkeeping buffers, so the
// steady state of a training run performs no per-step heap allocation.
type trainer struct {
	m       *Model
	specs   []*Spec
	targets []float64
	cfg     TrainConfig
	opt     *nn.Adam
	params  []*tensor.Tensor

	workers []*trainWorker
	losses  []float64
	counts  []int
	pairs   []nn.GradPair // Grad fields are persistent merge buffers

	lastGradNorm float64 // global norm of the last merged gradient (observed steps only)
}

func newTrainer(m *Model, specs []*Spec, targets []float64, cfg TrainConfig,
	opt *nn.Adam, workers int) *trainer {
	params := m.Net.Params()
	ncols := m.Layout.NumCols()
	tr := &trainer{
		m:       m,
		specs:   specs,
		targets: targets,
		cfg:     cfg,
		opt:     opt,
		params:  params,
		workers: make([]*trainWorker, workers),
		losses:  make([]float64, workers),
		counts:  make([]int, workers),
		pairs:   make([]nn.GradPair, len(params)),
	}
	for w := range tr.workers {
		tr.workers[w] = &trainWorker{
			tape:    tensor.NewGraph(),
			rng:     rand.New(rand.NewSource(0)),
			grads:   make([]*tensor.Tensor, len(params)),
			scratch: newChunkScratch(ncols),
		}
	}
	for pi, p := range params {
		tr.pairs[pi] = nn.GradPair{Param: p, Grad: tensor.New(p.Rows, p.Cols)}
	}
	return tr
}

// runChunk reseeds the worker's RNG and runs one forward+backward chunk on
// its tape, publishing gradients, loss, and count.
func (tr *trainer) runChunk(w int, batch []int, seed int64) {
	ws := tr.workers[w]
	ws.rng.Seed(seed)
	loss := forwardChunk(tr.m, ws.tape, &ws.scratch, tr.specs, tr.targets, batch, tr.cfg, ws.rng)
	for pi, p := range tr.params {
		ws.grads[pi] = ws.tape.ParamGrad(p)
	}
	tr.losses[w] = loss
	tr.counts[w] = len(batch)
}

// step runs one optimizer step over the batch, fanning the rows out to
// worker goroutines, each with its own persistent tape, then merging
// gradients into the trainer's reused buffers. A single worker runs inline
// on the calling goroutine, keeping the warm step allocation-free. With
// observe set, the merged gradient's global norm is recorded in
// lastGradNorm before clipping.
func (tr *trainer) step(batch []int, seed int64, observe bool) float64 {
	workers := len(tr.workers)
	if workers > len(batch) {
		workers = len(batch)
	}
	chunk := (len(batch) + workers - 1) / workers
	for w := range tr.counts {
		tr.counts[w] = 0
	}
	if workers == 1 {
		tr.runChunk(0, batch, seed)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(batch) {
				hi = len(batch)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				tr.runChunk(w, batch[lo:hi], seed+int64(w))
			}(w, lo, hi)
		}
		wg.Wait()
	}

	// Merge: weighted sum of per-worker mean gradients.
	total := 0
	for _, c := range tr.counts {
		total += c
	}
	var lossSum float64
	for pi := range tr.params {
		merged := tr.pairs[pi].Grad
		merged.Zero()
		for w, ws := range tr.workers {
			if tr.counts[w] == 0 || ws.grads[pi] == nil {
				continue
			}
			scale := float64(tr.counts[w]) / float64(total)
			for i, gv := range ws.grads[pi].Data {
				merged.Data[i] += gv * scale
			}
		}
	}
	for w, loss := range tr.losses {
		lossSum += loss * float64(tr.counts[w])
	}
	if observe {
		var norm2 float64
		for pi := range tr.pairs {
			for _, gv := range tr.pairs[pi].Grad.Data {
				norm2 += gv * gv
			}
		}
		tr.lastGradNorm = math.Sqrt(norm2)
	}
	tr.opt.Step(tr.pairs)
	return lossSum / float64(total)
}

// forwardChunk builds the DPS graph for a set of queries (rows) on the
// given tape and runs backward; it returns the chunk's mean loss. The tape
// is Reset first, so all scratch comes from its pool and gradients read via
// ParamGrad stay valid until the next call with the same tape. The scratch
// slices are caller-owned and reused across calls.
func forwardChunk(m *Model, g *tensor.Graph, sc *chunkScratch, specs []*Spec, targets []float64,
	rows []int, cfg TrainConfig, rng *rand.Rand) float64 {
	n := len(rows)
	ncols := m.Layout.NumCols()
	g.Reset()

	// Per-column mask tensors shared by all progressive samples.
	masks, anyDown, deltas := sc.masks, sc.anyDown, sc.deltas
	for i := 0; i < ncols; i++ {
		anyDown[i] = false
		deltas[i] = nil
		bins := m.Disc[i].Bins()
		mk := g.NewTensor(n, bins)
		for r, qi := range rows {
			spec := specs[qi]
			if spec.Masks[i] == nil {
				for b := 0; b < bins; b++ {
					mk.Set(r, b, 1)
				}
			} else {
				copy(mk.Row(r), spec.Masks[i])
			}
			if spec.Downweight[i] {
				anyDown[i] = true
			}
		}
		masks[i] = mk
		if anyDown[i] {
			d := g.NewTensor(n, 1)
			for r, qi := range rows {
				if specs[qi].Downweight[i] {
					d.Set(r, 0, 1)
				}
			}
			deltas[i] = d
		}
	}

	// Wildcard skipping: conditionals beyond the last constrained or
	// downweighted column contribute probability 1 and no weight factor,
	// so the progressive chain can stop early (a large saving for
	// single-relation workloads with few filters).
	lastNeeded := 0
	for _, qi := range rows {
		spec := specs[qi]
		for i := ncols - 1; i > lastNeeded; i-- {
			if spec.Masks[i] != nil || spec.Downweight[i] {
				if i > lastNeeded {
					lastNeeded = i
				}
				break
			}
		}
	}

	var selAccum *tensor.Node
	for s := 0; s < cfg.ProgressiveSamples; s++ {
		sel := progressiveChain(m, g, sc, n, lastNeeded, cfg.Tau, rng)
		if selAccum == nil {
			selAccum = sel
		} else {
			selAccum = g.Add(selAccum, sel)
		}
	}
	if cfg.ProgressiveSamples > 1 {
		selAccum = g.Scale(selAccum, 1/float64(cfg.ProgressiveSamples))
	}

	target := g.NewTensor(n, 1)
	for r, qi := range rows {
		target.Set(r, 0, targets[qi])
	}
	diff := g.Sub(g.Log(selAccum), g.Const(target))
	loss := g.Mean(g.Square(diff))
	g.Backward(loss)
	return loss.Val.Data[0]
}

// progressiveChain runs one differentiable progressive-sampling pass up to
// column lastNeeded (inclusive) and returns the per-row selectivity
// estimate (n×1 node). Masks, downweight flags, and delta tensors are read
// from the scratch filled by forwardChunk.
func progressiveChain(m *Model, g *tensor.Graph, sc *chunkScratch,
	n, lastNeeded int, tau float64, rng *rand.Rand) *tensor.Node {
	ncols := m.Layout.NumCols()
	parts := sc.parts
	for i := 0; i < ncols; i++ {
		parts[i] = g.Const(g.NewTensor(n, m.Disc[i].Bins()))
	}
	var sel *tensor.Node
	for i := 0; i <= lastNeeded && i < ncols; i++ {
		x := g.ConcatCols(parts...)
		out := m.Net.Forward(g, x)
		logits := g.SliceCols(out, m.Net.Offsets()[i], m.Net.ColSizes()[i])
		p := g.RangeProb(logits, sc.masks[i])
		if sel == nil {
			sel = p
		} else {
			sel = g.MulElem(sel, p)
		}
		y := g.STGumbel(logits, sc.masks[i], tau, rng)
		parts[i] = y
		if sc.anyDown[i] {
			val := g.Dot(y, m.Layout.Cols[i].WeightVals)
			recip := g.Reciprocal(val)
			oneMinus := g.NewTensor(n, 1)
			for r := 0; r < n; r++ {
				oneMinus.Set(r, 0, 1-sc.deltas[i].At(r, 0))
			}
			factor := g.Add(g.MulElem(recip, g.Const(sc.deltas[i])), g.Const(oneMinus))
			sel = g.MulElem(sel, factor)
		}
	}
	if sel == nil {
		ones := g.NewTensor(n, 1)
		ones.Fill(1)
		sel = g.Const(ones)
	}
	return sel
}
