package ar

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/tensor"
	"sam/internal/workload"
)

// TrainConfig controls Differentiable Progressive Sampling training.
type TrainConfig struct {
	Model Config

	Epochs             int
	BatchSize          int
	LR                 float64
	Tau                float64 // Gumbel-Softmax temperature
	ClipNorm           float64 // gradient clipping by global norm; 0 = off
	ProgressiveSamples int     // Monte-Carlo chains per query per step
	Workers            int     // goroutines per batch; 0 = GOMAXPROCS
	Seed               int64

	// Logf, when non-nil, receives one progress line per epoch.
	Logf func(format string, args ...any)
}

// DefaultTrainConfig returns CPU-scale defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Model:              DefaultConfig(),
		Epochs:             8,
		BatchSize:          64,
		LR:                 5e-3,
		Tau:                1.0,
		ClipNorm:           5,
		ProgressiveSamples: 1,
		Seed:               1,
	}
}

// Train fits a SAM model to the workload's cardinality constraints. The
// loss is the mean squared log-ratio between predicted and true
// cardinalities (minimizing log Q-Error), with gradients flowing through
// the progressive sampler via straight-through Gumbel-Softmax. Queries that
// are unsatisfiable in bin space are dropped with a log line.
func Train(layout *join.Layout, wl *workload.Workload, population float64, cfg TrainConfig) (*Model, error) {
	if wl.Len() == 0 {
		return nil, fmt.Errorf("ar: empty workload")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("ar: epochs and batch size must be positive")
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 1.0
	}
	if cfg.ProgressiveSamples <= 0 {
		cfg.ProgressiveSamples = 1
	}
	m := NewModel(layout, wl.Queries, population, cfg.Model)

	// Precompile the workload.
	specs := make([]*Spec, 0, wl.Len())
	targets := make([]float64, 0, wl.Len())
	dropped := 0
	for qi := range wl.Queries {
		cq := &wl.Queries[qi]
		spec, err := m.Compile(&cq.Query)
		if err != nil {
			dropped++
			continue
		}
		card := float64(cq.Card)
		if card < 1 {
			card = 1
		}
		specs = append(specs, spec)
		targets = append(targets, math.Log(card/population))
	}
	if dropped > 0 && cfg.Logf != nil {
		cfg.Logf("ar: dropped %d unsatisfiable queries", dropped)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("ar: no trainable queries after compilation")
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opt := nn.NewAdam(cfg.LR)
	opt.ClipMax = cfg.ClipNorm
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := newTrainer(m, specs, targets, cfg, opt, workers)

	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var steps int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			loss := tr.step(batch, rng.Int63())
			epochLoss += loss
			steps++
		}
		if cfg.Logf != nil {
			cfg.Logf("ar: epoch %d/%d mean batch loss %.4f", epoch+1, cfg.Epochs, epochLoss/float64(steps))
		}
	}
	return m, nil
}

// trainer bundles the state reused across optimizer steps: one persistent
// gradient tape per worker (Reset between steps so tensor buffers are
// pooled) plus the merged-gradient and bookkeeping buffers, so the steady
// state of a training run performs no per-step heap allocation beyond what
// the tapes pool internally.
type trainer struct {
	m       *Model
	specs   []*Spec
	targets []float64
	cfg     TrainConfig
	opt     *nn.Adam
	params  []*tensor.Tensor

	tapes  []*tensor.Graph
	grads  [][]*tensor.Tensor // per worker, per param; views into the tapes
	losses []float64
	counts []int
	pairs  []nn.GradPair // Grad fields are persistent merge buffers
}

func newTrainer(m *Model, specs []*Spec, targets []float64, cfg TrainConfig,
	opt *nn.Adam, workers int) *trainer {
	params := m.Net.Params()
	tr := &trainer{
		m:       m,
		specs:   specs,
		targets: targets,
		cfg:     cfg,
		opt:     opt,
		params:  params,
		tapes:   make([]*tensor.Graph, workers),
		grads:   make([][]*tensor.Tensor, workers),
		losses:  make([]float64, workers),
		counts:  make([]int, workers),
		pairs:   make([]nn.GradPair, len(params)),
	}
	for w := range tr.tapes {
		tr.tapes[w] = tensor.NewGraph()
		tr.grads[w] = make([]*tensor.Tensor, len(params))
	}
	for pi, p := range params {
		tr.pairs[pi] = nn.GradPair{Param: p, Grad: tensor.New(p.Rows, p.Cols)}
	}
	return tr
}

// step runs one optimizer step over the batch, fanning the rows out to
// worker goroutines, each with its own persistent tape, then merging
// gradients into the trainer's reused buffers.
func (tr *trainer) step(batch []int, seed int64) float64 {
	workers := len(tr.tapes)
	if workers > len(batch) {
		workers = len(batch)
	}
	chunk := (len(batch) + workers - 1) / workers
	for w := range tr.counts {
		tr.counts[w] = 0
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed + int64(w)))
			g := tr.tapes[w]
			loss := forwardChunk(tr.m, g, tr.specs, tr.targets, batch[lo:hi], tr.cfg, wrng)
			for pi, p := range tr.params {
				tr.grads[w][pi] = g.ParamGrad(p)
			}
			tr.losses[w] = loss
			tr.counts[w] = hi - lo
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge: weighted sum of per-worker mean gradients.
	total := 0
	for _, c := range tr.counts {
		total += c
	}
	var lossSum float64
	for pi := range tr.params {
		merged := tr.pairs[pi].Grad
		merged.Zero()
		for w := range tr.grads {
			if tr.counts[w] == 0 || tr.grads[w][pi] == nil {
				continue
			}
			scale := float64(tr.counts[w]) / float64(total)
			for i, gv := range tr.grads[w][pi].Data {
				merged.Data[i] += gv * scale
			}
		}
	}
	for w, loss := range tr.losses {
		lossSum += loss * float64(tr.counts[w])
	}
	tr.opt.Step(tr.pairs)
	return lossSum / float64(total)
}

// forwardChunk builds the DPS graph for a set of queries (rows) on the
// given tape and runs backward; it returns the chunk's mean loss. The tape
// is Reset first, so all scratch comes from its pool and gradients read via
// ParamGrad stay valid until the next call with the same tape.
func forwardChunk(m *Model, g *tensor.Graph, specs []*Spec, targets []float64, rows []int,
	cfg TrainConfig, rng *rand.Rand) float64 {
	n := len(rows)
	ncols := m.Layout.NumCols()
	g.Reset()

	// Per-column mask tensors shared by all progressive samples.
	masks := make([]*tensor.Tensor, ncols)
	anyDown := make([]bool, ncols)
	deltas := make([]*tensor.Tensor, ncols)
	for i := 0; i < ncols; i++ {
		bins := m.Disc[i].Bins()
		mk := g.NewTensor(n, bins)
		for r, qi := range rows {
			spec := specs[qi]
			if spec.Masks[i] == nil {
				for b := 0; b < bins; b++ {
					mk.Set(r, b, 1)
				}
			} else {
				copy(mk.Row(r), spec.Masks[i])
			}
			if spec.Downweight[i] {
				anyDown[i] = true
			}
		}
		masks[i] = mk
		if anyDown[i] {
			d := g.NewTensor(n, 1)
			for r, qi := range rows {
				if specs[qi].Downweight[i] {
					d.Set(r, 0, 1)
				}
			}
			deltas[i] = d
		}
	}

	// Wildcard skipping: conditionals beyond the last constrained or
	// downweighted column contribute probability 1 and no weight factor,
	// so the progressive chain can stop early (a large saving for
	// single-relation workloads with few filters).
	lastNeeded := 0
	for _, qi := range rows {
		spec := specs[qi]
		for i := ncols - 1; i > lastNeeded; i-- {
			if spec.Masks[i] != nil || spec.Downweight[i] {
				if i > lastNeeded {
					lastNeeded = i
				}
				break
			}
		}
	}

	var selAccum *tensor.Node
	for s := 0; s < cfg.ProgressiveSamples; s++ {
		sel := progressiveChain(m, g, masks, anyDown, deltas, n, lastNeeded, cfg.Tau, rng)
		if selAccum == nil {
			selAccum = sel
		} else {
			selAccum = g.Add(selAccum, sel)
		}
	}
	if cfg.ProgressiveSamples > 1 {
		selAccum = g.Scale(selAccum, 1/float64(cfg.ProgressiveSamples))
	}

	target := g.NewTensor(n, 1)
	for r, qi := range rows {
		target.Set(r, 0, targets[qi])
	}
	diff := g.Sub(g.Log(selAccum), g.Const(target))
	loss := g.Mean(g.Square(diff))
	g.Backward(loss)
	return loss.Val.Data[0]
}

// progressiveChain runs one differentiable progressive-sampling pass up to
// column lastNeeded (inclusive) and returns the per-row selectivity
// estimate (n×1 node).
func progressiveChain(m *Model, g *tensor.Graph, masks []*tensor.Tensor, anyDown []bool,
	deltas []*tensor.Tensor, n, lastNeeded int, tau float64, rng *rand.Rand) *tensor.Node {
	ncols := m.Layout.NumCols()
	parts := make([]*tensor.Node, ncols)
	for i := 0; i < ncols; i++ {
		parts[i] = g.Const(g.NewTensor(n, m.Disc[i].Bins()))
	}
	var sel *tensor.Node
	for i := 0; i <= lastNeeded && i < ncols; i++ {
		x := g.ConcatCols(parts...)
		out := m.Net.Forward(g, x)
		logits := g.SliceCols(out, m.Net.Offsets()[i], m.Net.ColSizes()[i])
		p := g.RangeProb(logits, masks[i])
		if sel == nil {
			sel = p
		} else {
			sel = g.MulElem(sel, p)
		}
		y := g.STGumbel(logits, masks[i], tau, rng)
		parts[i] = y
		if anyDown[i] {
			val := g.Dot(y, m.Layout.Cols[i].WeightVals)
			recip := g.Reciprocal(val)
			oneMinus := g.NewTensor(n, 1)
			for r := 0; r < n; r++ {
				oneMinus.Set(r, 0, 1-deltas[i].At(r, 0))
			}
			factor := g.Add(g.MulElem(recip, g.Const(deltas[i])), g.Const(oneMinus))
			sel = g.MulElem(sel, factor)
		}
	}
	if sel == nil {
		ones := g.NewTensor(n, 1)
		ones.Fill(1)
		sel = g.Const(ones)
	}
	return sel
}
