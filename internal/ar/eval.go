package ar

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sam/internal/metrics"
	"sam/internal/obs"
	"sam/internal/workload"
)

// EvalOptions controls model-side workload evaluation (EvalWorkload).
type EvalOptions struct {
	// Samples is the number of Monte-Carlo chains per query estimate.
	// Zero defaults to 32.
	Samples int
	// Batch is the lane count of the batched estimator; values ≤ 1 use the
	// per-tuple sampler. The batched and per-tuple estimators draw
	// different (equally valid) Monte-Carlo chains for the same seed.
	Batch int
	// Workers bounds query-level parallelism; 0 = GOMAXPROCS.
	Workers int
	// Seed drives the per-query rng streams; results are independent of
	// Workers for a fixed (Seed, Samples, Batch).
	Seed int64
}

// DefaultEvalOptions returns the batched defaults used by the CLIs.
func DefaultEvalOptions(seed int64) EvalOptions {
	return EvalOptions{Samples: 32, Batch: 64, Seed: seed}
}

// specEstimator is the shared surface of Sampler and BatchSampler that
// EvalWorkload needs: a warm, reusable progressive-sampling estimator.
type specEstimator interface {
	EstimateSpec(rng *rand.Rand, spec *Spec, samples int) float64
}

// EvalWorkload estimates every constraint's cardinality directly from the
// model (no generated database) and returns the Q-Errors versus the
// recorded ground truth. Each worker goroutine reuses one sampler across
// all of its queries — the warm estimate path allocates nothing per query
// beyond spec compilation — and every query gets its own seeded rng
// stream, so the result is a pure function of (model, queries, opts).
// Unsatisfiable queries estimate 0. When h is non-nil every query emits an
// obs.EvalQuery event with the rounded estimate, truth, Q-Error and
// latency.
func EvalWorkload(m *Model, queries []workload.CardQuery, opts EvalOptions, h *obs.Hooks) []float64 {
	out := make([]float64, len(queries))
	if len(queries) == 0 {
		return out
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = 32
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var est specEstimator
			if opts.Batch > 1 {
				est = m.NewBatchSampler(opts.Batch)
			} else {
				est = m.NewSampler()
			}
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					return
				}
				start := time.Now()
				rng := rand.New(rand.NewSource(opts.Seed + int64(qi)*1_000_003))
				var estv float64
				if spec, err := m.Compile(&queries[qi].Query); err == nil {
					estv = est.EstimateSpec(rng, spec, samples)
				}
				qe := metrics.QError(estv, float64(queries[qi].Card))
				out[qi] = qe
				h.EvalQuery(obs.EvalQuery{
					Card:   int64(math.Round(estv)),
					Truth:  queries[qi].Card,
					QError: qe,
					Wall:   time.Since(start),
				})
			}
		}()
	}
	wg.Wait()
	return out
}
