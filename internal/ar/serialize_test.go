package ar

import (
	"bytes"
	"math/rand"
	"testing"

	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/workload"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := bigDomainTable(rng, 300, 200)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 40, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	cfg.Model.Hidden = 16
	m, err := Train(l, wl, 300, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Population != m.Population {
		t.Fatalf("population %v want %v", m2.Population, m.Population)
	}
	if m2.Layout.NumCols() != m.Layout.NumCols() {
		t.Fatal("layout mismatch")
	}
	for i := range m.Disc {
		a, b := m.Disc[i].Cuts(), m2.Disc[i].Cuts()
		if len(a) != len(b) {
			t.Fatalf("column %d cuts differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("column %d cut %d differs", i, j)
			}
		}
	}
	// Same estimates on the same seed stream.
	for qi := 0; qi < 5; qi++ {
		r1 := rand.New(rand.NewSource(int64(100 + qi)))
		r2 := rand.New(rand.NewSource(int64(100 + qi)))
		e1, err := m.Estimate(r1, &wl.Queries[qi].Query, 4)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := m2.Estimate(r2, &wl.Queries[qi].Query, 4)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e2 {
			t.Fatalf("query %d: estimates diverge after reload: %v vs %v", qi, e1, e2)
		}
	}
}

func TestModelSaveLoadTransformer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := bigDomainTable(rng, 100, 16)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 10, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	cfg := DefaultTrainConfig()
	cfg.Model = DefaultTransformerConfig()
	cfg.Model.DModel = 8
	cfg.Model.Heads = 1
	cfg.Model.Hidden = 16
	cfg.Model.HiddenLayers = 1
	cfg.Epochs = 2
	m, err := Train(l, wl, 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same samples on the same seed stream.
	s1 := m.NewSampler()
	s2 := m2.NewSampler()
	d1 := make([]int32, l.NumCols())
	d2 := make([]int32, l.NumCols())
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		s1.SampleFOJ(r1, d1)
		s2.SampleFOJ(r2, d2)
		for j := range d1 {
			if d1[j] != d2[j] {
				t.Fatalf("sample %d col %d diverges after reload", i, j)
			}
		}
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestFromCutsValidation(t *testing.T) {
	for _, cuts := range [][]int32{nil, {0}, {1, 2}, {0, 2, 2}, {0, 3, 1}} {
		if _, err := FromCuts(cuts); err == nil {
			t.Fatalf("invalid cuts %v accepted", cuts)
		}
	}
	d, err := FromCuts([]int32{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 2 || d.BinOf(3) != 1 {
		t.Fatal("FromCuts reconstruction broken")
	}
}
